// Status / Result error-handling primitives, in the style used by
// production database codebases (Arrow, RocksDB, LevelDB).
//
// Functions that can fail return a Status (or a Result<T> when they also
// produce a value). Exceptions are not used on any hot path.

#ifndef HIERDB_COMMON_STATUS_H_
#define HIERDB_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace hierdb {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kCancelled,
  kDeadlineExceeded,
  kUnavailable,
};

/// Lightweight status object carrying a code and (on error) a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  static const char* CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(implicit)
  Result(Status status) : v_(std::move(status)) {      // NOLINT(implicit)
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(v_);
  }

  const T& ValueOrDie() const& {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status().ToString().c_str());
      std::abort();
    }
    return value();
  }

 private:
  std::variant<T, Status> v_;
};

#define HIERDB_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::hierdb::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

// Internal invariant check: aborts with a message. Used for programming
// errors, never for user-facing validation.
#define HIERDB_CHECK(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "HIERDB_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, (msg));                          \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

}  // namespace hierdb

#endif  // HIERDB_COMMON_STATUS_H_
