// The execution strategies compared throughout the paper (Section 5).
//
// One definition shared by every backend: the deterministic simulator
// (exec::Engine), the real-thread SM-node executor (mt::PipelineExecutor)
// and the multi-node cluster executor (cluster::ClusterExecutor) all accept
// the same three strategies, so the enum lives in common/ and the backend
// headers alias it.

#ifndef HIERDB_COMMON_STRATEGY_H_
#define HIERDB_COMMON_STRATEGY_H_

namespace hierdb {

/// Execution strategies compared in Section 5:
///   kDP — dynamic processing (the paper's model);
///   kFP — fixed processing (static processor-to-operator allocation);
///   kSP — synchronous pipelining (shared-memory only).
enum class Strategy { kDP, kFP, kSP };

inline const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kDP: return "DP";
    case Strategy::kFP: return "FP";
    case Strategy::kSP: return "SP";
  }
  return "?";
}

}  // namespace hierdb

#endif  // HIERDB_COMMON_STRATEGY_H_
