// ExecContext — where an executor's worker threads come from.
//
// The real-thread backends (mt::PipelineExecutor, cluster::ClusterExecutor)
// historically spawned their own std::threads per query, so a session
// running max_concurrent_queries x threads_per_node queries oversubscribed
// the host and the paper's dynamic load balancing stopped at the
// single-query boundary. The ExecContext interface decouples "how many
// workers does this execution want" from "which OS threads run them":
//
//   SpawnWorkers(n, body)   runs body(0..n-1) to completion and returns
//                           when every body has returned. The legacy
//                           ThreadSpawnContext spawns n threads; the
//                           session's WorkerPool context *rents* pooled
//                           threads instead (the renting caller always
//                           participates, so every execution owns at
//                           least one thread and can never deadlock
//                           waiting for a saturated pool).
//
//   Park()                  called by a worker that found no runnable
//                           work. A pooling context uses the idle beat to
//                           steal one activation from another in-flight
//                           query (SetStealHook below) — the paper's
//                           load-balancing hierarchy extended across
//                           query boundaries. Returns true if foreign
//                           work ran; false means "nap briefly yourself".
//
//   SetStealHook(fn)        an executor publishes "run one of my
//                           activations" so idle threads of *other*
//                           executions (and idle pool threads) can help.
//                           ClearStealHook() blocks until in-flight hook
//                           calls drain, so the executor may tear down
//                           its run state right after.
//
//   GuestSlots()            how many foreign threads may be inside the
//                           steal hook at once — executors provision that
//                           many extra per-worker state slots.
//
//   StopRequested()         cooperative cancellation token, checked by
//                           workers once per activation/morsel. A stopped
//                           execution returns Status::Cancelled.
//
// Contexts are per-execution objects: cheap, not thread-safe to share
// across concurrent Execute calls (each query rents its own).

#ifndef HIERDB_COMMON_EXEC_CONTEXT_H_
#define HIERDB_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <functional>

namespace hierdb {

class ExecContext {
 public:
  virtual ~ExecContext() = default;

  /// Runs body(0), ..., body(n-1) to completion and returns once all of
  /// them returned.
  ///
  /// `gang` declares the scheduling contract the bodies need:
  ///   false  cooperative — any single body, run alone, still completes
  ///          (mt::PipelineExecutor workers: one thread can finish the
  ///          whole query). The context may run bodies sequentially on
  ///          however many threads it has to spare.
  ///   true   gang — bodies are mutually dependent and must all run
  ///          concurrently (the cluster's per-node scheduler/worker
  ///          loops: no body exits until the query terminates globally).
  ///          The context must give every body its own thread.
  virtual void SpawnWorkers(uint32_t n,
                            const std::function<void(uint32_t)>& body,
                            bool gang = false) = 0;

  /// Idle-worker hook: may run one activation of another in-flight
  /// execution. Returns true iff foreign work was executed.
  virtual bool Park() { return false; }

  /// Publishes this execution's cross-query steal entry point. The hook
  /// runs at most one activation and returns whether it did.
  virtual void SetStealHook(std::function<bool()> hook) { (void)hook; }
  /// Unpublishes the hook and waits for in-flight calls to drain.
  virtual void ClearStealHook() {}

  /// Upper bound on concurrent foreign callers of the steal hook.
  virtual uint32_t GuestSlots() const { return 0; }

  /// Cooperative cancellation: true once the owner asked this execution
  /// to stop (checked per activation batch).
  virtual bool StopRequested() const { return false; }
};

/// The legacy spawn-per-query context: SpawnWorkers starts n dedicated
/// std::threads and joins them. Kept behind ExecOptions::use_shared_pool =
/// false for A/B benchmarking, and as the default when an executor is used
/// white-box with no context at all.
class ThreadSpawnContext final : public ExecContext {
 public:
  /// `stop` (optional) is the cancellation token; `spawn_counter`
  /// (optional) is bumped once per thread created, so benches can report
  /// total threads spawned by the legacy path.
  explicit ThreadSpawnContext(const std::atomic<bool>* stop = nullptr,
                              std::atomic<uint64_t>* spawn_counter = nullptr)
      : stop_(stop), spawn_counter_(spawn_counter) {}

  void SpawnWorkers(uint32_t n, const std::function<void(uint32_t)>& body,
                    bool gang = false) override;

  bool StopRequested() const override {
    return stop_ != nullptr && stop_->load(std::memory_order_acquire);
  }

 private:
  const std::atomic<bool>* stop_;
  std::atomic<uint64_t>* spawn_counter_;
};

}  // namespace hierdb

#endif  // HIERDB_COMMON_EXEC_CONTEXT_H_
