// Zipf-distributed sampling and Zipf partition-size generation.
//
// The paper models redistribution skew with a Zipf function [Zipf49] whose
// parameter theta ranges from 0 (uniform) to 1 (highly skewed). We provide
// both a sampler (draw item indices with Zipf frequencies) and a
// deterministic "apportioner" that splits a total of N tuples into K
// buckets whose sizes follow the Zipf law exactly — the apportioner is what
// the experiments use so that total work is invariant under skew.

#ifndef HIERDB_COMMON_ZIPF_H_
#define HIERDB_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace hierdb {

/// Splits `total` items into `buckets` parts with relative weights
/// 1/i^theta (i = 1..buckets). theta = 0 yields an even split; theta = 1
/// yields the classic Zipf distribution. The result always sums to `total`
/// exactly (largest-remainder rounding). `rng`, when provided, shuffles the
/// bucket ranks so that the heavy bucket is not always bucket 0.
std::vector<uint64_t> ZipfApportion(uint64_t total, uint32_t buckets,
                                    double theta, Rng* rng = nullptr);

/// Draws Zipf-distributed ranks in [0, n) with parameter theta using the
/// rejection-inversion method of Hörmann (as used by YCSB-style generators).
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double theta);

  uint32_t Sample(Rng* rng) const;

  uint32_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint32_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace hierdb

#endif  // HIERDB_COMMON_ZIPF_H_
