// Deterministic pseudo-random number generation.
//
// Every experiment in the harness derives all randomness from a single
// 64-bit seed so that runs are reproducible bit-for-bit. We use
// xoshiro256** seeded via SplitMix64, the combination recommended by the
// xoshiro authors. std::mt19937 is avoided because its state is large and
// its distributions are not specified identically across standard
// libraries.

#ifndef HIERDB_COMMON_RNG_H_
#define HIERDB_COMMON_RNG_H_

#include <cstdint>

namespace hierdb {

/// SplitMix64: used to expand a user seed into xoshiro state.
inline uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64Next(&sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [lo, hi).
  double NextDoubleInRange(double lo, double hi) {
    return lo + NextDouble() * (hi - lo);
  }

  /// Derive an independent child generator (for per-component streams).
  Rng Fork() { return Rng(Next() ^ 0xa5a5a5a5a5a5a5a5ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace hierdb

#endif  // HIERDB_COMMON_RNG_H_
