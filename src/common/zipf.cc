#include "common/zipf.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"

namespace hierdb {

std::vector<uint64_t> ZipfApportion(uint64_t total, uint32_t buckets,
                                    double theta, Rng* rng) {
  HIERDB_CHECK(buckets > 0, "ZipfApportion: buckets must be > 0");
  std::vector<double> weights(buckets);
  double sum = 0.0;
  for (uint32_t i = 0; i < buckets; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), theta);
    sum += weights[i];
  }

  // Largest-remainder apportionment so the parts sum to `total` exactly.
  std::vector<uint64_t> sizes(buckets, 0);
  std::vector<std::pair<double, uint32_t>> remainders(buckets);
  uint64_t assigned = 0;
  for (uint32_t i = 0; i < buckets; ++i) {
    double exact = static_cast<double>(total) * weights[i] / sum;
    sizes[i] = static_cast<uint64_t>(exact);
    assigned += sizes[i];
    remainders[i] = {exact - static_cast<double>(sizes[i]), i};
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  uint64_t leftover = total - assigned;
  for (uint64_t k = 0; k < leftover; ++k) {
    sizes[remainders[k % buckets].second] += 1;
  }

  if (rng != nullptr) {
    // Fisher-Yates shuffle of bucket ranks.
    for (uint32_t i = buckets - 1; i > 0; --i) {
      uint32_t j = static_cast<uint32_t>(rng->NextBounded(i + 1));
      std::swap(sizes[i], sizes[j]);
    }
  }
  return sizes;
}

ZipfSampler::ZipfSampler(uint32_t n, double theta) : n_(n), theta_(theta) {
  HIERDB_CHECK(n > 0, "ZipfSampler: n must be > 0");
  // Guard against theta == 1 singularities in the closed forms below.
  if (theta_ > 0.9999 && theta_ < 1.0001) theta_ = 1.0001;
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta_));
}

double ZipfSampler::H(double x) const {
  return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
}

double ZipfSampler::HInverse(double x) const {
  return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
}

uint32_t ZipfSampler::Sample(Rng* rng) const {
  if (theta_ <= 1e-9) {
    return static_cast<uint32_t>(rng->NextBounded(n_));
  }
  while (true) {
    double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k - x <= s_) {
      return static_cast<uint32_t>(k) - 1;
    }
    if (u >= H(k + 0.5) - std::pow(k, -theta_)) {
      return static_cast<uint32_t>(k) - 1;
    }
  }
}

}  // namespace hierdb
