// Small statistics helpers used by the benchmark harness: running mean /
// variance (Welford), min/max, and geometric mean of ratios (the paper's
// methodology averages per-plan ratios, Section 5.1.3).

#ifndef HIERDB_COMMON_STATS_H_
#define HIERDB_COMMON_STATS_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace hierdb {

/// Running summary statistics (Welford's online algorithm).
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Arithmetic mean of a vector (0 for empty input).
double Mean(const std::vector<double>& xs);

/// Geometric mean of strictly positive values (0 for empty input).
double GeoMean(const std::vector<double>& xs);

/// Exact percentile with linear interpolation; p in [0, 100].
double Percentile(std::vector<double> xs, double p);

}  // namespace hierdb

#endif  // HIERDB_COMMON_STATS_H_
