#include "common/exec_context.h"

#include <thread>
#include <vector>

namespace hierdb {

void ThreadSpawnContext::SpawnWorkers(
    uint32_t n, const std::function<void(uint32_t)>& body, bool gang) {
  (void)gang;  // every body gets a dedicated thread either way
  if (n == 0) return;
  if (spawn_counter_ != nullptr) {
    spawn_counter_->fetch_add(n, std::memory_order_relaxed);
  }
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    threads.emplace_back([&body, i] { body(i); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace hierdb
