#include "common/stats.h"

#include <algorithm>

#include "common/status.h"

namespace hierdb {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    HIERDB_CHECK(x > 0.0, "GeoMean requires positive values");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  HIERDB_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace hierdb
