// Virtual-time and size units used throughout the simulator.
//
// Virtual time is an int64 count of nanoseconds. CPU work is expressed in
// "instructions" and converted to time once, through the configured MIPS
// rating (the paper's KSR1 processors are 40 MIPS).

#ifndef HIERDB_COMMON_UNITS_H_
#define HIERDB_COMMON_UNITS_H_

#include <cstdint>

namespace hierdb {

/// Virtual time in nanoseconds.
using SimTime = int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1024 * kKiB;

/// Converts an instruction count to virtual time at the given MIPS rating.
inline SimTime InstrToTime(double instructions, double mips) {
  // mips = million instructions per second => ns per instruction = 1000/mips.
  return static_cast<SimTime>(instructions * (1000.0 / mips));
}

/// Milliseconds (double) view of a SimTime, for reporting.
inline double ToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Seconds (double) view of a SimTime, for reporting.
inline double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace hierdb

#endif  // HIERDB_COMMON_UNITS_H_
