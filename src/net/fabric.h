// In-process interconnect between SM-nodes.
//
// The paper's cluster couples SM-nodes with a high-speed network whose
// cost model is: infinite bandwidth, 0.5 ms end-to-end delay, 10000
// instructions of CPU per 8 KB sent and per 8 KB received (§5.1.1 table).
// The Fabric reproduces the *interface* — message passing with per-node
// mailboxes served by a scheduler thread — on one multi-core host, and
// accounts every message and byte so the real cluster executor can report
// the same transfer-volume numbers the paper does. An optional injected
// delay approximates the end-to-end latency for experiments that need it;
// tests keep it at zero for determinism.

#ifndef HIERDB_NET_FABRIC_H_
#define HIERDB_NET_FABRIC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "fault/fault.h"
#include "net/message.h"
#include "obs/recorder.h"

namespace hierdb::net {

struct FabricOptions {
  uint32_t nodes = 1;
  /// Simulated end-to-end delay applied by Send (paper: 0.5 ms). Zero for
  /// deterministic unit tests.
  std::chrono::microseconds delay{0};
  /// Optional fault injector (not owned; must outlive the fabric). When
  /// armed, Send may drop, duplicate, or delay messages per the plan.
  /// kShutdown is exempt (losing shutdown would turn injected faults
  /// into unconditional hangs), as is kHeartbeat (the liveness layer's
  /// own traffic: a lost heartbeat is already just absence of signal,
  /// and counting it as a dropped message would flag clean runs).
  fault::FaultInjector* injector = nullptr;
  /// Session flight recorder (obs/recorder.h): Send mirrors every message
  /// as a kFabricSend instant — and injected drops/duplicates as
  /// kFabricDrop/kFabricDup — into the always-on black box. Null = one
  /// pointer check per Send.
  obs::FlightRecorder* recorder = nullptr;
  /// Query sequence tag for recorder events (0 = untagged).
  uint64_t recorder_query = 0;
};

struct FabricStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  /// Per message-type counts and wire bytes, indexed by MsgType.
  std::vector<uint64_t> by_type;
  std::vector<uint64_t> bytes_by_type;
  /// kTupleBatch wire bytes per destination operator (grown on demand), so
  /// executors can split the dataflow traffic per consumer — e.g. the
  /// cluster executor attributes inter-chain repartition traffic to the
  /// chain whose intermediate was shipped.
  std::vector<uint64_t> tuple_bytes_by_op;
  /// Injected faults that fired in Send (zero unless a plan is armed).
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t delayed = 0;
};

/// Blocking MPSC mailbox: many senders, one receiver (the node scheduler).
class Mailbox {
 public:
  void Push(Message&& m);

  /// Blocks until a message arrives; returns false after Close() once
  /// drained.
  bool Pop(Message* out);

  /// Non-blocking variant.
  bool TryPop(Message* out);

  /// Blocks up to `timeout` for a message; returns false on timeout or
  /// after Close() once drained. The receive-timeout primitive fault
  /// detection builds on: a receiver waiting on a dead sender wakes up
  /// bounded instead of hanging.
  bool PopFor(Message* out, std::chrono::microseconds timeout);

  void Close();
  size_t ApproxSize() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> items_;
  bool closed_ = false;
};

class Fabric {
 public:
  explicit Fabric(const FabricOptions& options);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  uint32_t nodes() const { return options_.nodes; }

  /// Delivers `m` to node `to`'s mailbox (stamps m.from = from).
  Status Send(uint32_t from, uint32_t to, Message m);

  /// Sends a copy to every node except `from`.
  Status Broadcast(uint32_t from, const Message& m);

  Mailbox& mailbox(uint32_t node) { return *mailboxes_[node]; }

  /// Closes every mailbox (shutdown path).
  void CloseAll();

  FabricStats stats() const;

 private:
  FabricOptions options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  /// Per-sender sequence counters; Send stamps Message::seq so receivers
  /// can deduplicate injected duplicates.
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> send_seq_;
  mutable std::mutex stats_mu_;
  FabricStats stats_;
};

}  // namespace hierdb::net

#endif  // HIERDB_NET_FABRIC_H_
