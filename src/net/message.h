// Typed messages for inter-node communication.
//
// SM-nodes communicate only by message passing (Section 2.1). The real
// cluster executor exchanges exactly the message kinds the paper's
// protocol needs:
//
//   global load balancing (§3.2/§4):
//     kStarving          requester -> all: "I have no local work", carries
//                        available memory;
//     kOffer             provider -> requester: best candidate queue
//                        (benefit/overhead) + provider load;
//     kAcquire           requester -> chosen provider: send me that queue;
//     kWork              provider -> requester: probe activations + the
//                        hash-table fragment they probe;
//     kNoWork            provider -> requester: nothing stealable;
//
//   operator-end detection (§4):
//     kEndOfQueuesAtNode node -> coordinator: all my queues of op X are
//                        inactive;
//     kDrainConfirm      node -> coordinator: no thread still processes X;
//     kOpTerminated      coordinator -> all: X is globally finished,
//                        unblock dependents;
//
//   liveness (fault detection):
//     kHeartbeat         node -> all: "my scheduler loop is alive", sent
//                        on a fixed cadence when liveness detection is
//                        enabled, so a stalled or crashed peer surfaces
//                        as silence instead of a hang;
//
//   dataflow:
//     kTupleBatch        pipelined tuples whose consumer lives on another
//                        node (only when operator homes differ). Also
//                        carries inter-chain repartition traffic: when a
//                        chain scans a prior chain's distributed
//                        intermediate, the rows rehash by the consuming
//                        join's key and remotely-homed buckets ship here.
//
// Payloads are flat byte buffers with explicit little-endian encoding; the
// envelope counts bytes so experiments can report transfer volumes
// (Section 5.3 compares FP ≈ 9 MB vs DP ≈ 2.5 MB on the chain workload).

#ifndef HIERDB_NET_MESSAGE_H_
#define HIERDB_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "mt/row.h"
#include "mt/tuple.h"

namespace hierdb::net {

enum class MsgType : uint8_t {
  kStarving = 0,
  kOffer,
  kAcquire,
  kWork,
  kNoWork,
  kEndOfQueuesAtNode,
  kDrainConfirm,
  kOpTerminated,
  kTupleBatch,
  kHeartbeat,
  kShutdown,  // keep last: stats arrays are sized kShutdown + 1
};

const char* MsgTypeName(MsgType t);

struct Message {
  MsgType type = MsgType::kShutdown;
  uint32_t from = 0;          ///< sender node id
  uint32_t op = 0;            ///< operator id, when meaningful
  uint32_t bucket = 0;        ///< bucket id, when meaningful
  uint64_t arg = 0;           ///< type-specific scalar (memory, load, ...)
  /// Per-sender sequence number stamped by Fabric::Send. Receivers use it
  /// to deduplicate when fault injection duplicates deliveries.
  uint64_t seq = 0;
  std::vector<uint8_t> payload;

  /// Wire size: envelope + payload, the quantity the transfer-volume
  /// experiments account.
  uint64_t wire_bytes() const { return 24 + payload.size(); }
};

// ---------------------------------------------------------------------
// Payload codecs. All encodings are explicit little-endian so the format
// is stable across hosts (and so tests can corrupt specific offsets).

void PutU32(std::vector<uint8_t>* out, uint32_t v);
void PutU64(std::vector<uint8_t>* out, uint64_t v);
void PutI64(std::vector<uint8_t>* out, int64_t v);

/// Cursor-based reader; Get* return false on underflow.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& buf) : buf_(buf) {}
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

/// Encodes a batch of tuples (a data activation's contents).
std::vector<uint8_t> EncodeTuples(const std::vector<mt::Tuple>& tuples);
Result<std::vector<mt::Tuple>> DecodeTuples(const std::vector<uint8_t>& buf);

/// A hash-table fragment shipped with acquired probe work: the build
/// tuples of one bucket (the requester rebuilds the table locally, which
/// costs less than shipping pointer-linked structures).
struct TableFragment {
  uint32_t op = 0;      ///< the build operator the fragment came from
  uint32_t bucket = 0;
  std::vector<mt::Tuple> build_tuples;
};

std::vector<uint8_t> EncodeFragment(const TableFragment& frag);
Result<TableFragment> DecodeFragment(const std::vector<uint8_t>& buf);

/// Work bundle for kWork: a table fragment plus the probe activations
/// (tuple batches) stolen from the provider's queue.
struct WorkBundle {
  TableFragment fragment;
  std::vector<std::vector<mt::Tuple>> probe_batches;
};

std::vector<uint8_t> EncodeWork(const WorkBundle& work);
Result<WorkBundle> DecodeWork(const std::vector<uint8_t>& buf);

// ---------------------------------------------------------------------
// Multi-column row payloads (used by the cluster executor, whose pipelined
// rows widen as they flow — see mt/row.h).

/// Encodes a row batch (width + flat row-major data).
std::vector<uint8_t> EncodeBatch(const mt::Batch& batch);
Result<mt::Batch> DecodeBatch(const std::vector<uint8_t>& buf);

/// A bucket-tagged row batch: one data activation on the wire.
struct RowActivation {
  uint32_t bucket = 0;
  mt::Batch rows;
};

/// A bucket's build rows, shipped so a requester can rebuild the bucket's
/// hash table locally.
struct RowFragment {
  uint32_t bucket = 0;
  mt::Batch build_rows;
};

/// Work acquired through global load balancing (Section 3.2/4): probe
/// activations from the provider's queues plus the hash-table fragments
/// of every referenced bucket the requester does not already cache.
struct RowWorkBundle {
  uint32_t op = 0;
  std::vector<RowFragment> fragments;
  std::vector<RowActivation> activations;

  uint64_t fragment_rows() const {
    uint64_t n = 0;
    for (const auto& f : fragments) n += f.build_rows.rows();
    return n;
  }
};

std::vector<uint8_t> EncodeRowWork(const RowWorkBundle& work);
Result<RowWorkBundle> DecodeRowWork(const std::vector<uint8_t>& buf);

}  // namespace hierdb::net

#endif  // HIERDB_NET_MESSAGE_H_
