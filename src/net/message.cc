#include "net/message.h"

namespace hierdb::net {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kStarving: return "Starving";
    case MsgType::kOffer: return "Offer";
    case MsgType::kAcquire: return "Acquire";
    case MsgType::kWork: return "Work";
    case MsgType::kNoWork: return "NoWork";
    case MsgType::kEndOfQueuesAtNode: return "EndOfQueuesAtNode";
    case MsgType::kDrainConfirm: return "DrainConfirm";
    case MsgType::kOpTerminated: return "OpTerminated";
    case MsgType::kTupleBatch: return "TupleBatch";
    case MsgType::kHeartbeat: return "Heartbeat";
    case MsgType::kShutdown: return "Shutdown";
  }
  return "Unknown";
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

bool Reader::GetU32(uint32_t* v) {
  if (pos_ + 4 > buf_.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(buf_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return true;
}

bool Reader::GetU64(uint64_t* v) {
  if (pos_ + 8 > buf_.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(buf_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return true;
}

bool Reader::GetI64(int64_t* v) {
  uint64_t u;
  if (!GetU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

std::vector<uint8_t> EncodeTuples(const std::vector<mt::Tuple>& tuples) {
  std::vector<uint8_t> out;
  out.reserve(8 + tuples.size() * 16);
  PutU64(&out, tuples.size());
  for (const auto& t : tuples) {
    PutI64(&out, t.key);
    PutI64(&out, t.payload);
  }
  return out;
}

namespace {

bool DecodeTuplesInto(Reader* r, std::vector<mt::Tuple>* out) {
  uint64_t n;
  if (!r->GetU64(&n)) return false;
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    mt::Tuple t;
    if (!r->GetI64(&t.key) || !r->GetI64(&t.payload)) return false;
    out->push_back(t);
  }
  return true;
}

}  // namespace

Result<std::vector<mt::Tuple>> DecodeTuples(const std::vector<uint8_t>& buf) {
  Reader r(buf);
  std::vector<mt::Tuple> out;
  if (!DecodeTuplesInto(&r, &out) || !r.exhausted()) {
    return Status::Internal("malformed tuple batch payload");
  }
  return out;
}

std::vector<uint8_t> EncodeFragment(const TableFragment& frag) {
  std::vector<uint8_t> out;
  PutU32(&out, frag.op);
  PutU32(&out, frag.bucket);
  PutU64(&out, frag.build_tuples.size());
  for (const auto& t : frag.build_tuples) {
    PutI64(&out, t.key);
    PutI64(&out, t.payload);
  }
  return out;
}

namespace {

bool DecodeFragmentFrom(Reader* r, TableFragment* frag) {
  uint64_t n;
  if (!r->GetU32(&frag->op) || !r->GetU32(&frag->bucket) || !r->GetU64(&n)) {
    return false;
  }
  frag->build_tuples.clear();
  frag->build_tuples.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    mt::Tuple t;
    if (!r->GetI64(&t.key) || !r->GetI64(&t.payload)) return false;
    frag->build_tuples.push_back(t);
  }
  return true;
}

}  // namespace

Result<TableFragment> DecodeFragment(const std::vector<uint8_t>& buf) {
  Reader r(buf);
  TableFragment frag;
  if (!DecodeFragmentFrom(&r, &frag) || !r.exhausted()) {
    return Status::Internal("malformed table fragment payload");
  }
  return frag;
}

std::vector<uint8_t> EncodeWork(const WorkBundle& work) {
  std::vector<uint8_t> out = EncodeFragment(work.fragment);
  PutU64(&out, work.probe_batches.size());
  for (const auto& batch : work.probe_batches) {
    PutU64(&out, batch.size());
    for (const auto& t : batch) {
      PutI64(&out, t.key);
      PutI64(&out, t.payload);
    }
  }
  return out;
}

Result<WorkBundle> DecodeWork(const std::vector<uint8_t>& buf) {
  Reader r(buf);
  WorkBundle work;
  uint64_t batches;
  if (!DecodeFragmentFrom(&r, &work.fragment) || !r.GetU64(&batches)) {
    return Status::Internal("malformed work bundle payload");
  }
  work.probe_batches.reserve(batches);
  for (uint64_t b = 0; b < batches; ++b) {
    uint64_t n;
    if (!r.GetU64(&n)) return Status::Internal("malformed work bundle batch");
    std::vector<mt::Tuple> batch;
    batch.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      mt::Tuple t;
      if (!r.GetI64(&t.key) || !r.GetI64(&t.payload)) {
        return Status::Internal("malformed work bundle tuple");
      }
      batch.push_back(t);
    }
    work.probe_batches.push_back(std::move(batch));
  }
  if (!r.exhausted()) return Status::Internal("trailing bytes in work bundle");
  return work;
}

std::vector<uint8_t> EncodeBatch(const mt::Batch& batch) {
  std::vector<uint8_t> out;
  out.reserve(12 + batch.data().size() * 8);
  PutU32(&out, batch.width());
  PutU64(&out, batch.data().size());
  for (int64_t v : batch.data()) PutI64(&out, v);
  return out;
}

namespace {

bool DecodeBatchFrom(Reader* r, mt::Batch* out) {
  uint32_t width;
  uint64_t n;
  if (!r->GetU32(&width) || !r->GetU64(&n)) return false;
  if (width == 0 && n > 0) return false;
  if (width > 0 && n % width != 0) return false;
  *out = mt::Batch(width);
  out->data().reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    int64_t v;
    if (!r->GetI64(&v)) return false;
    out->data().push_back(v);
  }
  return true;
}

}  // namespace

Result<mt::Batch> DecodeBatch(const std::vector<uint8_t>& buf) {
  Reader r(buf);
  mt::Batch out;
  if (!DecodeBatchFrom(&r, &out) || !r.exhausted()) {
    return Status::Internal("malformed row batch payload");
  }
  return out;
}

std::vector<uint8_t> EncodeRowWork(const RowWorkBundle& work) {
  std::vector<uint8_t> out;
  PutU32(&out, work.op);
  PutU64(&out, work.fragments.size());
  for (const auto& f : work.fragments) {
    PutU32(&out, f.bucket);
    auto b = EncodeBatch(f.build_rows);
    out.insert(out.end(), b.begin(), b.end());
  }
  PutU64(&out, work.activations.size());
  for (const auto& a : work.activations) {
    PutU32(&out, a.bucket);
    auto b = EncodeBatch(a.rows);
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

Result<RowWorkBundle> DecodeRowWork(const std::vector<uint8_t>& buf) {
  Reader r(buf);
  RowWorkBundle work;
  uint64_t nfrag, nact;
  if (!r.GetU32(&work.op) || !r.GetU64(&nfrag)) {
    return Status::Internal("malformed row work header");
  }
  for (uint64_t i = 0; i < nfrag; ++i) {
    RowFragment f;
    if (!r.GetU32(&f.bucket) || !DecodeBatchFrom(&r, &f.build_rows)) {
      return Status::Internal("malformed row work fragment");
    }
    work.fragments.push_back(std::move(f));
  }
  if (!r.GetU64(&nact)) return Status::Internal("malformed row work count");
  for (uint64_t i = 0; i < nact; ++i) {
    RowActivation a;
    if (!r.GetU32(&a.bucket) || !DecodeBatchFrom(&r, &a.rows)) {
      return Status::Internal("malformed row work activation");
    }
    work.activations.push_back(std::move(a));
  }
  if (!r.exhausted()) return Status::Internal("trailing bytes in row work");
  return work;
}

}  // namespace hierdb::net
