#include "net/fabric.h"

#include <thread>

namespace hierdb::net {

void Mailbox::Push(Message&& m) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(std::move(m));
  }
  cv_.notify_one();
}

bool Mailbox::Pop(Message* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !items_.empty() || closed_; });
  if (items_.empty()) return false;
  *out = std::move(items_.front());
  items_.pop_front();
  return true;
}

bool Mailbox::TryPop(Message* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.empty()) return false;
  *out = std::move(items_.front());
  items_.pop_front();
  return true;
}

bool Mailbox::PopFor(Message* out, std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; });
  if (items_.empty()) return false;
  *out = std::move(items_.front());
  items_.pop_front();
  return true;
}

void Mailbox::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t Mailbox::ApproxSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

Fabric::Fabric(const FabricOptions& options) : options_(options) {
  HIERDB_CHECK(options_.nodes > 0, "fabric needs at least one node");
  mailboxes_.reserve(options_.nodes);
  for (uint32_t i = 0; i < options_.nodes; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    send_seq_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  stats_.by_type.assign(static_cast<size_t>(MsgType::kShutdown) + 1, 0);
  stats_.bytes_by_type.assign(static_cast<size_t>(MsgType::kShutdown) + 1, 0);
}

Status Fabric::Send(uint32_t from, uint32_t to, Message m) {
  if (from >= options_.nodes || to >= options_.nodes) {
    return Status::OutOfRange("node id out of range in Send");
  }
  if (from == to) {
    return Status::InvalidArgument(
        "intra-node traffic must use shared memory, not the fabric");
  }
  m.from = from;
  m.seq = 1 + send_seq_[from]->fetch_add(1, std::memory_order_relaxed);
  // Flight-recorder mirror: node = sender, worker = destination node,
  // detail = wire bytes.
  obs::FlightRecorder* rec = options_.recorder;
  if (rec != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kFabricSend;
    ev.node = static_cast<int32_t>(from);
    ev.worker = static_cast<int32_t>(to);
    ev.op = static_cast<int32_t>(m.op);
    ev.start_ns = ev.end_ns = rec->NowNs();
    ev.detail = m.wire_bytes();
    ev.query = options_.recorder_query;
    rec->Record(ev);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.messages;
    stats_.bytes += m.wire_bytes();
    ++stats_.by_type[static_cast<size_t>(m.type)];
    stats_.bytes_by_type[static_cast<size_t>(m.type)] += m.wire_bytes();
    if (m.type == MsgType::kTupleBatch) {
      if (stats_.tuple_bytes_by_op.size() <= m.op) {
        stats_.tuple_bytes_by_op.resize(m.op + 1, 0);
      }
      stats_.tuple_bytes_by_op[m.op] += m.wire_bytes();
    }
  }
  // Fault injection: the single choke point for message faults. Shutdown
  // is exempt (see FabricOptions::injector).
  fault::FaultInjector* inj = options_.injector;
  bool duplicate = false;
  if (inj != nullptr && inj->armed() && m.type != MsgType::kShutdown &&
      m.type != MsgType::kHeartbeat) {
    if (inj->ShouldDropMessage()) {
      if (rec != nullptr) {
        rec->Instant(obs::EventKind::kFabricDrop, options_.recorder_query,
                     m.wire_bytes(), static_cast<int32_t>(from),
                     static_cast<int32_t>(to));
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.dropped;
      return Status::OK();  // silently lost, as on a real network
    }
    duplicate = inj->ShouldDuplicateMessage();
    if (inj->ShouldDelayMessage()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.delayed;
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(inj->plan().delay_us));
    }
  }
  if (options_.delay.count() > 0) {
    std::this_thread::sleep_for(options_.delay);
  }
  if (duplicate) {
    if (rec != nullptr) {
      rec->Instant(obs::EventKind::kFabricDup, options_.recorder_query,
                   m.wire_bytes(), static_cast<int32_t>(from),
                   static_cast<int32_t>(to));
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.duplicated;
    }
    mailboxes_[to]->Push(Message(m));  // same seq: receiver dedups
  }
  mailboxes_[to]->Push(std::move(m));
  return Status::OK();
}

Status Fabric::Broadcast(uint32_t from, const Message& m) {
  for (uint32_t to = 0; to < options_.nodes; ++to) {
    if (to == from) continue;
    HIERDB_RETURN_NOT_OK(Send(from, to, m));
  }
  return Status::OK();
}

void Fabric::CloseAll() {
  for (auto& mb : mailboxes_) mb->Close();
}

FabricStats Fabric::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace hierdb::net
