#include "cluster/cluster_executor.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/zipf.h"
#include "mt/column_batch.h"
#include "mt/row_table.h"
#include "net/message.h"

namespace hierdb::cluster {

using mt::Batch;
using mt::LocalStrategy;
using mt::ResultDigest;
using mt::RowTable;
using net::Message;
using net::MsgType;

// ---------------------------------------------------------------------
// Partition helpers.

PartitionedTable PartitionByHash(const mt::Table& table, uint32_t nodes,
                                 uint32_t col) {
  PartitionedTable out;
  out.width = table.width();
  out.parts.assign(nodes, Batch(table.width()));
  for (size_t i = 0; i < table.rows(); ++i) {
    const int64_t* row = table.batch.row(i);
    uint32_t node =
        static_cast<uint32_t>((mt::HashKey(row[col]) >> 32) % nodes);
    out.parts[node].AppendRow(row);
  }
  return out;
}

PartitionedTable PartitionRoundRobin(const mt::Table& table, uint32_t nodes) {
  PartitionedTable out;
  out.width = table.width();
  out.parts.assign(nodes, Batch(table.width()));
  for (size_t i = 0; i < table.rows(); ++i) {
    out.parts[i % nodes].AppendRow(table.batch.row(i));
  }
  return out;
}

PartitionedTable PartitionWithPlacementSkew(const mt::Table& table,
                                            uint32_t nodes, double theta,
                                            uint64_t seed) {
  PartitionedTable out;
  out.width = table.width();
  out.parts.assign(nodes, Batch(table.width()));
  Rng rng(seed);
  std::vector<uint64_t> sizes =
      ZipfApportion(table.rows(), nodes, theta, &rng);
  size_t i = 0;
  for (uint32_t n = 0; n < nodes; ++n) {
    for (uint64_t j = 0; j < sizes[n]; ++j, ++i) {
      out.parts[n].AppendRow(table.batch.row(i));
    }
  }
  return out;
}

Status ChainQuery::Validate(uint32_t nodes) const {
  if (input == nullptr) return Status::InvalidArgument("null input");
  if (input->parts.size() != nodes) {
    return Status::InvalidArgument("input partition count != nodes");
  }
  uint32_t width = input->width;
  for (const Join& j : joins) {
    if (j.build == nullptr) return Status::InvalidArgument("null build");
    if (j.build->parts.size() != nodes) {
      return Status::InvalidArgument("build partition count != nodes");
    }
    if (j.probe_col >= width) {
      return Status::OutOfRange("probe col out of pipelined width");
    }
    if (j.build_col >= j.build->width) {
      return Status::OutOfRange("build col out of build width");
    }
    width += j.build->width;
  }
  return Status::OK();
}

Status PlanQuery::Validate(uint32_t nodes) const {
  std::vector<uint32_t> widths;
  widths.reserve(tables.size());
  for (const PartitionedTable* t : tables) {
    if (t == nullptr) return Status::InvalidArgument("null table");
    if (t->parts.size() != nodes) {
      return Status::InvalidArgument("table partition count != nodes");
    }
    widths.push_back(t->width);
  }
  HIERDB_RETURN_NOT_OK(plan.ValidateWidths(widths));
  for (const mt::Chain& c : plan.chains) {
    if (c.joins.empty()) {
      return Status::InvalidArgument("every chain needs at least one join");
    }
  }
  // Every non-final chain must feed a later chain: an unconsumed output
  // would have nowhere to materialize and be dropped silently.
  std::vector<bool> mat = plan.MaterializedChains();
  for (size_t c = 0; c + 1 < plan.chains.size(); ++c) {
    if (!mat[c]) {
      return Status::InvalidArgument(
          "chain " + std::to_string(c) +
          " is not the final chain and no later chain consumes its output");
    }
  }
  return Status::OK();
}

namespace {

mt::Table Gather(const PartitionedTable& pt) {
  mt::Table t;
  t.batch = Batch(pt.width);
  for (const Batch& p : pt.parts) {
    t.batch.data().insert(t.batch.data().end(), p.data().begin(),
                          p.data().end());
  }
  return t;
}

}  // namespace

Result<ResultDigest> ReferenceExecute(const ChainQuery& query) {
  HIERDB_RETURN_NOT_OK(
      query.Validate(static_cast<uint32_t>(query.input->parts.size())));
  std::vector<mt::Table> tables;
  tables.push_back(Gather(*query.input));
  mt::PipelinePlan plan;
  mt::Chain chain;
  chain.input = mt::Source::OfTable(0);
  for (const auto& j : query.joins) {
    tables.push_back(Gather(*j.build));
    chain.joins.push_back({mt::Source::OfTable(
                               static_cast<uint32_t>(tables.size() - 1)),
                           j.probe_col, j.build_col});
  }
  plan.chains.push_back(std::move(chain));
  std::vector<const mt::Table*> ptrs;
  for (const auto& t : tables) ptrs.push_back(&t);
  return mt::ReferenceExecute(plan, ptrs);
}

Result<ResultDigest> ReferenceExecute(const PlanQuery& query) {
  return ReferenceExecute(query, {});
}

Result<ResultDigest> ReferenceExecute(
    const PlanQuery& query, const std::vector<mt::CaptureSink>& captures) {
  HIERDB_RETURN_NOT_OK(query.Validate(
      query.tables.empty()
          ? 0
          : static_cast<uint32_t>(query.tables.front()->parts.size())));
  std::vector<mt::Table> tables;
  tables.reserve(query.tables.size());
  for (const PartitionedTable* pt : query.tables) tables.push_back(Gather(*pt));
  std::vector<const mt::Table*> ptrs;
  for (const auto& t : tables) ptrs.push_back(&t);
  return mt::ReferenceExecute(query.plan, ptrs, captures);
}

double ClusterStats::NodeImbalance() const {
  if (busy_per_node.empty()) return 1.0;
  uint64_t max = 0, sum = 0;
  for (uint64_t b : busy_per_node) {
    max = std::max(max, b);
    sum += b;
  }
  if (sum == 0) return 1.0;
  return static_cast<double>(max) * busy_per_node.size() /
         static_cast<double>(sum);
}

// ---------------------------------------------------------------------
// Implementation.

namespace {

struct Activation {
  uint32_t op = 0;
  uint32_t bucket = 0;
  Batch rows;
};

class BQueue {
 public:
  bool TryPush(Activation&& a, uint32_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() >= capacity) return false;
    items_.push_back(std::move(a));
    return true;
  }
  bool TryPopFront(Activation* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }
  bool TryPopBack(Activation* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.back());
    items_.pop_back();
    return true;
  }
  size_t ApproxSize() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<Activation> items_;
};

constexpr uint32_t kAnyOp = UINT32_MAX;
constexpr int64_t kMorselsUnknown = -1;  // trigger source chain still running

}  // namespace

struct ClusterExecutor::Impl {
  // ---- static query shape ----
  //
  // The op space concatenates per-chain blocks. Chain c with k joins owns
  // ops [op_base, op_base + 3k]:
  //   op_base + j          buildscan of join j   (trigger)
  //   op_base + k + j      build of join j       (data)
  //   op_base + 2k         scan                  (trigger)
  //   op_base + 2k + 1 + j probe of join j       (data)
  // Joins are likewise numbered globally (join_base + j) to index the
  // per-join hash-table and stolen-fragment state.
  const ClusterOptions& opt;
  const PlanQuery* query = nullptr;
  uint32_t nops = 0;
  uint32_t njoins = 0;
  // Keep the final chain's output rows (per node, in inter[]) so Execute
  // can gather them into a materialized result. Set before Compile().
  bool materialize_final = false;
  // Distributed aggregation over the final chain's rows (set by Compile
  // from the plan): the final rows are kept per node as aggregation input
  // and the per-thread digests are skipped — the result identity comes
  // from the merged aggregate rows instead.
  const mt::AggSpec* agg = nullptr;

  struct ChainInfo {
    uint32_t k = 0;          // joins
    uint32_t op_base = 0;
    uint32_t join_base = 0;
    uint32_t terminal = 0;   // last probe op
    uint32_t out_width = 0;
    bool materialized = false;  // consumed by a later chain
    int32_t input_gate = -1;    // terminal op of the input's source chain
    int32_t stage_gate = -1;    // previous chain's terminal (serialize mode)
  };
  std::vector<ChainInfo> chains;
  std::vector<uint32_t> op_chain;  // op id -> chain index

  // Per global join: the pipelined probe column, the build column, the
  // build source (table or chain) and its width.
  std::vector<uint32_t> jn_probe_col, jn_build_col, jn_build_width;
  std::vector<mt::Source> jn_build_src;
  std::vector<int32_t> jn_build_gate;  // build source chain's terminal op

  std::vector<uint32_t> probe_ops;  // all probe ops (steal candidates)
  // Trigger ops whose morsel count resolves only once their source chain
  // terminates: (trigger op, source chain).
  std::vector<std::pair<uint32_t, uint32_t>> deferred_triggers;
  // Destination ops receiving a chain's repartitioned intermediate, per
  // source chain (to attribute kTupleBatch traffic in the stats).
  std::vector<std::vector<uint32_t>> repart_dst_ops;

  net::Fabric fabric;

  // Worker provider + cooperative cancellation for this run.
  ExecContext* ctx = nullptr;
  std::atomic<bool> cancelled{false};

  // ---- tracing (null disables the feature; see ClusterOptions) ----
  // Slot s belongs exclusively to gang body s = node * (T+1) + role, so
  // span cells need no synchronization; Drain happens after the gang
  // barrier.
  obs::TraceSink* trace = nullptr;
  uint32_t trace_slots = 0;
  std::vector<obs::OpSpanAgg> trace_cells;  // [slot * nops + op]

  uint32_t slot_of(uint32_t node, uint32_t role) const {
    return node * (opt.threads_per_node + 1) + role;
  }
  /// Folds one activation into worker t's span cell. Pre: trace != null.
  void TraceActivation(uint32_t node, uint32_t t, uint32_t op, uint64_t t0,
                       uint64_t rows_in, uint64_t rows_out) {
    trace_cells[static_cast<size_t>(slot_of(node, t + 1)) * nops + op].Add(
        t0, trace->NowNs(), rows_in, rows_out);
  }
  /// Emits accumulated span cells into the sink. Runs after the gang
  /// barrier (every exit path, cancelled/failed runs included).
  void EmitTraceCells() {
    if (trace == nullptr) return;
    const uint32_t per_node = opt.threads_per_node + 1;
    for (uint32_t s = 0; s < trace_slots; ++s) {
      for (uint32_t op = 0; op < nops; ++op) {
        const obs::OpSpanAgg& cell =
            trace_cells[static_cast<size_t>(s) * nops + op];
        if (cell.empty()) continue;
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::kSpan;
        ev.node = static_cast<int32_t>(s / per_node);
        ev.worker = static_cast<int32_t>(s % per_node) - 1;  // -1 = scheduler
        ev.op = static_cast<int32_t>(op);
        ev.start_ns = cell.first_ns;
        ev.end_ns = cell.last_ns;
        ev.activations = cell.activations;
        ev.rows_in = cell.rows_in;
        ev.rows_out = cell.rows_out;
        ev.detail = cell.busy_ns;
        trace->Record(s, ev);
      }
    }
  }

  // ---- fault detection state ----
  // Message faults are only forwarded to the fabric when detection is on:
  // without the watchdog a dropped message is an undetectable hang or a
  // silently wrong digest.
  std::atomic<bool> unavailable{false};
  std::mutex fail_mu;
  std::string unavailable_msg;
  /// Global progress clock: bumped on every handled message and every
  /// executed activation/morsel (only when detection is on). Node 0's
  /// scheduler watches it; no movement past the liveness timeout while
  /// the query is unfinished means termination can no longer be reached
  /// (the dropped-message case where every loop is still alive).
  std::atomic<uint64_t> progress{0};
  std::atomic<uint64_t> dup_dropped{0};

  static uint64_t MonoNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  explicit Impl(const ClusterOptions& o)
      : opt(o),
        fabric({.nodes = o.nodes,
                .injector = o.detect_faults ? o.injector : nullptr,
                .recorder = o.recorder,
                .recorder_query = o.recorder_query}) {}

  // ---- plan-point captures (opt.captures; empty = no per-row work) ----
  void OfferCapture(uint32_t chain, uint32_t point, const int64_t* row,
                    uint32_t width) {
    for (const mt::CaptureSink& cs : opt.captures) {
      if (cs.chain == chain && cs.point == point && cs.sink != nullptr) {
        cs.sink->Offer(row, width);
      }
    }
  }

  /// First stop-observer tears the whole run down: every node's done flag
  /// releases its workers, and schedulers exit on `cancelled`.
  void CancelAll() {
    cancelled.store(true, std::memory_order_release);
    for (auto& ns : node_state) {
      ns->done.store(true, std::memory_order_release);
      ns->wake_cv.notify_all();
    }
  }

  /// Fault detection verdict: records the first diagnosis, then tears the
  /// run down. Execute translates it into Status::Unavailable.
  void FailUnavailable(std::string msg) {
    {
      std::lock_guard<std::mutex> lock(fail_mu);
      if (unavailable_msg.empty()) unavailable_msg = std::move(msg);
    }
    unavailable.store(true, std::memory_order_release);
    CancelAll();
  }

  struct NodeState;  // defined below (per-node state)

  /// Duplicate suppression for injected message duplication: Send stamps
  /// a per-sender sequence number, the receiving scheduler drops repeats.
  /// Only consulted when duplication is armed, so the normal path stays a
  /// pointer check.
  bool IsDuplicate(NodeState& ns, const net::Message& m) {
    if (opt.injector == nullptr || opt.injector->plan().dup_prob <= 0.0 ||
        m.seq == 0) {
      return false;
    }
    if (!ns.seen_seq[m.from].insert(m.seq).second) {
      dup_dropped.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  uint32_t chain_of(uint32_t op) const { return op_chain[op]; }
  uint32_t build_op(uint32_t c, uint32_t j) const {
    return chains[c].op_base + chains[c].k + j;
  }
  uint32_t scan_op(uint32_t c) const {
    return chains[c].op_base + 2 * chains[c].k;
  }
  uint32_t probe_op(uint32_t c, uint32_t j) const {
    return chains[c].op_base + 2 * chains[c].k + 1 + j;
  }
  bool is_probe(uint32_t op) const {
    const ChainInfo& ci = chains[op_chain[op]];
    return op - ci.op_base > 2 * ci.k;
  }
  bool is_build(uint32_t op) const {
    const ChainInfo& ci = chains[op_chain[op]];
    uint32_t rel = op - ci.op_base;
    return rel >= ci.k && rel < 2 * ci.k;
  }
  bool is_trigger(uint32_t op) const {
    const ChainInfo& ci = chains[op_chain[op]];
    uint32_t rel = op - ci.op_base;
    return rel < ci.k || rel == 2 * ci.k;
  }
  /// Global join index of a buildscan/build/probe op.
  uint32_t join_of(uint32_t op) const {
    const ChainInfo& ci = chains[op_chain[op]];
    uint32_t rel = op - ci.op_base;
    if (rel < ci.k) return ci.join_base + rel;                    // buildscan
    if (rel < 2 * ci.k) return ci.join_base + rel - ci.k;         // build
    return ci.join_base + rel - 2 * ci.k - 1;                     // probe
  }
  uint32_t producer_of(uint32_t op) const {
    const ChainInfo& ci = chains[op_chain[op]];
    uint32_t rel = op - ci.op_base;
    if (rel < 2 * ci.k) return op - ci.k;  // build <- its buildscan
    // Probe j <- probe j-1, probe 0 <- scan; both are op - 1.
    return op - 1;
  }
  uint32_t home_of(uint32_t bucket) const { return bucket % opt.nodes; }

  // ---- per-node state ----
  struct NodeState {
    // Queues: [op * T + t]; only data ops (build/probe) use them.
    std::vector<std::unique_ptr<BQueue>> queues;
    std::vector<std::atomic<int64_t>> pending;       // per op
    std::vector<std::atomic<int64_t>> morsels_left;  // per trigger op
    std::vector<std::atomic<size_t>> cursor;         // per trigger op
    std::vector<std::atomic<bool>> terminated;       // global, per op

    // Local bucket tables (home buckets only) + insert locks.
    std::vector<std::vector<RowTable>> tables;  // [join][bucket]
    std::vector<std::vector<std::unique_ptr<std::mutex>>> bucket_mu;

    // Stolen fragments: [join] -> bucket -> table.
    std::vector<std::unordered_map<uint32_t, std::unique_ptr<RowTable>>>
        stolen;
    std::vector<std::unique_ptr<std::shared_mutex>> stolen_mu;  // per join
    // Buckets whose fragments we cached, per join (the Section 4 list).
    std::vector<std::unordered_set<uint32_t>> cached_buckets;

    // Distributed intermediates: this node's share of each materialized
    // chain's output (appended by the chain's terminal probe, frozen once
    // the chain globally terminates, then scanned by consuming triggers).
    std::vector<Batch> inter;                            // per chain
    std::vector<std::unique_ptr<std::mutex>> inter_mu;   // per chain

    // Distributed aggregation, phase 1: per-thread partial group tables
    // fed directly by the final chain's terminal probe (the join result
    // is never buffered — memory stays O(groups) per thread).
    std::vector<mt::AggTable> agg_partials;              // per thread
    // Intermediate rows this node shipped to a remote home while
    // repartitioning, per source chain.
    std::vector<std::atomic<uint64_t>> repart_rows;

    // Steal protocol (scheduler-owned unless noted).
    std::atomic<bool> starving{false};                 // DP: set by workers
    std::vector<std::atomic<bool>> fp_starving;        // FP: per op
    std::atomic<int64_t> steal_inflight{0};
    bool steal_in_progress = false;
    uint32_t steal_op = kAnyOp;
    uint32_t offers_pending = 0;
    uint32_t best_provider = UINT32_MAX;
    uint32_t best_op = kAnyOp;
    uint64_t best_count = 0;

    // End detection (scheduler-owned).
    std::vector<bool> reported;
    std::vector<bool> drain_requested;
    std::vector<bool> drain_acked;

    // Scheduler overflow buffer for routing into full queues.
    std::deque<Activation> route_overflow;

    // Per-sender message sequence numbers already handled (consumed only
    // by this node's receive loops; populated only when duplication
    // faults are armed).
    std::vector<std::unordered_set<uint64_t>> seen_seq;

    // FP stage assignments: packed [lo, hi) ranges per op.
    std::vector<uint64_t> fp_range;

    std::atomic<bool> done{false};
    std::atomic<bool> failed{false};

    // Worker wakeup: schedulers notify after routing work or state
    // changes so idle workers don't spin-poll.
    std::mutex wake_mu;
    std::condition_variable wake_cv;

    // Results and stats.
    std::vector<ResultDigest> digests;          // per thread
    std::vector<uint64_t> busy;                 // per thread
    // Rows produced by each chain's terminal probe: [chain * T + t],
    // written only by worker t (always measured, tracing on or off).
    std::vector<uint64_t> chain_rows;
    std::atomic<uint64_t> idle{0};
    std::atomic<uint64_t> stolen_acts{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> steal_reqs{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> shipped_rows{0};
    std::atomic<uint64_t> filtered{0};
    std::atomic<uint64_t> agg_repart_rows{0};

    // Per-worker outboxes for full local queues.
    std::vector<std::deque<Activation>> outbox;

    // Per-worker scatter scratch, pooled by re-entrancy depth (FlushOutbox
    // may nest another activation while an outer frame scatters).
    struct Scratch {
      std::vector<Batch> bucket;
      std::vector<uint32_t> hit;
      // Vectorized data plane: selection vector, hash column and gathered
      // key column reused across activations (mt/column_batch.h kernels).
      mt::SelVec sel;
      std::vector<uint64_t> hashes;
      std::vector<int64_t> keys;
    };
    std::vector<std::vector<std::unique_ptr<Scratch>>> scratch_pool;
    std::vector<size_t> scratch_depth;
  };
  std::vector<std::unique_ptr<NodeState>> node_state;

  // Coordinator (node 0) bookkeeping.
  std::vector<uint32_t> coord_reports;
  std::vector<uint32_t> coord_acks;
  std::vector<bool> coord_drain;
  std::vector<bool> coord_terminated;

  // ------------------------------------------------------------------
  // Setup.

  void Compile(const PlanQuery& q) {
    query = &q;
    agg = q.plan.agg.has_value() ? &*q.plan.agg : nullptr;
    const auto& pchains = q.plan.chains;
    const uint32_t C = static_cast<uint32_t>(pchains.size());

    chains.clear();
    op_chain.clear();
    jn_probe_col.clear();
    jn_build_col.clear();
    jn_build_width.clear();
    jn_build_src.clear();
    jn_build_gate.clear();
    probe_ops.clear();
    deferred_triggers.clear();
    repart_dst_ops.assign(C, {});
    nops = 0;
    njoins = 0;

    auto src_width = [&](const mt::Source& s) -> uint32_t {
      // Pruned base tables enter the pipeline at their projected width
      // (scans emit only the kept columns; see ExecuteMorsel).
      return s.kind == mt::Source::Kind::kTable
                 ? q.plan.EffectiveTableWidth(s.index, q.tables[s.index]->width)
                 : chains[s.index].out_width;
    };
    std::vector<bool> mat = q.plan.MaterializedChains();
    for (uint32_t c = 0; c < C; ++c) {
      ChainInfo ci;
      ci.k = static_cast<uint32_t>(pchains[c].joins.size());
      ci.op_base = nops;
      ci.join_base = njoins;
      ci.terminal = ci.op_base + 3 * ci.k;  // last probe
      ci.materialized = mat[c];
      ci.out_width = src_width(pchains[c].input);
      if (pchains[c].input.kind == mt::Source::Kind::kChain) {
        ci.input_gate =
            static_cast<int32_t>(chains[pchains[c].input.index].terminal);
      }
      if (opt.serialize_chains && c > 0) {
        ci.stage_gate = static_cast<int32_t>(chains[c - 1].terminal);
      }
      for (uint32_t j = 0; j < ci.k; ++j) {
        const mt::JoinStep& js = pchains[c].joins[j];
        jn_probe_col.push_back(js.probe_col);
        jn_build_col.push_back(js.build_col);
        jn_build_width.push_back(src_width(js.build));
        jn_build_src.push_back(js.build);
        jn_build_gate.push_back(
            js.build.kind == mt::Source::Kind::kChain
                ? static_cast<int32_t>(chains[js.build.index].terminal)
                : -1);
        ci.out_width += jn_build_width.back();
      }
      nops += 3 * ci.k + 1;
      njoins += ci.k;
      chains.push_back(ci);
      op_chain.resize(nops, c);
      for (uint32_t j = 0; j < ci.k; ++j) probe_ops.push_back(probe_op(c, j));
      // Triggers over chain intermediates: morsel counts resolve when the
      // source chain terminates; also record the repartition destination.
      if (pchains[c].input.kind == mt::Source::Kind::kChain) {
        deferred_triggers.push_back({scan_op(c), pchains[c].input.index});
        repart_dst_ops[pchains[c].input.index].push_back(probe_op(c, 0));
      }
      for (uint32_t j = 0; j < ci.k; ++j) {
        const mt::Source& b = pchains[c].joins[j].build;
        if (b.kind == mt::Source::Kind::kChain) {
          deferred_triggers.push_back({ci.op_base + j, b.index});
          repart_dst_ops[b.index].push_back(build_op(c, j));
        }
      }
    }

    coord_reports.assign(nops, 0);
    coord_acks.assign(nops, 0);
    coord_drain.assign(nops, false);
    coord_terminated.assign(nops, false);

    const uint32_t T = opt.threads_per_node;
    const uint32_t B = opt.buckets;
    node_state.clear();
    for (uint32_t n = 0; n < opt.nodes; ++n) {
      auto ns = std::make_unique<NodeState>();
      ns->queues.reserve(static_cast<size_t>(nops) * T);
      for (uint32_t i = 0; i < nops * T; ++i) {
        ns->queues.push_back(std::make_unique<BQueue>());
      }
      ns->pending = std::vector<std::atomic<int64_t>>(nops);
      ns->morsels_left = std::vector<std::atomic<int64_t>>(nops);
      ns->cursor = std::vector<std::atomic<size_t>>(nops);
      ns->terminated = std::vector<std::atomic<bool>>(nops);
      ns->fp_starving = std::vector<std::atomic<bool>>(nops);
      for (uint32_t i = 0; i < nops; ++i) {
        ns->pending[i].store(0);
        ns->morsels_left[i].store(0);
        ns->cursor[i].store(0);
        ns->terminated[i].store(false);
        ns->fp_starving[i].store(false);
      }
      ns->tables.resize(njoins);
      ns->bucket_mu.resize(njoins);
      ns->stolen.resize(njoins);
      ns->stolen_mu.resize(njoins);
      ns->cached_buckets.resize(njoins);
      for (uint32_t g = 0; g < njoins; ++g) {
        ns->tables[g].resize(B);
        ns->bucket_mu[g].resize(B);
        ns->stolen_mu[g] = std::make_unique<std::shared_mutex>();
        for (uint32_t b = 0; b < B; ++b) {
          ns->tables[g][b].Init(jn_build_width[g], jn_build_col[g]);
          ns->bucket_mu[g][b] = std::make_unique<std::mutex>();
        }
      }
      ns->inter.resize(C);
      ns->inter_mu.resize(C);
      ns->repart_rows = std::vector<std::atomic<uint64_t>>(C);
      for (uint32_t c = 0; c < C; ++c) {
        // Under aggregation the final chain's rows fold into the partial
        // tables instead of materializing (agg output is gathered
        // separately).
        if (chains[c].materialized ||
            (materialize_final && agg == nullptr && c + 1 == C)) {
          ns->inter[c] = Batch(chains[c].out_width);
        }
        ns->inter_mu[c] = std::make_unique<std::mutex>();
        ns->repart_rows[c].store(0);
      }
      if (agg != nullptr) {
        ns->agg_partials.resize(T);
        for (mt::AggTable& t : ns->agg_partials) t.Init(agg);
      }
      ns->reported.assign(nops, false);
      ns->drain_requested.assign(nops, false);
      ns->drain_acked.assign(nops, false);
      ns->seen_seq.resize(opt.nodes);
      ns->digests.assign(T, {});
      ns->busy.assign(T, 0);
      ns->chain_rows.assign(static_cast<size_t>(C) * T, 0);
      ns->outbox.resize(T);
      ns->scratch_pool.resize(T);
      ns->scratch_depth.assign(T, 0);
      // Trigger morsel counts: known now for base-table sources, resolved
      // at source-chain termination for intermediate sources.
      auto morsels = [&](size_t rows) {
        return static_cast<int64_t>((rows + opt.morsel_rows - 1) /
                                    opt.morsel_rows);
      };
      for (uint32_t c = 0; c < C; ++c) {
        const mt::Chain& chain = pchains[c];
        if (chain.input.kind == mt::Source::Kind::kTable) {
          ns->morsels_left[scan_op(c)].store(
              morsels(q.tables[chain.input.index]->parts[n].rows()));
        } else {
          ns->morsels_left[scan_op(c)].store(kMorselsUnknown);
        }
        for (uint32_t j = 0; j < chains[c].k; ++j) {
          const mt::Source& b = chain.joins[j].build;
          if (b.kind == mt::Source::Kind::kTable) {
            ns->morsels_left[chains[c].op_base + j].store(
                morsels(q.tables[b.index]->parts[n].rows()));
          } else {
            ns->morsels_left[chains[c].op_base + j].store(kMorselsUnknown);
          }
        }
      }
      if (opt.strategy == LocalStrategy::kFP) ComputeFpRanges(*ns, n);
      node_state.push_back(std::move(ns));
    }

    if (opt.trace != nullptr) {
      trace = opt.trace;
      trace_slots = opt.nodes * (T + 1);
      trace->EnsureSlots(trace_slots);
      trace_cells.assign(static_cast<size_t>(trace_slots) * nops,
                         obs::OpSpanAgg{});
    }
  }

  /// Local row-count estimate for a source at `node`: exact for base
  /// tables; for a chain intermediate (unknown until it runs) the chain's
  /// own input estimate stands in — crude, but FP's static allocation is
  /// exactly the discretization weakness the paper measures.
  double EstimateSourceRows(uint32_t node, const mt::Source& s) const {
    if (s.kind == mt::Source::Kind::kTable) {
      return static_cast<double>(query->tables[s.index]->parts[node].rows());
    }
    return EstimateSourceRows(node, query->plan.chains[s.index].input);
  }

  // FP: per chain, two static stages — builds (buildscan_j + build_j),
  // then the probe chain (scan + probe_j). Threads allocated by local
  // (optionally distorted) cost; each chain apportions the full thread
  // range, so under serialized chains this matches single-chain FP and
  // under concurrent chains a thread may serve several chains' stages.
  void ComputeFpRanges(NodeState& ns, uint32_t n) {
    const uint32_t T = opt.threads_per_node;
    ns.fp_range.assign(nops, 0);
    auto distort = [&](uint32_t op, double c) {
      return op < opt.fp_cost_distortion.size()
                 ? c * opt.fp_cost_distortion[op]
                 : c;
    };
    auto apportion = [&](const std::vector<std::pair<uint32_t, double>>&
                             ops_with_cost) {
      if (ops_with_cost.empty()) return;
      if (ops_with_cost.size() >= T) {
        for (size_t i = 0; i < ops_with_cost.size(); ++i) {
          uint32_t t = static_cast<uint32_t>(i) % T;
          ns.fp_range[ops_with_cost[i].first] =
              (static_cast<uint64_t>(t) << 32) | (t + 1);
        }
        return;
      }
      double total = 0;
      for (const auto& [op, c] : ops_with_cost) total += c;
      uint32_t rest = T - static_cast<uint32_t>(ops_with_cost.size());
      std::vector<uint32_t> alloc(ops_with_cost.size(), 1);
      std::vector<double> frac(ops_with_cost.size());
      uint32_t used = 0;
      for (size_t i = 0; i < ops_with_cost.size(); ++i) {
        double share =
            total > 0 ? ops_with_cost[i].second / total * rest
                      : static_cast<double>(rest) / ops_with_cost.size();
        uint32_t whole = static_cast<uint32_t>(share);
        alloc[i] += whole;
        used += whole;
        frac[i] = share - whole;
      }
      std::vector<size_t> order(ops_with_cost.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](size_t a, size_t b) { return frac[a] > frac[b]; });
      for (size_t i = 0; i < order.size() && used < rest; ++i, ++used) {
        ++alloc[order[i]];
      }
      uint32_t t = 0;
      for (size_t i = 0; i < ops_with_cost.size(); ++i) {
        ns.fp_range[ops_with_cost[i].first] =
            (static_cast<uint64_t>(t) << 32) | (t + alloc[i]);
        t += alloc[i];
      }
    };
    for (uint32_t c = 0; c < chains.size(); ++c) {
      const ChainInfo& ci = chains[c];
      std::vector<std::pair<uint32_t, double>> stage_a;
      for (uint32_t j = 0; j < ci.k; ++j) {
        double cost =
            EstimateSourceRows(n, query->plan.chains[c].joins[j].build) + 1;
        stage_a.push_back(
            {ci.op_base + j, distort(ci.op_base + j, cost)});
        stage_a.push_back({build_op(c, j), distort(build_op(c, j), cost)});
      }
      apportion(stage_a);
      std::vector<std::pair<uint32_t, double>> stage_b;
      double scan_cost =
          EstimateSourceRows(n, query->plan.chains[c].input) + 1;
      stage_b.push_back({scan_op(c), distort(scan_op(c), scan_cost)});
      for (uint32_t j = 0; j < ci.k; ++j) {
        stage_b.push_back(
            {probe_op(c, j), distort(probe_op(c, j), scan_cost)});
      }
      apportion(stage_b);
    }
  }

  NodeState::Scratch& AcquireScratch(NodeState& ns, uint32_t t) {
    size_t d = ns.scratch_depth[t]++;
    if (d == ns.scratch_pool[t].size()) {
      auto sc = std::make_unique<NodeState::Scratch>();
      sc->bucket.resize(opt.buckets);
      ns.scratch_pool[t].push_back(std::move(sc));
    }
    return *ns.scratch_pool[t][d];
  }
  void ReleaseScratch(NodeState& ns, uint32_t t) { --ns.scratch_depth[t]; }

  bool ThreadMayRun(const NodeState& ns, uint32_t t, uint32_t op) const {
    if (opt.strategy != LocalStrategy::kFP) return true;
    uint64_t packed = ns.fp_range[op];
    uint32_t lo = static_cast<uint32_t>(packed >> 32);
    uint32_t hi = static_cast<uint32_t>(packed);
    return lo <= t && t < hi;
  }

  bool Consumable(const NodeState& ns, uint32_t op) const {
    const ChainInfo& ci = chains[op_chain[op]];
    uint32_t rel = op - ci.op_base;
    if (rel >= ci.k && rel < 2 * ci.k) return true;  // build
    if (rel > 2 * ci.k) {                            // probe
      return ns.terminated[build_op(op_chain[op], rel - 2 * ci.k - 1)].load(
          std::memory_order_acquire);
    }
    // Trigger ops: the H2 stage gate (serialized chains), then the
    // source-chain gate (an intermediate is scannable only once its
    // producer globally terminated).
    if (ci.stage_gate >= 0 &&
        !ns.terminated[ci.stage_gate].load(std::memory_order_acquire)) {
      return false;
    }
    if (rel == 2 * ci.k) {  // scan: H1 — wait for this chain's hash tables
      if (ci.input_gate >= 0 &&
          !ns.terminated[ci.input_gate].load(std::memory_order_acquire)) {
        return false;
      }
      for (uint32_t j = 0; j < ci.k; ++j) {
        if (!ns.terminated[build_op(op_chain[op], j)].load(
                std::memory_order_acquire)) {
          return false;
        }
      }
      return true;
    }
    // Buildscan j.
    int32_t gate = jn_build_gate[ci.join_base + rel];
    return gate < 0 ||
           ns.terminated[gate].load(std::memory_order_acquire);
  }

  /// The rows a trigger op scans at `node`: a base-table partition or the
  /// node-local share of a chain intermediate (frozen before it becomes
  /// consumable, so reads need no lock).
  const Batch& TriggerSource(uint32_t node, uint32_t op) const {
    const ChainInfo& ci = chains[op_chain[op]];
    uint32_t rel = op - ci.op_base;
    const mt::Source& src =
        rel == 2 * ci.k ? query->plan.chains[op_chain[op]].input
                        : jn_build_src[ci.join_base + rel];
    if (src.kind == mt::Source::Kind::kTable) {
      return query->tables[src.index]->parts[node];
    }
    return node_state[node]->inter[src.index];
  }

  // ------------------------------------------------------------------
  // Worker side.

  void WorkerLoop(uint32_t node, uint32_t t) {
    NodeState& ns = *node_state[node];
    while (!ns.done.load(std::memory_order_acquire)) {
      // Cooperative cancellation, checked once per activation.
      if (ctx->StopRequested()) {
        CancelAll();
        break;
      }
      if (!ns.outbox[t].empty()) FlushOutbox(node, t);
      if (RunOne(node, t)) {
        FlushOutbox(node, t);
        ns.starving.store(false, std::memory_order_relaxed);
        if (opt.detect_faults) {
          progress.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        ns.idle.fetch_add(1, std::memory_order_relaxed);
        MarkStarving(ns, t);
        // Lend the idle beat to another in-flight query before napping
        // (cross-query steal through the session pool).
        if (ctx->Park()) continue;
        std::unique_lock<std::mutex> lock(ns.wake_mu);
        ns.wake_cv.wait_for(lock, std::chrono::microseconds(500));
      }
    }
  }

  void MarkStarving(NodeState& ns, uint32_t t) {
    if (opt.strategy == LocalStrategy::kFP) {
      // FP: the thread's probe operator has no local work.
      for (uint32_t op : probe_ops) {
        if (ThreadMayRun(ns, t, op) && Consumable(ns, op) &&
            !ns.terminated[op].load()) {
          ns.fp_starving[op].store(true, std::memory_order_relaxed);
        }
      }
    } else {
      ns.starving.store(true, std::memory_order_relaxed);
    }
  }

  bool RunOne(uint32_t node, uint32_t t) {
    NodeState& ns = *node_state[node];
    const uint32_t T = opt.threads_per_node;
    // Primary queues.
    for (uint32_t i = 0; i < nops; ++i) {
      uint32_t op = (t + i) % nops;
      if (is_trigger(op) || !Consumable(ns, op)) continue;
      if (!ThreadMayRun(ns, t, op)) continue;
      Activation act;
      if (ns.queues[op * T + t]->TryPopFront(&act)) {
        ExecuteData(node, t, std::move(act));
        return true;
      }
    }
    // Trigger morsels.
    for (uint32_t i = 0; i < nops; ++i) {
      uint32_t op = (t + i) % nops;
      if (!is_trigger(op) || !Consumable(ns, op)) continue;
      if (!ThreadMayRun(ns, t, op)) continue;
      if (ClaimMorsel(node, t, op)) return true;
    }
    // Steal within the node.
    for (uint32_t i = 0; i < nops; ++i) {
      uint32_t op = (t + i) % nops;
      if (is_trigger(op) || !Consumable(ns, op)) continue;
      if (!ThreadMayRun(ns, t, op)) continue;
      for (uint32_t d = 1; d < T; ++d) {
        Activation act;
        if (ns.queues[op * T + (t + d) % T]->TryPopBack(&act)) {
          ExecuteData(node, t, std::move(act));
          return true;
        }
      }
    }
    return false;
  }

  bool ClaimMorsel(uint32_t node, uint32_t t, uint32_t op) {
    NodeState& ns = *node_state[node];
    const Batch& src = TriggerSource(node, op);
    size_t begin = ns.cursor[op].fetch_add(opt.morsel_rows);
    if (begin >= src.rows()) return false;
    size_t end = std::min<size_t>(begin + opt.morsel_rows, src.rows());
    ExecuteMorsel(node, t, op, src, begin, end);
    ++ns.busy[t];
    ns.morsels_left[op].fetch_sub(1);
    return true;
  }

  // Scatter a trigger morsel into per-bucket batches and route them.
  void ExecuteMorsel(uint32_t node, uint32_t t, uint32_t op,
                     const Batch& src, size_t begin, size_t end) {
    const uint32_t c = op_chain[op];
    const ChainInfo& ci = chains[c];
    const uint32_t rel = op - ci.op_base;
    uint32_t dst_op, col;
    int32_t src_chain = -1;  // repartitioning a chain intermediate?
    const mt::Source& trigger_src = rel == 2 * ci.k
                                        ? query->plan.chains[c].input
                                        : jn_build_src[ci.join_base + rel];
    if (rel == 2 * ci.k) {
      dst_op = probe_op(c, 0);
      col = jn_probe_col[ci.join_base];
    } else {
      dst_op = build_op(c, rel);
      col = jn_build_col[ci.join_base + rel];
    }
    if (trigger_src.kind == mt::Source::Kind::kChain) {
      src_chain = static_cast<int32_t>(trigger_src.index);
    }
    // Scan-level predicates of base tables, applied as the rows enter the
    // pipeline (chain intermediates were filtered at their own scans).
    const std::vector<mt::Predicate>* preds =
        trigger_src.kind == mt::Source::Kind::kTable
            ? query->plan.FiltersFor(trigger_src.index)
            : nullptr;
    // Column pruning: a pruned base table ships only its kept columns —
    // the repartition wire narrows with it. The plan's key column is in
    // projected coordinates; map it back for hashing unprojected rows.
    const std::vector<uint32_t>* proj =
        trigger_src.kind == mt::Source::Kind::kTable
            ? query->plan.ProjectionFor(trigger_src.index)
            : nullptr;
    const uint32_t out_w =
        proj != nullptr ? static_cast<uint32_t>(proj->size()) : src.width();
    const uint32_t key_src = proj != nullptr ? (*proj)[col] : col;
    const uint32_t B = opt.buckets;
    NodeState& ns = *node_state[node];
    const uint64_t tr0 = trace != nullptr ? trace->NowNs() : 0;
    uint64_t kept = 0;
    auto& sc = AcquireScratch(ns, t);
    auto& scratch = sc.bucket;
    auto& hit = sc.hit;
    auto flush = [&](uint32_t bucket, Batch&& rows) {
      if (src_chain >= 0 && home_of(bucket) != node) {
        ns.repart_rows[src_chain].fetch_add(rows.rows(),
                                            std::memory_order_relaxed);
      }
      Route(node, t, dst_op, bucket, std::move(rows));
    };
    // Scan output = capture point 0, offered where rows enter the chain
    // (each source row is scanned by exactly one node, so once apiece).
    // Build triggers are not plan points.
    const bool cap = !opt.captures.empty() && rel == 2 * ci.k;
    auto scatter = [&](const int64_t* row, uint32_t bucket) {
      ++kept;
      Batch& b = scratch[bucket];
      if (b.width() == 0) b = Batch(out_w);
      if (b.empty()) hit.push_back(bucket);
      if (proj != nullptr) {
        b.AppendRowProjected(row, *proj);
      } else {
        b.AppendRow(row);
      }
      if (cap) OfferCapture(c, 0, b.row(b.rows() - 1), out_w);
      if (b.rows() >= opt.batch_rows) {
        flush(bucket, std::move(b));
        scratch[bucket] = Batch();
        hit.erase(std::find(hit.begin(), hit.end(), bucket));
      }
    };
    if (opt.vectorized) {
      // Selection vector + one-pass hash column (mt/column_batch.h).
      const size_t n = end - begin;
      size_t m = n;
      const uint32_t* selp = nullptr;
      if (preds != nullptr) {
        m = mt::FilterBatch(src, begin, n, *preds, &sc.sel);
        ns.filtered.fetch_add(n - m, std::memory_order_relaxed);
        selp = sc.sel.data();
      }
      sc.hashes.resize(m);
      mt::HashStrided(src.data().data() + begin * src.width() + key_src,
                      src.width(), selp, m, sc.hashes.data());
      for (size_t i = 0; i < m; ++i) {
        scatter(src.row(begin + (selp != nullptr ? selp[i] : i)),
                static_cast<uint32_t>(sc.hashes[i] % B));
      }
    } else {
      for (size_t i = begin; i < end; ++i) {
        const int64_t* row = src.row(i);
        if (preds != nullptr && !mt::MatchesAll(*preds, row)) {
          ns.filtered.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        scatter(row, static_cast<uint32_t>(mt::HashKey(row[key_src]) % B));
      }
    }
    for (uint32_t bucket : hit) {
      flush(bucket, std::move(scratch[bucket]));
      scratch[bucket] = Batch();
    }
    hit.clear();
    ReleaseScratch(ns, t);
    if (trace != nullptr) TraceActivation(node, t, op, tr0, end - begin, kept);
  }

  // Routes one data activation to the bucket's home node: local queue via
  // shared memory, remote via the fabric.
  void Route(uint32_t node, uint32_t t, uint32_t dst_op, uint32_t bucket,
             Batch&& rows) {
    uint32_t home = home_of(bucket);
    if (home == node) {
      NodeState& ns = *node_state[node];
      ns.pending[dst_op].fetch_add(1);
      Activation act{dst_op, bucket, std::move(rows)};
      const uint32_t T = opt.threads_per_node;
      if (!ns.queues[dst_op * T + bucket % T]->TryPush(
              std::move(act), opt.queue_capacity)) {
        ns.outbox[t].push_back(std::move(act));
      } else {
        ns.wake_cv.notify_one();
      }
      return;
    }
    Message m;
    m.type = MsgType::kTupleBatch;
    m.op = dst_op;
    m.bucket = bucket;
    m.payload = net::EncodeBatch(rows);
    if (trace != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kFabricSend;
      ev.node = static_cast<int32_t>(node);
      ev.worker = static_cast<int32_t>(t);
      ev.op = static_cast<int32_t>(dst_op);
      ev.start_ns = ev.end_ns = trace->NowNs();
      ev.detail = rows.rows();
      trace->Record(slot_of(node, t + 1), ev);
    }
    fabric.Send(node, home, std::move(m)).ok();
  }

  // Probe-output routing differs: a *stolen* activation's bucket is not
  // homed here, yet its outputs scatter normally by the next join's
  // bucket. Handled uniformly by Route.

  void ExecuteData(uint32_t node, uint32_t t, Activation&& act) {
    NodeState& ns = *node_state[node];
    ++ns.busy[t];
    const uint64_t tr0 = trace != nullptr ? trace->NowNs() : 0;
    const uint64_t rows_in = act.rows.rows();
    const uint32_t c = op_chain[act.op];
    const ChainInfo& ci = chains[c];
    const uint32_t g = join_of(act.op);
    if (is_build(act.op)) {
      {
        std::lock_guard<std::mutex> lock(*ns.bucket_mu[g][act.bucket]);
        ns.tables[g][act.bucket].InsertBatch(act.rows);
      }
      if (trace != nullptr) {
        TraceActivation(node, t, act.op, tr0, rows_in, rows_in);
      }
      ns.pending[act.op].fetch_sub(1);
      return;
    }
    // Probe.
    const RowTable* table = nullptr;
    if (home_of(act.bucket) == node) {
      table = &ns.tables[g][act.bucket];
    } else {
      std::shared_lock<std::shared_mutex> lock(*ns.stolen_mu[g]);
      auto it = ns.stolen[g].find(act.bucket);
      if (it != ns.stolen[g].end()) table = it->second.get();
    }
    if (table == nullptr) {
      ns.failed.store(true);
      ns.pending[act.op].fetch_sub(1);
      return;
    }
    const uint32_t probe_col = jn_probe_col[g];
    const uint32_t build_w = jn_build_width[g];
    const uint32_t in_w = act.rows.width();
    const uint32_t out_w = in_w + build_w;
    const uint32_t j = act.op - ci.op_base - 2 * ci.k - 1;
    const bool last = j + 1 == ci.k;
    const bool final_chain = c + 1 == chains.size();
    std::vector<int64_t> out_row(out_w);
    const uint32_t B = opt.buckets;
    auto& sc = AcquireScratch(ns, t);
    auto& scratch = sc.bucket;
    auto& hit = sc.hit;
    uint32_t next_col = 0;
    uint32_t next_op = 0;
    if (!last) {
      next_col = jn_probe_col[g + 1];
      next_op = act.op + 1;
    }
    // A non-final chain's terminal probe materializes into this node's
    // share of the distributed intermediate (batched per activation); the
    // final chain's does the same when the result is being materialized.
    // Under aggregation the final rows fold straight into this thread's
    // partial table (phase 1 of the distributed aggregation) — never
    // buffered — and the digest comes from the merged aggregate rows.
    const bool to_agg = final_chain && agg != nullptr;
    const bool keep_rows =
        !final_chain || (materialize_final && agg == nullptr);
    Batch local_out;
    if (last && keep_rows) local_out = Batch(out_w);
    mt::AggTable* agg_part =
        last && to_agg ? &ns.agg_partials[t] : nullptr;
    uint64_t produced = 0;
    // Output of probe step j (0-based) = capture point j + 1; the last
    // probe's output is the chain output (point k).
    const bool cap = !opt.captures.empty();
    auto on_match = [&](const int64_t* row, const int64_t* brow) {
      ++produced;
      std::copy(row, row + in_w, out_row.begin());
      std::copy(brow, brow + build_w, out_row.begin() + in_w);
      if (cap) OfferCapture(c, j + 1, out_row.data(), out_w);
      if (last) {
        if (agg_part != nullptr) {
          agg_part->Accumulate(out_row.data());
          return;
        }
        if (final_chain) ns.digests[t].Add(out_row.data(), out_w);
        if (keep_rows) local_out.AppendRow(out_row.data());
        return;
      }
      uint32_t bucket =
          static_cast<uint32_t>(mt::HashKey(out_row[next_col]) % B);
      Batch& b = scratch[bucket];
      if (b.width() == 0) b = Batch(out_w);
      if (b.empty()) hit.push_back(bucket);
      b.AppendRow(out_row.data());
      if (b.rows() >= opt.batch_rows) {
        Route(node, t, next_op, bucket, std::move(b));
        scratch[bucket] = Batch();
        hit.erase(std::find(hit.begin(), hit.end(), bucket));
      }
    };
    if (opt.vectorized && act.rows.rows() > 0) {
      // Batched probe: gather the key column, hash it in one pass, walk
      // the chains with a prefetch window (RowTable::ProbeBatch).
      const size_t n = act.rows.rows();
      sc.keys.resize(n);
      sc.hashes.resize(n);
      mt::GatherStrided(act.rows.data().data() + probe_col, in_w, nullptr, n,
                        sc.keys.data());
      mt::HashStrided(sc.keys.data(), 1, nullptr, n, sc.hashes.data());
      table->ProbeBatch(sc.keys.data(), sc.hashes.data(), n,
                        [&](size_t i, const int64_t* brow) {
                          on_match(act.rows.row(i), brow);
                        });
    } else {
      for (size_t i = 0; i < act.rows.rows(); ++i) {
        const int64_t* row = act.rows.row(i);
        table->ForEachMatch(row[probe_col], [&](const int64_t* brow) {
          on_match(row, brow);
        });
      }
    }
    for (uint32_t bucket : hit) {
      Route(node, t, next_op, bucket, std::move(scratch[bucket]));
      scratch[bucket] = Batch();
    }
    hit.clear();
    ReleaseScratch(ns, t);
    if (last && keep_rows && !local_out.empty()) {
      std::lock_guard<std::mutex> lock(*ns.inter_mu[c]);
      ns.inter[c].data().insert(ns.inter[c].data().end(),
                                local_out.data().begin(),
                                local_out.data().end());
    }
    if (last) ns.chain_rows[c * opt.threads_per_node + t] += produced;
    if (trace != nullptr) {
      TraceActivation(node, t, act.op, tr0, rows_in, produced);
    }
    ns.pending[act.op].fetch_sub(1);
  }

  // Drain a worker's outbox of pushes that found full local queues.
  void FlushOutbox(uint32_t node, uint32_t t) {
    NodeState& ns = *node_state[node];
    const uint32_t T = opt.threads_per_node;
    auto& outbox = ns.outbox[t];
    uint32_t stalls = 0;
    while (!outbox.empty() && !ns.done.load(std::memory_order_relaxed)) {
      size_t n = outbox.size();
      bool progressed = false;
      for (size_t i = 0; i < n;) {
        Activation& act = outbox[i];
        if (ns.queues[act.op * T + act.bucket % T]->TryPush(
                std::move(act), opt.queue_capacity)) {
          outbox.erase(outbox.begin() + static_cast<long>(i));
          --n;
          progressed = true;
        } else {
          ++i;
        }
      }
      if (outbox.empty() || progressed) {
        stalls = 0;
        continue;
      }
      // Help: drain stuck destinations, deepest operator first (the
      // terminal probe consumes without producing, so draining deep ops
      // shrinks the backlog instead of growing it). Execute a burst of
      // helps per push pass to avoid quadratic outbox re-scans.
      bool helped = false;
      std::vector<uint32_t> stuck_ops;
      for (const Activation& stuck : outbox) {
        if (Consumable(ns, stuck.op) &&
            std::find(stuck_ops.begin(), stuck_ops.end(), stuck.op) ==
                stuck_ops.end()) {
          stuck_ops.push_back(stuck.op);
        }
      }
      std::sort(stuck_ops.rbegin(), stuck_ops.rend());
      uint32_t burst = 0;
      for (uint32_t op : stuck_ops) {
        for (uint32_t d = 0; d < T && burst < 16; ++d) {
          Activation other;
          while (burst < 16 &&
                 ns.queues[op * T + (t + d) % T]->TryPopFront(&other)) {
            ExecuteData(node, t, std::move(other));
            ++burst;
            helped = true;
          }
        }
        if (burst >= 16) break;
      }
      if (!helped && stalls > 1000) {
        helped = RunOne(node, t);
      }
      if (!helped) {
        ++stalls;
        std::this_thread::yield();
      } else {
        stalls = 0;
      }
    }
  }

  // ------------------------------------------------------------------
  // Scheduler side (one per node; node 0 doubles as coordinator).

  void SchedulerLoop(uint32_t node) {
    NodeState& ns = *node_state[node];
    const uint32_t T = opt.threads_per_node;
    const bool detect = opt.detect_faults;
    // Node-loop faults only fire where detection can catch them —
    // otherwise an injected stall is a guaranteed hang, not a test.
    const bool inject_loop_faults =
        opt.injector != nullptr && detect && opt.nodes > 1;
    const uint64_t hb_period_ns = uint64_t{opt.heartbeat_us} * 1000;
    const uint64_t timeout_ns =
        uint64_t{opt.liveness_timeout_ms} * 1'000'000;
    uint64_t poll = 0;
    uint64_t now = detect ? MonoNs() : 0;
    std::vector<uint64_t> last_heard(opt.nodes, now);
    uint64_t last_hb_sent = 0;
    uint64_t last_progress = progress.load(std::memory_order_relaxed);
    uint64_t progress_since = now;
    // Handles one incoming message; returns whether it counted as work
    // (heartbeats and suppressed duplicates don't).
    auto consume = [&](Message&& m) {
      if (detect && m.from < last_heard.size()) {
        last_heard[m.from] = now;
      }
      if (m.type == MsgType::kHeartbeat) return false;
      if (IsDuplicate(ns, m)) return false;
      HandleMessage(node, std::move(m));
      if (detect) progress.fetch_add(1, std::memory_order_relaxed);
      return true;
    };
    while (true) {
      if (cancelled.load(std::memory_order_acquire)) return;
      if (ctx->StopRequested()) {
        CancelAll();
        return;
      }
      if (inject_loop_faults) {
        // Crash: the loop silently dies; peers detect the silence.
        if (opt.injector->ShouldCrashNode(static_cast<int>(node), poll)) {
          return;
        }
        if (opt.injector->ShouldStallNode(static_cast<int>(node), poll)) {
          // Stall in small slices so teardown (CancelAll) still releases
          // us; stall_ms == 0 stalls until detection fires.
          const uint64_t t0 = MonoNs();
          const uint64_t limit_ns =
              uint64_t{opt.injector->plan().stall_ms} * 1'000'000;
          while (!cancelled.load(std::memory_order_acquire) &&
                 (limit_ns == 0 || MonoNs() - t0 < limit_ns)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
      }
      ++poll;
      if (detect) now = MonoNs();
      bool worked = false;
      // 1. Route queued overflow from earlier messages.
      for (size_t i = 0; i < ns.route_overflow.size();) {
        Activation& act = ns.route_overflow[i];
        if (ns.queues[act.op * T + act.bucket % T]->TryPush(
                std::move(act), opt.queue_capacity)) {
          ns.route_overflow.erase(ns.route_overflow.begin() +
                                  static_cast<long>(i));
          worked = true;
        } else {
          ++i;
        }
      }
      // 2. Drain the mailbox.
      Message m;
      while (fabric.mailbox(node).TryPop(&m)) {
        worked |= consume(std::move(m));
      }
      // 3. End-detection reports.
      worked |= CheckReports(node);
      // 4. Global load balancing.
      if (opt.global_lb) worked |= CheckStarving(node);
      // 5. Liveness: announce ourselves, suspect silent peers, and (node
      // 0) watch the global progress clock.
      if (detect) {
        if (now - last_hb_sent >= hb_period_ns) {
          last_hb_sent = now;
          Message hb;
          hb.type = MsgType::kHeartbeat;
          fabric.Broadcast(node, hb).ok();
        }
        for (uint32_t p = 0; p < opt.nodes; ++p) {
          if (p == node) continue;
          if (now - last_heard[p] > timeout_ns) {
            if (opt.recorder != nullptr) {
              opt.recorder->Instant(obs::EventKind::kHeartbeatMiss,
                                    opt.recorder_query, now - last_heard[p],
                                    static_cast<int32_t>(p));
            }
            FailUnavailable("node " + std::to_string(p) +
                            " unresponsive (no message for " +
                            std::to_string(opt.liveness_timeout_ms) +
                            " ms; suspected stall or crash)");
            return;
          }
        }
        if (node == 0) {
          const uint64_t cur = progress.load(std::memory_order_relaxed);
          if (cur != last_progress) {
            last_progress = cur;
            progress_since = now;
          } else if (now - progress_since > timeout_ns) {
            if (opt.recorder != nullptr) {
              opt.recorder->Instant(obs::EventKind::kHeartbeatMiss,
                                    opt.recorder_query, now - progress_since,
                                    static_cast<int32_t>(node));
            }
            FailUnavailable(
                "cluster made no progress for " +
                std::to_string(opt.liveness_timeout_ms) +
                " ms (suspected message loss)");
            return;
          }
        }
      }
      if (worked) ns.wake_cv.notify_all();
      if (ns.done.load(std::memory_order_acquire) &&
          ns.route_overflow.empty()) {
        ns.wake_cv.notify_all();
        return;
      }
      if (!worked) {
        // Idle nap, cut short by message arrival (the mailbox receive
        // timeout — bounded wait, never an unbounded Pop).
        if (fabric.mailbox(node).PopFor(&m,
                                        std::chrono::microseconds(50))) {
          if (detect) now = MonoNs();
          if (consume(std::move(m))) ns.wake_cv.notify_all();
        }
      }
    }
  }

  bool CheckReports(uint32_t node) {
    NodeState& ns = *node_state[node];
    bool acted = false;
    for (uint32_t op = 0; op < nops; ++op) {
      if (!ns.reported[op]) {
        bool ready;
        if (is_trigger(op)) {
          // kMorselsUnknown (source chain still running) never reads 0.
          ready = ns.morsels_left[op].load() == 0;
        } else {
          ready = ns.terminated[producer_of(op)].load() &&
                  ns.pending[op].load() == 0 &&
                  ns.steal_inflight.load() == 0;
        }
        if (ready) {
          ns.reported[op] = true;
          SendToCoordinator(node, MsgType::kEndOfQueuesAtNode, op, 0);
          acted = true;
        }
      }
      if (ns.drain_requested[op] && !ns.drain_acked[op]) {
        bool drained = is_trigger(op)
                           ? ns.morsels_left[op].load() == 0
                           : (ns.pending[op].load() == 0 &&
                              ns.steal_inflight.load() == 0);
        if (drained) {
          ns.drain_acked[op] = true;
          SendToCoordinator(node, MsgType::kDrainConfirm, op, 1);
          acted = true;
        }
      }
    }
    return acted;
  }

  bool CheckStarving(uint32_t node) {
    NodeState& ns = *node_state[node];
    if (ns.steal_in_progress) return false;
    uint32_t want_op = kAnyOp;
    if (opt.strategy == LocalStrategy::kFP) {
      for (uint32_t op : probe_ops) {
        if (ns.fp_starving[op].load(std::memory_order_relaxed) &&
            !ns.terminated[op].load()) {
          want_op = op;
          ns.fp_starving[op].store(false, std::memory_order_relaxed);
          break;
        }
      }
      if (want_op == kAnyOp) return false;
    } else {
      if (!ns.starving.load(std::memory_order_relaxed)) return false;
      // Only bother when some probe operator is still alive somewhere.
      bool alive = false;
      for (uint32_t op : probe_ops) {
        if (!ns.terminated[op].load()) {
          alive = true;
          break;
        }
      }
      if (!alive) return false;
      ns.starving.store(false, std::memory_order_relaxed);
    }
    if (opt.nodes < 2) return false;
    ns.steal_in_progress = true;
    ns.steal_op = want_op;
    ns.offers_pending = opt.nodes - 1;
    ns.best_provider = UINT32_MAX;
    ns.best_count = 0;
    ns.best_op = kAnyOp;
    ns.steal_reqs.fetch_add(1, std::memory_order_relaxed);
    Message m;
    m.type = MsgType::kStarving;
    m.op = want_op;
    m.arg = 0;  // available memory: unconstrained in this build
    fabric.Broadcast(node, m).ok();
    return true;
  }

  void SendToCoordinator(uint32_t node, MsgType type, uint32_t op,
                         uint64_t arg) {
    if (node == 0) {
      Message m;
      m.type = type;
      m.op = op;
      m.arg = arg;
      m.from = 0;
      CoordinatorHandle(std::move(m));
    } else {
      Message m;
      m.type = type;
      m.op = op;
      m.arg = arg;
      fabric.Send(node, 0, std::move(m)).ok();
    }
  }

  void CoordinatorBroadcast(MsgType type, uint32_t op, uint64_t arg) {
    Message m;
    m.type = type;
    m.op = op;
    m.arg = arg;
    fabric.Broadcast(0, m).ok();
    // Self-delivery.
    m.from = 0;
    HandleNodeMessage(0, std::move(m));
  }

  void CoordinatorHandle(Message&& m) {
    uint32_t op = m.op;
    if (coord_terminated[op]) return;
    if (m.type == MsgType::kEndOfQueuesAtNode) {
      if (++coord_reports[op] == opt.nodes && !coord_drain[op]) {
        coord_drain[op] = true;
        CoordinatorBroadcast(MsgType::kDrainConfirm, op, 0);
      }
    } else if (m.type == MsgType::kDrainConfirm && m.arg == 1) {
      if (++coord_acks[op] == opt.nodes) {
        coord_terminated[op] = true;
        CoordinatorBroadcast(MsgType::kOpTerminated, op, 0);
      }
    }
  }

  void HandleMessage(uint32_t node, Message&& m) {
    if (node == 0 && (m.type == MsgType::kEndOfQueuesAtNode ||
                      (m.type == MsgType::kDrainConfirm && m.arg == 1))) {
      CoordinatorHandle(std::move(m));
      return;
    }
    HandleNodeMessage(node, std::move(m));
  }

  void HandleNodeMessage(uint32_t node, Message&& m) {
    NodeState& ns = *node_state[node];
    const uint32_t T = opt.threads_per_node;
    switch (m.type) {
      case MsgType::kTupleBatch: {
        auto rows = net::DecodeBatch(m.payload);
        if (!rows.ok()) {
          ns.failed.store(true);
          return;
        }
        ns.pending[m.op].fetch_add(1);
        Activation act{m.op, m.bucket, std::move(rows).value()};
        if (!ns.queues[m.op * T + m.bucket % T]->TryPush(
                std::move(act), opt.queue_capacity)) {
          ns.route_overflow.push_back(std::move(act));
        }
        break;
      }
      case MsgType::kDrainConfirm:
        // arg == 0: coordinator requests a drain ack for op.
        if (m.arg == 0) ns.drain_requested[m.op] = true;
        break;
      case MsgType::kOpTerminated: {
        // A chain terminal freezes its distributed intermediate: resolve
        // the morsel counts of every trigger scanning it at this node
        // (before the terminated flag releases those triggers).
        for (const auto& [trigger, src_chain] : deferred_triggers) {
          if (chains[src_chain].terminal != m.op) continue;
          size_t rows;
          {
            std::lock_guard<std::mutex> lock(*ns.inter_mu[src_chain]);
            rows = ns.inter[src_chain].rows();
          }
          ns.morsels_left[trigger].store(static_cast<int64_t>(
              (rows + opt.morsel_rows - 1) / opt.morsel_rows));
        }
        ns.terminated[m.op].store(true, std::memory_order_release);
        if (m.op == chains.back().terminal) {
          ns.done.store(true, std::memory_order_release);
        }
        break;
      }
      case MsgType::kStarving:
        HandleStarving(node, m);
        break;
      case MsgType::kOffer:
      case MsgType::kNoWork:
        HandleOfferReply(node, m);
        break;
      case MsgType::kAcquire:
        HandleAcquire(node, m);
        break;
      case MsgType::kWork:
        HandleWork(node, m);
        break;
      default:
        break;
    }
  }

  // A remote node is starving: offer our best candidate queue. Candidates
  // are unblocked probe operators with enough queued work (Section 3.2
  // conditions ii, iv, v); benefit is the queued activation count.
  void HandleStarving(uint32_t node, const Message& m) {
    NodeState& ns = *node_state[node];
    const uint32_t T = opt.threads_per_node;
    uint32_t best_op = kAnyOp;
    uint64_t best_count = 0;
    for (uint32_t op : probe_ops) {
      if (m.op != kAnyOp && m.op != op) continue;
      if (!Consumable(ns, op) || ns.terminated[op].load()) continue;
      uint64_t count = 0;
      for (uint32_t t = 0; t < T; ++t) {
        count += ns.queues[op * T + t]->ApproxSize();
      }
      if (count >= opt.min_steal && count > best_count) {
        best_count = count;
        best_op = op;
      }
    }
    Message reply;
    if (best_op != kAnyOp) {
      reply.type = MsgType::kOffer;
      reply.op = best_op;
      reply.arg = best_count;
    } else {
      reply.type = MsgType::kNoWork;
      reply.arg = 0;  // offer stage
    }
    fabric.Send(node, m.from, std::move(reply)).ok();
  }

  void HandleOfferReply(uint32_t node, const Message& m) {
    NodeState& ns = *node_state[node];
    if (!ns.steal_in_progress) return;
    if (m.type == MsgType::kNoWork && m.arg == 1) {
      // Acquire-stage failure: provider raced empty.
      ns.steal_inflight.fetch_sub(1);
      ns.steal_in_progress = false;
      return;
    }
    if (ns.offers_pending == 0) return;
    --ns.offers_pending;
    if (m.type == MsgType::kOffer && m.arg > ns.best_count) {
      ns.best_count = m.arg;
      ns.best_provider = m.from;
      ns.best_op = m.op;
    }
    if (ns.offers_pending == 0) {
      if (ns.best_provider == UINT32_MAX) {
        ns.steal_in_progress = false;
        return;
      }
      // Acquire from the most loaded provider; list cached buckets so
      // already-copied fragments are not re-shipped (Section 4).
      ns.steal_inflight.fetch_add(1);
      Message req;
      req.type = MsgType::kAcquire;
      req.op = ns.best_op;
      if (opt.cache_stolen_fragments) {
        uint32_t g = join_of(ns.best_op);
        for (uint32_t b : ns.cached_buckets[g]) {
          net::PutU32(&req.payload, b);
        }
      }
      fabric.Send(node, ns.best_provider, std::move(req)).ok();
    }
  }

  void HandleAcquire(uint32_t node, const Message& m) {
    NodeState& ns = *node_state[node];
    const uint32_t T = opt.threads_per_node;
    uint32_t op = m.op;
    uint32_t g = join_of(op);
    std::unordered_set<uint32_t> requester_cached;
    {
      net::Reader r(m.payload);
      uint32_t b;
      while (r.GetU32(&b)) requester_cached.insert(b);
    }
    net::RowWorkBundle bundle;
    bundle.op = op;
    std::unordered_set<uint32_t> shipped;
    uint64_t popped = 0;
    for (uint32_t t = 0; t < T && popped < opt.steal_batch; ++t) {
      Activation act;
      while (popped < opt.steal_batch &&
             ns.queues[op * T + t]->TryPopBack(&act)) {
        if (!requester_cached.count(act.bucket) &&
            !shipped.count(act.bucket)) {
          // Locate the bucket's build rows: the local table when the
          // bucket is homed here, or our own stolen-fragment cache when
          // this activation was itself acquired earlier.
          const RowTable* table = nullptr;
          if (home_of(act.bucket) == node) {
            table = &ns.tables[g][act.bucket];
          } else {
            std::shared_lock<std::shared_mutex> lock(*ns.stolen_mu[g]);
            auto it = ns.stolen[g].find(act.bucket);
            if (it != ns.stolen[g].end()) table = it->second.get();
          }
          if (table == nullptr) {
            // Cannot supply the hash table: keep the activation local.
            if (!ns.queues[op * T + t]->TryPush(std::move(act),
                                                opt.queue_capacity)) {
              ns.route_overflow.push_back(std::move(act));
            }
            continue;
          }
          shipped.insert(act.bucket);
          net::RowFragment frag;
          frag.bucket = act.bucket;
          frag.build_rows = Batch(table->width());
          frag.build_rows.data() = table->pool();
          ns.shipped_rows.fetch_add(table->rows());
          bundle.fragments.push_back(std::move(frag));
        } else if (requester_cached.count(act.bucket)) {
          ns.cache_hits.fetch_add(1, std::memory_order_relaxed);
          if (trace != nullptr) {
            obs::TraceEvent ev;
            ev.kind = obs::EventKind::kCacheHit;
            ev.node = static_cast<int32_t>(node);
            ev.op = static_cast<int32_t>(op);
            ev.start_ns = ev.end_ns = trace->NowNs();
            ev.detail = act.bucket;
            trace->Record(slot_of(node, 0), ev);
          }
        }
        ++popped;
        net::RowActivation ra;
        ra.bucket = act.bucket;
        ra.rows = std::move(act.rows);
        bundle.activations.push_back(std::move(ra));
      }
    }
    if (bundle.activations.empty()) {
      Message reply;
      reply.type = MsgType::kNoWork;
      reply.arg = 1;  // acquire stage
      fabric.Send(node, m.from, std::move(reply)).ok();
      return;
    }
    ns.pending[op].fetch_sub(static_cast<int64_t>(bundle.activations.size()));
    Message reply;
    reply.type = MsgType::kWork;
    reply.op = op;
    reply.payload = net::EncodeRowWork(bundle);
    fabric.Send(node, m.from, std::move(reply)).ok();
  }

  // ------------------------------------------------------------------
  // Distributed aggregation (runs after the chain DAG terminated).
  //
  // Phase 1 already happened inside the chain run: every worker folded
  // the final-chain rows it produced into its private partial table
  // (NodeState::agg_partials), so the join result was never buffered.
  // Phase A here repartitions those partials by group-key hash —
  // partition p is homed at node p % nodes — shipping remote partitions
  // as kTupleBatch messages (partial rows are flat int64 rows, so the
  // join dataflow's encoding carries them verbatim). Phase B (after
  // every node finished sending): each node merges its own partitions
  // plus everything in its mailbox and finalizes the disjoint group set
  // it owns. The SpawnWorkers calls run on the same ExecContext as the
  // main run, so the pool and the stop token cover aggregation
  // unchanged.
  Status RunDistributedAgg(std::vector<Batch>* agg_out,
                           std::vector<ResultDigest>* agg_digests,
                           uint64_t* partial_entries) {
    const uint32_t N = opt.nodes;
    // Partition count: bounded like the thread backend's merge (every
    // partition re-scans the partial tables), never below the node count.
    const uint32_t P = std::max(
        N, std::min(opt.buckets, std::max(16u, 4 * opt.threads_per_node)));
    const uint32_t agg_op = nops;  // sentinel op id for traffic accounting
    std::vector<std::vector<Batch>> kept(N);  // locally homed partitions
    std::atomic<bool> agg_cancelled{false};

    for (const auto& ns : node_state) {
      for (const mt::AggTable& t : ns->agg_partials) {
        *partial_entries += t.groups();
      }
    }

    ctx->SpawnWorkers(N, [&](uint32_t n) {
      NodeState& ns = *node_state[n];
      const uint64_t tr0 = trace != nullptr ? trace->NowNs() : 0;
      uint64_t repart = 0;
      for (uint32_t p = 0; p < P; ++p) {
        if (ctx->StopRequested()) {
          agg_cancelled.store(true);
          return;
        }
        Batch part;
        for (const mt::AggTable& t : ns.agg_partials) {
          t.EmitPartials(p, P, &part);
        }
        if (part.rows() == 0) continue;
        uint32_t home = p % N;
        if (home == n) {
          kept[n].push_back(std::move(part));
        } else {
          ns.agg_repart_rows.fetch_add(part.rows(),
                                       std::memory_order_relaxed);
          repart += part.rows();
          Message m;
          m.type = MsgType::kTupleBatch;
          m.op = agg_op;
          m.bucket = p;
          m.payload = net::EncodeBatch(part);
          fabric.Send(n, home, std::move(m)).ok();
        }
      }
      // One span per node for the repartition phase (the agg sentinel op;
      // these bodies run on arbitrary pool threads, hence RecordShared).
      if (trace != nullptr) {
        obs::TraceEvent ev;
        ev.node = static_cast<int32_t>(n);
        ev.op = static_cast<int32_t>(agg_op);
        ev.start_ns = tr0;
        ev.end_ns = trace->NowNs();
        ev.activations = 1;
        ev.rows_out = repart;
        ev.detail = ev.end_ns - ev.start_ns;
        trace->RecordShared(ev);
      }
    });
    if (agg_cancelled.load() || ctx->StopRequested()) {
      return Status::Cancelled("query cancelled during aggregation");
    }

    // Every node finished sending (the SpawnWorkers barrier), so each
    // mailbox now holds all partials its node will ever receive.
    ctx->SpawnWorkers(N, [&](uint32_t n) {
      NodeState& ns = *node_state[n];
      const uint64_t tr0 = trace != nullptr ? trace->NowNs() : 0;
      mt::AggTable merged(agg);
      for (const Batch& part : kept[n]) {
        for (size_t i = 0; i < part.rows(); ++i) {
          merged.MergePartial(part.row(i));
        }
      }
      Message m;
      while (fabric.mailbox(n).TryPop(&m)) {
        if (ctx->StopRequested()) {
          agg_cancelled.store(true);
          return;
        }
        // Stale end-of-run protocol messages may linger; only the agg
        // sentinel batches matter here.
        if (m.type != MsgType::kTupleBatch || m.op != agg_op) continue;
        if (IsDuplicate(ns, m)) continue;
        auto rows = net::DecodeBatch(m.payload);
        if (!rows.ok()) {
          ns.failed.store(true);
          return;
        }
        for (size_t i = 0; i < rows.value().rows(); ++i) {
          merged.MergePartial(rows.value().row(i));
        }
      }
      merged.EmitFinal(&(*agg_out)[n], &(*agg_digests)[n]);
      if (trace != nullptr) {
        obs::TraceEvent ev;
        ev.node = static_cast<int32_t>(n);
        ev.op = static_cast<int32_t>(agg_op);
        ev.start_ns = tr0;
        ev.end_ns = trace->NowNs();
        ev.activations = 1;
        ev.rows_out = (*agg_out)[n].rows();
        ev.detail = ev.end_ns - ev.start_ns;
        trace->RecordShared(ev);
      }
    });
    if (agg_cancelled.load() || ctx->StopRequested()) {
      return Status::Cancelled("query cancelled during aggregation");
    }
    return Status::OK();
  }

  void HandleWork(uint32_t node, const Message& m) {
    NodeState& ns = *node_state[node];
    const uint32_t T = opt.threads_per_node;
    auto bundle = net::DecodeRowWork(m.payload);
    if (!bundle.ok()) {
      ns.failed.store(true);
      ns.steal_inflight.fetch_sub(1);
      ns.steal_in_progress = false;
      return;
    }
    uint32_t op = bundle.value().op;
    uint32_t g = join_of(op);
    {
      std::unique_lock<std::shared_mutex> lock(*ns.stolen_mu[g]);
      for (auto& frag : bundle.value().fragments) {
        if (ns.stolen[g].count(frag.bucket)) continue;
        auto table = std::make_unique<RowTable>(frag.build_rows.width(),
                                                jn_build_col[g]);
        table->InsertBatch(frag.build_rows);
        ns.stolen[g][frag.bucket] = std::move(table);
        ns.cached_buckets[g].insert(frag.bucket);
      }
    }
    ns.steals.fetch_add(1, std::memory_order_relaxed);
    ns.stolen_acts.fetch_add(bundle.value().activations.size(),
                             std::memory_order_relaxed);
    if (trace != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kSteal;
      ev.node = static_cast<int32_t>(node);
      ev.op = static_cast<int32_t>(op);
      ev.start_ns = ev.end_ns = trace->NowNs();
      ev.detail = bundle.value().activations.size();
      trace->Record(slot_of(node, 0), ev);
    }
    if (opt.recorder != nullptr) {
      opt.recorder->Instant(obs::EventKind::kSteal, opt.recorder_query,
                            bundle.value().activations.size(),
                            static_cast<int32_t>(node));
    }
    for (auto& ra : bundle.value().activations) {
      ns.pending[op].fetch_add(1);
      Activation act{op, ra.bucket, std::move(ra.rows)};
      if (!ns.queues[op * T + ra.bucket % T]->TryPush(std::move(act),
                                                      opt.queue_capacity)) {
        ns.route_overflow.push_back(std::move(act));
      }
    }
    ns.steal_inflight.fetch_sub(1);
    ns.steal_in_progress = false;
  }
};

ClusterExecutor::ClusterExecutor(const ClusterOptions& options)
    : options_(options) {
  HIERDB_CHECK(options_.nodes > 0, "need at least one node");
  HIERDB_CHECK(options_.threads_per_node > 0, "need at least one thread");
  HIERDB_CHECK(options_.buckets >= options_.nodes,
               "need at least one bucket per node");
  HIERDB_CHECK(options_.strategy != LocalStrategy::kSP,
               "SP is shared-memory only (Section 5.2)");
}

ClusterExecutor::~ClusterExecutor() = default;

uint32_t ClusterExecutor::CompiledOpCount(const PlanQuery& query) {
  uint32_t nops = 0;
  for (const mt::Chain& c : query.plan.chains) {
    nops += 3 * static_cast<uint32_t>(c.joins.size()) + 1;
  }
  return nops;
}

Result<ResultDigest> ClusterExecutor::Execute(const ChainQuery& query,
                                              ClusterStats* stats,
                                              mt::Batch* materialized) {
  HIERDB_RETURN_NOT_OK(query.Validate(options_.nodes));
  if (query.joins.empty()) {
    return Status::InvalidArgument("chain query needs at least one join");
  }
  PlanQuery pq;
  pq.tables.push_back(query.input);
  mt::Chain chain;
  chain.input = mt::Source::OfTable(0);
  for (const auto& j : query.joins) {
    pq.tables.push_back(j.build);
    chain.joins.push_back(
        {mt::Source::OfTable(static_cast<uint32_t>(pq.tables.size() - 1)),
         j.probe_col, j.build_col});
  }
  pq.plan.chains.push_back(std::move(chain));
  return Execute(pq, stats, materialized);
}

Result<ResultDigest> ClusterExecutor::Execute(const PlanQuery& query,
                                              ClusterStats* stats,
                                              mt::Batch* materialized) {
  HIERDB_RETURN_NOT_OK(query.Validate(options_.nodes));
  impl_ = std::make_unique<Impl>(options_);
  Impl& im = *impl_;
  im.materialize_final = materialized != nullptr;
  ThreadSpawnContext fallback_ctx;
  im.ctx = options_.ctx != nullptr ? options_.ctx : &fallback_ctx;
  im.Compile(query);

  // Rent one body per node scheduler plus one per node worker; slot k
  // maps to node k / (T+1), role k % (T+1) (0 = scheduler).
  // Gang mode: the node loops are mutually dependent (no body exits until
  // the query terminates globally), so every body needs its own thread.
  const uint32_t per_node = options_.threads_per_node + 1;
  im.ctx->SpawnWorkers(
      options_.nodes * per_node,
      [&im, per_node](uint32_t k) {
        const uint32_t node = k / per_node;
        const uint32_t role = k % per_node;
        if (role == 0) {
          im.SchedulerLoop(node);
        } else {
          im.WorkerLoop(node, role - 1);
        }
      },
      /*gang=*/true);

  // Every gang body has exited, so the span cells are complete; emitting
  // here covers the cancelled and failed exits below too.
  im.EmitTraceCells();

  // Detection outranks the cancellation it triggers: a run torn down by
  // the liveness or progress watchdog reports the diagnosis, not the
  // teardown mechanism.
  if (im.unavailable.load()) {
    std::string msg;
    {
      std::lock_guard<std::mutex> lock(im.fail_mu);
      msg = im.unavailable_msg;
    }
    impl_.reset();
    return Status::Unavailable(std::move(msg));
  }
  if (im.cancelled.load()) {
    impl_.reset();
    return Status::Cancelled("query cancelled during execution");
  }
  bool failed = false;
  for (auto& ns : im.node_state) failed |= ns->failed.load();
  if (failed) {
    impl_.reset();
    return Status::Internal("cluster execution failed");
  }

  // Distributed aggregation over the final chain's kept rows. Runs before
  // the stats snapshot so its repartition traffic is accounted.
  std::vector<Batch> agg_out(options_.nodes);
  std::vector<ResultDigest> agg_digests(options_.nodes);
  uint64_t agg_partial_entries = 0;
  if (im.agg != nullptr) {
    Status st = im.RunDistributedAgg(&agg_out, &agg_digests,
                                     &agg_partial_entries);
    if (!st.ok()) {
      impl_.reset();
      return st;
    }
    for (auto& ns : im.node_state) failed |= ns->failed.load();
    if (failed) {
      impl_.reset();
      return Status::Internal("cluster aggregation failed");
    }
  }

  // A run that terminated despite losing messages cannot vouch for its
  // digest (a dropped kTupleBatch silently loses rows): refuse to report
  // success. This keeps the chaos invariant success => digest-identical.
  {
    net::FabricStats fs = im.fabric.stats();
    if (fs.dropped > 0) {
      uint64_t dropped = fs.dropped;
      impl_.reset();
      return Status::Unavailable(std::to_string(dropped) +
                                 " message(s) lost in transit");
    }
  }

  ResultDigest digest;
  for (auto& ns : im.node_state) {
    for (const auto& d : ns->digests) digest.Merge(d);
  }
  for (const auto& d : agg_digests) digest.Merge(d);
  if (stats != nullptr) {
    *stats = ClusterStats{};
    stats->fabric = im.fabric.stats();
    auto type_bytes = [&](MsgType t) {
      return stats->fabric.bytes_by_type[static_cast<size_t>(t)];
    };
    stats->lb_bytes = type_bytes(MsgType::kStarving) +
                      type_bytes(MsgType::kOffer) +
                      type_bytes(MsgType::kNoWork) +
                      type_bytes(MsgType::kAcquire) +
                      type_bytes(MsgType::kWork);
    stats->dataflow_bytes = type_bytes(MsgType::kTupleBatch);
    stats->protocol_bytes = type_bytes(MsgType::kEndOfQueuesAtNode) +
                            type_bytes(MsgType::kDrainConfirm) +
                            type_bytes(MsgType::kOpTerminated);
    for (auto& ns : im.node_state) {
      stats->steal_requests += ns->steal_reqs.load();
      stats->steals += ns->steals.load();
      stats->stolen_activations += ns->stolen_acts.load();
      stats->shipped_fragment_rows += ns->shipped_rows.load();
      stats->fragment_cache_hits += ns->cache_hits.load();
      stats->rows_filtered += ns->filtered.load();
      stats->agg_repartition_rows += ns->agg_repart_rows.load();
      stats->idle_waits_per_node.push_back(ns->idle.load());
      uint64_t busy = 0;
      for (uint64_t b : ns->busy) busy += b;
      stats->busy_per_node.push_back(busy);
    }
    if (options_.injector != nullptr) {
      stats->faults = options_.injector->counters();
    }
    stats->dup_messages_dropped = im.dup_dropped.load();
    if (im.agg != nullptr) {
      stats->agg_partials = agg_partial_entries;
      for (const auto& d : agg_digests) stats->agg_groups += d.count;
      // The agg sentinel op's kTupleBatch bytes are the repartition wire
      // traffic (also counted in dataflow_bytes).
      if (im.nops < stats->fabric.tuple_bytes_by_op.size()) {
        stats->agg_repartition_bytes =
            stats->fabric.tuple_bytes_by_op[im.nops];
      }
    }
    // Distributed intermediates: size per chain, repartition traffic
    // attributed through the per-op kTupleBatch accounting.
    const uint32_t C = static_cast<uint32_t>(im.chains.size());
    stats->per_chain.assign(C, {});
    stats->rows_per_chain.assign(C, 0);
    const uint32_t T = options_.threads_per_node;
    for (uint32_t c = 0; c < C; ++c) {
      for (auto& ns : im.node_state) {
        for (uint32_t t = 0; t < T; ++t) {
          stats->rows_per_chain[c] += ns->chain_rows[c * T + t];
        }
      }
    }
    for (uint32_t c = 0; c < C; ++c) {
      auto& pc = stats->per_chain[c];
      for (auto& ns : im.node_state) {
        // The final chain's inter[] slot holds the materialized result
        // (when requested), not a distributed intermediate: keep the
        // documented all-zero final entry.
        if (c + 1 < C) {
          pc.intermediate_rows += ns->inter[c].rows();
          pc.intermediate_bytes += ns->inter[c].bytes();
        }
        pc.repartition_rows += ns->repart_rows[c].load();
      }
      for (uint32_t dst : im.repart_dst_ops[c]) {
        if (dst < stats->fabric.tuple_bytes_by_op.size()) {
          pc.repartition_bytes += stats->fabric.tuple_bytes_by_op[dst];
        }
      }
      stats->intermediate_rows += pc.intermediate_rows;
      stats->intermediate_bytes += pc.intermediate_bytes;
    }
  }
  if (materialized != nullptr) {
    if (im.agg != nullptr) {
      // Aggregated plans gather each node's finalized group rows.
      Batch out(im.agg->OutputWidth());
      for (Batch& part : agg_out) {
        out.data().insert(out.data().end(), part.data().begin(),
                          part.data().end());
      }
      *materialized = std::move(out);
    } else {
      // Gather each node's share of the final chain's rows (the
      // tuple-batch collection): plain concatenation — the digest is
      // order-independent.
      const uint32_t last = static_cast<uint32_t>(im.chains.size()) - 1;
      Batch out(im.chains[last].out_width);
      size_t total = 0;
      for (auto& ns : im.node_state) total += ns->inter[last].rows();
      out.Reserve(total);
      for (auto& ns : im.node_state) {
        out.data().insert(out.data().end(), ns->inter[last].data().begin(),
                          ns->inter[last].data().end());
      }
      *materialized = std::move(out);
    }
  }
  impl_.reset();
  return digest;
}

}  // namespace hierdb::cluster
