#include "cluster/cluster_executor.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/zipf.h"
#include "mt/row_table.h"
#include "net/message.h"

namespace hierdb::cluster {

using mt::Batch;
using mt::LocalStrategy;
using mt::ResultDigest;
using mt::RowTable;
using net::Message;
using net::MsgType;

// ---------------------------------------------------------------------
// Partition helpers.

PartitionedTable PartitionByHash(const mt::Table& table, uint32_t nodes,
                                 uint32_t col) {
  PartitionedTable out;
  out.width = table.width();
  out.parts.assign(nodes, Batch(table.width()));
  for (size_t i = 0; i < table.rows(); ++i) {
    const int64_t* row = table.batch.row(i);
    uint32_t node =
        static_cast<uint32_t>((mt::HashKey(row[col]) >> 32) % nodes);
    out.parts[node].AppendRow(row);
  }
  return out;
}

PartitionedTable PartitionRoundRobin(const mt::Table& table, uint32_t nodes) {
  PartitionedTable out;
  out.width = table.width();
  out.parts.assign(nodes, Batch(table.width()));
  for (size_t i = 0; i < table.rows(); ++i) {
    out.parts[i % nodes].AppendRow(table.batch.row(i));
  }
  return out;
}

PartitionedTable PartitionWithPlacementSkew(const mt::Table& table,
                                            uint32_t nodes, double theta,
                                            uint64_t seed) {
  PartitionedTable out;
  out.width = table.width();
  out.parts.assign(nodes, Batch(table.width()));
  Rng rng(seed);
  std::vector<uint64_t> sizes =
      ZipfApportion(table.rows(), nodes, theta, &rng);
  size_t i = 0;
  for (uint32_t n = 0; n < nodes; ++n) {
    for (uint64_t j = 0; j < sizes[n]; ++j, ++i) {
      out.parts[n].AppendRow(table.batch.row(i));
    }
  }
  return out;
}

Status ChainQuery::Validate(uint32_t nodes) const {
  if (input == nullptr) return Status::InvalidArgument("null input");
  if (input->parts.size() != nodes) {
    return Status::InvalidArgument("input partition count != nodes");
  }
  uint32_t width = input->width;
  for (const Join& j : joins) {
    if (j.build == nullptr) return Status::InvalidArgument("null build");
    if (j.build->parts.size() != nodes) {
      return Status::InvalidArgument("build partition count != nodes");
    }
    if (j.probe_col >= width) {
      return Status::OutOfRange("probe col out of pipelined width");
    }
    if (j.build_col >= j.build->width) {
      return Status::OutOfRange("build col out of build width");
    }
    width += j.build->width;
  }
  return Status::OK();
}

Result<ResultDigest> ReferenceExecute(const ChainQuery& query) {
  HIERDB_RETURN_NOT_OK(
      query.Validate(static_cast<uint32_t>(query.input->parts.size())));
  auto gather = [](const PartitionedTable& pt) {
    mt::Table t;
    t.batch = Batch(pt.width);
    for (const Batch& p : pt.parts) {
      t.batch.data().insert(t.batch.data().end(), p.data().begin(),
                            p.data().end());
    }
    return t;
  };
  std::vector<mt::Table> tables;
  tables.push_back(gather(*query.input));
  mt::PipelinePlan plan;
  mt::Chain chain;
  chain.input = mt::Source::OfTable(0);
  for (const auto& j : query.joins) {
    tables.push_back(gather(*j.build));
    chain.joins.push_back({mt::Source::OfTable(
                               static_cast<uint32_t>(tables.size() - 1)),
                           j.probe_col, j.build_col});
  }
  plan.chains.push_back(std::move(chain));
  std::vector<const mt::Table*> ptrs;
  for (const auto& t : tables) ptrs.push_back(&t);
  return mt::ReferenceExecute(plan, ptrs);
}

double ClusterStats::NodeImbalance() const {
  if (busy_per_node.empty()) return 1.0;
  uint64_t max = 0, sum = 0;
  for (uint64_t b : busy_per_node) {
    max = std::max(max, b);
    sum += b;
  }
  if (sum == 0) return 1.0;
  return static_cast<double>(max) * busy_per_node.size() /
         static_cast<double>(sum);
}

// ---------------------------------------------------------------------
// Implementation.

namespace {

struct Activation {
  uint32_t op = 0;
  uint32_t bucket = 0;
  Batch rows;
};

class BQueue {
 public:
  bool TryPush(Activation&& a, uint32_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() >= capacity) return false;
    items_.push_back(std::move(a));
    return true;
  }
  bool TryPopFront(Activation* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }
  bool TryPopBack(Activation* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.back());
    items_.pop_back();
    return true;
  }
  size_t ApproxSize() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<Activation> items_;
};

constexpr uint32_t kAnyOp = UINT32_MAX;

}  // namespace

struct ClusterExecutor::Impl {
  // ---- static query shape ----
  const ClusterOptions& opt;
  const ChainQuery* query = nullptr;
  uint32_t k = 0;          // joins
  uint32_t nops = 0;       // 3k + 1
  uint32_t scan_op = 0;    // 2k
  std::vector<uint32_t> width_at;  // pipelined width entering probe j

  net::Fabric fabric;

  explicit Impl(const ClusterOptions& o)
      : opt(o), fabric({.nodes = o.nodes}) {}

  uint32_t buildscan_op(uint32_t j) const { return j; }
  uint32_t build_op(uint32_t j) const { return k + j; }
  uint32_t probe_op(uint32_t j) const { return 2 * k + 1 + j; }
  bool is_probe(uint32_t op) const { return op > 2 * k; }
  bool is_build(uint32_t op) const { return op >= k && op < 2 * k; }
  bool is_trigger(uint32_t op) const { return op < k || op == 2 * k; }
  uint32_t join_of(uint32_t op) const {
    return is_build(op) ? op - k : op - 2 * k - 1;
  }
  uint32_t producer_of(uint32_t op) const {
    if (is_build(op)) return buildscan_op(op - k);
    uint32_t j = join_of(op);
    return j == 0 ? scan_op : probe_op(j - 1);
  }
  uint32_t home_of(uint32_t bucket) const { return bucket % opt.nodes; }

  // ---- per-node state ----
  struct NodeState {
    // Queues: [op * T + t]; only data ops (build/probe) use them.
    std::vector<std::unique_ptr<BQueue>> queues;
    std::vector<std::atomic<int64_t>> pending;       // per op
    std::vector<std::atomic<int64_t>> morsels_left;  // per trigger op
    std::vector<std::atomic<size_t>> cursor;         // per trigger op
    std::vector<std::atomic<bool>> terminated;       // global, per op

    // Local bucket tables (home buckets only) + insert locks.
    std::vector<std::vector<RowTable>> tables;  // [join][bucket]
    std::vector<std::vector<std::unique_ptr<std::mutex>>> bucket_mu;

    // Stolen fragments: [join] -> bucket -> table.
    std::vector<std::unordered_map<uint32_t, std::unique_ptr<RowTable>>>
        stolen;
    std::vector<std::unique_ptr<std::shared_mutex>> stolen_mu;  // per join
    // Buckets whose fragments we cached, per op (the Section 4 list).
    std::vector<std::unordered_set<uint32_t>> cached_buckets;  // per join

    // Steal protocol (scheduler-owned unless noted).
    std::atomic<bool> starving{false};                 // DP: set by workers
    std::vector<std::atomic<bool>> fp_starving;        // FP: per op
    std::atomic<int64_t> steal_inflight{0};
    bool steal_in_progress = false;
    uint32_t steal_op = kAnyOp;
    uint32_t offers_pending = 0;
    uint32_t best_provider = UINT32_MAX;
    uint32_t best_op = kAnyOp;
    uint64_t best_count = 0;

    // End detection (scheduler-owned).
    std::vector<bool> reported;
    std::vector<bool> drain_requested;
    std::vector<bool> drain_acked;

    // Scheduler overflow buffer for routing into full queues.
    std::deque<Activation> route_overflow;

    // FP stage assignments: packed [lo, hi) ranges per op.
    std::vector<uint64_t> fp_range;

    std::atomic<bool> done{false};
    std::atomic<bool> failed{false};

    // Worker wakeup: schedulers notify after routing work or state
    // changes so idle workers don't spin-poll.
    std::mutex wake_mu;
    std::condition_variable wake_cv;

    // Results and stats.
    std::vector<ResultDigest> digests;          // per thread
    std::vector<uint64_t> busy;                 // per thread
    std::atomic<uint64_t> idle{0};
    std::atomic<uint64_t> stolen_acts{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> steal_reqs{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> shipped_rows{0};

    // Per-worker outboxes for full local queues.
    std::vector<std::deque<Activation>> outbox;

    // Per-worker scatter scratch, pooled by re-entrancy depth (FlushOutbox
    // may nest another activation while an outer frame scatters).
    struct Scratch {
      std::vector<Batch> bucket;
      std::vector<uint32_t> hit;
    };
    std::vector<std::vector<std::unique_ptr<Scratch>>> scratch_pool;
    std::vector<size_t> scratch_depth;
  };
  std::vector<std::unique_ptr<NodeState>> node_state;

  // Coordinator (node 0) bookkeeping.
  std::vector<uint32_t> coord_reports;
  std::vector<uint32_t> coord_acks;
  std::vector<bool> coord_drain;
  std::vector<bool> coord_terminated;

  // ------------------------------------------------------------------
  // Setup.

  void Compile(const ChainQuery& q) {
    query = &q;
    k = static_cast<uint32_t>(q.joins.size());
    nops = 3 * k + 1;
    scan_op = 2 * k;
    width_at.clear();
    width_at.push_back(q.input->width);
    for (const auto& j : q.joins) {
      width_at.push_back(width_at.back() + j.build->width);
    }

    coord_reports.assign(nops, 0);
    coord_acks.assign(nops, 0);
    coord_drain.assign(nops, false);
    coord_terminated.assign(nops, false);

    const uint32_t T = opt.threads_per_node;
    const uint32_t B = opt.buckets;
    node_state.clear();
    for (uint32_t n = 0; n < opt.nodes; ++n) {
      auto ns = std::make_unique<NodeState>();
      ns->queues.reserve(static_cast<size_t>(nops) * T);
      for (uint32_t i = 0; i < nops * T; ++i) {
        ns->queues.push_back(std::make_unique<BQueue>());
      }
      ns->pending = std::vector<std::atomic<int64_t>>(nops);
      ns->morsels_left = std::vector<std::atomic<int64_t>>(nops);
      ns->cursor = std::vector<std::atomic<size_t>>(nops);
      ns->terminated = std::vector<std::atomic<bool>>(nops);
      ns->fp_starving = std::vector<std::atomic<bool>>(nops);
      for (uint32_t i = 0; i < nops; ++i) {
        ns->pending[i].store(0);
        ns->morsels_left[i].store(0);
        ns->cursor[i].store(0);
        ns->terminated[i].store(false);
        ns->fp_starving[i].store(false);
      }
      ns->tables.resize(k);
      ns->bucket_mu.resize(k);
      ns->stolen.resize(k);
      ns->stolen_mu.resize(k);
      ns->cached_buckets.resize(k);
      for (uint32_t j = 0; j < k; ++j) {
        ns->tables[j].resize(B);
        ns->bucket_mu[j].resize(B);
        ns->stolen_mu[j] = std::make_unique<std::shared_mutex>();
        for (uint32_t b = 0; b < B; ++b) {
          ns->tables[j][b].Init(q.joins[j].build->width,
                                q.joins[j].build_col);
          ns->bucket_mu[j][b] = std::make_unique<std::mutex>();
        }
      }
      ns->reported.assign(nops, false);
      ns->drain_requested.assign(nops, false);
      ns->drain_acked.assign(nops, false);
      ns->digests.assign(T, {});
      ns->busy.assign(T, 0);
      ns->outbox.resize(T);
      ns->scratch_pool.resize(T);
      ns->scratch_depth.assign(T, 0);
      // Trigger morsel counts over local partitions.
      for (uint32_t j = 0; j < k; ++j) {
        size_t rows = q.joins[j].build->parts[n].rows();
        ns->morsels_left[buildscan_op(j)].store(static_cast<int64_t>(
            (rows + opt.morsel_rows - 1) / opt.morsel_rows));
      }
      size_t rows = q.input->parts[n].rows();
      ns->morsels_left[scan_op].store(static_cast<int64_t>(
          (rows + opt.morsel_rows - 1) / opt.morsel_rows));
      if (opt.strategy == LocalStrategy::kFP) ComputeFpRanges(*ns, n);
      node_state.push_back(std::move(ns));
    }
  }

  // FP: two static stages — builds (buildscan_j + build_j), then the
  // probe chain (scan + probe_j). Threads allocated by local cost.
  void ComputeFpRanges(NodeState& ns, uint32_t n) {
    const uint32_t T = opt.threads_per_node;
    ns.fp_range.assign(nops, 0);
    auto apportion = [&](const std::vector<std::pair<uint32_t, double>>&
                             ops_with_cost) {
      if (ops_with_cost.empty()) return;
      if (ops_with_cost.size() >= T) {
        for (size_t i = 0; i < ops_with_cost.size(); ++i) {
          uint32_t t = static_cast<uint32_t>(i) % T;
          ns.fp_range[ops_with_cost[i].first] =
              (static_cast<uint64_t>(t) << 32) | (t + 1);
        }
        return;
      }
      double total = 0;
      for (const auto& [op, c] : ops_with_cost) total += c;
      uint32_t rest = T - static_cast<uint32_t>(ops_with_cost.size());
      std::vector<uint32_t> alloc(ops_with_cost.size(), 1);
      std::vector<double> frac(ops_with_cost.size());
      uint32_t used = 0;
      for (size_t i = 0; i < ops_with_cost.size(); ++i) {
        double share =
            total > 0 ? ops_with_cost[i].second / total * rest
                      : static_cast<double>(rest) / ops_with_cost.size();
        uint32_t whole = static_cast<uint32_t>(share);
        alloc[i] += whole;
        used += whole;
        frac[i] = share - whole;
      }
      std::vector<size_t> order(ops_with_cost.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](size_t a, size_t b) { return frac[a] > frac[b]; });
      for (size_t i = 0; i < order.size() && used < rest; ++i, ++used) {
        ++alloc[order[i]];
      }
      uint32_t t = 0;
      for (size_t i = 0; i < ops_with_cost.size(); ++i) {
        ns.fp_range[ops_with_cost[i].first] =
            (static_cast<uint64_t>(t) << 32) | (t + alloc[i]);
        t += alloc[i];
      }
    };
    std::vector<std::pair<uint32_t, double>> stage_a;
    for (uint32_t j = 0; j < k; ++j) {
      double c =
          static_cast<double>(query->joins[j].build->parts[n].rows()) + 1;
      stage_a.push_back({buildscan_op(j), c});
      stage_a.push_back({build_op(j), c});
    }
    apportion(stage_a);
    std::vector<std::pair<uint32_t, double>> stage_b;
    double scan_cost =
        static_cast<double>(query->input->parts[n].rows()) + 1;
    stage_b.push_back({scan_op, scan_cost});
    for (uint32_t j = 0; j < k; ++j) {
      stage_b.push_back({probe_op(j), scan_cost});
    }
    apportion(stage_b);
  }

  NodeState::Scratch& AcquireScratch(NodeState& ns, uint32_t t) {
    size_t d = ns.scratch_depth[t]++;
    if (d == ns.scratch_pool[t].size()) {
      auto sc = std::make_unique<NodeState::Scratch>();
      sc->bucket.resize(opt.buckets);
      ns.scratch_pool[t].push_back(std::move(sc));
    }
    return *ns.scratch_pool[t][d];
  }
  void ReleaseScratch(NodeState& ns, uint32_t t) { --ns.scratch_depth[t]; }

  bool ThreadMayRun(const NodeState& ns, uint32_t t, uint32_t op) const {
    if (opt.strategy != LocalStrategy::kFP) return true;
    uint64_t packed = ns.fp_range[op];
    uint32_t lo = static_cast<uint32_t>(packed >> 32);
    uint32_t hi = static_cast<uint32_t>(packed);
    return lo <= t && t < hi;
  }

  bool Consumable(const NodeState& ns, uint32_t op) const {
    if (is_trigger(op)) {
      if (op == scan_op) {
        for (uint32_t j = 0; j < k; ++j) {
          if (!ns.terminated[build_op(j)].load(std::memory_order_acquire)) {
            return false;
          }
        }
      }
      return true;
    }
    if (is_build(op)) return true;
    return ns.terminated[build_op(join_of(op))].load(
        std::memory_order_acquire);
  }

  // ------------------------------------------------------------------
  // Worker side.

  void WorkerLoop(uint32_t node, uint32_t t) {
    NodeState& ns = *node_state[node];
    while (!ns.done.load(std::memory_order_acquire)) {
      if (!ns.outbox[t].empty()) FlushOutbox(node, t);
      if (RunOne(node, t)) {
        FlushOutbox(node, t);
        ns.starving.store(false, std::memory_order_relaxed);
      } else {
        ns.idle.fetch_add(1, std::memory_order_relaxed);
        MarkStarving(ns, t);
        std::unique_lock<std::mutex> lock(ns.wake_mu);
        ns.wake_cv.wait_for(lock, std::chrono::microseconds(500));
      }
    }
  }

  void MarkStarving(NodeState& ns, uint32_t t) {
    if (opt.strategy == LocalStrategy::kFP) {
      // FP: the thread's probe operator has no local work.
      for (uint32_t j = 0; j < k; ++j) {
        uint32_t op = probe_op(j);
        if (ThreadMayRun(ns, t, op) && Consumable(ns, op) &&
            !ns.terminated[op].load()) {
          ns.fp_starving[op].store(true, std::memory_order_relaxed);
        }
      }
    } else {
      ns.starving.store(true, std::memory_order_relaxed);
    }
  }

  bool RunOne(uint32_t node, uint32_t t) {
    NodeState& ns = *node_state[node];
    const uint32_t T = opt.threads_per_node;
    // Primary queues.
    for (uint32_t i = 0; i < nops; ++i) {
      uint32_t op = (t + i) % nops;
      if (is_trigger(op) || !Consumable(ns, op)) continue;
      if (!ThreadMayRun(ns, t, op)) continue;
      Activation act;
      if (ns.queues[op * T + t]->TryPopFront(&act)) {
        ExecuteData(node, t, std::move(act));
        return true;
      }
    }
    // Trigger morsels.
    for (uint32_t i = 0; i < nops; ++i) {
      uint32_t op = (t + i) % nops;
      if (!is_trigger(op) || !Consumable(ns, op)) continue;
      if (!ThreadMayRun(ns, t, op)) continue;
      if (ClaimMorsel(node, t, op)) return true;
    }
    // Steal within the node.
    for (uint32_t i = 0; i < nops; ++i) {
      uint32_t op = (t + i) % nops;
      if (is_trigger(op) || !Consumable(ns, op)) continue;
      if (!ThreadMayRun(ns, t, op)) continue;
      for (uint32_t d = 1; d < T; ++d) {
        Activation act;
        if (ns.queues[op * T + (t + d) % T]->TryPopBack(&act)) {
          ExecuteData(node, t, std::move(act));
          return true;
        }
      }
    }
    return false;
  }

  bool ClaimMorsel(uint32_t node, uint32_t t, uint32_t op) {
    NodeState& ns = *node_state[node];
    const Batch& src = op == scan_op
                           ? query->input->parts[node]
                           : query->joins[op].build->parts[node];
    size_t begin = ns.cursor[op].fetch_add(opt.morsel_rows);
    if (begin >= src.rows()) return false;
    size_t end = std::min<size_t>(begin + opt.morsel_rows, src.rows());
    ExecuteMorsel(node, t, op, src, begin, end);
    ++ns.busy[t];
    ns.morsels_left[op].fetch_sub(1);
    return true;
  }

  // Scatter a trigger morsel into per-bucket batches and route them.
  void ExecuteMorsel(uint32_t node, uint32_t t, uint32_t op,
                     const Batch& src, size_t begin, size_t end) {
    uint32_t dst_op, col;
    if (op == scan_op) {
      dst_op = probe_op(0);
      col = query->joins[0].probe_col;
    } else {
      dst_op = build_op(op);
      col = query->joins[op].build_col;
    }
    const uint32_t B = opt.buckets;
    NodeState& ns = *node_state[node];
    auto& sc = AcquireScratch(ns, t);
    auto& scratch = sc.bucket;
    auto& hit = sc.hit;
    for (size_t i = begin; i < end; ++i) {
      const int64_t* row = src.row(i);
      uint32_t bucket = static_cast<uint32_t>(mt::HashKey(row[col]) % B);
      Batch& b = scratch[bucket];
      if (b.width() == 0) b = Batch(src.width());
      if (b.empty()) hit.push_back(bucket);
      b.AppendRow(row);
      if (b.rows() >= opt.batch_rows) {
        Route(node, t, dst_op, bucket, std::move(b));
        scratch[bucket] = Batch();
        hit.erase(std::find(hit.begin(), hit.end(), bucket));
      }
    }
    for (uint32_t bucket : hit) {
      Route(node, t, dst_op, bucket, std::move(scratch[bucket]));
      scratch[bucket] = Batch();
    }
    hit.clear();
    ReleaseScratch(ns, t);
  }

  // Routes one data activation to the bucket's home node: local queue via
  // shared memory, remote via the fabric.
  void Route(uint32_t node, uint32_t t, uint32_t dst_op, uint32_t bucket,
             Batch&& rows) {
    uint32_t home = home_of(bucket);
    if (home == node) {
      NodeState& ns = *node_state[node];
      ns.pending[dst_op].fetch_add(1);
      Activation act{dst_op, bucket, std::move(rows)};
      const uint32_t T = opt.threads_per_node;
      if (!ns.queues[dst_op * T + bucket % T]->TryPush(
              std::move(act), opt.queue_capacity)) {
        ns.outbox[t].push_back(std::move(act));
      } else {
        ns.wake_cv.notify_one();
      }
      return;
    }
    Message m;
    m.type = MsgType::kTupleBatch;
    m.op = dst_op;
    m.bucket = bucket;
    m.payload = net::EncodeBatch(rows);
    fabric.Send(node, home, std::move(m)).ok();
  }

  // Probe-output routing differs: a *stolen* activation's bucket is not
  // homed here, yet its outputs scatter normally by the next join's
  // bucket. Handled uniformly by Route.

  void ExecuteData(uint32_t node, uint32_t t, Activation&& act) {
    NodeState& ns = *node_state[node];
    ++ns.busy[t];
    uint32_t j = join_of(act.op);
    if (is_build(act.op)) {
      std::lock_guard<std::mutex> lock(*ns.bucket_mu[j][act.bucket]);
      ns.tables[j][act.bucket].InsertBatch(act.rows);
      ns.pending[act.op].fetch_sub(1);
      return;
    }
    // Probe.
    const RowTable* table = nullptr;
    if (home_of(act.bucket) == node) {
      table = &ns.tables[j][act.bucket];
    } else {
      std::shared_lock<std::shared_mutex> lock(*ns.stolen_mu[j]);
      auto it = ns.stolen[j].find(act.bucket);
      if (it != ns.stolen[j].end()) table = it->second.get();
    }
    if (table == nullptr) {
      ns.failed.store(true);
      ns.pending[act.op].fetch_sub(1);
      return;
    }
    const auto& js = query->joins[j];
    const uint32_t in_w = act.rows.width();
    const uint32_t out_w = in_w + js.build->width;
    const bool last = j + 1 == k;
    std::vector<int64_t> out_row(out_w);
    const uint32_t B = opt.buckets;
    auto& sc = AcquireScratch(ns, t);
    auto& scratch = sc.bucket;
    auto& hit = sc.hit;
    uint32_t next_col = 0;
    uint32_t next_op = 0;
    if (!last) {
      next_col = query->joins[j + 1].probe_col;
      next_op = probe_op(j + 1);
    }
    for (size_t i = 0; i < act.rows.rows(); ++i) {
      const int64_t* row = act.rows.row(i);
      table->ForEachMatch(row[js.probe_col], [&](const int64_t* brow) {
        std::copy(row, row + in_w, out_row.begin());
        std::copy(brow, brow + js.build->width, out_row.begin() + in_w);
        if (last) {
          ns.digests[t].Add(out_row.data(), out_w);
          return;
        }
        uint32_t bucket =
            static_cast<uint32_t>(mt::HashKey(out_row[next_col]) % B);
        Batch& b = scratch[bucket];
        if (b.width() == 0) b = Batch(out_w);
        if (b.empty()) hit.push_back(bucket);
        b.AppendRow(out_row.data());
        if (b.rows() >= opt.batch_rows) {
          Route(node, t, next_op, bucket, std::move(b));
          scratch[bucket] = Batch();
          hit.erase(std::find(hit.begin(), hit.end(), bucket));
        }
      });
    }
    for (uint32_t bucket : hit) {
      Route(node, t, next_op, bucket, std::move(scratch[bucket]));
      scratch[bucket] = Batch();
    }
    hit.clear();
    ReleaseScratch(ns, t);
    ns.pending[act.op].fetch_sub(1);
  }

  // Drain a worker's outbox of pushes that found full local queues.
  void FlushOutbox(uint32_t node, uint32_t t) {
    NodeState& ns = *node_state[node];
    const uint32_t T = opt.threads_per_node;
    auto& outbox = ns.outbox[t];
    uint32_t stalls = 0;
    while (!outbox.empty() && !ns.done.load(std::memory_order_relaxed)) {
      size_t n = outbox.size();
      bool progressed = false;
      for (size_t i = 0; i < n;) {
        Activation& act = outbox[i];
        if (ns.queues[act.op * T + act.bucket % T]->TryPush(
                std::move(act), opt.queue_capacity)) {
          outbox.erase(outbox.begin() + static_cast<long>(i));
          --n;
          progressed = true;
        } else {
          ++i;
        }
      }
      if (outbox.empty() || progressed) {
        stalls = 0;
        continue;
      }
      // Help: drain stuck destinations, deepest operator first (the
      // terminal probe consumes without producing, so draining deep ops
      // shrinks the backlog instead of growing it). Execute a burst of
      // helps per push pass to avoid quadratic outbox re-scans.
      bool helped = false;
      std::vector<uint32_t> stuck_ops;
      for (const Activation& stuck : outbox) {
        if (Consumable(ns, stuck.op) &&
            std::find(stuck_ops.begin(), stuck_ops.end(), stuck.op) ==
                stuck_ops.end()) {
          stuck_ops.push_back(stuck.op);
        }
      }
      std::sort(stuck_ops.rbegin(), stuck_ops.rend());
      uint32_t burst = 0;
      for (uint32_t op : stuck_ops) {
        for (uint32_t d = 0; d < T && burst < 16; ++d) {
          Activation other;
          while (burst < 16 &&
                 ns.queues[op * T + (t + d) % T]->TryPopFront(&other)) {
            ExecuteData(node, t, std::move(other));
            ++burst;
            helped = true;
          }
        }
        if (burst >= 16) break;
      }
      if (!helped && stalls > 1000) {
        helped = RunOne(node, t);
      }
      if (!helped) {
        ++stalls;
        std::this_thread::yield();
      } else {
        stalls = 0;
      }
    }
  }

  // ------------------------------------------------------------------
  // Scheduler side (one per node; node 0 doubles as coordinator).

  void SchedulerLoop(uint32_t node) {
    NodeState& ns = *node_state[node];
    const uint32_t T = opt.threads_per_node;
    while (true) {
      bool worked = false;
      // 1. Route queued overflow from earlier messages.
      for (size_t i = 0; i < ns.route_overflow.size();) {
        Activation& act = ns.route_overflow[i];
        if (ns.queues[act.op * T + act.bucket % T]->TryPush(
                std::move(act), opt.queue_capacity)) {
          ns.route_overflow.erase(ns.route_overflow.begin() +
                                  static_cast<long>(i));
          worked = true;
        } else {
          ++i;
        }
      }
      // 2. Drain the mailbox.
      Message m;
      while (fabric.mailbox(node).TryPop(&m)) {
        HandleMessage(node, std::move(m));
        worked = true;
      }
      // 3. End-detection reports.
      worked |= CheckReports(node);
      // 4. Global load balancing.
      if (opt.global_lb) worked |= CheckStarving(node);
      if (worked) ns.wake_cv.notify_all();
      if (ns.done.load(std::memory_order_acquire) &&
          ns.route_overflow.empty()) {
        ns.wake_cv.notify_all();
        return;
      }
      if (!worked) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }

  bool CheckReports(uint32_t node) {
    NodeState& ns = *node_state[node];
    bool acted = false;
    for (uint32_t op = 0; op < nops; ++op) {
      if (!ns.reported[op]) {
        bool ready;
        if (is_trigger(op)) {
          ready = ns.morsels_left[op].load() == 0;
        } else {
          ready = ns.terminated[producer_of(op)].load() &&
                  ns.pending[op].load() == 0 &&
                  ns.steal_inflight.load() == 0;
        }
        if (ready) {
          ns.reported[op] = true;
          SendToCoordinator(node, MsgType::kEndOfQueuesAtNode, op, 0);
          acted = true;
        }
      }
      if (ns.drain_requested[op] && !ns.drain_acked[op]) {
        bool drained = is_trigger(op)
                           ? ns.morsels_left[op].load() == 0
                           : (ns.pending[op].load() == 0 &&
                              ns.steal_inflight.load() == 0);
        if (drained) {
          ns.drain_acked[op] = true;
          SendToCoordinator(node, MsgType::kDrainConfirm, op, 1);
          acted = true;
        }
      }
    }
    return acted;
  }

  bool CheckStarving(uint32_t node) {
    NodeState& ns = *node_state[node];
    if (ns.steal_in_progress) return false;
    uint32_t want_op = kAnyOp;
    if (opt.strategy == LocalStrategy::kFP) {
      for (uint32_t j = 0; j < k; ++j) {
        uint32_t op = probe_op(j);
        if (ns.fp_starving[op].load(std::memory_order_relaxed) &&
            !ns.terminated[op].load()) {
          want_op = op;
          ns.fp_starving[op].store(false, std::memory_order_relaxed);
          break;
        }
      }
      if (want_op == kAnyOp) return false;
    } else {
      if (!ns.starving.load(std::memory_order_relaxed)) return false;
      // Only bother when some probe operator is still alive somewhere.
      bool alive = false;
      for (uint32_t j = 0; j < k && !alive; ++j) {
        alive = !ns.terminated[probe_op(j)].load();
      }
      if (!alive) return false;
      ns.starving.store(false, std::memory_order_relaxed);
    }
    if (opt.nodes < 2) return false;
    ns.steal_in_progress = true;
    ns.steal_op = want_op;
    ns.offers_pending = opt.nodes - 1;
    ns.best_provider = UINT32_MAX;
    ns.best_count = 0;
    ns.best_op = kAnyOp;
    ns.steal_reqs.fetch_add(1, std::memory_order_relaxed);
    Message m;
    m.type = MsgType::kStarving;
    m.op = want_op;
    m.arg = 0;  // available memory: unconstrained in this build
    fabric.Broadcast(node, m).ok();
    return true;
  }

  void SendToCoordinator(uint32_t node, MsgType type, uint32_t op,
                         uint64_t arg) {
    if (node == 0) {
      Message m;
      m.type = type;
      m.op = op;
      m.arg = arg;
      m.from = 0;
      CoordinatorHandle(std::move(m));
    } else {
      Message m;
      m.type = type;
      m.op = op;
      m.arg = arg;
      fabric.Send(node, 0, std::move(m)).ok();
    }
  }

  void CoordinatorBroadcast(MsgType type, uint32_t op, uint64_t arg) {
    Message m;
    m.type = type;
    m.op = op;
    m.arg = arg;
    fabric.Broadcast(0, m).ok();
    // Self-delivery.
    m.from = 0;
    HandleNodeMessage(0, std::move(m));
  }

  void CoordinatorHandle(Message&& m) {
    uint32_t op = m.op;
    if (coord_terminated[op]) return;
    if (m.type == MsgType::kEndOfQueuesAtNode) {
      if (++coord_reports[op] == opt.nodes && !coord_drain[op]) {
        coord_drain[op] = true;
        CoordinatorBroadcast(MsgType::kDrainConfirm, op, 0);
      }
    } else if (m.type == MsgType::kDrainConfirm && m.arg == 1) {
      if (++coord_acks[op] == opt.nodes) {
        coord_terminated[op] = true;
        CoordinatorBroadcast(MsgType::kOpTerminated, op, 0);
      }
    }
  }

  void HandleMessage(uint32_t node, Message&& m) {
    if (node == 0 && (m.type == MsgType::kEndOfQueuesAtNode ||
                      (m.type == MsgType::kDrainConfirm && m.arg == 1))) {
      CoordinatorHandle(std::move(m));
      return;
    }
    HandleNodeMessage(node, std::move(m));
  }

  void HandleNodeMessage(uint32_t node, Message&& m) {
    NodeState& ns = *node_state[node];
    const uint32_t T = opt.threads_per_node;
    switch (m.type) {
      case MsgType::kTupleBatch: {
        auto rows = net::DecodeBatch(m.payload);
        if (!rows.ok()) {
          ns.failed.store(true);
          return;
        }
        ns.pending[m.op].fetch_add(1);
        Activation act{m.op, m.bucket, std::move(rows).value()};
        if (!ns.queues[m.op * T + m.bucket % T]->TryPush(
                std::move(act), opt.queue_capacity)) {
          ns.route_overflow.push_back(std::move(act));
        }
        break;
      }
      case MsgType::kDrainConfirm:
        // arg == 0: coordinator requests a drain ack for op.
        if (m.arg == 0) ns.drain_requested[m.op] = true;
        break;
      case MsgType::kOpTerminated:
        ns.terminated[m.op].store(true, std::memory_order_release);
        if (m.op == probe_op(k - 1) || (k == 0 && m.op == scan_op)) {
          ns.done.store(true, std::memory_order_release);
        }
        break;
      case MsgType::kStarving:
        HandleStarving(node, m);
        break;
      case MsgType::kOffer:
      case MsgType::kNoWork:
        HandleOfferReply(node, m);
        break;
      case MsgType::kAcquire:
        HandleAcquire(node, m);
        break;
      case MsgType::kWork:
        HandleWork(node, m);
        break;
      default:
        break;
    }
  }

  // A remote node is starving: offer our best candidate queue. Candidates
  // are unblocked probe operators with enough queued work (Section 3.2
  // conditions ii, iv, v); benefit is the queued activation count.
  void HandleStarving(uint32_t node, const Message& m) {
    NodeState& ns = *node_state[node];
    const uint32_t T = opt.threads_per_node;
    uint32_t best_op = kAnyOp;
    uint64_t best_count = 0;
    for (uint32_t j = 0; j < k; ++j) {
      uint32_t op = probe_op(j);
      if (m.op != kAnyOp && m.op != op) continue;
      if (!Consumable(ns, op) || ns.terminated[op].load()) continue;
      uint64_t count = 0;
      for (uint32_t t = 0; t < T; ++t) {
        count += ns.queues[op * T + t]->ApproxSize();
      }
      if (count >= opt.min_steal && count > best_count) {
        best_count = count;
        best_op = op;
      }
    }
    Message reply;
    if (best_op != kAnyOp) {
      reply.type = MsgType::kOffer;
      reply.op = best_op;
      reply.arg = best_count;
    } else {
      reply.type = MsgType::kNoWork;
      reply.arg = 0;  // offer stage
    }
    fabric.Send(node, m.from, std::move(reply)).ok();
  }

  void HandleOfferReply(uint32_t node, const Message& m) {
    NodeState& ns = *node_state[node];
    if (!ns.steal_in_progress) return;
    if (m.type == MsgType::kNoWork && m.arg == 1) {
      // Acquire-stage failure: provider raced empty.
      ns.steal_inflight.fetch_sub(1);
      ns.steal_in_progress = false;
      return;
    }
    if (ns.offers_pending == 0) return;
    --ns.offers_pending;
    if (m.type == MsgType::kOffer && m.arg > ns.best_count) {
      ns.best_count = m.arg;
      ns.best_provider = m.from;
      ns.best_op = m.op;
    }
    if (ns.offers_pending == 0) {
      if (ns.best_provider == UINT32_MAX) {
        ns.steal_in_progress = false;
        return;
      }
      // Acquire from the most loaded provider; list cached buckets so
      // already-copied fragments are not re-shipped (Section 4).
      ns.steal_inflight.fetch_add(1);
      Message req;
      req.type = MsgType::kAcquire;
      req.op = ns.best_op;
      if (opt.cache_stolen_fragments) {
        uint32_t j = join_of(ns.best_op);
        for (uint32_t b : ns.cached_buckets[j]) {
          net::PutU32(&req.payload, b);
        }
      }
      fabric.Send(node, ns.best_provider, std::move(req)).ok();
    }
  }

  void HandleAcquire(uint32_t node, const Message& m) {
    NodeState& ns = *node_state[node];
    const uint32_t T = opt.threads_per_node;
    uint32_t op = m.op;
    uint32_t j = join_of(op);
    std::unordered_set<uint32_t> requester_cached;
    {
      net::Reader r(m.payload);
      uint32_t b;
      while (r.GetU32(&b)) requester_cached.insert(b);
    }
    net::RowWorkBundle bundle;
    bundle.op = op;
    std::unordered_set<uint32_t> shipped;
    uint64_t popped = 0;
    for (uint32_t t = 0; t < T && popped < opt.steal_batch; ++t) {
      Activation act;
      while (popped < opt.steal_batch &&
             ns.queues[op * T + t]->TryPopBack(&act)) {
        if (!requester_cached.count(act.bucket) &&
            !shipped.count(act.bucket)) {
          // Locate the bucket's build rows: the local table when the
          // bucket is homed here, or our own stolen-fragment cache when
          // this activation was itself acquired earlier.
          const RowTable* table = nullptr;
          if (home_of(act.bucket) == node) {
            table = &ns.tables[j][act.bucket];
          } else {
            std::shared_lock<std::shared_mutex> lock(*ns.stolen_mu[j]);
            auto it = ns.stolen[j].find(act.bucket);
            if (it != ns.stolen[j].end()) table = it->second.get();
          }
          if (table == nullptr) {
            // Cannot supply the hash table: keep the activation local.
            if (!ns.queues[op * T + t]->TryPush(std::move(act),
                                                opt.queue_capacity)) {
              ns.route_overflow.push_back(std::move(act));
            }
            continue;
          }
          shipped.insert(act.bucket);
          net::RowFragment frag;
          frag.bucket = act.bucket;
          frag.build_rows = Batch(table->width());
          frag.build_rows.data() = table->pool();
          ns.shipped_rows.fetch_add(table->rows());
          bundle.fragments.push_back(std::move(frag));
        } else if (requester_cached.count(act.bucket)) {
          ns.cache_hits.fetch_add(1, std::memory_order_relaxed);
        }
        ++popped;
        net::RowActivation ra;
        ra.bucket = act.bucket;
        ra.rows = std::move(act.rows);
        bundle.activations.push_back(std::move(ra));
      }
    }
    if (bundle.activations.empty()) {
      Message reply;
      reply.type = MsgType::kNoWork;
      reply.arg = 1;  // acquire stage
      fabric.Send(node, m.from, std::move(reply)).ok();
      return;
    }
    ns.pending[op].fetch_sub(static_cast<int64_t>(bundle.activations.size()));
    Message reply;
    reply.type = MsgType::kWork;
    reply.op = op;
    reply.payload = net::EncodeRowWork(bundle);
    fabric.Send(node, m.from, std::move(reply)).ok();
  }

  void HandleWork(uint32_t node, const Message& m) {
    NodeState& ns = *node_state[node];
    const uint32_t T = opt.threads_per_node;
    auto bundle = net::DecodeRowWork(m.payload);
    if (!bundle.ok()) {
      ns.failed.store(true);
      ns.steal_inflight.fetch_sub(1);
      ns.steal_in_progress = false;
      return;
    }
    uint32_t op = bundle.value().op;
    uint32_t j = join_of(op);
    {
      std::unique_lock<std::shared_mutex> lock(*ns.stolen_mu[j]);
      for (auto& frag : bundle.value().fragments) {
        if (ns.stolen[j].count(frag.bucket)) continue;
        auto table = std::make_unique<RowTable>(
            frag.build_rows.width(), query->joins[j].build_col);
        table->InsertBatch(frag.build_rows);
        ns.stolen[j][frag.bucket] = std::move(table);
        ns.cached_buckets[j].insert(frag.bucket);
      }
    }
    ns.steals.fetch_add(1, std::memory_order_relaxed);
    ns.stolen_acts.fetch_add(bundle.value().activations.size(),
                             std::memory_order_relaxed);
    for (auto& ra : bundle.value().activations) {
      ns.pending[op].fetch_add(1);
      Activation act{op, ra.bucket, std::move(ra.rows)};
      if (!ns.queues[op * T + ra.bucket % T]->TryPush(std::move(act),
                                                      opt.queue_capacity)) {
        ns.route_overflow.push_back(std::move(act));
      }
    }
    ns.steal_inflight.fetch_sub(1);
    ns.steal_in_progress = false;
  }
};

ClusterExecutor::ClusterExecutor(const ClusterOptions& options)
    : options_(options) {
  HIERDB_CHECK(options_.nodes > 0, "need at least one node");
  HIERDB_CHECK(options_.threads_per_node > 0, "need at least one thread");
  HIERDB_CHECK(options_.buckets >= options_.nodes,
               "need at least one bucket per node");
  HIERDB_CHECK(options_.strategy != LocalStrategy::kSP,
               "SP is shared-memory only (Section 5.2)");
}

ClusterExecutor::~ClusterExecutor() = default;

Result<ResultDigest> ClusterExecutor::Execute(const ChainQuery& query,
                                              ClusterStats* stats) {
  HIERDB_RETURN_NOT_OK(query.Validate(options_.nodes));
  if (query.joins.empty()) {
    return Status::InvalidArgument("chain query needs at least one join");
  }
  impl_ = std::make_unique<Impl>(options_);
  Impl& im = *impl_;
  im.Compile(query);

  std::vector<std::thread> threads;
  for (uint32_t n = 0; n < options_.nodes; ++n) {
    threads.emplace_back([&im, n] { im.SchedulerLoop(n); });
    for (uint32_t t = 0; t < options_.threads_per_node; ++t) {
      threads.emplace_back([&im, n, t] { im.WorkerLoop(n, t); });
    }
  }
  for (auto& t : threads) t.join();

  bool failed = false;
  for (auto& ns : im.node_state) failed |= ns->failed.load();
  if (failed) {
    impl_.reset();
    return Status::Internal("cluster execution failed");
  }

  ResultDigest digest;
  for (auto& ns : im.node_state) {
    for (const auto& d : ns->digests) digest.Merge(d);
  }
  if (stats != nullptr) {
    *stats = ClusterStats{};
    stats->fabric = im.fabric.stats();
    auto type_bytes = [&](MsgType t) {
      return stats->fabric.bytes_by_type[static_cast<size_t>(t)];
    };
    stats->lb_bytes = type_bytes(MsgType::kStarving) +
                      type_bytes(MsgType::kOffer) +
                      type_bytes(MsgType::kNoWork) +
                      type_bytes(MsgType::kAcquire) +
                      type_bytes(MsgType::kWork);
    stats->dataflow_bytes = type_bytes(MsgType::kTupleBatch);
    stats->protocol_bytes = type_bytes(MsgType::kEndOfQueuesAtNode) +
                            type_bytes(MsgType::kDrainConfirm) +
                            type_bytes(MsgType::kOpTerminated);
    for (auto& ns : im.node_state) {
      stats->steal_requests += ns->steal_reqs.load();
      stats->steals += ns->steals.load();
      stats->stolen_activations += ns->stolen_acts.load();
      stats->shipped_fragment_rows += ns->shipped_rows.load();
      stats->fragment_cache_hits += ns->cache_hits.load();
      stats->idle_waits_per_node.push_back(ns->idle.load());
      uint64_t busy = 0;
      for (uint64_t b : ns->busy) busy += b;
      stats->busy_per_node.push_back(busy);
    }
  }
  impl_.reset();
  return digest;
}

}  // namespace hierdb::cluster
