// Hierarchical cluster executor — the paper's two-level execution model on
// real threads and real data.
//
// The cluster is a set of SM-nodes (thread groups) coupled only by the
// message-passing Fabric; each node owns partitions of every relation and
// a slice of the global bucket space (bucket home = bucket mod nodes).
// A multi-chain plan of hash joins executes exactly as in Sections 3 and 4:
//
//   local level    one thread per processor; one activation queue per
//                  (operator x thread); primary-queue affinity; under DP
//                  any thread consumes any consumable queue of its node;
//                  under FP threads are statically allocated to operators
//                  in proportion to estimated cost;
//
//   dataflow       scans scatter rows by join-key bucket; activations for
//                  remotely-homed buckets travel as kTupleBatch messages
//                  (the inter-node pipelined redistribution);
//
//   global level   a starving node broadcasts kStarving; every provider
//                  answers with its best candidate queue (kOffer, benefit
//                  = queued probe activations) or kNoWork; the requester
//                  acquires from the most loaded provider (kAcquire) and
//                  receives probe activations plus the hash-table
//                  fragments of the referenced buckets (kWork). Only
//                  probe activations are stealable (Section 3.2 rule iv).
//                  Acquired fragments are cached so repeated starving
//                  reuses already-copied tables (Section 4 optimization);
//
//   end detection  the coordinator protocol of Section 4: each node
//                  reports EndOfQueuesAtNode per operator; after all
//                  reports the coordinator runs a drain-confirm round
//                  (covering in-flight steals), then broadcasts
//                  kOpTerminated, which unblocks dependent operators.
//
//   chains         a bushy plan decomposes into pipeline chains whose
//                  build (or input) sides may be earlier chains' outputs.
//                  Every chain runs on the full node/thread topology; a
//                  non-final chain's output stays distributed — each node
//                  keeps the intermediate rows its own probes produced —
//                  and the consuming chain's trigger re-scatters them by
//                  its join key through the normal bucket routing, so the
//                  repartition ships as kTupleBatch traffic and no
//                  intermediate ever funnels through a single machine.
//                  With ClusterOptions::serialize_chains (the paper's H2,
//                  the default) chains execute back-to-back in plan order;
//                  without it, chains whose inputs are all terminated
//                  execute concurrently.
//
// Strategy semantics for the Figure 10 / Section 5.3 comparison:
//   kDP   global load sharing fires only when the *whole node* starves;
//   kFP   an idle thread (its operator has no local work) immediately
//         triggers a steal request for that operator — the per-processor
//         stealing the paper attributes to FP, with its repeated and
//         mutual starving situations.

#ifndef HIERDB_CLUSTER_CLUSTER_EXECUTOR_H_
#define HIERDB_CLUSTER_CLUSTER_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "fault/fault.h"
#include "mt/pipeline_executor.h"
#include "mt/plan.h"
#include "mt/row.h"
#include "net/fabric.h"
#include "obs/trace.h"

namespace hierdb::cluster {

/// A relation horizontally partitioned across SM-nodes.
struct PartitionedTable {
  uint32_t width = 0;
  std::vector<mt::Batch> parts;  ///< one per node

  uint64_t total_rows() const {
    uint64_t n = 0;
    for (const auto& p : parts) n += p.rows();
    return n;
  }
};

/// Hash-partitions `table` on `col` (the declustering the paper assumes).
PartitionedTable PartitionByHash(const mt::Table& table, uint32_t nodes,
                                 uint32_t col);
/// Round-robin partitioning (balanced regardless of value distribution).
PartitionedTable PartitionRoundRobin(const mt::Table& table, uint32_t nodes);
/// Places a Zipf(theta)-sized share of rows at each node — tuple placement
/// skew for the global load-balancing experiments.
PartitionedTable PartitionWithPlacementSkew(const mt::Table& table,
                                            uint32_t nodes, double theta,
                                            uint64_t seed);

/// A single pipeline chain query: input scanned and piped through hash
/// joins. Kept as the convenience front door for chain-only workloads;
/// execution wraps it into a one-chain PlanQuery.
struct ChainQuery {
  const PartitionedTable* input = nullptr;
  struct Join {
    const PartitionedTable* build = nullptr;
    uint32_t probe_col = 0;
    uint32_t build_col = 0;
  };
  std::vector<Join> joins;

  Status Validate(uint32_t nodes) const;
};

/// A multi-chain plan query: the cluster mirror of mt::PipelinePlan.
/// `plan` is a DAG of pipeline chains whose table sources
/// (mt::Source::OfTable) index `tables` and whose chain sources
/// (mt::Source::OfChain) reference earlier chains' distributed outputs.
/// The final chain's output is the query result.
struct PlanQuery {
  std::vector<const PartitionedTable*> tables;  ///< base relations
  mt::PipelinePlan plan;

  /// Structural validation: plan shape (via mt::PipelinePlan), every chain
  /// has at least one join, every table non-null with one part per node.
  Status Validate(uint32_t nodes) const;
};

/// Single-threaded reference (gathers all partitions, runs the joins).
Result<mt::ResultDigest> ReferenceExecute(const ChainQuery& query);
Result<mt::ResultDigest> ReferenceExecute(const PlanQuery& query);
/// Reference execution that also feeds plan-point capture sinks (ground
/// truth for the cluster backend's CapturePoint samples).
Result<mt::ResultDigest> ReferenceExecute(
    const PlanQuery& query, const std::vector<mt::CaptureSink>& captures);

struct ClusterOptions {
  uint32_t nodes = 4;
  uint32_t threads_per_node = 2;
  uint32_t buckets = 128;        ///< global fragmentation; home = b % nodes
  uint32_t morsel_rows = 8192;
  uint32_t batch_rows = 512;
  uint32_t queue_capacity = 512;
  mt::LocalStrategy strategy = mt::LocalStrategy::kDP;  ///< kDP or kFP
  bool global_lb = true;         ///< enable inter-node load sharing
  bool cache_stolen_fragments = true;  ///< Section 4 stolen-queue list
  uint32_t steal_batch = 16;     ///< max activations per acquisition
  uint32_t min_steal = 2;        ///< provider offers only above this depth
  /// Chain scheduling (multi-chain plans): true applies the paper's H2 —
  /// chains execute back-to-back in plan order; false lets chains whose
  /// source chains have all terminated run concurrently (triggers of a
  /// chain unblock as soon as its own inputs are complete).
  bool serialize_chains = true;
  /// Columnar data plane, mirroring mt::PipelineOptions::vectorized:
  /// selection-vector Where evaluation, one-pass hash columns for the
  /// scatter/repartition loops, and batched probes through
  /// RowTable::ProbeBatch. Off falls back to the row-at-a-time loops;
  /// results are digest-identical either way.
  bool vectorized = true;
  /// FP only: multiplicative distortion applied to per-operator cost
  /// estimates, indexed by compiled cluster op id (see
  /// ClusterExecutor::CompiledOpCount); empty = exact estimates.
  std::vector<double> fp_cost_distortion;

  /// Where the nodes' worker/scheduler threads come from: null spawns
  /// nodes x (threads_per_node + 1) std::threads per Execute (the legacy
  /// path); a session-provided context supplies gang workers (the node
  /// loops are mutually dependent, so each body keeps a dedicated
  /// thread), lends idle beats to other in-flight queries (Park) and
  /// carries the cooperative cancellation token. The cluster publishes
  /// no steal hook of its own: its activations are node-homed, so
  /// foreign threads help through Park rather than one-shot steals.
  ExecContext* ctx = nullptr;

  /// Per-operator execution tracing: when set, every gang body keeps
  /// per-(slot, op) span aggregates (slot = node x (T+1) + role) and the
  /// executor emits them — plus steal, fragment-cache and fabric-send
  /// instants, all tagged with their node — into the sink at run end,
  /// cancelled and failed runs included. Null disables the feature down
  /// to one pointer check per activation.
  obs::TraceSink* trace = nullptr;

  /// Session flight recorder (obs/recorder.h): fabric send/drop/dup,
  /// heartbeat-miss verdicts and steal instants are mirrored into the
  /// always-on black box. Null = one pointer check per site.
  obs::FlightRecorder* recorder = nullptr;
  /// Query sequence tag for recorder events (0 = untagged).
  uint64_t recorder_query = 0;

  /// Plan-point row captures (QueryBuilder::CapturePoint), in the plan's
  /// (chain, point) coordinates. Each row crossing a bound point is
  /// offered exactly once cluster-wide — stolen activations offer on the
  /// thief, duplicates are suppressed before delivery — so the samples
  /// are comparable with the reference executor's.
  std::vector<mt::CaptureSink> captures;

  /// Optional fault injector (not owned; must outlive Execute). Forwarded
  /// to the fabric for message faults; node stall/crash faults fire in
  /// the per-node scheduler loops. Node-loop faults are only injected
  /// when liveness detection can catch them (detect_faults on and
  /// nodes > 1) — otherwise they would be guaranteed hangs.
  fault::FaultInjector* injector = nullptr;

  /// Liveness detection. When on, every node's scheduler loop broadcasts
  /// kHeartbeat every heartbeat_us and tracks when it last heard from
  /// each peer; silence past liveness_timeout_ms fails the query with
  /// Status::Unavailable naming the suspect node. A global progress
  /// watchdog also fires Unavailable when no message is handled and no
  /// morsel executes for liveness_timeout_ms while the query is
  /// unfinished (the dropped-kTupleBatch case, where every loop is alive
  /// but the query can no longer terminate).
  bool detect_faults = false;
  uint32_t heartbeat_us = 500;
  uint32_t liveness_timeout_ms = 250;
};

struct ClusterStats {
  net::FabricStats fabric;
  uint64_t steal_requests = 0;      ///< kStarving broadcasts sent
  uint64_t steals = 0;              ///< kWork bundles received
  uint64_t stolen_activations = 0;
  uint64_t shipped_fragment_rows = 0;
  uint64_t fragment_cache_hits = 0;  ///< fragments skipped thanks to cache
  uint64_t lb_bytes = 0;            ///< kStarving/kOffer/kAcquire/kWork/kNoWork
  uint64_t dataflow_bytes = 0;      ///< kTupleBatch redistribution
  uint64_t protocol_bytes = 0;      ///< end-detection messages
  std::vector<uint64_t> idle_waits_per_node;
  std::vector<uint64_t> busy_per_node;   ///< activations executed per node

  /// Per-chain distributed intermediates, indexed by chain. The final
  /// chain's entry stays zero (its rows become the result digest); a
  /// single-chain plan therefore reports all-zero intermediates.
  struct ChainIntermediate {
    uint64_t intermediate_rows = 0;   ///< rows materialized across nodes
    uint64_t intermediate_bytes = 0;  ///< their in-memory bytes
    uint64_t repartition_rows = 0;    ///< intermediate rows shipped cross-node
    uint64_t repartition_bytes = 0;   ///< their kTupleBatch wire bytes
  };
  std::vector<ChainIntermediate> per_chain;
  uint64_t intermediate_rows = 0;   ///< totals over all non-final chains
  uint64_t intermediate_bytes = 0;

  /// Rows dropped by scan-level predicates (summed over nodes).
  uint64_t rows_filtered = 0;

  /// Rows produced by each chain's terminal probe, summed over nodes (the
  /// chain's actual output cardinality; for aggregated plans the final
  /// entry counts the pre-aggregation join rows). Always measured.
  std::vector<uint64_t> rows_per_chain;

  /// Distributed aggregation (plans with an AggSpec): per-node local
  /// partial-table entries, the partial rows shipped to their partition's
  /// home node (kTupleBatch traffic, also included in dataflow_bytes),
  /// and the final group count.
  uint64_t agg_partials = 0;
  uint64_t agg_repartition_rows = 0;
  uint64_t agg_repartition_bytes = 0;
  uint64_t agg_groups = 0;

  /// Faults that fired during the run (zero unless a plan was armed) and
  /// duplicate deliveries the receivers suppressed.
  fault::FaultCounters faults;
  uint64_t dup_messages_dropped = 0;

  /// Max over nodes of busy / mean busy (1.0 = perfectly balanced).
  double NodeImbalance() const;
};

class ClusterExecutor {
 public:
  explicit ClusterExecutor(const ClusterOptions& options);
  ~ClusterExecutor();

  ClusterExecutor(const ClusterExecutor&) = delete;
  ClusterExecutor& operator=(const ClusterExecutor&) = delete;

  /// Executes the query. When `materialized` is non-null the final chain's
  /// output rows — normally digested and dropped node-locally — are kept as
  /// each node's tuple batches and gathered into `*materialized` after the
  /// run (stolen activations contribute on their executing node).
  ///
  /// Plans carrying an AggSpec run distributed aggregation after the chain
  /// DAG terminates: each node folds its share of the final rows into a
  /// local partial table, partials repartition by group-key hash to their
  /// home node via the same tuple-batch shipping as the join dataflow, and
  /// each node merges and finalizes its disjoint partitions. The digest
  /// (and any materialized rows) are then the aggregate rows.
  Result<mt::ResultDigest> Execute(const ChainQuery& query,
                                   ClusterStats* stats = nullptr,
                                   mt::Batch* materialized = nullptr);
  Result<mt::ResultDigest> Execute(const PlanQuery& query,
                                   ClusterStats* stats = nullptr,
                                   mt::Batch* materialized = nullptr);

  /// Number of compiled operators for the given plan (to size
  /// fp_cost_distortion before Execute): 3k+1 per chain of k joins.
  static uint32_t CompiledOpCount(const PlanQuery& query);

 private:
  struct Impl;
  ClusterOptions options_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hierdb::cluster

#endif  // HIERDB_CLUSTER_CLUSTER_EXECUTOR_H_
