#include "fault/fault.h"

namespace hierdb::fault {

const char* SiteName(Site s) {
  switch (s) {
    case Site::kFabricDrop: return "fabric_drop";
    case Site::kFabricDup: return "fabric_dup";
    case Site::kFabricDelay: return "fabric_delay";
    case Site::kNodeStall: return "node_stall";
    case Site::kNodeCrash: return "node_crash";
    case Site::kWorkerDeath: return "worker_death";
  }
  return "unknown";
}

namespace {
// splitmix64 finalizer: full-avalanche mix so consecutive ordinals at a
// site decorrelate.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

double FaultInjector::Decision(uint64_t seed, Site site, uint64_t n) {
  uint64_t h = Mix(seed ^ Mix((static_cast<uint64_t>(site) << 56) ^ n));
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::Fire(Site site, double prob) {
  if (prob <= 0.0) return false;
  const int idx = static_cast<int>(site);
  const uint64_t n = next_event_[idx].fetch_add(1, std::memory_order_relaxed);
  if (Decision(plan_.seed, site, n) >= prob) return false;
  fired_[idx].fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(log_mu_);
  log_.emplace_back(site, n);
  return true;
}

void FaultInjector::Count(Site site) {
  const int idx = static_cast<int>(site);
  const uint64_t n = next_event_[idx].fetch_add(1, std::memory_order_relaxed);
  fired_[idx].fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(log_mu_);
  log_.emplace_back(site, n);
}

FaultCounters FaultInjector::counters() const {
  FaultCounters c;
  c.dropped = fired_[static_cast<int>(Site::kFabricDrop)].load(std::memory_order_relaxed);
  c.duplicated = fired_[static_cast<int>(Site::kFabricDup)].load(std::memory_order_relaxed);
  c.delayed = fired_[static_cast<int>(Site::kFabricDelay)].load(std::memory_order_relaxed);
  c.stalls = fired_[static_cast<int>(Site::kNodeStall)].load(std::memory_order_relaxed);
  c.crashes = fired_[static_cast<int>(Site::kNodeCrash)].load(std::memory_order_relaxed);
  c.worker_deaths = fired_[static_cast<int>(Site::kWorkerDeath)].load(std::memory_order_relaxed);
  return c;
}

std::vector<std::pair<Site, uint64_t>> FaultInjector::FiringLog() const {
  std::lock_guard<std::mutex> lk(log_mu_);
  return log_;
}

}  // namespace hierdb::fault
