// fault:: — seeded, deterministic fault injection for chaos testing.
//
// A FaultPlan is a declarative schedule of fault points: probabilistic
// message faults on the fabric (drop / duplicate / delay), positional
// node-loop faults in the cluster executor (stall / crash the Nth
// scheduler poll of a given node), and probabilistic worker-thread death
// in the session worker pool. A FaultInjector evaluates the plan: every
// decision for the Nth event at a given site is a pure hash of
// (seed, site, n), so two injectors built from the same plan produce the
// exact same firing sequence regardless of wall-clock timing or thread
// interleaving of unrelated sites.
//
// The hooks are compiled in unconditionally; every call site takes the
// injector as a possibly-null pointer and the null check is the whole
// cost when no plan is armed.

#ifndef HIERDB_FAULT_FAULT_H_
#define HIERDB_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hierdb::fault {

/// Injection sites. Each site keeps its own event counter inside the
/// injector, so the decision stream at one site is independent of traffic
/// at the others.
enum class Site : uint32_t {
  kFabricDrop = 0,
  kFabricDup,
  kFabricDelay,
  kNodeStall,
  kNodeCrash,
  kWorkerDeath,
};

const char* SiteName(Site s);

/// A seeded schedule of faults. Plain data; copy freely. A
/// default-constructed plan is unarmed and injects nothing.
struct FaultPlan {
  uint64_t seed = 0;

  // --- Fabric message faults (evaluated per Fabric::Send) ---
  double drop_prob = 0.0;    ///< silently discard the message
  double dup_prob = 0.0;     ///< deliver the message twice
  double delay_prob = 0.0;   ///< sleep before delivery
  uint32_t delay_us = 200;   ///< delay length when a delay fires

  // --- Cluster node-loop faults (positional, deterministic) ---
  /// Stall `stall_node`'s scheduler loop once it has completed
  /// `stall_after_polls` poll iterations. stall_ms == 0 stalls until the
  /// query is cancelled/fails (i.e. until detection fires).
  int stall_node = -1;
  uint64_t stall_after_polls = 0;
  uint32_t stall_ms = 0;
  /// Crash (silently exit) `crash_node`'s scheduler loop after
  /// `crash_after_polls` poll iterations.
  int crash_node = -1;
  uint64_t crash_after_polls = 0;

  // --- Worker pool faults ---
  /// Probability that a pool thread dies (skips the body) when picking up
  /// a work slot. Never applied to renting callers or gang workers, so
  /// forward progress is preserved.
  double worker_death_prob = 0.0;

  /// True when any fault point is configured.
  bool armed() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0 ||
           stall_node >= 0 || crash_node >= 0 || worker_death_prob > 0.0;
  }
};

/// Counters of faults actually fired, snapshot into reports.
struct FaultCounters {
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t delayed = 0;
  uint64_t stalls = 0;
  uint64_t crashes = 0;
  uint64_t worker_deaths = 0;
  uint64_t total() const {
    return dropped + duplicated + delayed + stalls + crashes + worker_deaths;
  }
};

/// Evaluates a FaultPlan. Thread-safe; one injector is shared by every
/// component participating in a query (fabric, cluster nodes, worker
/// pool) so the counters aggregate across the whole execution.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }
  bool armed() const { return plan_.armed(); }

  /// Probabilistic sites: returns whether the fault fires for this
  /// site's next event, advancing the site counter. Deterministic in the
  /// per-site event ordinal.
  bool ShouldDropMessage() { return Fire(Site::kFabricDrop, plan_.drop_prob); }
  bool ShouldDuplicateMessage() { return Fire(Site::kFabricDup, plan_.dup_prob); }
  bool ShouldDelayMessage() { return Fire(Site::kFabricDelay, plan_.delay_prob); }
  bool ShouldKillWorker() { return Fire(Site::kWorkerDeath, plan_.worker_death_prob); }

  /// Positional sites: `poll` is the node's own loop-iteration ordinal,
  /// which the caller maintains, so these are pure predicates.
  bool ShouldStallNode(int node, uint64_t poll) {
    if (plan_.stall_node != node || poll != plan_.stall_after_polls) return false;
    Count(Site::kNodeStall);
    return true;
  }
  bool ShouldCrashNode(int node, uint64_t poll) {
    if (plan_.crash_node != node || poll != plan_.crash_after_polls) return false;
    Count(Site::kNodeCrash);
    return true;
  }

  FaultCounters counters() const;

  /// Firing log: sequence of (site, per-site ordinal) for every fault
  /// that fired, in per-site order. Used by determinism tests.
  std::vector<std::pair<Site, uint64_t>> FiringLog() const;

  /// The raw decision function — exposed so tests can assert two
  /// same-seed injectors agree on every (site, n) without running a
  /// workload. Returns a uniform double in [0, 1).
  static double Decision(uint64_t seed, Site site, uint64_t n);

 private:
  static constexpr int kNumSites = 6;

  bool Fire(Site site, double prob);
  void Count(Site site);

  FaultPlan plan_;
  std::atomic<uint64_t> next_event_[kNumSites] = {};
  std::atomic<uint64_t> fired_[kNumSites] = {};
  mutable std::mutex log_mu_;
  std::vector<std::pair<Site, uint64_t>> log_;
};

}  // namespace hierdb::fault

#endif  // HIERDB_FAULT_FAULT_H_
