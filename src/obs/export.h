// Observability: trace exporters.
//
//   ChromeTraceJson   the Chrome trace_event format (JSON object form:
//                     {"traceEvents":[...]}) — loads directly in
//                     chrome://tracing and Perfetto. Span events become
//                     "X" (complete) events with pid = node and
//                     tid = worker; instants become "i" events; node and
//                     thread name metadata rows make the timeline
//                     readable.
//
//   PlanDot           a Graphviz digraph of the compiled operator graph,
//                     each node annotated with estimated vs actual
//                     cardinality and the operator's measured busy time /
//                     span — render with `dot -Tsvg plan.dot`.
//
//   PlanJson          the same plan+schedule view as plain JSON, for
//                     programmatic consumers.
//
//   ValidateChromeTraceJson
//                     a dependency-free well-formedness check (full JSON
//                     grammar walk + the trace_event envelope) used by
//                     tests and the scripts/check.sh trace-smoke step.

#ifndef HIERDB_OBS_EXPORT_H_
#define HIERDB_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/trace.h"

namespace hierdb::obs {

std::string ChromeTraceJson(const QueryTrace& trace);

std::string PlanDot(const QueryTrace& trace);

std::string PlanJson(const QueryTrace& trace);

/// Verifies `json` parses as a single JSON value and, when it is an
/// object, that it carries a "traceEvents" array. Returns InvalidArgument
/// with an offset-bearing message on the first violation.
Status ValidateChromeTraceJson(std::string_view json);

}  // namespace hierdb::obs

#endif  // HIERDB_OBS_EXPORT_H_
