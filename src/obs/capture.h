// obs::RowCapture — bounded, order-independent row sampling at plan
// points (QueryBuilder::CapturePoint).
//
// The executors are parallel: which rows pass a plan point first differs
// run to run, backend to backend. A "keep the first K" sample would
// therefore never be comparable against the single-threaded reference.
// RowCapture keeps the K rows with the *smallest content hash* instead
// (the bottom-k / KMV sketch selection rule): the kept multiset is a pure
// function of the multiset of rows offered, so the threads backend, the
// cluster backend and the reference executor all retain exactly the same
// sample — byte-comparable offline, whatever the execution order.
//
// Offer is designed for the executors' emit paths: one hash per row and
// a relaxed atomic threshold check; the mutex is only taken for rows that
// actually belong in the current bottom-k (at most K insertions plus the
// early churn while the threshold settles).

#ifndef HIERDB_OBS_CAPTURE_H_
#define HIERDB_OBS_CAPTURE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace hierdb::obs {

/// The drained result of one capture point.
struct CaptureResult {
  std::string name;      ///< the CapturePoint label
  uint32_t chain = 0;    ///< pipeline chain the point lives on
  uint32_t point = 0;    ///< 0 = scan output, k = output of join k
  uint32_t width = 0;    ///< columns per row
  uint64_t offered = 0;  ///< rows that passed the point (total)
  /// The bottom-k sample, sorted (hash, row) — identical across backends
  /// for identical row multisets.
  std::vector<std::vector<int64_t>> rows;

  bool SameRows(const CaptureResult& other) const {
    return width == other.width && rows == other.rows;
  }
};

class RowCapture {
 public:
  explicit RowCapture(uint32_t max_rows) : max_rows_(max_rows) {}

  RowCapture(const RowCapture&) = delete;
  RowCapture& operator=(const RowCapture&) = delete;

  /// Offers one row (thread-safe). Kept iff its hash is within the
  /// current bottom-k.
  void Offer(const int64_t* row, uint32_t width) {
    offered_.fetch_add(1, std::memory_order_relaxed);
    if (max_rows_ == 0) return;
    const uint64_t h = HashRow(row, width);
    if (h > threshold_.load(std::memory_order_relaxed)) return;
    Insert(h, row, width);
  }

  /// Offers `rows.size() / width` rows stored contiguously.
  void OfferBatch(const std::vector<int64_t>& flat, uint32_t width) {
    if (width == 0) return;
    for (size_t i = 0; i + width <= flat.size(); i += width) {
      Offer(flat.data() + i, width);
    }
  }

  /// Moves the sample out (call after the run quiesced).
  CaptureResult Take(std::string name, uint32_t chain, uint32_t point);

  uint64_t offered() const {
    return offered_.load(std::memory_order_relaxed);
  }

  static uint64_t HashRow(const int64_t* row, uint32_t width) {
    // splitmix-style avalanche over the row contents; the constant seed
    // keeps the selection identical across processes and backends.
    uint64_t h = 0x9E3779B97F4A7C15ULL ^ (uint64_t{width} << 32);
    for (uint32_t i = 0; i < width; ++i) {
      uint64_t x = static_cast<uint64_t>(row[i]) + 0x9E3779B97F4A7C15ULL + h;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      h = x ^ (x >> 31);
    }
    return h;
  }

 private:
  void Insert(uint64_t h, const int64_t* row, uint32_t width);

  const uint32_t max_rows_;
  std::atomic<uint64_t> offered_{0};
  /// Largest hash currently inside the sample once full (rows hashing
  /// above it cannot belong); UINT64_MAX while filling.
  std::atomic<uint64_t> threshold_{UINT64_MAX};
  std::mutex mu_;
  /// (hash, row) multiset — duplicates of the same row all count, so the
  /// sample is a pure function of the offered multiset.
  std::multiset<std::pair<uint64_t, std::vector<int64_t>>> kept_;
  uint32_t width_ = 0;
};

}  // namespace hierdb::obs

#endif  // HIERDB_OBS_CAPTURE_H_
