#include "obs/metrics.h"

namespace hierdb::obs {

double LatencyHistogram::PercentileMs(double p) const {
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Snapshot the counts (writers may race; each bucket read is atomic).
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (uint32_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  // Rank of the target sample (1-based), clamped to [1, total].
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (uint32_t b = 0; b < kBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) {
      return static_cast<double>(BucketValue(b)) / 1000.0;
    }
  }
  return static_cast<double>(BucketValue(kBuckets - 1)) / 1000.0;
}

}  // namespace hierdb::obs
