#include "obs/trace.h"

#include <algorithm>

namespace hierdb::obs {

const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kSpan: return "span";
    case EventKind::kSteal: return "steal";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kPoolRent: return "pool_rent";
    case EventKind::kPoolReturn: return "pool_return";
    case EventKind::kFabricSend: return "fabric_send";
    case EventKind::kSchedule: return "schedule";
    case EventKind::kFault: return "fault";
    case EventKind::kRetry: return "retry";
    case EventKind::kFallback: return "fallback";
    case EventKind::kSubmit: return "submit";
    case EventKind::kDeadlineArm: return "deadline_arm";
    case EventKind::kDeadlineFire: return "deadline_fire";
    case EventKind::kTenantReject: return "tenant_reject";
    case EventKind::kWorkerDeath: return "worker_death";
    case EventKind::kFabricDrop: return "fabric_drop";
    case EventKind::kFabricDup: return "fabric_dup";
    case EventKind::kHeartbeatMiss: return "heartbeat_miss";
  }
  return "?";
}

std::vector<TraceEvent> TraceSink::Drain() {
  std::vector<TraceEvent> out;
  size_t total = 0;
  for (const auto& v : per_slot_) total += v.size();
  {
    std::lock_guard<std::mutex> lock(shared_mu_);
    total += shared_.size();
    out.reserve(total);
    for (auto& v : per_slot_) {
      out.insert(out.end(), v.begin(), v.end());
      v.clear();
    }
    out.insert(out.end(), shared_.begin(), shared_.end());
    shared_.clear();
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

uint64_t QueryTrace::TotalBusyNs() const {
  uint64_t busy = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kSpan) busy += e.detail;
  }
  return busy;
}

uint64_t QueryTrace::MaxEndNs() const {
  uint64_t end = 0;
  for (const TraceEvent& e : events) end = std::max(end, e.end_ns);
  return end;
}

}  // namespace hierdb::obs
