// obs::FlightRecorder — the session's always-on black box.
//
// The per-query TraceSink (obs/trace.h) answers "where did time go?" for
// queries you knew to trace in advance. The flight recorder answers it
// after the fact: a bounded, session-wide ring of recent events from the
// admission core (submit, dispatch, deadline arm/fire, retry, tenant
// reject), the worker pool (rent/return/steal/worker death), the cluster
// fabric (send/drop/dup/heartbeat miss) and the executors, kept hot at a
// cost low enough to leave on in production. When an anomaly surfaces —
// a missed deadline, an Unavailable verdict, a retry, a digest mismatch —
// the session snapshots the rings into a forensic bundle
// (SessionOptions::forensics_dir) and the flight that led up to the
// failure is inspectable in chrome://tracing.
//
// Design:
//   - A fixed pool of single-writer ring buffers. The first time a thread
//     records, it claims a ring (mutex slow path, once per thread); after
//     that every Record is wait-free: a handful of relaxed stores plus one
//     release publish, overwriting the oldest slot when full. Threads
//     beyond the pool drop events (counted) rather than block.
//   - Slots are seqlock-published: the writer invalidates the slot's
//     sequence word, stores the payload into relaxed atomics, then
//     publishes generation-tagged sequence + head with release order.
//     Snapshot (any thread, any time) copies slots and discards any whose
//     sequence changed — torn reads are impossible by construction, and
//     every access is an atomic, so the scheme is clean under TSan.
//   - Disarmed (Options::armed = false, or a null FlightRecorder* at the
//     call site) the entire feature costs one branch.
//
// The recorder reuses the TraceEvent schema, so ring snapshots export
// through the existing Chrome-trace pipeline (obs/export.h) unchanged.

#ifndef HIERDB_OBS_RECORDER_H_
#define HIERDB_OBS_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"

namespace hierdb::obs {

class FlightRecorder {
 public:
  struct Options {
    /// Ring pool size: distinct recording threads the session expects
    /// (pool workers + lanes + reactor + node loops). Extra threads drop.
    uint32_t rings = 48;
    /// Events retained per ring (rounded up to a power of two). Oldest
    /// events are overwritten — the recorder keeps the recent past only.
    uint32_t events_per_ring = 1024;
    /// False constructs a disarmed recorder: Record returns on the first
    /// branch and Snapshot yields nothing. For A/B overhead measurement.
    bool armed = true;
  };

  explicit FlightRecorder(const Options& options);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool armed() const { return armed_; }

  /// Nanoseconds since recorder construction — the time base every ring
  /// event uses (one clock for the whole session's flight).
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  /// Records one event into the calling thread's ring. Wait-free after
  /// the thread's first call; drops (counted) when the ring pool is
  /// exhausted. Safe from any thread, any time.
  void Record(const TraceEvent& ev) {
    if (!armed_) return;
    Ring* r = RingForThisThread();
    if (r == nullptr) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Write(*r, ev);
  }

  /// Convenience: an instant of `kind` stamped now.
  void Instant(EventKind kind, uint64_t query, uint64_t detail,
               int32_t node = 0, int32_t worker = -1) {
    if (!armed_) return;
    TraceEvent ev;
    ev.kind = kind;
    ev.node = node;
    ev.worker = worker;
    ev.start_ns = ev.end_ns = NowNs();
    ev.detail = detail;
    ev.query = query;
    Record(ev);
  }

  /// Copies out every currently readable event, sorted by start time.
  /// Runs concurrently with writers: slots being overwritten mid-copy are
  /// skipped, everything else is consistent. This is the forensic-dump
  /// primitive — cheap enough to call on every anomaly.
  std::vector<TraceEvent> Snapshot() const;

  struct Stats {
    uint64_t recorded = 0;      ///< events written (lifetime)
    uint64_t dropped = 0;       ///< events lost to ring-pool exhaustion
    uint32_t rings_claimed = 0; ///< threads that claimed a ring
    uint32_t rings = 0;         ///< pool size
    uint32_t events_per_ring = 0;
  };
  Stats stats() const;

 private:
  // One seqlock slot: `seq` publishes a generation (head value + 2 of the
  // write that filled it; 0 = never written), the payload words are
  // individually-relaxed atomics. kWords covers every TraceEvent field.
  static constexpr uint32_t kWords = 11;
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> w[kWords];
  };
  struct Ring {
    explicit Ring(uint32_t capacity);
    const uint32_t mask;
    std::atomic<uint64_t> head{0};  ///< next write position
    std::vector<Slot> slots;
  };

  Ring* RingForThisThread();
  void Write(Ring& r, const TraceEvent& ev);

  const bool armed_;
  const std::chrono::steady_clock::time_point t0_;
  /// Distinguishes this recorder from any other (including one that later
  /// reuses this address) in the thread-local ring cache.
  const uint64_t id_;

  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};

  mutable std::mutex claim_mu_;
  std::unordered_map<std::thread::id, Ring*> claimed_;
  uint32_t next_ring_ = 0;
};

}  // namespace hierdb::obs

#endif  // HIERDB_OBS_RECORDER_H_
