#include "obs/recorder.h"

#include <algorithm>

namespace hierdb::obs {

namespace {

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v && p < (1u << 30)) p <<= 1;
  return p;
}

std::atomic<uint64_t> g_recorder_ids{1};

/// Thread-local cache of the ring this thread writes in one recorder.
/// Keyed by the recorder's unique id, so a recorder destroyed and another
/// allocated at the same address can never alias a stale pointer.
struct ThreadRingCache {
  uint64_t recorder_id = 0;
  void* ring = nullptr;  // null once cached = this thread dropped
  bool resolved = false;
};
thread_local ThreadRingCache t_ring_cache;

}  // namespace

FlightRecorder::Ring::Ring(uint32_t capacity)
    : mask(RoundUpPow2(std::max(8u, capacity)) - 1) {
  slots = std::vector<Slot>(mask + 1);
}

FlightRecorder::FlightRecorder(const Options& options)
    : armed_(options.armed),
      t0_(std::chrono::steady_clock::now()),
      id_(g_recorder_ids.fetch_add(1, std::memory_order_relaxed)) {
  if (!armed_) return;
  const uint32_t n = std::max(1u, options.rings);
  rings_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    rings_.push_back(std::make_unique<Ring>(options.events_per_ring));
  }
}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  ThreadRingCache& c = t_ring_cache;
  if (c.recorder_id == id_ && c.resolved) {
    return static_cast<Ring*>(c.ring);
  }
  // First Record from this thread into this recorder: claim a ring (or
  // learn that the pool is exhausted) once, then cache the answer.
  Ring* r = nullptr;
  {
    std::lock_guard<std::mutex> lock(claim_mu_);
    auto it = claimed_.find(std::this_thread::get_id());
    if (it != claimed_.end()) {
      r = it->second;
    } else if (next_ring_ < rings_.size()) {
      r = rings_[next_ring_++].get();
      claimed_.emplace(std::this_thread::get_id(), r);
    } else {
      claimed_.emplace(std::this_thread::get_id(), nullptr);
    }
  }
  c.recorder_id = id_;
  c.ring = r;
  c.resolved = true;
  return r;
}

void FlightRecorder::Write(Ring& r, const TraceEvent& ev) {
  const uint64_t h = r.head.load(std::memory_order_relaxed);
  Slot& s = r.slots[h & r.mask];
  // Invalidate, fill, publish (the seqlock write protocol, with the
  // release fence that makes the invalidation observable before any
  // payload store — a reader whose payload loads saw this write's data
  // is then guaranteed to see seq != generation on its recheck).
  s.seq.store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.w[0].store(static_cast<uint64_t>(ev.kind), std::memory_order_relaxed);
  s.w[1].store(static_cast<uint64_t>(static_cast<int64_t>(ev.node)),
               std::memory_order_relaxed);
  s.w[2].store(static_cast<uint64_t>(static_cast<int64_t>(ev.worker)),
               std::memory_order_relaxed);
  s.w[3].store(static_cast<uint64_t>(static_cast<int64_t>(ev.op)),
               std::memory_order_relaxed);
  s.w[4].store(ev.start_ns, std::memory_order_relaxed);
  s.w[5].store(ev.end_ns, std::memory_order_relaxed);
  s.w[6].store(ev.activations, std::memory_order_relaxed);
  s.w[7].store(ev.rows_in, std::memory_order_relaxed);
  s.w[8].store(ev.rows_out, std::memory_order_relaxed);
  s.w[9].store(ev.detail, std::memory_order_relaxed);
  s.w[10].store(ev.query, std::memory_order_relaxed);
  s.seq.store(h + 2, std::memory_order_release);
  r.head.store(h + 1, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> FlightRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  if (!armed_) return out;
  for (const auto& rp : rings_) {
    const Ring& r = *rp;
    const uint64_t head = r.head.load(std::memory_order_acquire);
    const uint64_t cap = static_cast<uint64_t>(r.mask) + 1;
    const uint64_t lo = head > cap ? head - cap : 0;
    for (uint64_t i = lo; i < head; ++i) {
      const Slot& s = r.slots[i & r.mask];
      if (s.seq.load(std::memory_order_acquire) != i + 2) continue;
      TraceEvent ev;
      ev.kind = static_cast<EventKind>(s.w[0].load(std::memory_order_relaxed));
      ev.node = static_cast<int32_t>(
          static_cast<int64_t>(s.w[1].load(std::memory_order_relaxed)));
      ev.worker = static_cast<int32_t>(
          static_cast<int64_t>(s.w[2].load(std::memory_order_relaxed)));
      ev.op = static_cast<int32_t>(
          static_cast<int64_t>(s.w[3].load(std::memory_order_relaxed)));
      ev.start_ns = s.w[4].load(std::memory_order_relaxed);
      ev.end_ns = s.w[5].load(std::memory_order_relaxed);
      ev.activations = s.w[6].load(std::memory_order_relaxed);
      ev.rows_in = s.w[7].load(std::memory_order_relaxed);
      ev.rows_out = s.w[8].load(std::memory_order_relaxed);
      ev.detail = s.w[9].load(std::memory_order_relaxed);
      ev.query = s.w[10].load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != i + 2) continue;
      out.push_back(ev);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

FlightRecorder::Stats FlightRecorder::stats() const {
  Stats s;
  s.recorded = recorded_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.rings = static_cast<uint32_t>(rings_.size());
  s.events_per_ring = rings_.empty() ? 0 : rings_[0]->mask + 1;
  {
    std::lock_guard<std::mutex> lock(claim_mu_);
    s.rings_claimed = next_ring_;
  }
  return s;
}

}  // namespace hierdb::obs
