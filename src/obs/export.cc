#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hierdb::obs {

namespace {

// JSON string escaping for the few label strings we emit (labels are
// ASCII identifiers, but escape defensively).
std::string JsonStr(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << v;
  return os.str();
}

double ToUs(uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

const TraceOp* OpOf(const QueryTrace& t, int32_t id) {
  if (id < 0 || static_cast<size_t>(id) >= t.ops.size()) return nullptr;
  return &t.ops[static_cast<size_t>(id)];
}

std::string EventName(const QueryTrace& t, const TraceEvent& e) {
  const TraceOp* op = OpOf(t, e.op);
  if (e.kind == EventKind::kSpan) {
    return op != nullptr ? op->label : std::string("op");
  }
  std::string name = EventKindName(e.kind);
  if (op != nullptr) name += ":" + op->label;
  return name;
}

}  // namespace

std::string ChromeTraceJson(const QueryTrace& trace) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"backend\":" << JsonStr(trace.backend)
     << ",\"strategy\":" << JsonStr(trace.strategy)
     << ",\"response_ms\":" << Num(trace.response_ms)
     << ",\"virtual_time\":" << (trace.virtual_time ? "true" : "false")
     << "},\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  // Process (node) and thread (worker) name metadata.
  for (uint32_t n = 0; n < trace.nodes; ++n) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << n
       << ",\"tid\":0,\"args\":{\"name\":\"node " << n << "\"}}";
  }
  for (const TraceEvent& e : trace.events) {
    sep();
    const int32_t tid = e.worker >= 0 ? e.worker : (e.op >= 0 ? e.op : 0);
    os << "{\"name\":" << JsonStr(EventName(trace, e)) << ",\"pid\":"
       << e.node << ",\"tid\":" << tid << ",\"ts\":" << Num(ToUs(e.start_ns));
    if (e.kind == EventKind::kSpan) {
      os << ",\"ph\":\"X\",\"dur\":" << Num(ToUs(e.end_ns - e.start_ns));
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    os << ",\"args\":{\"activations\":" << e.activations
       << ",\"rows_in\":" << e.rows_in << ",\"rows_out\":" << e.rows_out;
    if (e.kind == EventKind::kSpan) {
      os << ",\"busy_ms\":" << Num(static_cast<double>(e.detail) / 1e6);
    } else {
      os << ",\"detail\":" << e.detail;
    }
    if (e.op >= 0) os << ",\"op\":" << e.op;
    if (e.query > 0) os << ",\"query\":" << e.query;
    os << "}}";
  }
  os << "]}";
  return os.str();
}

std::string PlanDot(const QueryTrace& trace) {
  // Fold span events into per-op totals for the annotations.
  std::vector<OpSpanAgg> per_op(trace.ops.size());
  for (const TraceEvent& e : trace.events) {
    if (e.kind != EventKind::kSpan || e.op < 0 ||
        static_cast<size_t>(e.op) >= per_op.size()) {
      continue;
    }
    OpSpanAgg& a = per_op[static_cast<size_t>(e.op)];
    if (a.activations == 0) {
      a.first_ns = e.start_ns;
    } else {
      a.first_ns = std::min(a.first_ns, e.start_ns);
    }
    a.last_ns = std::max(a.last_ns, e.end_ns);
    a.busy_ns += e.detail;
    a.activations += e.activations;
    a.rows_in += e.rows_in;
    a.rows_out += e.rows_out;
  }

  std::ostringstream os;
  os << "digraph plan {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=box, fontname=\"monospace\", fontsize=10];\n"
     << "  label=\"" << trace.backend << "/" << trace.strategy
     << "  response=" << Num(trace.response_ms) << "ms\";\n";
  for (const TraceOp& op : trace.ops) {
    os << "  op" << op.id << " [label=\"" << op.label;
    if (op.est_rows > 0 || op.actual_rows > 0) {
      os << "\\nest=" << Num(op.est_rows) << " act=" << op.actual_rows;
    }
    const OpSpanAgg& a = per_op[op.id];
    if (!a.empty()) {
      os << "\\nbusy=" << Num(static_cast<double>(a.busy_ns) / 1e6)
         << "ms span=[" << Num(static_cast<double>(a.first_ns) / 1e6) << ","
         << Num(static_cast<double>(a.last_ns) / 1e6) << "]ms acts="
         << a.activations;
    }
    os << "\"";
    if (op.kind == "build" || op.kind == "buildscan") {
      os << ", style=filled, fillcolor=lightyellow";
    } else if (op.kind == "probe") {
      os << ", style=filled, fillcolor=lightblue";
    }
    os << "];\n";
  }
  for (const TraceOp& op : trace.ops) {
    for (uint32_t in : op.inputs) {
      os << "  op" << in << " -> op" << op.id << ";\n";
    }
  }
  // One summary node per chain with the est-vs-actual delta.
  for (const ChainCard& c : trace.chains) {
    os << "  chain" << c.chain << " [shape=note, label=\"chain " << c.chain
       << "\\nest=" << Num(c.est_rows) << " rows";
    if (c.has_actual) {
      os << "\\nactual=" << c.actual_rows;
    }
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string PlanJson(const QueryTrace& trace) {
  std::ostringstream os;
  os << "{\"backend\":" << JsonStr(trace.backend) << ",\"strategy\":"
     << JsonStr(trace.strategy) << ",\"response_ms\":"
     << Num(trace.response_ms) << ",\"ops\":[";
  for (size_t i = 0; i < trace.ops.size(); ++i) {
    const TraceOp& op = trace.ops[i];
    if (i > 0) os << ",";
    os << "{\"id\":" << op.id << ",\"label\":" << JsonStr(op.label)
       << ",\"kind\":" << JsonStr(op.kind) << ",\"chain\":" << op.chain
       << ",\"inputs\":[";
    for (size_t k = 0; k < op.inputs.size(); ++k) {
      if (k > 0) os << ",";
      os << op.inputs[k];
    }
    os << "],\"est_rows\":" << Num(op.est_rows) << ",\"actual_rows\":"
       << op.actual_rows << "}";
  }
  os << "],\"chains\":[";
  for (size_t i = 0; i < trace.chains.size(); ++i) {
    const ChainCard& c = trace.chains[i];
    if (i > 0) os << ",";
    os << "{\"chain\":" << c.chain << ",\"est_rows\":" << Num(c.est_rows)
       << ",\"actual_rows\":" << c.actual_rows << ",\"has_actual\":"
       << (c.has_actual ? "true" : "false") << "}";
  }
  os << "],\"events\":" << trace.events.size() << "}";
  return os.str();
}

// ---------------------------------------------------------------------
// Minimal JSON validator (no parse tree; grammar walk only).

namespace {

class JsonWalker {
 public:
  explicit JsonWalker(std::string_view s) : s_(s) {}

  Status Validate() {
    SkipWs();
    HIERDB_RETURN_NOT_OK(Value());
    SkipWs();
    if (pos_ != s_.size()) return Fail("trailing content");
    return Status::OK();
  }

  /// True when the walked value was an object containing a top-level
  /// "traceEvents" key whose value is an array.
  bool saw_trace_events() const { return saw_trace_events_; }

 private:
  Status Fail(const std::string& what) {
    return Status::InvalidArgument("invalid JSON at offset " +
                                   std::to_string(pos_) + ": " + what);
  }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(
                                   s_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Value() {
    if (pos_ >= s_.size()) return Fail("unexpected end");
    switch (s_[pos_]) {
      case '{': return Object(/*top=*/depth_ == 0);
      case '[': return Array();
      case '"': return String(nullptr);
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  Status Object(bool top) {
    ++depth_;
    ++pos_;  // '{'
    SkipWs();
    if (Eat('}')) { --depth_; return Status::OK(); }
    for (;;) {
      SkipWs();
      std::string key;
      HIERDB_RETURN_NOT_OK(String(&key));
      SkipWs();
      if (!Eat(':')) return Fail("expected ':'");
      SkipWs();
      const bool mark = top && key == "traceEvents";
      if (mark && pos_ < s_.size() && s_[pos_] == '[') {
        saw_trace_events_ = true;
      }
      HIERDB_RETURN_NOT_OK(Value());
      SkipWs();
      if (Eat(',')) continue;
      if (Eat('}')) { --depth_; return Status::OK(); }
      return Fail("expected ',' or '}'");
    }
  }

  Status Array() {
    ++depth_;
    ++pos_;  // '['
    SkipWs();
    if (Eat(']')) { --depth_; return Status::OK(); }
    for (;;) {
      SkipWs();
      HIERDB_RETURN_NOT_OK(Value());
      SkipWs();
      if (Eat(',')) continue;
      if (Eat(']')) { --depth_; return Status::OK(); }
      return Fail("expected ',' or ']'");
    }
  }

  Status String(std::string* out) {
    if (!Eat('"')) return Fail("expected string");
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return Fail("bad escape");
        char e = s_[pos_];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return Fail("bad \\u escape");
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return Fail("bad escape");
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("control char in string");
      }
      if (out != nullptr) out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status Number() {
    size_t start = pos_;
    if (Eat('-')) {}
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    char* end = nullptr;
    std::string tok(s_.substr(start, pos_ - start));
    std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    return Status::OK();
  }

  Status Literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return Fail("bad literal");
    pos_ += lit.size();
    return Status::OK();
  }

  std::string_view s_;
  size_t pos_ = 0;
  int depth_ = 0;
  bool saw_trace_events_ = false;
};

}  // namespace

Status ValidateChromeTraceJson(std::string_view json) {
  JsonWalker w(json);
  HIERDB_RETURN_NOT_OK(w.Validate());
  if (!w.saw_trace_events()) {
    return Status::InvalidArgument(
        "well-formed JSON but no top-level \"traceEvents\" array");
  }
  return Status::OK();
}

}  // namespace hierdb::obs
