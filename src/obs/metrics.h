// Observability: histogram-backed latency metrics.
//
// A LatencyHistogram is a fixed-size log-bucketed histogram over
// microsecond latencies: 8 sub-buckets per power-of-two octave across the
// whole uint64 range, each an atomic counter, so Record is one atomic
// increment from any thread and Percentile(p) is a bounded-error
// (< ~12.5%) estimate read without stopping writers — the substrate for
// Session::MetricsSnapshot's continuous p50/p95/p99 over a long-lived
// query stream.

#ifndef HIERDB_OBS_METRICS_H_
#define HIERDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace hierdb::obs {

class LatencyHistogram {
 public:
  static constexpr uint32_t kSubBits = 3;  // 8 sub-buckets per octave
  static constexpr uint32_t kBuckets = 64 << kSubBits;

  void Record(double ms) {
    if (ms < 0) ms = 0;
    const uint64_t us = static_cast<uint64_t>(ms * 1000.0);
    buckets_[BucketOf(us)].fetch_add(1, std::memory_order_relaxed);
    // Exact running sum (in microseconds) for the mean.
    sum_us_.fetch_add(us, std::memory_order_relaxed);
  }

  uint64_t Count() const {
    uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  double MeanMs() const {
    const uint64_t n = Count();
    if (n == 0) return 0.0;
    return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
           static_cast<double>(n) / 1000.0;
  }

  /// Estimated latency (ms) at quantile `p` in [0, 1]; 0 with no samples.
  double PercentileMs(double p) const;

 private:
  static uint32_t BucketOf(uint64_t us) {
    if (us < (1u << kSubBits)) return static_cast<uint32_t>(us);
    // Octave = position of the highest set bit; sub-bucket = next kSubBits
    // bits below it.
    const uint32_t msb = 63 - static_cast<uint32_t>(__builtin_clzll(us));
    const uint32_t sub =
        static_cast<uint32_t>(us >> (msb - kSubBits)) & ((1u << kSubBits) - 1);
    return ((msb - kSubBits + 1) << kSubBits) + sub;
  }

  /// Representative value (us) of a bucket: its lower bound.
  static uint64_t BucketValue(uint32_t b) {
    if (b < (1u << kSubBits)) return b;
    const uint32_t octave = (b >> kSubBits) + kSubBits - 1;
    const uint32_t sub = b & ((1u << kSubBits) - 1);
    return (1ull << octave) |
           (static_cast<uint64_t>(sub) << (octave - kSubBits));
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_us_{0};
};

}  // namespace hierdb::obs

#endif  // HIERDB_OBS_METRICS_H_
