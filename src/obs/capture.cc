#include "obs/capture.h"

namespace hierdb::obs {

void RowCapture::Insert(uint64_t h, const int64_t* row, uint32_t width) {
  std::vector<int64_t> copy(row, row + width);
  std::lock_guard<std::mutex> lock(mu_);
  width_ = width;
  if (kept_.size() < max_rows_) {
    kept_.emplace(h, std::move(copy));
    if (kept_.size() == max_rows_) {
      threshold_.store(kept_.rbegin()->first, std::memory_order_relaxed);
    }
    return;
  }
  // Full: admit only pairs strictly smaller than the current maximum (an
  // equal pair is an identical row — the kept multiset is unchanged
  // either way, so skipping keeps the result order-independent).
  auto largest = std::prev(kept_.end());
  std::pair<uint64_t, std::vector<int64_t>> cand(h, std::move(copy));
  if (cand < *largest) {
    kept_.erase(largest);
    kept_.insert(std::move(cand));
    threshold_.store(kept_.rbegin()->first, std::memory_order_relaxed);
  }
}

CaptureResult RowCapture::Take(std::string name, uint32_t chain,
                               uint32_t point) {
  CaptureResult out;
  out.name = std::move(name);
  out.chain = chain;
  out.point = point;
  out.offered = offered_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  out.width = width_;
  out.rows.reserve(kept_.size());
  for (const auto& [h, row] : kept_) out.rows.push_back(row);
  return out;
}

}  // namespace hierdb::obs
