// Observability: per-operator execution tracing.
//
// The paper's claims are about *where time goes* — which operator a
// processor works on, when work migrates, where a chain stalls. The
// end-of-query counters (PipelineStats / ClusterStats / RunMetrics) sum
// that story away. This module records it:
//
//   TraceSink    a per-query recorder the executors write into. Each
//                worker slot owns a private event buffer (appends are
//                lock-free because a slot has exactly one owner at a
//                time); rare events from non-worker threads (pool
//                rent/return, scheduler-side steals) go through a small
//                mutex-protected shared buffer. Executors keep per-
//                (slot, operator) running aggregates (OpSpanAgg) while
//                tracing is on and emit one span event per non-empty cell
//                at run end, so the hot path costs two clock reads per
//                activation when tracing is enabled and a single null
//                check when it is not.
//
//   QueryTrace   the drained, backend-neutral result: the compiled
//                operator graph (TraceOp — labels, kinds, inputs,
//                estimated vs actual cardinalities) plus the recorded
//                events, unified across the three backends (the
//                simulator's per-op end times convert into virtual-time
//                spans with no instrumentation at all).
//
// The obs layer depends only on the standard library — executors include
// it, never the other way around. Exporters (Chrome trace_event JSON,
// DOT) live in obs/export.h.

#ifndef HIERDB_OBS_TRACE_H_
#define HIERDB_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hierdb::obs {

enum class EventKind : uint8_t {
  kSpan,        ///< worker `worker` ran op `op` over [start_ns, end_ns]
  kSteal,       ///< work migrated (cross-node acquisition / foreign help)
  kCacheHit,    ///< build satisfied from the shared build cache
  kCacheMiss,   ///< cacheable build executed locally
  kPoolRent,    ///< workers rented from the session pool
  kPoolReturn,  ///< rental returned
  kFabricSend,  ///< tuple batch pushed onto the cluster fabric
  kSchedule,    ///< admission: dispatch after `detail` ns queued
  kFault,       ///< injected faults fired during an attempt (`detail`)
  kRetry,       ///< scheduler re-dispatch; `detail` = attempt number
  kFallback,    ///< degraded to the fallback backend after retries
  // Flight-recorder instants (obs/recorder.h): the always-on black box
  // records the admission core, pool, fabric and executors with these in
  // addition to the kinds above.
  kSubmit,         ///< query admitted; `detail` = query seq
  kDeadlineArm,    ///< deadline timer armed; `detail` = deadline ns
  kDeadlineFire,   ///< deadline expired (queued or mid-run)
  kTenantReject,   ///< admission backpressure; `detail` = tenant index
  kWorkerDeath,    ///< injected pool worker death (slot re-queued)
  kFabricDrop,     ///< injected message drop on the cluster fabric
  kFabricDup,      ///< injected duplicate delivery on the fabric
  kHeartbeatMiss,  ///< liveness watchdog declared a node silent
};

const char* EventKindName(EventKind k);

/// One recorded event. Spans carry the aggregate of every activation a
/// worker ran for one operator (activations, rows in/out, busy time);
/// instants (everything else) have end_ns == start_ns and use `detail`
/// for a kind-specific payload (rows shipped, activations stolen,
/// workers rented).
struct TraceEvent {
  EventKind kind = EventKind::kSpan;
  int32_t node = 0;     ///< cluster node (0 on single-node backends)
  int32_t worker = -1;  ///< worker slot within the node; -1 = none
  int32_t op = -1;      ///< compiled operator id; -1 = not op-scoped
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint64_t activations = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t detail = 0;  ///< spans: busy ns; instants: kind-specific count
  uint64_t query = 0;   ///< scheduler query seq (0 = not query-scoped)
};

/// Per-(slot, op) running aggregate an executor keeps while tracing.
/// Plain fields: each cell is written by its slot's owner only.
struct OpSpanAgg {
  uint64_t first_ns = 0;
  uint64_t last_ns = 0;
  uint64_t busy_ns = 0;
  uint64_t activations = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;

  bool empty() const { return activations == 0; }
  void Add(uint64_t t0, uint64_t t1, uint64_t rin, uint64_t rout) {
    if (activations == 0) first_ns = t0;
    last_ns = t1;
    busy_ns += t1 - t0;
    ++activations;
    rows_in += rin;
    rows_out += rout;
  }
};

/// The per-query recorder. Created by the session when ExecOptions::trace
/// is set, handed to the executor as a raw pointer (null = tracing off),
/// drained after the run — including cancelled and failed runs, so a
/// trace of a query that died is still inspectable.
class TraceSink {
 public:
  TraceSink() : t0_(std::chrono::steady_clock::now()) {}

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Nanoseconds since sink creation (monotonic).
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  /// Sizes the per-slot buffers. Called once by the executor before any
  /// worker starts (single-threaded setup); growing never invalidates
  /// previously recorded slots.
  void EnsureSlots(uint32_t slots) {
    if (per_slot_.size() < slots) per_slot_.resize(slots);
  }
  uint32_t slots() const { return static_cast<uint32_t>(per_slot_.size()); }

  /// Lock-free append from the slot's owning thread.
  void Record(uint32_t slot, const TraceEvent& ev) {
    per_slot_[slot].push_back(ev);
  }

  /// Append from a thread that owns no slot (session, pool bookkeeping).
  void RecordShared(const TraceEvent& ev) {
    std::lock_guard<std::mutex> lock(shared_mu_);
    shared_.push_back(ev);
  }

  /// Moves every recorded event out, sorted by start time. Call after all
  /// recording threads have quiesced (the executor has returned).
  std::vector<TraceEvent> Drain();

 private:
  std::chrono::steady_clock::time_point t0_;
  std::vector<std::vector<TraceEvent>> per_slot_;
  std::mutex shared_mu_;
  std::vector<TraceEvent> shared_;
};

/// One compiled operator in the trace's plan graph.
struct TraceOp {
  uint32_t id = 0;
  std::string label;       ///< e.g. "c0.probe1(dim)"
  std::string kind;        ///< "scan" | "build" | "buildscan" | "probe"
  int32_t chain = -1;      ///< pipeline chain, -1 when not chain-scoped
  std::vector<uint32_t> inputs;  ///< op ids feeding this op
  double est_rows = 0.0;   ///< optimizer estimate (0 = none)
  uint64_t actual_rows = 0;///< measured output rows (0 = not measured)
};

/// Per-chain estimated vs actual output cardinality.
struct ChainCard {
  uint32_t chain = 0;
  double est_rows = 0.0;
  uint64_t actual_rows = 0;
  bool has_actual = false;  ///< false: backend could not measure (sim)
};

/// The drained, backend-neutral trace of one query execution.
struct QueryTrace {
  std::string backend;   ///< "sim" | "threads" | "cluster"
  std::string strategy;  ///< "DP" | "FP" | "SP"
  double response_ms = 0.0;
  uint32_t nodes = 1;
  uint32_t workers_per_node = 0;
  bool virtual_time = false;  ///< simulator: timestamps are virtual ns

  std::vector<TraceOp> ops;
  std::vector<ChainCard> chains;
  std::vector<TraceEvent> events;

  /// Sum of span busy time (ns) across all workers, and the max span end
  /// — the sanity checks tests and the smoke example use.
  uint64_t TotalBusyNs() const;
  uint64_t MaxEndNs() const;
};

}  // namespace hierdb::obs

#endif  // HIERDB_OBS_TRACE_H_
