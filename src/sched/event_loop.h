// sched::EventLoop — the admission core's single reactor thread.
//
// One thread owns a posted-closure queue and a TimerWheel. Producers
// (Session::Submit, executor lanes finishing a query, QueryHandle::Cancel)
// post events or arm/cancel timers from any thread and return immediately;
// the loop thread drains posts in order, advances the wheel, and invokes
// the timer handler for every expired deadline. Nothing ever blocks inside
// the loop except the idle wait itself, which sleeps exactly until the
// next posted event or the earliest armed deadline.
//
// This replaces the thread-per-query dispatcher model: whatever the queue
// depth — ten queries or a hundred thousand — scheduling costs exactly one
// thread.

#ifndef HIERDB_SCHED_EVENT_LOOP_H_
#define HIERDB_SCHED_EVENT_LOOP_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "sched/timer_wheel.h"

namespace hierdb::sched {

class EventLoop {
 public:
  /// `on_timer` runs on the loop thread for every expired timer id. It may
  /// call back into Post/ArmTimer/CancelTimer freely (the loop holds no
  /// lock while dispatching).
  explicit EventLoop(std::function<void(uint64_t)> on_timer);
  /// Stops and joins. Posted events still queued are dropped; the owner
  /// (the scheduler) drains its own work before destroying the loop.
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread (idempotent). Called lazily on first use so
  /// sessions that never submit a query never pay for the thread.
  void Start();
  bool started() const;

  /// Nanoseconds since loop construction (the wheel's clock).
  uint64_t NowNs() const;

  /// Enqueues `fn` for the loop thread and wakes it. Thread-safe, O(1),
  /// never blocks on loop work.
  void Post(std::function<void()> fn);

  /// Arms/cancels deadline timer `id` on the wheel. Thread-safe.
  void ArmTimer(uint64_t id, uint64_t when_ns);
  void CancelTimer(uint64_t id);

  struct Stats {
    uint64_t wakeups = 0;       ///< loop iterations that found work
    uint64_t posts = 0;         ///< events posted
    uint64_t timers_fired = 0;  ///< deadlines dispatched to the handler
    size_t timers_armed = 0;    ///< currently armed
    // Event-loop health gauges (the flight recorder's "was the reactor
    // keeping up?" vitals; exported via SessionMetrics).
    size_t max_queue_depth = 0;      ///< posted-queue high-water mark
    uint64_t timer_slip_total_ns = 0;  ///< cumulative deadline lateness
    uint64_t timer_slip_max_ns = 0;    ///< worst single-deadline lateness
    double loop_lag_p50_ms = 0;  ///< median iteration service time
    double loop_lag_p99_ms = 0;  ///< tail iteration service time
  };
  Stats stats() const;

 private:
  void Run();

  const std::function<void(uint64_t)> on_timer_;
  const std::chrono::steady_clock::time_point t0_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> posted_;
  TimerWheel wheel_;
  Stats stats_;
  /// Service time of each working iteration (wakeup -> batch + timer
  /// handlers dispatched); atomic buckets, so Run records outside mu_.
  obs::LatencyHistogram loop_lag_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace hierdb::sched

#endif  // HIERDB_SCHED_EVENT_LOOP_H_
