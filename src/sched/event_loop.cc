#include "sched/event_loop.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace hierdb::sched {

EventLoop::EventLoop(std::function<void(uint64_t)> on_timer)
    : on_timer_(std::move(on_timer)),
      t0_(std::chrono::steady_clock::now()) {}

EventLoop::~EventLoop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void EventLoop::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { Run(); });
}

bool EventLoop::started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_;
}

uint64_t EventLoop::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    posted_.push_back(std::move(fn));
    ++stats_.posts;
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, posted_.size());
  }
  cv_.notify_all();
}

void EventLoop::ArmTimer(uint64_t id, uint64_t when_ns) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    wheel_.Arm(id, when_ns);
  }
  // The new deadline may be earlier than whatever the loop is sleeping
  // toward; wake it so it re-computes its wait.
  cv_.notify_all();
}

void EventLoop::CancelTimer(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  wheel_.Cancel(id);
}

EventLoop::Stats EventLoop::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
    s.timers_armed = wheel_.armed();
    s.timer_slip_total_ns = wheel_.slip_total_ns();
    s.timer_slip_max_ns = wheel_.slip_max_ns();
  }
  s.loop_lag_p50_ms = loop_lag_.PercentileMs(0.50);
  s.loop_lag_p99_ms = loop_lag_.PercentileMs(0.99);
  return s;
}

void EventLoop::Run() {
  std::vector<std::function<void()>> batch;
  std::vector<uint64_t> expired;
  for (;;) {
    batch.clear();
    expired.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (stop_) return;
        wheel_.Advance(NowNs(), &expired);
        if (!posted_.empty() || !expired.empty()) break;
        const uint64_t next = wheel_.NextDeadlineNs();
        if (next == UINT64_MAX) {
          cv_.wait(lock);
        } else {
          cv_.wait_until(
              lock, t0_ + std::chrono::nanoseconds(next));
        }
      }
      ++stats_.wakeups;
      stats_.timers_fired += expired.size();
      while (!posted_.empty()) {
        batch.push_back(std::move(posted_.front()));
        posted_.pop_front();
      }
    }
    // Dispatch outside the lock: handlers take the scheduler's own locks
    // and may post further events or arm timers.
    const uint64_t dispatch_start = NowNs();
    for (auto& fn : batch) fn();
    for (uint64_t id : expired) on_timer_(id);
    loop_lag_.Record(
        static_cast<double>(NowNs() - dispatch_start) / 1e6);
  }
}

}  // namespace hierdb::sched
