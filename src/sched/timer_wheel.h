// sched::TimerWheel — a hashed timer wheel for per-query deadlines.
//
// The admission core arms one timer per deadline-carrying query; with tens
// of thousands queued, a heap would pay O(log n) per arm/cancel and the
// event loop would pay O(k log n) per expiry batch. The classic hashed
// wheel (Varghese & Lauck) makes arm O(1): a timer due at tick t lives in
// slot t & (slots-1), and advancing the wheel scans only the slots the
// clock actually crossed. Entries whose tick lies rotations in the future
// stay in their slot and are reconsidered once per rotation (512 ms per
// rotation at the default 1 ms x 512 geometry) — cheap against the arm
// rate deadlines imply.
//
// Single-threaded by design: the event loop owns the wheel and serializes
// access under its own lock. Cancellation is lazy (a tombstone set), so
// cancelling a completed query's timer never scans a slot.

#ifndef HIERDB_SCHED_TIMER_WHEEL_H_
#define HIERDB_SCHED_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace hierdb::sched {

class TimerWheel {
 public:
  /// `slots` rounds up to a power of two; `tick_ns` is the wheel's
  /// resolution (default 1 ms — deadline_ms granularity).
  explicit TimerWheel(uint32_t slots = 512, uint64_t tick_ns = 1'000'000);

  /// Arms timer `id` to fire once `now >= when_ns`. Ids are caller-chosen
  /// and must be unique among armed timers (the scheduler uses the query's
  /// admission seq). O(1).
  void Arm(uint64_t id, uint64_t when_ns);

  /// Lazily cancels `id` (no-op when not armed). A cancelled timer never
  /// appears in an Advance result. O(1).
  void Cancel(uint64_t id);

  /// Advances the wheel to `now_ns`, appending every due, uncancelled
  /// timer id to `expired` (ascending deadline is NOT guaranteed — wheel
  /// order is slot order). Amortized O(slots crossed + entries touched).
  void Advance(uint64_t now_ns, std::vector<uint64_t>* expired);

  /// Earliest armed deadline (ns), or UINT64_MAX when nothing is armed.
  /// May return a stale-early value after cancellations (the loop then
  /// simply wakes to an empty expiry batch); never returns late.
  uint64_t NextDeadlineNs() const { return armed_ == 0 ? UINT64_MAX : next_ns_; }

  size_t armed() const { return armed_; }

 private:
  struct Entry {
    uint64_t id = 0;
    uint64_t when_ns = 0;
  };

  uint64_t TickOf(uint64_t ns) const { return ns / tick_ns_; }
  /// Recomputes the cached minimum by scanning every live entry; called
  /// only when an expiry batch consumed the previous minimum.
  void RecomputeNext();

  uint64_t tick_ns_;
  uint32_t mask_;                          ///< slots - 1 (power of two)
  std::vector<std::vector<Entry>> slots_;
  std::unordered_set<uint64_t> cancelled_;
  uint64_t last_tick_ = 0;  ///< wheel position of the last Advance
  uint64_t next_ns_ = UINT64_MAX;
  size_t armed_ = 0;  ///< live (uncancelled) entries
};

}  // namespace hierdb::sched

#endif  // HIERDB_SCHED_TIMER_WHEEL_H_
