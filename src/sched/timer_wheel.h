// sched::TimerWheel — a hashed timer wheel for per-query deadlines.
//
// The admission core arms one timer per deadline-carrying query; with tens
// of thousands queued, a heap would pay O(log n) per arm/cancel and the
// event loop would pay O(k log n) per expiry batch. The classic hashed
// wheel (Varghese & Lauck) makes arm O(1): a timer due at tick t lives in
// slot t & (slots-1), and advancing the wheel scans only the slots the
// clock actually crossed. Entries whose tick lies rotations in the future
// stay in their slot and are reconsidered once per rotation (512 ms per
// rotation at the default 1 ms x 512 geometry) — cheap against the arm
// rate deadlines imply.
//
// Single-threaded by design: the event loop owns the wheel and serializes
// access under its own lock. The source of truth is a registration map
// (id -> armed deadline); slot entries are hints, so cancellation is an
// O(1) map erase and a slot entry whose deadline no longer matches its
// registration (cancelled, fired, or superseded by a re-arm) is dropped
// when its slot is next scanned.

#ifndef HIERDB_SCHED_TIMER_WHEEL_H_
#define HIERDB_SCHED_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace hierdb::sched {

class TimerWheel {
 public:
  /// `slots` rounds up to a power of two; `tick_ns` is the wheel's
  /// resolution (default 1 ms — deadline_ms granularity).
  explicit TimerWheel(uint32_t slots = 512, uint64_t tick_ns = 1'000'000);

  /// Arms timer `id` to fire once `now >= when_ns`. Re-arming an id —
  /// whether currently armed, cancelled, or already fired — supersedes:
  /// only the latest deadline fires, and stale slot entries are swept
  /// lazily. O(1).
  void Arm(uint64_t id, uint64_t when_ns);

  /// Cancels `id`. A no-op for ids that already fired or were never
  /// armed, so callers may cancel unconditionally on completion without
  /// tracking whether the deadline won the race. O(1).
  void Cancel(uint64_t id);

  /// Advances the wheel to `now_ns`, appending every due, uncancelled
  /// timer id to `expired` (ascending deadline is NOT guaranteed — wheel
  /// order is slot order). Also fires overdue timers parked just ahead of
  /// the cursor even when no tick boundary was crossed, so an arm for an
  /// already-past deadline expires on the very next call rather than after
  /// the wall clock grinds out the current tick. Amortized O(slots
  /// crossed + entries touched).
  void Advance(uint64_t now_ns, std::vector<uint64_t>* expired);

  /// Earliest armed deadline (ns), or UINT64_MAX when nothing is armed.
  /// May return a stale-early value after cancellations (the loop then
  /// simply wakes to an empty expiry batch and the next Advance sweeps
  /// the stale entry and recomputes); never returns late.
  uint64_t NextDeadlineNs() const {
    return live_.empty() ? UINT64_MAX : next_ns_;
  }

  size_t armed() const { return live_.size(); }

  /// Timers fired over the wheel's lifetime.
  uint64_t fired() const { return fired_; }
  /// Cumulative slip (ns the clock was already past each deadline when it
  /// fired) — the wheel-resolution + loop-latency tax, the forensic "were
  /// deadlines firing late?" gauge.
  uint64_t slip_total_ns() const { return slip_total_ns_; }
  /// Worst single-timer slip observed (ns).
  uint64_t slip_max_ns() const { return slip_max_ns_; }

 private:
  struct Entry {
    uint64_t id = 0;
    uint64_t when_ns = 0;
  };

  uint64_t TickOf(uint64_t ns) const { return ns / tick_ns_; }
  /// Recomputes the cached minimum over the registrations; called only
  /// when an entry that could define it left the wheel.
  void RecomputeNext();

  uint64_t tick_ns_;
  uint32_t mask_;                          ///< slots - 1 (power of two)
  std::vector<std::vector<Entry>> slots_;
  /// id -> armed deadline: the registration of record. A slot entry is
  /// live iff its (id, when_ns) matches here.
  std::unordered_map<uint64_t, uint64_t> live_;
  uint64_t last_tick_ = 0;  ///< wheel position of the last Advance
  uint64_t next_ns_ = UINT64_MAX;
  uint64_t fired_ = 0;
  uint64_t slip_total_ns_ = 0;
  uint64_t slip_max_ns_ = 0;
};

}  // namespace hierdb::sched

#endif  // HIERDB_SCHED_TIMER_WHEEL_H_
