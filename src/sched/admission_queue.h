// sched::AdmissionQueue — tenant-aware waiting queues with pluggable
// dispatch orderings and weighted in-flight quotas.
//
// The event loop asks one question: "which waiting query should dispatch
// next?" This class answers it in O(tenants x log queued): every tenant
// keeps its waiting entries in an ordered index keyed by the session's
// admission policy (FIFO seq, plan cost, absolute deadline, or deadline
// minus estimated run time), plus a seq-ordered side index for
// shortest-cost-first aging; PopBest compares the per-tenant heads among
// tenants that still have in-flight quota.
//
// Quotas are hard caps: a tenant never holds more than its weighted share
// of the concurrency limit, so one tenant's backlog cannot starve
// another's slots (the paper's load-balancing story applied to the
// admission tier). Queue-depth backpressure is also per tenant — a full
// tenant rejects while its neighbors keep admitting.
//
// Single-threaded by contract (operated under the scheduler's mutex).
// Entries cancelled while waiting die in place; they are skipped and
// reclaimed lazily via the caller's `alive` predicate.

#ifndef HIERDB_SCHED_ADMISSION_QUEUE_H_
#define HIERDB_SCHED_ADMISSION_QUEUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace hierdb::sched {

enum class OrderPolicy {
  kFifo,
  kShortestCostFirst,      ///< cheapest plan cost first, with aging
  kEarliestDeadlineFirst,  ///< absolute deadline; deadline-less last (FIFO)
  kCostAwareEdf,           ///< deadline minus estimated run time (slack start)
};

/// Resolved per-tenant limits (the scheduler turns SessionOptions weights
/// into these at construction).
struct TenantLimits {
  std::string name;         ///< "" = the default tenant
  uint32_t weight = 1;
  uint32_t max_inflight = 1;  ///< hard concurrency share (>= 1)
  uint32_t max_queued = 1;    ///< waiting-depth bound (>= 1)
  /// The weighted share was reduced so the per-tenant shares sum to at
  /// most max_concurrent_queries (small sessions with many tenants).
  bool clamped = false;
};

/// One waiting query. `payload` is opaque to the queue (the scheduler
/// stores its per-query state there); `cost_ms` is the calibrated run-time
/// estimate cost-aware EDF subtracts from the deadline.
struct QueueItem {
  uint64_t seq = 0;
  uint32_t tenant = 0;
  double cost = 0.0;
  double cost_ms = 0.0;
  uint64_t deadline_ns = 0;  ///< 0 = no deadline
  uint64_t submit_ns = 0;
  std::shared_ptr<void> payload;
};

class AdmissionQueue {
 public:
  AdmissionQueue(OrderPolicy policy, double aging_ms,
                 std::vector<TenantLimits> tenants);

  uint32_t tenant_count() const {
    return static_cast<uint32_t>(tenants_.size());
  }
  const TenantLimits& limits(uint32_t t) const { return tenants_[t].limits; }

  /// Waiting entries of `t`, including dead (cancelled/expired) ones not
  /// yet swept.
  size_t queued(uint32_t t) const { return tenants_[t].by_seq.size(); }
  size_t total_queued() const;
  uint32_t inflight(uint32_t t) const { return tenants_[t].inflight; }

  void Push(QueueItem item);

  using AliveFn = std::function<bool(const QueueItem&)>;

  /// Pops the best live entry among tenants with spare in-flight quota,
  /// per the policy at `now_ns` (aging applies to shortest-cost-first
  /// only). Dead entries encountered on the way are dropped. Does NOT
  /// bump the in-flight count — call OnDispatch once the pop is used.
  std::optional<QueueItem> PopBest(uint64_t now_ns, const AliveFn& alive);

  void OnDispatch(uint32_t t) { ++tenants_[t].inflight; }
  void OnComplete(uint32_t t) { --tenants_[t].inflight; }

  /// Drops `t`'s dead entries (cancel freeing its admission slot before
  /// the loop would have swept it). Returns how many were dropped.
  size_t SweepDead(uint32_t t, const AliveFn& alive);

  /// Live waiting entries across all tenants (stats snapshot).
  size_t CountLive(const AliveFn& alive) const;
  size_t CountLive(uint32_t t, const AliveFn& alive) const;

 private:
  /// Ordered-index key: policy rank then FIFO tie-break.
  struct Rank {
    double key = 0.0;
    uint64_t seq = 0;
    bool operator<(const Rank& o) const {
      if (key != o.key) return key < o.key;
      return seq < o.seq;
    }
  };
  struct Tenant {
    TenantLimits limits;
    std::map<Rank, QueueItem> by_key;  ///< policy order
    /// seq -> key, for aging (oldest = begin) and targeted erase.
    std::map<uint64_t, Rank> by_seq;
    uint32_t inflight = 0;
  };

  double KeyFor(const QueueItem& item) const;
  void Erase(Tenant& t, const Rank& r);

  const OrderPolicy policy_;
  const double aging_ms_;
  std::vector<Tenant> tenants_;
};

}  // namespace hierdb::sched

#endif  // HIERDB_SCHED_ADMISSION_QUEUE_H_
