#include "sched/admission_queue.h"

namespace hierdb::sched {

namespace {

/// Deadline-less entries sort after every real deadline under the EDF
/// policies but keep a meaningful secondary order (FIFO via the seq
/// tie-break for EDF, cost for cost-aware EDF).
constexpr double kNoDeadlineBase = 1e30;

}  // namespace

AdmissionQueue::AdmissionQueue(OrderPolicy policy, double aging_ms,
                               std::vector<TenantLimits> tenants)
    : policy_(policy), aging_ms_(aging_ms) {
  tenants_.reserve(tenants.size());
  for (auto& t : tenants) {
    Tenant slot;
    slot.limits = std::move(t);
    if (slot.limits.max_inflight == 0) slot.limits.max_inflight = 1;
    if (slot.limits.max_queued == 0) slot.limits.max_queued = 1;
    tenants_.push_back(std::move(slot));
  }
}

size_t AdmissionQueue::total_queued() const {
  size_t n = 0;
  for (const Tenant& t : tenants_) n += t.by_seq.size();
  return n;
}

double AdmissionQueue::KeyFor(const QueueItem& item) const {
  switch (policy_) {
    case OrderPolicy::kFifo:
      return 0.0;  // seq tie-break is the whole order
    case OrderPolicy::kShortestCostFirst:
      return item.cost;
    case OrderPolicy::kEarliestDeadlineFirst:
      return item.deadline_ns == 0 ? kNoDeadlineBase
                                   : static_cast<double>(item.deadline_ns);
    case OrderPolicy::kCostAwareEdf:
      // Latest slack start time: a query must begin by (deadline - run
      // estimate) to have a chance; dispatch the most urgent start first.
      // Deadline-less entries queue behind, cheapest first (starting the
      // short ones keeps slots turning over for future deadlines).
      return item.deadline_ns == 0
                 ? kNoDeadlineBase + item.cost_ms
                 : static_cast<double>(item.deadline_ns) -
                       item.cost_ms * 1e6;
  }
  return 0.0;
}

void AdmissionQueue::Push(QueueItem item) {
  Tenant& t = tenants_[item.tenant];
  Rank r{KeyFor(item), item.seq};
  t.by_seq.emplace(item.seq, r);
  t.by_key.emplace(r, std::move(item));
}

void AdmissionQueue::Erase(Tenant& t, const Rank& r) {
  t.by_key.erase(r);
  t.by_seq.erase(r.seq);
}

std::optional<QueueItem> AdmissionQueue::PopBest(uint64_t now_ns,
                                                 const AliveFn& alive) {
  const bool aging =
      policy_ == OrderPolicy::kShortestCostFirst && aging_ms_ > 0;
  const uint64_t aging_ns =
      aging ? static_cast<uint64_t>(aging_ms_ * 1e6) : 0;
  for (;;) {
    // Per eligible tenant the head candidate is either its oldest entry
    // (when that entry has aged past the bound — aged entries outrank
    // cost order and go FIFO among themselves) or its policy-order
    // minimum; compare heads across tenants the same way.
    Tenant* best_t = nullptr;
    Rank best_r{};
    bool best_aged = false;
    for (Tenant& t : tenants_) {
      if (t.by_seq.empty() || t.inflight >= t.limits.max_inflight) continue;
      Rank r = t.by_key.begin()->first;
      bool r_aged = false;
      if (aging) {
        const auto& oldest = *t.by_seq.begin();
        const QueueItem& oi = t.by_key.find(oldest.second)->second;
        if (oi.submit_ns + aging_ns <= now_ns) {
          r = oldest.second;
          r_aged = true;
        }
      }
      const bool wins =
          best_t == nullptr ||
          (r_aged != best_aged
               ? r_aged
               : (r_aged ? r.seq < best_r.seq : r < best_r));
      if (wins) {
        best_t = &t;
        best_r = r;
        best_aged = r_aged;
      }
    }
    if (best_t == nullptr) return std::nullopt;
    auto it = best_t->by_key.find(best_r);
    QueueItem item = std::move(it->second);
    Erase(*best_t, best_r);
    if (alive(item)) return item;
    // Cancelled/expired while waiting: already accounted by whoever killed
    // it — drop and keep looking.
  }
}

size_t AdmissionQueue::SweepDead(uint32_t tnt, const AliveFn& alive) {
  Tenant& t = tenants_[tnt];
  size_t dropped = 0;
  for (auto it = t.by_key.begin(); it != t.by_key.end();) {
    if (alive(it->second)) {
      ++it;
      continue;
    }
    t.by_seq.erase(it->first.seq);
    it = t.by_key.erase(it);
    ++dropped;
  }
  return dropped;
}

size_t AdmissionQueue::CountLive(uint32_t tnt, const AliveFn& alive) const {
  size_t n = 0;
  for (const auto& [r, item] : tenants_[tnt].by_key) {
    if (alive(item)) ++n;
  }
  return n;
}

size_t AdmissionQueue::CountLive(const AliveFn& alive) const {
  size_t n = 0;
  for (uint32_t t = 0; t < tenants_.size(); ++t) n += CountLive(t, alive);
  return n;
}

}  // namespace hierdb::sched
