#include "sched/timer_wheel.h"

#include <algorithm>

namespace hierdb::sched {

namespace {

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v && p < (1u << 30)) p <<= 1;
  return p;
}

}  // namespace

TimerWheel::TimerWheel(uint32_t slots, uint64_t tick_ns)
    : tick_ns_(tick_ns == 0 ? 1 : tick_ns),
      mask_(RoundUpPow2(std::max(1u, slots)) - 1),
      slots_(mask_ + 1) {}

void TimerWheel::Arm(uint64_t id, uint64_t when_ns) {
  // The registration is authoritative; any older slot entry for this id
  // now carries a mismatched deadline and is dropped on its next scan.
  live_[id] = when_ns;
  // A deadline at or behind the wheel cursor goes into the next slot the
  // cursor will cross — Advance only scans forward, so filing it at its
  // own (already passed) tick could delay it a whole rotation.
  const uint64_t tick = std::max(TickOf(when_ns), last_tick_ + 1);
  slots_[tick & mask_].push_back({id, when_ns});
  next_ns_ = std::min(next_ns_, when_ns);
}

void TimerWheel::Cancel(uint64_t id) {
  // Erasing the registration is the whole cancellation; the orphaned slot
  // entry is dropped when its slot is next scanned. erase() of an id that
  // already fired (Advance removed its registration) or was never armed
  // is naturally a no-op, so unconditional cancels cannot corrupt the
  // armed count. next_ns_ intentionally stays — a spurious early wake is
  // harmless, and the sweep that drops the stale entry recomputes it.
  live_.erase(id);
}

void TimerWheel::Advance(uint64_t now_ns, std::vector<uint64_t>* expired) {
  const uint64_t now_tick = TickOf(now_ns);
  if (now_tick < last_tick_) return;  // clock cannot go backwards
  // Scan the slots the clock crossed; a span of a full rotation or more
  // degenerates to one pass over every slot. Even when no tick boundary
  // was crossed (span == 0), scan the one slot just ahead of the cursor:
  // overdue arms are filed there and must fire on this call — otherwise
  // the loop's wait on their already-past deadline returns immediately
  // and it busy-spins until the wall clock finishes the current tick.
  const uint64_t span = now_tick - last_tick_;
  const uint64_t first = span >= mask_ ? 0 : (last_tick_ + 1) & mask_;
  const uint64_t count =
      span >= mask_ ? mask_ + 1 : std::max<uint64_t>(span, 1);
  bool lost_min = false;
  std::vector<Entry> refile;
  for (uint64_t k = 0; k < count; ++k) {
    auto& slot = slots_[(first + k) & mask_];
    size_t kept = 0;
    for (size_t i = 0; i < slot.size(); ++i) {
      const Entry e = slot[i];
      auto it = live_.find(e.id);
      if (it == live_.end() || it->second != e.when_ns) {
        // Cancelled, already fired, or superseded by a re-arm. The cached
        // minimum may have belonged to this entry; flag a recompute so a
        // cancelled earliest deadline cannot pin next_ns_ in the past.
        if (e.when_ns <= next_ns_) lost_min = true;
        continue;
      }
      if (e.when_ns <= now_ns) {
        expired->push_back(e.id);
        live_.erase(it);
        const uint64_t slip = now_ns - e.when_ns;
        ++fired_;
        slip_total_ns_ += slip;
        slip_max_ns_ = std::max(slip_max_ns_, slip);
        if (e.when_ns <= next_ns_) lost_min = true;
        continue;
      }
      if (TickOf(e.when_ns) <= now_tick) {
        // Due later within a tick the cursor has now reached: keeping it
        // here would strand it until a full rotation re-crosses this slot
        // (forward scans start past the cursor). Park it one slot ahead.
        refile.push_back(e);
        continue;
      }
      slot[kept++] = e;  // future rotation: stays
    }
    slot.resize(kept);
  }
  last_tick_ = now_tick;
  for (const Entry& e : refile) {
    slots_[(last_tick_ + 1) & mask_].push_back(e);
  }
  if (lost_min || (live_.empty() && next_ns_ != UINT64_MAX)) {
    RecomputeNext();
  }
}

void TimerWheel::RecomputeNext() {
  next_ns_ = UINT64_MAX;
  for (const auto& [id, when_ns] : live_) {
    next_ns_ = std::min(next_ns_, when_ns);
  }
}

}  // namespace hierdb::sched
