#include "sched/timer_wheel.h"

#include <algorithm>

namespace hierdb::sched {

namespace {

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v && p < (1u << 30)) p <<= 1;
  return p;
}

}  // namespace

TimerWheel::TimerWheel(uint32_t slots, uint64_t tick_ns)
    : tick_ns_(tick_ns == 0 ? 1 : tick_ns),
      mask_(RoundUpPow2(std::max(1u, slots)) - 1),
      slots_(mask_ + 1) {}

void TimerWheel::Arm(uint64_t id, uint64_t when_ns) {
  // Re-arming an id that was cancelled earlier must revive it.
  cancelled_.erase(id);
  // A deadline at or behind the wheel cursor goes into the next slot the
  // cursor will cross — Advance only scans forward, so filing it at its
  // own (already passed) tick could delay it a whole rotation.
  const uint64_t tick = std::max(TickOf(when_ns), last_tick_ + 1);
  slots_[tick & mask_].push_back({id, when_ns});
  next_ns_ = std::min(next_ns_, when_ns);
  ++armed_;
}

void TimerWheel::Cancel(uint64_t id) {
  if (armed_ == 0) return;
  // Tombstone; the entry itself is dropped when its slot is next scanned.
  // next_ns_ intentionally stays — a spurious early wake is harmless.
  if (cancelled_.insert(id).second) --armed_;
}

void TimerWheel::Advance(uint64_t now_ns, std::vector<uint64_t>* expired) {
  const uint64_t now_tick = TickOf(now_ns);
  if (now_tick < last_tick_) return;  // clock cannot go backwards
  // Scan only the slots the clock crossed; a span of a full rotation or
  // more degenerates to one pass over every slot.
  const uint64_t span = now_tick - last_tick_;
  const uint64_t first =
      span >= mask_ ? 0 : (last_tick_ + 1) & mask_;
  const uint64_t count = span >= mask_ ? mask_ + 1 : span;
  bool consumed_min = false;
  for (uint64_t k = 0; k < count; ++k) {
    auto& slot = slots_[(first + k) & mask_];
    size_t kept = 0;
    for (size_t i = 0; i < slot.size(); ++i) {
      const Entry& e = slot[i];
      auto tomb = cancelled_.find(e.id);
      if (tomb != cancelled_.end()) {
        cancelled_.erase(tomb);  // entry physically dropped: forget it
        continue;
      }
      if (e.when_ns <= now_ns) {
        expired->push_back(e.id);
        if (e.when_ns <= next_ns_) consumed_min = true;
        --armed_;
        continue;
      }
      slot[kept++] = e;  // future rotation: stays
    }
    slot.resize(kept);
  }
  last_tick_ = now_tick;
  if (consumed_min || (armed_ == 0 && next_ns_ != UINT64_MAX)) {
    RecomputeNext();
  }
}

void TimerWheel::RecomputeNext() {
  next_ns_ = UINT64_MAX;
  if (armed_ == 0) return;
  for (const auto& slot : slots_) {
    for (const Entry& e : slot) {
      if (cancelled_.count(e.id)) continue;
      next_ns_ = std::min(next_ns_, e.when_ns);
    }
  }
}

}  // namespace hierdb::sched
