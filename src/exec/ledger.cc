#include "exec/ledger.h"

#include "common/status.h"

namespace hierdb::exec {

EmissionLedger::EmissionLedger(uint64_t input_total,
                               std::vector<uint64_t> bucket_shares)
    : input_total_(input_total), shares_(std::move(bucket_shares)) {
  emitted_.assign(shares_.size(), 0);
  for (uint64_t s : shares_) output_total_ += s;
}

std::vector<std::pair<uint32_t, uint64_t>> EmissionLedger::Emit(
    uint64_t input_consumed) {
  HIERDB_CHECK(input_seen_ + input_consumed <= input_total_,
               "ledger overdrawn: more input consumed than exists");
  input_seen_ += input_consumed;

  std::vector<std::pair<uint32_t, uint64_t>> out;
  if (output_total_ == 0 || input_total_ == 0) return out;

  // Emit per-bucket floors of the proportional target. Floors lag the true
  // proportion by < 1 tuple per bucket; the final call settles every bucket
  // to exactly its share, so end-to-end tuple conservation is exact.
  const bool final_call = (input_seen_ == input_total_);
  const uint32_t nb = static_cast<uint32_t>(shares_.size());
  uint64_t assigned = 0;
  for (uint32_t b = 0; b < nb; ++b) {
    uint64_t target_b =
        final_call
            ? shares_[b]
            : static_cast<uint64_t>(static_cast<__uint128_t>(shares_[b]) *
                                    input_seen_ / input_total_);
    if (target_b > emitted_[b]) {
      uint64_t d = target_b - emitted_[b];
      out.emplace_back(b, d);
      emitted_[b] = target_b;
      assigned += d;
    }
  }
  output_emitted_ += assigned;
  if (final_call) {
    HIERDB_CHECK(output_emitted_ == output_total_,
                 "ledger must emit exactly its output total");
  }
  return out;
}

}  // namespace hierdb::exec
