// Plan compilation: turns a parallel execution plan plus a system
// configuration into the exact, integer-valued runtime structures the
// simulated executor needs:
//   - integer input/output tuple counts per operator (conservation-exact);
//   - per-bucket input shares for every build/probe operator, Zipf-skewed
//     by the redistribution-skew factor (Section 5.2.2), with the build and
//     probe of one join sharing a bucket permutation (same hash function);
//   - hash-table sizes per bucket (for global-LB transfer costs);
//   - trigger activations per SM-node, Zipf-assigned to scan queues;
//   - blocker lists from the scheduling constraints;
//   - collapsed per-chain stage costs for the SP strategy.

#ifndef HIERDB_EXEC_COMPILED_PLAN_H_
#define HIERDB_EXEC_COMPILED_PLAN_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "exec/types.h"
#include "plan/operator_tree.h"
#include "sim/config.h"

namespace hierdb::exec {

struct CompiledOp {
  plan::Operator def;
  uint64_t in_tuples = 0;   ///< global input tuples (scan: tuples scanned)
  uint64_t out_tuples = 0;  ///< global output tuples (build: 0)
  /// Build/probe: input tuples per bucket (size = buckets_per_operator).
  std::vector<uint64_t> in_shares;
  /// Build only: hash-table bytes per bucket.
  std::vector<uint64_t> ht_bytes;
  /// Build/probe: producer-side flush threshold (tuples) for this
  /// consumer's buckets.
  uint64_t flush_threshold = 1;
  /// Operators that must end before this one may start.
  std::vector<OpId> blockers;
};

/// Per-node trigger activations for one scan, plus their (skewed) queue
/// assignment: queue_slot[i] is the thread slot of triggers[i]'s queue.
struct NodeTriggers {
  std::vector<Activation> triggers;
  std::vector<uint32_t> queue_slot;
};

/// One stage of a collapsed SP chain: per-input-tuple CPU cost for tuples
/// reaching this stage, and the multiplicative expansion into the next.
struct SpStage {
  OpId op = kNoOp;
  double instr_per_tuple = 0.0;
  double expansion = 1.0;
};

struct SpChain {
  uint32_t chain_id = 0;
  OpId scan = kNoOp;
  std::vector<SpStage> stages;  ///< stages[0] is the scan itself
};

class CompiledPlan {
 public:
  CompiledPlan(const plan::PhysicalPlan& plan, const catalog::Catalog& cat,
               const sim::SystemConfig& cfg, double skew_theta, Rng* rng);

  const plan::PhysicalPlan& plan() const { return *plan_; }
  const sim::SystemConfig& cfg() const { return *cfg_; }

  uint32_t num_ops() const { return static_cast<uint32_t>(ops_.size()); }
  const CompiledOp& op(OpId id) const { return ops_[id]; }

  /// SM-node owning bucket `b` (same map for every operator, mirroring one
  /// global hash function).
  NodeId NodeOfBucket(uint32_t b) const { return b % cfg_->num_nodes; }
  /// Thread slot for bucket `b` among `slots` candidate threads.
  uint32_t SlotOfBucket(uint32_t b, uint32_t slots) const {
    return (b / cfg_->num_nodes) % slots;
  }

  /// Trigger activations of scan `op` on node `n`.
  const NodeTriggers& TriggersFor(OpId op, NodeId n) const {
    return triggers_[op][n];
  }

  /// Re-apportions trigger queue assignments for a different number of
  /// scan-queue slots (FP assigns scans to a subset of threads).
  NodeTriggers ReassignTriggers(OpId op, NodeId n, uint32_t slots,
                                Rng* rng) const;

  const std::vector<SpChain>& sp_chains() const { return sp_chains_; }

  double skew_theta() const { return skew_theta_; }

  /// Instruction-equivalent of the I/O time to scan `tuples` tuples from
  /// one disk (used by the FP allocator's cost estimates).
  double IoInstrEquivalent(double tuples) const;

  /// Estimated per-operator total cost in instructions, given per-operator
  /// output-cardinality distortion factors (1.0 = exact; the paper
  /// distorts base AND intermediate cardinalities independently, Fig 7).
  /// op_factor[o] scales operator o's output cardinality; an operator's
  /// input is scaled by its producer's factor. Used by FP allocation.
  std::vector<double> EstimateOpCosts(
      const std::vector<double>& op_factor) const;

 private:
  void ComputeCards();
  void ComputeShares(Rng* rng);
  void ComputeTriggers(Rng* rng);
  void ComputeSpChains();

  const plan::PhysicalPlan* plan_;
  const catalog::Catalog* cat_;
  const sim::SystemConfig* cfg_;
  double skew_theta_;
  std::vector<CompiledOp> ops_;
  /// triggers_[scan_op][node]
  std::vector<std::vector<NodeTriggers>> triggers_;
  std::vector<SpChain> sp_chains_;
};

}  // namespace hierdb::exec

#endif  // HIERDB_EXEC_COMPILED_PLAN_H_
