#include "exec/engine.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hierdb::exec {

std::string RunMetrics::ToString() const {
  std::ostringstream os;
  os << "RunMetrics{rt=" << ResponseMs() << "ms threads=" << threads
     << " idle=" << IdleFraction() * 100.0 << "% acts="
     << activations_processed << " tuples=" << tuples_processed
     << " io=" << io_requests << " steals=" << global_steals
     << " lb_bytes=" << net.bytes_loadbalance
     << " pipe_bytes=" << net.bytes_pipeline
     << " ctl_bytes=" << net.bytes_control << "}";
  return os.str();
}

uint64_t Message::WireBytes(uint32_t tuple_size) const {
  constexpr uint64_t kHeader = 64;
  switch (kind) {
    case Kind::kDataBatch:
      return kHeader + batch.tuples * tuple_size;
    case Kind::kTransfer: {
      uint64_t t = 0;
      for (const auto& a : activations) t += a.tuples;
      return kHeader + t * tuple_size + ht_bytes;
    }
    default:
      return kHeader;
  }
}

Engine::Engine(const sim::SystemConfig& cfg, Strategy strategy)
    : cfg_(cfg), strategy_(strategy), rng_(0) {
  instr_ns_ = cfg_.instr_ns(cfg_.procs_per_node);
  if (strategy_ == Strategy::kSP) {
    HIERDB_CHECK(cfg_.num_nodes == 1,
                 "SP is a shared-memory-only strategy (Section 5.2.1)");
  }
}

RunResult Engine::Run(const plan::PhysicalPlan& pplan,
                      const catalog::Catalog& cat, const RunOptions& opts) {
  RunResult result;
  Status st = pplan.Validate();
  if (!st.ok()) {
    result.status = st;
    return result;
  }
  rng_.Seed(opts.seed);
  net_ = std::make_unique<sim::Network>(&sim_, cfg_.net);
  compiled_ = std::make_unique<CompiledPlan>(pplan, cat, cfg_,
                                             opts.skew_theta, &rng_);

  const uint32_t n_ops = compiled_->num_ops();
  metrics_ = RunMetrics{};
  metrics_.op_tuples_in.assign(n_ops, 0);
  metrics_.op_end_time.assign(n_ops, 0);
  metrics_.op_busy_ns.assign(n_ops, 0.0);
  metrics_.timeline_bucket = opts.timeline_bucket;

  // Ledgers for every pipelining producer (scan or non-root probe).
  ledgers_.clear();
  ledgers_.resize(n_ops);
  for (OpId o = 0; o < n_ops; ++o) {
    const CompiledOp& cop = compiled_->op(o);
    if (cop.def.IsBuild() || cop.def.consumer == kNoOp) continue;
    const CompiledOp& consumer = compiled_->op(cop.def.consumer);
    ledgers_[o] = std::make_unique<EmissionLedger>(
        cop.def.IsScan() ? cop.in_tuples : cop.in_tuples,
        consumer.in_shares);
  }

  end_signals_.assign(n_ops, {});
  drain_confirms_.assign(n_ops, {});
  op_globally_ended_.assign(n_ops, 0);
  ops_ended_count_ = 0;
  done_ = false;

  SetupNodes(opts);
  switch (strategy_) {
    case Strategy::kDP: SetupQueuesDp(); break;
    case Strategy::kFP: SetupQueuesFp(opts); break;
    case Strategy::kSP: SetupQueuesSp(); break;
  }
  PreloadTriggers();
  InitialUnblock();

  for (auto& nd : nodes_) {
    RebuildActiveList(nd->id);
  }
  // Operators that start with nothing to do anywhere must be detected.
  if (strategy_ != Strategy::kSP) {
    for (auto& nd : nodes_) {
      for (OpId o = 0; o < n_ops; ++o) CheckLocalEnd(nd->id, o);
    }
  }
  for (auto& nd : nodes_) KickAllWorkers(nd->id);

  uint64_t events = 0;
  while (!done_ && !sim_.Empty() && events < opts.max_events) {
    // Cooperative cancellation, once per event batch.
    if (opts.stop != nullptr &&
        opts.stop->load(std::memory_order_acquire)) {
      FinalizeMetrics();
      result.status = Status::Cancelled("query cancelled during simulation");
      result.metrics = metrics_;
      return result;
    }
    events += sim_.Run(1024);
    if (done_) break;
  }
  if (!done_) {
    std::ostringstream os;
    os << "execution did not complete ("
       << (sim_.Empty() ? "deadlock: event queue drained"
                        : "event budget exhausted")
       << ") after " << events << " events at t=" << ToMillis(sim_.Now())
       << "ms; ops ended " << ops_ended_count_ << "/" << n_ops << "\n";
    for (OpId o = 0; o < n_ops; ++o) {
      os << "  op " << compiled_->op(o).def.label
         << (op_globally_ended_[o] ? " ENDED" : "");
      for (auto& nd : nodes_) {
        uint64_t backlog = 0;
        for (auto& q : nd->queues[o]) {
          if (q) backlog += q->size();
        }
        os << " [n" << nd->id << " unb=" << int(nd->op_unblocked[o])
           << " q=" << backlog << " inflt=" << nd->inflight[o]
           << " pend=" << nd->pending[o]
           << " sig=" << int(nd->end_signaled[o])
           << " cnf=" << int(nd->drain_confirmed[o]) << "]";
      }
      os << "\n";
    }
    result.status = Status::Internal(os.str());
  }
  FinalizeMetrics();
  if (result.status.ok()) result.status = VerifyConservation();
  result.metrics = metrics_;
  return result;
}

void Engine::SetupNodes(const RunOptions& opts) {
  (void)opts;
  nodes_.clear();
  const uint32_t n_ops = compiled_->num_ops();
  for (NodeId n = 0; n < cfg_.num_nodes; ++n) {
    auto nd = std::make_unique<SmNode>();
    nd->id = n;
    for (uint32_t p = 0; p < cfg_.procs_per_node; ++p) {
      nd->workers.push_back(std::make_unique<Worker>(this, n, p));
    }
    nd->disks = std::make_unique<sim::DiskArray>(
        &sim_, cfg_.disk, cfg_.page_size_bytes,
        cfg_.procs_per_node * cfg_.disks_per_proc);
    nd->queues.resize(n_ops);
    for (auto& v : nd->queues) v.resize(cfg_.procs_per_node + 1);
    nd->accum.assign(n_ops,
                     std::vector<uint64_t>(cfg_.buckets_per_operator, 0));
    nd->inflight.assign(n_ops, 0);
    nd->pending.assign(n_ops, 0);
    nd->end_signaled.assign(n_ops, 0);
    nd->drain_requested.assign(n_ops, 0);
    nd->drain_confirmed.assign(n_ops, 0);
    nd->op_ended.assign(n_ops, 0);
    nd->op_unblocked.assign(n_ops, 0);
    nd->ht_copies.assign(n_ops, {});
    nodes_.push_back(std::move(nd));
  }
}

void Engine::SetupQueuesDp() {
  const uint32_t n_ops = compiled_->num_ops();
  fp_threads_of_op_.assign(n_ops, {});
  for (OpId o = 0; o < n_ops; ++o) {
    for (uint32_t t = 0; t < cfg_.procs_per_node; ++t) {
      fp_threads_of_op_[o].push_back(t);
    }
  }
  for (auto& nd : nodes_) {
    for (OpId o = 0; o < n_ops; ++o) {
      for (uint32_t t = 0; t < cfg_.procs_per_node; ++t) {
        nd->queues[o][t] = std::make_unique<ActivationQueue>(
            o, nd->id, t, cfg_.queue_capacity);
      }
    }
  }
}

void Engine::SetupQueuesFp(const RunOptions& opts) {
  ComputeFpAssignments(opts);
  const uint32_t n_ops = compiled_->num_ops();
  for (auto& nd : nodes_) {
    for (OpId o = 0; o < n_ops; ++o) {
      for (uint32_t t : fp_threads_of_op_[o]) {
        nd->queues[o][t] = std::make_unique<ActivationQueue>(
            o, nd->id, t, cfg_.queue_capacity);
      }
    }
  }
}

void Engine::SetupQueuesSp() {
  const uint32_t n_ops = compiled_->num_ops();
  fp_threads_of_op_.assign(n_ops, {});
  sp_triggers_left_.assign(compiled_->plan().chains.size(), 0);
  sp_chain_cursor_ = 0;
  for (auto& nd : nodes_) {
    for (OpId o = 0; o < n_ops; ++o) {
      if (!compiled_->op(o).def.IsScan()) continue;
      for (uint32_t t = 0; t < cfg_.procs_per_node; ++t) {
        nd->queues[o][t] = std::make_unique<ActivationQueue>(
            o, nd->id, t, cfg_.queue_capacity);
      }
    }
  }
}

void Engine::PreloadTriggers() {
  for (OpId o = 0; o < compiled_->num_ops(); ++o) {
    const CompiledOp& cop = compiled_->op(o);
    if (!cop.def.IsScan()) continue;
    for (auto& nd : nodes_) {
      NodeTriggers nt;
      const uint32_t assigned =
          static_cast<uint32_t>(fp_threads_of_op_.empty()
                                    ? 0
                                    : fp_threads_of_op_[o].size());
      if (strategy_ == Strategy::kFP && assigned > 0 &&
          assigned < cfg_.procs_per_node) {
        nt = compiled_->ReassignTriggers(o, nd->id, assigned, &rng_);
        for (size_t i = 0; i < nt.triggers.size(); ++i) {
          uint32_t t = fp_threads_of_op_[o][nt.queue_slot[i]];
          nd->queues[o][t]->Push(nt.triggers[i]);
        }
      } else {
        const NodeTriggers& src = compiled_->TriggersFor(o, nd->id);
        for (size_t i = 0; i < src.triggers.size(); ++i) {
          uint32_t slot = src.queue_slot[i];
          if (strategy_ == Strategy::kFP) {
            // Map through the op's assigned threads.
            const auto& ths = fp_threads_of_op_[o];
            slot = ths[slot % ths.size()];
          }
          nd->queues[o][slot]->Push(src.triggers[i]);
        }
      }
      if (strategy_ == Strategy::kSP) {
        sp_triggers_left_[cop.def.chain] +=
            compiled_->TriggersFor(o, nd->id).triggers.size();
      }
    }
  }
}

void Engine::InitialUnblock() {
  for (auto& nd : nodes_) {
    for (OpId o = 0; o < compiled_->num_ops(); ++o) {
      nd->op_unblocked[o] = compiled_->op(o).blockers.empty() ? 1 : 0;
    }
  }
}

void Engine::ComputeFpAssignments(const RunOptions& opts) {
  const uint32_t n_ops = compiled_->num_ops();
  const uint32_t procs = cfg_.procs_per_node;
  fp_threads_of_op_.assign(n_ops, {});

  // Cost-model error injection (Fig 7): base and intermediate relation
  // cardinalities are distorted independently, which propagates into the
  // per-operator cost estimates. Because an operator's cost is roughly
  // linear in its (distorted) input/output cardinalities, we distort each
  // operator's estimated cost by an independent factor in [1-r, 1+r].
  Rng drng(opts.seed ^ 0xd15707ULL);
  std::vector<double> factors(n_ops, 1.0);
  if (opts.fp_error_rate > 0.0) {
    for (auto& f : factors) {
      f = drng.NextDoubleInRange(1.0 - opts.fp_error_rate,
                                 1.0 + opts.fp_error_rate);
    }
  }
  std::vector<double> costs = compiled_->EstimateOpCosts({});
  for (OpId o = 0; o < n_ops; ++o) costs[o] *= factors[o];

  for (const auto& ch : compiled_->plan().chains) {
    const auto& ops = ch.ops;
    const uint32_t k = static_cast<uint32_t>(ops.size());
    std::vector<uint32_t> alloc(k, 0);
    if (k >= procs) {
      // More operators than processors: round-robin op-to-thread mapping.
      for (uint32_t i = 0; i < k; ++i) {
        fp_threads_of_op_[ops[i]].push_back(i % procs);
      }
      continue;
    }
    // One processor guaranteed per operator; the remainder is split
    // proportionally to estimated cost (largest-remainder rounding) — the
    // source of FP's discretization errors.
    double total = 0.0;
    for (OpId o : ops) total += costs[o];
    if (total <= 0.0) total = 1.0;
    uint32_t left = procs - k;
    std::vector<std::pair<double, uint32_t>> rem(k);
    uint32_t given = 0;
    for (uint32_t i = 0; i < k; ++i) {
      double exact = left * costs[ops[i]] / total;
      uint32_t whole = static_cast<uint32_t>(exact);
      alloc[i] = 1 + whole;
      given += whole;
      rem[i] = {exact - whole, i};
    }
    std::sort(rem.begin(), rem.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    for (uint32_t g = 0; g < left - given; ++g) {
      alloc[rem[g % k].second] += 1;
    }
    // Contiguous thread ranges per operator.
    uint32_t next_thread = 0;
    for (uint32_t i = 0; i < k; ++i) {
      for (uint32_t c = 0; c < alloc[i] && next_thread < procs; ++c) {
        fp_threads_of_op_[ops[i]].push_back(next_thread++);
      }
    }
  }

  // Per-worker op lists.
  for (auto& nd : nodes_) {
    for (auto& w : nd->workers) w->assignment().fp_ops.clear();
    for (OpId o = 0; o < n_ops; ++o) {
      for (uint32_t t : fp_threads_of_op_[o]) {
        nd->workers[t]->assignment().fp_ops.push_back(o);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Dataflow.
// ---------------------------------------------------------------------

void Engine::Accumulate(NodeId from, OpId consumer, uint32_t b,
                        uint64_t tuples) {
  nodes_[from]->accum[consumer][b] += tuples;
}

ActivationQueue* Engine::DestQueue(OpId op, uint32_t b) {
  NodeId n = compiled_->NodeOfBucket(b);
  const auto& threads = fp_threads_of_op_[op];
  HIERDB_CHECK(!threads.empty(), "no queues exist for consumer op");
  uint32_t slot =
      threads[compiled_->SlotOfBucket(b, static_cast<uint32_t>(
                                             threads.size()))];
  ActivationQueue* q = nodes_[n]->queue(op, slot);
  HIERDB_CHECK(q != nullptr, "destination queue missing");
  return q;
}

ActivationQueue* Engine::FlushBucket(NodeId from, OpId consumer, uint32_t b,
                                     bool force, double* instr) {
  SmNode& nd = *nodes_[from];
  uint64_t& acc = nd.accum[consumer][b];
  const uint64_t batch = cfg_.activation_batch_tuples;
  const uint64_t threshold = compiled_->op(consumer).flush_threshold;
  const NodeId dest = compiled_->NodeOfBucket(b);
  bool pushed = false;
  bool hungry = false;
  if (dest == from && acc > 0 && acc < threshold) {
    // Adaptive batching: if the destination queue has run dry the consumer
    // is starving — ship whatever has accumulated instead of waiting for a
    // full batch (keeps pipeline ramp-up delay near zero; batches grow
    // back to full size at steady state).
    hungry = DestQueue(consumer, b)->Empty();
  }
  while (acc >= threshold || ((force || hungry) && acc > 0)) {
    hungry = false;
    uint64_t t = std::min<uint64_t>(acc, batch);
    Activation a;
    a.op = consumer;
    a.bucket = b;
    a.tuples = t;
    if (dest == from) {
      ActivationQueue* q = DestQueue(consumer, b);
      if (!force && q->Full()) return q;  // flow control
      q->Push(a);
      *instr += cfg_.cost.queue_op_instr;
      pushed = true;
    } else {
      Message m;
      m.kind = Message::Kind::kDataBatch;
      m.from = from;
      m.op = consumer;
      m.batch = a;
      *instr += net_->SendCpuInstr(m.WireBytes(cfg_.tuple_size_bytes));
      nodes_[dest]->pending[consumer] += 1;
      SendMessage(from, dest, std::move(m), sim::TrafficClass::kPipeline);
    }
    acc -= t;
  }
  if (pushed) KickAllWorkers(from);
  return nullptr;
}

// ---------------------------------------------------------------------
// Messaging.
// ---------------------------------------------------------------------

void Engine::SendMessage(NodeId from, NodeId to, Message msg,
                         sim::TrafficClass cls) {
  msg.from = from;
  if (from == to) {
    HandleMessage(to, std::move(msg));
    return;
  }
  const uint64_t bytes = msg.WireBytes(cfg_.tuple_size_bytes);
  // Data-batch send CPU is charged to the producing worker by the caller;
  // every other kind is shipped by the scheduler thread.
  if (msg.kind != Message::Kind::kDataBatch) {
    nodes_[from]->scheduler_busy_ns += InstrNs(net_->SendCpuInstr(bytes));
  }
  if (msg.kind == Message::Kind::kEndOfQueuesAtNode ||
      msg.kind == Message::Kind::kDrainCheck ||
      msg.kind == Message::Kind::kDrainConfirm ||
      msg.kind == Message::Kind::kOperatorEnded) {
    ++metrics_.end_protocol_messages;
  }
  auto shared = std::make_shared<Message>(std::move(msg));
  net_->Send(from, to, bytes, cls, [this, to, shared]() {
    nodes_[to]->scheduler_busy_ns +=
        InstrNs(net_->RecvCpuInstr(shared->WireBytes(cfg_.tuple_size_bytes)));
    HandleMessage(to, std::move(*shared));
  });
}

void Engine::HandleMessage(NodeId at, Message msg) {
  switch (msg.kind) {
    case Message::Kind::kDataBatch: {
      SmNode& nd = *nodes_[at];
      HIERDB_CHECK(nd.pending[msg.op] > 0, "pending underflow");
      nd.pending[msg.op] -= 1;
      DestQueue(msg.op, msg.batch.bucket)->Push(msg.batch);
      KickAllWorkers(at);
      break;
    }
    case Message::Kind::kStarving:
      LbHandleStarving(at, msg);
      break;
    case Message::Kind::kCandidateReply:
      LbHandleReply(at, msg);
      break;
    case Message::Kind::kAcquire:
      LbHandleAcquire(at, msg);
      break;
    case Message::Kind::kTransfer:
      LbHandleTransfer(at, std::move(msg));
      break;
    case Message::Kind::kEndOfQueuesAtNode:
      EndHandleSignal(at, msg);
      break;
    case Message::Kind::kDrainCheck:
      EndHandleDrainCheck(at, msg);
      break;
    case Message::Kind::kDrainConfirm:
      EndHandleDrainConfirm(at, msg);
      break;
    case Message::Kind::kOperatorEnded:
      EndHandleEnded(at, msg);
      break;
  }
}

// ---------------------------------------------------------------------
// Worker support.
// ---------------------------------------------------------------------

void Engine::OnFrameStart(NodeId n, OpId op) {
  nodes_[n]->inflight[op] += 1;
}

void Engine::RecordBusy(SimTime at, SimTime busy_ns) {
  if (metrics_.timeline_bucket <= 0) return;
  size_t bucket = static_cast<size_t>(at / metrics_.timeline_bucket);
  if (metrics_.busy_timeline.size() <= bucket) {
    metrics_.busy_timeline.resize(bucket + 1, 0.0);
  }
  metrics_.busy_timeline[bucket] += static_cast<double>(busy_ns);
}

void Engine::OnFrameDone(NodeId n, OpId op) {
  SmNode& nd = *nodes_[n];
  HIERDB_CHECK(nd.inflight[op] > 0, "inflight underflow");
  nd.inflight[op] -= 1;
  if (strategy_ == Strategy::kSP) {
    SpOnTriggerDone(compiled_->op(op).def.chain);
    return;
  }
  CheckLocalEnd(n, op);
  TryConfirmDrain(n, op);
}

void Engine::KickAllWorkers(NodeId n) {
  for (auto& w : nodes_[n]->workers) w->Kick();
}

void Engine::RebuildActiveList(NodeId n) {
  SmNode& nd = *nodes_[n];
  nd.active_list.clear();
  for (OpId o = 0; o < compiled_->num_ops(); ++o) {
    if (!nd.op_unblocked[o] || nd.op_ended[o]) continue;
    for (auto& q : nd.queues[o]) {
      if (q) nd.active_list.push_back(q.get());
    }
  }
  nd.start_pos.assign(nd.workers.size(), 0);
  for (uint32_t t = 0; t < nd.workers.size(); ++t) {
    for (size_t i = 0; i < nd.active_list.size(); ++i) {
      if (nd.active_list[i]->owner_thread() == t) {
        nd.start_pos[t] = i;
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------
// SP chain tracking.
// ---------------------------------------------------------------------

void Engine::SpPublishCpuBatches(NodeId n, const Activation& trigger) {
  SmNode& nd = *nodes_[n];
  const uint32_t chain = compiled_->op(trigger.op).def.chain;
  const uint64_t batch = cfg_.activation_batch_tuples;
  uint64_t remaining = trigger.tuples;
  auto& queues = nd.queues[trigger.op];
  while (remaining > 0) {
    Activation a;
    a.op = trigger.op;
    a.tuples = std::min(remaining, batch);
    remaining -= a.tuples;
    sp_triggers_left_[chain] += 1;
    queues[sp_rr_++ % cfg_.procs_per_node]->PushFront(a);
  }
  KickAllWorkers(n);
}

void Engine::SpOnTriggerDone(uint32_t chain_id) {
  HIERDB_CHECK(sp_triggers_left_[chain_id] > 0, "SP trigger underflow");
  if (--sp_triggers_left_[chain_id] > 0) return;
  // Chain complete: mark all of its operators ended.
  for (OpId o : compiled_->plan().chains[chain_id].ops) {
    MarkOpEndedEverywhere(o);
  }
  ++sp_chain_cursor_;
  if (!done_) {
    for (auto& nd : nodes_) KickAllWorkers(nd->id);
  }
}

void Engine::MarkOpEndedEverywhere(OpId op) {
  if (op_globally_ended_[op]) return;
  op_globally_ended_[op] = 1;
  metrics_.op_end_time[op] = sim_.Now();
  for (auto& nd : nodes_) nd->op_ended[op] = 1;
  if (++ops_ended_count_ == compiled_->num_ops()) {
    done_ = true;
    metrics_.response_time = sim_.Now();
  }
}

// ---------------------------------------------------------------------
// Finalization.
// ---------------------------------------------------------------------

void Engine::FinalizeMetrics() {
  metrics_.threads = cfg_.num_nodes * cfg_.procs_per_node;
  metrics_.busy_ns_total = 0;
  metrics_.scheduler_busy_ns = 0;
  for (auto& nd : nodes_) {
    for (auto& w : nd->workers) metrics_.busy_ns_total += w->busy_ns();
    metrics_.scheduler_busy_ns += nd->scheduler_busy_ns;
  }
  metrics_.net = net_->stats();
  uint64_t pages = 0, reqs = 0;
  for (auto& nd : nodes_) {
    pages += nd->disks->total_pages_read();
  }
  metrics_.pages_read = pages;
  (void)reqs;
  if (metrics_.response_time == 0) metrics_.response_time = sim_.Now();
}

Status Engine::VerifyConservation() const {
  if (strategy_ == Strategy::kSP) {
    // SP collapses chains; only scan-level conservation applies.
    for (OpId o = 0; o < compiled_->num_ops(); ++o) {
      const CompiledOp& cop = compiled_->op(o);
      if (!cop.def.IsScan()) continue;
      if (metrics_.op_tuples_in[o] != cop.in_tuples) {
        return Status::Internal("SP scan tuple conservation violated");
      }
    }
    return Status::OK();
  }
  for (OpId o = 0; o < compiled_->num_ops(); ++o) {
    const CompiledOp& cop = compiled_->op(o);
    if (metrics_.op_tuples_in[o] != cop.in_tuples) {
      std::ostringstream os;
      os << "tuple conservation violated at op " << cop.def.label
         << ": processed " << metrics_.op_tuples_in[o] << " of "
         << cop.in_tuples;
      return Status::Internal(os.str());
    }
  }
  return Status::OK();
}

}  // namespace hierdb::exec
