// Core identifiers and the activation type (Section 3.1).
//
// An activation is the finest self-contained unit of sequential work:
//   - a trigger activation <operator, bucket-portion> starts a scan over a
//     run of pages (granularity: `trigger_pages` pages, the I/O cache
//     window);
//   - a data activation <operator, tuple-batch, bucket> carries pipelined
//     tuples toward a build or probe operator (granularity increased by
//     buffering: one activation = up to `activation_batch_tuples` tuples).
// Because activations reference everything needed to execute them, any
// thread of the SM-node holding the referenced data can process any
// activation — the property the whole load-balancing model rests on.

#ifndef HIERDB_EXEC_TYPES_H_
#define HIERDB_EXEC_TYPES_H_

#include <cstdint>

#include "common/strategy.h"
#include "plan/operator_tree.h"

namespace hierdb::exec {

using plan::OpId;
using plan::kNoOp;
using NodeId = uint32_t;

/// The strategy enum is shared by all backends (common/strategy.h); these
/// aliases keep the historical exec::Strategy spelling working.
using hierdb::Strategy;
using hierdb::StrategyName;

/// One unit of sequential work.
struct Activation {
  OpId op = kNoOp;
  uint32_t bucket = 0;   ///< bucket (data) or portion index (trigger)
  uint64_t tuples = 0;   ///< tuples to process
  uint32_t pages = 0;    ///< pages to read; > 0 marks a trigger activation
  uint32_t disk = 0;     ///< trigger: disk index on the home node

  bool IsTrigger() const { return pages > 0; }
};

}  // namespace hierdb::exec

#endif  // HIERDB_EXEC_TYPES_H_
