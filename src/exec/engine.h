// The parallel execution engine (Sections 3 and 4 of the paper).
//
// Engine::Run executes one parallel execution plan on the simulated
// hierarchical machine under one of three strategies:
//
//   DP (dynamic processing, the paper's model): one thread per processor;
//      any thread consumes any unblocked activation queue of its SM-node,
//      primary queues first; blocking actions (full queue, pending I/O)
//      are escaped by processing another activation (frame-stack nesting);
//      a starving SM-node acquires probe activations + hash tables from
//      the most loaded remote node.
//
//   FP (fixed processing): per pipeline chain, processors are statically
//      allocated to operators proportionally to estimated cost; a thread
//      only consumes queues of its own operator (intra-operator balancing
//      allowed, the shared-memory adaptation of Section 5.2.1). An idle FP
//      processor triggers per-processor global stealing for its operator.
//
//   SP (synchronous pipelining, shared-memory only): every thread carries
//      tuples through the whole pipeline chain by procedure calls; no
//      queues, no interference.
//
// The engine is deliberately single-threaded: it drives a deterministic
// discrete-event simulation, so every experiment is reproducible.
// Internal types (SmNode, Worker, Message) are exposed in this header for
// the implementation files and white-box tests; library users only need
// Engine, RunOptions and RunResult.

#ifndef HIERDB_EXEC_ENGINE_H_
#define HIERDB_EXEC_ENGINE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "exec/compiled_plan.h"
#include "exec/ledger.h"
#include "exec/metrics.h"
#include "exec/queue.h"
#include "exec/types.h"
#include "sim/config.h"
#include "sim/disk.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace hierdb::exec {

class Engine;

/// One execution frame: the saved context of a (possibly suspended)
/// activation. A thread that hits a blocking action leaves the frame on
/// its stack and nests into another activation — the procedure-call escape
/// of Section 3.1 ("ProcessAnotherActivation").
struct Frame {
  Activation act;
  uint32_t pc = 0;  ///< 0: start; 1: post-I/O processing; 2: delivering

  bool waiting_io = false;
  bool io_complete = false;
  ActivationQueue* wait_queue = nullptr;  ///< full queue we are blocked on

  /// Pending deliveries: (consumer bucket, tuples) emitted by this
  /// activation that still have to be pushed downstream.
  std::vector<std::pair<uint32_t, uint64_t>> emissions;
  size_t emit_idx = 0;

  uint64_t serial = 0;  ///< for I/O completion routing

  bool QueueBlocked() const { return wait_queue != nullptr; }
};

/// Inter-node messages (handled by the per-node scheduler threads).
struct Message {
  enum class Kind {
    kDataBatch,          // pipelined tuple batch
    kStarving,           // requester -> all: I am starving
    kCandidateReply,     // provider -> requester: best candidate queue
    kAcquire,            // requester -> provider: take that queue
    kTransfer,           // provider -> requester: activations (+ HT bytes)
    kEndOfQueuesAtNode,  // node -> coordinator (end detection phase 1)
    kDrainCheck,         // coordinator -> node (phase 2)
    kDrainConfirm,       // node -> coordinator (phase 3)
    kOperatorEnded,      // coordinator -> all (phase 4)
  };
  Kind kind;
  NodeId from = 0;
  OpId op = kNoOp;

  // kDataBatch
  Activation batch;
  // kStarving
  uint64_t mem_available = 0;
  bool targeted = false;  ///< FP: steal only for `op`
  // kCandidateReply
  bool has_candidate = false;
  uint32_t slot = 0;
  uint64_t load_tuples = 0;     ///< provider's total backlog
  uint64_t transfer_bytes = 0;  ///< estimated acquisition overhead
  // kTransfer
  std::deque<Activation> activations;
  uint64_t ht_bytes = 0;
  uint32_t ht_buckets = 0;

  /// Approximate wire size, for network accounting.
  uint64_t WireBytes(uint32_t tuple_size) const;
};

/// Per-worker strategy-dependent assignment.
struct WorkerAssignment {
  /// FP: operators this thread may process (usually one per chain).
  std::vector<OpId> fp_ops;
};

class Worker {
 public:
  Worker(Engine* eng, NodeId node, uint32_t idx)
      : eng_(eng), node_(node), idx_(idx) {}

  /// Ensures a dispatch event is pending (no-op when already running).
  void Kick();

  NodeId node_id() const { return node_; }
  uint32_t index() const { return idx_; }
  SimTime busy_ns() const { return busy_ns_; }
  const std::vector<Frame>& stack() const { return stack_; }
  WorkerAssignment& assignment() { return assignment_; }

  void OnIoComplete(uint64_t frame_serial);

 private:
  friend class Engine;

  void Dispatch();
  void DispatchImpl();
  bool CanResumeTop() const;
  void RotateResumableToTop();
  /// Selects one activation per the strategy's rules; returns true if a
  /// burst was started.
  bool SelectAndRun();
  bool TryConsume(ActivationQueue* q, bool primary);
  /// Runs the top frame until it blocks or completes; schedules the
  /// continuation after the accumulated cost.
  void RunBurst(double initial_instr);
  /// Executes steps of frame `f`; returns false when blocked.
  bool StepFrame(Frame& f, double* instr);
  bool OpConflictsWithStack(OpId op, bool is_trigger) const;
  void FinishBurst(double instr);

  Engine* eng_;
  NodeId node_;
  uint32_t idx_;
  std::vector<Frame> stack_;
  bool continuation_pending_ = false;
  bool running_ = false;
  SimTime busy_ns_ = 0;
  uint64_t next_frame_serial_ = 1;
  WorkerAssignment assignment_;
};

/// One shared-memory node: its workers, disks, queues, producer-side
/// output accumulators, and the scheduler state (global load balancing and
/// operator-end detection).
struct SmNode {
  NodeId id = 0;
  std::vector<std::unique_ptr<Worker>> workers;
  std::unique_ptr<sim::DiskArray> disks;

  /// queues[op][slot]; slot in [0, procs) is the per-thread queue (may be
  /// null under FP for unassigned threads); slot == procs is the
  /// load-balancing queue holding acquired activations.
  std::vector<std::vector<std::unique_ptr<ActivationQueue>>> queues;

  /// Circular list of active (unblocked, non-terminated, existing) queues
  /// (Section 4, Figure 5), op-major / slot-minor.
  std::vector<ActivationQueue*> active_list;
  /// active_list starting position per thread (its first primary queue).
  std::vector<size_t> start_pos;

  /// accum[consumer_op][bucket]: producer-side output buffering.
  std::vector<std::vector<uint64_t>> accum;

  /// Per-op counters for end detection.
  std::vector<uint32_t> inflight;        ///< frames being processed here
  std::vector<uint32_t> pending;         ///< in-flight deliveries to here
  std::vector<char> end_signaled;        ///< phase 1 sent
  std::vector<char> drain_requested;     ///< phase 2 received
  std::vector<char> drain_confirmed;     ///< phase 3 sent
  std::vector<char> op_ended;            ///< phase 4 received
  std::vector<char> op_unblocked;

  /// Hash-table bucket copies acquired by global LB: copies[op] = buckets.
  std::vector<std::set<uint32_t>> ht_copies;

  // Global-LB requester state.
  bool lb_requesting = false;
  OpId lb_target_op = kNoOp;  ///< FP targeted steal
  uint32_t lb_replies_pending = 0;
  struct LbCandidate {
    NodeId provider;
    OpId op;
    uint32_t slot;
    uint64_t load;
    uint64_t bytes;
  };
  std::vector<LbCandidate> lb_candidates;
  SimTime last_lb_request = -kSecond;

  SimTime scheduler_busy_ns = 0;

  ActivationQueue* queue(OpId op, uint32_t slot) {
    return queues[op][slot].get();
  }
  uint32_t lb_slot() const {
    return static_cast<uint32_t>(workers.size());
  }
};

/// Per-run options.
struct RunOptions {
  /// Redistribution-skew factor (Zipf theta in [0,1], Section 5.2.2).
  double skew_theta = 0.0;
  /// FP only: cost-model error rate r; base cardinalities are distorted by
  /// factors in [1-r, 1+r] before allocation (Fig 7).
  double fp_error_rate = 0.0;
  /// Seed for the per-run randomness (bucket shuffles, distortions).
  uint64_t seed = 1;
  /// Safety valve for tests: abort after this many simulation events.
  uint64_t max_events = 2'000'000'000ULL;
  /// Cooperative cancellation: when set, the event loop checks it once
  /// per event batch and aborts the run with Status::Cancelled.
  const std::atomic<bool>* stop = nullptr;
  /// When > 0, record a processor-utilization timeline with this bucket
  /// width (virtual time).
  SimTime timeline_bucket = 0;
};

struct RunResult {
  Status status = Status::OK();
  RunMetrics metrics;
};

/// The execution engine. One instance per run.
class Engine {
 public:
  Engine(const sim::SystemConfig& cfg, Strategy strategy);

  /// Executes `pplan` and returns the metrics. Deterministic.
  RunResult Run(const plan::PhysicalPlan& pplan, const catalog::Catalog& cat,
                const RunOptions& opts);

  // ---- internal API (implementation files and white-box tests) ----

  const sim::SystemConfig& cfg() const { return cfg_; }
  Strategy strategy() const { return strategy_; }
  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return *net_; }
  const CompiledPlan& compiled() const { return *compiled_; }
  SmNode& node(NodeId n) { return *nodes_[n]; }
  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  RunMetrics& metrics() { return metrics_; }
  bool done() const { return done_; }
  EmissionLedger* ledger(OpId op) { return ledgers_[op].get(); }
  size_t sp_chain_cursor() const { return sp_chain_cursor_; }

  /// Effective ns for `instr` instructions on `node`'s processors.
  SimTime InstrNs(double instr) const {
    return static_cast<SimTime>(instr * instr_ns_);
  }

  // Dataflow.
  /// Producer-side emission: accumulate `tuples` for `consumer`'s bucket
  /// `b` on `from` node (no flushing; the frame flushes afterwards).
  void Accumulate(NodeId from, OpId consumer, uint32_t b, uint64_t tuples);
  /// Attempts to move one batch (or `force` any residue) of bucket `b`
  /// toward its destination queue. Returns the full local queue when
  /// flow-control blocks, nullptr on success or no-op. Adds CPU cost for
  /// local enqueues / remote sends to *instr.
  ActivationQueue* FlushBucket(NodeId from, OpId consumer, uint32_t b,
                               bool force, double* instr);
  /// Destination queue of bucket `b` for consumer `op` on its home node.
  ActivationQueue* DestQueue(OpId op, uint32_t b);

  // Scheduler entry points.
  void WorkerStarving(NodeId n, OpId fp_target_op);
  void OnFrameStart(NodeId n, OpId op);
  void OnFrameDone(NodeId n, OpId op);
  void CheckLocalEnd(NodeId n, OpId op);
  void KickAllWorkers(NodeId n);
  void RebuildActiveList(NodeId n);

  /// Timeline accounting (no-op unless enabled via RunOptions).
  void RecordBusy(SimTime at, SimTime busy_ns);

  // SP chain tracking.
  void SpOnTriggerDone(uint32_t chain_id);
  /// SP: converts a completed trigger read into shared CPU batch
  /// activations that any thread of the node may process.
  void SpPublishCpuBatches(NodeId n, const Activation& trigger);

 private:
  friend class Worker;

  void SetupNodes(const RunOptions& opts);
  void SetupQueuesDp();
  void SetupQueuesFp(const RunOptions& opts);
  void SetupQueuesSp();
  void PreloadTriggers();
  void InitialUnblock();

  // FP allocation.
  void ComputeFpAssignments(const RunOptions& opts);

  // Messaging.
  void SendMessage(NodeId from, NodeId to, Message msg,
                   sim::TrafficClass cls);
  void HandleMessage(NodeId at, Message msg);

  // Global load balancing (scheduler side).
  void LbHandleStarving(NodeId at, const Message& msg);
  void LbHandleReply(NodeId at, const Message& msg);
  void LbHandleAcquire(NodeId at, const Message& msg);
  void LbHandleTransfer(NodeId at, Message msg);
  std::optional<Message> LbFindCandidate(NodeId provider,
                                         const Message& request);

  // End detection.
  void EndHandleSignal(NodeId coordinator, const Message& msg);
  void EndHandleDrainCheck(NodeId at, const Message& msg);
  void EndHandleDrainConfirm(NodeId coordinator, const Message& msg);
  void EndHandleEnded(NodeId at, const Message& msg);
  void TryConfirmDrain(NodeId n, OpId op);
  void FlushProducerResidue(NodeId n, OpId producer);
  void MarkOpEndedEverywhere(OpId op);  // SP fast path

  void FinalizeMetrics();
  Status VerifyConservation() const;

  sim::SystemConfig cfg_;
  Strategy strategy_;
  double instr_ns_ = 25.0;

  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<CompiledPlan> compiled_;
  std::vector<std::unique_ptr<SmNode>> nodes_;
  std::vector<std::unique_ptr<EmissionLedger>> ledgers_;  // per producer op
  /// Thread slots owning queues of each op (DP: all threads; FP: the
  /// allocated subset; SP: unused).
  std::vector<std::vector<uint32_t>> fp_threads_of_op_;

  // Coordinator (node 0) end-detection state.
  std::vector<std::set<NodeId>> end_signals_;
  std::vector<std::set<NodeId>> drain_confirms_;
  std::vector<char> op_globally_ended_;
  uint32_t ops_ended_count_ = 0;

  // SP chain tracking.
  std::vector<uint64_t> sp_triggers_left_;
  size_t sp_chain_cursor_ = 0;
  uint32_t sp_rr_ = 0;  ///< round-robin cursor for SP CPU batches

  Rng rng_;
  RunMetrics metrics_;
  bool done_ = false;
};

}  // namespace hierdb::exec

#endif  // HIERDB_EXEC_ENGINE_H_
