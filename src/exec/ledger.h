// Emission ledgers: exact, deterministic apportionment of an operator's
// output tuples over the consumer's buckets.
//
// The simulator models data contents numerically (the paper does the same:
// "query execution does not depend on relation content"). A ledger tracks,
// for one producer operator, how many of its output tuples have been
// emitted to each consumer bucket, and guarantees that after the producer
// has consumed its entire input, every bucket has received exactly its
// (possibly Zipf-skewed) share — so downstream tuple conservation is exact
// and operator-end detection can rely on it.

#ifndef HIERDB_EXEC_LEDGER_H_
#define HIERDB_EXEC_LEDGER_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace hierdb::exec {

class EmissionLedger {
 public:
  /// `input_total`: producer input tuples; `bucket_shares`: output tuples
  /// owed to each consumer bucket (sum = producer output total).
  EmissionLedger(uint64_t input_total, std::vector<uint64_t> bucket_shares);

  /// Registers `input_consumed` more input tuples and returns the output
  /// emissions due: a list of (bucket, tuple-count) pairs. Deterministic;
  /// after input_total tuples every bucket has exactly its share.
  std::vector<std::pair<uint32_t, uint64_t>> Emit(uint64_t input_consumed);

  uint64_t input_total() const { return input_total_; }
  uint64_t input_seen() const { return input_seen_; }
  uint64_t output_total() const { return output_total_; }
  uint64_t output_emitted() const { return output_emitted_; }
  bool Exhausted() const { return input_seen_ == input_total_; }

 private:
  uint64_t input_total_;
  uint64_t input_seen_ = 0;
  uint64_t output_total_ = 0;
  uint64_t output_emitted_ = 0;
  std::vector<uint64_t> shares_;
  std::vector<uint64_t> emitted_;
};

}  // namespace hierdb::exec

#endif  // HIERDB_EXEC_LEDGER_H_
