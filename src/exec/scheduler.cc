// Scheduler-side protocols: global load balancing (Section 3.2 / 4) and
// distributed operator-end detection (Section 4).

#include <algorithm>

#include "exec/engine.h"

namespace hierdb::exec {

namespace {
constexpr NodeId kCoordinator = 0;
constexpr SimTime kLbCooldown = SimTime{5} * kMillisecond;
}  // namespace

// ---------------------------------------------------------------------
// Global load balancing.
// ---------------------------------------------------------------------

void Engine::WorkerStarving(NodeId n, OpId fp_target_op) {
  if (!cfg_.enable_global_lb || num_nodes() < 2) return;
  SmNode& nd = *nodes_[n];
  if (nd.lb_requesting) return;
  if (sim_.Now() - nd.last_lb_request < kLbCooldown) {
    // Rate-limited: schedule a later retry kick so idle workers re-check.
    sim_.ScheduleAfter(kLbCooldown, [this, n]() { KickAllWorkers(n); });
    return;
  }
  nd.lb_requesting = true;
  nd.lb_target_op = fp_target_op;
  nd.last_lb_request = sim_.Now();
  nd.lb_replies_pending = num_nodes() - 1;
  nd.lb_candidates.clear();
  ++metrics_.starving_requests;
  for (NodeId other = 0; other < num_nodes(); ++other) {
    if (other == n) continue;
    Message m;
    m.kind = Message::Kind::kStarving;
    m.op = fp_target_op;
    m.targeted = (fp_target_op != kNoOp);
    m.mem_available = cfg_.node_memory_bytes;
    SendMessage(n, other, std::move(m), sim::TrafficClass::kControl);
  }
}

std::optional<Message> Engine::LbFindCandidate(NodeId provider,
                                               const Message& request) {
  SmNode& nd = *nodes_[provider];
  const NodeId requester = request.from;
  double best_ratio = 0.0;
  Message best;
  best.kind = Message::Kind::kCandidateReply;
  best.has_candidate = false;

  uint64_t total_backlog = 0;
  for (OpId o = 0; o < compiled_->num_ops(); ++o) {
    const CompiledOp& cop = compiled_->op(o);
    // Conditions of Section 3.2: only probe activations can be acquired
    // (iv); blocked operators are pointless to move (v); operators already
    // in the end-detection protocol are off limits (consistency).
    if (!cop.def.IsProbe()) continue;
    if (!nd.op_unblocked[o] || nd.op_ended[o] || nd.end_signaled[o]) continue;
    if (request.targeted && request.op != o) continue;
    const CompiledOp& build = compiled_->op(cop.def.build_op);
    for (uint32_t slot = 0; slot < nd.queues[o].size(); ++slot) {
      ActivationQueue* q = nd.queues[o][slot].get();
      if (q == nullptr || q->Empty()) continue;
      // Never offer work that was itself acquired by load balancing:
      // re-stealing would ping-pong activations (and their data) between
      // starving nodes.
      if (q->is_lb_queue()) continue;
      total_backlog += q->backlog_tuples();
      // Acquisition overhead: activation tuples + hash tables of the
      // distinct buckets referenced, minus tables the requester already
      // copied (the "list of stolen queues" optimization).
      uint64_t act_bytes = q->backlog_tuples() * cfg_.tuple_size_bytes;
      uint64_t ht = 0;
      std::set<uint32_t> buckets;
      for (const Activation& a : q->items_view()) {
        if (buckets.insert(a.bucket).second &&
            nodes_[requester]->ht_copies[o].count(a.bucket) == 0) {
          ht += build.ht_bytes[a.bucket];
        }
      }
      uint64_t bytes = act_bytes + ht;
      if (bytes > request.mem_available) continue;  // condition (i)
      // Condition (ii): enough work to amortize the acquisition.
      double benefit_ns = static_cast<double>(q->backlog_tuples()) *
                          cfg_.cost.probe_instr_per_tuple * instr_ns_;
      double transfer_ns =
          static_cast<double>(cfg_.net.end_to_end_delay) +
          (net_->SendCpuInstr(bytes) + net_->RecvCpuInstr(bytes)) * instr_ns_;
      if (benefit_ns < transfer_ns) continue;
      double ratio = benefit_ns / (transfer_ns + 1.0);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best.has_candidate = true;
        best.op = o;
        best.slot = slot;
        best.transfer_bytes = bytes;
      }
    }
  }
  best.load_tuples = total_backlog;
  return best;
}

void Engine::LbHandleStarving(NodeId at, const Message& msg) {
  std::optional<Message> reply = LbFindCandidate(at, msg);
  SendMessage(at, msg.from, std::move(*reply), sim::TrafficClass::kControl);
}

void Engine::LbHandleReply(NodeId at, const Message& msg) {
  SmNode& nd = *nodes_[at];
  if (!nd.lb_requesting) return;  // stale reply
  HIERDB_CHECK(nd.lb_replies_pending > 0, "unexpected LB reply");
  --nd.lb_replies_pending;
  if (msg.has_candidate) {
    // Skip ops for which this node has an outstanding drain confirmation:
    // acquiring their work would break end detection.
    if (!(nd.drain_confirmed[msg.op] && !nd.op_ended[msg.op])) {
      nd.lb_candidates.push_back(SmNode::LbCandidate{
          msg.from, msg.op, msg.slot, msg.load_tuples, msg.transfer_bytes});
    }
  }
  if (nd.lb_replies_pending > 0) return;

  if (nd.lb_candidates.empty()) {
    nd.lb_requesting = false;
    // Nothing to steal now; retry later while work may still appear.
    sim_.ScheduleAfter(kLbCooldown, [this, at]() { KickAllWorkers(at); });
    return;
  }
  // Select the most loaded provider (Section 4, global activation
  // selection).
  std::sort(nd.lb_candidates.begin(), nd.lb_candidates.end(),
            [](const SmNode::LbCandidate& a, const SmNode::LbCandidate& b) {
              if (a.load != b.load) return a.load > b.load;
              return a.provider < b.provider;
            });
  const auto& chosen = nd.lb_candidates.front();
  Message m;
  m.kind = Message::Kind::kAcquire;
  m.op = chosen.op;
  m.slot = chosen.slot;
  SendMessage(at, chosen.provider, std::move(m), sim::TrafficClass::kControl);
}

void Engine::LbHandleAcquire(NodeId at, const Message& msg) {
  SmNode& nd = *nodes_[at];
  Message reply;
  reply.kind = Message::Kind::kTransfer;
  reply.op = msg.op;

  ActivationQueue* q = nd.queues[msg.op][msg.slot].get();
  const bool still_valid = q != nullptr && !q->Empty() &&
                           nd.op_unblocked[msg.op] && !nd.op_ended[msg.op] &&
                           !nd.end_signaled[msg.op];
  if (still_valid) {
    const CompiledOp& cop = compiled_->op(msg.op);
    const CompiledOp& build = compiled_->op(cop.def.build_op);
    reply.activations = q->TakeAll();
    std::set<uint32_t> buckets;
    for (const Activation& a : reply.activations) {
      if (buckets.insert(a.bucket).second &&
          nodes_[msg.from]->ht_copies[msg.op].count(a.bucket) == 0) {
        reply.ht_bytes += build.ht_bytes[a.bucket];
        ++reply.ht_buckets;
      }
    }
    for (uint32_t b : buckets) {
      nodes_[msg.from]->ht_copies[msg.op].insert(b);
    }
    nodes_[msg.from]->pending[msg.op] += 1;
    // Provider-side bookkeeping: the drained queue may end the op here.
    CheckLocalEnd(at, msg.op);
    TryConfirmDrain(at, msg.op);
  }
  SendMessage(at, msg.from, std::move(reply),
              sim::TrafficClass::kLoadBalance);
}

void Engine::LbHandleTransfer(NodeId at, Message msg) {
  SmNode& nd = *nodes_[at];
  nd.lb_requesting = false;
  if (msg.activations.empty()) {
    sim_.ScheduleAfter(kLbCooldown, [this, at]() { KickAllWorkers(at); });
    return;
  }
  HIERDB_CHECK(nd.pending[msg.op] > 0, "transfer without pending mark");
  nd.pending[msg.op] -= 1;
  ++metrics_.global_steals;
  metrics_.stolen_activations += msg.activations.size();
  metrics_.ht_buckets_copied += msg.ht_buckets;

  // Install into the node's LB queue for that operator.
  auto& slot = nd.queues[msg.op][nd.lb_slot()];
  if (!slot) {
    slot = std::make_unique<ActivationQueue>(msg.op, at, nd.lb_slot(),
                                             UINT32_MAX, /*lb=*/true);
    RebuildActiveList(at);
  }
  for (const Activation& a : msg.activations) slot->Push(a);
  KickAllWorkers(at);
}

// ---------------------------------------------------------------------
// Operator-end detection (Section 4): a two-phase protocol run by the
// coordinator scheduler; 4N messages per operator.
// ---------------------------------------------------------------------

void Engine::CheckLocalEnd(NodeId n, OpId op) {
  if (strategy_ == Strategy::kSP) return;
  SmNode& nd = *nodes_[n];
  if (nd.end_signaled[op] || nd.op_ended[op]) return;
  const CompiledOp& cop = compiled_->op(op);
  // The producer of a scan is the trigger generator, terminated at start.
  if (!cop.def.IsScan() && !nd.op_ended[cop.def.input]) return;
  if (nd.pending[op] != 0) return;
  for (auto& q : nd.queues[op]) {
    if (q && !q->Empty()) return;
  }
  nd.end_signaled[op] = 1;
  Message m;
  m.kind = Message::Kind::kEndOfQueuesAtNode;
  m.op = op;
  SendMessage(n, kCoordinator, std::move(m), sim::TrafficClass::kControl);
}

void Engine::EndHandleSignal(NodeId coordinator, const Message& msg) {
  HIERDB_CHECK(coordinator == kCoordinator, "signal at non-coordinator");
  auto& sigs = end_signals_[msg.op];
  sigs.insert(msg.from);
  if (sigs.size() < num_nodes()) return;
  for (NodeId n = 0; n < num_nodes(); ++n) {
    Message m;
    m.kind = Message::Kind::kDrainCheck;
    m.op = msg.op;
    SendMessage(kCoordinator, n, std::move(m), sim::TrafficClass::kControl);
  }
}

void Engine::EndHandleDrainCheck(NodeId at, const Message& msg) {
  nodes_[at]->drain_requested[msg.op] = 1;
  TryConfirmDrain(at, msg.op);
}

void Engine::TryConfirmDrain(NodeId n, OpId op) {
  SmNode& nd = *nodes_[n];
  if (!nd.drain_requested[op] || nd.drain_confirmed[op]) return;
  if (nd.inflight[op] != 0 || nd.pending[op] != 0) return;
  for (auto& q : nd.queues[op]) {
    if (q && !q->Empty()) return;
  }
  // Flush this operator's partially filled output batches downstream
  // before confirming: consumers must observe all of its output.
  FlushProducerResidue(n, op);
  nd.drain_confirmed[op] = 1;
  Message m;
  m.kind = Message::Kind::kDrainConfirm;
  m.op = op;
  SendMessage(n, kCoordinator, std::move(m), sim::TrafficClass::kControl);
}

void Engine::FlushProducerResidue(NodeId n, OpId producer) {
  const CompiledOp& cop = compiled_->op(producer);
  if (cop.def.consumer == kNoOp || cop.def.IsBuild()) return;
  OpId consumer = cop.def.consumer;
  SmNode& nd = *nodes_[n];
  double instr = 0.0;
  for (uint32_t b = 0; b < cfg_.buckets_per_operator; ++b) {
    if (nd.accum[consumer][b] == 0) continue;
    ActivationQueue* blocked =
        FlushBucket(n, consumer, b, /*force=*/true, &instr);
    HIERDB_CHECK(blocked == nullptr, "forced flush cannot block");
  }
  nd.scheduler_busy_ns += InstrNs(instr);
}

void Engine::EndHandleDrainConfirm(NodeId coordinator, const Message& msg) {
  HIERDB_CHECK(coordinator == kCoordinator, "confirm at non-coordinator");
  auto& confirms = drain_confirms_[msg.op];
  confirms.insert(msg.from);
  if (confirms.size() < num_nodes()) return;
  op_globally_ended_[msg.op] = 1;
  metrics_.op_end_time[msg.op] = sim_.Now();
  if (++ops_ended_count_ == compiled_->num_ops()) {
    done_ = true;
    metrics_.response_time = sim_.Now();
  }
  for (NodeId n = 0; n < num_nodes(); ++n) {
    Message m;
    m.kind = Message::Kind::kOperatorEnded;
    m.op = msg.op;
    SendMessage(kCoordinator, n, std::move(m), sim::TrafficClass::kControl);
  }
}

void Engine::EndHandleEnded(NodeId at, const Message& msg) {
  SmNode& nd = *nodes_[at];
  if (nd.op_ended[msg.op]) return;
  nd.op_ended[msg.op] = 1;

  // Unblock operators whose blockers have now all ended.
  bool changed = false;
  for (OpId o = 0; o < compiled_->num_ops(); ++o) {
    if (nd.op_unblocked[o] || nd.op_ended[o]) continue;
    bool all_ended = true;
    for (OpId b : compiled_->op(o).blockers) {
      if (!nd.op_ended[b]) {
        all_ended = false;
        break;
      }
    }
    if (all_ended) {
      nd.op_unblocked[o] = 1;
      changed = true;
    }
  }
  RebuildActiveList(at);
  (void)changed;

  // The ended operator was the producer of its consumer: the consumer may
  // now be locally complete too.
  const CompiledOp& cop = compiled_->op(msg.op);
  if (cop.def.consumer != kNoOp) {
    CheckLocalEnd(at, cop.def.consumer);
    TryConfirmDrain(at, cop.def.consumer);
  }
  KickAllWorkers(at);
}

}  // namespace hierdb::exec
