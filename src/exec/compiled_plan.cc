#include "exec/compiled_plan.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/zipf.h"

namespace hierdb::exec {

namespace {

/// Applies a permutation in place: out[i] = in[perm[i]].
std::vector<uint64_t> Permute(const std::vector<uint64_t>& in,
                              const std::vector<uint32_t>& perm) {
  std::vector<uint64_t> out(in.size());
  for (size_t i = 0; i < in.size(); ++i) out[i] = in[perm[i]];
  return out;
}

std::vector<uint32_t> RandomPermutation(uint32_t n, Rng* rng) {
  std::vector<uint32_t> p(n);
  std::iota(p.begin(), p.end(), 0);
  for (uint32_t i = n - 1; i > 0; --i) {
    uint32_t j = static_cast<uint32_t>(rng->NextBounded(i + 1));
    std::swap(p[i], p[j]);
  }
  return p;
}

}  // namespace

CompiledPlan::CompiledPlan(const plan::PhysicalPlan& plan,
                           const catalog::Catalog& cat,
                           const sim::SystemConfig& cfg, double skew_theta,
                           Rng* rng)
    : plan_(&plan), cat_(&cat), cfg_(&cfg), skew_theta_(skew_theta) {
  ops_.resize(plan.ops.size());
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    ops_[i].def = plan.ops[i];
  }
  for (const auto& c : plan.constraints) {
    ops_[c.after].blockers.push_back(c.before);
  }
  ComputeCards();
  ComputeShares(rng);
  ComputeTriggers(rng);
  ComputeSpChains();
}

void CompiledPlan::ComputeCards() {
  // Operator ids are topological in dataflow order (children created
  // before parents by macro-expansion), so a single forward pass works.
  for (auto& cop : ops_) {
    const plan::Operator& d = cop.def;
    switch (d.kind) {
      case plan::OpKind::kScan:
        cop.in_tuples = cat_->relation(d.rel).cardinality;
        // Scan-level filters: the scan reads its full input and emits the
        // passing fraction.
        cop.out_tuples = static_cast<uint64_t>(std::llround(
            static_cast<double>(cop.in_tuples) * d.filter_sel));
        break;
      case plan::OpKind::kBuild:
      case plan::OpKind::kAggMerge:
        cop.in_tuples = ops_[d.input].out_tuples;
        cop.out_tuples = 0;  // blocking terminal
        break;
      case plan::OpKind::kProbe:
      case plan::OpKind::kAggPartial: {
        cop.in_tuples = ops_[d.input].out_tuples;
        double expansion =
            d.input_card > 0.0 ? d.output_card / d.input_card : 0.0;
        cop.out_tuples = static_cast<uint64_t>(
            std::llround(expansion * static_cast<double>(cop.in_tuples)));
        break;
      }
    }
  }
}

void CompiledPlan::ComputeShares(Rng* rng) {
  const uint32_t nb = cfg_->buckets_per_operator;
  // One bucket permutation per join so that the build and probe of a join
  // see correlated skew (both sides use the same hash function).
  for (auto& cop : ops_) {
    if (!cop.def.IsBuild()) continue;
    OpId b = cop.def.id;
    OpId p = cop.def.probe_op;
    std::vector<uint32_t> perm = RandomPermutation(nb, rng);
    ops_[b].in_shares =
        Permute(ZipfApportion(ops_[b].in_tuples, nb, skew_theta_), perm);
    ops_[p].in_shares =
        Permute(ZipfApportion(ops_[p].in_tuples, nb, skew_theta_), perm);
    ops_[b].ht_bytes.resize(nb);
    for (uint32_t k = 0; k < nb; ++k) {
      ops_[b].ht_bytes[k] = static_cast<uint64_t>(
          static_cast<double>(ops_[b].in_shares[k]) * cfg_->tuple_size_bytes *
          cfg_->hash_table_overhead);
    }
    for (OpId o : {b, p}) {
      uint64_t mean_share =
          std::max<uint64_t>(1, ops_[o].in_tuples / nb);
      ops_[o].flush_threshold = std::clamp<uint64_t>(
          mean_share / std::max(1u, cfg_->pipeline_flush_chunks), 1,
          cfg_->activation_batch_tuples);
    }
  }
  // Aggregation ops consume data activations like probes do: give them
  // bucket shares (group-hash partitions) and flush thresholds so the
  // generic ledger/dataflow machinery prices them. Aggregation hashes on
  // the group key — uncorrelated with the join hash — so each op draws a
  // fresh permutation.
  for (auto& cop : ops_) {
    if (!cop.def.IsAgg()) continue;
    OpId o = cop.def.id;
    std::vector<uint32_t> perm = RandomPermutation(nb, rng);
    ops_[o].in_shares =
        Permute(ZipfApportion(ops_[o].in_tuples, nb, skew_theta_), perm);
    uint64_t mean_share = std::max<uint64_t>(1, ops_[o].in_tuples / nb);
    ops_[o].flush_threshold = std::clamp<uint64_t>(
        mean_share / std::max(1u, cfg_->pipeline_flush_chunks), 1,
        cfg_->activation_batch_tuples);
  }
}

void CompiledPlan::ComputeTriggers(Rng* rng) {
  triggers_.assign(ops_.size(), {});
  const uint32_t n_nodes = cfg_->num_nodes;
  const uint64_t tuples_per_page =
      std::max<uint64_t>(1, cfg_->page_size_bytes / cfg_->tuple_size_bytes);
  const uint32_t disks_per_node = cfg_->procs_per_node * cfg_->disks_per_proc;

  for (auto& cop : ops_) {
    if (!cop.def.IsScan()) continue;
    triggers_[cop.def.id].resize(n_nodes);
    uint64_t card = cop.in_tuples;
    for (NodeId n = 0; n < n_nodes; ++n) {
      // Hash partitioning: near-even node shares, remainder to low nodes.
      uint64_t node_tuples = card / n_nodes + (n < card % n_nodes ? 1 : 0);
      NodeTriggers& nt = triggers_[cop.def.id][n];
      uint64_t tuples_per_trigger = tuples_per_page * cfg_->trigger_pages;
      uint64_t remaining = node_tuples;
      uint32_t idx = 0;
      while (remaining > 0) {
        uint64_t t = std::min(remaining, tuples_per_trigger);
        Activation a;
        a.op = cop.def.id;
        a.bucket = idx;
        a.tuples = t;
        a.pages = static_cast<uint32_t>(
            (t * cfg_->tuple_size_bytes + cfg_->page_size_bytes - 1) /
            cfg_->page_size_bytes);
        a.disk = idx % disks_per_node;
        nt.triggers.push_back(a);
        remaining -= t;
        ++idx;
      }
      // Skewed assignment of triggers to scan queues (trigger-production
      // skew, Section 5.2.2). Default slot count: all node threads.
      uint32_t slots = cfg_->procs_per_node;
      auto counts = ZipfApportion(
          static_cast<uint64_t>(nt.triggers.size()), slots, skew_theta_, rng);
      nt.queue_slot.reserve(nt.triggers.size());
      for (uint32_t s = 0; s < slots; ++s) {
        for (uint64_t k = 0; k < counts[s]; ++k) {
          nt.queue_slot.push_back(s);
        }
      }
    }
  }
}

NodeTriggers CompiledPlan::ReassignTriggers(OpId op, NodeId n, uint32_t slots,
                                            Rng* rng) const {
  NodeTriggers out;
  out.triggers = triggers_[op][n].triggers;
  auto counts = ZipfApportion(static_cast<uint64_t>(out.triggers.size()),
                              slots, skew_theta_, rng);
  out.queue_slot.reserve(out.triggers.size());
  for (uint32_t s = 0; s < slots; ++s) {
    for (uint64_t k = 0; k < counts[s]; ++k) out.queue_slot.push_back(s);
  }
  return out;
}

void CompiledPlan::ComputeSpChains() {
  const auto& cost = cfg_->cost;
  for (const auto& ch : plan_->chains) {
    SpChain sc;
    sc.chain_id = ch.id;
    sc.scan = ch.ops[0];
    for (OpId o : ch.ops) {
      const CompiledOp& cop = ops_[o];
      SpStage st;
      st.op = o;
      switch (cop.def.kind) {
        case plan::OpKind::kScan:
          st.instr_per_tuple =
              cost.scan_instr_per_tuple + cost.result_instr_per_tuple;
          st.expansion = cop.def.filter_sel;
          break;
        case plan::OpKind::kProbe:
          st.expansion =
              cop.in_tuples > 0 ? static_cast<double>(cop.out_tuples) /
                                      static_cast<double>(cop.in_tuples)
                                : 0.0;
          st.instr_per_tuple = cost.probe_instr_per_tuple +
                               st.expansion * cost.result_instr_per_tuple;
          break;
        case plan::OpKind::kAggPartial:
          st.expansion =
              cop.in_tuples > 0 ? static_cast<double>(cop.out_tuples) /
                                      static_cast<double>(cop.in_tuples)
                                : 0.0;
          st.instr_per_tuple = cost.agg_update_instr_per_tuple;
          break;
        case plan::OpKind::kBuild:
          st.instr_per_tuple = cost.build_instr_per_tuple;
          st.expansion = 0.0;
          break;
        case plan::OpKind::kAggMerge:
          st.instr_per_tuple = cost.agg_merge_instr_per_tuple;
          st.expansion = 0.0;
          break;
      }
      sc.stages.push_back(st);
    }
    sp_chains_.push_back(std::move(sc));
  }
}

double CompiledPlan::IoInstrEquivalent(double tuples) const {
  double pages =
      tuples * cfg_->tuple_size_bytes / cfg_->page_size_bytes;
  double requests = pages / cfg_->trigger_pages;
  double per_request_ns =
      static_cast<double>(cfg_->disk.latency + cfg_->disk.seek_time) +
      static_cast<double>(cfg_->trigger_pages) * cfg_->page_size_bytes /
          cfg_->disk.transfer_bytes_per_sec * 1e9;
  double total_ns = requests * per_request_ns;
  return total_ns * cfg_->mips / 1000.0 + requests * cfg_->disk.async_init_instr;
}

std::vector<double> CompiledPlan::EstimateOpCosts(
    const std::vector<double>& op_factor) const {
  const auto& cost = cfg_->cost;
  auto factor = [&](OpId o) {
    return o < op_factor.size() ? op_factor[o] : 1.0;
  };
  std::vector<double> out(ops_.size(), 0.0);
  for (const auto& cop : ops_) {
    const plan::Operator& d = cop.def;
    switch (d.kind) {
      case plan::OpKind::kScan: {
        // Thread occupancy: per-tuple CPU plus the share of disk time not
        // hidden by the asynchronous prefetch window.
        double in = static_cast<double>(cop.in_tuples) * factor(d.id);
        out[d.id] = in * (cost.scan_instr_per_tuple +
                          cost.result_instr_per_tuple) +
                    IoInstrEquivalent(in) /
                        std::max(1u, cfg_->io_prefetch_depth);
        break;
      }
      case plan::OpKind::kBuild: {
        double in = static_cast<double>(cop.in_tuples) * factor(d.input);
        out[d.id] = in * cost.build_instr_per_tuple;
        break;
      }
      case plan::OpKind::kProbe: {
        double in = static_cast<double>(cop.in_tuples) * factor(d.input);
        double produced =
            static_cast<double>(cop.out_tuples) * factor(d.id);
        out[d.id] = in * cost.probe_instr_per_tuple +
                    produced * cost.result_instr_per_tuple;
        break;
      }
      case plan::OpKind::kAggPartial: {
        double in = static_cast<double>(cop.in_tuples) * factor(d.input);
        out[d.id] = in * cost.agg_update_instr_per_tuple;
        break;
      }
      case plan::OpKind::kAggMerge: {
        double in = static_cast<double>(cop.in_tuples) * factor(d.input);
        out[d.id] = in * cost.agg_merge_instr_per_tuple +
                    in * cost.result_instr_per_tuple;
        break;
      }
    }
  }
  return out;
}

}  // namespace hierdb::exec
