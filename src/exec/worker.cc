// Worker threads (one per processor, Section 3.1): the dispatch loop,
// local activation selection over the circular queue list (Section 4,
// Figure 5), and the execution of activations as resumable frames whose
// blocking actions are escaped by nesting into another activation.

#include <algorithm>

#include "exec/engine.h"

namespace hierdb::exec {

namespace {
/// Blocking-escape nesting is bounded by the number of operators in
/// practice (a queue-blocked op is never re-entered); this is a safety
/// valve against pathological plans.
constexpr size_t kMaxStackDepth = 64;

enum class StepResult { kContinue, kBlockedIo, kBlockedQueue, kDone };
}  // namespace

void Worker::Kick() {
  // No-op while a continuation is already scheduled or while this worker
  // is the one running right now (events triggered by its own side
  // effects — e.g. a local enqueue — must not double-schedule it).
  if (continuation_pending_ || running_) return;
  continuation_pending_ = true;
  eng_->simulator().ScheduleAfter(0, [this]() {
    continuation_pending_ = false;
    Dispatch();
  });
}

void Worker::OnIoComplete(uint64_t frame_serial) {
  for (auto& f : stack_) {
    if (f.serial == frame_serial) {
      f.io_complete = true;
      break;
    }
  }
  Kick();
}

bool Worker::CanResumeTop() const {
  if (stack_.empty()) return false;
  const Frame& f = stack_.back();
  if (f.waiting_io) return f.io_complete;
  if (f.wait_queue != nullptr) return !f.wait_queue->Full();
  return true;
}

// Suspended frames are independent activations — the stack order is an
// artifact of the procedure-call escape, not a dependency. Blocking
// conditions clear in arbitrary order (reads complete in disk order,
// queues drain when consumers run), so when the top frame is still
// blocked but a buried frame has become resumable, rotate the resumable
// one to the top. Without this, a resumable frame buried under blocked
// ones can deadlock the node (every worker holding a blocked frame of the
// operator everyone else needs consumed).
void Worker::RotateResumableToTop() {
  if (stack_.empty() || CanResumeTop()) return;
  for (size_t i = stack_.size(); i-- > 0;) {
    const Frame& f = stack_[i];
    const bool resumable =
        f.waiting_io ? f.io_complete
                     : (f.wait_queue != nullptr && !f.wait_queue->Full());
    if (resumable) {
      std::rotate(stack_.begin() + i, stack_.begin() + i + 1, stack_.end());
      return;
    }
  }
}

void Worker::Dispatch() {
  running_ = true;
  DispatchImpl();
  running_ = false;
}

void Worker::DispatchImpl() {
  if (eng_->done()) return;
  RotateResumableToTop();
  if (CanResumeTop()) {
    RunBurst(0.0);
    return;
  }
  if (stack_.size() < kMaxStackDepth && SelectAndRun()) return;
  // Nothing to do locally. If the whole stack is empty this thread (and,
  // if all queues are dry, this SM-node) is starving: ask the scheduler
  // for global work (Section 3.2).
  if (stack_.empty()) {
    if (eng_->strategy() == Strategy::kDP) {
      // The node starves only when no unblocked queue holds work.
      bool any = false;
      for (ActivationQueue* q : eng_->node(node_).active_list) {
        if (!q->Empty()) {
          any = true;
          break;
        }
      }
      if (!any) eng_->WorkerStarving(node_, kNoOp);
    } else if (eng_->strategy() == Strategy::kFP) {
      for (OpId o : assignment_.fp_ops) {
        const CompiledOp& cop = eng_->compiled().op(o);
        SmNode& nd = eng_->node(node_);
        if (!cop.def.IsProbe()) continue;
        if (!nd.op_unblocked[o] || nd.op_ended[o] || nd.end_signaled[o]) {
          continue;
        }
        eng_->WorkerStarving(node_, o);
        break;
      }
    }
  }
  // Idle until kicked by new work, queue space, I/O or protocol events.
}

// "The procedure ProcessAnotherActivation will not consume activations of
// the same operator in order to avoid new blocking situations" (Section
// 4). The kind is part of the identity: a scan's trigger (blocks on I/O)
// and SP's shared CPU batches (never block) are different work classes.
// Exception: a bounded number of I/O-blocked triggers of the same scan may
// be nested — that is asynchronous prefetch within the I/O cache window,
// without which a thread dedicated to a scan (FP) would idle through every
// disk access.
bool Worker::OpConflictsWithStack(OpId op, bool is_trigger) const {
  const uint32_t prefetch = eng_->cfg().io_prefetch_depth;
  uint32_t same_trigger = 0;
  for (const Frame& f : stack_) {
    if (f.act.op != op || f.act.IsTrigger() != is_trigger) continue;
    if (is_trigger && f.waiting_io) {
      // Only reads still in flight occupy prefetch-window slots.
      if (!f.io_complete && ++same_trigger >= prefetch) return true;
      continue;
    }
    return true;
  }
  return false;
}

bool Worker::TryConsume(ActivationQueue* q, bool primary) {
  if (q->Empty()) return false;
  if (OpConflictsWithStack(q->op(), q->items_view().front().IsTrigger())) {
    return false;
  }

  const auto& cost = eng_->cfg().cost;
  double instr = cost.dispatch_instr;
  if (eng_->strategy() != Strategy::kSP) {
    // SP has no activation queues in the real system (procedure-call
    // pipelining over shared buffers); DP/FP pay per-queue costs.
    instr += cost.queue_op_instr;
    if (!primary) {
      instr += cost.nonprimary_latch_instr;
      ++eng_->metrics().nonprimary_consumptions;
    }
  }
  const bool was_full = q->Full();
  Frame f;
  f.act = q->Pop();
  f.serial = next_frame_serial_++;
  eng_->OnFrameStart(node_, f.act.op);
  if (was_full) {
    // Space freed: producers blocked on this queue by flow control can
    // resume their suspended frames.
    eng_->KickAllWorkers(node_);
  }
  if (q->Empty()) {
    eng_->CheckLocalEnd(node_, q->op());
  }
  stack_.push_back(std::move(f));
  RunBurst(instr);
  return true;
}

bool Worker::SelectAndRun() {
  SmNode& nd = eng_->node(node_);
  const Strategy strat = eng_->strategy();

  if (strat == Strategy::kDP) {
    const auto& list = nd.active_list;
    if (list.empty()) return false;
    const size_t start = nd.start_pos[idx_];
    const bool affinity = eng_->cfg().primary_queue_affinity;
    // Pass 1: primary queues only (queues owned by this thread); pass 2:
    // any queue of the node.
    for (int pass = affinity ? 0 : 1; pass < 2; ++pass) {
      for (size_t k = 0; k < list.size(); ++k) {
        ActivationQueue* q = list[(start + k) % list.size()];
        const bool primary = q->owner_thread() == idx_;
        if (pass == 0 && !primary) continue;
        if (TryConsume(q, primary)) return true;
      }
    }
    return false;
  }

  if (strat == Strategy::kFP) {
    for (OpId o : assignment_.fp_ops) {
      if (!nd.op_unblocked[o] || nd.op_ended[o]) continue;
      // Own queue first, then the op's other queues (intra-operator load
      // balancing), then the op's LB queue.
      auto& qs = nd.queues[o];
      if (qs[idx_] && TryConsume(qs[idx_].get(), /*primary=*/true)) {
        return true;
      }
      for (uint32_t s = 0; s < qs.size(); ++s) {
        if (s == idx_ || !qs[s]) continue;
        if (TryConsume(qs[s].get(), /*primary=*/false)) return true;
      }
    }
    return false;
  }

  // SP: consume trigger activations of the current chain's driving scan.
  const auto& order = eng_->compiled().plan().chain_order;
  if (eng_->sp_chain_cursor() >= order.size()) return false;
  const auto& chain = eng_->compiled().plan().chains[
      order[eng_->sp_chain_cursor()]];
  OpId scan = chain.ops[0];
  auto& qs = nd.queues[scan];
  if (qs[idx_] && TryConsume(qs[idx_].get(), /*primary=*/true)) return true;
  for (uint32_t s = 0; s < qs.size(); ++s) {
    if (s == idx_ || !qs[s]) continue;
    if (TryConsume(qs[s].get(), /*primary=*/false)) return true;
  }
  return false;
}

void Worker::RunBurst(double initial_instr) {
  double instr = initial_instr;
  HIERDB_CHECK(!stack_.empty(), "burst without a frame");
  const OpId burst_op = stack_.back().act.op;
  while (true) {
    Frame& f = stack_.back();
    const bool is_done = StepFrame(f, &instr);
    const StepResult r =
        is_done ? StepResult::kDone
        : (f.waiting_io && !f.io_complete) ? StepResult::kBlockedIo
                                           : StepResult::kBlockedQueue;
    if (r == StepResult::kDone) {
      Activation done_act = f.act;
      stack_.pop_back();
      ++eng_->metrics().activations_processed;
      // Under SP a trigger's tuples are re-counted by the CPU batches it
      // publishes; count them once.
      if (!(eng_->strategy() == Strategy::kSP && done_act.IsTrigger())) {
        eng_->metrics().tuples_processed += done_act.tuples;
        eng_->metrics().op_tuples_in[done_act.op] += done_act.tuples;
      }
      eng_->OnFrameDone(node_, done_act.op);
      break;
    }
    if (r == StepResult::kBlockedIo) {
      ++eng_->metrics().suspensions_io;
    } else {
      ++eng_->metrics().suspensions_queue;
    }
    break;
  }
  eng_->metrics().op_busy_ns[burst_op] +=
      static_cast<double>(eng_->InstrNs(instr));
  FinishBurst(instr);
}

void Worker::FinishBurst(double instr) {
  SimTime ns = eng_->InstrNs(instr);
  busy_ns_ += ns;
  eng_->RecordBusy(eng_->simulator().Now(), ns);
  HIERDB_CHECK(!continuation_pending_, "burst while continuation pending");
  continuation_pending_ = true;
  eng_->simulator().ScheduleAfter(ns, [this]() {
    continuation_pending_ = false;
    Dispatch();
  });
}

/// Executes frame steps until the frame blocks or completes.
/// Returns true when the frame is done.
bool Worker::StepFrame(Frame& f, double* instr) {
  Engine& e = *eng_;
  const CompiledOp& cop = e.compiled().op(f.act.op);
  const auto& cost = e.cfg().cost;
  SmNode& nd = e.node(node_);

  while (true) {
    switch (f.pc) {
      case 0: {  // start: trigger activations issue asynchronous I/O
        if (f.act.IsTrigger()) {
          *instr += e.cfg().disk.async_init_instr;
          f.waiting_io = true;
          f.io_complete = false;
          ++e.metrics().io_requests;
          Worker* self = this;
          uint64_t serial = f.serial;
          nd.disks->disk(f.act.disk).SubmitRead(
              f.act.pages,
              [self, serial]() { self->OnIoComplete(serial); });
          f.pc = 1;
          return false;  // blocked on I/O (escape via another activation)
        }
        f.pc = 1;
        break;
      }
      case 1: {  // process the activation's tuples
        f.waiting_io = false;
        if (e.strategy() == Strategy::kSP) {
          if (f.act.IsTrigger()) {
            // I/O role: the read is done; hand the tuples over as shared
            // CPU work units so that every thread of the node can pick
            // them up ([Shekita93]: CPU threads read tuples from the I/O
            // buffers and probe along the chain).
            e.SpPublishCpuBatches(node_, f.act);
          } else {
            // CPU role: carry the batch through the whole pipeline chain
            // by procedure calls — no queues, no interference.
            const SpChain& chain = e.compiled().sp_chains()[cop.def.chain];
            double t = static_cast<double>(f.act.tuples);
            for (const SpStage& st : chain.stages) {
              *instr += t * st.instr_per_tuple;
              t *= st.expansion;
            }
          }
          f.pc = 3;
          break;
        }
        switch (cop.def.kind) {
          case plan::OpKind::kScan: {
            *instr += static_cast<double>(f.act.tuples) *
                      cost.scan_instr_per_tuple;
            break;
          }
          case plan::OpKind::kBuild: {
            *instr += static_cast<double>(f.act.tuples) *
                      cost.build_instr_per_tuple;
            f.pc = 3;
            break;
          }
          case plan::OpKind::kProbe: {
            *instr += static_cast<double>(f.act.tuples) *
                      cost.probe_instr_per_tuple;
            break;
          }
          case plan::OpKind::kAggPartial: {
            // Hash + accumulate into the local partial group table.
            *instr += static_cast<double>(f.act.tuples) *
                      cost.agg_update_instr_per_tuple;
            break;
          }
          case plan::OpKind::kAggMerge: {
            // Merge repartitioned partials; result-group formation is
            // charged here (the merge is the blocking terminal).
            *instr += static_cast<double>(f.act.tuples) *
                      (cost.agg_merge_instr_per_tuple +
                       cost.result_instr_per_tuple);
            f.pc = 3;
            break;
          }
        }
        if (f.pc == 3) break;  // build: no output
        // Emit output via the operator's ledger.
        EmissionLedger* ledger = e.ledger(f.act.op);
        if (ledger != nullptr) {
          f.emissions = ledger->Emit(f.act.tuples);
          uint64_t out = 0;
          for (const auto& em : f.emissions) out += em.second;
          *instr += static_cast<double>(out) * cost.result_instr_per_tuple;
          for (const auto& em : f.emissions) {
            e.Accumulate(node_, cop.def.consumer, em.first, em.second);
          }
        } else if (cop.def.IsProbe()) {
          // Root probe: result tuples are produced for the user.
          double expansion =
              cop.in_tuples > 0 ? static_cast<double>(cop.out_tuples) /
                                      static_cast<double>(cop.in_tuples)
                                : 0.0;
          *instr += static_cast<double>(f.act.tuples) * expansion *
                    cost.result_instr_per_tuple;
          f.pc = 3;
          break;
        }
        f.pc = 2;
        break;
      }
      case 2: {  // flush emitted batches downstream (flow-controlled)
        f.wait_queue = nullptr;
        while (f.emit_idx < f.emissions.size()) {
          uint32_t b = f.emissions[f.emit_idx].first;
          ActivationQueue* full =
              e.FlushBucket(node_, cop.def.consumer, b, /*force=*/false,
                            instr);
          if (full != nullptr) {
            f.wait_queue = full;  // flow control: escape via another act
            return false;
          }
          ++f.emit_idx;
        }
        f.pc = 3;
        break;
      }
      case 3:
        return true;  // done
    }
    if (f.pc == 3) return true;
  }
}

}  // namespace hierdb::exec
