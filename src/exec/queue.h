// Activation queues (Section 3.1).
//
// One queue exists per (operator, thread) on every SM-node of the
// operator's home; a thread has priority access to its own ("primary")
// queues but may consume from any unblocked queue of its node. Queues are
// bounded; a full queue blocks the producer (flow control), which escapes
// via ProcessAnotherActivation.

#ifndef HIERDB_EXEC_QUEUE_H_
#define HIERDB_EXEC_QUEUE_H_

#include <cstdint>
#include <deque>

#include "exec/types.h"

namespace hierdb::exec {

class ActivationQueue {
 public:
  ActivationQueue(OpId op, NodeId node, uint32_t owner_thread,
                  uint32_t capacity, bool lb_queue = false)
      : op_(op),
        node_(node),
        owner_thread_(owner_thread),
        capacity_(capacity),
        lb_queue_(lb_queue) {}

  OpId op() const { return op_; }
  NodeId node() const { return node_; }
  uint32_t owner_thread() const { return owner_thread_; }
  /// True for the per-node queue that receives activations acquired from
  /// other SM-nodes by global load balancing.
  bool is_lb_queue() const { return lb_queue_; }

  bool Empty() const { return items_.empty(); }
  bool Full() const { return items_.size() >= capacity_; }
  size_t size() const { return items_.size(); }
  uint64_t backlog_tuples() const { return backlog_tuples_; }

  /// Unconditionally appends (capacity is enforced by the caller for flow
  /// control; remote deliveries bypass it — scheduler buffering).
  void Push(const Activation& a) {
    items_.push_back(a);
    backlog_tuples_ += a.tuples;
    ++total_enqueued_;
    if (items_.size() > peak_size_) peak_size_ = items_.size();
  }

  /// Prepends (SP: CPU batches take precedence over pending triggers so
  /// that processing overlaps the in-flight reads).
  void PushFront(const Activation& a) {
    items_.push_front(a);
    backlog_tuples_ += a.tuples;
    ++total_enqueued_;
    if (items_.size() > peak_size_) peak_size_ = items_.size();
  }

  Activation Pop() {
    Activation a = items_.front();
    items_.pop_front();
    backlog_tuples_ -= a.tuples;
    return a;
  }

  /// Removes every queued activation (global load balancing acquisition).
  std::deque<Activation> TakeAll() {
    std::deque<Activation> out;
    out.swap(items_);
    backlog_tuples_ = 0;
    return out;
  }

  uint64_t total_enqueued() const { return total_enqueued_; }
  size_t peak_size() const { return peak_size_; }

  /// Read-only view for the load-balancing candidate scan.
  const std::deque<Activation>& items_view() const { return items_; }

 private:
  OpId op_;
  NodeId node_;
  uint32_t owner_thread_;
  uint32_t capacity_;
  bool lb_queue_;
  std::deque<Activation> items_;
  uint64_t backlog_tuples_ = 0;
  uint64_t total_enqueued_ = 0;
  size_t peak_size_ = 0;
};

}  // namespace hierdb::exec

#endif  // HIERDB_EXEC_QUEUE_H_
