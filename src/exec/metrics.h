// Run metrics collected by the execution engine, sufficient to reproduce
// every number the paper reports: response times (Figs 6-10), processor
// idle time, amount of data exchanged between nodes, and communication
// overhead due to global load balancing (Section 5.3).

#ifndef HIERDB_EXEC_METRICS_H_
#define HIERDB_EXEC_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/network.h"

namespace hierdb::exec {

struct RunMetrics {
  SimTime response_time = 0;
  uint32_t threads = 0;

  /// Sum of busy time over all worker threads.
  SimTime busy_ns_total = 0;
  /// Scheduler threads' busy time (message handling), reported separately.
  SimTime scheduler_busy_ns = 0;

  uint64_t activations_processed = 0;
  uint64_t tuples_processed = 0;
  uint64_t io_requests = 0;
  uint64_t pages_read = 0;

  /// Frame suspensions: blocking actions escaped by procedure call.
  uint64_t suspensions_queue = 0;
  uint64_t suspensions_io = 0;

  /// Local balancing: activations consumed from a non-primary queue.
  uint64_t nonprimary_consumptions = 0;

  /// Global load balancing.
  uint64_t starving_requests = 0;   ///< starving broadcasts issued
  uint64_t global_steals = 0;       ///< successful acquisitions
  uint64_t stolen_activations = 0;
  uint64_t ht_buckets_copied = 0;

  /// Operator-end detection protocol messages.
  uint64_t end_protocol_messages = 0;

  sim::NetworkStats net;

  /// Per-operator input tuples actually processed (conservation checks).
  std::vector<uint64_t> op_tuples_in;

  /// Per-operator global end time (coordinator view); 0 if never ended.
  std::vector<SimTime> op_end_time;

  /// Per-operator busy time (bursts attributed to the frame's operator).
  std::vector<double> op_busy_ns;

  /// Optional utilization timeline: busy processor-ns accumulated per
  /// fixed-size virtual-time bucket (see RunOptions::timeline_bucket).
  SimTime timeline_bucket = 0;
  std::vector<double> busy_timeline;

  /// Fraction of processor-time spent idle: 1 - busy / (threads * response).
  double IdleFraction() const {
    if (response_time <= 0 || threads == 0) return 0.0;
    double total = static_cast<double>(response_time) * threads;
    double idle = total - static_cast<double>(busy_ns_total);
    return idle > 0 ? idle / total : 0.0;
  }

  double ResponseMs() const { return ToMillis(response_time); }

  std::string ToString() const;
};

}  // namespace hierdb::exec

#endif  // HIERDB_EXEC_METRICS_H_
