#include "storage/page.h"

namespace hierdb::storage {

uint64_t Fnv1a(const uint8_t* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool Page::Append(const mt::Tuple& t) {
  PageHeader* h = header();
  if (h->tuple_count >= kTuplesPerPage) return false;
  std::memcpy(payload() + h->tuple_count * sizeof(mt::Tuple), &t,
              sizeof(mt::Tuple));
  ++h->tuple_count;
  return true;
}

mt::Tuple Page::At(uint32_t i) const {
  HIERDB_CHECK(i < header()->tuple_count, "page tuple index out of range");
  mt::Tuple t;
  std::memcpy(&t, payload() + i * sizeof(mt::Tuple), sizeof(mt::Tuple));
  return t;
}

void Page::Seal() {
  header()->checksum = Fnv1a(payload(), kPagePayloadBytes);
}

Status Page::Verify() const {
  const PageHeader* h = header();
  if (h->magic != kPageMagic) {
    return Status::Internal("bad page magic at page " +
                            std::to_string(h->page_id));
  }
  if (h->tuple_count > kTuplesPerPage) {
    return Status::Internal("tuple count overflow at page " +
                            std::to_string(h->page_id));
  }
  if (h->checksum != Fnv1a(payload(), kPagePayloadBytes)) {
    return Status::Internal("checksum mismatch at page " +
                            std::to_string(h->page_id));
  }
  return Status::OK();
}

void Page::Reset(uint32_t page_id) {
  std::memset(bytes_.data(), 0, kPageSize);
  PageHeader* h = header();
  h->magic = kPageMagic;
  h->page_id = page_id;
}

}  // namespace hierdb::storage
