// Buffer pool with per-scan read-ahead windows.
//
// The paper's disk model gives each scan an 8-page I/O cache (§5.1.1): a
// scan issues one asynchronous multi-page read and processes pages while
// the next window is in flight. This pool reproduces that shape for the
// real executor: a ScanCursor owns a window of frames, fills it with one
// batched read, and serves tuples until the window is exhausted.
//
// A small shared frame budget bounds total memory; cursors block (or fail,
// in try mode) when the budget is exhausted, which mirrors the paper's
// assumption that pipeline chains fit in memory — the budget is sized so
// they do, and tests exercise the exhaustion path.

#ifndef HIERDB_STORAGE_BUFFER_POOL_H_
#define HIERDB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "storage/partition_file.h"

namespace hierdb::storage {

struct BufferPoolOptions {
  uint32_t frames = 1024;        ///< total frame budget (8 KiB each)
  uint32_t window_pages = 8;     ///< I/O cache window per scan cursor
};

struct BufferPoolStats {
  uint64_t reads = 0;            ///< pages read from files
  uint64_t windows = 0;          ///< read-ahead windows filled
  uint64_t waits = 0;            ///< cursor blocked on frame budget
};

class ScanCursor;

/// Thread-safe frame-budget manager. Frames themselves live inside the
/// cursors (windows are private to one scan), so the pool only accounts.
class BufferPool {
 public:
  explicit BufferPool(const BufferPoolOptions& options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Opens a sequential scan over `file`. The cursor holds
  /// `options.window_pages` frames for its lifetime.
  Result<std::unique_ptr<ScanCursor>> OpenScan(const PartitionFile* file);

  BufferPoolStats stats() const;
  uint32_t frames_in_use() const {
    return frames_in_use_.load(std::memory_order_relaxed);
  }

 private:
  friend class ScanCursor;

  void AcquireFrames(uint32_t n);
  void ReleaseFrames(uint32_t n);
  void CountRead(uint64_t pages);

  BufferPoolOptions options_;
  mutable std::mutex mu_;
  std::condition_variable budget_cv_;
  std::atomic<uint32_t> frames_in_use_{0};
  std::atomic<uint64_t> stat_reads_{0};
  std::atomic<uint64_t> stat_windows_{0};
  std::atomic<uint64_t> stat_waits_{0};
};

/// Sequential scan over one partition file through a read-ahead window.
/// Not thread-safe; one cursor per scanning activation.
class ScanCursor {
 public:
  ~ScanCursor();

  ScanCursor(const ScanCursor&) = delete;
  ScanCursor& operator=(const ScanCursor&) = delete;

  /// Returns the next tuple, or false at end of file.
  bool Next(mt::Tuple* out);

  /// Positions the cursor at `page_id` (used to scan a page range — the
  /// trigger-activation granularity).
  Status SeekToPage(uint32_t page_id);

  /// Restricts the scan to end before `page_id` (exclusive).
  void LimitToPage(uint32_t page_id) { limit_page_ = page_id; }

  Status status() const { return status_; }

 private:
  friend class BufferPool;
  ScanCursor(BufferPool* pool, const PartitionFile* file);

  bool FillWindow();

  BufferPool* pool_;
  const PartitionFile* file_;
  std::vector<Page> window_;
  uint32_t window_size_ = 0;     ///< valid pages in window_
  uint32_t window_pos_ = 0;      ///< current page within window_
  uint32_t tuple_pos_ = 0;       ///< current tuple within page
  uint32_t next_page_ = 0;       ///< next file page to read
  uint32_t limit_page_ = UINT32_MAX;
  Status status_;
};

}  // namespace hierdb::storage

#endif  // HIERDB_STORAGE_BUFFER_POOL_H_
