// Slotted page format for fixed-size disk pages.
//
// A page is an 8 KiB block (the unit the paper's disk parameter table
// prices: 8 KB transfers, 8-page I/O cache). Layout:
//
//   +--------------------+ 0
//   | PageHeader         |   magic, page id, tuple count, free offset,
//   |                    |   payload checksum
//   +--------------------+ sizeof(PageHeader)
//   | tuple slots ...    |   fixed-width records appended downward
//   |                    |
//   +--------------------+ kPageSize
//
// Records here are the mini-executor's fixed-width (key, payload) tuples,
// so the slot directory degenerates to a count — simpler and faster than a
// full variable-length slot array, and sufficient for every workload in
// the paper (hash joins over fixed-width keys). The checksum guards
// against torn writes and file corruption in tests.

#ifndef HIERDB_STORAGE_PAGE_H_
#define HIERDB_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

#include "common/status.h"
#include "mt/tuple.h"

namespace hierdb::storage {

inline constexpr uint32_t kPageSize = 8 * 1024;
inline constexpr uint32_t kPageMagic = 0x48445031;  // "HDP1"

struct PageHeader {
  uint32_t magic = kPageMagic;
  uint32_t page_id = 0;
  uint32_t tuple_count = 0;
  uint32_t reserved = 0;
  uint64_t checksum = 0;  ///< FNV-1a over the payload area
};
static_assert(sizeof(PageHeader) == 24);

inline constexpr uint32_t kPagePayloadBytes = kPageSize - sizeof(PageHeader);
inline constexpr uint32_t kTuplesPerPage =
    kPagePayloadBytes / sizeof(mt::Tuple);

/// FNV-1a 64-bit hash, used as the page payload checksum.
uint64_t Fnv1a(const uint8_t* data, size_t n);

/// An in-memory image of one disk page. Pages are value types; the buffer
/// pool hands out pointers into its frame array.
class Page {
 public:
  Page() { std::memset(bytes_.data(), 0, kPageSize); }

  PageHeader* header() { return reinterpret_cast<PageHeader*>(bytes_.data()); }
  const PageHeader* header() const {
    return reinterpret_cast<const PageHeader*>(bytes_.data());
  }

  uint8_t* payload() { return bytes_.data() + sizeof(PageHeader); }
  const uint8_t* payload() const { return bytes_.data() + sizeof(PageHeader); }

  uint8_t* raw() { return bytes_.data(); }
  const uint8_t* raw() const { return bytes_.data(); }

  uint32_t tuple_count() const { return header()->tuple_count; }

  /// Appends a tuple; returns false when the page is full.
  bool Append(const mt::Tuple& t);

  /// Reads tuple `i` (0 <= i < tuple_count).
  mt::Tuple At(uint32_t i) const;

  /// Recomputes and stores the payload checksum. Call before writing out.
  void Seal();

  /// Verifies magic and checksum. Returns OK for a sealed, uncorrupted
  /// page.
  Status Verify() const;

  void Reset(uint32_t page_id);

 private:
  alignas(64) std::array<uint8_t, kPageSize> bytes_;
};

}  // namespace hierdb::storage

#endif  // HIERDB_STORAGE_PAGE_H_
