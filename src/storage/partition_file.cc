#include "storage/partition_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hierdb::storage {
namespace {

// Footer appended after the last page. The file is self-describing: a
// reader validates magic + page count without an external catalog.
struct Footer {
  uint32_t magic = 0x48444654;  // "HDFT"
  uint32_t num_pages = 0;
  uint64_t num_tuples = 0;
};
static_assert(sizeof(Footer) == 16);

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

PartitionFile::PartitionFile(std::string path, int fd, uint32_t num_pages,
                             uint64_t num_tuples)
    : path_(std::move(path)),
      fd_(fd),
      num_pages_(num_pages),
      num_tuples_(num_tuples) {}

PartitionFile::~PartitionFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<PartitionFile>> PartitionFile::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path);

  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < static_cast<off_t>(sizeof(Footer)) ||
      (size - sizeof(Footer)) % kPageSize != 0) {
    ::close(fd);
    return Status::Internal("malformed partition file " + path);
  }
  Footer footer;
  if (::pread(fd, &footer, sizeof(footer), size - sizeof(Footer)) !=
      static_cast<ssize_t>(sizeof(Footer))) {
    ::close(fd);
    return ErrnoStatus("pread footer", path);
  }
  if (footer.magic != Footer().magic ||
      footer.num_pages != (size - sizeof(Footer)) / kPageSize) {
    ::close(fd);
    return Status::Internal("bad footer in partition file " + path);
  }
  return std::unique_ptr<PartitionFile>(new PartitionFile(
      path, fd, footer.num_pages, footer.num_tuples));
}

Status PartitionFile::ReadPage(uint32_t page_id, Page* page) const {
  if (page_id >= num_pages_) {
    return Status::OutOfRange("page " + std::to_string(page_id) + " of " +
                              std::to_string(num_pages_) + " in " + path_);
  }
  ssize_t n = ::pread(fd_, page->raw(), kPageSize,
                      static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return ErrnoStatus("pread page", path_);
  }
  HIERDB_RETURN_NOT_OK(page->Verify());
  if (page->header()->page_id != page_id) {
    return Status::Internal("page id mismatch in " + path_);
  }
  return Status::OK();
}

PartitionWriter::PartitionWriter(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    open_status_ = ErrnoStatus("create", path_);
  }
  current_.Reset(0);
}

PartitionWriter::~PartitionWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status PartitionWriter::FlushPage() {
  current_.Seal();
  ssize_t n = ::write(fd_, current_.raw(), kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return ErrnoStatus("write page", path_);
  }
  ++next_page_id_;
  current_.Reset(next_page_id_);
  return Status::OK();
}

Status PartitionWriter::Append(const mt::Tuple& t) {
  HIERDB_RETURN_NOT_OK(open_status_);
  if (finished_) return Status::FailedPrecondition("writer finished");
  if (!current_.Append(t)) {
    HIERDB_RETURN_NOT_OK(FlushPage());
    HIERDB_CHECK(current_.Append(t), "append to fresh page failed");
  }
  ++tuples_written_;
  return Status::OK();
}

Status PartitionWriter::Finish() {
  HIERDB_RETURN_NOT_OK(open_status_);
  if (finished_) return Status::FailedPrecondition("writer finished");
  finished_ = true;
  if (current_.tuple_count() > 0 || next_page_id_ == 0) {
    HIERDB_RETURN_NOT_OK(FlushPage());
  }
  Footer footer;
  footer.num_pages = next_page_id_;
  footer.num_tuples = tuples_written_;
  if (::write(fd_, &footer, sizeof(footer)) !=
      static_cast<ssize_t>(sizeof(footer))) {
    return ErrnoStatus("write footer", path_);
  }
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  ::close(fd_);
  fd_ = -1;
  return Status::OK();
}

}  // namespace hierdb::storage
