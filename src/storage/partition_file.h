// A partition file: one horizontal partition of a relation, stored as a
// dense array of sealed slotted pages.
//
// The paper partitions each relation across SM-nodes and, within a node,
// across disks (Section 2.1). A PartitionFile is the on-disk object backing
// one (node, disk) cell of that grid. Files are written once by a
// TableBuilder and then read-only; scans go through the BufferPool which
// models the 8-page I/O cache of the paper's disk parameter table.
//
// I/O uses plain POSIX file APIs (pread) — the asynchronous-I/O overlap of
// the paper is modelled in the simulated engine; here throughput comes from
// many worker threads reading independently.

#ifndef HIERDB_STORAGE_PARTITION_FILE_H_
#define HIERDB_STORAGE_PARTITION_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace hierdb::storage {

/// Read-only handle to a partition file.
class PartitionFile {
 public:
  ~PartitionFile();

  PartitionFile(const PartitionFile&) = delete;
  PartitionFile& operator=(const PartitionFile&) = delete;

  /// Opens an existing partition file and validates its footer.
  static Result<std::unique_ptr<PartitionFile>> Open(const std::string& path);

  /// Reads page `page_id` into `*page` (thread-safe: uses pread).
  Status ReadPage(uint32_t page_id, Page* page) const;

  uint32_t num_pages() const { return num_pages_; }
  uint64_t num_tuples() const { return num_tuples_; }
  const std::string& path() const { return path_; }

 private:
  PartitionFile(std::string path, int fd, uint32_t num_pages,
                uint64_t num_tuples);

  std::string path_;
  int fd_ = -1;
  uint32_t num_pages_ = 0;
  uint64_t num_tuples_ = 0;
};

/// Writes a partition file page by page. Not thread-safe; one builder per
/// file.
class PartitionWriter {
 public:
  explicit PartitionWriter(std::string path);
  ~PartitionWriter();

  PartitionWriter(const PartitionWriter&) = delete;
  PartitionWriter& operator=(const PartitionWriter&) = delete;

  Status Append(const mt::Tuple& t);

  /// Seals the last page, writes the footer, and closes the file.
  Status Finish();

  uint64_t tuples_written() const { return tuples_written_; }

 private:
  Status FlushPage();

  std::string path_;
  int fd_ = -1;
  Status open_status_;
  Page current_;
  uint32_t next_page_id_ = 0;
  uint64_t tuples_written_ = 0;
  bool finished_ = false;
};

}  // namespace hierdb::storage

#endif  // HIERDB_STORAGE_PARTITION_FILE_H_
