#include "storage/buffer_pool.h"

#include <algorithm>

namespace hierdb::storage {

BufferPool::BufferPool(const BufferPoolOptions& options) : options_(options) {
  HIERDB_CHECK(options_.window_pages > 0, "window_pages must be positive");
  HIERDB_CHECK(options_.frames >= options_.window_pages,
               "frame budget smaller than one window");
}

Result<std::unique_ptr<ScanCursor>> BufferPool::OpenScan(
    const PartitionFile* file) {
  if (file == nullptr) return Status::InvalidArgument("null partition file");
  AcquireFrames(options_.window_pages);
  return std::unique_ptr<ScanCursor>(new ScanCursor(this, file));
}

void BufferPool::AcquireFrames(uint32_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  if (frames_in_use_.load(std::memory_order_relaxed) + n > options_.frames) {
    stat_waits_.fetch_add(1, std::memory_order_relaxed);
    budget_cv_.wait(lock, [&] {
      return frames_in_use_.load(std::memory_order_relaxed) + n <=
             options_.frames;
    });
  }
  frames_in_use_.fetch_add(n, std::memory_order_relaxed);
}

void BufferPool::ReleaseFrames(uint32_t n) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    frames_in_use_.fetch_sub(n, std::memory_order_relaxed);
  }
  budget_cv_.notify_all();
}

void BufferPool::CountRead(uint64_t pages) {
  stat_reads_.fetch_add(pages, std::memory_order_relaxed);
  stat_windows_.fetch_add(1, std::memory_order_relaxed);
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats s;
  s.reads = stat_reads_.load(std::memory_order_relaxed);
  s.windows = stat_windows_.load(std::memory_order_relaxed);
  s.waits = stat_waits_.load(std::memory_order_relaxed);
  return s;
}

ScanCursor::ScanCursor(BufferPool* pool, const PartitionFile* file)
    : pool_(pool), file_(file), window_(pool->options_.window_pages) {}

ScanCursor::~ScanCursor() {
  pool_->ReleaseFrames(static_cast<uint32_t>(window_.size()));
}

Status ScanCursor::SeekToPage(uint32_t page_id) {
  if (page_id > file_->num_pages()) {
    return Status::OutOfRange("seek past end of " + file_->path());
  }
  next_page_ = page_id;
  window_size_ = 0;
  window_pos_ = 0;
  tuple_pos_ = 0;
  return Status::OK();
}

bool ScanCursor::FillWindow() {
  uint32_t end = std::min<uint32_t>(file_->num_pages(), limit_page_);
  if (next_page_ >= end) return false;
  uint32_t n = std::min<uint32_t>(static_cast<uint32_t>(window_.size()),
                                  end - next_page_);
  for (uint32_t i = 0; i < n; ++i) {
    Status st = file_->ReadPage(next_page_ + i, &window_[i]);
    if (!st.ok()) {
      status_ = st;
      return false;
    }
  }
  pool_->CountRead(n);
  next_page_ += n;
  window_size_ = n;
  window_pos_ = 0;
  tuple_pos_ = 0;
  return true;
}

bool ScanCursor::Next(mt::Tuple* out) {
  while (true) {
    if (window_pos_ < window_size_) {
      const Page& page = window_[window_pos_];
      if (tuple_pos_ < page.tuple_count()) {
        *out = page.At(tuple_pos_++);
        return true;
      }
      ++window_pos_;
      tuple_pos_ = 0;
      continue;
    }
    if (!FillWindow()) return false;
  }
}

}  // namespace hierdb::storage
