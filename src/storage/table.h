// Horizontally partitioned tables (Section 2.1).
//
// A relation's *home* is the set of SM-nodes storing its partitions;
// within a node the partition is declustered across the node's disks.
// Partitioning is hash-based on the join key, exactly as the paper
// assumes. A StoredTable materializes that grid on the local filesystem:
// one PartitionFile per (node, disk) cell, in
//   <dir>/<table>.n<node>.d<disk>.part
//
// The real executor's scan operators read the cells homed at their node;
// tests verify that hash partitioning sends each key to a single node so
// co-located builds and probes see consistent buckets.

#ifndef HIERDB_STORAGE_TABLE_H_
#define HIERDB_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/partition_file.h"

namespace hierdb::storage {

struct TableSpec {
  std::string name;
  uint32_t nodes = 1;  ///< SM-nodes in the relation's home
  uint32_t disks = 1;  ///< disks per node
};

/// Node a key is homed at under hash partitioning.
inline uint32_t NodeOfKey(int64_t key, uint32_t nodes) {
  // Partitioning and join-bucket hashing must be *independent* or every
  // bucket would land on one node; rotating the hash decorrelates them.
  uint64_t h = mt::HashKey(key);
  return static_cast<uint32_t>((h >> 32) % nodes);
}

/// Disk within the node (second-level declustering).
inline uint32_t DiskOfKey(int64_t key, uint32_t disks) {
  uint64_t h = mt::HashKey(key);
  return static_cast<uint32_t>((h >> 16) % disks);
}

/// Read-only partitioned table: a grid of partition files.
class StoredTable {
 public:
  /// Opens all cells of a table previously produced by TableBuilder.
  static Result<std::unique_ptr<StoredTable>> Open(const std::string& dir,
                                                   const TableSpec& spec);

  const TableSpec& spec() const { return spec_; }

  const PartitionFile& cell(uint32_t node, uint32_t disk) const {
    return *cells_[node * spec_.disks + disk];
  }

  /// Total tuples across all cells.
  uint64_t num_tuples() const;
  /// Total pages across all cells.
  uint64_t num_pages() const;
  /// Pages stored at one node (across its disks).
  uint64_t node_pages(uint32_t node) const;

  /// Reads every cell back into one in-memory relation (test helper; order
  /// is cell-major, not insertion order).
  Result<mt::Relation> ReadAll(BufferPool* pool) const;

 private:
  StoredTable(TableSpec spec,
              std::vector<std::unique_ptr<PartitionFile>> cells)
      : spec_(std::move(spec)), cells_(std::move(cells)) {}

  TableSpec spec_;
  std::vector<std::unique_ptr<PartitionFile>> cells_;  // node-major
};

/// Writes a partitioned table from a tuple stream.
class TableBuilder {
 public:
  TableBuilder(std::string dir, TableSpec spec);

  /// Routes the tuple to its (node, disk) cell by key hash.
  Status Append(const mt::Tuple& t);

  /// Appends to an explicit cell — used to create *tuple placement skew*
  /// (unbalanced partitions) for the skew experiments.
  Status AppendToCell(uint32_t node, uint32_t disk, const mt::Tuple& t);

  /// Finishes all cells and opens the table.
  Result<std::unique_ptr<StoredTable>> Finish();

 private:
  std::string dir_;
  TableSpec spec_;
  std::vector<std::unique_ptr<PartitionWriter>> writers_;  // node-major
  bool finished_ = false;
};

/// Path of one partition cell.
std::string CellPath(const std::string& dir, const std::string& table,
                     uint32_t node, uint32_t disk);

}  // namespace hierdb::storage

#endif  // HIERDB_STORAGE_TABLE_H_
