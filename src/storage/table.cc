#include "storage/table.h"

namespace hierdb::storage {

std::string CellPath(const std::string& dir, const std::string& table,
                     uint32_t node, uint32_t disk) {
  return dir + "/" + table + ".n" + std::to_string(node) + ".d" +
         std::to_string(disk) + ".part";
}

Result<std::unique_ptr<StoredTable>> StoredTable::Open(const std::string& dir,
                                                       const TableSpec& spec) {
  if (spec.nodes == 0 || spec.disks == 0) {
    return Status::InvalidArgument("table spec needs nodes > 0, disks > 0");
  }
  std::vector<std::unique_ptr<PartitionFile>> cells;
  cells.reserve(spec.nodes * spec.disks);
  for (uint32_t n = 0; n < spec.nodes; ++n) {
    for (uint32_t d = 0; d < spec.disks; ++d) {
      auto file = PartitionFile::Open(CellPath(dir, spec.name, n, d));
      if (!file.ok()) return file.status();
      cells.push_back(std::move(file).value());
    }
  }
  return std::unique_ptr<StoredTable>(
      new StoredTable(spec, std::move(cells)));
}

uint64_t StoredTable::num_tuples() const {
  uint64_t n = 0;
  for (const auto& c : cells_) n += c->num_tuples();
  return n;
}

uint64_t StoredTable::num_pages() const {
  uint64_t n = 0;
  for (const auto& c : cells_) n += c->num_pages();
  return n;
}

uint64_t StoredTable::node_pages(uint32_t node) const {
  uint64_t n = 0;
  for (uint32_t d = 0; d < spec_.disks; ++d) {
    n += cell(node, d).num_pages();
  }
  return n;
}

Result<mt::Relation> StoredTable::ReadAll(BufferPool* pool) const {
  mt::Relation out;
  out.reserve(num_tuples());
  for (const auto& c : cells_) {
    auto cursor = pool->OpenScan(c.get());
    if (!cursor.ok()) return cursor.status();
    mt::Tuple t;
    while (cursor.value()->Next(&t)) out.push_back(t);
    HIERDB_RETURN_NOT_OK(cursor.value()->status());
  }
  return out;
}

TableBuilder::TableBuilder(std::string dir, TableSpec spec)
    : dir_(std::move(dir)), spec_(std::move(spec)) {
  writers_.reserve(spec_.nodes * spec_.disks);
  for (uint32_t n = 0; n < spec_.nodes; ++n) {
    for (uint32_t d = 0; d < spec_.disks; ++d) {
      writers_.push_back(std::make_unique<PartitionWriter>(
          CellPath(dir_, spec_.name, n, d)));
    }
  }
}

Status TableBuilder::Append(const mt::Tuple& t) {
  return AppendToCell(NodeOfKey(t.key, spec_.nodes),
                      DiskOfKey(t.key, spec_.disks), t);
}

Status TableBuilder::AppendToCell(uint32_t node, uint32_t disk,
                                  const mt::Tuple& t) {
  if (finished_) return Status::FailedPrecondition("builder finished");
  if (node >= spec_.nodes || disk >= spec_.disks) {
    return Status::OutOfRange("cell (" + std::to_string(node) + "," +
                              std::to_string(disk) + ") out of grid");
  }
  return writers_[node * spec_.disks + disk]->Append(t);
}

Result<std::unique_ptr<StoredTable>> TableBuilder::Finish() {
  if (finished_) return Status::FailedPrecondition("builder finished");
  finished_ = true;
  for (auto& w : writers_) {
    HIERDB_RETURN_NOT_OK(w->Finish());
  }
  return StoredTable::Open(dir_, spec_);
}

}  // namespace hierdb::storage
