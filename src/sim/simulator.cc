#include "sim/simulator.h"

namespace hierdb::sim {

void Simulator::ScheduleAt(SimTime when, EventFn fn) {
  HIERDB_CHECK(when >= now_, "cannot schedule an event in the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

uint64_t Simulator::Run(uint64_t max_events) {
  uint64_t executed = 0;
  while (!queue_.empty() && executed < max_events) {
    // Move out of the queue before running: the handler may schedule.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
    ++events_executed_;
  }
  return executed;
}

uint64_t Simulator::RunUntil(SimTime until) {
  uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
    ++events_executed_;
  }
  if (now_ < until) now_ = until;
  return executed;
}

}  // namespace hierdb::sim
