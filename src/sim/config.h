// System configuration: hierarchical machine shape, the paper's network and
// disk parameter tables (Section 5.1.1), and the operator cost model used
// by the simulated executor.

#ifndef HIERDB_SIM_CONFIG_H_
#define HIERDB_SIM_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/units.h"

namespace hierdb::sim {

/// Network parameters, verbatim from the paper's table (Section 5.1.1).
struct NetworkParams {
  /// Bandwidth is "infinite" in the paper (only CPU costs and latency
  /// matter). A value of 0 means infinite.
  double bandwidth_bytes_per_sec = 0.0;
  /// End-to-end transmission delay.
  SimTime end_to_end_delay = SimTime{500} * kMicrosecond;  // 0.5 ms
  /// CPU cost for sending one 8 KiB message, in instructions.
  double send_cpu_instr_per_8k = 10000.0;
  /// CPU cost for receiving one 8 KiB message, in instructions.
  double recv_cpu_instr_per_8k = 10000.0;
};

/// Disk parameters, verbatim from the paper's table (Section 5.1.1).
struct DiskParams {
  /// Rotational latency per access.
  SimTime latency = SimTime{17} * kMillisecond;
  /// Seek time per access.
  SimTime seek_time = SimTime{5} * kMillisecond;
  /// Sequential transfer rate.
  double transfer_bytes_per_sec = 6.0 * 1024 * 1024;  // 6 MB/s
  /// CPU cost to initiate an asynchronous I/O, in instructions.
  double async_init_instr = 5000.0;
  /// I/O cache size, in pages: a trigger activation covers this many pages
  /// and successive reads within the window hit the cache.
  uint32_t io_cache_pages = 8;
};

/// Per-tuple CPU cost model for the simulated operators. The paper
/// simulates operator execution ("query execution does not depend on
/// relation content"); these constants define the simulated work.
// Calibrated so that a 12-relation workload query runs 30-60 simulated
// minutes sequentially (the paper's constraint, Section 5.1.2), which makes
// execution CPU-bound as in the paper's evaluation.
struct CostModel {
  double scan_instr_per_tuple = 2000.0;   ///< read + predicate evaluation
  double build_instr_per_tuple = 600.0;   ///< hash-table insert
  double probe_instr_per_tuple = 1500.0;  ///< hash probe
  double result_instr_per_tuple = 400.0;  ///< result-tuple formation
  /// Aggregation (two-phase GROUP BY): per-tuple partial-table update and
  /// per-partial merge into the final group table.
  double agg_update_instr_per_tuple = 800.0;
  double agg_merge_instr_per_tuple = 500.0;
  /// Queue operation (enqueue or dequeue of one activation).
  double queue_op_instr = 150.0;
  /// Extra latch cost when a thread touches a queue that is not one of its
  /// primary queues (interference, Section 3.1).
  double nonprimary_latch_instr = 300.0;
  /// Dispatch overhead per activation (selection loop bookkeeping).
  double dispatch_instr = 50.0;
  /// Per-instruction multiplier slope modelling the KSR1 AllCache ring
  /// contention beyond 32 processors in one shared-memory node (Fig 8's
  /// bend). efficiency = 1 + slope * max(0, P - 32) / 32.
  double allcache_contention_slope = 0.18;
};

/// Whole-system configuration.
struct SystemConfig {
  uint32_t num_nodes = 1;        ///< number of SM-nodes
  uint32_t procs_per_node = 8;   ///< processors (= threads) per SM-node
  double mips = 40.0;            ///< per-processor speed (KSR1: 40 MIPS)
  uint32_t disks_per_proc = 1;   ///< paper: 1 disk per processor

  uint32_t page_size_bytes = 8192;
  uint32_t tuple_size_bytes = 100;

  /// Degree of fragmentation: buckets per operator, system wide. The paper
  /// uses a degree much higher than the degree of parallelism.
  uint32_t buckets_per_operator = 512;

  /// Tuples carried by one data activation (granularity increase by
  /// buffering, Section 3.1).
  uint32_t activation_batch_tuples = 128;

  /// Pages covered by one trigger activation (granularity reduction,
  /// Section 3.1; matched to the I/O cache window).
  uint32_t trigger_pages = 8;

  /// Asynchronous I/O window: how many I/O-blocked triggers of one scan a
  /// thread may keep in flight (prefetch depth).
  uint32_t io_prefetch_depth = 8;

  /// Bounded queue capacity, in activations (flow control, Section 3.1).
  /// Sized so a pipeline chain's working set stays in memory while leaving
  /// producers enough headroom to ride consumption bursts.
  uint32_t queue_capacity = 128;

  /// Producer-side buffering flushes a bucket's batch when it reaches
  /// min(activation_batch_tuples, bucket_share / pipeline_flush_chunks):
  /// small buckets still stream in a few chunks instead of sitting in the
  /// buffer until operator end (which would serialize pipeline stages).
  uint32_t pipeline_flush_chunks = 4;

  /// Hash-table space overhead factor over raw build-side bytes.
  double hash_table_overhead = 1.2;

  /// Memory available per SM-node for acquired work (global LB condition
  /// (i)); generous default so memory is not the binding constraint.
  uint64_t node_memory_bytes = 512ull * kMiB;

  /// Enables the AllCache contention factor (Fig 8 substitution).
  bool model_memory_hierarchy = true;

  /// Enables global (inter-node) load balancing.
  bool enable_global_lb = true;

  /// Primary-queue affinity on/off (ablation A3).
  bool primary_queue_affinity = true;

  NetworkParams net;
  DiskParams disk;
  CostModel cost;

  uint32_t total_procs() const { return num_nodes * procs_per_node; }

  /// Effective ns per instruction on a node with `procs` processors,
  /// including the memory-hierarchy contention factor.
  double instr_ns(uint32_t procs_on_node) const {
    double eff = 1.0;
    if (model_memory_hierarchy && procs_on_node > 32) {
      eff += cost.allcache_contention_slope *
             (static_cast<double>(procs_on_node - 32) / 32.0);
    }
    return (1000.0 / mips) * eff;
  }

  std::string ToString() const;
};

}  // namespace hierdb::sim

#endif  // HIERDB_SIM_CONFIG_H_
