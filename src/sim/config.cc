#include "sim/config.h"

#include <sstream>

namespace hierdb::sim {

std::string SystemConfig::ToString() const {
  std::ostringstream os;
  os << "SystemConfig{nodes=" << num_nodes << " procs/node=" << procs_per_node
     << " mips=" << mips << " disks/proc=" << disks_per_proc
     << " page=" << page_size_bytes << "B tuple=" << tuple_size_bytes
     << "B buckets/op=" << buckets_per_operator
     << " batch=" << activation_batch_tuples
     << " trigger_pages=" << trigger_pages << " qcap=" << queue_capacity
     << " global_lb=" << (enable_global_lb ? "on" : "off") << "}";
  return os.str();
}

}  // namespace hierdb::sim
