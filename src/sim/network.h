// Simulated interconnection network between SM-nodes.
//
// Per the paper's parameter table: infinite bandwidth, 0.5 ms end-to-end
// delay, and 10000 instructions of CPU per 8 KiB at both the sender and the
// receiver. The CPU costs are returned to the caller (the SM-node scheduler
// threads burn them); the network itself only adds the propagation delay.

#ifndef HIERDB_SIM_NETWORK_H_
#define HIERDB_SIM_NETWORK_H_

#include <cstdint>
#include <functional>

#include "sim/config.h"
#include "sim/simulator.h"

namespace hierdb::sim {

/// Network transfer statistics, split by purpose so the harness can report
/// the paper's Section 5.3 numbers (data moved by global load balancing vs
/// regular pipeline traffic vs control messages).
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes_total = 0;
  uint64_t bytes_pipeline = 0;   ///< inter-node dataflow (tuple batches)
  uint64_t bytes_loadbalance = 0;  ///< stolen activations + hash tables
  uint64_t bytes_control = 0;    ///< starving/end-detection protocol
};

enum class TrafficClass { kPipeline, kLoadBalance, kControl };

/// Point-to-point message-passing network with uniform delay.
class Network {
 public:
  Network(Simulator* simt, const NetworkParams& params)
      : sim_(simt), params_(params) {}

  /// CPU instructions the sender must burn before the message departs.
  double SendCpuInstr(uint64_t bytes) const {
    return params_.send_cpu_instr_per_8k *
           (static_cast<double>(bytes) / 8192.0);
  }

  /// CPU instructions the receiver must burn on delivery.
  double RecvCpuInstr(uint64_t bytes) const {
    return params_.recv_cpu_instr_per_8k *
           (static_cast<double>(bytes) / 8192.0);
  }

  /// Ships `bytes` from one node to another; `on_delivery` fires after the
  /// end-to-end delay (the caller is responsible for charging the CPU
  /// costs via SendCpuInstr/RecvCpuInstr).
  void Send(uint32_t from_node, uint32_t to_node, uint64_t bytes,
            TrafficClass cls, EventFn on_delivery);

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

 private:
  Simulator* sim_;
  NetworkParams params_;
  NetworkStats stats_;
};

}  // namespace hierdb::sim

#endif  // HIERDB_SIM_NETWORK_H_
