#include "sim/network.h"

namespace hierdb::sim {

void Network::Send(uint32_t from_node, uint32_t to_node, uint64_t bytes,
                   TrafficClass cls, EventFn on_delivery) {
  (void)from_node;
  (void)to_node;
  ++stats_.messages;
  stats_.bytes_total += bytes;
  switch (cls) {
    case TrafficClass::kPipeline:
      stats_.bytes_pipeline += bytes;
      break;
    case TrafficClass::kLoadBalance:
      stats_.bytes_loadbalance += bytes;
      break;
    case TrafficClass::kControl:
      stats_.bytes_control += bytes;
      break;
  }
  SimTime delay = params_.end_to_end_delay;
  if (params_.bandwidth_bytes_per_sec > 0.0) {
    delay += static_cast<SimTime>(static_cast<double>(bytes) /
                                  params_.bandwidth_bytes_per_sec *
                                  static_cast<double>(kSecond));
  }
  sim_->ScheduleAfter(delay, std::move(on_delivery));
}

}  // namespace hierdb::sim
