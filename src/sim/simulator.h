// Discrete-event simulation kernel.
//
// The kernel maintains a virtual clock (nanoseconds) and a priority queue
// of events. Ties are broken by insertion sequence number, which makes the
// whole simulation deterministic for a fixed seed. The paper's experiments
// ran on a real KSR1 with simulated operators; we simulate the processors
// as well (see DESIGN.md, substitution table) so that the control variables
// of every experiment are exact.

#ifndef HIERDB_SIM_SIMULATOR_H_
#define HIERDB_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace hierdb::sim {

using EventFn = std::function<void()>;

/// Deterministic discrete-event simulator.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `when` (>= Now()).
  void ScheduleAt(SimTime when, EventFn fn);

  /// Schedules `fn` to run `delay` ns from now.
  void ScheduleAfter(SimTime delay, EventFn fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains or `max_events` fire.
  /// Returns the number of events executed.
  uint64_t Run(uint64_t max_events = UINT64_MAX);

  /// Runs until virtual time exceeds `until` or the queue drains.
  uint64_t RunUntil(SimTime until);

  bool Empty() const { return queue_.empty(); }
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    EventFn fn;
  };
  struct EventCompare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCompare> queue_;
};

}  // namespace hierdb::sim

#endif  // HIERDB_SIM_SIMULATOR_H_
