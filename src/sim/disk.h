// Simulated disks.
//
// Each disk serves requests FIFO. An access costs latency + seek + pages *
// page_size / transfer_rate. The asynchronous-initiation CPU cost (5000
// instructions) is charged by the *caller* on its own processor, exactly as
// in the paper's pseudo-code (IO_InitAsync burns CPU, IO_Read polls).

#ifndef HIERDB_SIM_DISK_H_
#define HIERDB_SIM_DISK_H_

#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/simulator.h"

namespace hierdb::sim {

/// One simulated disk with FIFO service discipline.
class Disk {
 public:
  Disk(Simulator* simt, const DiskParams& params, uint32_t page_size)
      : sim_(simt), params_(params), page_size_(page_size) {}

  /// Submits an asynchronous read of `pages` pages. `on_complete` fires at
  /// the virtual time the data is in memory.
  void SubmitRead(uint32_t pages, EventFn on_complete);

  uint64_t reads_submitted() const { return reads_submitted_; }
  uint64_t pages_read() const { return pages_read_; }
  /// Total time this disk spent servicing requests.
  SimTime busy_time() const { return busy_time_; }

 private:
  Simulator* sim_;
  DiskParams params_;
  uint32_t page_size_;
  SimTime next_free_ = 0;
  uint64_t reads_submitted_ = 0;
  uint64_t pages_read_ = 0;
  SimTime busy_time_ = 0;
};

/// A bank of disks (per SM-node: one per processor in the paper's setup).
class DiskArray {
 public:
  DiskArray(Simulator* simt, const DiskParams& params, uint32_t page_size,
            uint32_t count) {
    disks_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      disks_.emplace_back(simt, params, page_size);
    }
  }

  Disk& disk(uint32_t i) { return disks_[i % disks_.size()]; }
  uint32_t size() const { return static_cast<uint32_t>(disks_.size()); }

  uint64_t total_pages_read() const {
    uint64_t n = 0;
    for (const auto& d : disks_) n += d.pages_read();
    return n;
  }

 private:
  std::vector<Disk> disks_;
};

}  // namespace hierdb::sim

#endif  // HIERDB_SIM_DISK_H_
