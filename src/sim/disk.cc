#include "sim/disk.h"

#include <algorithm>

namespace hierdb::sim {

void Disk::SubmitRead(uint32_t pages, EventFn on_complete) {
  SimTime start = std::max(sim_->Now(), next_free_);
  double bytes = static_cast<double>(pages) * page_size_;
  SimTime transfer = static_cast<SimTime>(
      bytes / params_.transfer_bytes_per_sec * static_cast<double>(kSecond));
  SimTime service = params_.latency + params_.seek_time + transfer;
  next_free_ = start + service;
  busy_time_ += service;
  ++reads_submitted_;
  pages_read_ += pages;
  sim_->ScheduleAt(next_free_, std::move(on_complete));
}

}  // namespace hierdb::sim
