// Relation catalog.
//
// Because operator execution is simulated (exactly as in the paper, Section
// 5.1), a relation is fully described by its cardinality and tuple width.
// Relations are horizontally partitioned across SM-nodes and, within a
// node, across disks; the partitioning itself is computed by the execution
// compiler from the system configuration.

#ifndef HIERDB_CATALOG_CATALOG_H_
#define HIERDB_CATALOG_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace hierdb::catalog {

using RelId = uint32_t;

/// Cardinality classes used by the query generator (Section 5.1.2).
enum class RelSize { kSmall, kMedium, kLarge };

/// One base relation.
struct Relation {
  RelId id = 0;
  std::string name;
  uint64_t cardinality = 0;
  uint32_t tuple_bytes = 100;

  uint64_t bytes() const { return cardinality * tuple_bytes; }
};

/// The set of base relations referenced by a query.
class Catalog {
 public:
  RelId AddRelation(std::string name, uint64_t cardinality,
                    uint32_t tuple_bytes = 100);

  const Relation& relation(RelId id) const {
    HIERDB_CHECK(id < relations_.size(), "relation id out of range");
    return relations_[id];
  }
  Relation& relation(RelId id) {
    HIERDB_CHECK(id < relations_.size(), "relation id out of range");
    return relations_[id];
  }

  uint32_t size() const { return static_cast<uint32_t>(relations_.size()); }
  const std::vector<Relation>& relations() const { return relations_; }

  uint64_t total_bytes() const;

 private:
  std::vector<Relation> relations_;
};

/// Cardinality ranges for the generator's size classes (paper values:
/// small 10K-20K, medium 100K-200K, large 1M-2M tuples). `scale` shrinks
/// all ranges proportionally for fast benchmark runs.
struct SizeRanges {
  uint64_t small_lo = 10'000, small_hi = 20'000;
  uint64_t medium_lo = 100'000, medium_hi = 200'000;
  uint64_t large_lo = 1'000'000, large_hi = 2'000'000;

  SizeRanges Scaled(double scale) const;
};

}  // namespace hierdb::catalog

#endif  // HIERDB_CATALOG_CATALOG_H_
