#include "catalog/catalog.h"

#include <algorithm>

namespace hierdb::catalog {

RelId Catalog::AddRelation(std::string name, uint64_t cardinality,
                           uint32_t tuple_bytes) {
  RelId id = static_cast<RelId>(relations_.size());
  relations_.push_back(
      Relation{id, std::move(name), cardinality, tuple_bytes});
  return id;
}

uint64_t Catalog::total_bytes() const {
  uint64_t n = 0;
  for (const auto& r : relations_) n += r.bytes();
  return n;
}

SizeRanges SizeRanges::Scaled(double scale) const {
  auto s = [scale](uint64_t v) {
    return std::max<uint64_t>(1, static_cast<uint64_t>(v * scale));
  };
  SizeRanges r;
  r.small_lo = s(small_lo);
  r.small_hi = s(small_hi);
  r.medium_lo = s(medium_lo);
  r.medium_hi = s(medium_hi);
  r.large_lo = s(large_lo);
  r.large_hi = s(large_hi);
  return r;
}

}  // namespace hierdb::catalog
