#include "opt/query_gen.h"

#include <algorithm>
#include <string>
#include <vector>

namespace hierdb::opt {

GeneratedQuery QueryGenerator::Generate() {
  const uint32_t n = options_.num_relations;
  HIERDB_CHECK(n >= 2 && n <= 64, "num_relations must be in [2, 64]");
  catalog::SizeRanges ranges = options_.ranges.Scaled(options_.scale);

  catalog::Catalog cat;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t lo, hi;
    switch (rng_.NextBounded(3)) {
      case 0:
        lo = ranges.small_lo;
        hi = ranges.small_hi;
        break;
      case 1:
        lo = ranges.medium_lo;
        hi = ranges.medium_hi;
        break;
      default:
        lo = ranges.large_lo;
        hi = ranges.large_hi;
        break;
    }
    uint64_t card = static_cast<uint64_t>(
        rng_.NextInRange(static_cast<int64_t>(lo), static_cast<int64_t>(hi)));
    cat.AddRelation("R" + std::to_string(i), card);
  }

  // Random spanning tree: attach each relation i >= 1 to a random earlier
  // relation. This yields a uniform-ish acyclic connected graph.
  std::vector<plan::JoinEdge> edges;
  edges.reserve(n - 1);
  for (uint32_t i = 1; i < n; ++i) {
    uint32_t j = static_cast<uint32_t>(rng_.NextBounded(i));
    double ca = static_cast<double>(cat.relation(i).cardinality);
    double cb = static_cast<double>(cat.relation(j).cardinality);
    double base = std::max(ca, cb) / (ca * cb);
    double sel = rng_.NextDoubleInRange(0.5, 1.5) * base;
    edges.push_back(plan::JoinEdge{j, i, sel});
  }

  plan::JoinGraph graph(n, std::move(edges));
  HIERDB_CHECK(graph.Validate().ok(), "generated graph must be valid");
  return GeneratedQuery{std::move(cat), std::move(graph)};
}

}  // namespace hierdb::opt
