// Shape-constrained DP. Tree-side convention (documented in
// plan/operator_tree.h): the LEFT child of a join is the probe (outer,
// pipelined) input and the RIGHT child is the build (inner, blocking)
// input when MacroExpand is asked to respect tree sides. Consequently:
//
//   kRightDeep  all right children are leaves: hash tables are built on
//               base relations only and the intermediate pipelines through
//               the whole probe ladder — one maximal pipeline chain;
//   kLeftDeep   all left children are leaves: every intermediate feeds the
//               next build — fully blocking, no pipeline longer than one
//               probe;
//   kZigZag     a leaf on either side at each join; the smaller input is
//               placed on the build side;
//   kSegmentedRightDeep  right-deep runs of bounded length; a join whose
//               build side is a completed subtree starts a new segment.

#include "opt/tree_shapes.h"

#include <bit>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "opt/bushy_optimizer.h"

namespace hierdb::opt {

using plan::JoinTree;
using plan::JoinTreeNode;
using plan::RelSet;

const char* TreeShapeName(TreeShape s) {
  switch (s) {
    case TreeShape::kBushy: return "bushy";
    case TreeShape::kLeftDeep: return "left-deep";
    case TreeShape::kRightDeep: return "right-deep";
    case TreeShape::kZigZag: return "zigzag";
    case TreeShape::kSegmentedRightDeep: return "segmented-right-deep";
  }
  return "?";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class ShapedDp {
 public:
  ShapedDp(const plan::JoinGraph& graph, const catalog::Catalog& cat,
           const ShapeOptions& options)
      : graph_(graph), cat_(cat), options_(options),
        n_(graph.num_relations()),
        seg_(options.shape == TreeShape::kSegmentedRightDeep
                 ? std::max<uint32_t>(options.segment_length, 1)
                 : 1) {
    HIERDB_CHECK(n_ <= 16, "shaped DP supports up to 16 relations");
    size_t states = (RelSet{1} << n_) * (seg_ + 1);
    cost_.assign(states, kInf);
    card_.assign(RelSet{1} << n_, 0.0);
    choice_.assign(states, 0);
    choice_is_subtree_.assign(states, false);
    for (uint32_t i = 0; i < n_; ++i) {
      card_[RelSet{1} << i] =
          static_cast<double>(cat_.relation(i).cardinality);
    }
  }

  JoinTree Best() {
    RelSet all = (RelSet{1} << n_) - 1;
    double c = Solve(all, seg_);
    HIERDB_CHECK(c < kInf, "no connected shaped plan found");
    JoinTree tree;
    tree.root = Build(&tree, all, seg_);
    tree.cost = c;
    return tree;
  }

 private:
  size_t Key(RelSet s, uint32_t b) const { return s * (seg_ + 1) + b; }

  double Card(RelSet s) {
    if (card_[s] != 0.0 || std::popcount(s) == 1) return card_[s];
    // Cardinality of a connected set is split-independent: pick any leaf
    // split. (Selectivities multiply over crossing edges; for tree-shaped
    // predicate graphs every split yields the same product overall.)
    RelSet leaf = s & (~s + 1);
    RelSet rest = s & ~leaf;
    card_[s] = Card(leaf) * Card(rest) * graph_.CrossSelectivity(leaf, rest);
    return card_[s];
  }

  // Minimal cost of a shaped tree over `s` with `b` right-deep steps
  // left in the current segment (only meaningful for
  // kSegmentedRightDeep; other shapes always pass the full budget).
  double Solve(RelSet s, uint32_t b) {
    if (std::popcount(s) == 1) return 0.0;
    size_t key = Key(s, b);
    if (visited_[key]) return cost_[key];
    visited_[key] = true;

    double best = kInf;
    RelSet best_choice = 0;
    bool best_subtree = false;
    const TreeShape shape = options_.shape;
    double out_card = Card(s);

    // One leaf peeled per step: the shape dictates which side it lands on.
    for (uint32_t i = 0; i < n_; ++i) {
      RelSet leaf = RelSet{1} << i;
      if (!(s & leaf)) continue;
      RelSet rest = s & ~leaf;
      if (!graph_.Connected(rest) || !graph_.HasCrossEdge(leaf, rest)) {
        continue;
      }
      bool leaf_builds;
      uint32_t rest_budget = seg_;
      switch (shape) {
        case TreeShape::kRightDeep:
          leaf_builds = true;
          break;
        case TreeShape::kLeftDeep:
          leaf_builds = false;
          break;
        case TreeShape::kZigZag:
          leaf_builds = Card(leaf) <= Card(rest);
          break;
        case TreeShape::kSegmentedRightDeep:
          if (b == 0) continue;  // segment exhausted: leaf step forbidden
          leaf_builds = true;
          rest_budget = b - 1;
          break;
        default:
          continue;
      }
      double c = Solve(rest, rest_budget) + out_card;
      if (c < best) {
        best = c;
        best_choice = leaf;
        best_subtree = !leaf_builds;
      }
    }
    // Segmented right-deep: a completed subtree on the build side starts
    // a new segment (fresh budget on both sides).
    if (shape == TreeShape::kSegmentedRightDeep) {
      for (RelSet x = (s - 1) & s; x != 0; x = (x - 1) & s) {
        if (std::popcount(x) < 2) continue;
        RelSet rest = s & ~x;
        if (rest == 0 || !graph_.Connected(x) || !graph_.Connected(rest)) {
          continue;
        }
        if (!graph_.HasCrossEdge(x, rest)) continue;
        double c = Solve(x, seg_) +
                   (std::popcount(rest) == 1 ? 0.0 : Solve(rest, seg_ - 1)) +
                   out_card;
        if (c < best) {
          best = c;
          best_choice = x;
          best_subtree = true;
        }
      }
    }

    cost_[key] = best;
    choice_[key] = best_choice;
    choice_is_subtree_[key] = best_subtree;
    return best;
  }

  int32_t BuildLeaf(JoinTree* tree, RelSet s) {
    JoinTreeNode leaf;
    leaf.rel = static_cast<plan::RelId>(std::countr_zero(s));
    leaf.rels = s;
    leaf.card = card_[s];
    tree->nodes.push_back(leaf);
    return static_cast<int32_t>(tree->nodes.size() - 1);
  }

  int32_t Build(JoinTree* tree, RelSet s, uint32_t b) {
    if (std::popcount(s) == 1) return BuildLeaf(tree, s);
    size_t key = Key(s, b);
    RelSet x = choice_[key];
    RelSet rest = s & ~x;
    bool subtree_on_build = choice_is_subtree_[key];
    const TreeShape shape = options_.shape;
    int32_t left, right;
    if (!subtree_on_build) {
      // x (a leaf) is the build side; rest pipelines on the left.
      uint32_t nb = shape == TreeShape::kSegmentedRightDeep ? b - 1 : seg_;
      left = Build(tree, rest, nb);
      right = BuildLeaf(tree, x);
    } else if (std::popcount(x) == 1) {
      // Leaf probes a built subtree (left-deep / zigzag step).
      left = BuildLeaf(tree, x);
      right = Build(tree, rest, seg_);
    } else {
      // Segment break: completed subtree builds, rest pipelines.
      left = std::popcount(rest) == 1 ? BuildLeaf(tree, rest)
                                      : Build(tree, rest, seg_ - 1);
      right = Build(tree, x, seg_);
    }
    JoinTreeNode node;
    node.left = left;
    node.right = right;
    node.rels = s;
    node.card = card_[s];
    tree->nodes.push_back(node);
    return static_cast<int32_t>(tree->nodes.size() - 1);
  }

  const plan::JoinGraph& graph_;
  const catalog::Catalog& cat_;
  ShapeOptions options_;
  uint32_t n_;
  uint32_t seg_;
  std::vector<double> cost_;
  std::vector<double> card_;
  std::vector<RelSet> choice_;
  std::vector<bool> choice_is_subtree_;
  std::unordered_map<size_t, bool> visited_;
};

bool ForEachJoin(const JoinTree& tree,
                 const std::function<bool(const JoinTreeNode&)>& pred) {
  for (const auto& node : tree.nodes) {
    if (!node.IsLeaf() && !pred(node)) return false;
  }
  return true;
}

}  // namespace

plan::JoinTree ShapedBest(const plan::JoinGraph& graph,
                          const catalog::Catalog& cat,
                          const ShapeOptions& options) {
  if (options.shape == TreeShape::kBushy) {
    BushyOptimizer opt;
    return opt.Best(graph, cat);
  }
  return ShapedDp(graph, cat, options).Best();
}

bool IsLeftDeep(const plan::JoinTree& tree) {
  return ForEachJoin(tree, [&](const JoinTreeNode& n) {
    return tree.nodes[n.left].IsLeaf();
  });
}

bool IsRightDeep(const plan::JoinTree& tree) {
  return ForEachJoin(tree, [&](const JoinTreeNode& n) {
    return tree.nodes[n.right].IsLeaf();
  });
}

bool IsZigZag(const plan::JoinTree& tree) {
  return ForEachJoin(tree, [&](const JoinTreeNode& n) {
    return tree.nodes[n.left].IsLeaf() || tree.nodes[n.right].IsLeaf();
  });
}

bool IsSegmentedRightDeep(const plan::JoinTree& tree,
                          uint32_t segment_length) {
  // Walk left spines counting consecutive joins whose right child is a
  // leaf; a non-leaf right child ends the segment (and is itself checked
  // recursively).
  std::function<bool(int32_t, uint32_t)> walk = [&](int32_t idx,
                                                    uint32_t used) -> bool {
    const JoinTreeNode& n = tree.nodes[idx];
    if (n.IsLeaf()) return true;
    const JoinTreeNode& r = tree.nodes[n.right];
    if (r.IsLeaf()) {
      if (used + 1 > segment_length) return false;
      return walk(n.left, used + 1);
    }
    return walk(n.right, 0) && walk(n.left, 1);
  };
  return tree.root < 0 || walk(tree.root, 0);
}

}  // namespace hierdb::opt
