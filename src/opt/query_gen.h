// Random multi-join query generation, following the methodology the paper
// borrows from [Shekita93] (Section 5.1.2):
//   1. a random acyclic connected predicate graph over k relations;
//   2. each relation's cardinality drawn from the small / medium / large
//      ranges (10K-20K / 100K-200K / 1M-2M tuples);
//   3. each edge's join selectivity drawn uniformly from
//      [0.5, 1.5] * max(|R|,|S|) / (|R|*|S|),
// so that each join result is about the size of its larger input.

#ifndef HIERDB_OPT_QUERY_GEN_H_
#define HIERDB_OPT_QUERY_GEN_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "plan/join_graph.h"

namespace hierdb::opt {

struct QueryGenOptions {
  uint32_t num_relations = 12;
  catalog::SizeRanges ranges;
  /// Proportional shrink of all cardinality ranges; 1.0 = paper scale.
  double scale = 1.0;
};

/// A generated query: its base relations and predicate graph.
struct GeneratedQuery {
  catalog::Catalog catalog;
  plan::JoinGraph graph;
};

/// Deterministic query generator: the same (options, seed, index) always
/// yields the same query.
class QueryGenerator {
 public:
  QueryGenerator(QueryGenOptions options, uint64_t seed)
      : options_(options), rng_(seed) {}

  GeneratedQuery Generate();

 private:
  QueryGenOptions options_;
  Rng rng_;
};

}  // namespace hierdb::opt

#endif  // HIERDB_OPT_QUERY_GEN_H_
