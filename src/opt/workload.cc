#include "opt/workload.h"

#include <optional>

#include "opt/bushy_optimizer.h"

namespace hierdb::opt {

double EstimateSequentialSeconds(const catalog::Catalog& cat,
                                 const plan::PhysicalPlan& pplan) {
  (void)cat;
  // Mirrors the defaults of sim::CostModel / sim::DiskParams; kept local
  // so the optimizer layer does not depend on the simulator.
  constexpr double kScan = 2000.0, kBuild = 600.0, kProbe = 1500.0,
                   kResult = 400.0, kAggUpdate = 800.0, kAggMerge = 500.0,
                   kMips = 40.0;
  double instr = 0.0;
  for (const auto& op : pplan.ops) {
    switch (op.kind) {
      case plan::OpKind::kScan:
        instr += op.output_card * (kScan + kResult);
        break;
      case plan::OpKind::kBuild:
        instr += op.input_card * kBuild;
        break;
      case plan::OpKind::kProbe:
        instr += op.input_card * kProbe + op.output_card * kResult;
        break;
      case plan::OpKind::kAggPartial:
        instr += op.input_card * kAggUpdate;
        break;
      case plan::OpKind::kAggMerge:
        instr += op.input_card * (kAggMerge + kResult);
        break;
    }
  }
  return instr / (kMips * 1e6);
}

std::vector<WorkloadPlan> MakeWorkload(const WorkloadOptions& options) {
  std::vector<WorkloadPlan> out;
  out.reserve(options.num_queries * options.trees_per_query);
  Rng master(options.seed);
  BushyOptimizer optimizer;
  const double lo = options.min_seq_seconds * options.query.scale;
  const double hi = options.max_seq_seconds * options.query.scale;
  for (uint32_t q = 0; q < options.num_queries; ++q) {
    std::optional<GeneratedQuery> query;
    std::vector<plan::JoinTree> trees;
    // Re-draw queries until the best plan's sequential estimate falls in
    // the band (the paper's 30-60 minute constraint, Section 5.1.2).
    double best_gap = -1.0;
    std::optional<GeneratedQuery> best_query;
    std::vector<plan::JoinTree> best_trees;
    for (uint32_t attempt = 0; attempt < options.max_generation_tries;
         ++attempt) {
      QueryGenerator gen(options.query, master.Next());
      query = gen.Generate();
      trees = optimizer.TopK(query->graph, query->catalog,
                             options.trees_per_query);
      if (options.max_seq_seconds <= 0.0) break;
      plan::PhysicalPlan probe = plan::MacroExpand(trees[0], query->catalog);
      double est = EstimateSequentialSeconds(query->catalog, probe);
      if (est >= lo && est <= hi) break;
      double gap = est < lo ? lo - est : est - hi;
      if (best_gap < 0.0 || gap < best_gap) {
        best_gap = gap;
        best_query = query;
        best_trees = trees;
      }
      if (attempt + 1 == options.max_generation_tries) {
        query = best_query;  // accept the closest miss
        trees = best_trees;
      }
    }
    for (uint32_t t = 0; t < trees.size(); ++t) {
      WorkloadPlan wp;
      wp.query_index = q;
      wp.tree_rank = t;
      wp.catalog = query->catalog;
      wp.plan = plan::MacroExpand(trees[t], query->catalog);
      wp.tree = trees[t];
      wp.edges = query->graph.edges();
      HIERDB_CHECK(wp.plan.Validate().ok(), "workload plan must validate");
      out.push_back(std::move(wp));
    }
  }
  return out;
}

std::vector<double> DistortCardinalities(const catalog::Catalog& cat,
                                         double error_rate, Rng* rng) {
  std::vector<double> out(cat.size());
  for (uint32_t i = 0; i < cat.size(); ++i) {
    double factor = rng->NextDoubleInRange(1.0 - error_rate, 1.0 + error_rate);
    out[i] = static_cast<double>(cat.relation(i).cardinality) * factor;
  }
  return out;
}

}  // namespace hierdb::opt
