#include "opt/bushy_optimizer.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <limits>
#include <unordered_map>

#include "common/status.h"

namespace hierdb::opt {

namespace {

using plan::JoinTree;
using plan::JoinTreeNode;
using plan::RelSet;

struct SubPlan {
  double card = 0.0;
  double cost = std::numeric_limits<double>::infinity();
  RelSet left = 0;  // best split: left part (0 for leaves)
  bool valid = false;
};

class Dp {
 public:
  Dp(const plan::JoinGraph& graph, const catalog::Catalog& cat)
      : graph_(graph), cat_(cat), n_(graph.num_relations()) {
    HIERDB_CHECK(n_ <= 20, "DP enumeration supports up to 20 relations");
    table_.resize(RelSet{1} << n_);
    connected_.resize(table_.size(), false);
    Solve();
  }

  /// Best full plan as a join tree.
  JoinTree BestTree() const { return TreeForSplit(All(), table_[All()].left); }

  /// Up to k best trees: distinct root splits ranked by total cost.
  std::vector<JoinTree> TopKTrees(uint32_t k) const {
    RelSet all = All();
    struct RootSplit {
      double cost;
      RelSet left;
    };
    std::vector<RootSplit> splits;
    for (RelSet l = (all - 1) & all; l != 0; l = (l - 1) & all) {
      RelSet r = all & ~l;
      if (l > r) continue;  // each unordered split once
      if (!connected_[l] || !connected_[r]) continue;
      if (!table_[l].valid || !table_[r].valid) continue;
      if (!graph_.HasCrossEdge(l, r)) continue;
      double card = JoinCard(l, r);
      double cost = table_[l].cost + table_[r].cost + card;
      splits.push_back({cost, l});
    }
    std::sort(splits.begin(), splits.end(),
              [](const RootSplit& a, const RootSplit& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                return a.left < b.left;
              });
    std::vector<JoinTree> out;
    for (uint32_t i = 0; i < k && i < splits.size(); ++i) {
      out.push_back(TreeForSplit(all, splits[i].left));
      out.back().cost = splits[i].cost;
    }
    return out;
  }

 private:
  RelSet All() const { return (RelSet{1} << n_) - 1; }

  double JoinCard(RelSet l, RelSet r) const {
    return table_[l].card * table_[r].card * graph_.CrossSelectivity(l, r);
  }

  void Solve() {
    // Leaves.
    for (uint32_t i = 0; i < n_; ++i) {
      RelSet s = RelSet{1} << i;
      table_[s].card = static_cast<double>(cat_.relation(i).cardinality);
      table_[s].cost = 0.0;
      table_[s].valid = true;
      connected_[s] = true;
    }
    // Subsets by increasing population count.
    RelSet all = All();
    for (RelSet s = 1; s <= all; ++s) {
      if (std::popcount(s) < 2) continue;
      connected_[s] = graph_.Connected(s);
      if (!connected_[s]) continue;
      SubPlan& best = table_[s];
      for (RelSet l = (s - 1) & s; l != 0; l = (l - 1) & s) {
        RelSet r = s & ~l;
        if (l > r) continue;
        if (!table_[l].valid || !table_[r].valid) continue;
        if (!graph_.HasCrossEdge(l, r)) continue;
        double card = JoinCard(l, r);
        double cost = table_[l].cost + table_[r].cost + card;
        if (cost < best.cost) {
          best.cost = cost;
          best.card = card;
          best.left = l;
          best.valid = true;
        }
      }
    }
    HIERDB_CHECK(table_[all].valid, "no connected plan found");
  }

  /// Materializes a join tree that uses `left_split` at subset `s`'s root
  /// and the DP-optimal splits below.
  JoinTree TreeForSplit(RelSet s, RelSet left_split) const {
    JoinTree tree;
    std::function<int32_t(RelSet, RelSet)> build = [&](RelSet sub,
                                                       RelSet forced_left)
        -> int32_t {
      if (std::popcount(sub) == 1) {
        JoinTreeNode leaf;
        leaf.rel = static_cast<plan::RelId>(std::countr_zero(sub));
        leaf.rels = sub;
        leaf.card = table_[sub].card;
        tree.nodes.push_back(leaf);
        return static_cast<int32_t>(tree.nodes.size() - 1);
      }
      RelSet l = forced_left ? forced_left : table_[sub].left;
      RelSet r = sub & ~l;
      int32_t li = build(l, 0);
      int32_t ri = build(r, 0);
      JoinTreeNode node;
      node.left = li;
      node.right = ri;
      node.rels = sub;
      node.card = JoinCard(l, r);
      tree.nodes.push_back(node);
      return static_cast<int32_t>(tree.nodes.size() - 1);
    };
    tree.root = build(s, left_split);
    tree.cost = table_[s].cost;
    return tree;
  }

  const plan::JoinGraph& graph_;
  const catalog::Catalog& cat_;
  uint32_t n_;
  std::vector<SubPlan> table_;
  std::vector<bool> connected_;
};

}  // namespace

JoinTree BushyOptimizer::Best(const plan::JoinGraph& graph,
                              const catalog::Catalog& cat) {
  return Dp(graph, cat).BestTree();
}

std::vector<JoinTree> BushyOptimizer::TopK(const plan::JoinGraph& graph,
                                           const catalog::Catalog& cat,
                                           uint32_t k) {
  return Dp(graph, cat).TopKTrees(k);
}

}  // namespace hierdb::opt
