// Shape-constrained join-tree optimization.
//
// Section 2.2 surveys the join-tree shapes a parallel optimizer can emit:
// left-deep, right-deep, segmented right-deep, zigzag [Ziane93], and bushy
// — and the paper settles on bushy trees for their smaller intermediate
// results and richer parallelism. This module provides the other shapes so
// that choice can be measured (ablation bench): each shape is a constraint
// on the DP split enumeration, costed identically to the bushy optimizer
// (sum of intermediate-result cardinalities).
//
//   kLeftDeep            every join's inner (right) input is a base
//                        relation — one long pipeline-less chain;
//   kRightDeep           every join's outer (left) input is a base
//                        relation — one maximal pipeline chain probing a
//                        ladder of hash tables;
//   kZigZag              either input may be the base relation at each
//                        join (supersedes both deep shapes);
//   kSegmentedRightDeep  right-deep segments of bounded length composed
//                        of completed subtrees (memory-bounded pipelines);
//   kBushy               unrestricted (delegates to BushyOptimizer).

#ifndef HIERDB_OPT_TREE_SHAPES_H_
#define HIERDB_OPT_TREE_SHAPES_H_

#include "catalog/catalog.h"
#include "plan/join_graph.h"

namespace hierdb::opt {

enum class TreeShape {
  kBushy,
  kLeftDeep,
  kRightDeep,
  kZigZag,
  kSegmentedRightDeep,
};

const char* TreeShapeName(TreeShape s);

struct ShapeOptions {
  TreeShape shape = TreeShape::kBushy;
  /// Segment length bound for kSegmentedRightDeep (joins per segment).
  uint32_t segment_length = 3;
};

/// Returns the cost-optimal join tree of the requested shape. The cost is
/// the total estimated cardinality of intermediate results, the same
/// criterion as BushyOptimizer, so costs are comparable across shapes.
plan::JoinTree ShapedBest(const plan::JoinGraph& graph,
                          const catalog::Catalog& cat,
                          const ShapeOptions& options);

/// Shape predicates (for tests and plan inspection).
bool IsLeftDeep(const plan::JoinTree& tree);
bool IsRightDeep(const plan::JoinTree& tree);
bool IsZigZag(const plan::JoinTree& tree);
/// True if every maximal right-deep run has at most `segment_length`
/// joins whose outer input is a leaf.
bool IsSegmentedRightDeep(const plan::JoinTree& tree,
                          uint32_t segment_length);

}  // namespace hierdb::opt

#endif  // HIERDB_OPT_TREE_SHAPES_H_
