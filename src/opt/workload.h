// Benchmark workload assembly: the paper's 20 generated queries, two best
// bushy trees each => 40 parallel execution plans (Section 5.1.2).

#ifndef HIERDB_OPT_WORKLOAD_H_
#define HIERDB_OPT_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "opt/query_gen.h"
#include "plan/operator_tree.h"

namespace hierdb::opt {

/// One executable workload entry: a plan plus the catalog it references.
/// The join tree and predicate edges it came from are retained so the
/// entry can be replanned through the unified api::Session; `plan` is the
/// default-options MacroExpand of `tree` (what the Session produces when
/// H1/H2 are left on), kept for white-box engine tests.
struct WorkloadPlan {
  uint32_t query_index = 0;  ///< which generated query this plan came from
  uint32_t tree_rank = 0;    ///< 0 = best tree, 1 = second best
  catalog::Catalog catalog;
  plan::PhysicalPlan plan;
  plan::JoinTree tree;
  std::vector<plan::JoinEdge> edges;  ///< the query's predicate graph
};

struct WorkloadOptions {
  uint32_t num_queries = 20;
  uint32_t trees_per_query = 2;
  QueryGenOptions query;
  uint64_t seed = 42;

  /// Sequential response-time band (seconds, at query.scale == 1): the
  /// paper constrains generated queries to 30-60 sequential minutes,
  /// which bounds intermediate-result blowup. The band scales with
  /// query.scale. Set max to 0 to disable the filter.
  double min_seq_seconds = 1800.0;
  double max_seq_seconds = 3600.0;
  uint32_t max_generation_tries = 64;
};

/// Rough single-processor response-time estimate (seconds at 40 MIPS with
/// the default cost model) used by the workload filter.
double EstimateSequentialSeconds(const catalog::Catalog& cat,
                                 const plan::PhysicalPlan& pplan);

/// Generates the workload deterministically. Every plan passes
/// PhysicalPlan::Validate().
std::vector<WorkloadPlan> MakeWorkload(const WorkloadOptions& options);

/// Distorts every base-relation cardinality by an independent multiplier
/// drawn uniformly from [1-r, 1+r]; used to inject cost-model errors into
/// the FP allocator (Fig 7). Returns per-relation distorted cardinalities.
std::vector<double> DistortCardinalities(const catalog::Catalog& cat,
                                         double error_rate, Rng* rng);

}  // namespace hierdb::opt

#endif  // HIERDB_OPT_WORKLOAD_H_
