// Cost-based bushy join-tree enumeration.
//
// Stands in for the DBS3 optimizer the paper runs its generated queries
// through: dynamic programming over connected relation subsets (cross
// products excluded), minimizing the total size of intermediate results —
// the criterion the paper cites for preferring bushy trees [Shekita93].
// For each query the two best bushy trees are retained, matching the
// paper's "for each query, the two best bushy operator trees are retained"
// (40 plans from 20 queries).

#ifndef HIERDB_OPT_BUSHY_OPTIMIZER_H_
#define HIERDB_OPT_BUSHY_OPTIMIZER_H_

#include <vector>

#include "catalog/catalog.h"
#include "plan/join_graph.h"

namespace hierdb::opt {

class BushyOptimizer {
 public:
  /// Returns the cost-optimal bushy join tree.
  plan::JoinTree Best(const plan::JoinGraph& graph,
                      const catalog::Catalog& cat);

  /// Returns up to `k` best join trees (distinct root splits, best first).
  std::vector<plan::JoinTree> TopK(const plan::JoinGraph& graph,
                                   const catalog::Catalog& cat, uint32_t k);
};

}  // namespace hierdb::opt

#endif  // HIERDB_OPT_BUSHY_OPTIMIZER_H_
