// Binding optimizer output to the real executor.
//
// The evaluation pipeline of the paper generates random acyclic predicate
// graphs, optimizes them into bushy join trees, and executes the plans on
// the simulated machine. This module closes the same loop on *real* data:
// it synthesizes concrete relations for a generated query and translates
// a bushy JoinTree into an mt::PipelinePlan, so the exact plans the paper
// evaluates also run on the multithreaded executor and can be validated
// row-for-row against the single-threaded reference.
//
// Data synthesis: every relation gets column 0 as a dense key plus one
// foreign-key column per predicate edge it participates in. Each edge is
// oriented child -> parent (larger side is the child, mirroring the
// FK-join selectivity model the generator uses: sel ~ 1/max(|A|,|B|)); a
// child row's FK is drawn uniformly from the parent's key range, so every
// probe matches exactly one parent row and intermediate cardinalities
// track the optimizer's estimates.
//
// Plan translation follows the macro-expansion convention with builds on
// the tree's right child: pipeline chains run along left spines; a right
// subtree contributes either a base-table build (leaf) or the
// materialized output of its own chain.

#ifndef HIERDB_MT_QUERY_BIND_H_
#define HIERDB_MT_QUERY_BIND_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "mt/plan.h"
#include "plan/join_graph.h"

namespace hierdb::mt {

struct BoundQuery {
  std::vector<Table> tables;  ///< one per catalog relation
  PipelinePlan plan;

  std::vector<const Table*> TablePtrs() const {
    std::vector<const Table*> out;
    out.reserve(tables.size());
    for (const auto& t : tables) out.push_back(&t);
    return out;
  }
};

struct BindOptions {
  /// Cardinality scale applied to the catalog (generated catalogs are
  /// paper-sized; 0.01 keeps real runs quick).
  double scale = 0.01;
  uint64_t seed = 1;
  /// Floor for scaled cardinalities.
  uint64_t min_rows = 16;
  /// Attribute-value skew: synthesized foreign-key columns are drawn
  /// Zipf(theta) over the parent's key range instead of uniformly (0 =
  /// uniform). This is the one skew knob shared by every backend: the
  /// simulator models the same skew at the bucket level, and the real
  /// executors inherit it through the data synthesized here.
  double skew_theta = 0.0;
};

/// Synthesizes real tables for the query's relations and translates
/// `tree` into a pipeline plan over them.
Result<BoundQuery> BindJoinTree(const plan::JoinTree& tree,
                                const plan::JoinGraph& graph,
                                const catalog::Catalog& cat,
                                const BindOptions& options);

/// Join-column binding of one graph edge: the column of relation `a` and
/// of relation `b` carrying the predicate (same order as the edge).
struct EdgeColumns {
  uint32_t col_a = 0;
  uint32_t col_b = 0;
};

/// Translates `tree` into a pipeline plan over caller-provided tables
/// (one per catalog relation, indexed by RelId) using explicit join
/// columns per graph edge. This is the plan-translation half of
/// BindJoinTree, generalized so user-registered real data can run the
/// same optimized trees.
Result<PipelinePlan> TranslateJoinTree(const plan::JoinTree& tree,
                                       const plan::JoinGraph& graph,
                                       const std::vector<const Table*>& tables,
                                       const std::vector<EdgeColumns>& cols);

}  // namespace hierdb::mt

#endif  // HIERDB_MT_QUERY_BIND_H_
