#include "mt/row.h"

#include "common/status.h"

namespace hierdb::mt {

uint64_t RowDigest(const int64_t* row, uint32_t width) {
  // Mix each column with its position so permuted values digest
  // differently, then mix the combination once more; summation by the
  // caller makes the multiset digest order-independent.
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (uint32_t c = 0; c < width; ++c) {
    h ^= HashKey(row[c] + static_cast<int64_t>(c) * 0x1000193);
    h *= 0x100000001b3ULL;
  }
  return HashKey(static_cast<int64_t>(h));
}

Table MakeTable(std::string name, size_t rows, uint32_t width,
                int64_t fk_range, uint64_t seed) {
  HIERDB_CHECK(width >= 1, "table needs at least one column");
  Table t;
  t.name = std::move(name);
  t.batch = Batch(width);
  t.batch.Reserve(rows);
  Rng rng(seed);
  std::vector<int64_t> row(width);
  for (size_t i = 0; i < rows; ++i) {
    row[0] = static_cast<int64_t>(i);
    for (uint32_t c = 1; c < width; ++c) {
      row[c] = static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(fk_range)));
    }
    t.batch.AppendRow(row.data());
  }
  return t;
}

Table MakeSkewedTable(std::string name, size_t rows, uint32_t width,
                      int64_t fk_range, uint32_t skew_col, double theta,
                      uint64_t seed) {
  HIERDB_CHECK(skew_col < width, "skew column out of range");
  Table t = MakeTable(std::move(name), rows, width, fk_range, seed);
  if (theta <= 0.0) return t;
  Rng rng(seed ^ 0x5ca1ab1eULL);
  ZipfSampler zipf(static_cast<uint32_t>(fk_range), theta);
  auto& data = t.batch.data();
  for (size_t i = 0; i < rows; ++i) {
    if (skew_col == 0) {
      data[i * width] = zipf.Sample(&rng);
    } else {
      data[i * width + skew_col] = zipf.Sample(&rng);
    }
  }
  return t;
}

}  // namespace hierdb::mt
