#include "mt/hash_table.h"

#include <bit>

namespace hierdb::mt {

HashTable::HashTable(uint32_t expected) {
  uint32_t cap = std::bit_ceil(std::max(16u, expected));
  heads_.assign(cap, kNoEntry);
}

void HashTable::Insert(const Tuple& t) {
  if (entries_.size() >= heads_.size()) Rehash();
  uint32_t slot = static_cast<uint32_t>(HashKey(t.key) & (heads_.size() - 1));
  entries_.push_back(Entry{t.key, t.payload, heads_[slot]});
  heads_[slot] = static_cast<uint32_t>(entries_.size() - 1);
}

void HashTable::Rehash() {
  heads_.assign(heads_.size() * 2, kNoEntry);
  for (uint32_t i = 0; i < entries_.size(); ++i) {
    uint32_t slot =
        static_cast<uint32_t>(HashKey(entries_[i].key) & (heads_.size() - 1));
    entries_[i].next = heads_[slot];
    heads_[slot] = i;
  }
}

}  // namespace hierdb::mt
