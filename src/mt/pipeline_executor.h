// General multithreaded pipeline executor — the paper's execution model on
// real threads and real data.
//
// Executes a PipelinePlan (bushy multi-join, decomposed into pipeline
// chains) on one SM-node with a selectable local load-balancing strategy:
//
//   kDP  dynamic processing (the paper's model): work decomposed into
//        self-contained activations; one queue per (operator x thread);
//        primary-queue affinity; any thread consumes any consumable queue;
//        a producer hitting a full queue escapes by processing another
//        activation (procedure-call suspension, Section 3.1);
//
//   kFP  fixed processing [DeWitt90, Boral90]: threads statically
//        allocated to operators in proportion to estimated operator cost
//        at each scheduling stage; a thread whose operator has no work
//        idles — the discretization and cost-error weaknesses the paper
//        measures in Figures 6-8;
//
//   kSP  synchronous pipelining [Shekita93]: no inter-operator queues;
//        each thread claims scan morsels and carries every tuple through
//        the whole probe chain by procedure calls (shared-memory only).
//
// Operator scheduling follows Section 2.2: hash constraints
// (build before probe), heuristic H1 (a chain's scan waits for its hash
// tables), heuristic H2 (chains execute one at a time); H1/H2 can be
// disabled to reproduce the concurrent-chains discussion of Section 3.2.
//
// Trigger activations are morsel claims on a shared cursor (granularity
// `morsel_rows`); data activations are row batches bound to a hash bucket
// (granularity `batch_rows`); the degree of fragmentation `buckets` is
// much higher than the thread count so skew spreads (Section 3.1).

#ifndef HIERDB_MT_PIPELINE_EXECUTOR_H_
#define HIERDB_MT_PIPELINE_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "common/strategy.h"
#include "mt/build_cache.h"
#include "mt/hash_table.h"
#include "mt/plan.h"
#include "mt/row.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace hierdb::mt {

/// The strategy enum is shared by all backends (common/strategy.h); these
/// aliases keep the historical mt::LocalStrategy spelling working.
using LocalStrategy = hierdb::Strategy;

inline const char* LocalStrategyName(LocalStrategy s) {
  return StrategyName(s);
}

struct PipelineOptions {
  uint32_t threads = 4;
  uint32_t buckets = 64;        ///< degree of fragmentation per join
  uint32_t morsel_rows = 16384; ///< trigger-activation granularity
  uint32_t batch_rows = 1024;   ///< data-activation granularity
  uint32_t queue_capacity = 256;///< flow control (activations per queue)
  LocalStrategy strategy = LocalStrategy::kDP;
  bool apply_h1 = true;         ///< chain scan waits for its hash tables
  bool apply_h2 = true;         ///< chains execute one at a time
  /// Columnar data plane: evaluate Where predicates as selection-vector
  /// compare loops, batch HashKey/GroupHash computation, and probe build
  /// tables through RowTable::ProbeBatch (mt/column_batch.h). Off falls
  /// back to the row-at-a-time scalar loops; results are digest-identical
  /// either way.
  bool vectorized = true;
  /// FP only: multiplicative distortion applied to per-operator cost
  /// estimates, indexed by compiled op id; empty = exact estimates.
  std::vector<double> fp_cost_distortion;

  /// Where worker threads come from: null spawns `threads` std::threads
  /// per Execute (the legacy path); a session-provided context rents
  /// pooled workers, parks idle ones into cross-query stealing, and
  /// carries the cooperative-cancellation token (common/exec_context.h).
  ExecContext* ctx = nullptr;

  /// Shared build-side reuse: when set, builds whose source is a base
  /// table with a nonzero entry in `table_cache_ids` (aligned with
  /// Execute's `tables` argument) are looked up in — and on miss
  /// published to — the cache under (table id, build col, buckets,
  /// cache_seed_skew). Null disables reuse.
  BuildCache* build_cache = nullptr;
  std::vector<uint64_t> table_cache_ids;
  uint64_t cache_seed_skew = 0;

  /// Per-operator execution tracing: when set, every worker keeps
  /// per-(slot, op) span aggregates (two clock reads per activation) and
  /// the executor emits them — plus cache and steal instants — into the
  /// sink at run end, cancelled and failed runs included. Null (the
  /// default) reduces the entire feature to one pointer check.
  obs::TraceSink* trace = nullptr;

  /// Session flight recorder (obs/recorder.h): when set, steal and
  /// build-cache instants are mirrored into the always-on black box (the
  /// per-query sink above is opt-in and query-scoped). Null = one check.
  obs::FlightRecorder* recorder = nullptr;
  /// Query sequence tag for recorder events (0 = untagged).
  uint64_t recorder_query = 0;

  /// Plan-point row captures (QueryBuilder::CapturePoint): every row
  /// crossing a bound (chain, point) is offered to its sink exactly once,
  /// whichever worker carries it. Empty = no capture work at all.
  std::vector<CaptureSink> captures;
};

struct PipelineStats {
  uint64_t morsels = 0;           ///< trigger activations executed
  uint64_t data_activations = 0;  ///< batch activations executed
  uint64_t batches_emitted = 0;
  uint64_t escapes = 0;           ///< full-queue procedure-call escapes
  uint64_t nonprimary = 0;        ///< consumptions from non-primary queues
  uint64_t idle_waits = 0;        ///< waits with no runnable work
  uint64_t fp_safety_escapes = 0; ///< FP deadlock valve firings (should be 0)
  uint64_t build_cache_hits = 0;  ///< builds satisfied from the shared cache
  uint64_t build_cache_misses = 0;///< cacheable builds executed locally
  uint64_t rows_filtered = 0;     ///< rows dropped by scan-level predicates
  uint64_t agg_groups = 0;        ///< result groups (plans with agg)
  uint64_t agg_partials = 0;      ///< partial-table entries merged in phase 2
  /// Activations per rented worker (cross-query guest helpers excluded).
  std::vector<uint64_t> busy_per_thread;
  /// Rows produced by each chain's terminal operator (the chain's actual
  /// output cardinality; for aggregated plans the final entry counts the
  /// pre-aggregation join rows). Always measured, tracing on or off.
  std::vector<uint64_t> rows_per_chain;

  /// Load imbalance: max over threads of busy / mean busy (1.0 = perfect).
  double Imbalance() const;
};

/// Executes `plan` over `tables`. The executor is reusable; Execute is not
/// re-entrant.
class PipelineExecutor {
 public:
  explicit PipelineExecutor(const PipelineOptions& options);
  ~PipelineExecutor();

  PipelineExecutor(const PipelineExecutor&) = delete;
  PipelineExecutor& operator=(const PipelineExecutor&) = delete;

  /// Executes the plan. When `materialized` is non-null the final chain's
  /// output rows are additionally collected (per-thread partials, merged at
  /// chain end — the same machinery that materializes non-final chains)
  /// and moved into `*materialized`. Plans carrying an AggSpec return the
  /// aggregate rows instead: every worker folds the final-chain rows it
  /// produces into a private partial hash table, and a second phase on the
  /// same ExecContext merges disjoint group-hash partitions in parallel
  /// (so pooled stealing and cancellation cover aggregation unchanged).
  Result<ResultDigest> Execute(const PipelinePlan& plan,
                               const std::vector<const Table*>& tables,
                               PipelineStats* stats = nullptr,
                               Batch* materialized = nullptr);

  /// Number of compiled operators for the given plan (to size
  /// fp_cost_distortion before Execute).
  static uint32_t CompiledOpCount(const PipelinePlan& plan);

 private:
  struct Activation;
  struct OpState;
  struct Shared;
  class BoundedQueue;

  PipelineOptions options_;
  std::unique_ptr<Shared> shared_;  // per-run state

  // --- execution machinery (defined in .cc) ---
  void WorkerLoop(uint32_t self);
  bool RunOne(uint32_t self);
  /// Cross-query steal hook: runs at most one activation on a guest slot.
  bool RunOneForeign();
  /// Resolves a trigger op's source (or marks a prebuilt build finished)
  /// and returns its morsel count. Pre: lock on state_mu held.
  size_t ResolveSourceLocked(OpState& op);
  bool ClaimMorsel(uint32_t self, uint32_t op_id);
  void ExecuteData(uint32_t self, Activation&& act);
  void ExecuteMorsel(uint32_t self, uint32_t op_id, size_t begin, size_t end);
  void Emit(uint32_t self, uint32_t dst_op, uint32_t bucket, Batch&& rows);
  void FlushOutbox(uint32_t self);
  bool RunAllowedWhileStuck(uint32_t self, bool unrestricted);
  void FinishActivation(uint32_t op_id);
  void OnOpEnded(uint32_t op_id);
  void RecomputeFpAssignment();
  bool ThreadMayRun(uint32_t self, uint32_t op_id) const;
  /// Phase-2 aggregation: claims group-hash partitions and merges every
  /// slot's partials for them (runs on SpawnWorkers bodies).
  void AggMergeWorker(bool want_rows);
  /// Folds one activation into the per-(slot, op) trace cell. Pre:
  /// tracing is on (shared_->trace != nullptr).
  void TraceActivation(uint32_t self, uint32_t op_id, uint64_t t0,
                       uint64_t rows_in, uint64_t rows_out);
  /// Emits the accumulated span cells into the sink (every exit path of
  /// Execute, cancelled/failed runs included).
  void EmitTraceCells();
  /// Abandons build-cache offers a torn-down run will never publish.
  void AbandonPendingOffers();

  Result<ResultDigest> ExecuteSP(const PipelinePlan& plan,
                                 const std::vector<const Table*>& tables,
                                 PipelineStats* stats, Batch* materialized);
};

}  // namespace hierdb::mt

#endif  // HIERDB_MT_PIPELINE_EXECUTOR_H_
