#include "mt/agg.h"

#include <algorithm>

namespace hierdb::mt {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kAvg: return "avg";
  }
  return "?";
}

namespace {

uint64_t MixU64(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Accumulator slots one aggregate occupies in a partial row.
uint32_t SlotsOf(AggFn fn) { return fn == AggFn::kAvg ? 2 : 1; }

}  // namespace

uint64_t PredicatesHash(const std::vector<Predicate>& preds) {
  if (preds.empty()) return 0;
  uint64_t h = 0x6A09E667F3BCC909ULL;
  for (const Predicate& p : preds) {
    h = MixU64(h, p.col);
    h = MixU64(h, static_cast<uint64_t>(p.cmp));
    h = MixU64(h, static_cast<uint64_t>(p.value));
  }
  return h == 0 ? 1 : h;
}

uint32_t AggSpec::PartialWidth() const {
  uint32_t w = static_cast<uint32_t>(group_cols.size());
  for (const AggExpr& a : aggs) w += SlotsOf(a.fn);
  return w;
}

uint32_t AggSpec::OutputWidth() const {
  return static_cast<uint32_t>(group_cols.size() + aggs.size());
}

Status AggSpec::Validate(uint32_t input_width) const {
  if (group_cols.empty() && aggs.empty()) {
    return Status::InvalidArgument(
        "aggregation needs at least one group column or aggregate");
  }
  for (uint32_t c : group_cols) {
    if (c >= input_width) {
      return Status::OutOfRange("group column " + std::to_string(c) +
                                " >= aggregated row width " +
                                std::to_string(input_width));
    }
  }
  for (const AggExpr& a : aggs) {
    if (a.fn != AggFn::kCount && a.col >= input_width) {
      return Status::OutOfRange("aggregate column " + std::to_string(a.col) +
                                " >= aggregated row width " +
                                std::to_string(input_width));
    }
  }
  for (const Predicate& h : having) {
    if (h.col >= OutputWidth()) {
      return Status::OutOfRange("having column " + std::to_string(h.col) +
                                " >= aggregate output width " +
                                std::to_string(OutputWidth()));
    }
  }
  return Status::OK();
}

std::string AggSpec::ToString() const {
  std::string s = "group by [";
  for (size_t i = 0; i < group_cols.size(); ++i) {
    if (i > 0) s += ", ";
    s += "c" + std::to_string(group_cols[i]);
  }
  s += "] -> [";
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) s += ", ";
    s += AggFnName(aggs[i].fn);
    if (aggs[i].fn != AggFn::kCount) {
      s += "(c" + std::to_string(aggs[i].col) + ")";
    } else {
      s += "(*)";
    }
  }
  s += "]";
  for (const Predicate& h : having) {
    s += " having c" + std::to_string(h.col) + " " + CmpOpName(h.cmp) + " " +
         std::to_string(h.value);
  }
  return s;
}

uint64_t GroupHash(const int64_t* vals, uint32_t n) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (uint32_t i = 0; i < n; ++i) {
    h ^= static_cast<uint64_t>(vals[i]);
    h *= 0x100000001B3ULL;
    h ^= h >> 29;
  }
  return h;
}

void AggTable::Init(const AggSpec* spec) {
  spec_ = spec;
  partial_width_ = spec->PartialWidth();
  pool_.clear();
  hashes_.clear();
  next_.clear();
  heads_.clear();
}

void AggTable::Rehash() {
  size_t target = heads_.empty() ? 16 : heads_.size() * 2;
  heads_.assign(target, kNoEntry);
  size_t n = groups();
  for (size_t i = 0; i < n; ++i) {
    uint64_t slot = hashes_[i] & (heads_.size() - 1);
    next_[i] = heads_[slot];
    heads_[slot] = static_cast<uint32_t>(i);
  }
}

int64_t* AggTable::FindOrInsert(const int64_t* vals, uint64_t h) {
  const uint32_t g = static_cast<uint32_t>(spec_->group_cols.size());
  if (!heads_.empty()) {
    uint64_t slot = h & (heads_.size() - 1);
    for (uint32_t e = heads_[slot]; e != kNoEntry; e = next_[e]) {
      if (hashes_[e] != h) continue;
      int64_t* row = pool_.data() + static_cast<size_t>(e) * partial_width_;
      if (std::equal(row, row + g, vals)) return row;
    }
  }
  if (groups() + 1 > heads_.size() * 2) Rehash();
  uint32_t id = static_cast<uint32_t>(groups());
  size_t base = pool_.size();
  pool_.resize(base + partial_width_);
  int64_t* row = pool_.data() + base;
  std::copy(vals, vals + g, row);
  // Identity-initialize the accumulator slots.
  uint32_t s = g;
  for (const AggExpr& a : spec_->aggs) {
    switch (a.fn) {
      case AggFn::kCount: row[s++] = 0; break;
      case AggFn::kSum: row[s++] = 0; break;
      case AggFn::kMin: row[s++] = INT64_MAX; break;
      case AggFn::kMax: row[s++] = INT64_MIN; break;
      case AggFn::kAvg:
        row[s++] = 0;  // sum
        row[s++] = 0;  // count
        break;
    }
  }
  hashes_.push_back(h);
  uint64_t slot = h & (heads_.size() - 1);
  next_.push_back(heads_[slot]);
  heads_[slot] = id;
  return row;
}

namespace {

/// Wrap-around add without signed-overflow UB (two's-complement sum).
inline int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}

}  // namespace

void AggTable::Accumulate(const int64_t* row) {
  const uint32_t g = static_cast<uint32_t>(spec_->group_cols.size());
  // Gather the group values (group_cols index the input row; the partial
  // stores them densely in front).
  int64_t stack_vals[8];
  std::vector<int64_t> heap_vals;
  int64_t* vals = stack_vals;
  if (g > 8) {
    heap_vals.resize(g);
    vals = heap_vals.data();
  }
  for (uint32_t i = 0; i < g; ++i) vals[i] = row[spec_->group_cols[i]];
  int64_t* p = FindOrInsert(vals, GroupHash(vals, g));
  uint32_t s = g;
  for (const AggExpr& a : spec_->aggs) {
    switch (a.fn) {
      case AggFn::kCount: p[s] = WrapAdd(p[s], 1); ++s; break;
      case AggFn::kSum: p[s] = WrapAdd(p[s], row[a.col]); ++s; break;
      case AggFn::kMin: p[s] = std::min(p[s], row[a.col]); ++s; break;
      case AggFn::kMax: p[s] = std::max(p[s], row[a.col]); ++s; break;
      case AggFn::kAvg:
        p[s] = WrapAdd(p[s], row[a.col]);
        p[s + 1] = WrapAdd(p[s + 1], 1);
        s += 2;
        break;
    }
  }
}

void AggTable::AccumulateBatch(const Batch& rows, size_t begin,
                               const uint32_t* sel, size_t n,
                               const uint32_t* col_map,
                               BatchScratch* scratch) {
  if (n == 0) return;
  const uint32_t g = static_cast<uint32_t>(spec_->group_cols.size());
  const size_t stride = rows.width();
  const int64_t* origin = rows.data().data() + begin * stride;
  // Column-at-a-time gather + hash: GroupHash's per-column mix
  //   h ^= v; h *= FNV_PRIME; h ^= h >> 29
  // is sequential per row, so running it one column across all rows
  // yields exactly the scalar per-row hashes.
  scratch->hashes.assign(n, 0xCBF29CE484222325ULL);
  scratch->keys.resize(n * g);
  uint64_t* hashes = scratch->hashes.data();
  int64_t* keys = scratch->keys.data();
  for (uint32_t j = 0; j < g; ++j) {
    uint32_t c = spec_->group_cols[j];
    if (col_map != nullptr) c = col_map[c];
    const int64_t* base = origin + c;
    for (size_t i = 0; i < n; ++i) {
      const size_t r = sel == nullptr ? i : sel[i];
      const int64_t v = base[r * stride];
      keys[i * g + j] = v;
      uint64_t h = hashes[i];
      h ^= static_cast<uint64_t>(v);
      h *= 0x100000001B3ULL;
      h ^= h >> 29;
      hashes[i] = h;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t r = sel == nullptr ? i : sel[i];
    const int64_t* row = origin + r * stride;
    int64_t* p = FindOrInsert(keys + i * g, hashes[i]);
    uint32_t s = g;
    for (const AggExpr& a : spec_->aggs) {
      // kCount ignores its column, so only value aggregates map it.
      const uint32_t c =
          a.fn != AggFn::kCount && col_map != nullptr ? col_map[a.col] : a.col;
      switch (a.fn) {
        case AggFn::kCount: p[s] = WrapAdd(p[s], 1); ++s; break;
        case AggFn::kSum: p[s] = WrapAdd(p[s], row[c]); ++s; break;
        case AggFn::kMin: p[s] = std::min(p[s], row[c]); ++s; break;
        case AggFn::kMax: p[s] = std::max(p[s], row[c]); ++s; break;
        case AggFn::kAvg:
          p[s] = WrapAdd(p[s], row[c]);
          p[s + 1] = WrapAdd(p[s + 1], 1);
          s += 2;
          break;
      }
    }
  }
}

void AggTable::MergePartial(const int64_t* partial) {
  const uint32_t g = static_cast<uint32_t>(spec_->group_cols.size());
  int64_t* p = FindOrInsert(partial, GroupHash(partial, g));
  uint32_t s = g;
  for (const AggExpr& a : spec_->aggs) {
    switch (a.fn) {
      case AggFn::kCount:
      case AggFn::kSum:
        p[s] = WrapAdd(p[s], partial[s]);
        ++s;
        break;
      case AggFn::kMin: p[s] = std::min(p[s], partial[s]); ++s; break;
      case AggFn::kMax: p[s] = std::max(p[s], partial[s]); ++s; break;
      case AggFn::kAvg:
        p[s] = WrapAdd(p[s], partial[s]);
        p[s + 1] = WrapAdd(p[s + 1], partial[s + 1]);
        s += 2;
        break;
    }
  }
}

void AggTable::EmitPartials(uint32_t part, uint32_t parts, Batch* out) const {
  if (out->width() == 0) *out = Batch(partial_width_);
  ForEachPartial(part, parts, [&](const int64_t* row) { out->AppendRow(row); });
}

void AggTable::EmitFinal(Batch* out, ResultDigest* digest) const {
  const uint32_t g = static_cast<uint32_t>(spec_->group_cols.size());
  const uint32_t ow = spec_->OutputWidth();
  std::vector<int64_t> row(ow);
  const size_t n = groups();
  for (size_t i = 0; i < n; ++i) {
    const int64_t* p = pool_.data() + i * partial_width_;
    std::copy(p, p + g, row.begin());
    uint32_t s = g, o = g;
    for (const AggExpr& a : spec_->aggs) {
      if (a.fn == AggFn::kAvg) {
        // Truncated integer mean; the count is never 0 (a group exists
        // only once a row reached it).
        row[o++] = p[s + 1] == 0 ? 0 : p[s] / p[s + 1];
        s += 2;
      } else {
        row[o++] = p[s++];
      }
    }
    if (!spec_->having.empty() && !MatchesAll(spec_->having, row.data())) {
      continue;
    }
    if (out != nullptr) {
      if (out->width() == 0) *out = Batch(ow);
      out->AppendRow(row.data());
    }
    if (digest != nullptr) digest->Add(row.data(), ow);
  }
}

Batch ReferenceAggregate(const Batch& rows, const AggSpec& spec) {
  AggTable table(&spec);
  for (size_t i = 0; i < rows.rows(); ++i) table.Accumulate(rows.row(i));
  Batch out(spec.OutputWidth());
  table.EmitFinal(&out, nullptr);
  return out;
}

}  // namespace hierdb::mt
