// Real tuples and relations for the multithreaded mini-executor.
//
// The simulated engine (src/exec) reproduces the paper's experiments; this
// module demonstrates the same execution model — self-contained
// activations, per-thread queues with stealing, bucket-partitioned hash
// joins — running genuine joins on real data on a multi-core host, and
// doubles as an independent correctness check of the join logic.

#ifndef HIERDB_MT_TUPLE_H_
#define HIERDB_MT_TUPLE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"

namespace hierdb::mt {

struct Tuple {
  int64_t key = 0;
  int64_t payload = 0;
};

using Relation = std::vector<Tuple>;

/// Generates `n` tuples with keys uniform in [0, key_range) and payload =
/// row index. Deterministic for a fixed seed.
Relation MakeUniformRelation(uint64_t n, uint64_t key_range, uint64_t seed);

/// Generates `n` tuples with Zipf(theta)-distributed keys in
/// [0, key_range) — the heavy keys model attribute-value skew.
Relation MakeZipfRelation(uint64_t n, uint64_t key_range, double theta,
                          uint64_t seed);

/// 64-bit mix hash for join keys (SplitMix finalizer).
inline uint64_t HashKey(int64_t key) {
  uint64_t z = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace hierdb::mt

#endif  // HIERDB_MT_TUPLE_H_
