// Pipeline plans for the real multithreaded executor.
//
// A PipelinePlan is the mt-level mirror of plan::PhysicalPlan: an ordered
// list of pipeline chains, each a driving scan followed by hash-join probe
// steps. The build side of every step is either a base table or the
// materialized output of an earlier chain — which is exactly how a bushy
// operator tree decomposes into maximal pipeline chains (Section 2.2).
//
// The executor applies the paper's scheduling:
//   hash constraint  build(c,j) before probe(c,j) may consume;
//   H1               chain c's scan starts only when all its builds ended;
//   H2 (optional)    chains execute one at a time.

#ifndef HIERDB_MT_PLAN_H_
#define HIERDB_MT_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "mt/agg.h"
#include "mt/row.h"
#include "obs/capture.h"

namespace hierdb::mt {

/// Input of a scan or of a join's build side.
struct Source {
  enum class Kind { kTable, kChain };
  Kind kind = Kind::kTable;
  uint32_t index = 0;

  static Source OfTable(uint32_t i) { return {Kind::kTable, i}; }
  static Source OfChain(uint32_t i) { return {Kind::kChain, i}; }

  bool operator==(const Source&) const = default;
};

/// One hash-join step inside a pipeline chain.
struct JoinStep {
  Source build;          ///< build-side input
  uint32_t probe_col = 0;  ///< join column in the pipelined row
  uint32_t build_col = 0;  ///< join column in the build rows
};

/// A maximal pipeline chain.
struct Chain {
  Source input;               ///< driving scan's input
  std::vector<JoinStep> joins;
};

struct PipelinePlan {
  std::vector<Chain> chains;  ///< executed in this order (under H2)

  /// Scan-level filters, indexed by base-table index (may be shorter than
  /// the table set; missing or empty entries mean "all rows pass"). A
  /// table's predicates apply where its rows enter the pipeline — the
  /// driving scan's morsels or a build's scatter — on every backend,
  /// including the single-threaded reference.
  std::vector<std::vector<Predicate>> table_filters;

  /// GROUP BY / aggregation over the final chain's output rows (two-phase
  /// parallel execution in the real backends; the result digest and any
  /// materialized rows are then the aggregate rows, not the join rows).
  std::optional<AggSpec> agg;

  /// Column projection per base table (an absent or empty entry =
  /// identity: emit all columns). When set — by PruneColumns, on
  /// aggregated plans — scans and build scatters emit only the listed
  /// source columns, in order, wherever a table's rows enter the
  /// pipeline, and every plan column reference (probe_col, build_col,
  /// agg group/agg columns) is in the *projected* coordinate space.
  /// table_filters stay in source coordinates: predicates evaluate on the
  /// full source row before projection. The cluster executor ships the
  /// narrowed rows, which is the column-pruned kTupleBatch repartition.
  std::vector<std::vector<uint32_t>> table_projections;

  /// The filters for `table`, or nullptr when it has none.
  const std::vector<Predicate>* FiltersFor(uint32_t table) const {
    if (table >= table_filters.size() || table_filters[table].empty()) {
      return nullptr;
    }
    return &table_filters[table];
  }

  /// The projection for `table`, or nullptr for identity.
  const std::vector<uint32_t>* ProjectionFor(uint32_t table) const {
    if (table >= table_projections.size() ||
        table_projections[table].empty()) {
      return nullptr;
    }
    return &table_projections[table];
  }

  /// Width a scan/build of `table` emits (`full_width` = physical width).
  uint32_t EffectiveTableWidth(uint32_t table, uint32_t full_width) const {
    const std::vector<uint32_t>* p = ProjectionFor(table);
    return p == nullptr ? full_width : static_cast<uint32_t>(p->size());
  }

  /// Structural validation against a table binding: source indexes in
  /// range, chains reference only earlier chains, join columns inside the
  /// widths they apply to, filter and aggregation columns in bounds.
  Status Validate(const std::vector<const Table*>& tables) const;

  /// Same validation against bare table widths — for executors that bind
  /// the plan to something other than mt::Table (the cluster executor
  /// binds it to partitioned relations).
  Status ValidateWidths(const std::vector<uint32_t>& table_widths) const;

  /// Row width flowing out of `chain` (input width + sum of build widths).
  uint32_t OutputWidth(const std::vector<const Table*>& tables,
                       uint32_t chain) const;
  uint32_t OutputWidthFrom(const std::vector<uint32_t>& table_widths,
                           uint32_t chain) const;

  /// Chains whose output is consumed as a later build source (must be
  /// materialized). The final chain never needs materialization.
  std::vector<bool> MaterializedChains() const;

  /// Offset of each base table's columns inside the final chain's output
  /// row (every table's columns appear exactly once in a join result).
  /// Entries stay UINT32_MAX for tables the final output does not contain
  /// — possible only in malformed plans, since PlanQuery-level validation
  /// requires every chain to feed the final one.
  std::vector<uint32_t> FinalLayout(
      const std::vector<uint32_t>& table_widths) const;

  std::string ToString() const;
};

/// Convenience constructors for the shapes the paper's plans produce.
///
/// Right-deep chain: fact ⋈ dims[0] ⋈ dims[1] ⋈ ... — one chain, every
/// build a base table. `probe_cols[i]` is the fact/table column probing
/// dims[i] (build col 0, the dimension key).
PipelinePlan MakeRightDeepPlan(uint32_t fact_table,
                               const std::vector<uint32_t>& dim_tables,
                               const std::vector<uint32_t>& probe_cols);

/// Bushy two-chain plan: (A ⋈ B) as chain 0, then chain 1 = C ⋈ chain0
/// output ⋈ D... Constructed explicitly in tests; this helper builds the
/// canonical 4-relation bushy shape of the paper's Figure 2:
///   chain0: scan(S) probe build(R);      (R ⋈ S)
///   chain1: scan(U) probe build(T), probe build(chain0).
/// Columns: every table is (key, fk1, ...); joins use the given columns.
struct Fig2Plan {
  PipelinePlan plan;
  // Table indexes expected by the plan: R=0, S=1, T=2, U=3.
};
Fig2Plan MakeFig2BushyPlan(uint32_t r_key_col, uint32_t s_fk_col,
                           uint32_t t_key_col, uint32_t u_fk_col,
                           uint32_t chain0_out_col, uint32_t u_fk2_col);

/// Binds an obs::RowCapture sink to a plan point. Point coordinates on
/// chain c: 0 = the driving scan's output (post-filter, post-projection),
/// j = the output of probe j (1-based), joins.size() = the chain's final
/// output (pre-aggregation). Every row crossing the point is offered to
/// `sink` exactly once — on the threads backend, the cluster backend and
/// the reference executor alike — so the bottom-k samples they retain are
/// directly comparable.
struct CaptureSink {
  uint32_t chain = 0;
  uint32_t point = 0;
  obs::RowCapture* sink = nullptr;
};

/// Single-threaded reference execution (for validating every parallel
/// strategy). Returns the digest of the final chain's output.
Result<ResultDigest> ReferenceExecute(
    const PipelinePlan& plan, const std::vector<const Table*>& tables);

/// Reference execution that also feeds plan-point capture sinks — the
/// ground truth the parallel backends' captures are checked against.
Result<ResultDigest> ReferenceExecute(
    const PipelinePlan& plan, const std::vector<const Table*>& tables,
    const std::vector<CaptureSink>& captures);

/// Reference execution that also returns the final output batch (used by
/// tests that check materialization).
Result<Batch> ReferenceMaterialize(const PipelinePlan& plan,
                                   const std::vector<const Table*>& tables);

}  // namespace hierdb::mt

#endif  // HIERDB_MT_PLAN_H_
