// Columnar data plane: column-major batches, selection vectors and the
// strided kernels the vectorized execution paths run on.
//
// The executors keep activations row-major (a Batch is what queues,
// digests and the cluster wire format understand), but the hot loops —
// Where predicates, scatter/probe hashing, GROUP BY key mixing — are
// restructured to run column-at-a-time over that storage:
//
//   * FilterBatch evaluates a predicate conjunction as one tight compare
//     loop per predicate, producing a selection vector (morsel-local row
//     indexes) instead of a per-row MatchesAll branch.
//   * HashStrided fills a hash column for the survivors in one pass; the
//     scatter loop and RowTable::ProbeBatch consume it instead of calling
//     HashKey row-at-a-time.
//   * ColumnBatch gathers selected rows into per-column vectors when a
//     downstream pass genuinely wants contiguous columns (aggregation key
//     mixing, benches); ToBatch() is the row-major compatibility shim, so
//     digests are computed over identical rows either way.
//
// Everything here is deterministic and value-identical to the scalar
// paths: selection preserves row order, hashing is the same HashKey /
// GroupHash mix — the vectorized executor is an A/B knob
// (ExecOptions::vectorized), never a semantic fork.

#ifndef HIERDB_MT_COLUMN_BATCH_H_
#define HIERDB_MT_COLUMN_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mt/agg.h"
#include "mt/row.h"

namespace hierdb::mt {

/// A selection vector: indexes of surviving rows, morsel-local (relative
/// to the batch slice a kernel ran over), in ascending order.
using SelVec = std::vector<uint32_t>;

/// A column-major batch: one int64 vector per column. The gather/scatter
/// boundary of the vectorized data plane — built from (a selection over)
/// a row-major Batch, handed to column-at-a-time passes, transposed back
/// with ToBatch() where a row-major consumer remains.
class ColumnBatch {
 public:
  ColumnBatch() = default;
  explicit ColumnBatch(uint32_t width) : cols_(width) {}

  uint32_t width() const { return static_cast<uint32_t>(cols_.size()); }
  size_t rows() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  std::vector<int64_t>& col(uint32_t c) { return cols_[c]; }
  const std::vector<int64_t>& col(uint32_t c) const { return cols_[c]; }

  /// Resets to `width` empty columns.
  void Reset(uint32_t width) {
    cols_.assign(width, {});
    rows_ = 0;
  }
  void Clear() {
    for (auto& c : cols_) c.clear();
    rows_ = 0;
  }

  /// Gathers `n` rows of `src` (rows begin+sel[i], or begin+i when sel is
  /// null) into column-major storage, replacing the current contents.
  void GatherFrom(const Batch& src, size_t begin, const uint32_t* sel,
                  size_t n);

  /// Same, but keeps only the source columns in `cols` (projection +
  /// selection in one gather).
  void GatherColumns(const Batch& src, size_t begin, const uint32_t* sel,
                     size_t n, const uint32_t* cols, uint32_t ncols);

  /// Row-major compatibility shim: transposes back into a Batch.
  Batch ToBatch() const;

  /// Full-width, no-selection gather of an entire row-major batch.
  static ColumnBatch FromBatch(const Batch& src);

 private:
  size_t rows_ = 0;
  std::vector<std::vector<int64_t>> cols_;
};

// ---------------------------------------------------------------------------
// Strided kernels. `base` points at the first value of one column inside a
// row-major buffer and `stride` is the row width, so the same kernels run
// over Batch storage (stride = width) and ColumnBatch storage (stride = 1).

/// Dense filter: writes the indexes in [0, n) whose value passes
/// `cmp value` into sel_out (capacity >= n) and returns how many passed.
size_t FilterStrided(const int64_t* base, size_t stride, size_t n, CmpOp cmp,
                     int64_t value, uint32_t* sel_out);

/// Refines an existing selection in place; returns the surviving count.
size_t FilterRefineStrided(const int64_t* base, size_t stride, CmpOp cmp,
                           int64_t value, uint32_t* sel, size_t n);

/// Evaluates a predicate conjunction over rows [begin, begin+n) of `rows`
/// as per-predicate compare loops. Fills `sel` with the morsel-local
/// indexes of surviving rows and returns the count. An empty conjunction
/// selects everything (sel becomes 0..n-1).
size_t FilterBatch(const Batch& rows, size_t begin, size_t n,
                   const std::vector<Predicate>& preds, SelVec* sel);

/// Batched HashKey: out[i] = HashKey(base[sel[i] * stride]) — one pass
/// filling a hash column for scatter bucketing and ProbeBatch lookups.
/// sel == nullptr hashes rows 0..n-1 densely.
void HashStrided(const int64_t* base, size_t stride, const uint32_t* sel,
                 size_t n, uint64_t* out);

/// Batched gather: out[i] = base[sel[i] * stride] (sel == nullptr: dense).
void GatherStrided(const int64_t* base, size_t stride, const uint32_t* sel,
                   size_t n, int64_t* out);

// ---------------------------------------------------------------------------
// Per-column table statistics, computed once at Session::AddTable. The
// planner uses min/max to short-circuit Where predicates that cannot
// reject (always true — dropped before scan time) or cannot pass (always
// false — the scan keeps just that one predicate); distinct_est is a KMV
// (k minimum values) sketch over HashKey, the ROADMAP "distinct-value
// statistics" carry-over.

struct ColumnStats {
  int64_t min = 0;
  int64_t max = 0;
  uint64_t distinct_est = 0;  ///< approximate distinct values (KMV, k=256)
};

/// One linear pass over the batch; empty batch yields zeroed stats.
std::vector<ColumnStats> ComputeColumnStats(const Batch& batch);

/// What a predicate folds to against a column's [min, max] envelope.
enum class PredicateFold : uint8_t {
  kKeep,         ///< can pass and can reject — evaluate at scan time
  kAlwaysTrue,   ///< every value in [min, max] passes
  kAlwaysFalse,  ///< no value in [min, max] passes
};

PredicateFold ClassifyPredicate(const Predicate& p, const ColumnStats& s);

/// Stats-driven pass-fraction estimate for a kKeep predicate, replacing
/// the System R constants when the column carries statistics: equality
/// passes ~1/distinct, inequality its complement, and ranges the covered
/// fraction of the [min, max] span (uniformity assumption). Clamped to
/// [1e-4, 1].
double EstimateSelectivity(const Predicate& p, const ColumnStats& s);

}  // namespace hierdb::mt

#endif  // HIERDB_MT_COLUMN_BATCH_H_
