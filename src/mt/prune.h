// Plan-level column pruning (projection pushdown) for aggregated plans.
//
// A GROUP BY query only ever reads its join keys plus the grouped and
// aggregated columns, yet the pipeline executors ship every base-table
// column through the chain DAG — and on the cluster backend every one of
// those columns rides the kTupleBatch repartition wire. PruneColumns
// computes, per base table, the set of source columns actually referenced
// downstream (probe/build join columns, GROUP BY columns, aggregate
// inputs), records it in PipelinePlan::table_projections, and remaps
// every plan column reference into the pruned coordinate space. Scans and
// build scatters then emit only the kept columns, so chain intermediates,
// build hash tables and cluster tuple shipping all narrow together.
//
// Non-aggregated plans are left untouched: their result digest covers the
// full join rows, so every column is "referenced downstream" by
// definition. Aggregated plans keep a bit-identical digest because the
// aggregate output rows — the only rows digested — are computed from
// exactly the kept columns.

#ifndef HIERDB_MT_PRUNE_H_
#define HIERDB_MT_PRUNE_H_

#include <cstdint>
#include <vector>

#include "mt/plan.h"

namespace hierdb::mt {

struct PruneResult {
  bool changed = false;        ///< any table got a proper-subset projection
  uint64_t columns_kept = 0;   ///< summed |projection| over pruned tables
  uint64_t columns_dropped = 0;  ///< summed dropped columns over pruned tables
};

/// In-place projection pushdown over `plan` (see file comment).
/// `table_widths` are the physical widths of the bound tables. No-op (and
/// `changed == false`) for non-aggregated plans, plans that already carry
/// projections, and plans where every column is referenced.
PruneResult PruneColumns(PipelinePlan* plan,
                         const std::vector<uint32_t>& table_widths);

}  // namespace hierdb::mt

#endif  // HIERDB_MT_PRUNE_H_
