#include "mt/tuple.h"

namespace hierdb::mt {

Relation MakeUniformRelation(uint64_t n, uint64_t key_range, uint64_t seed) {
  Relation r;
  r.reserve(n);
  Rng rng(seed);
  for (uint64_t i = 0; i < n; ++i) {
    r.push_back(Tuple{static_cast<int64_t>(rng.NextBounded(key_range)),
                      static_cast<int64_t>(i)});
  }
  return r;
}

Relation MakeZipfRelation(uint64_t n, uint64_t key_range, double theta,
                          uint64_t seed) {
  Relation r;
  r.reserve(n);
  Rng rng(seed);
  ZipfSampler sampler(static_cast<uint32_t>(key_range), theta);
  for (uint64_t i = 0; i < n; ++i) {
    r.push_back(Tuple{static_cast<int64_t>(sampler.Sample(&rng)),
                      static_cast<int64_t>(i)});
  }
  return r;
}

}  // namespace hierdb::mt
