// Multithreaded mini-executor implementing the paper's dynamic-processing
// model on real data:
//   - work decomposed into self-contained activations (scan morsels and
//     tuple batches bound to a hash bucket);
//   - one queue per thread, primary-queue affinity, any thread may consume
//     any queue of the node (stealing);
//   - bounded queues; a producer hitting a full queue escapes by executing
//     an activation from the destination queue (the procedure-call escape
//     of Section 3.1, adapted to a real thread pool);
//   - bucket-partitioned hash joins with a degree of fragmentation much
//     higher than the thread count, so skewed key distributions still
//     balance.
//
// The executor runs star joins: a fact relation is pipelined through the
// hash tables of every dimension relation (probe chain), exactly the
// pipeline-chain shape the paper's plans produce.

#ifndef HIERDB_MT_EXECUTOR_H_
#define HIERDB_MT_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "mt/hash_table.h"
#include "mt/tuple.h"

namespace hierdb::mt {

struct ExecutorOptions {
  uint32_t threads = 4;
  uint32_t buckets = 128;         ///< degree of fragmentation per join
  uint32_t morsel_tuples = 65536; ///< trigger-activation granularity
  uint32_t batch_tuples = 4096;   ///< data-activation granularity
  uint32_t queue_capacity = 128;  ///< flow control (activations per queue)
};

struct ExecutorStats {
  uint64_t activations = 0;
  uint64_t nonprimary_consumptions = 0;  ///< consumed from another queue
  uint64_t full_queue_escapes = 0;       ///< producer helped a full queue
  uint64_t result_tuples = 0;
  uint64_t checksum = 0;  ///< order-independent result digest
};

/// Result of a star join: output cardinality plus an order-independent
/// checksum for validation against the single-threaded reference.
struct JoinResult {
  uint64_t count = 0;
  uint64_t checksum = 0;
};

/// Single-threaded reference implementation (for tests).
JoinResult ReferenceStarJoin(const Relation& fact,
                             const std::vector<const Relation*>& dims);

class StarJoinExecutor {
 public:
  explicit StarJoinExecutor(const ExecutorOptions& options);
  ~StarJoinExecutor();

  StarJoinExecutor(const StarJoinExecutor&) = delete;
  StarJoinExecutor& operator=(const StarJoinExecutor&) = delete;

  /// Executes fact ⋈ dims[0] ⋈ dims[1] ... on `options.threads` threads.
  /// Returns the join cardinality and checksum; fills `stats` if given.
  Result<JoinResult> Execute(const Relation& fact,
                             const std::vector<const Relation*>& dims,
                             ExecutorStats* stats = nullptr);

 private:
  struct Activation {
    enum class Kind { kScanBuild, kBuildBatch, kScanProbe, kProbeBatch };
    Kind kind;
    uint32_t dim = 0;     // kScanBuild / kBuildBatch
    uint32_t bucket = 0;  // kBuildBatch / kProbeBatch
    size_t begin = 0;     // scan morsel range
    size_t end = 0;
    std::vector<Tuple> batch;
  };

  class BoundedQueue {
   public:
    /// Moves from `a` only on success; on failure (full) `a` is untouched.
    bool TryPush(Activation&& a, uint32_t capacity);
    bool TryPopFront(Activation* out);
    bool TryPopBack(Activation* out);
    size_t ApproxSize() const { return size_.load(std::memory_order_relaxed); }

   private:
    std::mutex mu_;
    std::deque<Activation> items_;
    std::atomic<size_t> size_{0};
  };

  void WorkerLoop(uint32_t self);
  bool RunOne(uint32_t self);  // returns false when no work was found
  void Execute(const Activation& a, uint32_t self);
  void Emit(uint32_t self, Activation a);
  void ScatterAndEmit(uint32_t self, const Relation& rel, size_t begin,
                      size_t end, Activation::Kind kind, uint32_t dim);

  uint32_t BucketOf(int64_t key) const {
    return static_cast<uint32_t>(HashKey(key) % options_.buckets);
  }
  uint32_t QueueOf(uint32_t bucket) const {
    return bucket % options_.threads;
  }

  ExecutorOptions options_;

  // Per-run state.
  const Relation* fact_ = nullptr;
  std::vector<const Relation*> dims_;
  std::vector<std::vector<HashTable>> tables_;     // [dim][bucket]
  std::vector<std::unique_ptr<std::mutex>> bucket_mu_;  // [dim*buckets+b]

  std::vector<std::unique_ptr<BoundedQueue>> queues_;  // per thread

  std::atomic<uint64_t> outstanding_{0};  // unfinished activations
  std::atomic<bool> done_{false};
  std::atomic<uint64_t> result_count_{0};
  std::atomic<uint64_t> result_checksum_{0};
  std::atomic<uint64_t> stat_acts_{0};
  std::atomic<uint64_t> stat_nonprimary_{0};
  std::atomic<uint64_t> stat_escapes_{0};

  // Two-phase schedule: builds must finish before probes start (the hash
  // constraint build < probe).
  std::atomic<uint64_t> build_outstanding_{0};
  std::atomic<bool> probe_released_{false};
  std::atomic<size_t> probe_cursor_{0};  // next fact morsel to scan
};

}  // namespace hierdb::mt

#endif  // HIERDB_MT_EXECUTOR_H_
