// Relational filter predicates and two-phase GROUP BY aggregation — the
// first operator class beyond hash joins.
//
// The paper's execution model is operator-agnostic: work is decomposed
// into self-contained activations flowing through pipeline chains, and the
// load-balancing hierarchy never inspects what an operator computes. This
// module supplies the operator *bodies* that extend the join pipelines to
// warehouse-style reporting queries:
//
//   Predicate   a scan-level comparison on one column of a base relation,
//               applied where the relation's rows first enter the pipeline
//               (the driving scan's morsels or a build's scatter), so
//               filtered rows never cost a queue operation downstream;
//
//   AggSpec     GROUP BY columns (of the final chain's output row) plus
//               COUNT/SUM/MIN/MAX/AVG aggregates, executed in two phases
//               exactly like the parallel-groupby literature's local
//               partial -> partitioned global merge: every worker (or
//               cluster node) accumulates a private partial hash table
//               over the final rows it produces, then partials repartition
//               by group-key hash and disjoint partitions merge in
//               parallel.
//
// Partial state is itself a flat int64 row — group values followed by one
// or two accumulator slots per aggregate — so partials ship between
// cluster nodes through the existing tuple-batch encoding and merge on
// arrival with no extra wire format.
//
// Determinism: every accumulator is exact integer arithmetic (sums in
// two's-complement via unsigned adds, AVG emitted as truncated sum/count),
// so the same input multiset yields bit-identical group rows on every
// backend and thread interleaving — the property the cross-backend digest
// tests rely on.

#ifndef HIERDB_MT_AGG_H_
#define HIERDB_MT_AGG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "mt/row.h"

namespace hierdb::mt {

// ---------------------------------------------------------------------
// Scan-level filter predicates.

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// One comparison on one column of a base relation's rows.
struct Predicate {
  uint32_t col = 0;
  CmpOp cmp = CmpOp::kEq;
  int64_t value = 0;

  bool Matches(int64_t v) const {
    switch (cmp) {
      case CmpOp::kEq: return v == value;
      case CmpOp::kNe: return v != value;
      case CmpOp::kLt: return v < value;
      case CmpOp::kLe: return v <= value;
      case CmpOp::kGt: return v > value;
      case CmpOp::kGe: return v >= value;
    }
    return false;
  }
};

/// Conjunction over one row (empty list = all rows pass).
inline bool MatchesAll(const std::vector<Predicate>& preds,
                       const int64_t* row) {
  for (const Predicate& p : preds) {
    if (!p.Matches(row[p.col])) return false;
  }
  return true;
}

/// Order-insensitive identity of a predicate list (folded into build-cache
/// keys so a filtered build never aliases an unfiltered one). 0 = empty.
uint64_t PredicatesHash(const std::vector<Predicate>& preds);

// ---------------------------------------------------------------------
// GROUP BY / aggregation.

enum class AggFn : uint8_t { kCount, kSum, kMin, kMax, kAvg };

const char* AggFnName(AggFn fn);

/// One aggregate over a column of the final chain's output row (the column
/// is ignored for kCount).
struct AggExpr {
  AggFn fn = AggFn::kCount;
  uint32_t col = 0;
};

/// The aggregation applied to the final chain's output. Output rows are
/// the group-by values followed by one value per aggregate; with no
/// group columns the whole result is one group (a global aggregate), and
/// with no aggregates the output is the distinct group-value combinations.
/// Zero input rows produce zero groups on every backend.
struct AggSpec {
  std::vector<uint32_t> group_cols;
  std::vector<AggExpr> aggs;

  /// HAVING: predicates over the *output* row (group values then
  /// aggregates, so col < OutputWidth()), applied as groups are finalized
  /// — EmitFinal skips non-matching groups in both the row and the digest,
  /// which keeps every backend's funnel (thread merge, cluster node merge,
  /// SP, the reference) bit-identical.
  std::vector<Predicate> having;

  /// Internal partial-row width: group values + accumulator slots (AVG
  /// carries sum and count; every other aggregate one slot).
  uint32_t PartialWidth() const;
  /// Final output-row width: group values + one column per aggregate.
  uint32_t OutputWidth() const;

  /// Column-bound and non-emptiness checks against the aggregated row
  /// width.
  Status Validate(uint32_t input_width) const;

  std::string ToString() const;
};

/// Deterministic hash of a group-value prefix — the one hash function the
/// thread-level merge partitioning and the cluster's node repartitioning
/// share (partials for one group always land in the same partition).
uint64_t GroupHash(const int64_t* vals, uint32_t n);

/// A chained hash table from group values to an accumulator (partial) row,
/// storing each entry's group hash so merge phases can select partitions
/// without rehashing. Not thread-safe: one table per worker/partition.
class AggTable {
 public:
  AggTable() = default;
  explicit AggTable(const AggSpec* spec) { Init(spec); }

  void Init(const AggSpec* spec);
  bool initialized() const { return spec_ != nullptr; }

  /// Phase 1: folds one final-chain output row into its group's partial.
  void Accumulate(const int64_t* row);

  /// Reusable scratch for AccumulateBatch (hash column + gathered keys).
  struct BatchScratch {
    std::vector<uint64_t> hashes;
    std::vector<int64_t> keys;  ///< row-major n x |group_cols| gather
  };

  /// Vectorized phase 1: folds rows begin+sel[i], i in [0, n) (sel ==
  /// nullptr: rows begin..begin+n-1) of a row-major batch. Group keys are
  /// gathered and their GroupHash mixed column-at-a-time — bit-identical
  /// to the scalar per-row hash — leaving only the table lookup and
  /// accumulator update per row. `col_map` (optional) maps the spec's
  /// column indexes onto physical columns of `rows` (executors pass a
  /// table's projection when accumulating straight from unprojected
  /// source rows).
  void AccumulateBatch(const Batch& rows, size_t begin, const uint32_t* sel,
                       size_t n, const uint32_t* col_map,
                       BatchScratch* scratch);

  /// Merge phase: folds one partial row (PartialWidth layout) produced by
  /// another table over the same spec.
  void MergePartial(const int64_t* partial);

  size_t groups() const {
    return partial_width_ == 0 ? 0 : pool_.size() / partial_width_;
  }
  uint64_t bytes() const {
    return pool_.size() * sizeof(int64_t) +
           (hashes_.size() * sizeof(uint64_t)) +
           (next_.size() + heads_.size()) * sizeof(uint32_t);
  }

  /// Appends the partial rows whose group hash lands in partition `part`
  /// of `parts` to `out` (width = PartialWidth). `parts` = 1 emits all.
  void EmitPartials(uint32_t part, uint32_t parts, Batch* out) const;

  /// Visits the partial rows of one partition in place (the zero-copy
  /// variant of EmitPartials, used by the shared-memory merge phase).
  template <typename Fn>
  void ForEachPartial(uint32_t part, uint32_t parts, Fn&& fn) const {
    const size_t n = groups();
    for (size_t i = 0; i < n; ++i) {
      if (parts > 1 && hashes_[i] % parts != part) continue;
      fn(pool_.data() + i * partial_width_);
    }
  }

  /// Appends the finalized output rows (AVG divided out) to `out` and/or
  /// the order-independent digest; either may be null.
  void EmitFinal(Batch* out, ResultDigest* digest) const;

 private:
  static constexpr uint32_t kNoEntry = UINT32_MAX;

  /// Finds the group matching `vals` (hash `h`) or inserts a fresh
  /// identity-initialized partial. Returns the partial row.
  int64_t* FindOrInsert(const int64_t* vals, uint64_t h);
  void Rehash();

  const AggSpec* spec_ = nullptr;
  uint32_t partial_width_ = 0;
  std::vector<int64_t> pool_;      ///< partial rows, row-major
  std::vector<uint64_t> hashes_;   ///< group hash per row
  std::vector<uint32_t> next_;
  std::vector<uint32_t> heads_;
};

/// Single-threaded reference aggregation of `rows` (final-chain output)
/// under `spec` — the oracle the parallel paths are validated against.
Batch ReferenceAggregate(const Batch& rows, const AggSpec& spec);

}  // namespace hierdb::mt

#endif  // HIERDB_MT_AGG_H_
