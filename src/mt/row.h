// Fixed-width multi-column rows for the general pipeline executor.
//
// The single-key Tuple of the star-join executor cannot express bushy
// multi-join plans, where every probe joins on a different column and the
// pipelined row widens as it flows. A Batch is a flat row-major buffer of
// int64 columns — the unit a data activation carries (the paper increases
// data-activation granularity by buffering; a batch is that buffer).
//
// Join semantics: probe rows match build rows on one column each; the
// output row is the concatenation (probe columns then build columns),
// exactly the relational join on fixed-width integer relations.

#ifndef HIERDB_MT_ROW_H_
#define HIERDB_MT_ROW_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "mt/tuple.h"

namespace hierdb::mt {

/// A row-major batch of fixed-width rows.
class Batch {
 public:
  Batch() = default;
  explicit Batch(uint32_t width) : width_(width) {}

  uint32_t width() const { return width_; }
  size_t rows() const { return width_ == 0 ? 0 : data_.size() / width_; }
  bool empty() const { return data_.empty(); }

  const int64_t* row(size_t i) const { return data_.data() + i * width_; }
  int64_t at(size_t i, uint32_t col) const { return data_[i * width_ + col]; }

  void AppendRow(const int64_t* cols) {
    data_.insert(data_.end(), cols, cols + width_);
  }
  /// Bulk append of `n` contiguous rows (one memmove instead of a
  /// per-row insert in the probe/materialize inner loops).
  void AppendRows(const int64_t* rows, size_t n) {
    data_.insert(data_.end(), rows, rows + n * width_);
  }
  /// Appends the concatenation of two row fragments.
  void AppendConcat(const int64_t* a, uint32_t na, const int64_t* b,
                    uint32_t nb) {
    data_.insert(data_.end(), a, a + na);
    data_.insert(data_.end(), b, b + nb);
  }
  /// Appends `row[cols[0]], row[cols[1]], ...` — a column-projected copy
  /// of one source row (cols.size() must equal width()).
  void AppendRowProjected(const int64_t* row,
                          const std::vector<uint32_t>& cols) {
    size_t at = data_.size();
    data_.resize(at + cols.size());
    for (size_t i = 0; i < cols.size(); ++i) data_[at + i] = row[cols[i]];
  }

  void Reserve(size_t rows) { data_.reserve(rows * width_); }
  void Clear() { data_.clear(); }

  uint64_t bytes() const { return data_.size() * sizeof(int64_t); }

  std::vector<int64_t>& data() { return data_; }
  const std::vector<int64_t>& data() const { return data_; }

 private:
  uint32_t width_ = 0;
  std::vector<int64_t> data_;
};

/// A base relation: one batch plus a name for diagnostics.
struct Table {
  std::string name;
  Batch batch;

  uint32_t width() const { return batch.width(); }
  size_t rows() const { return batch.rows(); }
};

/// Order-independent digest of a row (for result validation across thread
/// interleavings).
uint64_t RowDigest(const int64_t* row, uint32_t width);

/// Summed row digests + count: equal iff two executions produced the same
/// multiset of rows.
struct ResultDigest {
  uint64_t count = 0;
  uint64_t checksum = 0;

  void Add(const int64_t* row, uint32_t width) {
    ++count;
    checksum += RowDigest(row, width);
  }
  void Merge(const ResultDigest& o) {
    count += o.count;
    checksum += o.checksum;
  }
  bool operator==(const ResultDigest& o) const = default;
};

/// Builds a table of `rows` rows and `width` columns. Column 0 is a dense
/// unique id; columns >= 1 are foreign keys drawn uniformly from
/// [0, fk_range).
Table MakeTable(std::string name, size_t rows, uint32_t width,
                int64_t fk_range, uint64_t seed);

/// Same but column `skew_col` is Zipf(theta)-distributed over
/// [0, fk_range) — attribute-value skew on one join column.
Table MakeSkewedTable(std::string name, size_t rows, uint32_t width,
                      int64_t fk_range, uint32_t skew_col, double theta,
                      uint64_t seed);

}  // namespace hierdb::mt

#endif  // HIERDB_MT_ROW_H_
