#include "mt/prune.h"

#include <algorithm>
#include <set>

#include "common/status.h"

namespace hierdb::mt {

namespace {

/// Position of `x` in the sorted vector `v` (which must contain it).
uint32_t IndexOf(const std::vector<uint32_t>& v, uint32_t x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  HIERDB_CHECK(it != v.end() && *it == x,
               "pruned plan rewrite lost a required column");
  return static_cast<uint32_t>(it - v.begin());
}

}  // namespace

PruneResult PruneColumns(PipelinePlan* plan,
                         const std::vector<uint32_t>& table_widths) {
  PruneResult res;
  if (!plan->agg.has_value()) return res;
  for (const auto& p : plan->table_projections) {
    if (!p.empty()) return res;  // already pruned
  }
  const size_t nchains = plan->chains.size();
  if (nchains == 0) return res;

  // --- Original-coordinate layout of every chain's output row: the input
  // entry followed by each build entry, offsets within the output row.
  struct Entry {
    Source src;
    uint32_t offset = 0;
    uint32_t width = 0;  ///< original (unpruned) width
  };
  std::vector<std::vector<Entry>> entries(nchains);
  std::vector<uint32_t> out_width(nchains, 0);
  for (size_t c = 0; c < nchains; ++c) {
    const Chain& chain = plan->chains[c];
    uint32_t pos = 0;
    auto width_of = [&](const Source& s) {
      return s.kind == Source::Kind::kTable ? table_widths[s.index]
                                            : out_width[s.index];
    };
    entries[c].push_back({chain.input, 0, width_of(chain.input)});
    pos += entries[c].back().width;
    for (const JoinStep& j : chain.joins) {
      entries[c].push_back({j.build, pos, width_of(j.build)});
      pos += entries[c].back().width;
    }
    out_width[c] = pos;
  }

  // --- Backward requirement pass: which original output coordinates of
  // each chain (and which source columns of each table) feed anything
  // downstream. Chains only reference earlier chains, so walking the
  // chains in reverse sees every consumer before its producer.
  std::vector<std::set<uint32_t>> chain_req(nchains);
  std::vector<std::set<uint32_t>> table_req(table_widths.size());
  const AggSpec& spec = *plan->agg;
  const size_t final_chain = nchains - 1;
  for (uint32_t g : spec.group_cols) chain_req[final_chain].insert(g);
  for (const AggExpr& a : spec.aggs) {
    if (a.fn != AggFn::kCount) chain_req[final_chain].insert(a.col);
  }
  for (size_t c = nchains; c-- > 0;) {
    const Chain& chain = plan->chains[c];
    std::set<uint32_t>& req = chain_req[c];
    for (const JoinStep& j : chain.joins) req.insert(j.probe_col);
    auto need = [&](const Source& s, uint32_t local) {
      if (s.kind == Source::Kind::kTable) {
        table_req[s.index].insert(local);
      } else {
        chain_req[s.index].insert(local);
      }
    };
    for (uint32_t x : req) {
      // Find the entry whose span contains x (entries are offset-sorted).
      const auto& es = entries[c];
      size_t e = es.size() - 1;
      while (es[e].offset > x) --e;
      need(es[e].src, x - es[e].offset);
    }
    for (size_t j = 0; j < chain.joins.size(); ++j) {
      need(chain.joins[j].build, chain.joins[j].build_col);
    }
  }

  // --- Keep lists. A table that contributes nothing (global COUNT(*))
  // still keeps one column so its batches stay well-formed.
  std::vector<std::vector<uint32_t>> keep(table_widths.size());
  bool any_pruned = false;
  for (size_t t = 0; t < table_widths.size(); ++t) {
    if (table_req[t].empty()) table_req[t].insert(0);
    keep[t].assign(table_req[t].begin(), table_req[t].end());
    if (keep[t].size() < table_widths[t]) {
      any_pruned = true;
      res.columns_kept += keep[t].size();
      res.columns_dropped += table_widths[t] - keep[t].size();
    }
  }
  if (!any_pruned) return res;

  // --- Forward pass: each chain's kept output coordinates (original
  // coordinate space, ascending — entries are emitted in offset order and
  // every source's keep list is sorted).
  std::vector<std::vector<uint32_t>> chain_kept(nchains);
  for (size_t c = 0; c < nchains; ++c) {
    for (const Entry& e : entries[c]) {
      const std::vector<uint32_t>& src_kept =
          e.src.kind == Source::Kind::kTable ? keep[e.src.index]
                                             : chain_kept[e.src.index];
      for (uint32_t local : src_kept) {
        chain_kept[c].push_back(e.offset + local);
      }
    }
  }

  // --- Rewrite every column reference into pruned coordinates. A chain's
  // pruned prefix (entries 0..j) is a prefix of its pruned output, so a
  // probe column's index in chain_kept is its pruned pipelined-row index.
  for (size_t c = 0; c < nchains; ++c) {
    for (JoinStep& j : plan->chains[c].joins) {
      j.probe_col = IndexOf(chain_kept[c], j.probe_col);
      const std::vector<uint32_t>& src_kept =
          j.build.kind == Source::Kind::kTable ? keep[j.build.index]
                                               : chain_kept[j.build.index];
      j.build_col = IndexOf(src_kept, j.build_col);
    }
  }
  AggSpec& out_spec = *plan->agg;
  for (uint32_t& g : out_spec.group_cols) {
    g = IndexOf(chain_kept[final_chain], g);
  }
  for (AggExpr& a : out_spec.aggs) {
    a.col = a.fn == AggFn::kCount ? 0
                                  : IndexOf(chain_kept[final_chain], a.col);
  }
  plan->table_projections.assign(table_widths.size(),
                                 std::vector<uint32_t>());
  for (size_t t = 0; t < table_widths.size(); ++t) {
    if (keep[t].size() < table_widths[t]) {
      plan->table_projections[t] = keep[t];
    }
  }
  res.changed = true;
  return res;
}

}  // namespace hierdb::mt
