// Shared build-side reuse across concurrent queries.
//
// Concurrent queries probing the same dimension/fact tables each used to
// scatter and hash the build side independently — pure repeated work (FDB
// [Bakibayev12] makes the general case for factoring repeated computation
// out of a query engine). The BuildCache keys a completed per-bucket hash
// table set on
//
//     (table, column, buckets, seed/skew, filters)
//
// where `table` is a content hash of the build relation's rows (so the
// key is valid independent of registration order or table storage),
// `seed/skew` folds in the synthesis parameters for catalog-only
// relations bound at plan time (two queries share a synthesized build
// only when seed, skew and bind scale all match), and `filters` hashes
// the scan-level predicates applied to the build rows (a filtered build
// never aliases an unfiltered one). A session owns one cache;
// mt::PipelineExecutor consults it for every build whose source is a base
// table through a promise-based protocol:
//
//   Acquire   returns the published tables (hit), marks the caller the
//             *builder* of a fresh in-flight entry (first miss), or —
//             when another query's build of the same key is already in
//             flight — waits for that build to publish instead of
//             duplicating the work (counted in Stats::dedup_waits). A
//             waiter whose query is cancelled, or that waits out the
//             safety timeout, proceeds solo: it builds locally and does
//             not publish.
//
//   Publish   installs the builder's finished bucket tables; every waiter
//             wakes with a hit. Probes of the building run read them via
//             the executor's shared-entry indirection.
//
//   Abandon   removes an in-flight entry whose builder will never publish
//             (cancelled or failed execution); the next waiter to wake
//             becomes the new builder.
//
// Capacity is bounded by an optional byte budget (SetByteBudget,
// SessionOptions::build_cache_bytes): published entries are kept on an
// LRU list ordered by last hit, and publishing evicts least-recently-hit
// entries until the resident hash-table bytes fit the budget again (the
// newest entry itself is never evicted, so a single oversized build still
// serves its own stream). Session::AddTable clears the cache
// (conservative invalidation; content-hash keys would stay correct,
// clearing bounds memory and keeps the documented contract simple).
// In-flight executions hold shared_ptr references, so Clear and eviction
// never free tables under a running probe.

#ifndef HIERDB_MT_BUILD_CACHE_H_
#define HIERDB_MT_BUILD_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mt/row.h"
#include "mt/row_table.h"

namespace hierdb::mt {

/// Order-sensitive content hash of a batch (identical rows in identical
/// order => identical hash). Computed once per registered table and once
/// per synthesized table at plan time.
uint64_t TableContentHash(const Batch& batch);

struct BuildKey {
  uint64_t table = 0;      ///< content hash of the build relation
  uint32_t column = 0;     ///< build (key) column
  uint32_t buckets = 0;    ///< degree of fragmentation
  uint64_t seed_skew = 0;  ///< synthesis identity; 0 for registered tables
  uint64_t filters = 0;    ///< PredicatesHash of the build's scan filters
  /// Identity of the build's column projection (0 = all columns): a
  /// pruned build stores narrowed rows with remapped key columns, so it
  /// must never alias an unpruned build of the same table.
  uint64_t projection = 0;

  bool operator==(const BuildKey&) const = default;
};

struct BuildKeyHash {
  size_t operator()(const BuildKey& k) const {
    uint64_t h = k.table;
    h ^= (static_cast<uint64_t>(k.column) << 32 | k.buckets) +
         0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h ^= k.seed_skew + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h ^= k.filters + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h ^= k.projection + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// One join's per-bucket hash tables, sized to BuildKey::buckets.
using BucketTables = std::vector<RowTable>;

class BuildCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t invalidations = 0;  ///< Clear() calls
    uint64_t dedup_waits = 0;    ///< acquisitions served by waiting on an
                                 ///< in-flight build instead of rebuilding
    uint64_t evictions = 0;      ///< entries dropped by the byte budget
    uint64_t entries = 0;        ///< snapshot: published entries
    uint64_t bytes = 0;          ///< snapshot: resident hash-table bytes
  };

  /// What Acquire resolved the key to.
  struct Acquired {
    /// Non-null: a published entry (hit — possibly after waiting out
    /// another query's in-flight build).
    std::shared_ptr<const BucketTables> tables;
    /// True: the caller owns the in-flight entry and must Publish or
    /// Abandon it. False with null tables: build solo, do not publish
    /// (the wait was cancelled or timed out).
    bool builder = false;
    bool waited = false;  ///< blocked behind another query's build
  };

  /// Resolves `key` per the protocol above. `cancelled` (optional) is
  /// polled while waiting so a cancelled query stops blocking promptly.
  /// `allow_wait = false` turns an in-flight entry into an immediate solo
  /// miss instead of waiting — callers that already hold an unpublished
  /// builder entry MUST pass false, or two queries acquiring overlapping
  /// key sets in different orders stall on each other (hold-and-wait:
  /// neither can publish before it starts executing).
  Acquired Acquire(const BuildKey& key,
                   const std::function<bool()>& cancelled = nullptr,
                   bool allow_wait = true);

  /// Publishes a builder's completed tables and wakes the key's waiters.
  void Publish(const BuildKey& key,
               std::shared_ptr<const BucketTables> tables);

  /// Drops an in-flight entry whose builder will not publish; the next
  /// waiter becomes the builder. No-op once the key is published.
  void Abandon(const BuildKey& key);

  /// LRU byte budget over published entries (0 = unbounded, the default).
  void SetByteBudget(uint64_t bytes);

  /// Drops every entry (in-flight readers keep their shared_ptrs alive;
  /// waiters on in-flight builds re-acquire as builders).
  void Clear();

  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const BucketTables> tables;  ///< null while building
    bool building = true;
    uint64_t bytes = 0;
    std::list<BuildKey>::iterator lru;  ///< valid once published
  };

  /// Pre: lock held. Evicts least-recently-hit entries (never `keep`)
  /// until resident bytes fit the budget.
  void EvictLocked(const BuildKey& keep);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<BuildKey, Entry, BuildKeyHash> map_;
  std::list<BuildKey> lru_;  ///< published keys, most recently hit first
  uint64_t budget_bytes_ = 0;
  uint64_t resident_bytes_ = 0;
  Stats stats_;
};

}  // namespace hierdb::mt

#endif  // HIERDB_MT_BUILD_CACHE_H_
