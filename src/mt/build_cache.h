// Shared build-side reuse across concurrent queries.
//
// Concurrent queries probing the same dimension/fact tables each used to
// scatter and hash the build side independently — pure repeated work (FDB
// [Bakibayev12] makes the general case for factoring repeated computation
// out of a query engine). The BuildCache keys a completed per-bucket hash
// table set on
//
//     (table, column, buckets, seed/skew)
//
// where `table` is a content hash of the build relation's rows (so the
// key is valid independent of registration order or table storage), and
// `seed/skew` folds in the synthesis parameters for catalog-only
// relations bound at plan time (two queries share a synthesized build
// only when seed, skew and bind scale all match). A session owns one
// cache; mt::PipelineExecutor consults it for every build whose source is
// a base table:
//
//   hit   the build operator is born finished — no scatter, no inserts —
//         and probes read the shared (immutable) bucket tables;
//   miss  the build runs normally and the finished bucket tables are
//         published for later/overlapping queries (the bucket tables own
//         their rows, so entries outlive the source table).
//
// Two queries missing the same key concurrently both build and the last
// insert wins — correct, just unshared; in a stream the first wave pays
// and the rest hit. Session::AddTable clears the cache (conservative
// invalidation; content-hash keys would stay correct, clearing bounds
// memory and keeps the documented contract simple). In-flight executions
// hold shared_ptr references, so Clear never frees tables under a
// running probe.

#ifndef HIERDB_MT_BUILD_CACHE_H_
#define HIERDB_MT_BUILD_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mt/row.h"
#include "mt/row_table.h"

namespace hierdb::mt {

/// Order-sensitive content hash of a batch (identical rows in identical
/// order => identical hash). Computed once per registered table and once
/// per synthesized table at plan time.
uint64_t TableContentHash(const Batch& batch);

struct BuildKey {
  uint64_t table = 0;      ///< content hash of the build relation
  uint32_t column = 0;     ///< build (key) column
  uint32_t buckets = 0;    ///< degree of fragmentation
  uint64_t seed_skew = 0;  ///< synthesis identity; 0 for registered tables

  bool operator==(const BuildKey&) const = default;
};

struct BuildKeyHash {
  size_t operator()(const BuildKey& k) const {
    uint64_t h = k.table;
    h ^= (static_cast<uint64_t>(k.column) << 32 | k.buckets) +
         0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h ^= k.seed_skew + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// One join's per-bucket hash tables, sized to BuildKey::buckets.
using BucketTables = std::vector<RowTable>;

class BuildCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t invalidations = 0;  ///< Clear() calls
    uint64_t entries = 0;        ///< snapshot
    uint64_t bytes = 0;          ///< snapshot: resident hash-table bytes
  };

  /// Returns the cached tables or nullptr (counting a hit or miss).
  std::shared_ptr<const BucketTables> Lookup(const BuildKey& key);

  /// Publishes a completed build (last writer wins on duplicate keys).
  void Insert(const BuildKey& key, std::shared_ptr<const BucketTables> tables);

  /// Drops every entry (in-flight readers keep their shared_ptrs alive).
  void Clear();

  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<BuildKey, std::shared_ptr<const BucketTables>,
                     BuildKeyHash>
      map_;
  Stats stats_;
};

}  // namespace hierdb::mt

#endif  // HIERDB_MT_BUILD_CACHE_H_
