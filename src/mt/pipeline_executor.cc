#include "mt/pipeline_executor.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "mt/column_batch.h"
#include "mt/row_table.h"

namespace hierdb::mt {

double PipelineStats::Imbalance() const {
  if (busy_per_thread.empty()) return 1.0;
  uint64_t max = 0, sum = 0;
  for (uint64_t b : busy_per_thread) {
    max = std::max(max, b);
    sum += b;
  }
  if (sum == 0) return 1.0;
  double mean = static_cast<double>(sum) / busy_per_thread.size();
  return static_cast<double>(max) / mean;
}

// ---------------------------------------------------------------------
// Compiled-plan structures.

struct PipelineExecutor::Activation {
  uint32_t op = 0;
  uint32_t bucket = 0;
  Batch rows;
};

class PipelineExecutor::BoundedQueue {
 public:
  bool TryPush(Activation&& a, uint32_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() >= capacity) return false;
    items_.push_back(std::move(a));
    return true;
  }
  bool TryPopFront(Activation* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }
  bool TryPopBack(Activation* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.back());
    items_.pop_back();
    return true;
  }
  bool ApproxEmpty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.empty();
  }

 private:
  mutable std::mutex mu_;
  std::deque<Activation> items_;
};

// Compiled operator kinds. Build ops scatter their source into per-bucket
// insert batches; scan ops scatter the chain input into the first probe's
// buckets (or straight to the chain output when the chain has no joins);
// probe ops run one join step and forward or finalize.
enum class COp : uint8_t { kScan, kBuild, kProbe };

namespace {

// The one definition of which builds are cacheable and what they key on,
// shared by the DP/FP compile loop and the SP build phase (the two paths
// must stay field-for-field identical or they stop sharing entries).
bool BuildCacheKeyFor(const PipelineOptions& options, const PipelinePlan& plan,
                      uint32_t buckets, const Source& build,
                      uint32_t build_col, BuildKey* key) {
  if (options.build_cache == nullptr ||
      build.kind != Source::Kind::kTable ||
      build.index >= options.table_cache_ids.size() ||
      options.table_cache_ids[build.index] == 0) {
    return false;
  }
  key->table = options.table_cache_ids[build.index];
  key->column = build_col;
  key->buckets = buckets;
  key->seed_skew = options.cache_seed_skew;
  // Scan-level predicates change the built rows: a filtered build must
  // never alias an unfiltered (or differently filtered) one.
  const std::vector<Predicate>* preds = plan.FiltersFor(build.index);
  key->filters = preds != nullptr ? PredicatesHash(*preds) : 0;
  // Same for column projections: a pruned build stores narrowed rows.
  key->projection = 0;
  if (const std::vector<uint32_t>* proj = plan.ProjectionFor(build.index)) {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (uint32_t c : *proj) {
      h ^= c;
      h *= 0x100000001B3ULL;
    }
    key->projection = h == 0 ? 1 : h;
  }
  return true;
}

}  // namespace

struct PipelineExecutor::OpState {
  COp kind = COp::kScan;
  uint32_t chain = 0;
  uint32_t step = 0;          // build/probe: join index in the chain
  uint32_t join = 0;          // global join id (table array index)
  std::vector<uint32_t> blockers;
  uint32_t producer = UINT32_MAX;  // op feeding data activations
  uint32_t consumer = UINT32_MAX;  // op consuming our data activations

  // Trigger work (scan/build): morsels over a source batch. The source
  // pointer is resolved when the op unblocks (chain outputs do not exist
  // earlier).
  Source src;
  const Batch* src_batch = nullptr;
  std::atomic<size_t> morsel_cursor{0};
  std::atomic<int64_t> morsels_left{0};
  size_t total_rows = 0;

  std::atomic<int64_t> data_pending{0};  // queued + in-flight batches
  std::atomic<bool> consumable{false};
  std::atomic<bool> scatter_done{false};  // all morsels executed
  std::atomic<bool> ended{false};
  bool prebuilt = false;  // build satisfied from the shared cache

  double cost_estimate = 0.0;  // FP allocation weight
  uint32_t chain_pos = 0;      // scan = 0, probe j = j + 1 (builds = 0)

  OpState() = default;
  OpState(const OpState&) = delete;
};

struct PipelineExecutor::Shared {
  const PipelinePlan* plan = nullptr;
  std::vector<const Table*> tables;

  // Worker provider + cancellation token for this run; never null.
  ExecContext* ctx = nullptr;
  std::atomic<bool> cancelled{false};

  std::vector<std::unique_ptr<OpState>> ops;
  std::vector<uint32_t> chain_terminal;  // terminal op per chain
  std::vector<bool> materialized;        // chain output kept?

  // queues[op * threads + t]
  std::vector<std::unique_ptr<BoundedQueue>> queues;

  // Per-join bucket hash tables and their insert locks.
  // tables_by_join[join][bucket]; join ids are assigned per (chain, step).
  std::vector<std::vector<RowTable>> join_tables;
  std::vector<std::vector<std::unique_ptr<std::mutex>>> bucket_mu;

  // Shared build-side reuse: prebuilt[join] set (cache hit, or a local
  // build published at build end) makes probes read the shared immutable
  // tables instead of join_tables. offer_key[join] records the cache key
  // a missed cacheable build publishes under.
  std::vector<std::shared_ptr<const BucketTables>> prebuilt;
  std::vector<char> offer_pending;
  std::vector<BuildKey> offer_key;
  uint64_t cache_hits = 0;    // resolved at compile time
  uint64_t cache_misses = 0;

  const RowTable& JoinTable(uint32_t join, uint32_t bucket) const {
    const auto& sp = prebuilt[join];
    return sp != nullptr ? (*sp)[bucket] : join_tables[join][bucket];
  }

  // Guest slots for cross-query stealers: per-worker state (busy, outbox,
  // scratch, digests, partials) is sized threads + guests; a foreign
  // thread borrows a free slot for the duration of one activation.
  std::mutex guest_mu;
  std::vector<uint32_t> guest_free;

  // Chain outputs: per-chain per-thread partials merged at chain end.
  std::vector<std::vector<Batch>> chain_partials;    // [chain][thread]
  std::vector<Batch> chain_outputs;                  // merged
  std::vector<ResultDigest> thread_digests;          // final-chain digest

  // Two-phase aggregation (plans with an AggSpec): every slot folds the
  // final-chain rows it produces into a private partial table; phase 2
  // claims group-hash partitions off agg_cursor and merges every slot's
  // share of the partition into one final table (disjoint partitions, so
  // the merge needs no locks).
  const AggSpec* agg = nullptr;
  std::vector<AggTable> agg_partials;     // per slot
  std::atomic<uint32_t> agg_cursor{0};    // next unclaimed partition
  std::vector<AggTable> agg_finals;       // per partition
  std::vector<Batch> agg_rows;            // per partition (materialize)
  std::vector<ResultDigest> agg_digests;  // per partition
  std::atomic<uint64_t> stat_filtered{0};

  // Pipelined row widths per (chain, step boundary).
  std::vector<std::vector<uint32_t>> width_at;  // [chain][0..joins]

  std::mutex state_mu;                 // guards end/unblock transitions
  std::condition_variable work_cv;
  std::atomic<uint32_t> ops_remaining{0};
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};

  // FP: per-op thread range [lo, hi) packed as (lo << 32) | hi. A thread
  // `t` may run op `i` iff lo <= t < hi. Ranges are disjoint when threads
  // outnumber active operators; otherwise operators share threads
  // round-robin (the paper's configurations always have more processors
  // than operators per stage, so sharing is the degenerate case).
  std::vector<std::atomic<uint64_t>> fp_range;

  // Tracing: null = off (the only cost is this check). Cells are
  // per-(slot, op) aggregates owned exclusively by the slot's holder;
  // they flush into the sink at run end (EmitTraceCells), so cancelled
  // runs still drain. chain_rows is unconditional: the per-chain actual
  // output cardinality (rows produced by each chain's terminal op).
  obs::TraceSink* trace = nullptr;
  uint32_t slots = 0;
  std::vector<obs::OpSpanAgg> trace_cells;  // [slot * nops + op]
  std::vector<uint64_t> chain_rows;         // [chain * slots + slot]

  // Plan-point row captures (options.captures). Empty = the hot paths
  // skip every per-row check behind one `capturing` bool per activation.
  std::vector<CaptureSink> captures;
  void OfferCapture(uint32_t chain, uint32_t point, const int64_t* row,
                    uint32_t width) {
    for (const CaptureSink& cs : captures) {
      if (cs.chain == chain && cs.point == point && cs.sink != nullptr) {
        cs.sink->Offer(row, width);
      }
    }
  }

  // Stats.
  std::vector<uint64_t> busy;  // per thread, padded access is fine here
  std::atomic<uint64_t> stat_morsels{0};
  std::atomic<uint64_t> stat_data{0};
  std::atomic<uint64_t> stat_emitted{0};
  std::atomic<uint64_t> stat_escapes{0};
  std::atomic<uint64_t> stat_nonprimary{0};
  std::atomic<uint64_t> stat_idle{0};
  std::atomic<uint64_t> stat_fp_safety{0};

  // Per-thread outbox: data activations whose destination queue was full.
  // Operator bodies never block — a failed push is staged here and the
  // worker drains it at the top level (the iterative form of the paper's
  // procedure-call suspension; see FlushOutbox).
  std::vector<std::deque<Activation>> outbox;

  // Per-thread scatter scratch, pooled by re-entrancy depth (helping
  // while stuck nests activation executions).
  struct Scratch {
    std::vector<Batch> bucket;
    std::vector<uint32_t> hit;
    // Vectorized data plane: selection vector, hash column and gathered
    // key column reused across activations (mt/column_batch.h kernels).
    SelVec sel;
    std::vector<uint64_t> hashes;
    std::vector<int64_t> keys;
    AggTable::BatchScratch agg;
  };
  std::vector<std::vector<std::unique_ptr<Scratch>>> scratch_pool;
  std::vector<size_t> scratch_depth;

  Scratch& AcquireScratch(uint32_t self, uint32_t buckets) {
    size_t d = scratch_depth[self]++;
    if (d == scratch_pool[self].size()) {
      auto sc = std::make_unique<Scratch>();
      sc->bucket.resize(buckets);
      scratch_pool[self].push_back(std::move(sc));
    }
    return *scratch_pool[self][d];
  }
  void ReleaseScratch(uint32_t self) { --scratch_depth[self]; }
};


PipelineExecutor::PipelineExecutor(const PipelineOptions& options)
    : options_(options) {
  HIERDB_CHECK(options_.threads > 0, "need at least one thread");
  HIERDB_CHECK(options_.buckets > 0, "need at least one bucket");
  HIERDB_CHECK(options_.morsel_rows > 0, "morsel_rows must be positive");
  HIERDB_CHECK(options_.batch_rows > 0, "batch_rows must be positive");
  HIERDB_CHECK(options_.queue_capacity > 0, "queue_capacity must be positive");
}

PipelineExecutor::~PipelineExecutor() = default;

uint32_t PipelineExecutor::CompiledOpCount(const PipelinePlan& plan) {
  uint32_t n = 0;
  for (const Chain& c : plan.chains) {
    n += 1 + 2 * static_cast<uint32_t>(c.joins.size());
  }
  return n;
}

// ---------------------------------------------------------------------
// Compilation: plan -> OpStates with blockers, producers, widths.

Result<ResultDigest> PipelineExecutor::Execute(
    const PipelinePlan& plan, const std::vector<const Table*>& tables,
    PipelineStats* stats, Batch* materialized) {
  HIERDB_RETURN_NOT_OK(plan.Validate(tables));
  if (options_.strategy == LocalStrategy::kSP) {
    return ExecuteSP(plan, tables, stats, materialized);
  }

  // Workers come from the injected context (session pool) or, white-box,
  // from a one-off spawn-per-query context.
  ThreadSpawnContext fallback_ctx;
  ExecContext* ctx = options_.ctx != nullptr ? options_.ctx : &fallback_ctx;

  shared_ = std::make_unique<Shared>();
  Shared& sh = *shared_;
  sh.plan = &plan;
  sh.tables = tables;
  sh.ctx = ctx;
  sh.captures = options_.captures;
  const uint32_t T = options_.threads;
  const uint32_t B = options_.buckets;

  // Assign op ids chain by chain: B(c,0..k-1), S(c), P(c,0..k-1).
  sh.chain_terminal.resize(plan.chains.size());
  sh.materialized = plan.MaterializedChains();
  sh.agg = plan.agg.has_value() ? &*plan.agg : nullptr;
  // Result materialization rides the existing chain-output machinery: treat
  // the final chain as materialized and hand its merged output back. Under
  // aggregation the final chain's rows feed the partial tables instead and
  // the merge phase produces the materialized (aggregate) rows.
  if (materialized != nullptr && sh.agg == nullptr) {
    sh.materialized.back() = true;
  }
  sh.width_at.resize(plan.chains.size());
  uint32_t njoins_total = 0;
  std::vector<uint32_t> scan_of_chain(plan.chains.size());
  std::vector<std::vector<uint32_t>> build_of(plan.chains.size());
  std::vector<std::vector<uint32_t>> probe_of(plan.chains.size());

  auto source_rows = [&](const Source& s) -> double {
    // Estimated rows for FP cost weights; chain outputs are estimated as
    // their input cardinality (the FK-join heuristic). Exact enough for
    // allocation; distortion is injected on top for the error experiments.
    if (s.kind == Source::Kind::kTable) {
      return static_cast<double>(tables[s.index]->rows());
    }
    const Chain& c = plan.chains[s.index];
    if (c.input.kind == Source::Kind::kTable) {
      return static_cast<double>(tables[c.input.index]->rows());
    }
    return 0.0;
  };

  for (uint32_t c = 0; c < plan.chains.size(); ++c) {
    const Chain& chain = plan.chains[c];
    const uint32_t k = static_cast<uint32_t>(chain.joins.size());
    // Width bookkeeping (a projected table source emits only its kept
    // columns, so the pipelined widths shrink with the plan's pruning).
    auto src_width = [&](const Source& s) -> uint32_t {
      return s.kind == Source::Kind::kTable
                 ? plan.EffectiveTableWidth(s.index, tables[s.index]->width())
                 : plan.OutputWidth(tables, s.index);
    };
    sh.width_at[c].push_back(src_width(chain.input));
    for (const JoinStep& j : chain.joins) {
      sh.width_at[c].push_back(sh.width_at[c].back() + src_width(j.build));
    }

    for (uint32_t j = 0; j < k; ++j) {
      auto op = std::make_unique<OpState>();
      op->kind = COp::kBuild;
      op->chain = c;
      op->step = j;
      op->join = njoins_total + j;
      op->src = chain.joins[j].build;
      op->cost_estimate = source_rows(op->src) + 1.0;
      if (op->src.kind == Source::Kind::kChain) {
        op->blockers.push_back(sh.chain_terminal[op->src.index]);
      }
      build_of[c].push_back(static_cast<uint32_t>(sh.ops.size()));
      sh.ops.push_back(std::move(op));
    }
    {
      auto op = std::make_unique<OpState>();
      op->kind = COp::kScan;
      op->chain = c;
      op->src = chain.input;
      op->cost_estimate = source_rows(chain.input) + 1.0;
      if (chain.input.kind == Source::Kind::kChain) {
        op->blockers.push_back(sh.chain_terminal[chain.input.index]);
      }
      if (options_.apply_h1) {
        for (uint32_t j = 0; j < k; ++j) {
          op->blockers.push_back(build_of[c][j]);
        }
      }
      if (options_.apply_h2 && c > 0) {
        op->blockers.push_back(sh.chain_terminal[c - 1]);
      }
      scan_of_chain[c] = static_cast<uint32_t>(sh.ops.size());
      sh.ops.push_back(std::move(op));
    }
    for (uint32_t j = 0; j < k; ++j) {
      auto op = std::make_unique<OpState>();
      op->kind = COp::kProbe;
      op->chain = c;
      op->step = j;
      op->join = njoins_total + j;
      op->cost_estimate = source_rows(chain.input) + 1.0;
      op->chain_pos = j + 1;  // scan is position 0
      op->blockers.push_back(build_of[c][j]);  // hash constraint
      op->producer = (j == 0) ? scan_of_chain[c] : probe_of[c][j - 1];
      probe_of[c].push_back(static_cast<uint32_t>(sh.ops.size()));
      sh.ops.push_back(std::move(op));
    }
    // Wire consumers.
    if (k > 0) {
      sh.ops[scan_of_chain[c]]->consumer = probe_of[c][0];
      for (uint32_t j = 0; j + 1 < k; ++j) {
        sh.ops[probe_of[c][j]]->consumer = probe_of[c][j + 1];
      }
      sh.chain_terminal[c] = probe_of[c][k - 1];
    } else {
      sh.chain_terminal[c] = scan_of_chain[c];
    }
    njoins_total += k;
  }

  // Apply FP cost distortions.
  if (!options_.fp_cost_distortion.empty()) {
    if (options_.fp_cost_distortion.size() != sh.ops.size()) {
      return Status::InvalidArgument(
          "fp_cost_distortion size != compiled op count");
    }
    for (size_t i = 0; i < sh.ops.size(); ++i) {
      sh.ops[i]->cost_estimate *= options_.fp_cost_distortion[i];
    }
  }

  // Shared build-side reuse: resolve every cacheable base-table build
  // against the session cache. A hit makes the build op born-finished
  // (prebuilt); the first misser becomes the key's builder and records the
  // key the finished tables publish under; a concurrent misser waits for
  // that publish instead of duplicating the build (or proceeds solo when
  // its query is cancelled while waiting).
  sh.prebuilt.assign(njoins_total, nullptr);
  sh.offer_pending.assign(njoins_total, 0);
  sh.offer_key.assign(njoins_total, BuildKey{});
  if (options_.build_cache != nullptr) {
    auto cancelled = [ctx] { return ctx->StopRequested(); };
    // Once this query owns an in-flight builder entry it must not wait on
    // other queries' builds: its own publishes only happen during
    // execution, so waiting would be hold-and-wait (two queries acquiring
    // overlapping keys in opposite orders would stall each other out).
    bool holds_builder = false;
    for (uint32_t c = 0; c < plan.chains.size(); ++c) {
      for (uint32_t j = 0; j < plan.chains[c].joins.size(); ++j) {
        OpState& op = *sh.ops[build_of[c][j]];
        BuildKey key;
        if (!BuildCacheKeyFor(options_, plan, B,
                              plan.chains[c].joins[j].build,
                              plan.chains[c].joins[j].build_col, &key)) {
          continue;
        }
        auto got = options_.build_cache->Acquire(
            key, cancelled, /*allow_wait=*/!holds_builder);
        if (got.tables != nullptr) {
          sh.prebuilt[op.join] = std::move(got.tables);
          op.prebuilt = true;
          ++sh.cache_hits;
        } else {
          if (got.builder) {
            holds_builder = true;
            sh.offer_pending[op.join] = 1;
            sh.offer_key[op.join] = key;
          }
          ++sh.cache_misses;
        }
        if (options_.trace != nullptr) {
          obs::TraceEvent ev;
          ev.kind = op.prebuilt ? obs::EventKind::kCacheHit
                                : obs::EventKind::kCacheMiss;
          ev.op = static_cast<int32_t>(build_of[c][j]);
          ev.start_ns = ev.end_ns = options_.trace->NowNs();
          options_.trace->RecordShared(ev);
        }
        if (options_.recorder != nullptr) {
          options_.recorder->Instant(op.prebuilt ? obs::EventKind::kCacheHit
                                                 : obs::EventKind::kCacheMiss,
                                     options_.recorder_query,
                                     build_of[c][j]);
        }
      }
    }
  }

  // Shared structures. Per-worker state is sized threads + guest slots so
  // cross-query stealers get private scratch/digest/outbox slots.
  const uint32_t nops = static_cast<uint32_t>(sh.ops.size());
  const uint32_t slots = T + ctx->GuestSlots();
  for (uint32_t g = T; g < slots; ++g) sh.guest_free.push_back(g);
  sh.queues.reserve(static_cast<size_t>(nops) * T);
  for (uint32_t i = 0; i < nops * T; ++i) {
    sh.queues.push_back(std::make_unique<BoundedQueue>());
  }
  sh.join_tables.resize(njoins_total);
  sh.bucket_mu.resize(njoins_total);
  uint32_t join_id = 0;
  for (uint32_t c = 0; c < plan.chains.size(); ++c) {
    for (uint32_t j = 0; j < plan.chains[c].joins.size(); ++j, ++join_id) {
      if (sh.prebuilt[join_id] != nullptr) continue;  // shared tables
      const Source& b = plan.chains[c].joins[j].build;
      uint32_t bw = b.kind == Source::Kind::kTable
                        ? plan.EffectiveTableWidth(b.index,
                                                   tables[b.index]->width())
                        : plan.OutputWidth(tables, b.index);
      sh.join_tables[join_id].resize(B);
      sh.bucket_mu[join_id].resize(B);
      for (uint32_t bb = 0; bb < B; ++bb) {
        sh.join_tables[join_id][bb].Init(bw,
                                         plan.chains[c].joins[j].build_col);
        sh.bucket_mu[join_id][bb] = std::make_unique<std::mutex>();
      }
    }
  }
  sh.chain_partials.assign(plan.chains.size(), {});
  for (auto& partials : sh.chain_partials) {
    partials.resize(slots);
  }
  sh.chain_outputs.resize(plan.chains.size());
  sh.thread_digests.assign(slots, {});
  if (sh.agg != nullptr) {
    sh.agg_partials.resize(slots);
    for (AggTable& t : sh.agg_partials) t.Init(sh.agg);
  }
  sh.busy.assign(slots, 0);
  sh.outbox.resize(slots);
  sh.scratch_pool.resize(slots);
  sh.scratch_depth.assign(slots, 0);
  sh.slots = slots;
  sh.chain_rows.assign(plan.chains.size() * slots, 0);
  if (options_.trace != nullptr) {
    sh.trace = options_.trace;
    sh.trace->EnsureSlots(slots);
    sh.trace_cells.assign(static_cast<size_t>(slots) * nops,
                          obs::OpSpanAgg{});
  }
  sh.fp_range = std::vector<std::atomic<uint64_t>>(nops);
  for (auto& a : sh.fp_range) a.store(0);
  sh.ops_remaining.store(nops);

  // Unblock initially runnable ops.
  {
    std::lock_guard<std::mutex> lock(sh.state_mu);
    for (uint32_t i = 0; i < nops; ++i) {
      OpState& op = *sh.ops[i];
      if (op.blockers.empty()) {
        op.consumable.store(true);
        if (op.kind != COp::kProbe) ResolveSourceLocked(op);
      }
    }
    if (options_.strategy == LocalStrategy::kFP) RecomputeFpAssignment();
  }
  // Ops that are born finished (empty or prebuilt sources) must end before
  // workers start so the dependency cascade is primed.
  for (uint32_t i = 0; i < nops; ++i) {
    OpState& op = *sh.ops[i];
    if (op.consumable.load() && !op.ended.load() && op.scatter_done.load() &&
        op.kind != COp::kProbe && op.data_pending.load() == 0) {
      OnOpEnded(i);
    }
  }

  // Run: rent workers from the context (or spawn, white-box). The steal
  // hook lets idle threads of other executions run our activations; FP
  // pins threads to operators, so only DP publishes one.
  if (options_.strategy == LocalStrategy::kDP) {
    ctx->SetStealHook([this] { return RunOneForeign(); });
  }
  ctx->SpawnWorkers(T, [this](uint32_t t) { WorkerLoop(t); });
  ctx->ClearStealHook();

  if (sh.cancelled.load()) {
    AbandonPendingOffers();
    EmitTraceCells();
    shared_.reset();
    return Status::Cancelled("query cancelled during execution");
  }
  if (sh.failed.load()) {
    AbandonPendingOffers();
    EmitTraceCells();
    return Status::Internal("pipeline execution failed");
  }

  // Phase 2 of aggregation: merge the per-slot partial tables, one
  // group-hash partition per claim, on workers rented through the same
  // context (pooled stealing and the stop token apply unchanged).
  uint64_t agg_groups = 0, agg_partial_entries = 0;
  if (sh.agg != nullptr) {
    for (const AggTable& t : sh.agg_partials) agg_partial_entries += t.groups();
    // Merge partitions: enough for parallelism (a few per worker), but
    // clamped below the join fragmentation degree — every partition
    // re-scans every slot's partial table, so the scan work grows with P.
    const uint32_t P = std::min(options_.buckets, std::max(16u, 4 * T));
    sh.agg_finals.resize(P);
    for (AggTable& t : sh.agg_finals) t.Init(sh.agg);
    sh.agg_rows.assign(P, Batch());
    sh.agg_digests.assign(P, {});
    sh.agg_cursor.store(0);
    const bool want_rows = materialized != nullptr;
    ctx->SpawnWorkers(T, [this, want_rows](uint32_t) {
      AggMergeWorker(want_rows);
    });
    if (sh.cancelled.load()) {
      EmitTraceCells();
      shared_.reset();
      return Status::Cancelled("query cancelled during aggregation");
    }
    for (const AggTable& t : sh.agg_finals) agg_groups += t.groups();
  }

  ResultDigest digest;
  for (const auto& d : sh.thread_digests) digest.Merge(d);
  if (sh.agg != nullptr) {
    for (const auto& d : sh.agg_digests) digest.Merge(d);
    if (materialized != nullptr) {
      Batch out(sh.agg->OutputWidth());
      size_t total = 0;
      for (const Batch& part : sh.agg_rows) total += part.rows();
      out.Reserve(total);
      for (Batch& part : sh.agg_rows) {
        out.data().insert(out.data().end(), part.data().begin(),
                          part.data().end());
        part.Clear();
      }
      *materialized = std::move(out);
    }
  } else if (materialized != nullptr) {
    *materialized = std::move(sh.chain_outputs.back());
  }

  if (stats != nullptr) {
    stats->morsels = sh.stat_morsels.load();
    stats->data_activations = sh.stat_data.load();
    stats->batches_emitted = sh.stat_emitted.load();
    stats->escapes = sh.stat_escapes.load();
    stats->nonprimary = sh.stat_nonprimary.load();
    stats->idle_waits = sh.stat_idle.load();
    stats->fp_safety_escapes = sh.stat_fp_safety.load();
    stats->build_cache_hits = sh.cache_hits;
    stats->build_cache_misses = sh.cache_misses;
    stats->rows_filtered = sh.stat_filtered.load();
    stats->agg_groups = agg_groups;
    stats->agg_partials = agg_partial_entries;
    // Guest slots (cross-query helpers) are excluded: busy_per_thread
    // drives the per-worker imbalance measure of this query's rental.
    stats->busy_per_thread.assign(sh.busy.begin(), sh.busy.begin() + T);
    stats->rows_per_chain.assign(plan.chains.size(), 0);
    for (uint32_t c = 0; c < plan.chains.size(); ++c) {
      for (uint32_t s = 0; s < slots; ++s) {
        stats->rows_per_chain[c] += sh.chain_rows[c * slots + s];
      }
    }
  }
  EmitTraceCells();
  shared_.reset();
  return digest;
}

void PipelineExecutor::TraceActivation(uint32_t self, uint32_t op_id,
                                       uint64_t t0, uint64_t rows_in,
                                       uint64_t rows_out) {
  Shared& sh = *shared_;
  const size_t nops = sh.ops.size();
  sh.trace_cells[self * nops + op_id].Add(t0, sh.trace->NowNs(), rows_in,
                                          rows_out);
}

void PipelineExecutor::EmitTraceCells() {
  Shared& sh = *shared_;
  if (sh.trace == nullptr) return;
  const size_t nops = sh.ops.size();
  for (uint32_t s = 0; s < sh.slots; ++s) {
    for (size_t i = 0; i < nops; ++i) {
      const obs::OpSpanAgg& c = sh.trace_cells[s * nops + i];
      if (c.empty()) continue;
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kSpan;
      ev.worker = static_cast<int32_t>(s);
      ev.op = static_cast<int32_t>(i);
      ev.start_ns = c.first_ns;
      ev.end_ns = c.last_ns;
      ev.activations = c.activations;
      ev.rows_in = c.rows_in;
      ev.rows_out = c.rows_out;
      ev.detail = c.busy_ns;
      sh.trace->Record(s, ev);
    }
  }
}

void PipelineExecutor::AggMergeWorker(bool want_rows) {
  Shared& sh = *shared_;
  const uint32_t P = static_cast<uint32_t>(sh.agg_finals.size());
  for (;;) {
    if (sh.ctx->StopRequested()) {
      sh.cancelled.store(true);
      return;
    }
    uint32_t p = sh.agg_cursor.fetch_add(1, std::memory_order_relaxed);
    if (p >= P) return;
    AggTable& dst = sh.agg_finals[p];
    for (const AggTable& part : sh.agg_partials) {
      part.ForEachPartial(p, P, [&](const int64_t* row) {
        dst.MergePartial(row);
      });
    }
    dst.EmitFinal(want_rows ? &sh.agg_rows[p] : nullptr, &sh.agg_digests[p]);
  }
}

void PipelineExecutor::AbandonPendingOffers() {
  Shared& sh = *shared_;
  if (options_.build_cache == nullptr) return;
  for (size_t j = 0; j < sh.offer_pending.size(); ++j) {
    if (sh.offer_pending[j]) {
      options_.build_cache->Abandon(sh.offer_key[j]);
    }
  }
}

size_t PipelineExecutor::ResolveSourceLocked(OpState& op) {
  Shared& sh = *shared_;
  if (op.prebuilt) {
    // Build satisfied from the shared cache: nothing to scatter or
    // insert; the op is born finished and probes read the cached tables.
    op.total_rows = 0;
    op.morsels_left.store(0);
    op.scatter_done.store(true);
    return 0;
  }
  op.src_batch = op.src.kind == Source::Kind::kTable
                     ? &sh.tables[op.src.index]->batch
                     : &sh.chain_outputs[op.src.index];
  op.total_rows = op.src_batch->rows();
  size_t morsels =
      (op.total_rows + options_.morsel_rows - 1) / options_.morsel_rows;
  op.morsels_left.store(static_cast<int64_t>(morsels));
  if (morsels == 0) op.scatter_done.store(true);
  return morsels;
}

// Cross-query steal hook: a foreign thread (idle pool worker or a parked
// worker of another execution) borrows a guest slot and runs at most one
// activation of this query — the paper's consumption hierarchy extended
// past the query boundary.
bool PipelineExecutor::RunOneForeign() {
  Shared* shp = shared_.get();
  if (shp == nullptr) return false;
  Shared& sh = *shp;
  if (sh.done.load(std::memory_order_acquire)) return false;
  uint32_t slot;
  {
    std::lock_guard<std::mutex> lock(sh.guest_mu);
    if (sh.guest_free.empty()) return false;
    slot = sh.guest_free.back();
    sh.guest_free.pop_back();
  }
  bool ran = RunOne(slot);
  if (ran) FlushOutbox(slot);
  if (ran && sh.trace != nullptr) {
    // Cross-query help is the session-level steal event.
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kSteal;
    ev.worker = static_cast<int32_t>(slot);
    ev.start_ns = ev.end_ns = sh.trace->NowNs();
    ev.detail = 1;
    sh.trace->Record(slot, ev);
  }
  if (ran && options_.recorder != nullptr) {
    options_.recorder->Instant(obs::EventKind::kSteal, options_.recorder_query,
                               1, 0, static_cast<int32_t>(slot));
  }
  {
    std::lock_guard<std::mutex> lock(sh.guest_mu);
    sh.guest_free.push_back(slot);
  }
  return ran;
}

// ---------------------------------------------------------------------
// Scheduling transitions.

void PipelineExecutor::OnOpEnded(uint32_t op_id) {
  Shared& sh = *shared_;
  std::unique_lock<std::mutex> lock(sh.state_mu);
  OpState& op = *sh.ops[op_id];
  if (op.ended.load()) return;
  op.ended.store(true);
  sh.ops_remaining.fetch_sub(1);

  // A finished cacheable build publishes its bucket tables: moved into a
  // shared entry (probes of this run read it via JoinTable) and inserted
  // into the session cache for overlapping/later queries. Safe under
  // state_mu — probes of this join only become consumable in the cascade
  // below, after the move.
  if (op.kind == COp::kBuild && sh.offer_pending[op.join]) {
    sh.offer_pending[op.join] = 0;
    auto published =
        std::make_shared<BucketTables>(std::move(sh.join_tables[op.join]));
    sh.join_tables[op.join] = BucketTables{};
    sh.prebuilt[op.join] = published;
    options_.build_cache->Publish(sh.offer_key[op.join], std::move(published));
  }

  // Merge chain partials when a terminal op ends.
  if (sh.chain_terminal[op.chain] == op_id) {
    if (sh.materialized[op.chain]) {
      uint32_t width = sh.width_at[op.chain].back();
      Batch merged(width);
      size_t total = 0;
      for (const Batch& part : sh.chain_partials[op.chain]) {
        total += part.rows();
      }
      merged.Reserve(total);
      for (Batch& part : sh.chain_partials[op.chain]) {
        merged.data().insert(merged.data().end(), part.data().begin(),
                             part.data().end());
        part.Clear();
      }
      sh.chain_outputs[op.chain] = std::move(merged);
    }
  }

  // Cascade: unblock dependents, resolve their sources, end empty ops.
  std::vector<uint32_t> newly_ended;
  for (uint32_t i = 0; i < sh.ops.size(); ++i) {
    OpState& other = *sh.ops[i];
    if (other.ended.load() || other.consumable.load()) continue;
    bool ready = true;
    for (uint32_t b : other.blockers) {
      if (!sh.ops[b]->ended.load()) {
        ready = false;
        break;
      }
    }
    if (!ready) continue;
    if (other.kind != COp::kProbe) {
      // Resolve the source BEFORE publishing consumable: workers read
      // src_batch/total_rows right after observing consumable == true
      // (the seq_cst store below is the release edge they synchronize
      // with), so these plain fields must be complete first.
      size_t morsels = ResolveSourceLocked(other);
      other.consumable.store(true);
      if (morsels == 0 && other.data_pending.load() == 0) {
        newly_ended.push_back(i);
      }
    } else {
      other.consumable.store(true);
      // A probe unblocked after its producer already ended with nothing
      // pending is itself finished.
      if (sh.ops[other.producer]->ended.load() &&
          other.data_pending.load() == 0) {
        newly_ended.push_back(i);
      }
    }
  }
  // A consumer probe whose producer just ended may already be drained.
  if (op.consumer != UINT32_MAX) {
    OpState& consumer = *sh.ops[op.consumer];
    if (!consumer.ended.load() && consumer.consumable.load() &&
        consumer.data_pending.load() == 0) {
      newly_ended.push_back(op.consumer);
    }
  }

  if (options_.strategy == LocalStrategy::kFP) RecomputeFpAssignment();

  if (sh.ops_remaining.load() == 0) {
    sh.done.store(true);
  }
  lock.unlock();
  sh.work_cv.notify_all();

  for (uint32_t e : newly_ended) OnOpEnded(e);
}

// FP: apportion threads across consumable, un-ended operators in
// proportion to cost estimates (largest remainder; every such op gets at
// least one thread when possible). Called under state_mu.
void PipelineExecutor::RecomputeFpAssignment() {
  Shared& sh = *shared_;
  const uint32_t T = options_.threads;
  std::vector<uint32_t> active;
  double total_cost = 0.0;
  for (uint32_t i = 0; i < sh.ops.size(); ++i) {
    OpState& op = *sh.ops[i];
    if (op.consumable.load() && !op.ended.load()) {
      active.push_back(i);
      total_cost += op.cost_estimate;
    }
  }
  for (auto& a : sh.fp_range) a.store(0);  // empty range
  if (active.empty()) return;
  auto pack = [](uint32_t lo, uint32_t hi) {
    return (static_cast<uint64_t>(lo) << 32) | hi;
  };
  if (active.size() >= T) {
    // More operators than threads: operator k shares thread k mod T.
    for (size_t k = 0; k < active.size(); ++k) {
      uint32_t t = static_cast<uint32_t>(k) % T;
      sh.fp_range[active[k]].store(pack(t, t + 1));
    }
    return;
  }
  // Largest-remainder apportionment with a floor of one thread per op.
  const uint32_t rest = T - static_cast<uint32_t>(active.size());
  std::vector<double> share(active.size());
  std::vector<uint32_t> extra(active.size(), 0);
  for (size_t k = 0; k < active.size(); ++k) {
    share[k] = total_cost > 0
                   ? sh.ops[active[k]]->cost_estimate / total_cost * rest
                   : static_cast<double>(rest) / active.size();
    extra[k] = static_cast<uint32_t>(share[k]);
  }
  uint32_t used = 0;
  for (uint32_t e : extra) used += e;
  std::vector<size_t> order(active.size());
  for (size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (share[a] - extra[a]) > (share[b] - extra[b]);
  });
  for (size_t k = 0; k < order.size() && used < rest; ++k, ++used) {
    ++extra[order[k]];
  }
  uint32_t t = 0;
  for (size_t k = 0; k < active.size(); ++k) {
    uint32_t width = 1 + extra[k];
    sh.fp_range[active[k]].store(pack(t, t + width));
    t += width;
  }
}

bool PipelineExecutor::ThreadMayRun(uint32_t self, uint32_t op_id) const {
  if (options_.strategy != LocalStrategy::kFP) return true;
  uint64_t packed =
      shared_->fp_range[op_id].load(std::memory_order_relaxed);
  uint32_t lo = static_cast<uint32_t>(packed >> 32);
  uint32_t hi = static_cast<uint32_t>(packed);
  return lo <= self && self < hi;
}

// ---------------------------------------------------------------------
// Worker loop and activation selection.

void PipelineExecutor::WorkerLoop(uint32_t self) {
  Shared& sh = *shared_;
  ExecContext* ctx = sh.ctx;
  while (!sh.done.load(std::memory_order_acquire)) {
    // Cooperative cancellation, checked once per activation: the first
    // observer halts the whole run (Execute returns Status::Cancelled).
    if (ctx->StopRequested()) {
      sh.cancelled.store(true);
      {
        std::lock_guard<std::mutex> lock(sh.state_mu);
        sh.done.store(true);
      }
      sh.work_cv.notify_all();
      break;
    }
    if (!sh.outbox[self].empty()) FlushOutbox(self);
    if (RunOne(self)) {
      FlushOutbox(self);
    } else {
      sh.stat_idle.fetch_add(1, std::memory_order_relaxed);
      // Nothing runnable here: lend this beat to another in-flight query
      // (cross-query steal) before napping.
      if (ctx->Park()) continue;
      std::unique_lock<std::mutex> lock(sh.state_mu);
      sh.work_cv.wait_for(lock, std::chrono::microseconds(200));
    }
  }
}

// Selects and executes one activation. Returns false if no runnable work
// was found. Selection order implements the paper's priority scheme:
// primary queues first, then trigger work, then other threads' queues.
bool PipelineExecutor::RunOne(uint32_t self) {
  Shared& sh = *shared_;
  const uint32_t T = options_.threads;
  const uint32_t nops = static_cast<uint32_t>(sh.ops.size());
  // Queues only exist for the T rented workers; a guest slot (self >= T,
  // cross-query stealer) adopts a column as its primary.
  const uint32_t primary = self % T;

  // Pass 1: primary queues (this thread's column), then morsel claims.
  for (uint32_t k = 0; k < nops; ++k) {
    uint32_t op_id = (self + k) % nops;  // stagger start positions
    OpState& op = *sh.ops[op_id];
    if (!op.consumable.load() || op.ended.load()) continue;
    if (!ThreadMayRun(self, op_id)) continue;
    Activation act;
    if (sh.queues[op_id * T + primary]->TryPopFront(&act)) {
      ExecuteData(self, std::move(act));
      return true;
    }
  }
  for (uint32_t k = 0; k < nops; ++k) {
    uint32_t op_id = (self + k) % nops;
    OpState& op = *sh.ops[op_id];
    if (!op.consumable.load() || op.ended.load()) continue;
    if (!ThreadMayRun(self, op_id)) continue;
    if (op.kind != COp::kProbe && ClaimMorsel(self, op_id)) {
      return true;
    }
  }
  // Pass 2: steal from other threads' queues (back pop).
  for (uint32_t k = 0; k < nops; ++k) {
    uint32_t op_id = (self + k) % nops;
    OpState& op = *sh.ops[op_id];
    if (!op.consumable.load() || op.ended.load()) continue;
    if (!ThreadMayRun(self, op_id)) continue;
    for (uint32_t d = 1; d < T; ++d) {
      uint32_t t = (primary + d) % T;
      Activation act;
      if (sh.queues[op_id * T + t]->TryPopBack(&act)) {
        sh.stat_nonprimary.fetch_add(1, std::memory_order_relaxed);
        ExecuteData(self, std::move(act));
        return true;
      }
    }
  }
  return false;
}

bool PipelineExecutor::ClaimMorsel(uint32_t self, uint32_t op_id) {
  Shared& sh = *shared_;
  OpState& op = *sh.ops[op_id];
  size_t begin = op.morsel_cursor.fetch_add(options_.morsel_rows,
                                            std::memory_order_relaxed);
  if (begin >= op.total_rows) return false;
  size_t end = std::min<size_t>(begin + options_.morsel_rows, op.total_rows);
  ExecuteMorsel(self, op_id, begin, end);
  sh.stat_morsels.fetch_add(1, std::memory_order_relaxed);
  ++sh.busy[self];
  if (op.morsels_left.fetch_sub(1) == 1) {
    op.scatter_done.store(true);
    if (op.data_pending.load() == 0) OnOpEnded(op_id);
  }
  return true;
}

// ---------------------------------------------------------------------
// Operator bodies.

void PipelineExecutor::ExecuteMorsel(uint32_t self, uint32_t op_id,
                                     size_t begin, size_t end) {
  Shared& sh = *shared_;
  OpState& op = *sh.ops[op_id];
  const Batch& src = *op.src_batch;
  const uint32_t B = options_.buckets;
  const PipelinePlan& plan = *sh.plan;
  const Chain& chain = plan.chains[op.chain];
  const uint64_t tr0 = sh.trace != nullptr ? sh.trace->NowNs() : 0;
  const bool capturing = !sh.captures.empty();
  uint64_t rows_out = 0;

  // Scan-level predicates: a base table's rows are filtered where they
  // enter the pipeline, so rejected rows never cost a queue operation.
  const std::vector<Predicate>* preds =
      op.src.kind == Source::Kind::kTable ? plan.FiltersFor(op.src.index)
                                          : nullptr;
  // Column pruning: a table source with a projection emits only its kept
  // columns. Plan column references are already in projected coordinates,
  // so key columns map back to source coordinates while reading the
  // unprojected rows; chain sources were emitted pruned and need no map.
  const std::vector<uint32_t>* proj =
      op.src.kind == Source::Kind::kTable ? plan.ProjectionFor(op.src.index)
                                          : nullptr;
  const uint32_t out_w =
      proj != nullptr ? static_cast<uint32_t>(proj->size()) : src.width();
  auto src_col = [&](uint32_t col) {
    return proj != nullptr ? (*proj)[col] : col;
  };
  auto append = [&](Batch& b, const int64_t* row) {
    if (proj != nullptr) {
      b.AppendRowProjected(row, *proj);
    } else {
      b.AppendRow(row);
    }
  };
  auto passes = [&](const int64_t* row) {
    if (preds == nullptr || MatchesAll(*preds, row)) return true;
    sh.stat_filtered.fetch_add(1, std::memory_order_relaxed);
    return false;
  };
  // Vectorized front end shared by the branches below: one selection
  // vector over the morsel (per-predicate compare loops), then one hash
  // column over the survivors' key values. Leaves sc.sel/sc.hashes set;
  // returns the survivor count.
  auto select_and_hash = [&](auto& sc, uint32_t key_col,
                             bool want_hash) -> size_t {
    const size_t n = end - begin;
    size_t m = n;
    const uint32_t* selp = nullptr;
    if (preds != nullptr) {
      m = FilterBatch(src, begin, n, *preds, &sc.sel);
      sh.stat_filtered.fetch_add(n - m, std::memory_order_relaxed);
      selp = sc.sel.data();
    }
    if (want_hash) {
      sc.hashes.resize(m);
      HashStrided(src.data().data() + begin * src.width() + key_col,
                  src.width(), selp, m, sc.hashes.data());
    }
    return m;
  };

  if (op.kind == COp::kBuild) {
    // Scatter build rows into per-bucket insert batches.
    const JoinStep& js = chain.joins[op.step];
    auto& sc = sh.AcquireScratch(self, B);
    auto& scratch = sc.bucket;
    auto& hit = sc.hit;
    if (options_.vectorized) {
      const size_t m = select_and_hash(sc, src_col(js.build_col), true);
      const uint32_t* selp = preds != nullptr ? sc.sel.data() : nullptr;
      for (size_t i = 0; i < m; ++i) {
        const int64_t* row = src.row(begin + (selp != nullptr ? selp[i] : i));
        uint32_t bucket = static_cast<uint32_t>(sc.hashes[i] % B);
        Batch& b = scratch[bucket];
        if (b.width() == 0) b = Batch(out_w);
        if (b.empty()) hit.push_back(bucket);
        append(b, row);
      }
      rows_out = m;
    } else {
      for (size_t i = begin; i < end; ++i) {
        const int64_t* row = src.row(i);
        if (!passes(row)) continue;
        uint32_t bucket =
            static_cast<uint32_t>(HashKey(row[src_col(js.build_col)]) % B);
        Batch& b = scratch[bucket];
        if (b.width() == 0) b = Batch(out_w);
        if (b.empty()) hit.push_back(bucket);
        append(b, row);
        ++rows_out;
      }
    }
    for (uint32_t bucket : hit) {
      Emit(self, op_id, bucket, std::move(scratch[bucket]));
      scratch[bucket] = Batch();
    }
    hit.clear();
    sh.ReleaseScratch(self);
    if (sh.trace != nullptr) {
      TraceActivation(self, op_id, tr0, end - begin, rows_out);
    }
    return;
  }

  // Scan: pure-scan chains finalize directly; otherwise scatter into the
  // first probe's buckets.
  if (chain.joins.empty()) {
    const bool final_chain = op.chain + 1 == plan.chains.size();
    const bool to_agg = final_chain && sh.agg != nullptr;
    if (options_.vectorized) {
      auto& sc = sh.AcquireScratch(self, B);
      const size_t m = select_and_hash(sc, 0, false);
      const uint32_t* selp = preds != nullptr ? sc.sel.data() : nullptr;
      rows_out = m;
      if (to_agg) {
        if (capturing) {
          // Capture points see the (projected) chain-output rows the
          // batched accumulate below folds without per-row access.
          std::vector<int64_t> buf;
          for (size_t i = 0; i < m; ++i) {
            const int64_t* row =
                src.row(begin + (selp != nullptr ? selp[i] : i));
            if (proj != nullptr) {
              buf.clear();
              for (uint32_t cc : *proj) buf.push_back(row[cc]);
              row = buf.data();
            }
            sh.OfferCapture(op.chain, 0, row, out_w);
          }
        }
        // Phase 1 of the two-phase aggregation, batched: one GroupHash
        // column plus column-at-a-time key gathers; the projection (if
        // any) maps the spec's pruned coordinates back to source ones.
        sh.agg_partials[self].AccumulateBatch(
            src, begin, selp, m, proj != nullptr ? proj->data() : nullptr,
            &sc.agg);
      } else {
        std::vector<int64_t> buf;
        for (size_t i = 0; i < m; ++i) {
          const int64_t* row =
              src.row(begin + (selp != nullptr ? selp[i] : i));
          if (proj != nullptr) {
            buf.clear();
            for (uint32_t cc : *proj) buf.push_back(row[cc]);
            row = buf.data();
          }
          if (capturing) sh.OfferCapture(op.chain, 0, row, out_w);
          if (final_chain) sh.thread_digests[self].Add(row, out_w);
          if (sh.materialized[op.chain]) {
            Batch& part = sh.chain_partials[op.chain][self];
            if (part.width() == 0) part = Batch(out_w);
            part.AppendRow(row);
          }
        }
      }
      sh.ReleaseScratch(self);
    } else {
      std::vector<int64_t> buf;
      for (size_t i = begin; i < end; ++i) {
        const int64_t* row = src.row(i);
        if (!passes(row)) continue;
        ++rows_out;
        if (proj != nullptr) {
          // The spec/digest reference projected coordinates: hand the
          // pruned row downstream.
          buf.clear();
          for (uint32_t cc : *proj) buf.push_back(row[cc]);
          row = buf.data();
        }
        if (capturing) sh.OfferCapture(op.chain, 0, row, out_w);
        if (to_agg) {
          sh.agg_partials[self].Accumulate(row);
          continue;
        }
        if (final_chain) sh.thread_digests[self].Add(row, out_w);
        if (sh.materialized[op.chain]) {
          Batch& part = sh.chain_partials[op.chain][self];
          if (part.width() == 0) part = Batch(out_w);
          part.AppendRow(row);
        }
      }
    }
    // A join-less chain's scan is its terminal op: the passing rows are
    // the chain's actual output cardinality.
    sh.chain_rows[op.chain * sh.slots + self] += rows_out;
    if (sh.trace != nullptr) {
      TraceActivation(self, op_id, tr0, end - begin, rows_out);
    }
    return;
  }
  const JoinStep& js = chain.joins[0];
  auto& sc = sh.AcquireScratch(self, B);
  auto& scratch = sc.bucket;
  auto& hit = sc.hit;
  auto scatter = [&](const int64_t* row, uint32_t bucket) {
    Batch& b = scratch[bucket];
    if (b.width() == 0) b = Batch(out_w);
    if (b.empty()) hit.push_back(bucket);
    append(b, row);
    // Scan output = capture point 0 (offer the appended — projected —
    // row, which is what the reference executor's scan batch holds).
    if (capturing) sh.OfferCapture(op.chain, 0, b.row(b.rows() - 1), out_w);
    if (b.rows() >= options_.batch_rows) {
      Emit(self, op.consumer, bucket, std::move(b));
      scratch[bucket] = Batch();
      hit.erase(std::find(hit.begin(), hit.end(), bucket));
    }
  };
  if (options_.vectorized) {
    const size_t m = select_and_hash(sc, src_col(js.probe_col), true);
    const uint32_t* selp = preds != nullptr ? sc.sel.data() : nullptr;
    for (size_t i = 0; i < m; ++i) {
      const int64_t* row = src.row(begin + (selp != nullptr ? selp[i] : i));
      scatter(row, static_cast<uint32_t>(sc.hashes[i] % B));
    }
    rows_out = m;
  } else {
    for (size_t i = begin; i < end; ++i) {
      const int64_t* row = src.row(i);
      if (!passes(row)) continue;
      scatter(row,
              static_cast<uint32_t>(HashKey(row[src_col(js.probe_col)]) % B));
      ++rows_out;
    }
  }
  for (uint32_t bucket : hit) {
    Emit(self, op.consumer, bucket, std::move(scratch[bucket]));
    scratch[bucket] = Batch();
  }
  hit.clear();
  sh.ReleaseScratch(self);
  if (sh.trace != nullptr) {
    TraceActivation(self, op_id, tr0, end - begin, rows_out);
  }
}

void PipelineExecutor::ExecuteData(uint32_t self, Activation&& act) {
  Shared& sh = *shared_;
  OpState& op = *sh.ops[act.op];
  const uint32_t B = options_.buckets;
  const PipelinePlan& plan = *sh.plan;
  const Chain& chain = plan.chains[op.chain];
  sh.stat_data.fetch_add(1, std::memory_order_relaxed);
  ++sh.busy[self];
  const uint64_t tr0 = sh.trace != nullptr ? sh.trace->NowNs() : 0;
  const bool capturing = !sh.captures.empty();
  const uint64_t rows_in = act.rows.rows();

  if (op.kind == COp::kBuild) {
    {
      RowTable& table = sh.join_tables[op.join][act.bucket];
      std::lock_guard<std::mutex> lock(*sh.bucket_mu[op.join][act.bucket]);
      table.InsertBatch(act.rows);
    }
    if (sh.trace != nullptr) {
      TraceActivation(self, act.op, tr0, rows_in, rows_in);
    }
    FinishActivation(act.op);
    return;
  }

  // Probe step. JoinTable resolves shared (cached) vs locally built.
  const JoinStep& js = chain.joins[op.step];
  const RowTable& table = sh.JoinTable(op.join, act.bucket);
  const uint32_t in_width = act.rows.width();
  const bool last_step = op.step + 1 == chain.joins.size();
  const bool final_chain = op.chain + 1 == plan.chains.size();
  const uint32_t out_width = in_width + table.width();

  if (last_step) {
    const bool to_agg = final_chain && sh.agg != nullptr;
    Batch* part = nullptr;
    if (sh.materialized[op.chain]) {
      part = &sh.chain_partials[op.chain][self];
      if (part->width() == 0) *part = Batch(out_width);
    }
    AggTable* agg_part = to_agg ? &sh.agg_partials[self] : nullptr;
    std::vector<int64_t> out_row(out_width);
    uint64_t produced = 0;
    auto on_match = [&](const int64_t* row, const int64_t* brow) {
      std::copy(row, row + in_width, out_row.begin());
      std::copy(brow, brow + table.width(), out_row.begin() + in_width);
      ++produced;
      // Last probe output = chain output = capture point J.
      if (capturing) {
        sh.OfferCapture(op.chain,
                        static_cast<uint32_t>(chain.joins.size()),
                        out_row.data(), out_width);
      }
      if (agg_part != nullptr) {
        // Phase 1 of the two-phase aggregation: fold the result row
        // into this slot's private partial table.
        agg_part->Accumulate(out_row.data());
        return;
      }
      if (final_chain) {
        sh.thread_digests[self].Add(out_row.data(), out_width);
      }
      if (part != nullptr) part->AppendRow(out_row.data());
    };
    if (options_.vectorized && act.rows.rows() > 0) {
      // Batched probe: gather the key column, hash it in one pass, then
      // walk the chains with a prefetch window (RowTable::ProbeBatch).
      auto& sc = sh.AcquireScratch(self, B);
      const size_t n = act.rows.rows();
      sc.keys.resize(n);
      sc.hashes.resize(n);
      GatherStrided(act.rows.data().data() + js.probe_col, in_width, nullptr,
                    n, sc.keys.data());
      HashStrided(sc.keys.data(), 1, nullptr, n, sc.hashes.data());
      table.ProbeBatch(sc.keys.data(), sc.hashes.data(), n,
                       [&](size_t i, const int64_t* brow) {
                         on_match(act.rows.row(i), brow);
                       });
      sh.ReleaseScratch(self);
    } else {
      for (size_t i = 0; i < act.rows.rows(); ++i) {
        const int64_t* row = act.rows.row(i);
        table.ForEachMatch(row[js.probe_col], [&](const int64_t* brow) {
          on_match(row, brow);
        });
      }
    }
    // The last probe is its chain's terminal op: its output rows are the
    // chain's actual cardinality (pre-aggregation on agg plans).
    sh.chain_rows[op.chain * sh.slots + self] += produced;
    if (sh.trace != nullptr) {
      TraceActivation(self, act.op, tr0, rows_in, produced);
    }
    FinishActivation(act.op);
    return;
  }

  const JoinStep& next = chain.joins[op.step + 1];
  auto& sc = sh.AcquireScratch(self, B);
  auto& scratch = sc.bucket;
  auto& hit = sc.hit;
  std::vector<int64_t> out_row(out_width);
  uint64_t produced = 0;
  auto on_match = [&](const int64_t* row, const int64_t* brow) {
    std::copy(row, row + in_width, out_row.begin());
    std::copy(brow, brow + table.width(), out_row.begin() + in_width);
    ++produced;
    // Output of probe step s (0-based) = capture point s + 1.
    if (capturing) {
      sh.OfferCapture(op.chain, op.step + 1, out_row.data(), out_width);
    }
    uint32_t bucket =
        static_cast<uint32_t>(HashKey(out_row[next.probe_col]) % B);
    Batch& b = scratch[bucket];
    if (b.width() == 0) b = Batch(out_width);
    if (b.empty()) hit.push_back(bucket);
    b.AppendRow(out_row.data());
    if (b.rows() >= options_.batch_rows) {
      Emit(self, op.consumer, bucket, std::move(b));
      scratch[bucket] = Batch();
      hit.erase(std::find(hit.begin(), hit.end(), bucket));
    }
  };
  if (options_.vectorized && act.rows.rows() > 0) {
    const size_t n = act.rows.rows();
    sc.keys.resize(n);
    sc.hashes.resize(n);
    GatherStrided(act.rows.data().data() + js.probe_col, in_width, nullptr, n,
                  sc.keys.data());
    HashStrided(sc.keys.data(), 1, nullptr, n, sc.hashes.data());
    table.ProbeBatch(sc.keys.data(), sc.hashes.data(), n,
                     [&](size_t i, const int64_t* brow) {
                       on_match(act.rows.row(i), brow);
                     });
  } else {
    for (size_t i = 0; i < act.rows.rows(); ++i) {
      const int64_t* row = act.rows.row(i);
      table.ForEachMatch(row[js.probe_col], [&](const int64_t* brow) {
        on_match(row, brow);
      });
    }
  }
  for (uint32_t bucket : hit) {
    Emit(self, op.consumer, bucket, std::move(scratch[bucket]));
    scratch[bucket] = Batch();
  }
  hit.clear();
  sh.ReleaseScratch(self);
  if (sh.trace != nullptr) {
    TraceActivation(self, act.op, tr0, rows_in, produced);
  }
  FinishActivation(act.op);
}

void PipelineExecutor::FinishActivation(uint32_t op_id) {
  Shared& sh = *shared_;
  OpState& op = *sh.ops[op_id];
  if (op.data_pending.fetch_sub(1) == 1) {
    bool producer_finished =
        op.kind == COp::kBuild
            ? op.scatter_done.load()
            : sh.ops[op.producer]->ended.load();
    if (producer_finished && op.consumable.load()) OnOpEnded(op_id);
  }
}

// Emits one data activation toward `dst_op`. Operator bodies never block:
// if the destination queue is full, the activation is staged in the
// producing thread's outbox and FlushOutbox drains it at the top level —
// the iterative equivalent of the paper's procedure-call suspension
// (Section 3.1: a thread in a waiting situation suspends its current
// execution and processes another activation; here the suspended frame is
// the staged push rather than a nested stack frame, so the thread's stack
// stays bounded regardless of how long the pipeline is).
void PipelineExecutor::Emit(uint32_t self, uint32_t dst_op, uint32_t bucket,
                            Batch&& rows) {
  Shared& sh = *shared_;
  const uint32_t T = options_.threads;
  OpState& dst = *sh.ops[dst_op];
  dst.data_pending.fetch_add(1);
  sh.stat_emitted.fetch_add(1, std::memory_order_relaxed);
  Activation act;
  act.op = dst_op;
  act.bucket = bucket;
  act.rows = std::move(rows);
  uint32_t target = bucket % T;
  if (!sh.queues[dst_op * T + target]->TryPush(std::move(act),
                                               options_.queue_capacity)) {
    sh.stat_escapes.fetch_add(1, std::memory_order_relaxed);
    sh.outbox[self].push_back(std::move(act));
  }
}

// Drains this thread's outbox. While pushes are stuck the thread helps by
// executing other activations, subject to the flow-control rule that it
// never runs an operator *upstream* of a stuck destination in the same
// chain (that would only produce more input for the congested queue —
// the paper's "will not consume activations of the same operator" rule,
// generalized to whole upstream segments). Build operators are always
// allowed: they emit only to themselves. If nothing allowed is runnable
// for a long stretch (every remaining op is upstream of a stuck
// destination — possible only in degenerate schedules), the restriction
// is lifted so global progress is guaranteed; the outbox absorbs the
// overflow.
void PipelineExecutor::FlushOutbox(uint32_t self) {
  Shared& sh = *shared_;
  const uint32_t T = options_.threads;
  auto& outbox = sh.outbox[self];
  uint32_t stalls = 0;
  while (!outbox.empty()) {
    // A cancelled run abandons staged activations (the whole execution
    // is being torn down); normal completion never reaches done with a
    // non-empty outbox (pending activations keep their op alive).
    if (sh.cancelled.load(std::memory_order_relaxed)) return;
    // Try to push every staged activation once.
    size_t n = outbox.size();
    bool progressed = false;
    for (size_t i = 0; i < n;) {
      Activation& act = outbox[i];
      uint32_t target = act.bucket % T;
      if (sh.queues[act.op * T + target]->TryPush(std::move(act),
                                                  options_.queue_capacity)) {
        outbox.erase(outbox.begin() + static_cast<long>(i));
        --n;
        progressed = true;
      } else {
        ++i;
      }
    }
    if (outbox.empty()) return;
    if (progressed) {
      stalls = 0;
      continue;
    }
    if (RunAllowedWhileStuck(self, /*unrestricted=*/stalls > 10000)) {
      stalls = 0;
      continue;
    }
    ++stalls;
    std::this_thread::yield();
  }
}

// Executes one activation (or build morsel) permitted while this thread
// has stuck pushes. Allowed: destination operators of stuck pushes (the
// most useful — draining them frees queue slots), any operator not
// upstream of a stuck destination in its chain, and all build operators.
// `unrestricted` lifts the upstream exclusion (progress valve).
bool PipelineExecutor::RunAllowedWhileStuck(uint32_t self,
                                            bool unrestricted) {
  Shared& sh = *shared_;
  const uint32_t T = options_.threads;
  const uint32_t nops = static_cast<uint32_t>(sh.ops.size());
  const bool fp = options_.strategy == LocalStrategy::kFP;

  // Per-chain minimum stuck position: ops of that chain strictly before
  // this position are forbidden (they would feed the congested queue).
  std::vector<uint32_t> min_stuck_pos(sh.chain_terminal.size(), UINT32_MAX);
  for (const Activation& act : sh.outbox[self]) {
    OpState& dst = *sh.ops[act.op];
    if (dst.kind == COp::kBuild) continue;  // self-feeding, nothing upstream
    uint32_t& cur = min_stuck_pos[dst.chain];
    cur = std::min(cur, dst.chain_pos);
  }

  auto allowed = [&](uint32_t op_id) {
    OpState& op = *sh.ops[op_id];
    if (op.kind == COp::kBuild || unrestricted) return true;
    return op.chain_pos >= min_stuck_pos[op.chain] ||
           min_stuck_pos[op.chain] == UINT32_MAX;
  };

  // Deepest operators first: executing the terminal op always shrinks the
  // backlog, so helping downstream-first keeps the outbox bounded.
  for (uint32_t k = 0; k < nops; ++k) {
    uint32_t op_id = nops - 1 - k;
    OpState& op = *sh.ops[op_id];
    if (!op.consumable.load() || op.ended.load() || !allowed(op_id)) continue;
    if (fp) {
      // FP threads drain only destinations of their own stuck pushes.
      bool is_stuck_dst = false;
      for (const Activation& a : sh.outbox[self]) {
        if (a.op == op_id) {
          is_stuck_dst = true;
          break;
        }
      }
      if (!is_stuck_dst) continue;
    }
    for (uint32_t d = 0; d < T; ++d) {
      uint32_t t = (self + d) % T;
      Activation act;
      if (sh.queues[op_id * T + t]->TryPopFront(&act)) {
        if (fp) sh.stat_fp_safety.fetch_add(1, std::memory_order_relaxed);
        if (d != 0 && !fp) {
          sh.stat_nonprimary.fetch_add(1, std::memory_order_relaxed);
        }
        ExecuteData(self, std::move(act));
        return true;
      }
    }
  }
  if (fp) return false;
  for (uint32_t k = 0; k < nops; ++k) {
    uint32_t op_id = nops - 1 - k;
    OpState& op = *sh.ops[op_id];
    if (!op.consumable.load() || op.ended.load() || !allowed(op_id)) continue;
    if (op.kind != COp::kProbe && ClaimMorsel(self, op_id)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Synchronous pipelining (SP).

Result<ResultDigest> PipelineExecutor::ExecuteSP(
    const PipelinePlan& plan, const std::vector<const Table*>& tables,
    PipelineStats* stats, Batch* out_rows) {
  ThreadSpawnContext fallback_ctx;
  ExecContext* ctx = options_.ctx != nullptr ? options_.ctx : &fallback_ctx;
  const uint32_t T = options_.threads;
  const uint32_t B = options_.buckets;
  const AggSpec* agg = plan.agg.has_value() ? &*plan.agg : nullptr;
  std::vector<bool> materialized = plan.MaterializedChains();
  if (out_rows != nullptr && agg == nullptr) materialized.back() = true;
  std::vector<Batch> chain_outputs(plan.chains.size());
  std::vector<ResultDigest> digests(T);
  std::vector<AggTable> agg_partials;
  if (agg != nullptr) {
    agg_partials.resize(T);
    for (AggTable& t : agg_partials) t.Init(agg);
  }
  std::vector<uint64_t> busy(T, 0);
  uint64_t morsel_count = 0;
  uint64_t cache_hits = 0, cache_misses = 0;
  std::atomic<uint64_t> filtered{0};
  const bool capturing = !options_.captures.empty();

  // Tracing: SP has no per-activation queues, so spans are coarse — one
  // per (thread, phase): build phases on the build op's id, the fused
  // scan+probe walk on the scan op's id, using the same compiled-op
  // numbering as DP/FP (B(c,*), S(c), P(c,*)).
  obs::TraceSink* trace = options_.trace;
  if (trace != nullptr) trace->EnsureSlots(T);
  std::vector<uint32_t> op_base(plan.chains.size());
  {
    uint32_t base = 0;
    for (uint32_t c = 0; c < plan.chains.size(); ++c) {
      op_base[c] = base;
      base += 1 + 2 * static_cast<uint32_t>(plan.chains[c].joins.size());
    }
  }
  std::vector<uint64_t> chain_rows(plan.chains.size() * T, 0);

  auto batch_of = [&](const Source& s) -> const Batch& {
    return s.kind == Source::Kind::kTable ? tables[s.index]->batch
                                          : chain_outputs[s.index];
  };
  auto filters_of = [&](const Source& s) -> const std::vector<Predicate>* {
    return s.kind == Source::Kind::kTable ? plan.FiltersFor(s.index)
                                          : nullptr;
  };
  auto cache_key_of = [&](const JoinStep& js, BuildKey* key) {
    return BuildCacheKeyFor(options_, plan, B, js.build, js.build_col, key);
  };
  auto cache_cancelled = [ctx] { return ctx->StopRequested(); };

  for (uint32_t c = 0; c < plan.chains.size(); ++c) {
    const Chain& chain = plan.chains[c];
    const bool final_chain = c + 1 == plan.chains.size();

    // Build phase: every join's bucket tables are either taken shared
    // from the session cache or built cooperatively (threads claim
    // morsels, insert under per-bucket locks) and then published. A
    // concurrent query already building the same key is waited on
    // instead of duplicating the work (see BuildCache::Acquire).
    std::vector<std::shared_ptr<const BucketTables>> join_tables(
        chain.joins.size());
    for (size_t j = 0; j < chain.joins.size(); ++j) {
      BuildKey key;
      const bool cacheable = cache_key_of(chain.joins[j], &key);
      bool publish = false;
      if (cacheable) {
        auto got = options_.build_cache->Acquire(key, cache_cancelled);
        const bool hit = got.tables != nullptr;
        if (trace != nullptr) {
          obs::TraceEvent ev;
          ev.kind = hit ? obs::EventKind::kCacheHit
                        : obs::EventKind::kCacheMiss;
          ev.op = static_cast<int32_t>(op_base[c] + j);
          ev.start_ns = ev.end_ns = trace->NowNs();
          trace->RecordShared(ev);
        }
        if (options_.recorder != nullptr) {
          options_.recorder->Instant(hit ? obs::EventKind::kCacheHit
                                         : obs::EventKind::kCacheMiss,
                                     options_.recorder_query, op_base[c] + j);
        }
        if (hit) {
          join_tables[j] = std::move(got.tables);
          ++cache_hits;
          continue;
        }
        publish = got.builder;
        ++cache_misses;
      }
      const std::vector<Predicate>* build_preds =
          filters_of(chain.joins[j].build);
      const Batch& build = batch_of(chain.joins[j].build);
      // A pruned table build stores only its kept columns; the plan's
      // build_col indexes the projected row, so map it back to the source
      // coordinate for hashing the unprojected rows.
      const std::vector<uint32_t>* bproj =
          chain.joins[j].build.kind == Source::Kind::kTable
              ? plan.ProjectionFor(chain.joins[j].build.index)
              : nullptr;
      const uint32_t bw = bproj != nullptr
                              ? static_cast<uint32_t>(bproj->size())
                              : build.width();
      const uint32_t key_src = bproj != nullptr
                                   ? (*bproj)[chain.joins[j].build_col]
                                   : chain.joins[j].build_col;
      auto built = std::make_shared<BucketTables>(B);
      std::vector<std::unique_ptr<std::mutex>> bucket_mu(B);
      for (uint32_t b = 0; b < B; ++b) {
        (*built)[b].Init(bw, chain.joins[j].build_col);
        bucket_mu[b] = std::make_unique<std::mutex>();
      }
      std::atomic<size_t> cursor{0};
      ctx->SpawnWorkers(T, [&](uint32_t t) {
        // Scatter each morsel into local per-bucket batches, then take
        // each bucket lock once per morsel (amortized locking).
        std::vector<Batch> local(B);
        std::vector<uint32_t> touched;
        SelVec sel;
        std::vector<uint64_t> hashes;
        const uint64_t tr0 = trace != nullptr ? trace->NowNs() : 0;
        uint64_t acts = 0, rin = 0, rout = 0;
        auto scatter = [&](const int64_t* row, uint32_t bucket) {
          Batch& b = local[bucket];
          if (b.width() == 0) b = Batch(bw);
          if (b.empty()) touched.push_back(bucket);
          if (bproj != nullptr) {
            b.AppendRowProjected(row, *bproj);
          } else {
            b.AppendRow(row);
          }
          ++rout;
        };
        while (!ctx->StopRequested()) {
          size_t begin = cursor.fetch_add(options_.morsel_rows);
          if (begin >= build.rows()) break;
          size_t end =
              std::min<size_t>(begin + options_.morsel_rows, build.rows());
          if (options_.vectorized) {
            const size_t n = end - begin;
            size_t m = n;
            const uint32_t* selp = nullptr;
            if (build_preds != nullptr) {
              m = FilterBatch(build, begin, n, *build_preds, &sel);
              filtered.fetch_add(n - m, std::memory_order_relaxed);
              selp = sel.data();
            }
            hashes.resize(m);
            HashStrided(build.data().data() + begin * build.width() + key_src,
                        build.width(), selp, m, hashes.data());
            for (size_t i = 0; i < m; ++i) {
              scatter(build.row(begin + (selp != nullptr ? selp[i] : i)),
                      static_cast<uint32_t>(hashes[i] % B));
            }
          } else {
            for (size_t i = begin; i < end; ++i) {
              const int64_t* row = build.row(i);
              if (build_preds != nullptr && !MatchesAll(*build_preds, row)) {
                filtered.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              scatter(row, static_cast<uint32_t>(HashKey(row[key_src]) % B));
            }
          }
          for (uint32_t bucket : touched) {
            std::lock_guard<std::mutex> lock(*bucket_mu[bucket]);
            (*built)[bucket].InsertBatch(local[bucket]);
            local[bucket].Clear();
          }
          touched.clear();
          ++busy[t];
          ++acts;
          rin += end - begin;
        }
        if (trace != nullptr && acts > 0) {
          obs::TraceEvent ev;
          ev.worker = static_cast<int32_t>(t);
          ev.op = static_cast<int32_t>(op_base[c] + j);
          ev.start_ns = tr0;
          ev.end_ns = trace->NowNs();
          ev.activations = acts;
          ev.rows_in = rin;
          ev.rows_out = rout;
          ev.detail = ev.end_ns - ev.start_ns;
          trace->Record(t, ev);
        }
      });
      if (ctx->StopRequested()) {
        if (publish) options_.build_cache->Abandon(key);
        return Status::Cancelled("query cancelled during execution");
      }
      if (publish) options_.build_cache->Publish(key, built);
      join_tables[j] = std::move(built);
      morsel_count +=
          (build.rows() + options_.morsel_rows - 1) / options_.morsel_rows;
    }

    // Probe phase: every thread drives scan morsels through the whole
    // chain with nested procedure calls.
    const std::vector<Predicate>* input_preds = filters_of(chain.input);
    const Batch& input = batch_of(chain.input);
    const std::vector<uint32_t>* iproj =
        chain.input.kind == Source::Kind::kTable
            ? plan.ProjectionFor(chain.input.index)
            : nullptr;
    const uint32_t in_w = iproj != nullptr
                              ? static_cast<uint32_t>(iproj->size())
                              : input.width();
    uint32_t out_width = in_w;
    for (const JoinStep& j : chain.joins) {
      out_width += j.build.kind == Source::Kind::kTable
                       ? plan.EffectiveTableWidth(j.build.index,
                                                  batch_of(j.build).width())
                       : batch_of(j.build).width();
    }
    const bool to_agg = final_chain && agg != nullptr;
    std::vector<Batch> partials(T);
    std::atomic<size_t> cursor{0};
    // Plan-point captures: row_buf's prefix at walk level `step` IS the
    // output of plan point `step` (0 = scan output, J = chain output), so
    // offering at each level covers every point exactly once per row.
    auto offer_capture = [&](uint32_t point, const int64_t* row,
                             uint32_t width) {
      for (const CaptureSink& cs : options_.captures) {
        if (cs.chain == c && cs.point == point && cs.sink != nullptr) {
          cs.sink->Offer(row, width);
        }
      }
    };
    ctx->SpawnWorkers(T, [&](uint32_t t) {
      std::vector<int64_t> row_buf(out_width);
      SelVec sel;
      const uint64_t tr0 = trace != nullptr ? trace->NowNs() : 0;
      uint64_t acts = 0, rin = 0;
      uint64_t produced = 0;
      // Recursive pipeline walker: step j consumes the prefix of
      // row_buf filled so far.
      auto walk = [&](auto&& self_fn, size_t step,
                      uint32_t filled) -> void {
        if (capturing) {
          offer_capture(static_cast<uint32_t>(step), row_buf.data(), filled);
        }
        if (step == chain.joins.size()) {
          ++produced;
          if (to_agg) {
            agg_partials[t].Accumulate(row_buf.data());
            return;
          }
          if (final_chain) digests[t].Add(row_buf.data(), filled);
          if (materialized[c]) {
            Batch& part = partials[t];
            if (part.width() == 0) part = Batch(out_width);
            part.AppendRow(row_buf.data());
          }
          return;
        }
        const JoinStep& js = chain.joins[step];
        uint32_t bucket = static_cast<uint32_t>(
            HashKey(row_buf[js.probe_col]) % B);
        const RowTable& table = (*join_tables[step])[bucket];
        table.ForEachMatch(row_buf[js.probe_col], [&](const int64_t* brow) {
          std::copy(brow, brow + table.width(),
                    row_buf.begin() + filled);
          self_fn(self_fn, step + 1, filled + table.width());
        });
      };
      while (!ctx->StopRequested()) {
        size_t begin = cursor.fetch_add(options_.morsel_rows);
        if (begin >= input.rows()) break;
        size_t end =
            std::min<size_t>(begin + options_.morsel_rows, input.rows());
        const size_t n = end - begin;
        size_t m = n;
        const uint32_t* selp = nullptr;
        if (options_.vectorized && input_preds != nullptr) {
          m = FilterBatch(input, begin, n, *input_preds, &sel);
          filtered.fetch_add(n - m, std::memory_order_relaxed);
          selp = sel.data();
        }
        for (size_t k = 0; k < m; ++k) {
          const int64_t* row = input.row(begin + (selp != nullptr ? selp[k] : k));
          if (selp == nullptr && input_preds != nullptr &&
              !MatchesAll(*input_preds, row)) {
            filtered.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (iproj != nullptr) {
            for (uint32_t cc = 0; cc < in_w; ++cc) {
              row_buf[cc] = row[(*iproj)[cc]];
            }
          } else {
            std::copy(row, row + in_w, row_buf.begin());
          }
          walk(walk, 0, in_w);
        }
        ++busy[t];
        ++acts;
        rin += end - begin;
      }
      chain_rows[c * T + t] += produced;
      if (trace != nullptr && acts > 0) {
        // The fused scan+probe walk reports on the chain's scan op.
        obs::TraceEvent ev;
        ev.worker = static_cast<int32_t>(t);
        ev.op = static_cast<int32_t>(
            op_base[c] + static_cast<uint32_t>(chain.joins.size()));
        ev.start_ns = tr0;
        ev.end_ns = trace->NowNs();
        ev.activations = acts;
        ev.rows_in = rin;
        ev.rows_out = produced;
        ev.detail = ev.end_ns - ev.start_ns;
        trace->Record(t, ev);
      }
    });
    if (ctx->StopRequested()) {
      return Status::Cancelled("query cancelled during execution");
    }
    morsel_count +=
        (input.rows() + options_.morsel_rows - 1) / options_.morsel_rows;

    if (materialized[c]) {
      Batch merged(out_width);
      for (Batch& part : partials) {
        merged.data().insert(merged.data().end(), part.data().begin(),
                             part.data().end());
      }
      chain_outputs[c] = std::move(merged);
    }
  }

  // Phase 2 of aggregation, mirroring the DP/FP merge: workers claim
  // group-hash partitions and merge every thread's share of them.
  uint64_t agg_groups = 0, agg_partial_entries = 0;
  std::vector<ResultDigest> agg_digests;
  std::vector<Batch> agg_rows;
  if (agg != nullptr) {
    for (const AggTable& t : agg_partials) agg_partial_entries += t.groups();
    // Same partition clamp as the DP/FP merge (see Execute).
    const uint32_t P = std::min(B, std::max(16u, 4 * T));
    std::vector<AggTable> finals(P);
    for (AggTable& t : finals) t.Init(agg);
    agg_digests.assign(P, {});
    agg_rows.assign(P, Batch());
    const bool want_rows = out_rows != nullptr;
    std::atomic<uint32_t> part_cursor{0};
    std::atomic<bool> merge_cancelled{false};
    ctx->SpawnWorkers(T, [&](uint32_t) {
      for (;;) {
        if (ctx->StopRequested()) {
          merge_cancelled.store(true);
          return;
        }
        uint32_t p = part_cursor.fetch_add(1, std::memory_order_relaxed);
        if (p >= P) return;
        for (const AggTable& part : agg_partials) {
          part.ForEachPartial(p, P, [&](const int64_t* row) {
            finals[p].MergePartial(row);
          });
        }
        finals[p].EmitFinal(want_rows ? &agg_rows[p] : nullptr,
                            &agg_digests[p]);
      }
    });
    if (merge_cancelled.load()) {
      return Status::Cancelled("query cancelled during aggregation");
    }
    for (const AggTable& t : finals) agg_groups += t.groups();
  }

  ResultDigest digest;
  for (const auto& d : digests) digest.Merge(d);
  for (const auto& d : agg_digests) digest.Merge(d);
  if (out_rows != nullptr) {
    if (agg != nullptr) {
      Batch out(agg->OutputWidth());
      for (Batch& part : agg_rows) {
        out.data().insert(out.data().end(), part.data().begin(),
                          part.data().end());
      }
      *out_rows = std::move(out);
    } else {
      *out_rows = std::move(chain_outputs.back());
    }
  }
  if (stats != nullptr) {
    *stats = PipelineStats{};
    stats->morsels = morsel_count;
    stats->build_cache_hits = cache_hits;
    stats->build_cache_misses = cache_misses;
    stats->rows_filtered = filtered.load();
    stats->agg_groups = agg_groups;
    stats->agg_partials = agg_partial_entries;
    stats->busy_per_thread = busy;
    stats->rows_per_chain.assign(plan.chains.size(), 0);
    for (uint32_t c = 0; c < plan.chains.size(); ++c) {
      for (uint32_t t = 0; t < T; ++t) {
        stats->rows_per_chain[c] += chain_rows[c * T + t];
      }
    }
  }
  return digest;
}

}  // namespace hierdb::mt
