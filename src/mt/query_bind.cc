#include "mt/query_bind.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/zipf.h"

namespace hierdb::mt {

namespace {

using plan::JoinTree;
using plan::JoinTreeNode;
using plan::RelId;
using plan::RelSet;

// Per-relation schema: column 0 is the dense key; fk_col[e] is the column
// holding the FK for incident edge index e (in graph edge order).
struct RelSchema {
  uint32_t width = 1;
  std::unordered_map<uint32_t, uint32_t> fk_col;  // edge index -> column
};

}  // namespace

Result<PipelinePlan> TranslateJoinTree(
    const plan::JoinTree& tree, const plan::JoinGraph& graph,
    const std::vector<const Table*>& tables,
    const std::vector<EdgeColumns>& cols) {
  if (tree.root < 0) return Status::InvalidArgument("empty join tree");
  const auto& edges = graph.edges();
  if (cols.size() != edges.size()) {
    return Status::InvalidArgument("one EdgeColumns entry per edge required");
  }
  if (tables.size() < graph.num_relations()) {
    return Status::InvalidArgument("one table per relation required");
  }
  for (uint32_t r = 0; r < graph.num_relations(); ++r) {
    if (tables[r] == nullptr) return Status::InvalidArgument("null table");
  }
  for (const auto& node : tree.nodes) {
    if (node.IsLeaf()) {
      if (node.rel >= graph.num_relations()) {
        return Status::InvalidArgument(
            "tree leaf references an unknown relation");
      }
    } else if (node.left < 0 || node.right < 0 ||
               static_cast<size_t>(node.left) >= tree.nodes.size() ||
               static_cast<size_t>(node.right) >= tree.nodes.size()) {
      return Status::InvalidArgument("tree child index out of range");
    }
  }
  if (static_cast<size_t>(tree.root) >= tree.nodes.size()) {
    return Status::InvalidArgument("tree root out of range");
  }

  // Column of relation `r` for edge `e`.
  auto edge_col = [&](RelId r, uint32_t e) -> uint32_t {
    return r == edges[e].a ? cols[e].col_a : cols[e].col_b;
  };

  // Translate the tree. A "stream" is an in-construction pipeline chain:
  // its source (table or completed chain), accumulated join steps, the
  // relation set covered so far, and per-relation column base offsets in
  // the pipelined row.
  struct Stream {
    Source input;
    std::vector<JoinStep> joins;
    RelSet rels = 0;
    std::unordered_map<RelId, uint32_t> base;  // rel -> column offset
    uint32_t width = 0;
  };

  PipelinePlan plan;
  bool cross_product = false;
  bool revisit = false;  // node reached twice: shared subtree or cycle
  std::vector<char> seen(tree.nodes.size(), 0);
  std::function<Stream(int32_t)> expand = [&](int32_t idx) -> Stream {
    if (revisit || seen[idx]) {
      revisit = true;
      return Stream{};
    }
    seen[idx] = 1;
    const JoinTreeNode& node = tree.nodes[idx];
    if (node.IsLeaf()) {
      Stream s;
      s.input = Source::OfTable(node.rel);
      s.rels = plan::RelBit(node.rel);
      s.base[node.rel] = 0;
      s.width = tables[node.rel]->width();
      return s;
    }
    // Left child continues the pipeline; right child is the build side.
    Stream probe = expand(node.left);
    Stream build = expand(node.right);

    // The build side becomes a source: a base table if it is a bare leaf
    // stream with no joins, otherwise its chain is completed
    // (materialized) and referenced by index.
    Source build_src;
    if (build.joins.empty() &&
        build.input.kind == Source::Kind::kTable) {
      build_src = build.input;
    } else {
      Chain chain;
      chain.input = build.input;
      chain.joins = std::move(build.joins);
      plan.chains.push_back(std::move(chain));
      build_src =
          Source::OfChain(static_cast<uint32_t>(plan.chains.size() - 1));
    }

    // Find the predicate edge crossing the cut.
    uint32_t edge_idx = UINT32_MAX;
    for (uint32_t e = 0; e < edges.size(); ++e) {
      bool a_left = (probe.rels >> edges[e].a) & 1;
      bool b_left = (probe.rels >> edges[e].b) & 1;
      bool a_right = (build.rels >> edges[e].a) & 1;
      bool b_right = (build.rels >> edges[e].b) & 1;
      if ((a_left && b_right) || (b_left && a_right)) {
        edge_idx = e;
        break;
      }
    }
    if (edge_idx == UINT32_MAX) {
      cross_product = true;
      return probe;
    }
    RelId probe_rel = ((probe.rels >> edges[edge_idx].a) & 1)
                          ? edges[edge_idx].a
                          : edges[edge_idx].b;
    RelId build_rel = probe_rel == edges[edge_idx].a ? edges[edge_idx].b
                                                     : edges[edge_idx].a;

    JoinStep step;
    step.build = build_src;
    step.probe_col =
        probe.base.at(probe_rel) + edge_col(probe_rel, edge_idx);
    step.build_col =
        build.base.at(build_rel) + edge_col(build_rel, edge_idx);
    probe.joins.push_back(step);

    // The build side's columns are appended to the pipelined row.
    for (const auto& [r, off] : build.base) {
      probe.base[r] = probe.width + off;
    }
    probe.width += build.width;
    probe.rels |= build.rels;
    return probe;
  };

  Stream root = expand(tree.root);
  if (revisit) {
    return Status::InvalidArgument("tree shares nodes or contains a cycle");
  }
  if (cross_product) {
    return Status::InvalidArgument("no crossing edge (cross product)");
  }
  Chain final_chain;
  final_chain.input = root.input;
  final_chain.joins = std::move(root.joins);
  plan.chains.push_back(std::move(final_chain));

  HIERDB_RETURN_NOT_OK(plan.Validate(tables));
  return plan;
}

Result<BoundQuery> BindJoinTree(const plan::JoinTree& tree,
                                const plan::JoinGraph& graph,
                                const catalog::Catalog& cat,
                                const BindOptions& options) {
  if (tree.root < 0) return Status::InvalidArgument("empty join tree");
  const auto& edges = graph.edges();
  const uint32_t n = graph.num_relations();

  // Scaled cardinalities.
  std::vector<uint64_t> rows(n);
  for (uint32_t r = 0; r < n; ++r) {
    rows[r] = std::max<uint64_t>(
        options.min_rows,
        static_cast<uint64_t>(
            static_cast<double>(cat.relation(r).cardinality) *
            options.scale));
  }

  // Orient each edge child -> parent: the smaller side is the parent (its
  // keys are the FK target), matching sel ~ 1/max(|A|,|B|).
  // Build schemas: parents are probed/built on their key column; children
  // carry one FK column per incident edge where they are the child.
  std::vector<RelSchema> schema(n);
  std::vector<RelId> edge_parent(edges.size());
  std::vector<EdgeColumns> cols(edges.size());
  for (uint32_t e = 0; e < edges.size(); ++e) {
    RelId parent = rows[edges[e].a] <= rows[edges[e].b] ? edges[e].a
                                                        : edges[e].b;
    RelId child = parent == edges[e].a ? edges[e].b : edges[e].a;
    edge_parent[e] = parent;
    uint32_t fk = schema[child].width++;
    schema[child].fk_col[e] = fk;
    // Parent side joins on its key: column 0, no new column needed.
    cols[e].col_a = edges[e].a == child ? fk : 0;
    cols[e].col_b = edges[e].b == child ? fk : 0;
  }

  // Synthesize tables. With skew_theta > 0 every FK column is drawn
  // Zipf(theta) over its parent's key range — attribute-value skew that a
  // parent-side probe or build concentrates on a few buckets.
  BoundQuery out;
  out.tables.reserve(n);
  Rng rng(options.seed);
  std::vector<std::unique_ptr<ZipfSampler>> samplers(edges.size());
  if (options.skew_theta > 0.0) {
    for (uint32_t e = 0; e < edges.size(); ++e) {
      samplers[e] = std::make_unique<ZipfSampler>(
          static_cast<uint32_t>(rows[edge_parent[e]]), options.skew_theta);
    }
  }
  for (uint32_t r = 0; r < n; ++r) {
    Table t;
    t.name = cat.relation(r).name;
    t.batch = Batch(schema[r].width);
    t.batch.Reserve(rows[r]);
    std::vector<int64_t> row(schema[r].width);
    for (uint64_t i = 0; i < rows[r]; ++i) {
      row[0] = static_cast<int64_t>(i);
      for (const auto& [e, col] : schema[r].fk_col) {
        row[col] = samplers[e] != nullptr
                       ? static_cast<int64_t>(samplers[e]->Sample(&rng))
                       : static_cast<int64_t>(
                             rng.NextBounded(rows[edge_parent[e]]));
      }
      t.batch.AppendRow(row.data());
    }
    out.tables.push_back(std::move(t));
  }

  auto plan = TranslateJoinTree(tree, graph, out.TablePtrs(), cols);
  HIERDB_RETURN_NOT_OK(plan.status());
  out.plan = std::move(plan).value();
  return out;
}

}  // namespace hierdb::mt
