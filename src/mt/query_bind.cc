#include "mt/query_bind.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

namespace hierdb::mt {

namespace {

using plan::JoinTree;
using plan::JoinTreeNode;
using plan::RelId;
using plan::RelSet;

// Per-relation schema: column 0 is the dense key; fk_col[e] is the column
// holding the FK for incident edge index e (in graph edge order).
struct RelSchema {
  uint32_t width = 1;
  std::unordered_map<uint32_t, uint32_t> fk_col;  // edge index -> column
};

}  // namespace

Result<BoundQuery> BindJoinTree(const plan::JoinTree& tree,
                                const plan::JoinGraph& graph,
                                const catalog::Catalog& cat,
                                const BindOptions& options) {
  if (tree.root < 0) return Status::InvalidArgument("empty join tree");
  const auto& edges = graph.edges();
  const uint32_t n = graph.num_relations();

  // Scaled cardinalities.
  std::vector<uint64_t> rows(n);
  for (uint32_t r = 0; r < n; ++r) {
    rows[r] = std::max<uint64_t>(
        options.min_rows,
        static_cast<uint64_t>(
            static_cast<double>(cat.relation(r).cardinality) *
            options.scale));
  }

  // Orient each edge child -> parent: the smaller side is the parent (its
  // keys are the FK target), matching sel ~ 1/max(|A|,|B|).
  // Build schemas: parents are probed/built on their key column; children
  // carry one FK column per incident edge where they are the child.
  std::vector<RelSchema> schema(n);
  std::vector<RelId> edge_parent(edges.size());
  for (uint32_t e = 0; e < edges.size(); ++e) {
    RelId parent = rows[edges[e].a] <= rows[edges[e].b] ? edges[e].a
                                                        : edges[e].b;
    RelId child = parent == edges[e].a ? edges[e].b : edges[e].a;
    edge_parent[e] = parent;
    schema[child].fk_col[e] = schema[child].width++;
    // Parent side joins on its key: column 0, no new column needed.
  }

  // Synthesize tables.
  BoundQuery out;
  out.tables.reserve(n);
  Rng rng(options.seed);
  for (uint32_t r = 0; r < n; ++r) {
    Table t;
    t.name = cat.relation(r).name;
    t.batch = Batch(schema[r].width);
    t.batch.Reserve(rows[r]);
    std::vector<int64_t> row(schema[r].width);
    for (uint64_t i = 0; i < rows[r]; ++i) {
      row[0] = static_cast<int64_t>(i);
      for (const auto& [e, col] : schema[r].fk_col) {
        row[col] = static_cast<int64_t>(
            rng.NextBounded(rows[edge_parent[e]]));
      }
      t.batch.AppendRow(row.data());
    }
    out.tables.push_back(std::move(t));
  }

  // Column of relation `r` for edge `e` (key col for the parent side, FK
  // col for the child side).
  auto edge_col = [&](RelId r, uint32_t e) -> uint32_t {
    if (edge_parent[e] == r) return 0;
    auto it = schema[r].fk_col.find(e);
    HIERDB_CHECK(it != schema[r].fk_col.end(), "edge not incident");
    return it->second;
  };

  // Translate the tree. A "stream" is an in-construction pipeline chain:
  // its source (table or completed chain), accumulated join steps, the
  // relation set covered so far, and per-relation column base offsets in
  // the pipelined row.
  struct Stream {
    Source input;
    std::vector<JoinStep> joins;
    RelSet rels = 0;
    std::unordered_map<RelId, uint32_t> base;  // rel -> column offset
    uint32_t width = 0;
  };

  PipelinePlan& plan = out.plan;
  std::function<Stream(int32_t)> expand = [&](int32_t idx) -> Stream {
    const JoinTreeNode& node = tree.nodes[idx];
    if (node.IsLeaf()) {
      Stream s;
      s.input = Source::OfTable(node.rel);
      s.rels = plan::RelBit(node.rel);
      s.base[node.rel] = 0;
      s.width = schema[node.rel].width;
      return s;
    }
    // Left child continues the pipeline; right child is the build side.
    Stream probe = expand(node.left);
    Stream build = expand(node.right);

    // The build side becomes a source: a base table if it is a bare leaf
    // stream with no joins, otherwise its chain is completed
    // (materialized) and referenced by index.
    Source build_src;
    if (build.joins.empty() &&
        build.input.kind == Source::Kind::kTable) {
      build_src = build.input;
    } else {
      Chain chain;
      chain.input = build.input;
      chain.joins = std::move(build.joins);
      plan.chains.push_back(std::move(chain));
      build_src =
          Source::OfChain(static_cast<uint32_t>(plan.chains.size() - 1));
    }

    // Find the predicate edge crossing the cut.
    uint32_t edge_idx = UINT32_MAX;
    for (uint32_t e = 0; e < edges.size(); ++e) {
      bool a_left = (probe.rels >> edges[e].a) & 1;
      bool b_left = (probe.rels >> edges[e].b) & 1;
      bool a_right = (build.rels >> edges[e].a) & 1;
      bool b_right = (build.rels >> edges[e].b) & 1;
      if ((a_left && b_right) || (b_left && a_right)) {
        edge_idx = e;
        break;
      }
    }
    HIERDB_CHECK(edge_idx != UINT32_MAX, "no crossing edge (cross product)");
    RelId probe_rel = ((probe.rels >> edges[edge_idx].a) & 1)
                          ? edges[edge_idx].a
                          : edges[edge_idx].b;
    RelId build_rel = probe_rel == edges[edge_idx].a ? edges[edge_idx].b
                                                     : edges[edge_idx].a;

    JoinStep step;
    step.build = build_src;
    step.probe_col =
        probe.base.at(probe_rel) + edge_col(probe_rel, edge_idx);
    step.build_col =
        build.base.at(build_rel) + edge_col(build_rel, edge_idx);
    probe.joins.push_back(step);

    // The build side's columns are appended to the pipelined row.
    for (const auto& [r, off] : build.base) {
      probe.base[r] = probe.width + off;
    }
    probe.width += build.width;
    probe.rels |= build.rels;
    return probe;
  };

  Stream root = expand(tree.root);
  Chain final_chain;
  final_chain.input = root.input;
  final_chain.joins = std::move(root.joins);
  plan.chains.push_back(std::move(final_chain));

  auto ptrs = out.TablePtrs();
  HIERDB_RETURN_NOT_OK(plan.Validate(ptrs));
  return out;
}

}  // namespace hierdb::mt
