#include "mt/column_batch.h"

#include <algorithm>
#include <numeric>

#include "mt/tuple.h"

namespace hierdb::mt {

void ColumnBatch::GatherFrom(const Batch& src, size_t begin,
                             const uint32_t* sel, size_t n) {
  const uint32_t w = src.width();
  cols_.resize(w);
  rows_ = n;
  const size_t stride = w;
  for (uint32_t c = 0; c < w; ++c) {
    cols_[c].resize(n);
    const int64_t* base = src.data().data() + begin * stride + c;
    GatherStrided(base, stride, sel, n, cols_[c].data());
  }
}

void ColumnBatch::GatherColumns(const Batch& src, size_t begin,
                                const uint32_t* sel, size_t n,
                                const uint32_t* cols, uint32_t ncols) {
  cols_.resize(ncols);
  rows_ = n;
  const size_t stride = src.width();
  for (uint32_t c = 0; c < ncols; ++c) {
    cols_[c].resize(n);
    const int64_t* base = src.data().data() + begin * stride + cols[c];
    GatherStrided(base, stride, sel, n, cols_[c].data());
  }
}

Batch ColumnBatch::ToBatch() const {
  Batch out(width());
  out.Reserve(rows_);
  std::vector<int64_t> row(width());
  for (size_t i = 0; i < rows_; ++i) {
    for (uint32_t c = 0; c < width(); ++c) row[c] = cols_[c][i];
    out.AppendRow(row.data());
  }
  return out;
}

ColumnBatch ColumnBatch::FromBatch(const Batch& src) {
  ColumnBatch out(src.width());
  out.GatherFrom(src, 0, nullptr, src.rows());
  return out;
}

namespace {

/// One compare loop per CmpOp: the switch is hoisted out of the row loop
/// so each instantiation is a branch-free strided compare the compiler
/// can unroll/vectorize.
template <typename Pass>
size_t FilterDense(const int64_t* base, size_t stride, size_t n,
                   uint32_t* sel_out, Pass pass) {
  size_t m = 0;
  for (size_t i = 0; i < n; ++i) {
    sel_out[m] = static_cast<uint32_t>(i);
    m += pass(base[i * stride]) ? 1 : 0;
  }
  return m;
}

template <typename Pass>
size_t FilterRefine(const int64_t* base, size_t stride, uint32_t* sel,
                    size_t n, Pass pass) {
  size_t m = 0;
  for (size_t i = 0; i < n; ++i) {
    uint32_t r = sel[i];
    sel[m] = r;
    m += pass(base[static_cast<size_t>(r) * stride]) ? 1 : 0;
  }
  return m;
}

template <typename Fn>
auto DispatchCmp(CmpOp cmp, int64_t value, Fn&& fn) {
  switch (cmp) {
    case CmpOp::kEq:
      return fn([value](int64_t v) { return v == value; });
    case CmpOp::kNe:
      return fn([value](int64_t v) { return v != value; });
    case CmpOp::kLt:
      return fn([value](int64_t v) { return v < value; });
    case CmpOp::kLe:
      return fn([value](int64_t v) { return v <= value; });
    case CmpOp::kGt:
      return fn([value](int64_t v) { return v > value; });
    case CmpOp::kGe:
    default:
      return fn([value](int64_t v) { return v >= value; });
  }
}

}  // namespace

size_t FilterStrided(const int64_t* base, size_t stride, size_t n, CmpOp cmp,
                     int64_t value, uint32_t* sel_out) {
  return DispatchCmp(cmp, value, [&](auto pass) {
    return FilterDense(base, stride, n, sel_out, pass);
  });
}

size_t FilterRefineStrided(const int64_t* base, size_t stride, CmpOp cmp,
                           int64_t value, uint32_t* sel, size_t n) {
  return DispatchCmp(cmp, value, [&](auto pass) {
    return FilterRefine(base, stride, sel, n, pass);
  });
}

size_t FilterBatch(const Batch& rows, size_t begin, size_t n,
                   const std::vector<Predicate>& preds, SelVec* sel) {
  sel->resize(n);
  if (preds.empty()) {
    std::iota(sel->begin(), sel->end(), 0u);
    return n;
  }
  const size_t stride = rows.width();
  const int64_t* origin = rows.data().data() + begin * stride;
  size_t m =
      FilterStrided(origin + preds[0].col, stride, n, preds[0].cmp,
                    preds[0].value, sel->data());
  for (size_t p = 1; p < preds.size() && m > 0; ++p) {
    m = FilterRefineStrided(origin + preds[p].col, stride, preds[p].cmp,
                            preds[p].value, sel->data(), m);
  }
  sel->resize(m);
  return m;
}

void HashStrided(const int64_t* base, size_t stride, const uint32_t* sel,
                 size_t n, uint64_t* out) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = HashKey(base[i * stride]);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = HashKey(base[static_cast<size_t>(sel[i]) * stride]);
  }
}

void GatherStrided(const int64_t* base, size_t stride, const uint32_t* sel,
                   size_t n, int64_t* out) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = base[i * stride];
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = base[static_cast<size_t>(sel[i]) * stride];
  }
}

std::vector<ColumnStats> ComputeColumnStats(const Batch& batch) {
  const uint32_t w = batch.width();
  std::vector<ColumnStats> stats(w);
  const size_t n = batch.rows();
  if (n == 0) return stats;
  // KMV distinct sketch: keep the k smallest distinct hash values; with
  // m >= k observed, distinct ~= (k - 1) / max_kept_normalized. Exact
  // below k kept values.
  constexpr size_t kK = 256;
  std::vector<uint64_t> kmv;
  for (uint32_t c = 0; c < w; ++c) {
    const int64_t* base = batch.data().data() + c;
    int64_t mn = base[0], mx = base[0];
    kmv.clear();
    for (size_t i = 0; i < n; ++i) {
      int64_t v = base[i * w];
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      uint64_t h = HashKey(v);
      // Keep a sorted set of the k smallest distinct hashes (k is tiny,
      // so the insertion is a short memmove amortized to near-nothing
      // once the threshold stabilizes).
      if (kmv.size() == kK && h >= kmv.back()) continue;
      auto it = std::lower_bound(kmv.begin(), kmv.end(), h);
      if (it != kmv.end() && *it == h) continue;
      kmv.insert(it, h);
      if (kmv.size() > kK) kmv.pop_back();
    }
    uint64_t distinct;
    if (kmv.size() < kK) {
      distinct = kmv.size();
    } else {
      double frac = static_cast<double>(kmv.back()) /
                    static_cast<double>(UINT64_MAX);
      distinct = frac <= 0.0
                     ? kmv.size()
                     : static_cast<uint64_t>((kK - 1) / frac);
    }
    stats[c] = {mn, mx, distinct};
  }
  return stats;
}

PredicateFold ClassifyPredicate(const Predicate& p, const ColumnStats& s) {
  switch (p.cmp) {
    case CmpOp::kEq:
      if (p.value < s.min || p.value > s.max) return PredicateFold::kAlwaysFalse;
      if (s.min == s.max && p.value == s.min) return PredicateFold::kAlwaysTrue;
      return PredicateFold::kKeep;
    case CmpOp::kNe:
      if (p.value < s.min || p.value > s.max) return PredicateFold::kAlwaysTrue;
      if (s.min == s.max && p.value == s.min) return PredicateFold::kAlwaysFalse;
      return PredicateFold::kKeep;
    case CmpOp::kLt:
      if (s.max < p.value) return PredicateFold::kAlwaysTrue;
      if (s.min >= p.value) return PredicateFold::kAlwaysFalse;
      return PredicateFold::kKeep;
    case CmpOp::kLe:
      if (s.max <= p.value) return PredicateFold::kAlwaysTrue;
      if (s.min > p.value) return PredicateFold::kAlwaysFalse;
      return PredicateFold::kKeep;
    case CmpOp::kGt:
      if (s.min > p.value) return PredicateFold::kAlwaysTrue;
      if (s.max <= p.value) return PredicateFold::kAlwaysFalse;
      return PredicateFold::kKeep;
    case CmpOp::kGe:
    default:
      if (s.min >= p.value) return PredicateFold::kAlwaysTrue;
      if (s.max < p.value) return PredicateFold::kAlwaysFalse;
      return PredicateFold::kKeep;
  }
}

double EstimateSelectivity(const Predicate& p, const ColumnStats& s) {
  const double d = static_cast<double>(std::max<uint64_t>(s.distinct_est, 1));
  const double lo = static_cast<double>(s.min);
  const double hi = static_cast<double>(s.max);
  const double span = hi - lo + 1.0;
  const double v = static_cast<double>(p.value);
  double sel;
  switch (p.cmp) {
    case CmpOp::kEq: sel = 1.0 / d; break;
    case CmpOp::kNe: sel = 1.0 - 1.0 / d; break;
    case CmpOp::kLt: sel = (v - lo) / span; break;
    case CmpOp::kLe: sel = (v - lo + 1.0) / span; break;
    case CmpOp::kGt: sel = (hi - v) / span; break;
    case CmpOp::kGe:
    default: sel = (hi - v + 1.0) / span; break;
  }
  return std::min(1.0, std::max(1e-4, sel));
}

}  // namespace hierdb::mt
