#include "mt/build_cache.h"

namespace hierdb::mt {

uint64_t TableContentHash(const Batch& batch) {
  // FNV-1a over the raw row data, seeded with the width so two tables
  // holding the same flat values at different widths hash apart.
  uint64_t h = 0xCBF29CE484222325ULL ^ batch.width();
  for (int64_t v : batch.data()) {
    h ^= static_cast<uint64_t>(v);
    h *= 0x100000001B3ULL;
  }
  // A zero hash is reserved for "uncacheable".
  return h == 0 ? 1 : h;
}

std::shared_ptr<const BucketTables> BuildCache::Lookup(const BuildKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

void BuildCache::Insert(const BuildKey& key,
                        std::shared_ptr<const BucketTables> tables) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.insertions;
  map_[key] = std::move(tables);
}

void BuildCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.invalidations;
  map_.clear();
}

BuildCache::Stats BuildCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = map_.size();
  for (const auto& [key, tables] : map_) {
    for (const RowTable& t : *tables) s.bytes += t.bytes();
  }
  return s;
}

}  // namespace hierdb::mt
