#include "mt/build_cache.h"

#include <chrono>

namespace hierdb::mt {

namespace {

/// Poll cadence while waiting on another query's in-flight build (also
/// bounds how stale a cancelled waiter can be) and the liveness valve: a
/// waiter that has seen no publish/abandon for this long proceeds solo, so
/// a lost builder can delay but never wedge other queries.
constexpr auto kWaitPoll = std::chrono::milliseconds(2);
constexpr auto kWaitCap = std::chrono::seconds(5);

uint64_t TablesBytes(const BucketTables& tables) {
  uint64_t b = 0;
  for (const RowTable& t : tables) b += t.bytes();
  return b;
}

}  // namespace

uint64_t TableContentHash(const Batch& batch) {
  // FNV-1a over the raw row data, seeded with the width so two tables
  // holding the same flat values at different widths hash apart.
  uint64_t h = 0xCBF29CE484222325ULL ^ batch.width();
  for (int64_t v : batch.data()) {
    h ^= static_cast<uint64_t>(v);
    h *= 0x100000001B3ULL;
  }
  // A zero hash is reserved for "uncacheable".
  return h == 0 ? 1 : h;
}

BuildCache::Acquired BuildCache::Acquire(
    const BuildKey& key, const std::function<bool()>& cancelled,
    bool allow_wait) {
  std::unique_lock<std::mutex> lock(mu_);
  Acquired out;
  const auto deadline = std::chrono::steady_clock::now() + kWaitCap;
  for (;;) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      // First miss: the caller becomes this key's builder.
      Entry e;
      e.building = true;
      map_.emplace(key, std::move(e));
      ++stats_.misses;
      out.builder = true;
      return out;
    }
    if (!it->second.building) {
      ++stats_.hits;
      if (out.waited) ++stats_.dedup_waits;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      out.tables = it->second.tables;
      return out;
    }
    if (!allow_wait) {
      // The caller holds an unpublished builder entry: waiting here could
      // stall against another query doing the same in the opposite key
      // order. Build solo instead.
      ++stats_.misses;
      return out;
    }
    // Another query is building this key right now: wait for its publish
    // instead of duplicating the work.
    out.waited = true;
    cv_.wait_for(lock, kWaitPoll);
    if ((cancelled != nullptr && cancelled()) ||
        std::chrono::steady_clock::now() >= deadline) {
      // Proceed solo: build locally, publish nothing.
      ++stats_.misses;
      return out;
    }
  }
}

void BuildCache::Publish(const BuildKey& key,
                         std::shared_ptr<const BucketTables> tables) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.insertions;
  auto [it, inserted] = map_.try_emplace(key);
  Entry& e = it->second;
  if (!inserted && !e.building) {
    // Duplicate publish (two solo builds raced): last writer wins.
    resident_bytes_ -= e.bytes;
    lru_.erase(e.lru);
  }
  e.building = false;
  e.bytes = TablesBytes(*tables);
  e.tables = std::move(tables);
  lru_.push_front(key);
  e.lru = lru_.begin();
  resident_bytes_ += e.bytes;
  EvictLocked(key);
  cv_.notify_all();
}

void BuildCache::Abandon(const BuildKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end() || !it->second.building) return;
  map_.erase(it);
  cv_.notify_all();
}

void BuildCache::SetByteBudget(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_bytes_ = bytes;
}

void BuildCache::EvictLocked(const BuildKey& keep) {
  if (budget_bytes_ == 0) return;
  while (resident_bytes_ > budget_bytes_ && !lru_.empty()) {
    BuildKey victim = lru_.back();
    if (victim == keep) break;  // never evict the just-published entry
    auto it = map_.find(victim);
    resident_bytes_ -= it->second.bytes;
    lru_.pop_back();
    map_.erase(it);
    ++stats_.evictions;
  }
}

void BuildCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.invalidations;
  // In-flight entries go too: their waiters re-acquire as builders, and a
  // late Publish simply re-inserts under the (content-hash) key.
  map_.clear();
  lru_.clear();
  resident_bytes_ = 0;
  cv_.notify_all();
}

BuildCache::Stats BuildCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  for (const auto& [key, e] : map_) {
    if (e.building) continue;
    ++s.entries;
    s.bytes += e.bytes;
  }
  return s;
}

}  // namespace hierdb::mt
