#include "mt/executor.h"

#include <thread>
#include <unordered_map>

#include "mt/column_batch.h"

namespace hierdb::mt {

JoinResult ReferenceStarJoin(const Relation& fact,
                             const std::vector<const Relation*>& dims) {
  std::vector<std::unordered_map<int64_t, uint64_t>> counts(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    for (const Tuple& t : *dims[d]) ++counts[d][t.key];
  }
  JoinResult r;
  for (const Tuple& f : fact) {
    uint64_t c = 1;
    for (size_t d = 0; d < dims.size() && c != 0; ++d) {
      auto it = counts[d].find(f.key);
      c = (it == counts[d].end()) ? 0 : c * it->second;
    }
    if (c != 0) {
      r.count += c;
      r.checksum += c * HashKey(f.key);
    }
  }
  return r;
}

bool StarJoinExecutor::BoundedQueue::TryPush(Activation&& a,
                                             uint32_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.size() >= capacity) return false;
  items_.push_back(std::move(a));
  size_.store(items_.size(), std::memory_order_relaxed);
  return true;
}

bool StarJoinExecutor::BoundedQueue::TryPopFront(Activation* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.empty()) return false;
  *out = std::move(items_.front());
  items_.pop_front();
  size_.store(items_.size(), std::memory_order_relaxed);
  return true;
}

bool StarJoinExecutor::BoundedQueue::TryPopBack(Activation* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.empty()) return false;
  *out = std::move(items_.back());
  items_.pop_back();
  size_.store(items_.size(), std::memory_order_relaxed);
  return true;
}

StarJoinExecutor::StarJoinExecutor(const ExecutorOptions& options)
    : options_(options) {
  HIERDB_CHECK(options_.threads > 0, "executor needs at least one thread");
  HIERDB_CHECK(options_.buckets > 0, "executor needs at least one bucket");
}

StarJoinExecutor::~StarJoinExecutor() = default;

Result<JoinResult> StarJoinExecutor::Execute(
    const Relation& fact, const std::vector<const Relation*>& dims,
    ExecutorStats* stats) {
  if (options_.morsel_tuples == 0 || options_.batch_tuples == 0) {
    return Status::InvalidArgument("zero morsel or batch size");
  }
  fact_ = &fact;
  dims_ = dims;
  tables_.clear();
  bucket_mu_.clear();
  for (size_t d = 0; d < dims_.size(); ++d) {
    std::vector<HashTable> per_bucket;
    uint32_t expected = static_cast<uint32_t>(
        dims_[d]->size() / options_.buckets + 1);
    for (uint32_t b = 0; b < options_.buckets; ++b) {
      per_bucket.emplace_back(expected);
    }
    tables_.push_back(std::move(per_bucket));
    for (uint32_t b = 0; b < options_.buckets; ++b) {
      bucket_mu_.push_back(std::make_unique<std::mutex>());
    }
  }
  queues_.clear();
  for (uint32_t t = 0; t < options_.threads; ++t) {
    queues_.push_back(std::make_unique<BoundedQueue>());
  }
  outstanding_.store(0);
  build_outstanding_.store(0);
  probe_released_.store(dims_.empty());
  probe_cursor_.store(0);
  done_.store(false);
  result_count_.store(0);
  result_checksum_.store(0);
  stat_acts_.store(0);
  stat_nonprimary_.store(0);
  stat_escapes_.store(0);

  // Preload build-scan morsels (trigger activations), round-robin over
  // thread queues; capacity is ignored at preload like the trigger
  // preload in the simulated engine.
  uint32_t rr = 0;
  for (uint32_t d = 0; d < dims_.size(); ++d) {
    const Relation& rel = *dims_[d];
    for (size_t begin = 0; begin < rel.size();
         begin += options_.morsel_tuples) {
      Activation a;
      a.kind = Activation::Kind::kScanBuild;
      a.dim = d;
      a.begin = begin;
      a.end = std::min(rel.size(), begin + options_.morsel_tuples);
      outstanding_.fetch_add(1);
      build_outstanding_.fetch_add(1);
      while (!queues_[rr % options_.threads]->TryPush(std::move(a),
                                                      UINT32_MAX)) {
      }
      ++rr;
    }
  }
  // Fact morsels are drawn from a shared cursor; account them up front.
  size_t probe_morsels =
      (fact.size() + options_.morsel_tuples - 1) / options_.morsel_tuples;
  if (fact.empty()) probe_morsels = 0;
  outstanding_.fetch_add(probe_morsels);
  if (dims_.empty() && probe_morsels == 0) done_.store(true);
  if (outstanding_.load() == 0) done_.store(true);

  std::vector<std::thread> workers;
  workers.reserve(options_.threads);
  for (uint32_t t = 0; t < options_.threads; ++t) {
    workers.emplace_back([this, t]() { WorkerLoop(t); });
  }
  for (auto& w : workers) w.join();

  if (stats != nullptr) {
    stats->activations = stat_acts_.load();
    stats->nonprimary_consumptions = stat_nonprimary_.load();
    stats->full_queue_escapes = stat_escapes_.load();
    stats->result_tuples = result_count_.load();
    stats->checksum = result_checksum_.load();
  }
  return JoinResult{result_count_.load(), result_checksum_.load()};
}

void StarJoinExecutor::WorkerLoop(uint32_t self) {
  uint32_t idle_spins = 0;
  while (!done_.load(std::memory_order_acquire)) {
    if (RunOne(self)) {
      idle_spins = 0;
      continue;
    }
    if (outstanding_.load(std::memory_order_acquire) == 0) {
      done_.store(true, std::memory_order_release);
      break;
    }
    if (++idle_spins > 64) {
      std::this_thread::yield();
    }
  }
}

bool StarJoinExecutor::RunOne(uint32_t self) {
  Activation a;
  // Primary queue first, then steal from the other queues of the node.
  if (queues_[self]->TryPopFront(&a)) {
    Execute(a, self);
    return true;
  }
  for (uint32_t k = 1; k < options_.threads; ++k) {
    uint32_t victim = (self + k) % options_.threads;
    if (queues_[victim]->TryPopBack(&a)) {
      stat_nonprimary_.fetch_add(1, std::memory_order_relaxed);
      Execute(a, self);
      return true;
    }
  }
  // Probe triggers come from a shared cursor once every build has ended
  // (the hash constraint build < probe).
  if (probe_released_.load(std::memory_order_acquire)) {
    size_t begin = probe_cursor_.fetch_add(options_.morsel_tuples);
    if (begin < fact_->size()) {
      Activation scan;
      scan.kind = Activation::Kind::kScanProbe;
      scan.begin = begin;
      scan.end = std::min(fact_->size(),
                          begin + static_cast<size_t>(options_.morsel_tuples));
      Execute(scan, self);
      return true;
    }
  }
  return false;
}

void StarJoinExecutor::ScatterAndEmit(uint32_t self, const Relation& rel,
                                      size_t begin, size_t end,
                                      Activation::Kind kind, uint32_t dim) {
  // Counting scatter: one pass to size per-bucket runs, one pass to fill —
  // no per-bucket container churn.
  std::vector<uint32_t> counts(options_.buckets + 1, 0);
  for (size_t i = begin; i < end; ++i) {
    ++counts[BucketOf(rel[i].key) + 1];
  }
  for (uint32_t b = 1; b <= options_.buckets; ++b) counts[b] += counts[b - 1];
  std::vector<Tuple> sorted(end - begin);
  std::vector<uint32_t> cursor(counts.begin(), counts.end() - 1);
  for (size_t i = begin; i < end; ++i) {
    sorted[cursor[BucketOf(rel[i].key)]++] = rel[i];
  }
  for (uint32_t b = 0; b < options_.buckets; ++b) {
    for (uint32_t off = counts[b]; off < counts[b + 1];
         off += options_.batch_tuples) {
      Activation out;
      out.kind = kind;
      out.dim = dim;
      out.bucket = b;
      uint32_t run_end =
          std::min(counts[b + 1], off + options_.batch_tuples);
      out.batch.assign(sorted.begin() + off, sorted.begin() + run_end);
      Emit(self, std::move(out));
    }
  }
}

void StarJoinExecutor::Emit(uint32_t self, Activation a) {
  outstanding_.fetch_add(1);
  if (a.kind == Activation::Kind::kBuildBatch) build_outstanding_.fetch_add(1);
  uint32_t dest = QueueOf(a.bucket);
  if (!queues_[dest]->TryPush(std::move(a), options_.queue_capacity)) {
    // Flow control: the destination is full. Escape the blocking action by
    // doing the work ourselves (the ProcessAnotherActivation adaptation
    // for a real thread pool): execute the activation inline.
    stat_escapes_.fetch_add(1, std::memory_order_relaxed);
    Activation inline_act;
    if (queues_[dest]->TryPopFront(&inline_act)) {
      Execute(inline_act, self);
    }
    // After helping, deliver bypassing capacity (bounded overshoot).
    while (!queues_[dest]->TryPush(std::move(a), UINT32_MAX)) {
    }
  }
}

void StarJoinExecutor::Execute(const Activation& a, uint32_t self) {
  stat_acts_.fetch_add(1, std::memory_order_relaxed);
  switch (a.kind) {
    case Activation::Kind::kScanBuild: {
      const Relation& rel = *dims_[a.dim];
      ScatterAndEmit(self, rel, a.begin, a.end,
                     Activation::Kind::kBuildBatch, a.dim);
      break;
    }
    case Activation::Kind::kBuildBatch: {
      std::mutex& mu =
          *bucket_mu_[a.dim * options_.buckets + a.bucket];
      std::lock_guard<std::mutex> lock(mu);
      HashTable& ht = tables_[a.dim][a.bucket];
      for (const Tuple& t : a.batch) ht.Insert(t);
      if (build_outstanding_.fetch_sub(1) == 1) {
        probe_released_.store(true, std::memory_order_release);
      }
      break;
    }
    case Activation::Kind::kScanProbe: {
      ScatterAndEmit(self, *fact_, a.begin, a.end,
                     Activation::Kind::kProbeBatch, 0);
      break;
    }
    case Activation::Kind::kProbeBatch: {
      // Vectorized probe: hash each tuple key once, then walk every
      // dimension table with the batched (hash[], key[]) lookup — the
      // scalar loop rehashed the same key per dimension.
      const size_t n = a.batch.size();
      static thread_local std::vector<int64_t> keys;
      static thread_local std::vector<uint64_t> hashes, counts;
      keys.resize(n);
      hashes.resize(n);
      counts.assign(n, 1);
      for (size_t i = 0; i < n; ++i) keys[i] = a.batch[i].key;
      HashStrided(keys.data(), 1, nullptr, n, hashes.data());
      for (size_t d = 0; d < dims_.size(); ++d) {
        tables_[d][a.bucket].MatchCountBatch(keys.data(), hashes.data(), n,
                                             counts.data());
      }
      uint64_t count = 0, checksum = 0;
      for (size_t i = 0; i < n; ++i) {
        count += counts[i];
        checksum += counts[i] * hashes[i];
      }
      result_count_.fetch_add(count, std::memory_order_relaxed);
      result_checksum_.fetch_add(checksum, std::memory_order_relaxed);
      break;
    }
  }
  // A build-scan counts toward build_outstanding_ too: its emissions were
  // registered before this decrement, so the counter cannot hit zero
  // while batches remain.
  if (a.kind == Activation::Kind::kScanBuild) {
    if (build_outstanding_.fetch_sub(1) == 1) {
      probe_released_.store(true, std::memory_order_release);
    }
  }
  outstanding_.fetch_sub(1);
}

}  // namespace hierdb::mt
