// Chained hash table over one column of fixed-width rows — the per-bucket
// build table of the general pipeline executor.
//
// Rows live in a flat pool (append-only during the build phase); chains
// are index-linked. One bucket's table is written under the executor's
// per-bucket exclusivity and probed read-only afterwards, so no internal
// synchronization is needed.

#ifndef HIERDB_MT_ROW_TABLE_H_
#define HIERDB_MT_ROW_TABLE_H_

#include <cstdint>
#include <vector>

#include "mt/row.h"

namespace hierdb::mt {

class RowTable {
 public:
  static constexpr uint32_t kNoEntry = UINT32_MAX;

  RowTable() = default;
  RowTable(uint32_t width, uint32_t key_col)
      : width_(width), key_col_(key_col) {}

  void Init(uint32_t width, uint32_t key_col) {
    width_ = width;
    key_col_ = key_col;
  }

  void Insert(const int64_t* row) {
    if (rows() + 1 > heads_.size() * 2) Rehash();
    uint32_t id = static_cast<uint32_t>(rows());
    pool_.insert(pool_.end(), row, row + width_);
    uint64_t slot = HashKey(row[key_col_]) & (heads_.size() - 1);
    next_.push_back(heads_[slot]);
    heads_[slot] = id;
  }

  void InsertBatch(const Batch& batch) {
    pool_.reserve(pool_.size() + batch.data().size());
    next_.reserve(next_.size() + batch.rows());
    for (size_t i = 0; i < batch.rows(); ++i) Insert(batch.row(i));
  }

  template <typename Fn>
  void ForEachMatch(int64_t key, Fn&& fn) const {
    if (heads_.empty()) return;
    uint64_t slot = HashKey(key) & (heads_.size() - 1);
    for (uint32_t e = heads_[slot]; e != kNoEntry; e = next_[e]) {
      const int64_t* row = pool_.data() + static_cast<size_t>(e) * width_;
      if (row[key_col_] == key) fn(row);
    }
  }

  /// Batched probe over precomputed (key, hash) columns: invokes
  /// fn(i, build_row) for every build row matching keys[i], i in [0, n).
  /// hashes[i] must be HashKey(keys[i]) — computed once by the caller's
  /// vectorized hash pass and reused here. A small prefetch window hides
  /// the head-array cache misses of independent lookups.
  template <typename Fn>
  void ProbeBatch(const int64_t* keys, const uint64_t* hashes, size_t n,
                  Fn&& fn) const {
    if (heads_.empty()) return;
    const uint64_t mask = heads_.size() - 1;
    constexpr size_t kPrefetch = 8;
    for (size_t i = 0; i < n; ++i) {
      if (i + kPrefetch < n) {
        __builtin_prefetch(&heads_[hashes[i + kPrefetch] & mask], 0, 1);
      }
      const int64_t key = keys[i];
      for (uint32_t e = heads_[hashes[i] & mask]; e != kNoEntry;
           e = next_[e]) {
        const int64_t* row = pool_.data() + static_cast<size_t>(e) * width_;
        if (row[key_col_] == key) fn(i, row);
      }
    }
  }

  size_t rows() const { return width_ == 0 ? 0 : pool_.size() / width_; }
  uint32_t width() const { return width_; }
  uint64_t bytes() const {
    return pool_.size() * sizeof(int64_t) +
           (next_.size() + heads_.size()) * sizeof(uint32_t);
  }

  /// All build rows, in insertion order (used to ship a bucket's fragment
  /// to a requester node).
  const std::vector<int64_t>& pool() const { return pool_; }

 private:
  void Rehash() {
    size_t target = heads_.empty() ? 16 : heads_.size() * 2;
    heads_.assign(target, kNoEntry);
    size_t n = rows();
    for (size_t i = 0; i < n; ++i) {
      const int64_t* row = pool_.data() + i * width_;
      uint64_t slot = HashKey(row[key_col_]) & (heads_.size() - 1);
      next_[i] = heads_[slot];
      heads_[slot] = static_cast<uint32_t>(i);
    }
  }

  uint32_t width_ = 0;
  uint32_t key_col_ = 0;
  std::vector<int64_t> pool_;
  std::vector<uint32_t> next_;
  std::vector<uint32_t> heads_;
};

}  // namespace hierdb::mt

#endif  // HIERDB_MT_ROW_TABLE_H_
