// Chained hash table for one join bucket.
//
// Entries live in a contiguous pool; chain heads are indices. A bucket's
// table is written by whichever thread processes that bucket's build
// activations (bucket-exclusive under the executor's per-bucket locks),
// then probed read-only by any thread.

#ifndef HIERDB_MT_HASH_TABLE_H_
#define HIERDB_MT_HASH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mt/tuple.h"

namespace hierdb::mt {

class HashTable {
 public:
  static constexpr uint32_t kNoEntry = UINT32_MAX;

  explicit HashTable(uint32_t expected = 16);

  void Insert(const Tuple& t);

  /// Calls `fn(payload)` for every build tuple whose key equals `key`.
  template <typename Fn>
  void ForEachMatch(int64_t key, Fn&& fn) const {
    if (heads_.empty()) return;
    uint32_t slot =
        static_cast<uint32_t>(HashKey(key) & (heads_.size() - 1));
    for (uint32_t e = heads_[slot]; e != kNoEntry; e = entries_[e].next) {
      if (entries_[e].key == key) fn(entries_[e].payload);
    }
  }

  uint64_t MatchCount(int64_t key) const {
    uint64_t n = 0;
    ForEachMatch(key, [&n](int64_t) { ++n; });
    return n;
  }

  /// Batched (hash[], key[]) probe: counts[i] accumulates (*=) the match
  /// count of keys[i]. hashes[i] must be HashKey(keys[i]) — computed once
  /// by the caller and reused across every dimension table of a probe
  /// batch instead of rehashing per (tuple, dimension). A prefetch window
  /// hides the chain-head misses of independent lookups.
  void MatchCountBatch(const int64_t* keys, const uint64_t* hashes, size_t n,
                       uint64_t* counts) const {
    if (heads_.empty()) {
      for (size_t i = 0; i < n; ++i) counts[i] = 0;
      return;
    }
    const uint64_t mask = heads_.size() - 1;
    constexpr size_t kPrefetch = 8;
    for (size_t i = 0; i < n; ++i) {
      if (i + kPrefetch < n) {
        __builtin_prefetch(&heads_[hashes[i + kPrefetch] & mask], 0, 1);
      }
      uint64_t c = 0;
      for (uint32_t e = heads_[hashes[i] & mask]; e != kNoEntry;
           e = entries_[e].next) {
        c += entries_[e].key == keys[i] ? 1 : 0;
      }
      counts[i] *= c;
    }
  }

  size_t size() const { return entries_.size(); }
  uint64_t bytes() const {
    return entries_.size() * sizeof(Entry) + heads_.size() * sizeof(uint32_t);
  }

 private:
  struct Entry {
    int64_t key;
    int64_t payload;
    uint32_t next;
  };

  void Rehash();

  std::vector<Entry> entries_;
  std::vector<uint32_t> heads_;  // power-of-two size
};

}  // namespace hierdb::mt

#endif  // HIERDB_MT_HASH_TABLE_H_
