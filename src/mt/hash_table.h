// Chained hash table for one join bucket.
//
// Entries live in a contiguous pool; chain heads are indices. A bucket's
// table is written by whichever thread processes that bucket's build
// activations (bucket-exclusive under the executor's per-bucket locks),
// then probed read-only by any thread.

#ifndef HIERDB_MT_HASH_TABLE_H_
#define HIERDB_MT_HASH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mt/tuple.h"

namespace hierdb::mt {

class HashTable {
 public:
  static constexpr uint32_t kNoEntry = UINT32_MAX;

  explicit HashTable(uint32_t expected = 16);

  void Insert(const Tuple& t);

  /// Calls `fn(payload)` for every build tuple whose key equals `key`.
  template <typename Fn>
  void ForEachMatch(int64_t key, Fn&& fn) const {
    if (heads_.empty()) return;
    uint32_t slot =
        static_cast<uint32_t>(HashKey(key) & (heads_.size() - 1));
    for (uint32_t e = heads_[slot]; e != kNoEntry; e = entries_[e].next) {
      if (entries_[e].key == key) fn(entries_[e].payload);
    }
  }

  uint64_t MatchCount(int64_t key) const {
    uint64_t n = 0;
    ForEachMatch(key, [&n](int64_t) { ++n; });
    return n;
  }

  size_t size() const { return entries_.size(); }
  uint64_t bytes() const {
    return entries_.size() * sizeof(Entry) + heads_.size() * sizeof(uint32_t);
  }

 private:
  struct Entry {
    int64_t key;
    int64_t payload;
    uint32_t next;
  };

  void Rehash();

  std::vector<Entry> entries_;
  std::vector<uint32_t> heads_;  // power-of-two size
};

}  // namespace hierdb::mt

#endif  // HIERDB_MT_HASH_TABLE_H_
