#include "mt/plan.h"

#include <sstream>
#include <unordered_map>

namespace hierdb::mt {

Status PipelinePlan::Validate(const std::vector<const Table*>& tables) const {
  std::vector<uint32_t> widths;
  widths.reserve(tables.size());
  for (const Table* t : tables) widths.push_back(t->width());
  return ValidateWidths(widths);
}

Status PipelinePlan::ValidateWidths(
    const std::vector<uint32_t>& table_widths) const {
  if (chains.empty()) return Status::InvalidArgument("plan has no chains");
  auto check_source = [&](const Source& s, uint32_t chain) -> Status {
    if (s.kind == Source::Kind::kTable) {
      if (s.index >= table_widths.size()) {
        return Status::OutOfRange("table index " + std::to_string(s.index));
      }
    } else {
      if (s.index >= chain) {
        return Status::InvalidArgument(
            "chain " + std::to_string(chain) + " references chain " +
            std::to_string(s.index) + " (must be earlier)");
      }
    }
    return Status::OK();
  };
  auto source_width = [&](const Source& s) -> uint32_t {
    return s.kind == Source::Kind::kTable
               ? EffectiveTableWidth(s.index, table_widths[s.index])
               : OutputWidthFrom(table_widths, s.index);
  };
  for (size_t t = 0; t < table_projections.size(); ++t) {
    if (table_projections[t].empty()) continue;
    if (t >= table_widths.size()) {
      return Status::OutOfRange("projection references table index " +
                                std::to_string(t));
    }
    uint32_t prev = UINT32_MAX;
    for (uint32_t col : table_projections[t]) {
      if (col >= table_widths[t]) {
        return Status::OutOfRange(
            "projection column " + std::to_string(col) + " >= width " +
            std::to_string(table_widths[t]) + " of table " +
            std::to_string(t));
      }
      if (prev != UINT32_MAX && col <= prev) {
        return Status::InvalidArgument(
            "projection of table " + std::to_string(t) +
            " must list strictly increasing columns");
      }
      prev = col;
    }
  }
  for (uint32_t c = 0; c < chains.size(); ++c) {
    const Chain& chain = chains[c];
    HIERDB_RETURN_NOT_OK(check_source(chain.input, c));
    uint32_t width = source_width(chain.input);
    for (const JoinStep& j : chain.joins) {
      HIERDB_RETURN_NOT_OK(check_source(j.build, c));
      if (j.probe_col >= width) {
        return Status::OutOfRange("probe col " + std::to_string(j.probe_col) +
                                  " >= pipelined width " +
                                  std::to_string(width));
      }
      uint32_t bw = source_width(j.build);
      if (j.build_col >= bw) {
        return Status::OutOfRange("build col " + std::to_string(j.build_col) +
                                  " >= build width " + std::to_string(bw));
      }
      width += bw;
    }
  }
  for (size_t t = 0; t < table_filters.size(); ++t) {
    if (table_filters[t].empty()) continue;
    if (t >= table_widths.size()) {
      return Status::OutOfRange("filters reference table index " +
                                std::to_string(t));
    }
    for (const Predicate& p : table_filters[t]) {
      if (p.col >= table_widths[t]) {
        return Status::OutOfRange(
            "filter column " + std::to_string(p.col) + " >= width " +
            std::to_string(table_widths[t]) + " of table " +
            std::to_string(t));
      }
    }
  }
  if (agg.has_value()) {
    HIERDB_RETURN_NOT_OK(agg->Validate(OutputWidthFrom(
        table_widths, static_cast<uint32_t>(chains.size() - 1))));
  }
  return Status::OK();
}

uint32_t PipelinePlan::OutputWidth(const std::vector<const Table*>& tables,
                                   uint32_t chain) const {
  std::vector<uint32_t> widths;
  widths.reserve(tables.size());
  for (const Table* t : tables) widths.push_back(t->width());
  return OutputWidthFrom(widths, chain);
}

uint32_t PipelinePlan::OutputWidthFrom(
    const std::vector<uint32_t>& table_widths, uint32_t chain) const {
  const Chain& c = chains[chain];
  auto source_width = [&](const Source& s) -> uint32_t {
    return s.kind == Source::Kind::kTable
               ? EffectiveTableWidth(s.index, table_widths[s.index])
               : OutputWidthFrom(table_widths, s.index);
  };
  uint32_t width = source_width(c.input);
  for (const JoinStep& j : c.joins) width += source_width(j.build);
  return width;
}

std::vector<uint32_t> PipelinePlan::FinalLayout(
    const std::vector<uint32_t>& table_widths) const {
  std::vector<uint32_t> offsets(table_widths.size(), UINT32_MAX);
  uint32_t pos = 0;
  // A chain's output row is its input row followed by each build's columns
  // in step order; chain sources expand recursively in place, so a
  // depth-first walk from the final chain assigns every table one span.
  auto expand = [&](auto&& self, const Source& s) -> void {
    if (s.kind == Source::Kind::kTable) {
      offsets[s.index] = pos;
      pos += EffectiveTableWidth(s.index, table_widths[s.index]);
      return;
    }
    const Chain& c = chains[s.index];
    self(self, c.input);
    for (const JoinStep& j : c.joins) self(self, j.build);
  };
  expand(expand, Source::OfChain(static_cast<uint32_t>(chains.size() - 1)));
  return offsets;
}

std::vector<bool> PipelinePlan::MaterializedChains() const {
  std::vector<bool> mat(chains.size(), false);
  for (const Chain& c : chains) {
    if (c.input.kind == Source::Kind::kChain) mat[c.input.index] = true;
    for (const JoinStep& j : c.joins) {
      if (j.build.kind == Source::Kind::kChain) mat[j.build.index] = true;
    }
  }
  return mat;
}

std::string PipelinePlan::ToString() const {
  std::ostringstream os;
  auto src = [](const Source& s) {
    return std::string(s.kind == Source::Kind::kTable ? "T" : "C") +
           std::to_string(s.index);
  };
  for (uint32_t c = 0; c < chains.size(); ++c) {
    os << "chain " << c << ": scan(" << src(chains[c].input) << ")";
    for (const JoinStep& j : chains[c].joins) {
      os << " -> probe(" << src(j.build) << " @" << j.probe_col << "="
         << j.build_col << ")";
    }
    os << "\n";
  }
  for (size_t t = 0; t < table_filters.size(); ++t) {
    if (table_filters[t].empty()) continue;
    os << "filter T" << t << ":";
    for (const Predicate& p : table_filters[t]) {
      os << " c" << p.col << CmpOpName(p.cmp) << p.value;
    }
    os << "\n";
  }
  for (size_t t = 0; t < table_projections.size(); ++t) {
    if (table_projections[t].empty()) continue;
    os << "project T" << t << ":";
    for (uint32_t c : table_projections[t]) os << " c" << c;
    os << "\n";
  }
  if (agg.has_value()) os << "agg: " << agg->ToString() << "\n";
  return os.str();
}

PipelinePlan MakeRightDeepPlan(uint32_t fact_table,
                               const std::vector<uint32_t>& dim_tables,
                               const std::vector<uint32_t>& probe_cols) {
  HIERDB_CHECK(dim_tables.size() == probe_cols.size(),
               "dims and probe columns must align");
  PipelinePlan plan;
  Chain chain;
  chain.input = Source::OfTable(fact_table);
  for (size_t i = 0; i < dim_tables.size(); ++i) {
    chain.joins.push_back(
        {Source::OfTable(dim_tables[i]), probe_cols[i], /*build_col=*/0});
  }
  plan.chains.push_back(std::move(chain));
  return plan;
}

Fig2Plan MakeFig2BushyPlan(uint32_t r_key_col, uint32_t s_fk_col,
                           uint32_t t_key_col, uint32_t u_fk_col,
                           uint32_t chain0_out_col, uint32_t u_fk2_col) {
  Fig2Plan out;
  // chain0: scan S, probe R (build on R's key) — produces R ⋈ S.
  Chain chain0;
  chain0.input = Source::OfTable(1);
  chain0.joins.push_back({Source::OfTable(0), s_fk_col, r_key_col});
  // chain1: scan U, probe T, probe (R ⋈ S).
  Chain chain1;
  chain1.input = Source::OfTable(3);
  chain1.joins.push_back({Source::OfTable(2), u_fk_col, t_key_col});
  chain1.joins.push_back({Source::OfChain(0), u_fk2_col, chain0_out_col});
  out.plan.chains.push_back(std::move(chain0));
  out.plan.chains.push_back(std::move(chain1));
  return out;
}

namespace {

// Hash multimap over one column of a materialized batch.
class RefTable {
 public:
  RefTable(const Batch& rows, uint32_t col) : rows_(rows) {
    map_.reserve(rows.rows());
    for (size_t i = 0; i < rows.rows(); ++i) {
      map_.emplace(rows.at(i, col), i);
    }
  }

  template <typename Fn>
  void ForEachMatch(int64_t key, Fn&& fn) const {
    auto [lo, hi] = map_.equal_range(key);
    for (auto it = lo; it != hi; ++it) fn(rows_.row(it->second));
  }

  uint32_t width() const { return rows_.width(); }

 private:
  const Batch& rows_;
  std::unordered_multimap<int64_t, size_t> map_;
};

Result<std::vector<Batch>> MaterializeAll(
    const PipelinePlan& plan, const std::vector<const Table*>& tables,
    const std::vector<CaptureSink>& captures = {}) {
  HIERDB_RETURN_NOT_OK(plan.Validate(tables));
  // Scan-level filters and column projections: materialize filtered (and
  // projected) copies of the tables that carry either, so every consumer
  // below sees only passing rows over the emitted columns. Predicates
  // evaluate on the full source row; projection applies to survivors.
  std::vector<Batch> filtered(tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    const std::vector<Predicate>* preds =
        plan.FiltersFor(static_cast<uint32_t>(t));
    const std::vector<uint32_t>* proj =
        plan.ProjectionFor(static_cast<uint32_t>(t));
    if (preds == nullptr && proj == nullptr) continue;
    Batch out(plan.EffectiveTableWidth(static_cast<uint32_t>(t),
                                       tables[t]->width()));
    for (size_t i = 0; i < tables[t]->rows(); ++i) {
      const int64_t* row = tables[t]->batch.row(i);
      if (preds != nullptr && !MatchesAll(*preds, row)) continue;
      if (proj != nullptr) {
        out.AppendRowProjected(row, *proj);
      } else {
        out.AppendRow(row);
      }
    }
    filtered[t] = std::move(out);
  }
  std::vector<Batch> outputs;
  outputs.reserve(plan.chains.size());
  auto batch_of = [&](const Source& s) -> const Batch& {
    if (s.kind == Source::Kind::kTable) {
      return plan.FiltersFor(s.index) != nullptr ||
                     plan.ProjectionFor(s.index) != nullptr
                 ? filtered[s.index]
                 : tables[s.index]->batch;
    }
    return outputs[s.index];
  };
  for (uint32_t c = 0; c < plan.chains.size(); ++c) {
    const Chain& chain = plan.chains[c];
    // Offer a batch to every capture sink bound to (chain c, `point`).
    auto offer = [&](uint32_t point, const Batch& b) {
      for (const CaptureSink& cs : captures) {
        if (cs.chain != c || cs.point != point || cs.sink == nullptr) {
          continue;
        }
        for (size_t i = 0; i < b.rows(); ++i) {
          cs.sink->Offer(b.row(i), b.width());
        }
      }
    };
    const Batch* current = &batch_of(chain.input);
    if (!chain.joins.empty()) offer(0, *current);  // scan output
    Batch scratch;
    uint32_t step = 0;
    for (const JoinStep& j : chain.joins) {
      const Batch& build = batch_of(j.build);
      RefTable table(build, j.build_col);
      Batch next(current->width() + build.width());
      for (size_t i = 0; i < current->rows(); ++i) {
        const int64_t* row = current->row(i);
        table.ForEachMatch(row[j.probe_col], [&](const int64_t* brow) {
          next.AppendConcat(row, current->width(), brow, build.width());
        });
      }
      scratch = std::move(next);
      current = &scratch;
      ++step;
      // Probe outputs short of the last are points 1..J-1; the last
      // probe's output is the chain output, offered as point J below.
      if (step < chain.joins.size()) offer(step, scratch);
    }
    if (chain.joins.empty()) {
      outputs.push_back(*current);  // pure scan chain: copy through
    } else {
      outputs.push_back(std::move(scratch));
    }
    offer(static_cast<uint32_t>(chain.joins.size()), outputs.back());
  }
  return outputs;
}

}  // namespace

Result<ResultDigest> ReferenceExecute(
    const PipelinePlan& plan, const std::vector<const Table*>& tables) {
  return ReferenceExecute(plan, tables, {});
}

Result<ResultDigest> ReferenceExecute(
    const PipelinePlan& plan, const std::vector<const Table*>& tables,
    const std::vector<CaptureSink>& captures) {
  auto outputs = MaterializeAll(plan, tables, captures);
  if (!outputs.ok()) return outputs.status();
  Batch final_out = std::move(outputs.value().back());
  if (plan.agg.has_value()) {
    final_out = ReferenceAggregate(final_out, *plan.agg);
  }
  ResultDigest digest;
  for (size_t i = 0; i < final_out.rows(); ++i) {
    digest.Add(final_out.row(i), final_out.width());
  }
  return digest;
}

Result<Batch> ReferenceMaterialize(const PipelinePlan& plan,
                                   const std::vector<const Table*>& tables) {
  auto outputs = MaterializeAll(plan, tables);
  if (!outputs.ok()) return outputs.status();
  if (plan.agg.has_value()) {
    return ReferenceAggregate(outputs.value().back(), *plan.agg);
  }
  return std::move(outputs.value().back());
}

}  // namespace hierdb::mt
