#include "plan/operator_tree.h"

#include <algorithm>
#include <functional>
#include <map>
#include <queue>
#include <sstream>

namespace hierdb::plan {

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kScan: return "Scan";
    case OpKind::kBuild: return "Build";
    case OpKind::kProbe: return "Probe";
    case OpKind::kAggPartial: return "AggPartial";
    case OpKind::kAggMerge: return "AggMerge";
  }
  return "?";
}

uint32_t PhysicalPlan::num_scans() const {
  uint32_t n = 0;
  for (const auto& o : ops) {
    if (o.IsScan()) ++n;
  }
  return n;
}

uint32_t PhysicalPlan::num_joins() const {
  uint32_t n = 0;
  for (const auto& o : ops) {
    if (o.IsProbe()) ++n;
  }
  return n;
}

std::vector<OpId> PhysicalPlan::BlockersOf(OpId id) const {
  std::vector<OpId> out;
  for (const auto& c : constraints) {
    if (c.after == id) out.push_back(c.before);
  }
  return out;
}

Status PhysicalPlan::Validate() const {
  std::vector<uint32_t> chain_hits(ops.size(), 0);
  for (const auto& ch : chains) {
    if (ch.ops.empty()) return Status::Internal("empty pipeline chain");
    if (!ops[ch.ops[0]].IsScan()) {
      return Status::Internal("chain must start with a scan");
    }
    for (OpId o : ch.ops) {
      if (o >= ops.size()) return Status::Internal("chain op out of range");
      ++chain_hits[o];
      if (ops[o].chain != ch.id) {
        return Status::Internal("op/chain index mismatch");
      }
    }
    // Interior ops must pipeline (probes or the partial-agg stage); the
    // terminal may be blocking (a build or the aggregation merge).
    for (size_t i = 1; i + 1 < ch.ops.size(); ++i) {
      if (!ops[ch.ops[i]].IsProbe() &&
          ops[ch.ops[i]].kind != OpKind::kAggPartial) {
        return Status::Internal("chain interior must pipeline");
      }
    }
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    if (chain_hits[i] != 1) {
      return Status::Internal("every op must be in exactly one chain");
    }
  }
  for (const auto& o : ops) {
    if (o.IsProbe()) {
      if (o.build_op == kNoOp || !ops[o.build_op].IsBuild()) {
        return Status::Internal("probe without matching build");
      }
      if (ops[o.build_op].probe_op != o.id) {
        return Status::Internal("build/probe back-link mismatch");
      }
    }
    if (o.IsBlocking() && o.output_card != 0.0) {
      return Status::Internal("blocking output must carry no tuples");
    }
    if (!o.IsScan() && o.input == kNoOp) {
      return Status::Internal("non-scan op must have a dataflow input");
    }
  }
  for (const auto& c : constraints) {
    if (c.before >= ops.size() || c.after >= ops.size() ||
        c.before == c.after) {
      return Status::Internal("bad scheduling constraint");
    }
  }
  if (chain_order.size() != chains.size()) {
    return Status::Internal("chain order must cover all chains");
  }
  return Status::OK();
}

std::string PhysicalPlan::ToString() const {
  std::ostringstream os;
  os << "PhysicalPlan{" << ops.size() << " ops, " << chains.size()
     << " chains}\n";
  for (const auto& ch : chains) {
    os << "  chain " << ch.id << ":";
    for (OpId o : ch.ops) os << " " << ops[o].label;
    os << "\n";
  }
  os << "  order:";
  for (uint32_t c : chain_order) os << " " << c;
  os << "\n  constraints:\n";
  for (const auto& c : constraints) {
    const char* origin = c.origin == SchedConstraint::Origin::kHash ? "hash"
                         : c.origin == SchedConstraint::Origin::kHeuristic1
                             ? "H1"
                             : "H2";
    os << "    " << ops[c.before].label << " < " << ops[c.after].label << "  ["
       << origin << "]\n";
  }
  return os.str();
}

namespace {

struct ExpandResult {
  OpId out_op;      // operator producing the subtree's pipelined output
  double out_card;  // its output cardinality
};

class Expander {
 public:
  Expander(const JoinTree& tree, const catalog::Catalog& cat,
           const ExpandOptions& options)
      : tree_(tree), cat_(cat), options_(options) {}

  PhysicalPlan Run() {
    HIERDB_CHECK(tree_.root >= 0, "empty join tree");
    ExpandResult root = Expand(tree_.root);
    if (options_.aggregate) AppendAggregation(root);
    BuildChains();
    OrderChains();
    AddConstraints();
    return std::move(plan_);
  }

 private:
  OpId NewOp(OpKind kind, std::string label) {
    Operator o;
    o.id = static_cast<OpId>(plan_.ops.size());
    o.kind = kind;
    o.label = std::move(label);
    plan_.ops.push_back(std::move(o));
    return plan_.ops.back().id;
  }

  /// Two-phase aggregation over the root's output: a pipelined partial
  /// stage (consumes every result tuple, emits the estimated partial
  /// groups) and a blocking merge terminal.
  void AppendAggregation(const ExpandResult& root) {
    double groups = std::max(1.0, options_.agg_groups_est);
    groups = std::min(groups, std::max(1.0, root.out_card));
    OpId ap = NewOp(OpKind::kAggPartial, "AggPartial");
    OpId am = NewOp(OpKind::kAggMerge, "AggMerge");
    plan_.ops[ap].input = root.out_op;
    plan_.ops[ap].input_card = root.out_card;
    plan_.ops[ap].output_card = groups;
    plan_.ops[ap].rels = plan_.ops[root.out_op].rels;
    plan_.ops[ap].consumer = am;
    plan_.ops[root.out_op].consumer = ap;
    plan_.ops[am].input = ap;
    plan_.ops[am].input_card = groups;
    plan_.ops[am].output_card = 0.0;  // blocking terminal
    plan_.ops[am].rels = plan_.ops[ap].rels;
  }

  ExpandResult Expand(int32_t tn) {
    const JoinTreeNode& node = tree_.nodes[tn];
    if (node.IsLeaf()) {
      OpId s = NewOp(OpKind::kScan, "Scan(" + cat_.relation(node.rel).name +
                                        ")");
      plan_.ops[s].rel = node.rel;
      plan_.ops[s].rels = RelBit(node.rel);
      double sel = node.rel < options_.scan_filter_sel.size()
                       ? options_.scan_filter_sel[node.rel]
                       : 1.0;
      plan_.ops[s].filter_sel = sel;
      plan_.ops[s].output_card =
          static_cast<double>(cat_.relation(node.rel).cardinality) * sel;
      return {s, plan_.ops[s].output_card};
    }

    ExpandResult l = Expand(node.left);
    ExpandResult r = Expand(node.right);
    // Build-side choice: the smaller input (classic heuristic) or the
    // tree's right child (shape-preserving; see ExpandOptions).
    bool right_builds =
        options_.build_on_right_child || l.out_card > r.out_card;
    ExpandResult build_side = right_builds ? r : l;
    ExpandResult probe_side = right_builds ? l : r;

    uint32_t jid = ++join_counter_;
    OpId b = NewOp(OpKind::kBuild, "Build" + std::to_string(jid));
    OpId p = NewOp(OpKind::kProbe, "Probe" + std::to_string(jid));

    plan_.ops[b].input = build_side.out_op;
    plan_.ops[b].input_card = build_side.out_card;
    plan_.ops[b].output_card = 0.0;
    plan_.ops[b].probe_op = p;
    plan_.ops[b].rels = plan_.ops[build_side.out_op].rels;
    plan_.ops[build_side.out_op].consumer = b;

    plan_.ops[p].input = probe_side.out_op;
    plan_.ops[p].input_card = probe_side.out_card;
    plan_.ops[p].output_card = node.card;
    plan_.ops[p].build_op = b;
    plan_.ops[p].rels =
        plan_.ops[probe_side.out_op].rels | plan_.ops[b].rels;
    plan_.ops[probe_side.out_op].consumer = p;

    return {p, node.card};
  }

  void BuildChains() {
    for (const auto& o : plan_.ops) {
      if (!o.IsScan()) continue;
      PipelineChain ch;
      ch.id = static_cast<uint32_t>(plan_.chains.size());
      OpId cur = o.id;
      while (true) {
        ch.ops.push_back(cur);
        plan_.ops[cur].chain = ch.id;
        if (plan_.ops[cur].IsBlocking()) break;  // blocking output ends chain
        OpId next = plan_.ops[cur].consumer;
        if (next == kNoOp) break;  // root probe
        if (plan_.ops[next].IsProbe() &&
            plan_.ops[next].input != cur) {
          // `cur` feeds the probe's hash table side only through its build;
          // cannot happen because builds end chains, but guard anyway.
          break;
        }
        cur = next;
      }
      plan_.chains.push_back(std::move(ch));
    }
  }

  // Chain dependency: a chain ending in Build_i must run before the chain
  // containing Probe_i (its hash table consumer), and before any chain
  // whose probes need it (H1 handles per-probe builds). Kahn's algorithm
  // with smallest-id tie-break gives a deterministic one-at-a-time order.
  void OrderChains() {
    size_t n = plan_.chains.size();
    std::vector<std::vector<uint32_t>> succ(n);
    std::vector<uint32_t> indeg(n, 0);
    for (const auto& ch : plan_.chains) {
      OpId last = ch.ops.back();
      if (plan_.ops[last].IsBuild()) {
        uint32_t consumer_chain = plan_.ops[plan_.ops[last].probe_op].chain;
        succ[ch.id].push_back(consumer_chain);
        ++indeg[consumer_chain];
      }
    }
    std::priority_queue<uint32_t, std::vector<uint32_t>,
                        std::greater<uint32_t>>
        ready;
    for (uint32_t i = 0; i < n; ++i) {
      if (indeg[i] == 0) ready.push(i);
    }
    while (!ready.empty()) {
      uint32_t c = ready.top();
      ready.pop();
      plan_.chain_order.push_back(c);
      for (uint32_t s : succ[c]) {
        if (--indeg[s] == 0) ready.push(s);
      }
    }
    HIERDB_CHECK(plan_.chain_order.size() == n, "cyclic chain dependencies");
  }

  void AddConstraints() {
    // Hash constraints: Build_i < Probe_i.
    for (const auto& o : plan_.ops) {
      if (o.IsBuild()) {
        plan_.constraints.push_back(
            {o.id, o.probe_op, SchedConstraint::Origin::kHash});
      }
    }
    // H1: all builds probed by a chain precede the chain's driving scan.
    if (options_.apply_h1) {
      for (const auto& ch : plan_.chains) {
        OpId driving_scan = ch.ops[0];
        for (OpId o : ch.ops) {
          if (plan_.ops[o].IsProbe()) {
            plan_.constraints.push_back(
                {plan_.ops[o].build_op, driving_scan,
                 SchedConstraint::Origin::kHeuristic1});
          }
        }
      }
    }
    // H2: one chain at a time, in chain_order.
    if (options_.serialize_chains) {
      for (size_t i = 1; i < plan_.chain_order.size(); ++i) {
        OpId prev_last = plan_.chains[plan_.chain_order[i - 1]].ops.back();
        OpId next_scan = plan_.chains[plan_.chain_order[i]].ops[0];
        plan_.constraints.push_back(
            {prev_last, next_scan, SchedConstraint::Origin::kHeuristic2});
      }
    }
  }

  const JoinTree& tree_;
  const catalog::Catalog& cat_;
  ExpandOptions options_;
  PhysicalPlan plan_;
  uint32_t join_counter_ = 0;
};

}  // namespace

PhysicalPlan MacroExpand(const JoinTree& tree, const catalog::Catalog& cat,
                         const ExpandOptions& options) {
  return Expander(tree, cat, options).Run();
}

}  // namespace hierdb::plan
