// Operator trees and parallel execution plans.
//
// The operator tree is the "macro-expansion" of the join tree [Hassan94]:
// each hash join becomes a build and a probe operator, each base relation a
// scan. Edges are blocking (build output = hash table) or pipelinable.
// A parallel execution plan = operator tree + operator scheduling (a
// partial order over operators) + operator homes. Scheduling encodes the
// hash constraints (build_i < probe_i) plus the paper's two heuristics:
//   H1: a pipeline chain starts only when every hash table it probes is
//       ready (build_i < driving scan of probe_i's chain);
//   H2: pipeline chains execute one-at-a-time (previous chain's terminal
//       operator < next chain's driving scan).

#ifndef HIERDB_PLAN_OPERATOR_TREE_H_
#define HIERDB_PLAN_OPERATOR_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/join_graph.h"

namespace hierdb::plan {

using OpId = uint32_t;
constexpr OpId kNoOp = UINT32_MAX;

/// Operator kinds. kAggPartial/kAggMerge are the two-phase aggregation
/// appended after the root join: the partial pipelines (any thread folds
/// result tuples into local partial groups), the merge is blocking like a
/// build (it consumes the repartitioned partials and emits nothing
/// downstream — its completed groups are the query result).
enum class OpKind { kScan, kBuild, kProbe, kAggPartial, kAggMerge };

const char* OpKindName(OpKind k);

/// One atomic operator of the operator tree.
struct Operator {
  OpId id = 0;
  OpKind kind = OpKind::kScan;
  std::string label;

  RelId rel = 0;             ///< scanned relation (scan only)
  OpId input = kNoOp;        ///< dataflow producer (none for scan)
  OpId build_op = kNoOp;     ///< probe only: the build that made its table
  OpId probe_op = kNoOp;     ///< build only: the probe using its table
  OpId consumer = kNoOp;     ///< dataflow consumer (kNoOp at tree root)

  double input_card = 0.0;   ///< tuples flowing in (0 for scan triggers)
  double output_card = 0.0;  ///< tuples flowing out (0 for build)
  RelSet rels = 0;           ///< base relations under this operator's output

  uint32_t chain = 0;        ///< pipeline chain index

  /// Scan only: fraction of scanned tuples passing the scan-level filter
  /// predicates (1.0 = no filter). The scan reads its full input and
  /// emits input * filter_sel.
  double filter_sel = 1.0;

  bool IsScan() const { return kind == OpKind::kScan; }
  bool IsBuild() const { return kind == OpKind::kBuild; }
  bool IsProbe() const { return kind == OpKind::kProbe; }
  bool IsAgg() const {
    return kind == OpKind::kAggPartial || kind == OpKind::kAggMerge;
  }
  /// Blocking terminal: emits no pipelined output.
  bool IsBlocking() const {
    return kind == OpKind::kBuild || kind == OpKind::kAggMerge;
  }
};

/// A maximal pipeline chain: a driving scan followed by pipelined probes,
/// optionally terminated by a build (when the chain's result is a hash
/// table for a later join).
struct PipelineChain {
  uint32_t id = 0;
  std::vector<OpId> ops;  ///< in dataflow order, ops[0] is the driving scan
};

/// A scheduling constraint: `after` may not start before `before` ends.
struct SchedConstraint {
  OpId before = 0;
  OpId after = 0;
  enum class Origin { kHash, kHeuristic1, kHeuristic2 } origin;
};

/// Parallel execution plan: the input to the execution model (Section 2.2).
/// Operator homes follow the paper's evaluation assumptions: every relation
/// is fully partitioned across all SM-nodes and every operator is executed
/// on all SM-nodes, so homes are implicit (all nodes).
struct PhysicalPlan {
  std::vector<Operator> ops;
  std::vector<PipelineChain> chains;
  std::vector<uint32_t> chain_order;  ///< execution order (H2)
  std::vector<SchedConstraint> constraints;

  const Operator& op(OpId id) const { return ops[id]; }

  uint32_t num_scans() const;
  uint32_t num_joins() const;

  /// All operators that must end before `id` may start.
  std::vector<OpId> BlockersOf(OpId id) const;

  /// Validates structural invariants (dataflow acyclicity, constraint
  /// sanity, chain coverage).
  Status Validate() const;

  std::string ToString() const;
};

struct ExpandOptions {
  /// Heuristic H1: a chain starts only when its hash tables are ready.
  bool apply_h1 = true;
  /// Build-side choice: false (default) picks the smaller input (classic
  /// hash-join heuristic); true builds on the join tree's RIGHT child so
  /// shaped trees (opt/tree_shapes.h) keep their pipeline structure —
  /// right-deep trees become one maximal chain, left-deep trees fully
  /// blocking ladders.
  bool build_on_right_child = false;
  /// Heuristic H2: pipeline chains execute one at a time. Disabling it
  /// yields the paper's Section 3.2 extension — concurrent chains expose
  /// more simultaneously-executable operators, improving load-balancing
  /// opportunities at the price of memory consumption.
  bool serialize_chains = true;

  /// Scan-level filter selectivity per relation id (empty or short =
  /// unfiltered). Applied to the scan's output cardinality; the scan
  /// still reads its full input.
  std::vector<double> scan_filter_sel;

  /// Appends a two-phase aggregation (AggPartial -> AggMerge) after the
  /// root join, with `agg_groups_est` estimated result groups pricing the
  /// partial phase's output and the merge phase's input.
  bool aggregate = false;
  double agg_groups_est = 1.0;
};

/// Expands a join tree into a parallel execution plan. The build side of
/// each join is the smaller input (classic hash-join choice); scheduling
/// applies hash constraints plus heuristics H1 and (optionally) H2.
PhysicalPlan MacroExpand(const JoinTree& tree, const catalog::Catalog& cat,
                         const ExpandOptions& options = {});

}  // namespace hierdb::plan

#endif  // HIERDB_PLAN_OPERATOR_TREE_H_
