// Predicate connection graphs and join trees.
//
// The query generator (Section 5.1.2) produces acyclic connected predicate
// graphs; since such a graph over k relations is connected and acyclic it
// is a tree with k-1 edges, and for any join of two disjoint connected
// relation sets exactly one predicate edge crosses the cut.

#ifndef HIERDB_PLAN_JOIN_GRAPH_H_
#define HIERDB_PLAN_JOIN_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"

namespace hierdb::plan {

using catalog::RelId;

/// A join predicate between two relations with its selectivity factor.
struct JoinEdge {
  RelId a = 0;
  RelId b = 0;
  double selectivity = 0.0;
};

/// Relation-set bitmask (queries have at most 64 relations).
using RelSet = uint64_t;

inline RelSet RelBit(RelId r) { return RelSet{1} << r; }

/// Acyclic connected predicate graph over the relations of a catalog.
class JoinGraph {
 public:
  JoinGraph(uint32_t num_relations, std::vector<JoinEdge> edges);

  uint32_t num_relations() const { return num_relations_; }
  const std::vector<JoinEdge>& edges() const { return edges_; }

  /// Returns true if the relations in `s` induce a connected subgraph.
  bool Connected(RelSet s) const;

  /// Product of selectivities of all edges with one endpoint in `left` and
  /// the other in `right` (1.0 if none — cross product).
  double CrossSelectivity(RelSet left, RelSet right) const;

  /// True if at least one predicate edge crosses the cut.
  bool HasCrossEdge(RelSet left, RelSet right) const;

  /// Validates acyclicity + connectivity of the whole graph.
  Status Validate() const;

 private:
  uint32_t num_relations_;
  std::vector<JoinEdge> edges_;
};

/// Node of a binary join tree. Leaves carry a relation; inner nodes carry
/// the estimated output cardinality of the join.
struct JoinTreeNode {
  int32_t left = -1;    ///< child index, -1 for leaf
  int32_t right = -1;   ///< child index, -1 for leaf
  RelId rel = 0;        ///< leaf only
  RelSet rels = 0;      ///< relations covered by this subtree
  double card = 0.0;    ///< output cardinality (estimated = true here)

  bool IsLeaf() const { return left < 0; }
};

/// A (bushy) join tree plus its optimizer cost.
struct JoinTree {
  std::vector<JoinTreeNode> nodes;
  int32_t root = -1;
  double cost = 0.0;

  /// Appends a leaf node for `rel` and returns its index — for callers
  /// assembling explicit trees (Session queries with a Tree() override).
  int32_t AddLeaf(RelId rel, double card = 0.0);
  /// Appends an inner node joining two existing nodes; returns its index.
  /// The last node added is the root unless `root` is set explicitly.
  int32_t AddJoin(int32_t left, int32_t right, double card = 0.0);

  uint32_t num_joins() const;
  /// Maximum number of leaves on any root-to-leaf path (tree "bushiness").
  uint32_t depth() const;
  std::string ToString(const catalog::Catalog& cat) const;
};

}  // namespace hierdb::plan

#endif  // HIERDB_PLAN_JOIN_GRAPH_H_
