#include "plan/join_graph.h"

#include <bit>
#include <functional>
#include <sstream>

namespace hierdb::plan {

JoinGraph::JoinGraph(uint32_t num_relations, std::vector<JoinEdge> edges)
    : num_relations_(num_relations), edges_(std::move(edges)) {
  HIERDB_CHECK(num_relations_ <= 64, "at most 64 relations supported");
}

bool JoinGraph::Connected(RelSet s) const {
  if (s == 0) return false;
  // Breadth-first expansion over edges restricted to `s`.
  RelSet frontier = s & (~s + 1);  // lowest set bit
  RelSet visited = frontier;
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& e : edges_) {
      RelSet ba = RelBit(e.a), bb = RelBit(e.b);
      if ((ba | bb) & ~s) continue;
      if ((visited & ba) && !(visited & bb)) {
        visited |= bb;
        grew = true;
      } else if ((visited & bb) && !(visited & ba)) {
        visited |= ba;
        grew = true;
      }
    }
  }
  return visited == s;
}

double JoinGraph::CrossSelectivity(RelSet left, RelSet right) const {
  double sel = 1.0;
  for (const auto& e : edges_) {
    RelSet ba = RelBit(e.a), bb = RelBit(e.b);
    if (((ba & left) && (bb & right)) || ((bb & left) && (ba & right))) {
      sel *= e.selectivity;
    }
  }
  return sel;
}

bool JoinGraph::HasCrossEdge(RelSet left, RelSet right) const {
  for (const auto& e : edges_) {
    RelSet ba = RelBit(e.a), bb = RelBit(e.b);
    if (((ba & left) && (bb & right)) || ((bb & left) && (ba & right))) {
      return true;
    }
  }
  return false;
}

Status JoinGraph::Validate() const {
  if (num_relations_ == 0) {
    return Status::InvalidArgument("empty join graph");
  }
  if (edges_.size() != num_relations_ - 1) {
    return Status::InvalidArgument(
        "acyclic connected graph must have n-1 edges");
  }
  for (const auto& e : edges_) {
    if (e.a >= num_relations_ || e.b >= num_relations_ || e.a == e.b) {
      return Status::InvalidArgument("bad edge endpoints");
    }
    if (e.selectivity <= 0.0) {
      return Status::InvalidArgument("non-positive selectivity");
    }
  }
  RelSet all = (num_relations_ == 64)
                   ? ~RelSet{0}
                   : ((RelSet{1} << num_relations_) - 1);
  if (!Connected(all)) {
    return Status::InvalidArgument("graph is not connected");
  }
  return Status::OK();
}

int32_t JoinTree::AddLeaf(RelId rel, double card) {
  JoinTreeNode n;
  n.rel = rel;
  n.rels = RelBit(rel);
  n.card = card;
  nodes.push_back(n);
  root = static_cast<int32_t>(nodes.size() - 1);
  return root;
}

int32_t JoinTree::AddJoin(int32_t left, int32_t right, double card) {
  JoinTreeNode n;
  n.left = left;
  n.right = right;
  n.card = card;
  if (left >= 0 && static_cast<size_t>(left) < nodes.size() &&
      right >= 0 && static_cast<size_t>(right) < nodes.size()) {
    n.rels = nodes[left].rels | nodes[right].rels;
  }
  nodes.push_back(n);
  root = static_cast<int32_t>(nodes.size() - 1);
  return root;
}

uint32_t JoinTree::num_joins() const {
  uint32_t n = 0;
  for (const auto& node : nodes) {
    if (!node.IsLeaf()) ++n;
  }
  return n;
}

uint32_t JoinTree::depth() const {
  if (root < 0) return 0;
  std::function<uint32_t(int32_t)> rec = [&](int32_t i) -> uint32_t {
    const auto& n = nodes[i];
    if (n.IsLeaf()) return 1;
    return 1 + std::max(rec(n.left), rec(n.right));
  };
  return rec(root);
}

std::string JoinTree::ToString(const catalog::Catalog& cat) const {
  std::ostringstream os;
  std::function<void(int32_t)> rec = [&](int32_t i) {
    const auto& n = nodes[i];
    if (n.IsLeaf()) {
      os << cat.relation(n.rel).name;
    } else {
      os << "(";
      rec(n.left);
      os << " JOIN ";
      rec(n.right);
      os << ")";
    }
  };
  if (root >= 0) rec(root);
  return os.str();
}

}  // namespace hierdb::plan
