#include "api/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "api/scheduler.h"
#include "common/rng.h"
#include "common/stats.h"
#include "mt/plan.h"
#include "mt/prune.h"
#include "mt/query_bind.h"
#include "obs/export.h"

namespace hierdb::api {

namespace {

double WallSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Default FK selectivity: each join result about the larger input.
double DefaultSelectivity(uint64_t ca, uint64_t cb) {
  double a = static_cast<double>(ca), b = static_cast<double>(cb);
  if (a <= 0 || b <= 0) return 1.0;
  return std::max(a, b) / (a * b);
}

uint64_t MixU64(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h == 0 ? 1 : h;
}

uint64_t DoubleBits(double d) {
  uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// ---------------------------------------------------------------------
// Cardinality estimation and trace-plan builders (shared by the report's
// chain_cards, the traced QueryTrace plan graphs, and ExplainDot).

/// FK-default join selectivity over already-estimated (double) inputs.
double JoinSelD(double a, double b) {
  if (a <= 0 || b <= 0) return 1.0;
  return std::max(a, b) / (a * b);
}

/// Per-relation filter pass fraction from the plan-time estimates
/// (Planned::filter_pass — stats-driven where column statistics exist,
/// System R defaults otherwise); relations outside the vector (or with
/// predicates already pushed into their bind) pass everything.
double PassOf(const std::vector<double>& filter_pass, uint32_t idx) {
  return idx < filter_pass.size() ? filter_pass[idx] : 1.0;
}

/// Estimated rows entering the pipeline from `s`: filtered table size for
/// base relations, the producing chain's estimate for chain sources.
double SourceEst(const std::vector<double>& filter_pass,
                 const std::vector<const mt::Table*>& tables,
                 const std::vector<double>& chain_est, const mt::Source& s) {
  if (s.kind == mt::Source::Kind::kTable) {
    return static_cast<double>(tables[s.index]->rows()) *
           PassOf(filter_pass, s.index);
  }
  return s.index < chain_est.size() ? chain_est[s.index] : 0.0;
}

/// Cardinality-estimate walk over the bound pipeline plan: the estimated
/// output cardinality of every chain, in chain order.
std::vector<double> EstimateChainRows(
    const mt::PipelinePlan& plan, const std::vector<double>& filter_pass,
    const std::vector<const mt::Table*>& tables) {
  std::vector<double> est;
  for (const mt::Chain& chain : plan.chains) {
    double e = SourceEst(filter_pass, tables, est, chain.input);
    for (const mt::JoinStep& j : chain.joins) {
      double b = SourceEst(filter_pass, tables, est, j.build);
      e = e * b * JoinSelD(e, b);
    }
    est.push_back(e);
  }
  return est;
}

std::vector<obs::ChainCard> MakeChainCards(
    const std::vector<double>& est, const std::vector<uint64_t>* actual) {
  std::vector<obs::ChainCard> cards;
  for (uint32_t c = 0; c < est.size(); ++c) {
    obs::ChainCard card;
    card.chain = c;
    card.est_rows = est[c];
    if (actual != nullptr && c < actual->size()) {
      card.actual_rows = (*actual)[c];
      card.has_actual = true;
    }
    cards.push_back(card);
  }
  return cards;
}

std::string SourceName(const catalog::Catalog& cat, const mt::Source& s) {
  if (s.kind == mt::Source::Kind::kTable) return cat.relation(s.index).name;
  return "chain" + std::to_string(s.index);
}

/// Trace-plan graph matching mt::PipelineExecutor's compiled layout (per
/// chain of k joins: builds at base..base+k-1, scan at base+k, probes at
/// base+k+1..base+2k). When `actual` is non-empty each chain's terminal
/// op is annotated with its measured output rows.
std::vector<obs::TraceOp> ThreadsTraceOps(
    const mt::PipelinePlan& plan, const std::vector<double>& filter_pass,
    const std::vector<const mt::Table*>& tables, const catalog::Catalog& cat,
    const std::vector<double>& chain_est,
    const std::vector<uint64_t>& actual) {
  std::vector<obs::TraceOp> ops;
  std::vector<uint32_t> terminal;  ///< per chain: its last dataflow op
  uint32_t base = 0;
  for (uint32_t c = 0; c < plan.chains.size(); ++c) {
    const mt::Chain& chain = plan.chains[c];
    const uint32_t k = static_cast<uint32_t>(chain.joins.size());
    for (uint32_t j = 0; j < k; ++j) {
      const mt::Source& src = chain.joins[j].build;
      obs::TraceOp op;
      op.id = base + j;
      op.kind = "build";
      op.label = "build " + SourceName(cat, src);
      op.chain = static_cast<int32_t>(c);
      op.est_rows = SourceEst(filter_pass, tables, chain_est, src);
      if (src.kind == mt::Source::Kind::kChain) {
        op.inputs.push_back(terminal[src.index]);
      }
      ops.push_back(std::move(op));
    }
    obs::TraceOp scan;
    scan.id = base + k;
    scan.kind = "scan";
    scan.label = "scan " + SourceName(cat, chain.input);
    scan.chain = static_cast<int32_t>(c);
    scan.est_rows = SourceEst(filter_pass, tables, chain_est, chain.input);
    if (chain.input.kind == mt::Source::Kind::kChain) {
      scan.inputs.push_back(terminal[chain.input.index]);
    }
    double e = scan.est_rows;
    ops.push_back(std::move(scan));
    uint32_t prev = base + k;
    for (uint32_t j = 0; j < k; ++j) {
      obs::TraceOp op;
      op.id = base + k + 1 + j;
      op.kind = "probe";
      op.label = "probe " + SourceName(cat, chain.joins[j].build);
      op.chain = static_cast<int32_t>(c);
      double b = SourceEst(filter_pass, tables, chain_est, chain.joins[j].build);
      e = e * b * JoinSelD(e, b);
      op.est_rows = e;
      op.inputs = {prev, base + j};
      prev = op.id;
      ops.push_back(std::move(op));
    }
    terminal.push_back(prev);
    if (c < actual.size()) ops[prev].actual_rows = actual[c];
    base += 1 + 2 * k;
  }
  return ops;
}

/// Trace-plan graph matching cluster::ClusterExecutor's compiled layout
/// (per chain of k joins: buildscan triggers at base..base+k-1, builds at
/// base+k..base+2k-1, scan trigger at base+2k, probes at base+2k+1..
/// base+3k). Aggregated plans append the distributed-aggregation sentinel
/// op (id = compiled op count) the executor's agg-phase spans reference.
std::vector<obs::TraceOp> ClusterTraceOps(
    const mt::PipelinePlan& plan, const std::vector<double>& filter_pass,
    const std::vector<const mt::Table*>& tables, const catalog::Catalog& cat,
    const std::vector<double>& chain_est,
    const std::vector<uint64_t>& actual) {
  std::vector<obs::TraceOp> ops;
  std::vector<uint32_t> terminal;
  uint32_t base = 0;
  for (uint32_t c = 0; c < plan.chains.size(); ++c) {
    const mt::Chain& chain = plan.chains[c];
    const uint32_t k = static_cast<uint32_t>(chain.joins.size());
    for (uint32_t j = 0; j < k; ++j) {
      const mt::Source& src = chain.joins[j].build;
      obs::TraceOp op;
      op.id = base + j;
      op.kind = "buildscan";
      op.label = "buildscan " + SourceName(cat, src);
      op.chain = static_cast<int32_t>(c);
      op.est_rows = SourceEst(filter_pass, tables, chain_est, src);
      if (src.kind == mt::Source::Kind::kChain) {
        op.inputs.push_back(terminal[src.index]);
      }
      ops.push_back(std::move(op));
    }
    for (uint32_t j = 0; j < k; ++j) {
      obs::TraceOp op;
      op.id = base + k + j;
      op.kind = "build";
      op.label = "build " + SourceName(cat, chain.joins[j].build);
      op.chain = static_cast<int32_t>(c);
      op.est_rows = SourceEst(filter_pass, tables, chain_est, chain.joins[j].build);
      op.inputs.push_back(base + j);
      ops.push_back(std::move(op));
    }
    obs::TraceOp scan;
    scan.id = base + 2 * k;
    scan.kind = "scan";
    scan.label = "scan " + SourceName(cat, chain.input);
    scan.chain = static_cast<int32_t>(c);
    scan.est_rows = SourceEst(filter_pass, tables, chain_est, chain.input);
    if (chain.input.kind == mt::Source::Kind::kChain) {
      scan.inputs.push_back(terminal[chain.input.index]);
    }
    double e = scan.est_rows;
    ops.push_back(std::move(scan));
    uint32_t prev = base + 2 * k;
    for (uint32_t j = 0; j < k; ++j) {
      obs::TraceOp op;
      op.id = base + 2 * k + 1 + j;
      op.kind = "probe";
      op.label = "probe " + SourceName(cat, chain.joins[j].build);
      op.chain = static_cast<int32_t>(c);
      double b = SourceEst(filter_pass, tables, chain_est, chain.joins[j].build);
      e = e * b * JoinSelD(e, b);
      op.est_rows = e;
      op.inputs = {prev, base + k + j};
      prev = op.id;
      ops.push_back(std::move(op));
    }
    terminal.push_back(prev);
    if (c < actual.size()) ops[prev].actual_rows = actual[c];
    base += 3 * k + 1;
  }
  if (plan.agg.has_value()) {
    obs::TraceOp op;
    op.id = base;  // the executor's agg-phase sentinel (== compiled ops)
    op.kind = "agg";
    op.label = "aggregate";
    op.est_rows = plan.agg->group_cols.empty()
                      ? 1.0
                      : std::max(1.0, std::sqrt(chain_est.empty()
                                                    ? 0.0
                                                    : chain_est.back()));
    if (!terminal.empty()) op.inputs.push_back(terminal.back());
    ops.push_back(std::move(op));
  }
  return ops;
}

/// Trace-plan graph of the simulator's physical plan (operators map 1:1).
std::vector<obs::TraceOp> SimTraceOps(const plan::PhysicalPlan& pplan) {
  std::vector<obs::TraceOp> ops;
  for (const plan::Operator& op : pplan.ops) {
    obs::TraceOp o;
    o.id = op.id;
    o.label = op.label;
    switch (op.kind) {
      case plan::OpKind::kScan: o.kind = "scan"; break;
      case plan::OpKind::kBuild: o.kind = "build"; break;
      case plan::OpKind::kProbe: o.kind = "probe"; break;
      case plan::OpKind::kAggPartial:
      case plan::OpKind::kAggMerge: o.kind = "agg"; break;
    }
    o.chain = static_cast<int32_t>(op.chain);
    o.est_rows =
        op.kind == plan::OpKind::kBuild ? op.input_card : op.output_card;
    if (op.input != plan::kNoOp) o.inputs.push_back(op.input);
    if (op.build_op != plan::kNoOp) o.inputs.push_back(op.build_op);
    ops.push_back(std::move(o));
  }
  return ops;
}

/// Chaos/robustness trace instants for one attempt: which attempt this
/// was (kRetry), whether it ran degraded (kFallback), and how many
/// injected faults fired during it (kFault).
void RecordFaultInstants(obs::TraceSink& sink, fault::FaultInjector* inj,
                         uint32_t attempt, bool fallback,
                         uint64_t faults_before) {
  if (attempt > 0) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kRetry;
    ev.start_ns = ev.end_ns = sink.NowNs();
    ev.detail = attempt;
    sink.RecordShared(ev);
  }
  if (fallback) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kFallback;
    ev.start_ns = ev.end_ns = sink.NowNs();
    ev.detail = 1;
    sink.RecordShared(ev);
  }
  const uint64_t fired =
      inj != nullptr ? inj->counters().total() - faults_before : 0;
  if (fired > 0) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kFault;
    ev.start_ns = ev.end_ns = sink.NowNs();
    ev.detail = fired;
    sink.RecordShared(ev);
  }
}

}  // namespace

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kSimulated: return "simulated";
    case Backend::kThreads: return "threads";
    case Backend::kCluster: return "cluster";
  }
  return "?";
}

std::string ExecutionReport::ToString() const {
  std::ostringstream os;
  os << "ExecutionReport{" << BackendName(backend) << "/"
     << StrategyName(strategy) << " rt=" << response_ms << "ms";
  if (backend == Backend::kSimulated) {
    os << " idle=" << idle_fraction * 100.0 << "%";
  } else {
    os << " idle_waits=" << idle_waits;
  }
  os << " acts=" << activations;
  if (tuples > 0) os << " tuples=" << tuples;
  if (has_result) os << " rows=" << result_rows;
  os << " pipe_bytes=" << pipeline_bytes << " lb_bytes=" << lb_bytes
     << " steals=" << steals;
  // Multi-chain cluster plans always show their distributed-intermediate
  // totals (even when zero) so reports stay self-describing.
  if (intermediate_rows > 0 ||
      (cluster.has_value() && cluster->per_chain.size() > 1)) {
    os << " inter_rows=" << intermediate_rows
       << " inter_bytes=" << intermediate_bytes;
  }
  if (materialized) {
    os << " mat_rows=" << materialized_rows
       << " mat_bytes=" << materialized_bytes;
  }
  if (build_cache_hits > 0 || build_cache_misses > 0) {
    os << " build_cache=" << build_cache_hits << "/"
       << (build_cache_hits + build_cache_misses);
  }
  if (rows_filtered > 0) os << " filtered=" << rows_filtered;
  if (rows_prefiltered > 0) os << " prefiltered=" << rows_prefiltered;
  if (aggregated) {
    os << " groups=" << agg_groups << " agg_partials=" << agg_partials;
    if (agg_repartition_bytes > 0) {
      os << " agg_repart_bytes=" << agg_repartition_bytes;
    }
  }
  if (imbalance > 0) os << " imbalance=" << imbalance;
  if (validated) os << (reference_match ? " ref=match" : " ref=MISMATCH");
  if (attempt > 0) os << " attempt=" << attempt;
  if (fallback_used) os << " fallback=degraded";
  if (faults_injected > 0) os << " faults=" << faults_injected;
  os << "}";
  return os.str();
}

std::string StreamReport::ToString() const {
  std::ostringstream os;
  os << "StreamReport{" << submitted << " submitted, " << succeeded
     << " ok, " << failed << " failed; makespan=" << makespan_ms
     << "ms serial=" << serial_ms << "ms qps=" << qps
     << " mean=" << mean_ms << "ms p50=" << p50_ms << "ms p95=" << p95_ms
     << "ms p99=" << p99_ms << "ms";
  if (mean_card_error > 0) os << " card_err=" << mean_card_error;
  if (build_cache_hits > 0 || build_cache_misses > 0) {
    os << " build_cache=" << build_cache_hits << "/"
       << (build_cache_hits + build_cache_misses);
  }
  if (rows_filtered > 0) os << " filtered=" << rows_filtered;
  if (agg_groups > 0 || agg_partials > 0) {
    os << " groups=" << agg_groups << " agg_partials=" << agg_partials;
  }
  if (retried > 0 || fallbacks > 0 || unavailable > 0 ||
      faults_injected > 0) {
    os << " retried=" << retried << " fallbacks=" << fallbacks
       << " unavailable=" << unavailable << " faults=" << faults_injected;
  }
  os << "}";
  return os.str();
}

std::string SessionMetrics::ToJson() const {
  std::ostringstream os;
  os << "{\"queries\":" << queries << ",\"exec_ms\":{\"mean\":" << exec_mean_ms
     << ",\"p50\":" << exec_p50_ms << ",\"p95\":" << exec_p95_ms
     << ",\"p99\":" << exec_p99_ms << "},\"queue_ms\":{\"mean\":"
     << queue_mean_ms << ",\"p50\":" << queue_p50_ms
     << ",\"p95\":" << queue_p95_ms << ",\"p99\":" << queue_p99_ms
     << "},\"scheduler\":{\"submitted\":" << scheduler.submitted
     << ",\"completed\":" << scheduler.completed
     << ",\"failed\":" << scheduler.failed
     << ",\"cancelled\":" << scheduler.cancelled
     << ",\"rejected\":" << scheduler.rejected
     << ",\"deadline_missed\":" << scheduler.deadline_missed
     << ",\"deadline_missed_queued\":" << scheduler.deadline_missed_queued
     << ",\"retries\":" << scheduler.retries
     << ",\"max_in_flight\":" << scheduler.max_in_flight
     << ",\"in_flight\":" << scheduler.in_flight
     << ",\"queued\":" << scheduler.queued
     << ",\"loop_threads\":" << scheduler.loop_threads
     << ",\"lane_threads\":" << scheduler.lane_threads
     << ",\"loop_wakeups\":" << scheduler.loop_wakeups
     << ",\"timers_fired\":" << scheduler.timers_fired
     << ",\"loop_max_queue_depth\":" << scheduler.loop_max_queue_depth
     << ",\"timer_slip_total_ns\":" << scheduler.timer_slip_total_ns
     << ",\"timer_slip_max_ns\":" << scheduler.timer_slip_max_ns
     << ",\"loop_lag_p50_ms\":" << scheduler.loop_lag_p50_ms
     << ",\"loop_lag_p99_ms\":" << scheduler.loop_lag_p99_ms
     << ",\"tenants\":[";
  for (size_t i = 0; i < scheduler.tenants.size(); ++i) {
    const TenantStats& t = scheduler.tenants[i];
    os << (i ? "," : "") << "{\"name\":\"" << t.name
       << "\",\"max_inflight\":" << t.max_inflight
       << ",\"max_queued\":" << t.max_queued
       << ",\"in_flight\":" << t.in_flight << ",\"queued\":" << t.queued
       << ",\"submitted\":" << t.submitted << ",\"rejected\":" << t.rejected
       << ",\"deadline_missed\":" << t.deadline_missed
       << ",\"clamped\":" << (t.clamped ? "true" : "false") << "}";
  }
  os << "]},\"pool\":{\"threads\":" << pool.pool_threads
     << ",\"tasks\":" << pool.pool_tasks
     << ",\"caller_tasks\":" << pool.caller_tasks
     << ",\"foreign_steals\":" << pool.foreign_steals
     << ",\"spawned_threads\":" << pool.spawned_threads
     << ",\"worker_deaths\":" << pool.worker_deaths
     << "},\"build_cache\":{\"hits\":" << build_cache.hits
     << ",\"misses\":" << build_cache.misses
     << ",\"evictions\":" << build_cache.evictions
     << ",\"entries\":" << build_cache.entries
     << ",\"bytes\":" << build_cache.bytes
     << "},\"recorder\":{\"recorded\":" << recorder.recorded
     << ",\"dropped\":" << recorder.dropped
     << ",\"rings_claimed\":" << recorder.rings_claimed
     << ",\"rings\":" << recorder.rings
     << ",\"events_per_ring\":" << recorder.events_per_ring << "}}";
  return os.str();
}

std::string SessionMetrics::ToString() const {
  std::ostringstream os;
  os << "SessionMetrics{" << queries << " queries; exec mean="
     << exec_mean_ms << "ms p50=" << exec_p50_ms << "ms p95=" << exec_p95_ms
     << "ms p99=" << exec_p99_ms << "ms; queue mean=" << queue_mean_ms
     << "ms p99=" << queue_p99_ms << "ms; sched " << scheduler.completed
     << " ok/" << scheduler.failed << " failed/" << scheduler.cancelled
     << " cancelled, max_in_flight=" << scheduler.max_in_flight
     << "; pool tasks=" << pool.pool_tasks
     << " steals=" << pool.foreign_steals
     << "; build_cache=" << build_cache.hits << "/"
     << (build_cache.hits + build_cache.misses) << "}";
  return os.str();
}

// ---------------------------------------------------------------------------
// QueryBuilder

QueryBuilder& QueryBuilder::Join(RelId a, RelId b, double selectivity) {
  q_.edges_.push_back({a, b, selectivity, 0, 0, false});
  return *this;
}

QueryBuilder& QueryBuilder::JoinOn(RelId a, uint32_t col_a, RelId b,
                                   uint32_t col_b, double selectivity) {
  q_.edges_.push_back({a, b, selectivity, col_a, col_b, true});
  return *this;
}

QueryBuilder& QueryBuilder::Tree(plan::JoinTree tree) {
  q_.tree_ = std::move(tree);
  return *this;
}

QueryBuilder& QueryBuilder::Shape(opt::TreeShape shape,
                                  uint32_t segment_length) {
  q_.shape_.shape = shape;
  q_.shape_.segment_length = segment_length;
  q_.shape_set_ = true;
  return *this;
}

QueryBuilder& QueryBuilder::Scan(RelId input) {
  q_.chain_ = true;
  q_.has_input_ = true;
  q_.input_ = input;
  return *this;
}

QueryBuilder& QueryBuilder::Probe(RelId build, uint32_t probe_col,
                                  uint32_t build_col, double selectivity) {
  q_.chain_ = true;
  q_.steps_.push_back({build, probe_col, build_col, selectivity});
  return *this;
}

QueryBuilder& QueryBuilder::CapturePoint(std::string name) {
  q_.captures_.push_back(
      {std::move(name), static_cast<uint32_t>(q_.steps_.size())});
  return *this;
}

QueryBuilder& QueryBuilder::Where(RelId rel, uint32_t col, CmpOp cmp,
                                  int64_t value) {
  q_.filters_.push_back({rel, col, cmp, value});
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(RelId rel, uint32_t col) {
  q_.group_by_.push_back({rel, col});
  return *this;
}

QueryBuilder& QueryBuilder::Agg(AggFn fn, RelId rel, uint32_t col) {
  q_.agg_items_.push_back({fn, rel, col, /*has_col=*/fn != AggFn::kCount});
  return *this;
}

QueryBuilder& QueryBuilder::Count() {
  q_.agg_items_.push_back({AggFn::kCount, 0, 0, /*has_col=*/false});
  return *this;
}

QueryBuilder& QueryBuilder::Having(AggFn fn, RelId rel, uint32_t col,
                                   CmpOp cmp, int64_t value) {
  q_.having_.push_back({/*on_agg=*/true, fn, rel, col,
                        /*has_col=*/fn != AggFn::kCount, cmp, value});
  return *this;
}

QueryBuilder& QueryBuilder::Having(RelId rel, uint32_t col, CmpOp cmp,
                                   int64_t value) {
  q_.having_.push_back(
      {/*on_agg=*/false, AggFn::kCount, rel, col, false, cmp, value});
  return *this;
}

QueryBuilder& QueryBuilder::HavingCount(CmpOp cmp, int64_t value) {
  q_.having_.push_back(
      {/*on_agg=*/true, AggFn::kCount, 0, 0, false, cmp, value});
  return *this;
}

// ---------------------------------------------------------------------------
// Session

Session::Session() : Session(SessionOptions{}) {}

namespace {

/// Recorder geometry from the session knobs (0 keeps the defaults).
obs::FlightRecorder::Options RecorderOptions(const SessionOptions& options) {
  obs::FlightRecorder::Options ro;
  if (options.recorder_rings != 0) ro.rings = options.recorder_rings;
  if (options.recorder_ring_events != 0) {
    ro.events_per_ring = options.recorder_ring_events;
  }
  return ro;
}

}  // namespace

Session::Session(const SessionOptions& options)
    : recorder_(options.flight_recorder
                    ? std::make_unique<obs::FlightRecorder>(
                          RecorderOptions(options))
                    : nullptr),
      pool_threads_(options.pool_threads != 0
                        ? options.pool_threads
                        : std::max(1u, std::thread::hardware_concurrency())),
      session_options_(options),
      scheduler_(std::make_unique<Scheduler>(options, recorder_.get())) {
  build_cache_.SetByteBudget(options.build_cache_bytes);
}

Session::~Session() {
  // Drain in-flight queries first so the final snapshot counts every
  // completion, then flush one last metrics line.
  scheduler_.reset();
  if (!session_options_.metrics_export_path.empty()) ExportMetricsLine();
}

RelId Session::AddRelation(std::string name, uint64_t cardinality,
                           uint32_t tuple_bytes) {
  RelId id = catalog_.AddRelation(std::move(name), cardinality, tuple_bytes);
  tables_.emplace_back();
  return id;
}

RelId Session::AddTable(mt::Table table) {
  RelId id = catalog_.AddRelation(
      table.name, table.rows(),
      table.width() * static_cast<uint32_t>(sizeof(int64_t)));
  TableSlot slot;
  // Hashed once at registration (one linear pass, amortized over every
  // query that may later share this table's builds through the cache).
  slot.content_hash = mt::TableContentHash(table.batch);
  // Per-column min/max + KMV distinct sketches: one more linear pass,
  // feeding the planner's always-true/always-false predicate folds.
  slot.stats = mt::ComputeColumnStats(table.batch);
  slot.table = std::move(table);
  tables_.push_back(std::move(slot));
  // Conservative invalidation: registration changes what "the same
  // table" means, so drop every cached build (in-flight executions keep
  // their shared_ptrs; content-hash keys would remain correct, clearing
  // just bounds memory and keeps the contract simple).
  build_cache_.Clear();
  return id;
}

const mt::Table* Session::table(RelId id) const {
  if (id >= tables_.size() || !tables_[id].table.has_value()) return nullptr;
  return &*tables_[id].table;
}

const std::vector<mt::ColumnStats>* Session::table_stats(RelId id) const {
  if (id >= tables_.size() || !tables_[id].table.has_value()) return nullptr;
  return &tables_[id].stats;
}

/// The bridged representations of one planned query: the local (dense)
/// catalog over the query's relations, the chosen join tree, the simulated
/// physical plan, and — when real data is available or synthesizable — the
/// table set and pipeline plan the real backends execute.
struct Session::Planned {
  catalog::Catalog cat;               ///< local catalog (dense rel ids)
  std::vector<RelId> to_global;       ///< local rel id -> session rel id
  plan::JoinTree tree;
  plan::PhysicalPlan pplan;

  bool has_real = false;
  std::string real_gap;               ///< why real execution is unavailable
  std::vector<mt::Table> owned;       ///< synthesized tables (if any)
  std::vector<const mt::Table*> tables;  ///< local rel id -> data
  mt::PipelinePlan mtplan;

  bool has_agg = false;
  /// Admission cost (cost-ordered policies): the join tree's cost plus
  /// the estimated aggregation work for GroupBy/Agg queries, over the
  /// filter-adjusted cardinalities.
  double plan_cost = 0.0;

  /// Per-local-relation filter pass fractions (stats-driven where column
  /// statistics exist, System R defaults otherwise; 1.0 once a filter was
  /// pushed into the bind) — the single source the chain-card estimates
  /// and trace plans read, so they stay consistent with the planning
  /// catalog.
  std::vector<double> filter_pass;
  /// Rows dropped at bind time by pushing Where predicates into the
  /// synthesized tables (ExecutionReport::rows_prefiltered).
  uint64_t prefiltered_rows = 0;

  /// Build-cache identities aligned with `tables` (0 = uncacheable), plus
  /// the synthesis identity (seed/skew/bind parameters) folded into every
  /// key when the tables were synthesized rather than registered.
  std::vector<uint64_t> cache_ids;
  uint64_t cache_seed_skew = 0;

  /// Plan-point capture specs (QueryBuilder::CapturePoint), resolved to
  /// (chain, point) coordinates on mtplan (chain queries compile to one
  /// chain, so chain is always 0).
  struct CapturePointSpec {
    std::string name;
    uint32_t chain = 0;
    uint32_t point = 0;
  };
  std::vector<CapturePointSpec> captures;
};

Status Session::PlanQuery(const Query& q, const ExecOptions& opts,
                          bool want_real, Planned* out) const {
  if (q.edges_.empty() && q.steps_.empty()) {
    return Status::InvalidArgument("query has no joins");
  }
  if (q.chain_ && !q.edges_.empty()) {
    return Status::InvalidArgument(
        "query mixes chain form (Scan/Probe) and graph form (Join)");
  }
  if (q.chain_ && !q.has_input_) {
    return Status::InvalidArgument("chain query has no Scan()");
  }
  if (!q.captures_.empty()) {
    // Plan-point capture samples real rows at chain positions; the graph
    // form has no builder-order plan points and the simulator no rows.
    if (!q.chain_) {
      return Status::InvalidArgument(
          "CapturePoint requires the chain form (Scan/Probe)");
    }
    if (opts.backend == Backend::kSimulated) {
      return Status::InvalidArgument(
          "the simulated backend has no rows to capture (use "
          "Backend::kThreads or Backend::kCluster)");
    }
    for (const auto& cs : q.captures_) {
      out->captures.push_back({cs.name, 0, cs.point});
    }
  }

  // Collect the referenced relations and build the dense local catalog.
  std::vector<RelId> rels;
  auto touch = [&](RelId r) { rels.push_back(r); };
  if (q.chain_) {
    touch(q.input_);
    for (const auto& s : q.steps_) touch(s.build);
  } else {
    for (const auto& e : q.edges_) {
      touch(e.a);
      touch(e.b);
    }
  }
  std::sort(rels.begin(), rels.end());
  for (RelId r : rels) {
    if (r >= catalog_.size()) {
      return Status::InvalidArgument("query references unknown relation id " +
                                     std::to_string(r));
    }
  }
  if (q.chain_) {
    // A relation scanned or probed twice would duplicate its leaf bit in
    // the join tree and break every RelSet invariant downstream; reject
    // it by name (self-joins need table aliases, which are unsupported).
    auto dup = std::adjacent_find(rels.begin(), rels.end());
    if (dup != rels.end()) {
      return Status::InvalidArgument(
          "relation '" + catalog_.relation(*dup).name +
          "' appears more than once in the chain; self-joins are "
          "unsupported (register the table twice to alias it)");
    }
  }
  rels.erase(std::unique(rels.begin(), rels.end()), rels.end());
  if (rels.size() > 64) {
    return Status::InvalidArgument("queries support at most 64 relations");
  }
  std::unordered_map<RelId, uint32_t> to_local;
  for (RelId r : rels) {
    const auto& rel = catalog_.relation(r);
    to_local[r] = out->cat.AddRelation(rel.name, rel.cardinality,
                                       rel.tuple_bytes);
    out->to_global.push_back(r);
  }
  auto local = [&](RelId r) { return to_local.at(r); };

  // Resolve scan-level filters: map the (rel, col) predicates onto local
  // table indexes and estimate per-relation pass fractions (System R
  // defaults: 1/10 for equality, 1/3 for ranges, 9/10 for inequality) so
  // the optimizer, the SCF admission cost and the simulator all price
  // filtered scans.
  std::vector<std::vector<mt::Predicate>> filters(rels.size());
  std::vector<double> filter_sel(rels.size(), 1.0);
  // Registered tables carry per-column [min, max] stats (AddTable), which
  // fold predicates before any row is scanned: an always-true predicate is
  // dropped outright, and an always-false one replaces the relation's
  // whole conjunction — one impossible compare rejects every row with no
  // further predicate evaluation. Semantics-preserving, so it applies to
  // the scalar and vectorized paths alike.
  std::vector<char> always_false(rels.size(), 0);
  for (const auto& f : q.filters_) {
    auto it = to_local.find(f.rel);
    if (it == to_local.end()) {
      return Status::InvalidArgument(
          "Where references relation id " + std::to_string(f.rel) +
          ", which the query does not join");
    }
    const mt::Table* t = table(f.rel);
    if (t != nullptr && f.col >= t->width()) {
      return Status::OutOfRange(
          "Where column " + std::to_string(f.col) + " >= width " +
          std::to_string(t->width()) + " of relation '" +
          catalog_.relation(f.rel).name + "'");
    }
    const uint32_t lrel = it->second;
    if (always_false[lrel]) continue;
    const mt::Predicate pred{f.col, f.cmp, f.value};
    const std::vector<mt::ColumnStats>* stats = table_stats(f.rel);
    if (stats != nullptr && f.col < stats->size() && t->rows() > 0) {
      switch (mt::ClassifyPredicate(pred, (*stats)[f.col])) {
        case mt::PredicateFold::kAlwaysTrue:
          continue;  // cannot reject any row: drop it
        case mt::PredicateFold::kAlwaysFalse:
          always_false[lrel] = 1;
          filters[lrel].assign(1, pred);
          filter_sel[lrel] = 1e-4;
          continue;
        case mt::PredicateFold::kKeep:
          break;
      }
    }
    filters[lrel].push_back(pred);
    // Pass fraction: the KMV distinct counts and [min, max] envelopes
    // from AddTable price the predicate against the actual data
    // distribution; the System R constants (1/10 equality, 1/3 range,
    // 9/10 inequality) remain the fallback for catalog-only relations.
    double s;
    if (stats != nullptr && f.col < stats->size() && t->rows() > 0) {
      s = mt::EstimateSelectivity(pred, (*stats)[f.col]);
    } else {
      s = f.cmp == CmpOp::kEq ? 0.1
          : f.cmp == CmpOp::kNe ? 0.9
                                : 1.0 / 3.0;
    }
    filter_sel[lrel] = std::max(1e-4, filter_sel[lrel] * s);
  }
  // The GroupBy/Agg references must join-in, and columns into registered
  // tables are bounds-checked here so the simulated backend rejects the
  // same typos the real ones do (catalog-only relations carry no column
  // schema — their references are checked against the synthesized widths
  // on the real path only).
  out->has_agg = q.has_agg();
  auto check_colref = [&](const char* what, RelId rel,
                          uint32_t col) -> Status {
    if (to_local.find(rel) == to_local.end()) {
      return Status::InvalidArgument(
          std::string(what) + " references relation id " +
          std::to_string(rel) + ", which the query does not join");
    }
    const mt::Table* t = table(rel);
    if (t != nullptr && col >= t->width()) {
      return Status::OutOfRange(
          std::string(what) + " column " + std::to_string(col) +
          " >= width " + std::to_string(t->width()) + " of relation '" +
          catalog_.relation(rel).name + "'");
    }
    return Status::OK();
  };
  for (const auto& g : q.group_by_) {
    HIERDB_RETURN_NOT_OK(check_colref("GroupBy", g.rel, g.col));
  }
  for (const auto& a : q.agg_items_) {
    if (a.has_col) {
      HIERDB_RETURN_NOT_OK(check_colref("Agg", a.rel, a.col));
    }
  }
  // HAVING resolves against the declared grouping/aggregate items: the
  // output row is [group values..., aggregates...], so a matched GroupBy
  // is its index and a matched Agg is group count + its index. Resolved
  // here (not in the real-data bridge) so the simulated backend rejects
  // the same mistakes the real ones do.
  std::vector<mt::Predicate> having_preds;
  for (const auto& h : q.having_) {
    if (!out->has_agg) {
      return Status::InvalidArgument(
          "Having requires a GroupBy/Agg query (it filters aggregate "
          "output rows)");
    }
    uint32_t slot = UINT32_MAX;
    if (h.on_agg) {
      for (size_t i = 0; i < q.agg_items_.size(); ++i) {
        const auto& a = q.agg_items_[i];
        if (a.fn != h.fn || a.has_col != h.has_col) continue;
        if (a.has_col && (a.rel != h.rel || a.col != h.col)) continue;
        slot = static_cast<uint32_t>(q.group_by_.size() + i);
        break;
      }
      if (slot == UINT32_MAX) {
        return Status::InvalidArgument(
            std::string("Having references aggregate ") + AggFnName(h.fn) +
            (h.has_col ? "(col)" : "(*)") +
            ", which no Agg()/Count() call declares");
      }
    } else {
      for (size_t i = 0; i < q.group_by_.size(); ++i) {
        if (q.group_by_[i].rel == h.rel && q.group_by_[i].col == h.col) {
          slot = static_cast<uint32_t>(i);
          break;
        }
      }
      if (slot == UINT32_MAX) {
        return Status::InvalidArgument(
            "Having references a grouping column that no GroupBy() call "
            "declares");
      }
    }
    having_preds.push_back({slot, h.cmp, h.value});
  }

  // Planning catalog with filter-adjusted cardinality estimates: the tree
  // choice, edge-selectivity defaults and plan cost see the filters, while
  // synthesis and the simulator's scan inputs keep the true catalog.
  catalog::Catalog fcat;
  for (RelId r : rels) {
    const auto& rel = catalog_.relation(r);
    uint64_t est = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(
               static_cast<double>(rel.cardinality) *
               filter_sel[to_local.at(r)])));
    fcat.AddRelation(rel.name, est, rel.tuple_bytes);
  }
  auto card = [&](RelId r) {
    return fcat.relation(to_local.at(r)).cardinality;
  };

  // Predicate graph over the local relations.
  std::vector<plan::JoinEdge> edges;
  if (q.chain_) {
    // Map each probe_col back to the relation whose columns occupy that
    // range of the pipelined row (input columns first, then each build's
    // columns appended in step order), so snowflake chains — a probe on a
    // previous build's column — model the right edge. Catalog-only
    // relations have unknown widths and fall back to the driving input.
    struct Range {
      RelId rel;
      uint32_t begin, end;
    };
    std::vector<Range> ranges;
    uint32_t width = 0;
    auto push_range = [&](RelId r) {
      const mt::Table* t = table(r);
      uint32_t w = t ? t->width() : 0;
      ranges.push_back({r, width, width + w});
      width += w;
    };
    push_range(q.input_);
    for (const auto& s : q.steps_) {
      RelId probe_rel = q.input_;
      for (const auto& rg : ranges) {
        if (rg.begin <= s.probe_col && s.probe_col < rg.end) {
          probe_rel = rg.rel;
          break;
        }
      }
      double sel = s.selectivity > 0
                       ? s.selectivity
                       : DefaultSelectivity(card(probe_rel), card(s.build));
      edges.push_back({local(probe_rel), local(s.build), sel});
      push_range(s.build);
    }
  } else {
    for (const auto& e : q.edges_) {
      double sel = e.selectivity > 0
                       ? e.selectivity
                       : DefaultSelectivity(card(e.a), card(e.b));
      edges.push_back({local(e.a), local(e.b), sel});
    }
  }
  plan::JoinGraph graph(static_cast<uint32_t>(rels.size()), edges);
  // With duplicate chain relations rejected above, both query forms build
  // acyclic connected predicate graphs and share one validation.
  HIERDB_RETURN_NOT_OK(graph.Validate());

  // Choose the join tree: explicit > chain spine > shaped optimization.
  if (q.tree_.has_value()) {
    // Remap the caller's tree (session rel ids) onto local ids.
    plan::JoinTree tree = *q.tree_;
    if (tree.root < 0 ||
        static_cast<size_t>(tree.root) >= tree.nodes.size()) {
      return Status::InvalidArgument("explicit tree is empty or malformed");
    }
    for (auto& node : tree.nodes) {
      if (node.IsLeaf()) {
        auto it = to_local.find(node.rel);
        if (it == to_local.end()) {
          return Status::InvalidArgument(
              "explicit tree references a relation outside the join graph");
        }
        node.rel = it->second;
        node.rels = plan::RelBit(node.rel);
      } else if (node.left < 0 || node.right < 0 ||
                 static_cast<size_t>(node.left) >= tree.nodes.size() ||
                 static_cast<size_t>(node.right) >= tree.nodes.size()) {
        return Status::InvalidArgument(
            "explicit tree has a child index out of range");
      }
    }
    // Recompute subtree relation sets bottom-up (children precede parents
    // is not guaranteed, so walk from the root). A node reached twice
    // means the "tree" shares nodes or contains a cycle.
    std::vector<char> seen(tree.nodes.size(), 0);
    bool malformed = false;
    std::function<plan::RelSet(int32_t)> rebuild =
        [&](int32_t idx) -> plan::RelSet {
      if (malformed) return 0;
      if (seen[idx]) {
        malformed = true;
        return 0;
      }
      seen[idx] = 1;
      auto& node = tree.nodes[idx];
      if (!node.IsLeaf()) {
        node.rels = rebuild(node.left) | rebuild(node.right);
      }
      return node.rels;
    };
    rebuild(tree.root);
    if (malformed) {
      return Status::InvalidArgument(
          "explicit tree shares nodes or contains a cycle");
    }
    out->tree = std::move(tree);
  } else if (q.chain_) {
    // Left-deep spine with the builds as right children: macro-expansion
    // with build_on_right_child keeps it one maximal pipeline chain.
    plan::JoinTree tree;
    auto add_leaf = [&](uint32_t r) {
      plan::JoinTreeNode n;
      n.rel = r;
      n.rels = plan::RelBit(r);
      n.card = static_cast<double>(fcat.relation(r).cardinality);
      tree.nodes.push_back(n);
      return static_cast<int32_t>(tree.nodes.size() - 1);
    };
    int32_t cur = add_leaf(local(q.input_));
    for (size_t i = 0; i < q.steps_.size(); ++i) {
      int32_t leaf = add_leaf(local(q.steps_[i].build));
      plan::JoinTreeNode n;
      n.left = cur;
      n.right = leaf;
      n.rels = tree.nodes[cur].rels | tree.nodes[leaf].rels;
      n.card = tree.nodes[cur].card * tree.nodes[leaf].card *
               edges[i].selectivity;
      tree.nodes.push_back(n);
      cur = static_cast<int32_t>(tree.nodes.size() - 1);
      tree.cost += n.card;
    }
    tree.root = cur;
    out->tree = std::move(tree);
  } else {
    out->tree = opt::ShapedBest(graph, fcat, q.shape_);
  }

  // Estimated result cardinality and group count: prices the aggregation
  // for the simulator's AggPartial/AggMerge ops and the admission cost.
  // When every grouping column carries distinct-count statistics (KMV
  // sketches from AddTable) the group count is bounded by the product of
  // per-column distincts capped at the output cardinality; the
  // sqrt-of-output default covers unstatted columns.
  const double root_card =
      std::max(0.0, out->tree.nodes[out->tree.root].card);
  double est_groups = 0.0;
  if (out->has_agg) {
    if (q.group_by_.empty()) {
      est_groups = 1.0;
    } else {
      double distinct_prod = 1.0;
      bool all_stats = true;
      for (const auto& g : q.group_by_) {
        const std::vector<mt::ColumnStats>* st = table_stats(g.rel);
        if (st == nullptr || g.col >= st->size()) {
          all_stats = false;
          break;
        }
        distinct_prod *= static_cast<double>(
            std::max<uint64_t>((*st)[g.col].distinct_est, 1));
      }
      est_groups =
          all_stats
              ? std::max(1.0, std::min(std::max(root_card, 1.0),
                                       distinct_prod))
              : std::max(1.0, std::sqrt(root_card));
    }
  }
  out->plan_cost =
      out->tree.cost + (out->has_agg ? root_card + est_groups : 0.0);

  // Bridge 1: the simulated backend's parallel execution plan.
  plan::ExpandOptions eo;
  eo.apply_h1 = opts.apply_h1;
  eo.serialize_chains = opts.apply_h2;
  eo.scan_filter_sel = filter_sel;  // indexed by local rel id
  eo.aggregate = out->has_agg;
  eo.agg_groups_est = est_groups;
  // Chain queries and explicitly shape-constrained trees build on the
  // right child so the macro-expansion preserves the requested pipeline
  // structure (right-deep => one maximal chain, left-deep => blocking
  // ladder); an explicit Shape(kBushy) gets the same treatment so shape
  // comparisons share one expansion convention.
  eo.build_on_right_child =
      q.chain_ || (!q.tree_.has_value() && q.shape_set_);
  out->pplan = plan::MacroExpand(out->tree, out->cat, eo);
  HIERDB_RETURN_NOT_OK(out->pplan.Validate());
  out->filter_pass = filter_sel;

  // Bridge 2: the real-data pipeline plan (threads/cluster backends).
  // The simulated backend never touches it, so skip the table synthesis.
  if (!want_real) return Status::OK();

  // Attaches the filters and the aggregation spec to the finished
  // pipeline plan: table indexes equal local rel ids in every bridge
  // path, and the (rel, col) references resolve to offsets in the final
  // chain's output row via the plan's layout. Ends with the structural
  // validation (which bounds-checks filter/agg columns against the bound
  // tables — registered or synthesized).
  auto attach_filters_and_agg = [&]() -> Status {
    out->mtplan.table_filters = filters;
    if (out->has_agg) {
      std::vector<uint32_t> widths;
      widths.reserve(out->tables.size());
      for (const mt::Table* t : out->tables) widths.push_back(t->width());
      std::vector<uint32_t> offsets = out->mtplan.FinalLayout(widths);
      auto resolve = [&](RelId rel, uint32_t col, const char* what,
                         uint32_t* slot) -> Status {
        uint32_t l = local(rel);
        if (offsets[l] == UINT32_MAX) {
          return Status::Internal("relation missing from the final output");
        }
        if (col >= widths[l]) {
          return Status::OutOfRange(
              std::string(what) + " column " + std::to_string(col) +
              " >= width " + std::to_string(widths[l]) + " of relation '" +
              catalog_.relation(rel).name + "'");
        }
        *slot = offsets[l] + col;
        return Status::OK();
      };
      mt::AggSpec spec;
      for (const auto& g : q.group_by_) {
        uint32_t slot = 0;
        HIERDB_RETURN_NOT_OK(resolve(g.rel, g.col, "GroupBy", &slot));
        spec.group_cols.push_back(slot);
      }
      for (const auto& a : q.agg_items_) {
        uint32_t slot = 0;
        if (a.has_col) {
          HIERDB_RETURN_NOT_OK(resolve(a.rel, a.col, "Agg", &slot));
        }
        spec.aggs.push_back({a.fn, slot});
      }
      spec.having = having_preds;
      out->mtplan.agg = std::move(spec);
    }
    return out->mtplan.Validate(out->tables);
  };

  // Build-cache identities are only consumed by the threads backend
  // (RunThreads wires the cache); other backends skip even the cheap id
  // copies and, for synthesized tables, the O(rows) content hashing.
  const bool want_cache =
      opts.reuse_builds && opts.backend == Backend::kThreads;
  if (q.chain_) {
    // Chain queries execute the registered rows verbatim.
    std::string missing;
    for (RelId r : rels) {
      if (table(r) == nullptr) missing = catalog_.relation(r).name;
    }
    if (!missing.empty()) {
      out->real_gap = "relation '" + missing +
                      "' has no registered data (chain queries run on real "
                      "tables; use Session::AddTable)";
      return Status::OK();
    }
    for (RelId r : out->to_global) {
      out->tables.push_back(table(r));
      if (want_cache) {
        out->cache_ids.push_back(tables_[r].content_hash);
      }
    }
    mt::Chain chain;
    chain.input = mt::Source::OfTable(local(q.input_));
    for (const auto& s : q.steps_) {
      chain.joins.push_back(
          {mt::Source::OfTable(local(s.build)), s.probe_col, s.build_col});
    }
    out->mtplan.chains.push_back(std::move(chain));
    HIERDB_RETURN_NOT_OK(attach_filters_and_agg());
    out->has_real = true;
    return Status::OK();
  }

  // Graph form: run on registered tables when every edge carries explicit
  // join columns and every relation has data; otherwise synthesize tables
  // that track the catalog cardinalities (paper methodology).
  bool all_cols = true, all_data = true;
  for (const auto& e : q.edges_) all_cols = all_cols && e.has_cols;
  for (RelId r : rels) all_data = all_data && table(r) != nullptr;
  if (all_cols && all_data) {
    for (RelId r : out->to_global) {
      out->tables.push_back(table(r));
      if (want_cache) {
        out->cache_ids.push_back(tables_[r].content_hash);
      }
    }
    std::vector<mt::EdgeColumns> cols;
    for (const auto& e : q.edges_) cols.push_back({e.col_a, e.col_b});
    auto plan = mt::TranslateJoinTree(out->tree, graph, out->tables, cols);
    HIERDB_RETURN_NOT_OK(plan.status());
    out->mtplan = std::move(plan).value();
    HIERDB_RETURN_NOT_OK(attach_filters_and_agg());
    out->has_real = true;
  } else {
    mt::BindOptions bo;
    bo.scale = opts.bind_scale;
    bo.seed = opts.seed;
    bo.min_rows = opts.bind_min_rows;
    bo.skew_theta = opts.skew_theta;
    auto bound = mt::BindJoinTree(out->tree, graph, out->cat, bo);
    HIERDB_RETURN_NOT_OK(bound.status());
    out->owned = std::move(bound.value().tables);
    // Filter pushdown into the synthesized bind: Where predicates on
    // these relations evaluate once here, so the executors scan
    // pre-filtered tables instead of re-testing every row (the bound
    // tables are this query's private copies — registered tables are
    // never touched). The planning catalog keeps pricing the unfiltered
    // cardinalities; filter_pass flips to 1.0 because the scanned tables
    // themselves already shrank.
    for (uint32_t l = 0; l < filters.size(); ++l) {
      if (filters[l].empty()) continue;
      mt::Batch& b = out->owned[l].batch;
      for (const mt::Predicate& pr : filters[l]) {
        if (pr.col >= b.width()) {
          return Status::OutOfRange(
              "Where column " + std::to_string(pr.col) + " >= width " +
              std::to_string(b.width()) + " of relation '" +
              catalog_.relation(out->to_global[l]).name + "'");
        }
      }
      mt::Batch kept(b.width());
      for (size_t r = 0; r < b.rows(); ++r) {
        if (mt::MatchesAll(filters[l], b.row(r))) kept.AppendRow(b.row(r));
      }
      out->prefiltered_rows += b.rows() - kept.rows();
      b = std::move(kept);
      filters[l].clear();
      out->filter_pass[l] = 1.0;
    }
    // Synthesized tables are cacheable on their contents plus the
    // synthesis identity: two queries share a build only when the data
    // really is byte-identical and was drawn under the same seed/skew/
    // bind parameters (the key's "seed, skew" component). The per-query
    // O(rows) hashing of synthesized tables is skipped when reuse is off
    // (registered tables were hashed once at AddTable).
    if (want_cache) {
      uint64_t seed_skew = MixU64(0xA24BAED4963EE407ULL, opts.seed);
      seed_skew = MixU64(seed_skew, DoubleBits(opts.skew_theta));
      seed_skew = MixU64(seed_skew, DoubleBits(opts.bind_scale));
      seed_skew = MixU64(seed_skew, opts.bind_min_rows);
      out->cache_seed_skew = seed_skew;
      for (const auto& t : out->owned) {
        out->cache_ids.push_back(mt::TableContentHash(t.batch));
      }
    }
    for (const auto& t : out->owned) out->tables.push_back(&t);
    out->mtplan = std::move(bound.value().plan);
    HIERDB_RETURN_NOT_OK(attach_filters_and_agg());
    out->has_real = true;
  }
  return Status::OK();
}

Status Session::ValidateOptions(const ExecOptions& opts) const {
  if (opts.strategy == Strategy::kSP && opts.nodes > 1) {
    return Status::InvalidArgument(
        "SP (synchronous pipelining) is shared-memory only: nodes must be 1");
  }
  if (opts.backend == Backend::kCluster &&
      opts.strategy == Strategy::kSP) {
    return Status::InvalidArgument(
        "the cluster backend supports DP and FP only");
  }
  if (opts.backend == Backend::kThreads && opts.nodes != 1) {
    return Status::InvalidArgument(
        "the threads backend is one SM-node (nodes must be 1); use "
        "Backend::kCluster for multi-node runs");
  }
  if (opts.nodes == 0 || opts.threads_per_node == 0) {
    return Status::InvalidArgument("machine shape must be at least 1x1");
  }
  if (opts.materialize && opts.backend == Backend::kSimulated) {
    return Status::InvalidArgument(
        "the simulated backend has no rows to materialize (use "
        "Backend::kThreads or Backend::kCluster)");
  }
  return Status::OK();
}

QueryHandle Session::Submit(const Query& q, const ExecOptions& opts) {
  Status bad = ValidateOptions(opts);
  if (!bad.ok()) return Scheduler::Completed(bad);
  auto planned = std::make_shared<Planned>();
  Status st =
      PlanQuery(q, opts, opts.backend != Backend::kSimulated, planned.get());
  if (!st.ok()) return Scheduler::Completed(st);
  // Planned owns its synthesized tables and is immutable from here on;
  // the closure runs on a scheduler worker, possibly concurrently with
  // other queries, and touches no session containers — only plan-time
  // snapshots (so registration stays safe while queries are in flight).
  double cost = planned->plan_cost;
  auto submit_t = std::chrono::steady_clock::now();

  // Chaos: one injector per query, shared across attempts — its per-site
  // event counters keep advancing, so a retry draws a fresh deterministic
  // fault subsequence from the same seeded plan instead of replaying the
  // failure verbatim.
  const std::optional<fault::FaultPlan>& fplan =
      opts.fault_plan.has_value() ? opts.fault_plan : session_options_.chaos;
  std::shared_ptr<fault::FaultInjector> injector;
  if (fplan.has_value() && fplan->armed()) {
    injector = std::make_shared<fault::FaultInjector>(*fplan);
  }
  RetrySpec rspec;
  rspec.max_retries = opts.max_retries;
  rspec.fallback = opts.fallback_backend.has_value() &&
                   *opts.fallback_backend != opts.backend;
  rspec.backoff_base_ms = opts.retry_backoff_ms;
  rspec.backoff_max_ms = opts.retry_backoff_max_ms;
  return scheduler_->Submit(
      cost, opts.deadline_ms, opts.tenant, rspec,
      [this, planned, opts, submit_t, injector, rspec](
          const std::atomic<bool>& stop, uint32_t attempt, uint64_t seq) {
        // The closure runs at dispatch: the gap since submission is the
        // admission-queue wait, the rest is execution — both feed the
        // session's continuous latency histograms whatever the outcome.
        double queue_ms = WallSince(submit_t) * 1000.0;
        auto t0 = std::chrono::steady_clock::now();
        FaultCtx fc;
        fc.injector = injector.get();
        fc.attempt = attempt;
        fc.query_seq = seq;
        ExecOptions eff = opts;
        if (rspec.fallback && attempt + 1 == rspec.max_attempts()) {
          // Graceful degradation: the extra final attempt runs on the
          // fallback backend, single node.
          eff.backend = *opts.fallback_backend;
          eff.nodes = 1;
          fc.fallback = true;
        }
        const uint64_t faults_before =
            injector != nullptr ? injector->counters().total() : 0;
        auto r = RunPlanned(*planned, eff, queue_ms, stop, fc);
        const uint64_t faults_fired =
            injector != nullptr ? injector->counters().total() - faults_before
                                : 0;
        // Black-box mirrors of the per-trace chaos instants, tagged with
        // the admission seq so the flight recorder tells attempts apart.
        if (recorder_ != nullptr) {
          if (fc.fallback) {
            recorder_->Instant(obs::EventKind::kFallback, seq, 1);
          }
          if (faults_fired > 0) {
            recorder_->Instant(obs::EventKind::kFault, seq, faults_fired);
          }
        }
        RecordCompletion(queue_ms, WallSince(t0) * 1000.0);
        if (r.ok()) {
          ExecutionReport& rep = r.value().report;
          rep.attempt = attempt;
          rep.fallback_used = fc.fallback;
          rep.faults_injected = faults_fired;
        }
        // Anomaly-triggered forensics: a missed deadline, an Unavailable
        // outcome (about to be retried or final), a retry that ran, a
        // degraded fallback run, or a validation mismatch (digest or
        // capture rows) snapshots the black box while the evidence is
        // still in the rings.
        std::string anomaly;
        if (!r.ok()) {
          if (r.status().code() == StatusCode::kDeadlineExceeded) {
            anomaly = "deadline_exceeded";
          } else if (r.status().code() == StatusCode::kUnavailable) {
            anomaly = "unavailable";
          } else if (r.status().code() == StatusCode::kCancelled &&
                     opts.deadline_ms > 0 &&
                     WallSince(submit_t) * 1000.0 >= opts.deadline_ms) {
            // A mid-run deadline miss reaches the closure as the raw
            // cooperative Cancelled (the lane rewrites it to
            // DeadlineExceeded only after the run returns); a user cancel
            // before the deadline stays a non-anomaly.
            anomaly = "deadline_exceeded";
          }
        } else {
          const ExecutionReport& rep = r.value().report;
          if (rep.validated && !rep.reference_match) {
            anomaly = "digest_mismatch";
          } else if (rep.validated && !rep.captures.empty() &&
                     !rep.captures_match) {
            anomaly = "capture_mismatch";
          } else if (attempt > 0) {
            anomaly = "retry";
          } else if (fc.fallback) {
            anomaly = "fallback";
          }
        }
        if (!anomaly.empty() && !session_options_.forensics_dir.empty()) {
          const std::vector<obs::CaptureResult>* caps =
              r.ok() && !r.value().report.captures.empty()
                  ? &r.value().report.captures
                  : nullptr;
          std::string dir = WriteForensicBundle(anomaly, seq, planned.get(),
                                                &eff, caps, /*counted=*/true);
          if (r.ok()) r.value().report.forensic_bundle = std::move(dir);
        }
        return r;
      });
}

Result<ExecutionReport> Session::Execute(const Query& q,
                                         const ExecOptions& opts) {
  auto got = Submit(q, opts).Take();
  if (!got.ok()) return got.status();
  return std::move(got).value().report;
}

StreamReport Session::RunStream(const std::vector<Query>& queries,
                                const ExecOptions& opts) {
  StreamReport sr;
  auto t0 = std::chrono::steady_clock::now();
  std::vector<QueryHandle> handles;
  handles.reserve(queries.size());
  for (const Query& q : queries) handles.push_back(Submit(q, opts));

  std::vector<double> latencies;
  double card_err_sum = 0.0;
  uint64_t card_err_n = 0;
  for (QueryHandle& h : handles) {
    ++sr.submitted;
    Result<QueryResult> r = h.Take();
    if (r.ok()) {
      ++sr.succeeded;
      latencies.push_back(r.value().exec_ms);
      sr.serial_ms += r.value().exec_ms;
      sr.build_cache_hits += r.value().report.build_cache_hits;
      sr.build_cache_misses += r.value().report.build_cache_misses;
      sr.rows_filtered += r.value().report.rows_filtered;
      sr.agg_groups += r.value().report.agg_groups;
      sr.agg_partials += r.value().report.agg_partials;
      sr.agg_repartition_bytes += r.value().report.agg_repartition_bytes;
      if (r.value().report.attempt > 0) ++sr.retried;
      if (r.value().report.fallback_used) ++sr.fallbacks;
      sr.faults_injected += r.value().report.faults_injected;
      for (const obs::ChainCard& cc : r.value().report.chain_cards) {
        if (!cc.has_actual) continue;
        card_err_sum += std::abs(static_cast<double>(cc.actual_rows) -
                                 cc.est_rows) /
                        std::max(cc.est_rows, 1.0);
        ++card_err_n;
      }
    } else {
      ++sr.failed;
      if (r.status().code() == StatusCode::kUnavailable) ++sr.unavailable;
    }
    sr.results.push_back(std::move(r));
  }
  sr.makespan_ms = WallSince(t0) * 1000.0;
  if (!latencies.empty()) {
    sr.mean_ms = Mean(latencies);
    sr.p50_ms = Percentile(latencies, 50.0);
    sr.p95_ms = Percentile(latencies, 95.0);
    sr.p99_ms = Percentile(latencies, 99.0);
  }
  if (card_err_n > 0) {
    sr.mean_card_error = card_err_sum / static_cast<double>(card_err_n);
  }
  if (sr.makespan_ms > 0) sr.qps = sr.succeeded / (sr.makespan_ms / 1000.0);
  return sr;
}

SchedulerStats Session::scheduler_stats() const { return scheduler_->stats(); }

WorkerPool& Session::EnsurePool() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkerPool>(pool_threads_, recorder_.get());
  }
  return *pool_;
}

PoolStats Session::pool_stats() const {
  PoolStats s;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (pool_ != nullptr) s = pool_->stats();
  }
  s.spawned_threads = spawned_threads_.load(std::memory_order_relaxed);
  return s;
}

mt::BuildCache::Stats Session::build_cache_stats() const {
  return build_cache_.stats();
}

Result<QueryResult> Session::RunPlanned(const Planned& p,
                                        const ExecOptions& opts,
                                        double queue_wait_ms,
                                        const std::atomic<bool>& stop,
                                        const FaultCtx& fc) const {
  switch (opts.backend) {
    case Backend::kSimulated: return RunSimulated(p, opts, stop);
    case Backend::kThreads:
      return RunThreads(p, opts, queue_wait_ms, stop, fc);
    case Backend::kCluster:
      return RunCluster(p, opts, queue_wait_ms, stop, fc);
  }
  return Status::Internal("unknown backend");
}

std::unique_ptr<ExecContext> Session::MakeContext(
    const ExecOptions& opts, const std::atomic<bool>& stop,
    fault::FaultInjector* injector) const {
  if (opts.use_shared_pool) return EnsurePool().Rent(&stop, injector);
  return std::make_unique<ThreadSpawnContext>(&stop, &spawned_threads_);
}

Result<QueryResult> Session::RunSimulated(
    const Planned& p, const ExecOptions& opts,
    const std::atomic<bool>& stop) const {
  sim::SystemConfig cfg;
  if (opts.sim_config.has_value()) {
    cfg = *opts.sim_config;
  } else {
    cfg.num_nodes = opts.nodes;
    cfg.procs_per_node = opts.threads_per_node;
    cfg.enable_global_lb = opts.global_lb;
    cfg.primary_queue_affinity = opts.primary_queue_affinity;
    cfg.model_memory_hierarchy = opts.model_memory_hierarchy;
    if (opts.buckets) cfg.buckets_per_operator = opts.buckets;
    if (opts.batch_rows) cfg.activation_batch_tuples = opts.batch_rows;
    if (opts.queue_capacity) cfg.queue_capacity = opts.queue_capacity;
  }
  if (opts.strategy == Strategy::kSP && cfg.num_nodes > 1) {
    return Status::InvalidArgument(
        "SP (synchronous pipelining) is shared-memory only: nodes must be 1");
  }

  // One simulated query at a time: the discrete-event run is deterministic
  // per query, and serializing keeps concurrent submissions reproducible.
  std::lock_guard<std::mutex> sim_lock(sim_mu_);
  // A cancel that landed while this query waited behind other simulated
  // runs wins here; the engine also checks the token per event batch.
  if (stop.load(std::memory_order_acquire)) {
    return Status::Cancelled("query cancelled during execution");
  }
  exec::Engine engine(cfg, opts.strategy);
  exec::RunOptions ro;
  ro.skew_theta = opts.skew_theta;
  ro.fp_error_rate = opts.fp_error_rate;
  ro.seed = opts.seed;
  ro.max_events = opts.max_events;
  ro.timeline_bucket = opts.timeline_bucket;
  ro.stop = &stop;
  exec::RunResult rr = engine.Run(p.pplan, p.cat, ro);
  if (!rr.status.ok()) {
    // A cooperative stop carries what was completed before the token
    // fired, so a deadline miss (the scheduler rewrites Cancelled to
    // DeadlineExceeded) still reports partial progress.
    if (rr.status.code() == StatusCode::kCancelled) {
      return Status::Cancelled(
          rr.status.message() + " [partial: acts=" +
          std::to_string(rr.metrics.activations_processed) +
          " tuples=" + std::to_string(rr.metrics.tuples_processed) + "]");
    }
    return rr.status;
  }

  const exec::RunMetrics& m = rr.metrics;
  ExecutionReport rep;
  rep.backend = Backend::kSimulated;
  rep.strategy = opts.strategy;
  rep.response_ms = m.ResponseMs();
  rep.idle_fraction = m.IdleFraction();
  rep.activations = m.activations_processed;
  rep.tuples = m.tuples_processed;
  rep.pipeline_bytes = m.net.bytes_pipeline;
  rep.lb_bytes = m.net.bytes_loadbalance;
  rep.steals = m.global_steals;
  rep.stolen_activations = m.stolen_activations;
  for (const auto& op : p.pplan.ops) {
    rep.op_labels.push_back(op.label);
    rep.op_end_ms.push_back(ToMillis(m.op_end_time[op.id]));
  }
  rep.sim = m;
  // Estimate-only chain cards: the simulator has no rows to count.
  for (uint32_t c = 0; c < p.pplan.chains.size(); ++c) {
    const plan::PipelineChain& ch = p.pplan.chains[c];
    obs::ChainCard cc;
    cc.chain = c;
    if (!ch.ops.empty()) {
      const plan::Operator& last = p.pplan.ops[ch.ops.back()];
      cc.est_rows = last.kind == plan::OpKind::kBuild ? last.input_card
                                                      : last.output_card;
    }
    rep.chain_cards.push_back(cc);
  }
  if (opts.trace) {
    // Virtual-time spans reconstructed from the engine's per-operator end
    // times and busy totals — no simulator instrumentation needed, and
    // SimTime is already nanoseconds, so the trace schema lines up.
    auto qt = std::make_shared<obs::QueryTrace>();
    qt->backend = "sim";
    qt->strategy = StrategyName(opts.strategy);
    qt->response_ms = rep.response_ms;
    qt->nodes = cfg.num_nodes;
    qt->workers_per_node = cfg.procs_per_node;
    qt->virtual_time = true;
    qt->ops = SimTraceOps(p.pplan);
    qt->chains = rep.chain_cards;
    for (const auto& op : p.pplan.ops) {
      if (op.id >= m.op_end_time.size()) continue;
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kSpan;
      ev.op = static_cast<int32_t>(op.id);
      ev.end_ns = static_cast<uint64_t>(
          std::max<SimTime>(0, m.op_end_time[op.id]));
      uint64_t busy = op.id < m.op_busy_ns.size()
                          ? static_cast<uint64_t>(
                                std::max(0.0, m.op_busy_ns[op.id]))
                          : 0;
      ev.start_ns = ev.end_ns > busy ? ev.end_ns - busy : 0;
      ev.detail = busy;
      ev.activations = 1;
      if (op.id < m.op_tuples_in.size()) ev.rows_in = m.op_tuples_in[op.id];
      qt->events.push_back(ev);
    }
    // Match TraceSink::Drain's ordering contract. Note a virtual span's
    // busy time sums over every processor that worked the operator, so it
    // may exceed the span's wall extent — consumers see virtual_time.
    std::sort(qt->events.begin(), qt->events.end(),
              [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                return a.start_ns < b.start_ns;
              });
    rep.trace = std::move(qt);
  }
  QueryResult qr;
  qr.report = std::move(rep);
  return qr;
}

Result<QueryResult> Session::RunThreads(const Planned& p,
                                        const ExecOptions& opts,
                                        double queue_wait_ms,
                                        const std::atomic<bool>& stop,
                                        const FaultCtx& fc) const {
  if (!p.has_real) return Status::InvalidArgument(p.real_gap);

  // Column pruning rides the vectorized data plane: aggregated plans drop
  // base-table columns nothing downstream reads (mt/prune.h). The pruned
  // copy is local to this execution — planner estimates and traces keep
  // reporting the original plan.
  mt::PipelinePlan plan = p.mtplan;
  if (opts.vectorized) {
    std::vector<uint32_t> widths;
    widths.reserve(p.tables.size());
    for (const mt::Table* t : p.tables) widths.push_back(t->width());
    mt::PruneColumns(&plan, widths);
  }

  std::unique_ptr<ExecContext> ctx = MakeContext(opts, stop, fc.injector);
  mt::PipelineOptions po;
  po.threads = opts.threads_per_node;
  po.strategy = opts.strategy;
  po.apply_h1 = opts.apply_h1;
  po.apply_h2 = opts.apply_h2;
  po.vectorized = opts.vectorized;
  po.ctx = ctx.get();
  if (opts.reuse_builds) {
    po.build_cache = &build_cache_;
    po.table_cache_ids = p.cache_ids;
    po.cache_seed_skew = p.cache_seed_skew;
  }
  if (opts.buckets) po.buckets = opts.buckets;
  if (opts.morsel_rows) po.morsel_rows = opts.morsel_rows;
  if (opts.batch_rows) po.batch_rows = opts.batch_rows;
  if (opts.queue_capacity) po.queue_capacity = opts.queue_capacity;
  po.recorder = recorder_.get();
  po.recorder_query = fc.query_seq;
  std::vector<std::unique_ptr<obs::RowCapture>> cap_sinks;
  cap_sinks.reserve(p.captures.size());
  for (const auto& cs : p.captures) {
    cap_sinks.push_back(
        std::make_unique<obs::RowCapture>(session_options_.capture_rows));
    po.captures.push_back({cs.chain, cs.point, cap_sinks.back().get()});
  }
  if (opts.strategy == Strategy::kFP && opts.fp_error_rate > 0) {
    uint32_t ops = mt::PipelineExecutor::CompiledOpCount(plan);
    Rng rng(opts.seed ^ 0x9E3779B97F4A7C15ULL);
    po.fp_cost_distortion.resize(ops);
    for (double& d : po.fp_cost_distortion) {
      d = 1.0 + opts.fp_error_rate * (2.0 * rng.NextDouble() - 1.0);
    }
  }

  obs::TraceSink sink;
  if (opts.trace) {
    po.trace = &sink;
    obs::TraceEvent rent;
    rent.kind = obs::EventKind::kPoolRent;
    rent.start_ns = rent.end_ns = sink.NowNs();
    rent.detail = opts.use_shared_pool ? 1 : 0;
    sink.RecordShared(rent);
    obs::TraceEvent sched;
    sched.kind = obs::EventKind::kSchedule;
    sched.start_ns = sched.end_ns = sink.NowNs();
    sched.detail = static_cast<uint64_t>(queue_wait_ms * 1e6);
    sink.RecordShared(sched);
  }

  mt::PipelineExecutor executor(po);
  mt::PipelineStats stats;
  QueryResult qr;
  const uint64_t faults_before =
      fc.injector != nullptr ? fc.injector->counters().total() : 0;
  auto t0 = std::chrono::steady_clock::now();
  auto got = executor.Execute(plan, p.tables, &stats,
                              opts.materialize ? &qr.rows : nullptr);
  double wall = WallSince(t0);
  if (opts.trace) {
    obs::TraceEvent ret;
    ret.kind = obs::EventKind::kPoolReturn;
    ret.start_ns = ret.end_ns = sink.NowNs();
    ret.detail = opts.use_shared_pool ? 1 : 0;
    sink.RecordShared(ret);
    RecordFaultInstants(sink, fc.injector, fc.attempt, fc.fallback,
                        faults_before);
  }
  if (!got.ok()) {
    if (got.status().code() == StatusCode::kCancelled) {
      return Status::Cancelled(
          got.status().message() + " [partial: acts=" +
          std::to_string(stats.morsels + stats.data_activations) +
          " filtered=" + std::to_string(stats.rows_filtered) + "]");
    }
    return got.status();
  }

  ExecutionReport rep;
  rep.backend = Backend::kThreads;
  rep.strategy = opts.strategy;
  rep.wall_seconds = wall;
  rep.response_ms = wall * 1000.0;
  rep.activations = stats.morsels + stats.data_activations;
  rep.has_result = true;
  rep.result_rows = got.value().count;
  rep.result_checksum = got.value().checksum;
  rep.idle_waits = stats.idle_waits;
  rep.stolen_activations = stats.nonprimary;
  rep.imbalance = stats.Imbalance();
  rep.build_cache_hits = stats.build_cache_hits;
  rep.build_cache_misses = stats.build_cache_misses;
  rep.rows_filtered = stats.rows_filtered;
  rep.aggregated = p.has_agg;
  rep.agg_groups = stats.agg_groups;
  rep.agg_partials = stats.agg_partials;
  rep.threads = stats;
  rep.rows_prefiltered = p.prefiltered_rows;
  std::vector<double> est = EstimateChainRows(p.mtplan, p.filter_pass, p.tables);
  rep.chain_cards = MakeChainCards(est, &stats.rows_per_chain);
  for (size_t i = 0; i < cap_sinks.size(); ++i) {
    rep.captures.push_back(cap_sinks[i]->Take(
        p.captures[i].name, p.captures[i].chain, p.captures[i].point));
  }
  if (opts.trace) {
    auto qt = std::make_shared<obs::QueryTrace>();
    qt->backend = "threads";
    qt->strategy = StrategyName(opts.strategy);
    qt->response_ms = rep.response_ms;
    qt->nodes = 1;
    qt->workers_per_node = po.threads;
    qt->ops = ThreadsTraceOps(p.mtplan, p.filter_pass, p.tables, p.cat, est,
                              stats.rows_per_chain);
    qt->chains = rep.chain_cards;
    qt->events = sink.Drain();
    rep.trace = std::move(qt);
  }
  if (opts.validate) {
    std::vector<std::unique_ptr<obs::RowCapture>> ref_sinks;
    std::vector<mt::CaptureSink> ref_caps;
    ref_sinks.reserve(p.captures.size());
    for (const auto& cs : p.captures) {
      ref_sinks.push_back(
          std::make_unique<obs::RowCapture>(session_options_.capture_rows));
      ref_caps.push_back({cs.chain, cs.point, ref_sinks.back().get()});
    }
    auto ref = mt::ReferenceExecute(plan, p.tables, ref_caps);
    HIERDB_RETURN_NOT_OK(ref.status());
    rep.validated = true;
    rep.reference_rows = ref.value().count;
    rep.reference_match = ref.value() == got.value();
    rep.captures_match = true;
    for (size_t i = 0; i < ref_sinks.size(); ++i) {
      obs::CaptureResult rc = ref_sinks[i]->Take(
          p.captures[i].name, p.captures[i].chain, p.captures[i].point);
      if (!rep.captures[i].SameRows(rc)) rep.captures_match = false;
    }
  }
  if (opts.materialize) {
    qr.materialized = true;
    rep.materialized = true;
    rep.materialized_rows = qr.rows.rows();
    rep.materialized_bytes = qr.rows.bytes();
  }
  qr.report = std::move(rep);
  return qr;
}

Result<QueryResult> Session::RunCluster(const Planned& p,
                                        const ExecOptions& opts,
                                        double queue_wait_ms,
                                        const std::atomic<bool>& stop,
                                        const FaultCtx& fc) const {
  if (!p.has_real) return Status::InvalidArgument(p.real_gap);
  std::unique_ptr<ExecContext> ctx = MakeContext(opts, stop, fc.injector);

  // Bridge the (possibly bushy, multi-chain) pipeline plan straight onto
  // the cluster: the chain DAG executes end-to-end on the node/thread
  // topology; a non-final chain's output stays distributed (each node
  // keeps the rows its probes produced) and is repartitioned to the
  // consuming join by tuple-batch shipping. No intermediate ever funnels
  // through one machine.
  cluster::PlanQuery query;
  query.plan = p.mtplan;
  // Column pruning (vectorized data plane): aggregated plans ship only
  // the columns referenced downstream over the repartition wire. Tables
  // are partitioned below with the ORIGINAL plan's columns — partitions
  // keep full-width rows; the executor's scans emit the projected ones.
  if (opts.vectorized) {
    std::vector<uint32_t> widths;
    widths.reserve(p.tables.size());
    for (const mt::Table* t : p.tables) widths.push_back(t->width());
    mt::PruneColumns(&query.plan, widths);
  }

  // Partition each base relation by its first use in plan order: driving
  // scan inputs are placed round-robin (or with Zipf placement skew when
  // requested); build relations hash-decluster on their build column (the
  // paper's assumption). Placement only affects locality — the bucket
  // routing re-scatters rows regardless — so any first-use rule is
  // correct.
  std::vector<cluster::PartitionedTable> parts(p.tables.size());
  std::vector<char> placed(p.tables.size(), 0);
  auto place_input = [&](uint32_t idx) {
    if (placed[idx]) return;
    placed[idx] = 1;
    parts[idx] =
        opts.placement_theta > 0
            ? cluster::PartitionWithPlacementSkew(
                  *p.tables[idx], opts.nodes, opts.placement_theta, opts.seed)
            : cluster::PartitionRoundRobin(*p.tables[idx], opts.nodes);
  };
  auto place_build = [&](uint32_t idx, uint32_t col) {
    if (placed[idx]) return;
    placed[idx] = 1;
    parts[idx] = cluster::PartitionByHash(*p.tables[idx], opts.nodes, col);
  };
  for (const mt::Chain& chain : p.mtplan.chains) {
    if (chain.input.kind == mt::Source::Kind::kTable) {
      place_input(chain.input.index);
    }
    for (const mt::JoinStep& j : chain.joins) {
      if (j.build.kind == mt::Source::Kind::kTable) {
        place_build(j.build.index, j.build_col);
      }
    }
  }
  for (uint32_t i = 0; i < parts.size(); ++i) place_input(i);  // leftovers
  for (const auto& pt : parts) query.tables.push_back(&pt);
  HIERDB_RETURN_NOT_OK(query.Validate(opts.nodes));

  cluster::ClusterOptions co;
  co.nodes = opts.nodes;
  co.threads_per_node = opts.threads_per_node;
  co.strategy = opts.strategy;
  co.ctx = ctx.get();
  co.global_lb = opts.global_lb;
  co.cache_stolen_fragments = opts.cache_stolen_fragments;
  co.serialize_chains = opts.apply_h2;
  co.vectorized = opts.vectorized;
  if (fc.injector != nullptr) {
    // Chaos: arm fabric/node-loop injection and the detection tier
    // (heartbeats, liveness timeouts, the node-0 progress watchdog) that
    // turns injected failures into typed Unavailable statuses.
    co.injector = fc.injector;
    co.detect_faults = true;
    co.heartbeat_us = opts.heartbeat_us;
    co.liveness_timeout_ms = opts.liveness_timeout_ms;
  }
  if (opts.buckets) co.buckets = opts.buckets;
  if (opts.morsel_rows) co.morsel_rows = opts.morsel_rows;
  if (opts.batch_rows) co.batch_rows = opts.batch_rows;
  if (opts.queue_capacity) co.queue_capacity = opts.queue_capacity;
  if (opts.steal_batch) co.steal_batch = opts.steal_batch;
  if (opts.min_steal) co.min_steal = opts.min_steal;
  co.recorder = recorder_.get();
  co.recorder_query = fc.query_seq;
  std::vector<std::unique_ptr<obs::RowCapture>> cap_sinks;
  cap_sinks.reserve(p.captures.size());
  for (const auto& cs : p.captures) {
    cap_sinks.push_back(
        std::make_unique<obs::RowCapture>(session_options_.capture_rows));
    co.captures.push_back({cs.chain, cs.point, cap_sinks.back().get()});
  }
  if (opts.strategy == Strategy::kFP && opts.fp_error_rate > 0) {
    uint32_t ops = cluster::ClusterExecutor::CompiledOpCount(query);
    Rng rng(opts.seed ^ 0x9E3779B97F4A7C15ULL);
    co.fp_cost_distortion.resize(ops);
    for (double& d : co.fp_cost_distortion) {
      d = 1.0 + opts.fp_error_rate * (2.0 * rng.NextDouble() - 1.0);
    }
  }

  obs::TraceSink sink;
  if (opts.trace) {
    co.trace = &sink;
    obs::TraceEvent rent;
    rent.kind = obs::EventKind::kPoolRent;
    rent.start_ns = rent.end_ns = sink.NowNs();
    rent.detail = opts.use_shared_pool ? 1 : 0;
    sink.RecordShared(rent);
    obs::TraceEvent sched;
    sched.kind = obs::EventKind::kSchedule;
    sched.start_ns = sched.end_ns = sink.NowNs();
    sched.detail = static_cast<uint64_t>(queue_wait_ms * 1e6);
    sink.RecordShared(sched);
  }

  cluster::ClusterExecutor executor(co);
  cluster::ClusterStats stats;
  QueryResult qr;
  const uint64_t faults_before =
      fc.injector != nullptr ? fc.injector->counters().total() : 0;
  auto t0 = std::chrono::steady_clock::now();
  auto got = executor.Execute(query, &stats,
                              opts.materialize ? &qr.rows : nullptr);
  double wall = WallSince(t0);
  if (opts.trace) {
    obs::TraceEvent ret;
    ret.kind = obs::EventKind::kPoolReturn;
    ret.start_ns = ret.end_ns = sink.NowNs();
    ret.detail = opts.use_shared_pool ? 1 : 0;
    sink.RecordShared(ret);
    RecordFaultInstants(sink, fc.injector, fc.attempt, fc.fallback,
                        faults_before);
  }
  if (!got.ok()) {
    if (got.status().code() == StatusCode::kCancelled) {
      uint64_t acts = 0;
      for (uint64_t b : stats.busy_per_node) acts += b;
      return Status::Cancelled(
          got.status().message() + " [partial: acts=" + std::to_string(acts) +
          " filtered=" + std::to_string(stats.rows_filtered) + "]");
    }
    return got.status();
  }

  ExecutionReport rep;
  rep.backend = Backend::kCluster;
  rep.strategy = opts.strategy;
  rep.wall_seconds = wall;
  rep.response_ms = wall * 1000.0;
  rep.has_result = true;
  rep.result_rows = got.value().count;
  rep.result_checksum = got.value().checksum;
  rep.pipeline_bytes = stats.dataflow_bytes;
  rep.lb_bytes = stats.lb_bytes;
  rep.steals = stats.steals;
  rep.stolen_activations = stats.stolen_activations;
  rep.intermediate_rows = stats.intermediate_rows;
  rep.intermediate_bytes = stats.intermediate_bytes;
  for (uint64_t w : stats.idle_waits_per_node) rep.idle_waits += w;
  for (uint64_t b : stats.busy_per_node) rep.activations += b;
  rep.imbalance = stats.NodeImbalance();
  rep.rows_filtered = stats.rows_filtered;
  rep.aggregated = p.has_agg;
  rep.agg_groups = stats.agg_groups;
  rep.agg_partials = stats.agg_partials;
  rep.agg_repartition_bytes = stats.agg_repartition_bytes;
  rep.cluster = stats;
  rep.rows_prefiltered = p.prefiltered_rows;
  std::vector<double> est = EstimateChainRows(p.mtplan, p.filter_pass, p.tables);
  rep.chain_cards = MakeChainCards(est, &stats.rows_per_chain);
  for (size_t i = 0; i < cap_sinks.size(); ++i) {
    rep.captures.push_back(cap_sinks[i]->Take(
        p.captures[i].name, p.captures[i].chain, p.captures[i].point));
  }
  if (opts.trace) {
    auto qt = std::make_shared<obs::QueryTrace>();
    qt->backend = "cluster";
    qt->strategy = StrategyName(opts.strategy);
    qt->response_ms = rep.response_ms;
    qt->nodes = co.nodes;
    qt->workers_per_node = co.threads_per_node;
    qt->ops = ClusterTraceOps(p.mtplan, p.filter_pass, p.tables, p.cat, est,
                              stats.rows_per_chain);
    qt->chains = rep.chain_cards;
    qt->events = sink.Drain();
    rep.trace = std::move(qt);
  }
  if (opts.validate) {
    std::vector<std::unique_ptr<obs::RowCapture>> ref_sinks;
    std::vector<mt::CaptureSink> ref_caps;
    ref_sinks.reserve(p.captures.size());
    for (const auto& cs : p.captures) {
      ref_sinks.push_back(
          std::make_unique<obs::RowCapture>(session_options_.capture_rows));
      ref_caps.push_back({cs.chain, cs.point, ref_sinks.back().get()});
    }
    auto ref = cluster::ReferenceExecute(query, ref_caps);
    HIERDB_RETURN_NOT_OK(ref.status());
    rep.validated = true;
    rep.reference_rows = ref.value().count;
    rep.reference_match = ref.value() == got.value();
    rep.captures_match = true;
    for (size_t i = 0; i < ref_sinks.size(); ++i) {
      obs::CaptureResult rc = ref_sinks[i]->Take(
          p.captures[i].name, p.captures[i].chain, p.captures[i].point);
      if (!rep.captures[i].SameRows(rc)) rep.captures_match = false;
    }
  }
  if (opts.materialize) {
    qr.materialized = true;
    rep.materialized = true;
    rep.materialized_rows = qr.rows.rows();
    rep.materialized_bytes = qr.rows.bytes();
  }
  qr.report = std::move(rep);
  return qr;
}

Result<std::string> Session::Explain(const Query& q,
                                     const ExecOptions& opts) const {
  HIERDB_RETURN_NOT_OK(ValidateOptions(opts));
  Planned p;
  HIERDB_RETURN_NOT_OK(PlanQuery(q, opts, /*want_real=*/true, &p));

  std::ostringstream os;
  os << "query: " << p.cat.size() << " relations, " << p.tree.num_joins()
     << " joins (" << (q.is_chain() ? "chain" : "graph") << " form)";
  if (!q.filters_.empty()) os << ", " << q.filters_.size() << " filters";
  if (p.has_agg) os << ", aggregated";
  os << "\n";
  os << "backend: " << BackendName(opts.backend) << ", strategy "
     << StrategyName(opts.strategy) << ", machine " << opts.nodes << "x"
     << opts.threads_per_node << "\n\n";
  os << "join tree (cost " << p.tree.cost << "):\n"
     << p.tree.ToString(p.cat) << "\n";
  os << "parallel execution plan (simulated backend):\n"
     << p.pplan.ToString() << "\n";
  os << "pipeline plan (threads/cluster backends):\n";
  if (p.has_real) {
    os << p.mtplan.ToString();
    if (opts.backend == Backend::kCluster && p.mtplan.chains.size() > 1) {
      os << "cluster note: all " << p.mtplan.chains.size()
         << " chains execute distributed ("
         << (opts.apply_h2 ? "back-to-back" : "concurrent where independent")
         << "); intermediates stay on their producing nodes and repartition "
            "to the consuming join via tuple-batch shipping\n";
    }
  } else {
    os << "unavailable: " << p.real_gap << "\n";
  }
  return os.str();
}

Result<std::string> Session::ExplainDot(const Query& q,
                                        const ExecOptions& opts) const {
  HIERDB_RETURN_NOT_OK(ValidateOptions(opts));
  Planned p;
  HIERDB_RETURN_NOT_OK(
      PlanQuery(q, opts, opts.backend != Backend::kSimulated, &p));

  // An estimate-only QueryTrace (no events): the same plan graph a traced
  // execution carries, so the DOT shape matches what PlanDot renders from
  // ExecutionReport::trace — minus the actuals and span annotations.
  obs::QueryTrace qt;
  qt.backend = BackendName(opts.backend);
  qt.strategy = StrategyName(opts.strategy);
  qt.nodes = opts.nodes;
  qt.workers_per_node = opts.threads_per_node;
  if (opts.backend == Backend::kSimulated) {
    qt.ops = SimTraceOps(p.pplan);
  } else {
    if (!p.has_real) return Status::InvalidArgument(p.real_gap);
    std::vector<double> est =
        EstimateChainRows(p.mtplan, p.filter_pass, p.tables);
    qt.ops =
        opts.backend == Backend::kThreads
            ? ThreadsTraceOps(p.mtplan, p.filter_pass, p.tables, p.cat, est, {})
            : ClusterTraceOps(p.mtplan, p.filter_pass, p.tables, p.cat, est, {});
    qt.chains = MakeChainCards(est, nullptr);
  }
  return obs::PlanDot(qt);
}

SessionMetrics Session::MetricsSnapshot() const {
  SessionMetrics m;
  if (scheduler_ != nullptr) m.scheduler = scheduler_->stats();
  m.pool = pool_stats();
  m.build_cache = build_cache_.stats();
  if (recorder_ != nullptr) m.recorder = recorder_->stats();
  m.queries = exec_hist_.Count();
  m.exec_mean_ms = exec_hist_.MeanMs();
  m.exec_p50_ms = exec_hist_.PercentileMs(0.50);
  m.exec_p95_ms = exec_hist_.PercentileMs(0.95);
  m.exec_p99_ms = exec_hist_.PercentileMs(0.99);
  m.queue_mean_ms = queue_hist_.MeanMs();
  m.queue_p50_ms = queue_hist_.PercentileMs(0.50);
  m.queue_p95_ms = queue_hist_.PercentileMs(0.95);
  m.queue_p99_ms = queue_hist_.PercentileMs(0.99);
  return m;
}

void Session::RecordCompletion(double queue_ms, double exec_ms) const {
  queue_hist_.Record(queue_ms);
  exec_hist_.Record(exec_ms);
  uint64_t n = completions_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!session_options_.metrics_export_path.empty()) {
    uint32_t every = std::max(1u, session_options_.metrics_export_every);
    if (n % every == 0) ExportMetricsLine();
  }
}

void Session::ExportMetricsLine() const {
  // Serialized so concurrent completions never interleave partial lines;
  // append mode keeps the file a growing JSONL log across snapshots.
  std::lock_guard<std::mutex> lock(metrics_export_mu_);
  std::ofstream out(session_options_.metrics_export_path, std::ios::app);
  if (!out) return;
  out << MetricsSnapshot().ToJson() << "\n";
}

Result<std::string> Session::DumpForensics(const std::string& reason) {
  if (session_options_.forensics_dir.empty()) {
    return Status::FailedPrecondition(
        "SessionOptions::forensics_dir is not set");
  }
  std::string dir = WriteForensicBundle(reason, /*query_seq=*/0,
                                        /*planned=*/nullptr, /*opts=*/nullptr,
                                        /*captures=*/nullptr,
                                        /*counted=*/false);
  if (dir.empty()) {
    return Status::Internal("could not create the forensic bundle under '" +
                            session_options_.forensics_dir + "'");
  }
  return dir;
}

std::string Session::WriteForensicBundle(
    const std::string& reason, uint64_t query_seq, const Planned* planned,
    const ExecOptions* opts,
    const std::vector<obs::CaptureResult>* captures, bool counted) const {
  if (session_options_.forensics_dir.empty()) return "";
  uint32_t n = 0;
  {
    std::lock_guard<std::mutex> lock(forensics_mu_);
    if (counted &&
        forensic_counted_ >= session_options_.forensics_max_bundles) {
      return "";
    }
    if (counted) ++forensic_counted_;
    n = forensic_bundles_++;
  }
  const std::string dir = session_options_.forensics_dir + "/bundle-" +
                          std::to_string(query_seq) + "-" + std::to_string(n);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "";
  std::vector<const char*> files;
  auto write = [&](const char* name, const std::string& body) {
    std::ofstream out(dir + "/" + name, std::ios::trunc);
    if (out) {
      out << body;
      files.push_back(name);
    }
  };

  // flight.json — the black box through the standard Chrome-trace
  // exporter, so chrome://tracing and ValidateChromeTraceJson treat the
  // ring snapshot like any per-query trace.
  obs::QueryTrace flight;
  flight.backend = "recorder";
  if (recorder_ != nullptr) flight.events = recorder_->Snapshot();
  write("flight.json", obs::ChromeTraceJson(flight));

  // plan.json — the implicated query's plan graph (anomaly dumps; an
  // explicit DumpForensics has no query at hand).
  if (planned != nullptr && opts != nullptr && planned->has_real) {
    obs::QueryTrace qt;
    qt.backend = BackendName(opts->backend);
    qt.strategy = StrategyName(opts->strategy);
    qt.nodes = opts->nodes;
    qt.workers_per_node = opts->threads_per_node;
    std::vector<double> est = EstimateChainRows(
        planned->mtplan, planned->filter_pass, planned->tables);
    qt.ops = opts->backend == Backend::kCluster
                 ? ClusterTraceOps(planned->mtplan, planned->filter_pass,
                                   planned->tables, planned->cat, est, {})
                 : ThreadsTraceOps(planned->mtplan, planned->filter_pass,
                                   planned->tables, planned->cat, est, {});
    qt.chains = MakeChainCards(est, nullptr);
    write("plan.json", obs::PlanJson(qt));
  }

  write("metrics.json", MetricsSnapshot().ToJson());

  // captures.json — the bounded plan-point row samples, reference-
  // comparable offline (the selection rule is backend-independent).
  if (captures != nullptr && !captures->empty()) {
    std::ostringstream os;
    os << "{\"captures\":[";
    for (size_t i = 0; i < captures->size(); ++i) {
      const obs::CaptureResult& c = (*captures)[i];
      os << (i ? "," : "") << "{\"name\":\"" << c.name
         << "\",\"chain\":" << c.chain << ",\"point\":" << c.point
         << ",\"width\":" << c.width << ",\"offered\":" << c.offered
         << ",\"rows\":[";
      for (size_t r = 0; r < c.rows.size(); ++r) {
        os << (r ? "," : "") << "[";
        for (size_t j = 0; j < c.rows[r].size(); ++j) {
          os << (j ? "," : "") << c.rows[r][j];
        }
        os << "]";
      }
      os << "]}";
    }
    os << "]}";
    write("captures.json", os.str());
  }

  std::ostringstream os;
  os << "{\"reason\":\"" << reason << "\",\"query\":" << query_seq
     << ",\"events\":" << flight.events.size() << ",\"files\":[";
  for (size_t i = 0; i < files.size(); ++i) {
    os << (i ? "," : "") << "\"" << files[i] << "\"";
  }
  os << "]}";
  std::ofstream manifest(dir + "/manifest.json", std::ios::trunc);
  if (manifest) manifest << os.str();
  return dir;
}

}  // namespace hierdb::api
