// api::Scheduler — the session's admission controller and dispatcher
// (internal; the public surface is QueryHandle/SessionOptions in
// session.h).
//
// Submit hands the scheduler an already-planned query as a closure plus
// its optimizer plan cost. The scheduler admits it into a bounded queue
// (ResourceExhausted beyond SessionOptions::max_queued), and a fixed pool
// of max_concurrent_queries dispatcher threads pops queued queries in
// admission order — FIFO or shortest-cost-first — and runs them. The
// worker pool is the reusable per-backend resource: executors themselves
// are per-run objects, so queries running on different workers share
// nothing but the session's immutable catalog/tables and genuinely
// overlap.
//
// Cancellation races are resolved by the per-query state mutex: a queued
// query cancels instantly (the worker sweeps the dead entry); a running
// query gets its stop token raised and completes with Status::Cancelled
// once the executor's workers observe it (checked per activation batch).
// A cancel that races completion may still deliver the finished result —
// cancellation is best-effort by design.

#ifndef HIERDB_API_SCHEDULER_H_
#define HIERDB_API_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "api/session.h"
#include "common/status.h"

namespace hierdb::api {

namespace internal {

/// Shared state behind one QueryHandle.
struct QueryState {
  std::mutex mu;
  std::condition_variable cv;
  enum class Phase { kQueued, kRunning, kDone } phase = Phase::kQueued;
  bool taken = false;
  bool cancel_requested = false;  ///< a Cancel already won on this query
  std::optional<Result<QueryResult>> result;

  /// Cooperative stop token, threaded into the executors' worker loops;
  /// raised by QueryHandle::Cancel on a running query.
  std::atomic<bool> stop{false};

  double plan_cost = 0.0;  ///< optimizer cost (shortest-cost-first key)
  uint64_t seq = 0;        ///< admission order (FIFO key, tie-break)
  std::function<Result<QueryResult>(const std::atomic<bool>& stop)> run;
  std::chrono::steady_clock::time_point submitted;
  /// The owning scheduler's cancellation counter (shared so Cancel can
  /// account eagerly even if it outlives the scheduler).
  std::shared_ptr<std::atomic<uint64_t>> cancel_count;
};

}  // namespace internal

class Scheduler {
 public:
  explicit Scheduler(const SessionOptions& options);
  /// Drains: refuses new work and waits for every admitted query.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits `run` (cost `plan_cost`) or completes the returned handle
  /// immediately with ResourceExhausted when the queue is full. `run`
  /// receives the query's stop token (cooperative cancellation).
  QueryHandle Submit(
      double plan_cost,
      std::function<Result<QueryResult>(const std::atomic<bool>&)> run);

  /// A handle already carrying `result` — for validation/planning errors
  /// that never reach the queue.
  static QueryHandle Completed(Result<QueryResult> result);

  SchedulerStats stats() const;

 private:
  void WorkerLoop();
  /// Pops the next dispatchable query per the admission policy; entries
  /// cancelled while queued are dropped (and counted) on the way.
  /// Pre: lock on mu_ held.
  std::shared_ptr<internal::QueryState> PopLocked();

  const SessionOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: queue non-empty or stop
  std::deque<std::shared_ptr<internal::QueryState>> queue_;
  std::vector<std::thread> workers_;  ///< spawned on first Submit
  uint64_t next_seq_ = 1;
  uint64_t next_dispatch_ = 1;
  uint32_t in_flight_ = 0;
  bool stop_ = false;
  SchedulerStats stats_;  ///< cancelled lives in cancel_count_ instead
  /// Bumped by QueryHandle::Cancel the instant it wins, so stats() never
  /// under-reports cancellations that a worker has not yet swept.
  std::shared_ptr<std::atomic<uint64_t>> cancel_count_ =
      std::make_shared<std::atomic<uint64_t>>(0);
};

}  // namespace hierdb::api

#endif  // HIERDB_API_SCHEDULER_H_
