// api::Scheduler — the session's async admission core (internal; the
// public surface is QueryHandle/SessionOptions in session.h).
//
// Submit hands the scheduler an already-planned query as a closure plus
// its optimizer plan cost, deadline and tenant. Admission is entirely
// non-blocking: the caller's thread checks the tenant's queue-depth bound
// (ResourceExhausted per tenant — one full tenant never blocks another),
// enqueues, arms the deadline timer and returns. No thread is spawned or
// parked per query: a single event-loop thread (sched::EventLoop) owns
// the timer wheel and reacts to submit/completion events by pumping the
// admission queue (sched::AdmissionQueue — FIFO, shortest-cost-first,
// earliest-deadline-first or cost-aware EDF, with weighted per-tenant
// in-flight quotas); dispatched queries execute on a small fixed set of
// lane threads bounded by max_concurrent_queries. Ten queries or a
// hundred thousand queued, scheduling costs one reactor thread plus the
// lanes actually executing.
//
// Deadlines (ExecOptions::deadline_ms) arm on the wheel at admission.
// Expiring while queued completes the handle right on the loop thread
// with Status::DeadlineExceeded; expiring mid-execution raises the same
// cooperative stop token Cancel uses, and the lane translates the
// executor's Cancelled into DeadlineExceeded (partial progress counters
// ride along in the status message). A deadline that races completion
// delivers the finished result, like a losing Cancel.
//
// Cancellation races are resolved by the per-query state mutex: a queued
// query cancels instantly (the pump sweeps the dead entry); a running
// query gets its stop token raised and completes with Status::Cancelled
// once the executor's workers observe it (checked per activation batch).
// A cancel that races completion may still deliver the finished result —
// cancellation is best-effort by design.

#ifndef HIERDB_API_SCHEDULER_H_
#define HIERDB_API_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/session.h"
#include "common/status.h"
#include "obs/recorder.h"
#include "sched/admission_queue.h"
#include "sched/event_loop.h"

namespace hierdb::api {

namespace internal {

/// Shared state behind one QueryHandle.
struct QueryState {
  std::mutex mu;
  std::condition_variable cv;
  enum class Phase { kQueued, kRunning, kDone } phase = Phase::kQueued;
  bool taken = false;
  bool cancel_requested = false;  ///< a Cancel already won on this query
  std::optional<Result<QueryResult>> result;

  /// Cooperative stop token, threaded into the executors' worker loops;
  /// raised by QueryHandle::Cancel on a running query — and by the
  /// scheduler's timer wheel when the query's deadline fires mid-run.
  std::atomic<bool> stop{false};
  /// Set (before stop) by the deadline timer so the lane can tell a
  /// deadline stop from a user cancel when the executor returns Cancelled.
  std::atomic<bool> deadline_fired{false};

  double plan_cost = 0.0;  ///< optimizer cost (cost-ordered policies' key)
  double deadline_ms = 0.0;
  uint64_t deadline_ns = 0;  ///< absolute, event-loop clock; 0 = none
  uint32_t tenant = 0;       ///< resolved tenant index (0 = default "")
  uint64_t seq = 0;          ///< admission order (FIFO key, tie-break)
  uint64_t dispatch_seq = 0; ///< assigned when the pump dispatches
  /// Retry state: `attempt` is the 0-based index of the current run;
  /// after an Unavailable failure the lane re-queues the query (with
  /// backoff) while attempt + 1 < max_attempts. The deadline, if any,
  /// stays absolute across attempts.
  uint32_t attempt = 0;
  uint32_t max_attempts = 1;
  double backoff_base_ms = 10.0;
  double backoff_max_ms = 1000.0;
  /// The run closure receives the attempt index so the session layer can
  /// switch the final attempt to the fallback backend, and the query's
  /// admission seq so executor-side flight-recorder events carry the same
  /// query tag the scheduler's own instants do.
  std::function<Result<QueryResult>(const std::atomic<bool>& stop,
                                    uint32_t attempt, uint64_t seq)>
      run;
  std::chrono::steady_clock::time_point submitted;
  std::chrono::steady_clock::time_point dispatched;
  /// The owning scheduler's cancellation counter (shared so Cancel can
  /// account eagerly even if it outlives the scheduler).
  std::shared_ptr<std::atomic<uint64_t>> cancel_count;
};

}  // namespace internal

/// Retry policy for one submission (see ExecOptions::max_retries).
struct RetrySpec {
  uint32_t max_retries = 0;  ///< re-dispatches after the first attempt
  /// Grants one extra final attempt intended for a degraded backend; the
  /// run closure sees it as the last attempt index.
  bool fallback = false;
  double backoff_base_ms = 10.0;
  double backoff_max_ms = 1000.0;

  uint32_t max_attempts() const {
    return 1 + max_retries + (fallback ? 1 : 0);
  }
};

class Scheduler {
 public:
  /// `recorder`, when non-null, receives a flight-recorder instant for
  /// every admission event (submit, tenant reject, deadline arm/fire,
  /// dispatch, retry) — the black box of the admission core. Not owned;
  /// must outlive the scheduler (the session declares it first).
  explicit Scheduler(const SessionOptions& options,
                     obs::FlightRecorder* recorder = nullptr);
  /// Drains: refuses new work and waits for every admitted query.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits `run` (cost `plan_cost`, deadline `deadline_ms` from now — 0
  /// none — billed against `tenant`, "" default) or completes the
  /// returned handle immediately: ResourceExhausted when the tenant's
  /// queue is full, InvalidArgument for an undeclared tenant. Never
  /// blocks and never spawns a per-query thread. `run` receives the
  /// query's stop token (cooperative cancellation and deadlines) and the
  /// 0-based attempt index. Per `retry`, an Unavailable failure releases
  /// the lane and re-queues the query after capped exponential backoff
  /// with deterministic jitter (armed on the same timer wheel as
  /// deadlines); re-admission bypasses the queue-depth bound (the query
  /// was already admitted).
  QueryHandle Submit(
      double plan_cost, double deadline_ms, const std::string& tenant,
      const RetrySpec& retry,
      std::function<Result<QueryResult>(const std::atomic<bool>&, uint32_t,
                                        uint64_t)>
          run);

  /// A handle already carrying `result` — for validation/planning errors
  /// that never reach the queue.
  static QueryHandle Completed(Result<QueryResult> result);

  SchedulerStats stats() const;

 private:
  /// Event-loop reactions. Pump dispatches queued queries into lanes up
  /// to the concurrency limit and per-tenant quotas; OnTimer handles one
  /// expired deadline.
  void Pump();
  void OnTimer(uint64_t id);
  /// A backoff timer fired: re-queue the query for its next attempt
  /// (unless cancel/deadline finished it during the backoff).
  void OnRetryTimer(uint64_t seq);
  /// Marks the pump as pending; returns true when the caller (holding
  /// mu_) should post it after unlocking (coalesces redundant posts).
  bool SchedulePumpLocked();
  void LaneLoop();

  const SessionOptions options_;
  obs::FlightRecorder* const recorder_;  ///< session black box (null ok)

  mutable std::mutex mu_;
  std::condition_variable lane_cv_;   ///< lanes: ready_ non-empty or stop
  std::condition_variable drain_cv_;  ///< destructor: completions
  sched::AdmissionQueue queue_;
  sched::AdmissionQueue::AliveFn alive_;  ///< phase == kQueued
  /// Dispatched queries a lane has not picked up yet (depth bounded by
  /// max_concurrent_queries via in_flight_).
  std::deque<std::shared_ptr<internal::QueryState>> ready_;
  std::vector<std::thread> lanes_;  ///< grown on demand, never beyond limit
  /// Deadline-armed queries by seq; erased at completion or expiry.
  std::unordered_map<uint64_t, std::shared_ptr<internal::QueryState>> armed_;
  /// Queries sitting out a retry backoff, by seq. Their timer ids carry
  /// kRetryTimerBit so deadline and backoff timers for the same query
  /// coexist on the one wheel.
  std::unordered_map<uint64_t, std::shared_ptr<internal::QueryState>>
      retry_armed_;
  static constexpr uint64_t kRetryTimerBit = 1ull << 63;
  uint64_t next_seq_ = 1;
  uint64_t next_dispatch_ = 1;
  uint32_t in_flight_ = 0;
  bool stop_ = false;
  bool pump_posted_ = false;
  /// Online run-time calibration for cost-aware EDF: EWMA of observed
  /// exec-ms per unit plan cost over completed queries.
  double ms_per_cost_ = 1e-3;
  uint64_t cost_samples_ = 0;
  SchedulerStats stats_;  ///< cancelled lives in cancel_count_ instead
  struct TenantCounters {
    uint64_t submitted = 0;
    uint64_t rejected = 0;
    uint64_t deadline_missed = 0;
  };
  std::vector<TenantCounters> tenant_counters_;
  /// Bumped by QueryHandle::Cancel the instant it wins, so stats() never
  /// under-reports cancellations the pump has not yet swept.
  std::shared_ptr<std::atomic<uint64_t>> cancel_count_ =
      std::make_shared<std::atomic<uint64_t>>(0);
  /// Declared last: destroyed first, joining the reactor thread before
  /// the state it pumps goes away. (Lane threads join in ~Scheduler.)
  sched::EventLoop loop_;
};

}  // namespace hierdb::api

#endif  // HIERDB_API_SCHEDULER_H_
