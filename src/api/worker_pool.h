// api::WorkerPool — the session-wide worker pool behind
// ExecOptions::use_shared_pool.
//
// One pool, sized to the machine (SessionOptions::pool_threads, default
// hardware_concurrency), serves every concurrent query of a session.
// Executions *rent* workers instead of spawning threads:
//
//   - Rent() returns a per-query ExecContext. Its SpawnWorkers(n, body)
//     registers a "team" of n worker slots; pool threads claim and run
//     slots FIFO across teams, and the renting caller (the scheduler's
//     dispatcher thread) claims its own team's slots too — so every query
//     always owns at least one thread and progress never depends on pool
//     capacity. Total OS threads stay ~pool size + dispatchers no matter
//     how many queries overlap, where the spawn path creates
//     queries x threads_per_node. Gang teams (SpawnWorkers(..., gang =
//     true): the cluster's mutually dependent node loops) are the
//     exception — sharing pooled threads one slot at a time could
//     deadlock them, so they run on dedicated threads (counted in
//     PoolStats::gang_threads) while still parking/stealing through the
//     context.
//
//   - Cross-query load balancing: an execution publishes a steal hook
//     ("run one of my activations"); idle pool threads and parked workers
//     of *other* executions invoke it. This extends the paper's
//     intra-query load-balancing hierarchy (local queues, then global
//     steals) with a third, cross-query level: a lone query can soak up
//     the whole pool even when it rented few workers, and a finished
//     query's threads immediately drain its neighbors' queues.
//
// Teardown contract: the pool outlives every context it rented (the
// Session destroys its scheduler — draining all queries — before the
// pool). ClearStealHook / context destruction block until in-flight hook
// calls drain, so an executor may free its run state right after.

#ifndef HIERDB_API_WORKER_POOL_H_
#define HIERDB_API_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/exec_context.h"
#include "fault/fault.h"
#include "obs/recorder.h"

namespace hierdb::api {

/// Lifetime counters of a session's worker pool (plus the legacy spawn
/// path's thread count, for the pool-vs-spawn A/B in benches).
struct PoolStats {
  uint32_t pool_threads = 0;   ///< fixed pool size
  uint64_t pool_tasks = 0;     ///< worker bodies run by pool threads
  uint64_t caller_tasks = 0;   ///< worker bodies run by renting callers
  uint64_t foreign_steals = 0; ///< cross-query activations stolen
  /// Dedicated threads created for gang teams (cluster node loops, whose
  /// mutually dependent bodies cannot share pooled threads safely).
  uint64_t gang_threads = 0;
  /// Threads created by ThreadSpawnContext executions of the same session
  /// (ExecOptions::use_shared_pool = false); the pool itself creates
  /// pool_threads threads once, ever. Maintained by the session (the
  /// spawn path never touches the pool), merged in Session::pool_stats.
  uint64_t spawned_threads = 0;
  /// Worker bodies skipped by injected worker death (chaos testing).
  uint64_t worker_deaths = 0;
};

class WorkerPool {
 public:
  /// `threads` == 0 is normalized to 1. `recorder`, when non-null, gets a
  /// flight-recorder instant per rent/return/foreign-steal/worker-death
  /// (obs/recorder.h; not owned, must outlive the pool).
  explicit WorkerPool(uint32_t threads,
                      obs::FlightRecorder* recorder = nullptr);
  ~WorkerPool();  // joins; requires all rented contexts destroyed

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  uint32_t threads() const { return static_cast<uint32_t>(threads_.size()); }
  PoolStats stats() const;

  /// A per-execution context renting this pool's workers. `stop` is the
  /// execution's cancellation token (may be null). `injector`, when
  /// armed, may kill a pool thread as it picks up one of this context's
  /// worker slots: the thread drops the slot without running the body and
  /// the slot is re-queued for another (possibly the same) claimer —
  /// death with recovery. Every body still runs exactly once, so teams
  /// whose slots each own essential work (per-partition merges) stay
  /// correct; renting callers and gang bodies are never killed.
  std::unique_ptr<ExecContext> Rent(const std::atomic<bool>* stop,
                                    fault::FaultInjector* injector = nullptr);

 private:
  class Context;

  /// One SpawnWorkers call: n slots, claimed by pool threads and the
  /// renting caller; `unfinished` counts bodies not yet returned.
  struct Team {
    const std::function<void(uint32_t)>* body = nullptr;
    uint32_t total = 0;
    uint32_t next = 0;  ///< next unclaimed slot
    uint32_t unfinished = 0;
    /// Fault injection for this team's execution (null = none).
    fault::FaultInjector* injector = nullptr;
    /// Slots dropped by a "dying" pool thread, waiting to be re-claimed.
    std::vector<uint32_t> requeued;
    bool has_slot() const { return next < total || !requeued.empty(); }
  };

  void ThreadLoop();
  /// Runs one foreign activation via some renter's steal hook (skipping
  /// `skip`, the caller's own context). Returns true iff work ran.
  bool StealForeign(const Context* skip);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< pool threads: slots or stop
  std::condition_variable team_cv_;  ///< renters: team completion
  std::condition_variable hook_cv_;  ///< hook-drain waiters
  std::vector<std::shared_ptr<Team>> teams_;
  std::vector<Context*> renters_;
  uint32_t hooked_renters_ = 0;  ///< renters with a registered steal hook
  size_t steal_rr_ = 0;  ///< round-robin cursor over renters
  bool stop_ = false;
  obs::FlightRecorder* recorder_ = nullptr;  ///< session black box (null ok)

  uint64_t pool_tasks_ = 0;
  uint64_t caller_tasks_ = 0;
  uint64_t foreign_steals_ = 0;
  uint64_t gang_threads_ = 0;
  uint64_t worker_deaths_ = 0;

  std::vector<std::thread> threads_;  ///< declared last: joined first
};

}  // namespace hierdb::api

#endif  // HIERDB_API_WORKER_POOL_H_
