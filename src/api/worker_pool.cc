#include "api/worker_pool.h"

#include <algorithm>
#include <chrono>

namespace hierdb::api {

// ---------------------------------------------------------------------------
// The per-execution rented context.

class WorkerPool::Context final : public ExecContext {
 public:
  Context(WorkerPool* pool, const std::atomic<bool>* stop,
          fault::FaultInjector* injector)
      : pool_(pool), stop_(stop), injector_(injector) {
    if (pool_->recorder_ != nullptr) {
      pool_->recorder_->Instant(obs::EventKind::kPoolRent, 0,
                                pool_->threads());
    }
    std::lock_guard<std::mutex> lock(pool_->mu_);
    pool_->renters_.push_back(this);
  }

  ~Context() override {
    if (pool_->recorder_ != nullptr) {
      pool_->recorder_->Instant(obs::EventKind::kPoolReturn, 0, 0);
    }
    std::unique_lock<std::mutex> lock(pool_->mu_);
    if (hook_) --pool_->hooked_renters_;
    hook_ = nullptr;
    auto& rs = pool_->renters_;
    rs.erase(std::find(rs.begin(), rs.end(), this));
    pool_->hook_cv_.wait(lock, [&] { return hook_inflight_ == 0; });
  }

  void SpawnWorkers(uint32_t n, const std::function<void(uint32_t)>& body,
                    bool gang) override {
    if (n == 0) return;
    if (gang) {
      // Gang bodies (the cluster's node loops) are mutually dependent:
      // claiming them one at a time from a shared pool can deadlock the
      // moment fewer threads than bodies are available, so they get
      // dedicated threads. They still Park into cross-query stealing and
      // still honor the stop token; pool-reserved gang scheduling is a
      // recorded follow-up.
      {
        std::lock_guard<std::mutex> lock(pool_->mu_);
        pool_->gang_threads_ += n;
      }
      std::vector<std::thread> threads;
      threads.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        threads.emplace_back([&body, i] { body(i); });
      }
      for (auto& t : threads) t.join();
      return;
    }
    auto team = std::make_shared<Team>();
    team->body = &body;
    team->total = n;
    team->unfinished = n;
    if (injector_ != nullptr && injector_->plan().worker_death_prob > 0.0) {
      team->injector = injector_;
    }
    {
      std::lock_guard<std::mutex> lock(pool_->mu_);
      pool_->teams_.push_back(team);
    }
    pool_->work_cv_.notify_all();
    // The renting caller participates: it keeps claiming its own team's
    // slots until none are unclaimed. This guarantees every execution at
    // least one thread regardless of pool load (a fully busy pool simply
    // leaves all n slots to the caller, which runs them in sequence —
    // bodies of an already-finished execution return immediately).
    for (;;) {
      uint32_t idx;
      {
        std::lock_guard<std::mutex> lock(pool_->mu_);
        if (!team->requeued.empty()) {
          idx = team->requeued.back();
          team->requeued.pop_back();
        } else if (team->next < team->total) {
          idx = team->next++;
        } else {
          break;
        }
      }
      body(idx);
      std::lock_guard<std::mutex> lock(pool_->mu_);
      ++pool_->caller_tasks_;
      if (--team->unfinished == 0) pool_->team_cv_.notify_all();
    }
    std::unique_lock<std::mutex> lock(pool_->mu_);
    pool_->team_cv_.wait(lock, [&] { return team->unfinished == 0; });
    auto& ts = pool_->teams_;
    ts.erase(std::find(ts.begin(), ts.end(), team));
  }

  bool Park() override { return pool_->StealForeign(this); }

  void SetStealHook(std::function<bool()> hook) override {
    {
      std::lock_guard<std::mutex> lock(pool_->mu_);
      // Track hooked-renter transitions in both directions (setting a
      // null hook unpublishes, though only ClearStealHook also drains
      // in-flight calls).
      if (hook_ && !hook) --pool_->hooked_renters_;
      if (!hook_ && hook) ++pool_->hooked_renters_;
      hook_ = std::move(hook);
    }
    // Idle pool threads park indefinitely when nothing is stealable;
    // a new hook is new potential work.
    pool_->work_cv_.notify_all();
  }

  void ClearStealHook() override {
    std::unique_lock<std::mutex> lock(pool_->mu_);
    if (hook_) --pool_->hooked_renters_;
    hook_ = nullptr;
    pool_->hook_cv_.wait(lock, [&] { return hook_inflight_ == 0; });
  }

  uint32_t GuestSlots() const override {
    // Possible concurrent hook callers: every pool thread plus parked
    // workers of other executions (each runs on a pool thread or on a
    // renting caller). A small headroom over the pool size covers the
    // caller threads; an exhausted slot set just makes a steal attempt
    // return false.
    return pool_->threads() + 8;
  }

  bool StopRequested() const override {
    return stop_ != nullptr && stop_->load(std::memory_order_acquire);
  }

 private:
  friend class WorkerPool;

  WorkerPool* pool_;
  const std::atomic<bool>* stop_;
  fault::FaultInjector* injector_;
  // Guarded by pool_->mu_.
  std::function<bool()> hook_;
  uint32_t hook_inflight_ = 0;
};

// ---------------------------------------------------------------------------
// Pool.

WorkerPool::WorkerPool(uint32_t threads, obs::FlightRecorder* recorder)
    : recorder_(recorder) {
  if (threads == 0) threads = 1;
  threads_.reserve(threads);
  for (uint32_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { ThreadLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

PoolStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolStats s;
  s.pool_threads = static_cast<uint32_t>(threads_.size());
  s.pool_tasks = pool_tasks_;
  s.caller_tasks = caller_tasks_;
  s.foreign_steals = foreign_steals_;
  s.gang_threads = gang_threads_;
  s.worker_deaths = worker_deaths_;
  return s;
}

std::unique_ptr<ExecContext> WorkerPool::Rent(const std::atomic<bool>* stop,
                                              fault::FaultInjector* injector) {
  return std::make_unique<Context>(this, stop, injector);
}

void WorkerPool::ThreadLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    // Claim a worker slot, FIFO across teams (admission order);
    // death-requeued slots of a team go first.
    std::shared_ptr<Team> team;
    uint32_t idx = 0;
    for (auto& t : teams_) {
      if (t->has_slot()) {
        team = t;
        if (!t->requeued.empty()) {
          idx = t->requeued.back();
          t->requeued.pop_back();
        } else {
          idx = t->next++;
        }
        break;
      }
    }
    if (team != nullptr) {
      // Injected worker death: the thread drops the slot without running
      // the body and re-queues it for another claimer (the renting
      // caller, a peer, or this same thread's next beat) — so every body
      // still runs exactly once and progress is preserved.
      if (team->injector != nullptr && team->injector->ShouldKillWorker()) {
        team->requeued.push_back(idx);
        ++worker_deaths_;
        if (recorder_ != nullptr) {
          recorder_->Instant(obs::EventKind::kWorkerDeath, 0, idx);
        }
        work_cv_.notify_all();
        team_cv_.notify_all();  // wake the renting caller to reclaim
        continue;
      }
      ++pool_tasks_;
      lock.unlock();
      (*team->body)(idx);
      lock.lock();
      if (--team->unfinished == 0) team_cv_.notify_all();
      continue;
    }
    // No unclaimed slots. With no steal hooks registered either, there is
    // nothing a pool thread could possibly do: park until a team or hook
    // arrives (an idle session burns no CPU). Otherwise lend the beat to
    // some in-flight execution and poll at a steal cadence.
    if (hooked_renters_ == 0) {
      work_cv_.wait(lock, [&] {
        if (stop_ || hooked_renters_ > 0) return true;
        for (auto& t : teams_) {
          if (t->has_slot()) return true;
        }
        return false;
      });
      continue;
    }
    lock.unlock();
    bool stole = StealForeign(nullptr);
    lock.lock();
    if (stole) continue;
    work_cv_.wait_for(lock, std::chrono::microseconds(500));
  }
}

bool WorkerPool::StealForeign(const Context* skip) {
  Context* target = nullptr;
  std::function<bool()> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = renters_.size();
    for (size_t i = 0; i < n && target == nullptr; ++i) {
      Context* c = renters_[steal_rr_++ % n];
      if (c == skip || !c->hook_) continue;
      target = c;
      hook = c->hook_;  // copy: survives a concurrent ClearStealHook
      ++c->hook_inflight_;
    }
  }
  if (target == nullptr) return false;
  // The target context cannot be destroyed while hook_inflight_ > 0 (its
  // destructor and ClearStealHook wait on hook_cv_), so calling the hook
  // and decrementing below are safe.
  bool ran = hook();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (--target->hook_inflight_ == 0) hook_cv_.notify_all();
    if (ran) ++foreign_steals_;
  }
  if (ran && recorder_ != nullptr) {
    // detail = 1 activation ran; worker -1 (not slot-scoped).
    recorder_->Instant(obs::EventKind::kSteal, 0, 1);
  }
  return ran;
}

}  // namespace hierdb::api
