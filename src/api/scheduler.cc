#include "api/scheduler.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace hierdb::api {

namespace {

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::string FmtMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", ms);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// QueryHandle

void QueryHandle::Wait() const {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] {
    return state_->phase == internal::QueryState::Phase::kDone;
  });
}

bool QueryHandle::Done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->phase == internal::QueryState::Phase::kDone;
}

bool QueryHandle::Cancel() {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->cancel_requested) return false;  // only one cancel wins
  if (state_->phase == internal::QueryState::Phase::kQueued) {
    state_->cancel_requested = true;
    state_->phase = internal::QueryState::Phase::kDone;
    state_->run = nullptr;
    state_->result = Status::Cancelled("query cancelled before dispatch");
    if (state_->cancel_count != nullptr) {
      state_->cancel_count->fetch_add(1, std::memory_order_relaxed);
    }
    state_->cv.notify_all();
    return true;
  }
  if (state_->phase == internal::QueryState::Phase::kRunning) {
    // Cooperative: raise the stop token; the executor's workers observe
    // it per activation batch and the run returns Status::Cancelled. If
    // the query finishes first, its result is delivered anyway
    // (best-effort cancellation).
    state_->cancel_requested = true;
    state_->stop.store(true, std::memory_order_release);
    if (state_->cancel_count != nullptr) {
      state_->cancel_count->fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }
  return false;  // already done
}

Result<QueryResult> QueryHandle::Take() {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("Take on an empty QueryHandle");
  }
  Wait();
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->taken) {
    return Status::FailedPrecondition("query result already taken");
  }
  state_->taken = true;
  return *std::move(state_->result);
}

// ---------------------------------------------------------------------------
// Scheduler

namespace {

// A zero concurrency limit would admit queries no lane ever runs (Take
// would hang forever), and a zero queue depth would reject every Submit —
// even on an idle session — because dispatch always passes through the
// queue. Treat both as 1, the minimal working configuration.
SessionOptions Normalize(SessionOptions o) {
  if (o.max_concurrent_queries == 0) o.max_concurrent_queries = 1;
  if (o.max_queued == 0) o.max_queued = 1;
  return o;
}

sched::OrderPolicy ToOrderPolicy(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kFifo:
      return sched::OrderPolicy::kFifo;
    case AdmissionPolicy::kShortestCostFirst:
      return sched::OrderPolicy::kShortestCostFirst;
    case AdmissionPolicy::kEarliestDeadlineFirst:
      return sched::OrderPolicy::kEarliestDeadlineFirst;
    case AdmissionPolicy::kCostAwareEdf:
      return sched::OrderPolicy::kCostAwareEdf;
  }
  return sched::OrderPolicy::kFifo;
}

/// Turns SessionOptions tenants into resolved limits: the default ""
/// tenant always exists (index 0, weight 1 unless overridden), weights
/// divide max_concurrent_queries into floored shares of at least 1, and
/// a zero per-tenant queue bound inherits the session's.
///
/// The floor of 1 means the shares oversubscribe whenever there are more
/// tenants than max_concurrent_queries. The global in_flight_ cap in
/// Pump() still bounds total concurrency, but weighted isolation then
/// degrades toward first-come-first-served among tenants (documented on
/// SessionOptions::tenants). Deliberate: rejecting such configurations
/// would make adding a tenant a breaking change for small sessions, and
/// a share of 0 would starve that tenant outright.
std::vector<sched::TenantLimits> ResolveTenants(const SessionOptions& o) {
  std::vector<sched::TenantLimits> out;
  sched::TenantLimits def;
  def.name = "";
  def.weight = 1;
  def.max_queued = o.max_queued;
  out.push_back(def);
  for (const TenantOptions& t : o.tenants) {
    const uint32_t w = std::max<uint32_t>(t.weight, 1);
    const uint32_t q = t.max_queued != 0 ? t.max_queued : o.max_queued;
    if (t.name.empty()) {  // explicit override of the default tenant
      out[0].weight = w;
      out[0].max_queued = q;
      continue;
    }
    sched::TenantLimits l;
    l.name = t.name;
    l.weight = w;
    l.max_queued = q;
    out.push_back(std::move(l));
  }
  uint64_t total_w = 0;
  for (const auto& l : out) total_w += l.weight;
  for (auto& l : out) {
    l.max_inflight = std::max<uint32_t>(
        1, static_cast<uint32_t>(
               static_cast<uint64_t>(o.max_concurrent_queries) * l.weight /
               total_w));
  }
  return out;
}

}  // namespace

Scheduler::Scheduler(const SessionOptions& options)
    : options_(Normalize(options)),
      queue_(ToOrderPolicy(options_.admission), options_.scf_aging_ms,
             ResolveTenants(options_)),
      alive_([](const sched::QueueItem& item) {
        auto st = std::static_pointer_cast<internal::QueryState>(item.payload);
        std::lock_guard<std::mutex> slock(st->mu);
        return st->phase == internal::QueryState::Phase::kQueued;
      }),
      tenant_counters_(queue_.tenant_count()),
      loop_([this](uint64_t seq) { OnTimer(seq); }) {}

Scheduler::~Scheduler() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Completions signal drain_cv_; queued cancels and expiries can empty
    // the queue without one, so also poll at a coarse interval.
    while (in_flight_ != 0 || !ready_.empty() ||
           queue_.CountLive(alive_) != 0) {
      drain_cv_.wait_for(lock, std::chrono::milliseconds(5));
    }
    stop_ = true;
  }
  lane_cv_.notify_all();
  for (auto& l : lanes_) l.join();
  // loop_ (declared last) destructs first, joining the reactor thread.
}

QueryHandle Scheduler::Completed(Result<QueryResult> result) {
  auto state = std::make_shared<internal::QueryState>();
  state->phase = internal::QueryState::Phase::kDone;
  state->result = std::move(result);
  return QueryHandle(std::move(state));
}

bool Scheduler::SchedulePumpLocked() {
  if (pump_posted_) return false;
  pump_posted_ = true;
  return true;
}

QueryHandle Scheduler::Submit(
    double plan_cost, double deadline_ms, const std::string& tenant,
    std::function<Result<QueryResult>(const std::atomic<bool>&)> run) {
  int t = -1;
  for (uint32_t i = 0; i < queue_.tenant_count(); ++i) {
    if (queue_.limits(i).name == tenant) {
      t = static_cast<int>(i);
      break;
    }
  }
  if (t < 0) {
    return Completed(Status::InvalidArgument(
        "unknown tenant \"" + tenant +
        "\" (declare it in SessionOptions::tenants)"));
  }

  auto state = std::make_shared<internal::QueryState>();
  state->plan_cost = plan_cost;
  state->deadline_ms = deadline_ms;
  state->tenant = static_cast<uint32_t>(t);
  state->run = std::move(run);
  state->submitted = std::chrono::steady_clock::now();

  uint64_t seq = 0;
  uint64_t deadline_ns = 0;
  bool post_pump = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const sched::TenantLimits& lim = queue_.limits(state->tenant);
    if (queue_.queued(state->tenant) >= lim.max_queued) {
      // Entries cancelled or deadline-expired while waiting still occupy
      // slots until swept; reclaim before judging capacity so dead
      // entries free their admission slots immediately.
      queue_.SweepDead(state->tenant, alive_);
    }
    if (queue_.queued(state->tenant) >= lim.max_queued) {
      ++stats_.rejected;
      ++tenant_counters_[state->tenant].rejected;
      return Completed(Status::ResourceExhausted(
          (lim.name.empty() ? std::string("admission queue full (")
                            : "tenant \"" + lim.name + "\" queue full (") +
          std::to_string(lim.max_queued) + " queued)"));
    }
    seq = next_seq_++;
    state->seq = seq;
    state->cancel_count = cancel_count_;
    const uint64_t now_ns = loop_.NowNs();
    if (deadline_ms > 0) {
      deadline_ns = now_ns + static_cast<uint64_t>(deadline_ms * 1e6);
      state->deadline_ns = deadline_ns;
      armed_.emplace(seq, state);
    }
    sched::QueueItem item;
    item.seq = seq;
    item.tenant = state->tenant;
    item.cost = plan_cost;
    item.cost_ms = plan_cost * ms_per_cost_;
    item.deadline_ns = deadline_ns;
    item.submit_ns = now_ns;
    item.payload = state;
    queue_.Push(std::move(item));
    ++stats_.submitted;
    ++tenant_counters_[state->tenant].submitted;
    // Arm while still holding mu_ (mu_ -> loop mutex is the established
    // order; nothing takes them the other way round). Dispatch goes
    // through Pump, which needs mu_, so the arm is ordered strictly
    // before any completion's CancelTimer — a timer can never be
    // installed for an already-finished query.
    if (deadline_ns != 0) loop_.ArmTimer(seq, deadline_ns);
    post_pump = SchedulePumpLocked();
  }
  loop_.Start();
  if (post_pump) loop_.Post([this] { Pump(); });
  return QueryHandle(std::move(state));
}

void Scheduler::Pump() {
  std::lock_guard<std::mutex> lock(mu_);
  pump_posted_ = false;
  while (in_flight_ < options_.max_concurrent_queries) {
    std::optional<sched::QueueItem> item =
        queue_.PopBest(loop_.NowNs(), alive_);
    if (!item.has_value()) break;
    auto state =
        std::static_pointer_cast<internal::QueryState>(item->payload);
    bool dispatch = false;
    {
      std::lock_guard<std::mutex> slock(state->mu);
      // Re-check under the state lock: a Cancel can complete the entry
      // between the pop's alive test and here.
      if (state->phase == internal::QueryState::Phase::kQueued) {
        state->phase = internal::QueryState::Phase::kRunning;
        state->dispatch_seq = next_dispatch_++;
        state->dispatched = std::chrono::steady_clock::now();
        dispatch = true;
      }
    }
    if (!dispatch) continue;
    ++in_flight_;
    stats_.max_in_flight = std::max(stats_.max_in_flight, in_flight_);
    queue_.OnDispatch(item->tenant);
    ready_.push_back(std::move(state));
    // Lanes never exit until shutdown, so keeping lanes_.size() >=
    // in_flight_ (bounded by the concurrency limit) guarantees a lane
    // per dispatched query.
    if (lanes_.size() < in_flight_) {
      lanes_.emplace_back([this] { LaneLoop(); });
    }
    lane_cv_.notify_one();
  }
}

void Scheduler::OnTimer(uint64_t seq) {
  std::shared_ptr<internal::QueryState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = armed_.find(seq);
    if (it == armed_.end()) return;  // completed first — deadline lost
    state = std::move(it->second);
    armed_.erase(it);
  }
  bool expired_queued = false;
  {
    std::lock_guard<std::mutex> slock(state->mu);
    using Phase = internal::QueryState::Phase;
    if (state->phase == Phase::kQueued) {
      // Never dispatched: complete right here on the loop thread. The
      // dead queue entry is swept lazily by the pump / Submit.
      state->phase = Phase::kDone;
      state->run = nullptr;
      state->result = Status::DeadlineExceeded(
          "deadline (" + FmtMs(state->deadline_ms) +
          " ms) expired while queued");
      state->cv.notify_all();
      expired_queued = true;
    } else if (state->phase == Phase::kRunning) {
      // Raise the cooperative stop token; the lane translates the
      // executor's Cancelled into DeadlineExceeded via deadline_fired.
      state->deadline_fired.store(true, std::memory_order_release);
      state->stop.store(true, std::memory_order_release);
    }
    // kDone: lost the race to completion/cancel — nothing to do.
  }
  if (expired_queued) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deadline_missed;
    ++stats_.deadline_missed_queued;
    ++tenant_counters_[state->tenant].deadline_missed;
    drain_cv_.notify_all();
  }
}

void Scheduler::LaneLoop() {
  for (;;) {
    std::shared_ptr<internal::QueryState> state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      lane_cv_.wait(lock, [&] { return stop_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stop_ and fully drained
      state = std::move(ready_.front());
      ready_.pop_front();
    }

    const auto dispatched = state->dispatched;
    Result<QueryResult> result = state->run(state->stop);
    state->run = nullptr;  // release the captured plan
    const auto finished = std::chrono::steady_clock::now();
    const double exec_ms = MsBetween(dispatched, finished);
    if (result.ok()) {
      QueryResult& qr = result.value();
      qr.queue_ms = MsBetween(state->submitted, dispatched);
      qr.exec_ms = exec_ms;
      qr.dispatch_seq = state->dispatch_seq;
    }

    // A run stopped by the deadline timer surfaces as Cancelled from the
    // executors; translate. A user Cancel that also won keeps Cancelled
    // (the user asked first — the eager cancel count already holds it).
    {
      std::lock_guard<std::mutex> slock(state->mu);
      if (!result.ok() &&
          result.status().code() == StatusCode::kCancelled &&
          state->deadline_fired.load(std::memory_order_acquire) &&
          !state->cancel_requested) {
        result = Status::DeadlineExceeded(
            "deadline (" + FmtMs(state->deadline_ms) +
            " ms) exceeded mid-execution: " + result.status().message());
      }
    }

    // Commit the scheduler counters before publishing to the handle, so a
    // caller reading scheduler_stats() right after Take() sees this query
    // accounted for. A run stopped by Cancel counts as cancelled (already
    // accounted eagerly by Cancel itself), not failed; a deadline miss
    // counts as deadline_missed, not failed.
    bool post_pump = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      queue_.OnComplete(state->tenant);
      if (state->deadline_ns != 0) armed_.erase(state->seq);
      if (result.ok()) {
        ++stats_.completed;
        // Calibrate cost-aware EDF's run-time estimate from what actually
        // happened (first sample snaps, then a 0.9/0.1 EWMA).
        const double per = exec_ms / std::max(state->plan_cost, 1.0);
        ms_per_cost_ =
            cost_samples_ == 0 ? per : 0.9 * ms_per_cost_ + 0.1 * per;
        ++cost_samples_;
      } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
        ++stats_.deadline_missed;
        ++tenant_counters_[state->tenant].deadline_missed;
      } else if (result.status().code() != StatusCode::kCancelled) {
        ++stats_.failed;
      }
      post_pump = SchedulePumpLocked();
      drain_cv_.notify_all();
    }
    if (state->deadline_ns != 0) loop_.CancelTimer(state->seq);

    {
      std::lock_guard<std::mutex> slock(state->mu);
      if (state->cancel_requested &&
          result.status().code() != StatusCode::kCancelled) {
        // The cancel lost the race: the query completed (or failed, or
        // missed its deadline) before any worker observed the stop token,
        // and was counted under that outcome above. Undo the eager
        // cancellation count so the terminal outcomes stay reconciled
        // with submissions.
        state->cancel_count->fetch_sub(1, std::memory_order_relaxed);
      }
      state->result = std::move(result);
      state->phase = internal::QueryState::Phase::kDone;
      state->cv.notify_all();
    }
    if (post_pump) loop_.Post([this] { Pump(); });
  }
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats s = stats_;
  s.cancelled = cancel_count_->load(std::memory_order_relaxed);
  s.in_flight = in_flight_;
  // Entries cancelled/expired but not yet swept are done, not waiting.
  s.queued = static_cast<uint32_t>(queue_.CountLive(alive_));
  s.loop_threads = loop_.started() ? 1 : 0;
  s.lane_threads = static_cast<uint32_t>(lanes_.size());
  const sched::EventLoop::Stats ls = loop_.stats();
  s.loop_wakeups = ls.wakeups;
  s.timers_fired = ls.timers_fired;
  s.tenants.reserve(queue_.tenant_count());
  for (uint32_t t = 0; t < queue_.tenant_count(); ++t) {
    const sched::TenantLimits& lim = queue_.limits(t);
    TenantStats ts;
    ts.name = lim.name;
    ts.max_inflight = lim.max_inflight;
    ts.max_queued = lim.max_queued;
    ts.in_flight = queue_.inflight(t);
    ts.queued = static_cast<uint32_t>(queue_.CountLive(t, alive_));
    ts.submitted = tenant_counters_[t].submitted;
    ts.rejected = tenant_counters_[t].rejected;
    ts.deadline_missed = tenant_counters_[t].deadline_missed;
    s.tenants.push_back(std::move(ts));
  }
  return s;
}

}  // namespace hierdb::api
