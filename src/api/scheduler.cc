#include "api/scheduler.h"

#include <algorithm>

namespace hierdb::api {

namespace {

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

// ---------------------------------------------------------------------------
// QueryHandle

void QueryHandle::Wait() const {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] {
    return state_->phase == internal::QueryState::Phase::kDone;
  });
}

bool QueryHandle::Done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->phase == internal::QueryState::Phase::kDone;
}

bool QueryHandle::Cancel() {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->cancel_requested) return false;  // only one cancel wins
  if (state_->phase == internal::QueryState::Phase::kQueued) {
    state_->cancel_requested = true;
    state_->phase = internal::QueryState::Phase::kDone;
    state_->run = nullptr;
    state_->result = Status::Cancelled("query cancelled before dispatch");
    if (state_->cancel_count != nullptr) {
      state_->cancel_count->fetch_add(1, std::memory_order_relaxed);
    }
    state_->cv.notify_all();
    return true;
  }
  if (state_->phase == internal::QueryState::Phase::kRunning) {
    // Cooperative: raise the stop token; the executor's workers observe
    // it per activation batch and the run returns Status::Cancelled. If
    // the query finishes first, its result is delivered anyway
    // (best-effort cancellation).
    state_->cancel_requested = true;
    state_->stop.store(true, std::memory_order_release);
    if (state_->cancel_count != nullptr) {
      state_->cancel_count->fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }
  return false;  // already done
}

Result<QueryResult> QueryHandle::Take() {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("Take on an empty QueryHandle");
  }
  Wait();
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->taken) {
    return Status::FailedPrecondition("query result already taken");
  }
  state_->taken = true;
  return *std::move(state_->result);
}

// ---------------------------------------------------------------------------
// Scheduler

namespace {

// A zero concurrency limit would admit queries no worker ever pops (Take
// would hang forever), and a zero queue depth would reject every Submit —
// even on an idle session — because dispatch always passes through the
// queue. Treat both as 1, the minimal working configuration.
SessionOptions Normalize(SessionOptions o) {
  if (o.max_concurrent_queries == 0) o.max_concurrent_queries = 1;
  if (o.max_queued == 0) o.max_queued = 1;
  return o;
}

}  // namespace

Scheduler::Scheduler(const SessionOptions& options)
    : options_(Normalize(options)) {}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  // Workers drain the queue before exiting, so joining them waits for
  // every admitted query (cancelled entries are dropped on the way).
  for (auto& w : workers_) w.join();
}

QueryHandle Scheduler::Completed(Result<QueryResult> result) {
  auto state = std::make_shared<internal::QueryState>();
  state->phase = internal::QueryState::Phase::kDone;
  state->result = std::move(result);
  return QueryHandle(std::move(state));
}

QueryHandle Scheduler::Submit(
    double plan_cost,
    std::function<Result<QueryResult>(const std::atomic<bool>&)> run) {
  auto state = std::make_shared<internal::QueryState>();
  state->plan_cost = plan_cost;
  state->run = std::move(run);
  state->submitted = std::chrono::steady_clock::now();

  {
    std::lock_guard<std::mutex> lock(mu_);
    // Entries cancelled while queued still sit in queue_ until a worker
    // would pop them; purge before judging capacity so cancellations free
    // their admission slots immediately. (Cancel itself accounted them in
    // cancel_count_; dropping here is pure bookkeeping.)
    std::erase_if(queue_, [&](const auto& st) {
      std::lock_guard<std::mutex> slock(st->mu);
      return st->phase == internal::QueryState::Phase::kDone;
    });
    if (queue_.size() >= options_.max_queued) {
      ++stats_.rejected;
      return Completed(Status::ResourceExhausted(
          "admission queue full (" + std::to_string(options_.max_queued) +
          " queued)"));
    }
    state->seq = next_seq_++;
    state->cancel_count = cancel_count_;
    ++stats_.submitted;
    queue_.push_back(state);
    if (workers_.size() < options_.max_concurrent_queries) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
  work_cv_.notify_one();
  return QueryHandle(std::move(state));
}

std::shared_ptr<internal::QueryState> Scheduler::PopLocked() {
  while (!queue_.empty()) {
    auto it = queue_.begin();
    if (options_.admission == AdmissionPolicy::kShortestCostFirst) {
      // Aging: an entry queued longer than scf_aging_ms outranks cost
      // ordering and dispatches FIFO among its aged peers, so a sustained
      // stream of cheap submissions can delay an expensive query by at
      // most the aging bound instead of starving it. Fresh entries keep
      // the cheapest-plan-cost-first order (ties FIFO); scf_aging_ms == 0
      // restores the pure (starvable) comparator.
      const auto now = std::chrono::steady_clock::now();
      const double aging = options_.scf_aging_ms;
      auto aged = [&](const auto& st) {
        return aging > 0 && MsBetween(st->submitted, now) >= aging;
      };
      it = std::min_element(queue_.begin(), queue_.end(),
                            [&](const auto& a, const auto& b) {
                              bool aa = aged(a), ab = aged(b);
                              if (aa != ab) return aa;  // aged first
                              if (!aa && a->plan_cost != b->plan_cost) {
                                return a->plan_cost < b->plan_cost;
                              }
                              return a->seq < b->seq;
                            });
    }
    std::shared_ptr<internal::QueryState> state = *it;
    queue_.erase(it);
    std::lock_guard<std::mutex> slock(state->mu);
    if (state->phase == internal::QueryState::Phase::kQueued) {
      state->phase = internal::QueryState::Phase::kRunning;
      return state;
    }
    // Cancelled while queued (already accounted): drop and keep looking.
  }
  return nullptr;
}

void Scheduler::WorkerLoop() {
  for (;;) {
    std::shared_ptr<internal::QueryState> state;
    uint64_t dispatch_seq = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      state = PopLocked();
      if (state == nullptr) {
        if (stop_) return;
        continue;  // everything queued was cancelled; wait again
      }
      dispatch_seq = next_dispatch_++;
      ++in_flight_;
      stats_.max_in_flight = std::max(stats_.max_in_flight, in_flight_);
    }

    auto dispatched = std::chrono::steady_clock::now();
    Result<QueryResult> result = state->run(state->stop);
    state->run = nullptr;  // release the captured plan
    auto finished = std::chrono::steady_clock::now();
    if (result.ok()) {
      QueryResult& qr = result.value();
      qr.queue_ms = MsBetween(state->submitted, dispatched);
      qr.exec_ms = MsBetween(dispatched, finished);
      qr.dispatch_seq = dispatch_seq;
    }

    // Commit the scheduler counters before publishing to the handle, so a
    // caller reading scheduler_stats() right after Take() sees this query
    // accounted for. A run stopped by Cancel counts as cancelled (already
    // accounted eagerly by Cancel itself), not failed.
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (result.ok()) {
        ++stats_.completed;
      } else if (result.status().code() != StatusCode::kCancelled) {
        ++stats_.failed;
      }
    }
    {
      std::lock_guard<std::mutex> slock(state->mu);
      if (state->cancel_requested &&
          result.status().code() != StatusCode::kCancelled) {
        // The cancel lost the race: the query completed (or failed on its
        // own) before any worker observed the stop token, and was counted
        // as completed/failed above. Undo the eager cancellation count so
        // the terminal outcomes (completed/failed/cancelled/rejected)
        // stay reconciled with submissions.
        state->cancel_count->fetch_sub(1, std::memory_order_relaxed);
      }
      state->result = std::move(result);
      state->phase = internal::QueryState::Phase::kDone;
      state->cv.notify_all();
    }
  }
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats s = stats_;
  s.cancelled = cancel_count_->load(std::memory_order_relaxed);
  s.in_flight = in_flight_;
  // Entries cancelled but not yet swept are done, not waiting.
  s.queued = 0;
  for (const auto& st : queue_) {
    std::lock_guard<std::mutex> slock(st->mu);
    if (st->phase == internal::QueryState::Phase::kQueued) ++s.queued;
  }
  return s;
}

}  // namespace hierdb::api
