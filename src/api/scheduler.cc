#include "api/scheduler.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace hierdb::api {

namespace {

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::string FmtMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", ms);
  return buf;
}

// splitmix64 finalizer for deterministic backoff jitter: same (seq,
// attempt) always jitters the same way, so retry schedules reproduce.
uint64_t JitterHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Capped exponential backoff with deterministic jitter in [0.5, 1.0] of
/// the capped delay. `attempt` is the upcoming attempt index (>= 1).
uint64_t BackoffNs(const internal::QueryState& st) {
  double ms = st.backoff_base_ms;
  for (uint32_t i = 1; i < st.attempt; ++i) ms *= 2.0;
  ms = std::min(ms, st.backoff_max_ms);
  const uint64_t h = JitterHash(st.seq * 0x100000001b3ULL + st.attempt);
  const double jitter =
      0.5 + 0.5 * (static_cast<double>(h >> 11) * 0x1.0p-53);
  return static_cast<uint64_t>(ms * jitter * 1e6);
}

}  // namespace

// ---------------------------------------------------------------------------
// QueryHandle

void QueryHandle::Wait() const {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] {
    return state_->phase == internal::QueryState::Phase::kDone;
  });
}

bool QueryHandle::WaitFor(std::chrono::milliseconds timeout) const {
  if (state_ == nullptr) return true;
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(lock, timeout, [&] {
    return state_->phase == internal::QueryState::Phase::kDone;
  });
}

bool QueryHandle::Done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->phase == internal::QueryState::Phase::kDone;
}

bool QueryHandle::Cancel() {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->cancel_requested) return false;  // only one cancel wins
  if (state_->phase == internal::QueryState::Phase::kQueued) {
    state_->cancel_requested = true;
    state_->phase = internal::QueryState::Phase::kDone;
    state_->run = nullptr;
    state_->result = Status::Cancelled("query cancelled before dispatch");
    if (state_->cancel_count != nullptr) {
      state_->cancel_count->fetch_add(1, std::memory_order_relaxed);
    }
    state_->cv.notify_all();
    return true;
  }
  if (state_->phase == internal::QueryState::Phase::kRunning) {
    // Cooperative: raise the stop token; the executor's workers observe
    // it per activation batch and the run returns Status::Cancelled. If
    // the query finishes first, its result is delivered anyway
    // (best-effort cancellation).
    state_->cancel_requested = true;
    state_->stop.store(true, std::memory_order_release);
    if (state_->cancel_count != nullptr) {
      state_->cancel_count->fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }
  return false;  // already done
}

Result<QueryResult> QueryHandle::Take() {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("Take on an empty QueryHandle");
  }
  Wait();
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->taken) {
    return Status::FailedPrecondition("query result already taken");
  }
  state_->taken = true;
  return *std::move(state_->result);
}

// ---------------------------------------------------------------------------
// Scheduler

namespace {

// A zero concurrency limit would admit queries no lane ever runs (Take
// would hang forever), and a zero queue depth would reject every Submit —
// even on an idle session — because dispatch always passes through the
// queue. Treat both as 1, the minimal working configuration.
SessionOptions Normalize(SessionOptions o) {
  if (o.max_concurrent_queries == 0) o.max_concurrent_queries = 1;
  if (o.max_queued == 0) o.max_queued = 1;
  return o;
}

sched::OrderPolicy ToOrderPolicy(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kFifo:
      return sched::OrderPolicy::kFifo;
    case AdmissionPolicy::kShortestCostFirst:
      return sched::OrderPolicy::kShortestCostFirst;
    case AdmissionPolicy::kEarliestDeadlineFirst:
      return sched::OrderPolicy::kEarliestDeadlineFirst;
    case AdmissionPolicy::kCostAwareEdf:
      return sched::OrderPolicy::kCostAwareEdf;
  }
  return sched::OrderPolicy::kFifo;
}

/// Turns SessionOptions tenants into resolved limits: the default ""
/// tenant always exists (index 0, weight 1 unless overridden), weights
/// divide max_concurrent_queries into floored shares of at least 1, and
/// a zero per-tenant queue bound inherits the session's.
///
/// The floor of 1 can oversubscribe max_concurrent_queries when tenants
/// outnumber it, so a clamp pass then shaves the largest shares — never
/// below 1 — until the sum fits (or every share is 1, the irreducible
/// case where tenants simply outnumber lanes). Clamped tenants report
/// TenantStats::clamped so operators can see their configured weight was
/// not honored exactly; a share of 0 would starve a tenant outright,
/// which is why 1 is the floor.
std::vector<sched::TenantLimits> ResolveTenants(const SessionOptions& o) {
  std::vector<sched::TenantLimits> out;
  sched::TenantLimits def;
  def.name = "";
  def.weight = 1;
  def.max_queued = o.max_queued;
  out.push_back(def);
  for (const TenantOptions& t : o.tenants) {
    const uint32_t w = std::max<uint32_t>(t.weight, 1);
    const uint32_t q = t.max_queued != 0 ? t.max_queued : o.max_queued;
    if (t.name.empty()) {  // explicit override of the default tenant
      out[0].weight = w;
      out[0].max_queued = q;
      continue;
    }
    sched::TenantLimits l;
    l.name = t.name;
    l.weight = w;
    l.max_queued = q;
    out.push_back(std::move(l));
  }
  uint64_t total_w = 0;
  for (const auto& l : out) total_w += l.weight;
  for (auto& l : out) {
    l.max_inflight = std::max<uint32_t>(
        1, static_cast<uint32_t>(
               static_cast<uint64_t>(o.max_concurrent_queries) * l.weight /
               total_w));
  }
  uint64_t sum = 0;
  for (const auto& l : out) sum += l.max_inflight;
  const uint32_t cap = std::max<uint32_t>(o.max_concurrent_queries, 1);
  while (sum > cap) {
    auto it = std::max_element(
        out.begin(), out.end(),
        [](const sched::TenantLimits& a, const sched::TenantLimits& b) {
          return a.max_inflight < b.max_inflight;
        });
    if (it->max_inflight <= 1) break;  // all shares at the floor
    --it->max_inflight;
    it->clamped = true;
    --sum;
  }
  return out;
}

}  // namespace

Scheduler::Scheduler(const SessionOptions& options,
                     obs::FlightRecorder* recorder)
    : options_(Normalize(options)),
      recorder_(recorder),
      queue_(ToOrderPolicy(options_.admission), options_.scf_aging_ms,
             ResolveTenants(options_)),
      alive_([](const sched::QueueItem& item) {
        auto st = std::static_pointer_cast<internal::QueryState>(item.payload);
        std::lock_guard<std::mutex> slock(st->mu);
        return st->phase == internal::QueryState::Phase::kQueued;
      }),
      tenant_counters_(queue_.tenant_count()),
      loop_([this](uint64_t seq) { OnTimer(seq); }) {}

Scheduler::~Scheduler() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Completions signal drain_cv_; queued cancels and expiries can empty
    // the queue without one, so also poll at a coarse interval. Queries
    // sitting out a retry backoff count as admitted work too.
    while (in_flight_ != 0 || !ready_.empty() || !retry_armed_.empty() ||
           queue_.CountLive(alive_) != 0) {
      drain_cv_.wait_for(lock, std::chrono::milliseconds(5));
    }
    stop_ = true;
  }
  lane_cv_.notify_all();
  for (auto& l : lanes_) l.join();
  // loop_ (declared last) destructs first, joining the reactor thread.
}

QueryHandle Scheduler::Completed(Result<QueryResult> result) {
  auto state = std::make_shared<internal::QueryState>();
  state->phase = internal::QueryState::Phase::kDone;
  state->result = std::move(result);
  return QueryHandle(std::move(state));
}

bool Scheduler::SchedulePumpLocked() {
  if (pump_posted_) return false;
  pump_posted_ = true;
  return true;
}

QueryHandle Scheduler::Submit(
    double plan_cost, double deadline_ms, const std::string& tenant,
    const RetrySpec& retry,
    std::function<Result<QueryResult>(const std::atomic<bool>&, uint32_t,
                                      uint64_t)>
        run) {
  int t = -1;
  for (uint32_t i = 0; i < queue_.tenant_count(); ++i) {
    if (queue_.limits(i).name == tenant) {
      t = static_cast<int>(i);
      break;
    }
  }
  if (t < 0) {
    return Completed(Status::InvalidArgument(
        "unknown tenant \"" + tenant +
        "\" (declare it in SessionOptions::tenants)"));
  }

  auto state = std::make_shared<internal::QueryState>();
  state->plan_cost = plan_cost;
  state->deadline_ms = deadline_ms;
  state->tenant = static_cast<uint32_t>(t);
  state->max_attempts = std::max<uint32_t>(retry.max_attempts(), 1);
  state->backoff_base_ms = std::max(retry.backoff_base_ms, 0.0);
  state->backoff_max_ms =
      std::max(retry.backoff_max_ms, state->backoff_base_ms);
  state->run = std::move(run);
  state->submitted = std::chrono::steady_clock::now();

  uint64_t seq = 0;
  uint64_t deadline_ns = 0;
  bool post_pump = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const sched::TenantLimits& lim = queue_.limits(state->tenant);
    if (queue_.queued(state->tenant) >= lim.max_queued) {
      // Entries cancelled or deadline-expired while waiting still occupy
      // slots until swept; reclaim before judging capacity so dead
      // entries free their admission slots immediately.
      queue_.SweepDead(state->tenant, alive_);
    }
    if (queue_.queued(state->tenant) >= lim.max_queued) {
      ++stats_.rejected;
      ++tenant_counters_[state->tenant].rejected;
      if (recorder_ != nullptr) {
        recorder_->Instant(obs::EventKind::kTenantReject, 0, state->tenant);
      }
      return Completed(Status::ResourceExhausted(
          (lim.name.empty() ? std::string("admission queue full (")
                            : "tenant \"" + lim.name + "\" queue full (") +
          std::to_string(lim.max_queued) + " queued)"));
    }
    seq = next_seq_++;
    state->seq = seq;
    state->cancel_count = cancel_count_;
    const uint64_t now_ns = loop_.NowNs();
    if (deadline_ms > 0) {
      deadline_ns = now_ns + static_cast<uint64_t>(deadline_ms * 1e6);
      state->deadline_ns = deadline_ns;
      armed_.emplace(seq, state);
    }
    sched::QueueItem item;
    item.seq = seq;
    item.tenant = state->tenant;
    item.cost = plan_cost;
    item.cost_ms = plan_cost * ms_per_cost_;
    item.deadline_ns = deadline_ns;
    item.submit_ns = now_ns;
    item.payload = state;
    queue_.Push(std::move(item));
    ++stats_.submitted;
    ++tenant_counters_[state->tenant].submitted;
    // Arm while still holding mu_ (mu_ -> loop mutex is the established
    // order; nothing takes them the other way round). Dispatch goes
    // through Pump, which needs mu_, so the arm is ordered strictly
    // before any completion's CancelTimer — a timer can never be
    // installed for an already-finished query.
    if (deadline_ns != 0) loop_.ArmTimer(seq, deadline_ns);
    if (recorder_ != nullptr) {
      recorder_->Instant(obs::EventKind::kSubmit, seq, seq);
      if (deadline_ns != 0) {
        recorder_->Instant(obs::EventKind::kDeadlineArm, seq, deadline_ns);
      }
    }
    post_pump = SchedulePumpLocked();
  }
  loop_.Start();
  if (post_pump) loop_.Post([this] { Pump(); });
  return QueryHandle(std::move(state));
}

void Scheduler::Pump() {
  std::lock_guard<std::mutex> lock(mu_);
  pump_posted_ = false;
  while (in_flight_ < options_.max_concurrent_queries) {
    std::optional<sched::QueueItem> item =
        queue_.PopBest(loop_.NowNs(), alive_);
    if (!item.has_value()) break;
    auto state =
        std::static_pointer_cast<internal::QueryState>(item->payload);
    bool dispatch = false;
    {
      std::lock_guard<std::mutex> slock(state->mu);
      // Re-check under the state lock: a Cancel can complete the entry
      // between the pop's alive test and here.
      if (state->phase == internal::QueryState::Phase::kQueued) {
        state->phase = internal::QueryState::Phase::kRunning;
        state->dispatch_seq = next_dispatch_++;
        state->dispatched = std::chrono::steady_clock::now();
        dispatch = true;
      }
    }
    if (!dispatch) continue;
    ++in_flight_;
    stats_.max_in_flight = std::max(stats_.max_in_flight, in_flight_);
    queue_.OnDispatch(item->tenant);
    if (recorder_ != nullptr) {
      const uint64_t now = loop_.NowNs();
      recorder_->Instant(obs::EventKind::kSchedule, state->seq,
                         now > item->submit_ns ? now - item->submit_ns : 0);
    }
    ready_.push_back(std::move(state));
    // Lanes never exit until shutdown, so keeping lanes_.size() >=
    // in_flight_ (bounded by the concurrency limit) guarantees a lane
    // per dispatched query.
    if (lanes_.size() < in_flight_) {
      lanes_.emplace_back([this] { LaneLoop(); });
    }
    lane_cv_.notify_one();
  }
}

void Scheduler::OnTimer(uint64_t id) {
  if (id & kRetryTimerBit) {
    OnRetryTimer(id & ~kRetryTimerBit);
    return;
  }
  const uint64_t seq = id;
  std::shared_ptr<internal::QueryState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = armed_.find(seq);
    if (it == armed_.end()) return;  // completed first — deadline lost
    state = std::move(it->second);
    armed_.erase(it);
  }
  {
    // mu_ before state->mu (the order established in Pump). Counters and
    // retry cleanup must land atomically with the completion: a Take()
    // woken by the cv below may read scheduler_stats() immediately, and
    // must already see the miss reflected there.
    std::lock_guard<std::mutex> lock(mu_);
    std::lock_guard<std::mutex> slock(state->mu);
    using Phase = internal::QueryState::Phase;
    if (state->phase == Phase::kQueued) {
      // Never dispatched: complete right here on the loop thread. The
      // dead queue entry is swept lazily by the pump / Submit.
      ++stats_.deadline_missed;
      ++stats_.deadline_missed_queued;
      ++tenant_counters_[state->tenant].deadline_missed;
      // If the expiry caught the query sitting out a retry backoff, its
      // outcome is now final: drop the pending re-queue.
      if (retry_armed_.erase(seq) != 0) {
        loop_.CancelTimer(seq | kRetryTimerBit);
      }
      state->phase = Phase::kDone;
      state->run = nullptr;
      state->result = Status::DeadlineExceeded(
          "deadline (" + FmtMs(state->deadline_ms) +
          " ms) expired while queued");
      if (recorder_ != nullptr) {
        recorder_->Instant(obs::EventKind::kDeadlineFire, seq, 0);
      }
      state->cv.notify_all();
      drain_cv_.notify_all();
    } else if (state->phase == Phase::kRunning) {
      // Raise the cooperative stop token; the lane translates the
      // executor's Cancelled into DeadlineExceeded via deadline_fired.
      state->deadline_fired.store(true, std::memory_order_release);
      state->stop.store(true, std::memory_order_release);
      if (recorder_ != nullptr) {  // detail 1 = caught mid-execution
        recorder_->Instant(obs::EventKind::kDeadlineFire, seq, 1);
      }
    }
    // kDone: lost the race to completion/cancel — nothing to do.
  }
}

void Scheduler::OnRetryTimer(uint64_t seq) {
  bool post_pump = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = retry_armed_.find(seq);
    if (it == retry_armed_.end()) return;  // outcome finalized meanwhile
    std::shared_ptr<internal::QueryState> state = std::move(it->second);
    retry_armed_.erase(it);
    bool requeue = false;
    {
      std::lock_guard<std::mutex> slock(state->mu);
      // A cancel or queued-deadline expiry during the backoff already
      // completed the handle; the retry is then moot.
      requeue = state->phase == internal::QueryState::Phase::kQueued;
    }
    if (requeue) {
      sched::QueueItem item;
      item.seq = state->seq;
      item.tenant = state->tenant;
      item.cost = state->plan_cost;
      item.cost_ms = state->plan_cost * ms_per_cost_;
      item.deadline_ns = state->deadline_ns;
      item.submit_ns = loop_.NowNs();
      item.payload = state;
      // No depth-bound check: the query was admitted at Submit and its
      // slot was never returned to the caller.
      queue_.Push(std::move(item));
      post_pump = SchedulePumpLocked();
    }
    drain_cv_.notify_all();
  }
  if (post_pump) loop_.Post([this] { Pump(); });
}

void Scheduler::LaneLoop() {
  for (;;) {
    std::shared_ptr<internal::QueryState> state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      lane_cv_.wait(lock, [&] { return stop_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stop_ and fully drained
      state = std::move(ready_.front());
      ready_.pop_front();
    }

    const auto dispatched = state->dispatched;
    Result<QueryResult> result =
        state->run(state->stop, state->attempt, state->seq);
    const auto finished = std::chrono::steady_clock::now();
    const double exec_ms = MsBetween(dispatched, finished);
    if (result.ok()) {
      QueryResult& qr = result.value();
      qr.queue_ms = MsBetween(state->submitted, dispatched);
      qr.exec_ms = exec_ms;
      qr.dispatch_seq = state->dispatch_seq;
    }

    // A run stopped by the deadline timer surfaces as Cancelled from the
    // executors; translate. A user Cancel that also won keeps Cancelled
    // (the user asked first — the eager cancel count already holds it).
    {
      std::lock_guard<std::mutex> slock(state->mu);
      if (!result.ok() &&
          result.status().code() == StatusCode::kCancelled &&
          state->deadline_fired.load(std::memory_order_acquire) &&
          !state->cancel_requested) {
        result = Status::DeadlineExceeded(
            "deadline (" + FmtMs(state->deadline_ms) +
            " ms) exceeded mid-execution: " + result.status().message());
      }
    }

    // Retry: an Unavailable failure re-queues the query for another
    // attempt after capped exponential backoff — unless a cancel or a
    // fired deadline already owns the outcome, or attempts are exhausted.
    // The lane is released for the duration of the backoff and the
    // deadline (absolute) stays armed, so a retrying query can still
    // expire while waiting.
    bool retry = false;
    if (!result.ok() &&
        result.status().code() == StatusCode::kUnavailable) {
      std::lock_guard<std::mutex> slock(state->mu);
      if (!state->cancel_requested &&
          !state->deadline_fired.load(std::memory_order_acquire) &&
          state->attempt + 1 < state->max_attempts) {
        ++state->attempt;
        state->phase = internal::QueryState::Phase::kQueued;
        retry = true;
      }
    }
    if (retry) {
      bool post_pump = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        --in_flight_;
        queue_.OnComplete(state->tenant);
        ++stats_.retries;
        if (recorder_ != nullptr) {
          recorder_->Instant(obs::EventKind::kRetry, state->seq,
                             state->attempt);
        }
        retry_armed_[state->seq] = state;
        loop_.ArmTimer(state->seq | kRetryTimerBit,
                       loop_.NowNs() + BackoffNs(*state));
        post_pump = SchedulePumpLocked();
        drain_cv_.notify_all();
      }
      if (post_pump) loop_.Post([this] { Pump(); });
      continue;
    }
    state->run = nullptr;  // release the captured plan

    // Commit the scheduler counters before publishing to the handle, so a
    // caller reading scheduler_stats() right after Take() sees this query
    // accounted for. A run stopped by Cancel counts as cancelled (already
    // accounted eagerly by Cancel itself), not failed; a deadline miss
    // counts as deadline_missed, not failed.
    bool post_pump = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      queue_.OnComplete(state->tenant);
      if (state->deadline_ns != 0) armed_.erase(state->seq);
      if (result.ok()) {
        ++stats_.completed;
        // Calibrate cost-aware EDF's run-time estimate from what actually
        // happened (first sample snaps, then a 0.9/0.1 EWMA).
        const double per = exec_ms / std::max(state->plan_cost, 1.0);
        ms_per_cost_ =
            cost_samples_ == 0 ? per : 0.9 * ms_per_cost_ + 0.1 * per;
        ++cost_samples_;
      } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
        ++stats_.deadline_missed;
        ++tenant_counters_[state->tenant].deadline_missed;
      } else if (result.status().code() != StatusCode::kCancelled) {
        ++stats_.failed;
      }
      post_pump = SchedulePumpLocked();
      drain_cv_.notify_all();
    }
    if (state->deadline_ns != 0) loop_.CancelTimer(state->seq);

    {
      std::lock_guard<std::mutex> slock(state->mu);
      if (state->cancel_requested &&
          result.status().code() != StatusCode::kCancelled) {
        // The cancel lost the race: the query completed (or failed, or
        // missed its deadline) before any worker observed the stop token,
        // and was counted under that outcome above. Undo the eager
        // cancellation count so the terminal outcomes stay reconciled
        // with submissions.
        state->cancel_count->fetch_sub(1, std::memory_order_relaxed);
      }
      state->result = std::move(result);
      state->phase = internal::QueryState::Phase::kDone;
      state->cv.notify_all();
    }
    if (post_pump) loop_.Post([this] { Pump(); });
  }
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats s = stats_;
  s.cancelled = cancel_count_->load(std::memory_order_relaxed);
  s.in_flight = in_flight_;
  // Entries cancelled/expired but not yet swept are done, not waiting.
  s.queued = static_cast<uint32_t>(queue_.CountLive(alive_));
  s.loop_threads = loop_.started() ? 1 : 0;
  s.lane_threads = static_cast<uint32_t>(lanes_.size());
  const sched::EventLoop::Stats ls = loop_.stats();
  s.loop_wakeups = ls.wakeups;
  s.timers_fired = ls.timers_fired;
  s.loop_max_queue_depth = ls.max_queue_depth;
  s.timer_slip_total_ns = ls.timer_slip_total_ns;
  s.timer_slip_max_ns = ls.timer_slip_max_ns;
  s.loop_lag_p50_ms = ls.loop_lag_p50_ms;
  s.loop_lag_p99_ms = ls.loop_lag_p99_ms;
  s.tenants.reserve(queue_.tenant_count());
  for (uint32_t t = 0; t < queue_.tenant_count(); ++t) {
    const sched::TenantLimits& lim = queue_.limits(t);
    TenantStats ts;
    ts.name = lim.name;
    ts.max_inflight = lim.max_inflight;
    ts.max_queued = lim.max_queued;
    ts.clamped = lim.clamped;
    ts.in_flight = queue_.inflight(t);
    ts.queued = static_cast<uint32_t>(queue_.CountLive(t, alive_));
    ts.submitted = tenant_counters_[t].submitted;
    ts.rejected = tenant_counters_[t].rejected;
    ts.deadline_missed = tenant_counters_[t].deadline_missed;
    s.tenants.push_back(std::move(ts));
  }
  return s;
}

}  // namespace hierdb::api
