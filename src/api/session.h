// hierdb::api::Session — the unified front door over the three executor
// backends.
//
// The paper evaluates one execution model (DP vs FP vs SP on a
// hierarchical machine) through three lenses this repo implements as three
// stacks: the deterministic simulator (exec::Engine), the real-thread
// SM-node executor (mt::PipelineExecutor) and the multi-node cluster
// executor (cluster::ClusterExecutor). The Session collapses their three
// front doors into one:
//
//   api::Session db;
//   auto fact = db.AddTable(mt::MakeTable("fact", 100000, 4, 2000, 1));
//   auto dim  = db.AddTable(mt::MakeTable("dim", 2000, 2, 100, 2));
//   api::Query q = db.NewQuery().Scan(fact).Probe(dim, 1, 0).Build();
//   api::ExecOptions opts;
//   opts.backend = api::Backend::kThreads;
//   opts.strategy = Strategy::kDP;
//   auto report = db.Execute(q, opts);
//
// Queries execute asynchronously: Submit plans the query on the calling
// thread, passes it through the session's admission controller
// (SessionOptions: concurrency limit, queue depth, FIFO or
// shortest-cost-first order using the optimizer's plan cost) and returns a
// future-like QueryHandle. Independent queries on the kThreads and
// kCluster backends genuinely overlap up to max_concurrent_queries; the
// deterministic simulator serializes internally but flows through the same
// API. Execute is a one-line wrapper over Submit+Take; RunStream submits a
// whole batch and reports throughput (queries/sec, makespan, p50/p95):
//
//   api::Session db(api::SessionOptions{.max_concurrent_queries = 4});
//   api::QueryHandle h = db.Submit(q, opts);
//   ... overlap with other submissions ...
//   auto result = h.Take();              // waits; QueryResult
//
// ExecOptions::materialize additionally carries the result rows back in
// QueryResult::rows (threads: parallel partial collection; cluster:
// tuple-batch gather of each node's final rows).
//
// Concurrent real-backend queries rent their workers from one
// session-wide pool sized to the machine (SessionOptions::pool_threads;
// ExecOptions::use_shared_pool) — total executor threads stay bounded no
// matter how many queries overlap, and idle workers steal activations
// across query boundaries, extending the paper's load-balancing
// hierarchy to the whole stream. Queries over the same tables also share
// build-side hash tables through the session's build cache
// (ExecOptions::reuse_builds); QueryHandle::Cancel stops even a running
// query cooperatively.
//
// A Query is backend-neutral: either a predicate (join) graph with
// selectivities — optionally with an explicit join tree or a shape
// constraint — or an explicit pipeline chain over registered tables. The
// Session optimizes it once into a bushy join tree and bridges that single
// logical plan into each backend's representation:
//
//   kSimulated   plan::MacroExpand + exec::Engine on the simulated
//                hierarchical machine (the paper's evaluation vehicle);
//   kThreads     mt::PipelinePlan + mt::PipelineExecutor on one SM-node of
//                real threads and real tuples;
//   kCluster     cluster::PlanQuery + cluster::ClusterExecutor across
//                message-coupled SM-nodes: the whole chain DAG runs on the
//                cluster, with every chain's output kept distributed and
//                repartitioned to its consumer by tuple-batch shipping.
//
// ExecutionReport normalizes the three metrics structs (response time,
// idle measures, activations, tuples, pipeline/steal bytes, per-operator
// end times where available) and keeps the raw backend metrics for
// white-box consumers.

#ifndef HIERDB_API_SESSION_H_
#define HIERDB_API_SESSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/worker_pool.h"
#include "catalog/catalog.h"
#include "cluster/cluster_executor.h"
#include "common/status.h"
#include "fault/fault.h"
#include "common/strategy.h"
#include "common/units.h"
#include "exec/engine.h"
#include "mt/agg.h"
#include "mt/build_cache.h"
#include "mt/column_batch.h"
#include "mt/pipeline_executor.h"
#include "mt/row.h"
#include "obs/capture.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "opt/tree_shapes.h"
#include "plan/join_graph.h"
#include "plan/operator_tree.h"
#include "sim/config.h"

namespace hierdb::api {

using catalog::RelId;

/// Filter comparison and aggregate-function enums, shared with the
/// executor layer (mt/agg.h).
using CmpOp = mt::CmpOp;
using AggFn = mt::AggFn;

/// Which executor stack runs the query.
enum class Backend { kSimulated, kThreads, kCluster };

const char* BackendName(Backend b);

/// One options struct for every backend. Knobs that a backend does not
/// implement are ignored there (see per-field comments); 0 means "backend
/// default" for the granularity knobs.
struct ExecOptions {
  Backend backend = Backend::kSimulated;
  Strategy strategy = Strategy::kDP;

  /// Machine shape: SM-nodes x processors-per-node. kThreads is a single
  /// SM-node and requires nodes == 1; kSP requires nodes == 1 everywhere
  /// (synchronous pipelining is shared-memory only).
  uint32_t nodes = 1;
  uint32_t threads_per_node = 4;

  /// Seed for every per-run randomness (bucket shuffles, data synthesis,
  /// FP cost distortion, placement skew).
  uint64_t seed = 1;

  /// Attribute-value skew (Zipf theta, Section 5.2.2) — one meaning on
  /// every backend: kSimulated models it as redistribution skew over the
  /// bucket space; the real backends draw synthesized foreign-key columns
  /// Zipf(theta)-distributed (graph-form queries over catalog-only
  /// relations). Registered tables carry their own distribution — build
  /// them with mt::MakeSkewedTable to inject skew there.
  double skew_theta = 0.0;

  /// kCluster only: tuple-placement skew — driving scan inputs are placed
  /// across nodes in Zipf(theta)-sized shares instead of round-robin
  /// (Section 5.3's load-imbalance experiments).
  double placement_theta = 0.0;

  /// FP only: cost-model error rate r; per-operator cost estimates are
  /// distorted by factors in [1-r, 1+r] before allocation (Figure 7).
  /// Honored by every backend.
  double fp_error_rate = 0.0;

  /// Shared fragmentation / granularity knobs; 0 = backend default.
  uint32_t buckets = 0;          ///< degree of fragmentation per operator
  uint32_t morsel_rows = 0;      ///< trigger-activation granularity (real)
  uint32_t batch_rows = 0;       ///< data-activation granularity (real)
  uint32_t queue_capacity = 0;   ///< flow control (activations per queue)

  /// Real backends: materialize the final result rows into
  /// QueryResult::rows (kThreads: per-thread partial collection merged at
  /// chain end; kCluster: tuple-batch gather of each node's final rows).
  /// The simulated backend has no rows and rejects this flag.
  bool materialize = false;

  bool global_lb = true;   ///< inter-node load sharing (kSimulated/kCluster)
  bool apply_h1 = true;    ///< H1: chain scan waits for its hash tables
  /// H2: chains execute one at a time. On kCluster this selects staged
  /// chain scheduling (the default): chains run back-to-back in plan
  /// order; false lets independent chains whose inputs are all complete
  /// execute concurrently on the same node/thread topology.
  bool apply_h2 = true;

  /// kCluster steal knobs; 0 = backend default.
  uint32_t steal_batch = 0;  ///< max activations per acquisition
  uint32_t min_steal = 0;    ///< provider offers only above this depth

  /// kCluster only: cache hash-table fragments shipped by steals (the
  /// Section 4 stolen-queue list) so repeated starving reuses them.
  /// Ignored by kSimulated and kThreads.
  bool cache_stolen_fragments = true;
  /// kSimulated only: primary-queue preference ablation — false lets any
  /// processor consume any consumable queue with no locality preference.
  /// Ignored by the real backends (and when sim_config is set, which is
  /// used verbatim).
  bool primary_queue_affinity = true;
  /// kSimulated only: model the SM-node memory-contention slowdown above
  /// 32 processors. Ignored by the real backends (and when sim_config is
  /// set).
  bool model_memory_hierarchy = true;

  /// Real backends only: catalog-only relations (no registered table) are
  /// synthesized at `bind_scale` of their catalog cardinality.
  double bind_scale = 0.01;
  uint64_t bind_min_rows = 16;

  /// Real backends: rent workers from the session-wide pool
  /// (SessionOptions::pool_threads) instead of spawning
  /// threads_per_node (x nodes) fresh threads for this query. Pooled
  /// queries park idle workers into cross-query activation stealing;
  /// false keeps the legacy spawn-per-query path for A/B comparison.
  /// Ignored by kSimulated.
  bool use_shared_pool = true;

  /// kThreads only: share build-side hash tables across queries through
  /// the session's build cache, keyed on (table contents, build column,
  /// buckets, seed/skew). A query hitting the cache skips that build's
  /// scatter and inserts entirely; a miss publishes the finished tables
  /// for overlapping/later queries. Invalidated by Session::AddTable.
  bool reuse_builds = true;

  /// Real backends: columnar data plane. Where predicates evaluate as
  /// selection-vector compare loops, scatter/probe/GROUP BY hashing runs
  /// one pass over a hash column, probes walk the hash chains with a
  /// prefetch window (RowTable::ProbeBatch), and aggregated plans prune
  /// base-table columns nothing downstream reads — on kCluster the
  /// repartition wire ships only the kept columns. Off falls back to the
  /// row-at-a-time scalar loops; results are digest-identical either way.
  /// Ignored by kSimulated.
  bool vectorized = true;

  /// Real backends: also run the single-threaded reference execution and
  /// record the comparison in the report.
  bool validate = false;

  /// Per-operator execution tracing: collect spans (per operator, worker
  /// and node) plus steal/cache/pool/fabric instants into
  /// ExecutionReport::trace, exportable as Chrome trace-event JSON or an
  /// annotated plan (obs/export.h). kSimulated synthesizes spans from the
  /// simulator's per-operator virtual times. Off (the default) the only
  /// cost on the execution path is one null-pointer check per activation.
  bool trace = false;

  /// Per-query deadline, measured from Submit (admission). 0 = none. The
  /// deadline arms on the scheduler's timer wheel: expiring while queued
  /// completes the handle immediately with Status::DeadlineExceeded;
  /// expiring mid-execution raises the query's cooperative stop token on
  /// whichever backend is running it, and the handle completes with
  /// DeadlineExceeded carrying the partial progress counters in its
  /// message. A deadline that races completion delivers the finished
  /// result (best effort, like Cancel).
  double deadline_ms = 0.0;

  /// Tenant this query bills against (SessionOptions::tenants); "" is the
  /// default tenant. Unknown names fail the Submit with InvalidArgument.
  std::string tenant;

  /// Seeded fault injection for this query (chaos testing). When the plan
  /// is armed, the backends deliberately misbehave per its probabilities
  /// and schedule: the cluster fabric drops/duplicates/delays messages,
  /// cluster node loops stall or crash, and pooled worker threads die
  /// (their slot is re-queued, so work is never lost — only delayed).
  /// Every decision derives from the plan's seed, so a failing run
  /// replays exactly. Unset inherits SessionOptions::chaos; both unset =
  /// no injection and zero overhead on the execution path.
  std::optional<fault::FaultPlan> fault_plan;

  /// Re-dispatches after an attempt fails with Status::Unavailable (fault
  /// detection's verdict): the scheduler releases the lane, waits out a
  /// capped exponential backoff with deterministic jitter
  /// (retry_backoff_ms doubling up to retry_backoff_max_ms) and re-queues
  /// the query. Each attempt draws a fresh fault subsequence from the
  /// same plan. A deadline, if set, stays absolute across attempts.
  uint32_t max_retries = 0;
  double retry_backoff_ms = 10.0;
  double retry_backoff_max_ms = 1000.0;

  /// Graceful degradation: when set, one extra final attempt runs on this
  /// backend (single node) after max_retries attempts on the primary
  /// backend all returned Unavailable. The report marks fallback_used.
  std::optional<Backend> fallback_backend;

  /// kCluster fault-detection cadence (active only while a fault plan is
  /// armed): nodes broadcast liveness heartbeats every heartbeat_us, and
  /// a peer silent for liveness_timeout_ms fails the run with
  /// Status::Unavailable naming the suspected node. Node 0 additionally
  /// watches global progress to catch message loss that stalls the run
  /// without silencing anyone.
  uint32_t heartbeat_us = 500;
  uint32_t liveness_timeout_ms = 250;

  /// kSimulated: full machine override; when set, nodes/threads_per_node
  /// above are ignored and this config is used verbatim.
  std::optional<sim::SystemConfig> sim_config;
  /// kSimulated: simulation-event safety valve.
  uint64_t max_events = 2'000'000'000ULL;
  /// kSimulated: utilization-timeline bucket width (0 = off).
  SimTime timeline_bucket = 0;
};

/// Backend-normalized execution metrics. Fields a backend cannot measure
/// stay at their zero value; the raw per-backend metrics are kept in the
/// optional members for white-box consumers.
struct ExecutionReport {
  Backend backend = Backend::kSimulated;
  Strategy strategy = Strategy::kDP;

  /// Virtual response time (kSimulated) or wall-clock time (real backends).
  double response_ms = 0.0;
  /// Real backends: measured wall-clock seconds (== response_ms / 1000).
  double wall_seconds = 0.0;

  /// kSimulated: fraction of processor-time spent idle.
  double idle_fraction = 0.0;
  /// Real backends: waits with no runnable work (summed over threads/nodes).
  uint64_t idle_waits = 0;

  uint64_t activations = 0;  ///< activations processed (all backends)
  uint64_t tuples = 0;       ///< kSimulated: tuples processed

  /// Real backends: order-independent digest of the final result.
  bool has_result = false;
  uint64_t result_rows = 0;
  uint64_t result_checksum = 0;

  /// Inter-node traffic. kThreads is a single node: both stay 0.
  uint64_t pipeline_bytes = 0;  ///< pipelined redistribution (dataflow)
  uint64_t lb_bytes = 0;        ///< global load-balancing traffic

  /// kCluster, multi-chain plans: total rows/bytes of the distributed
  /// intermediates (non-final chain outputs, summed over nodes); zero for
  /// single-chain plans. Per-chain detail in cluster->per_chain.
  uint64_t intermediate_rows = 0;
  uint64_t intermediate_bytes = 0;

  uint64_t steals = 0;              ///< successful global acquisitions
  uint64_t stolen_activations = 0;

  /// Load imbalance: max over threads (kThreads) or nodes (kCluster) of
  /// busy / mean busy; 1.0 = perfectly balanced, 0 = not measured.
  double imbalance = 0.0;

  /// kSimulated: per-operator labels and global end times.
  std::vector<std::string> op_labels;
  std::vector<double> op_end_ms;

  /// Set when ExecOptions::validate was on (real backends).
  bool validated = false;
  bool reference_match = false;
  uint64_t reference_rows = 0;

  /// Set when ExecOptions::materialize was on: size of the materialized
  /// result (the rows themselves travel in QueryResult::rows).
  bool materialized = false;
  uint64_t materialized_rows = 0;
  uint64_t materialized_bytes = 0;

  /// kThreads with ExecOptions::reuse_builds: builds satisfied from the
  /// session build cache vs cacheable builds executed (and published).
  uint64_t build_cache_hits = 0;
  uint64_t build_cache_misses = 0;

  /// Real backends: rows dropped by scan-level Where predicates.
  uint64_t rows_filtered = 0;

  /// Real backends, catalog-only relations: rows dropped at bind time by
  /// pushing Where predicates into the synthesized tables (the executor
  /// then scans pre-filtered data; optimizer estimates still describe the
  /// unfiltered catalog cardinalities).
  uint64_t rows_prefiltered = 0;

  /// Set for queries with GroupBy/Agg: result groups, partial-table
  /// entries merged by the global phase, and (kCluster) the wire bytes of
  /// partials repartitioned to their home node. The result digest and any
  /// materialized rows are the aggregate rows.
  bool aggregated = false;
  uint64_t agg_groups = 0;
  uint64_t agg_partials = 0;
  uint64_t agg_repartition_bytes = 0;

  /// Estimated vs actual output cardinality per pipeline chain. Estimates
  /// come from the optimizer's System R defaults over the bound table
  /// sizes; actuals are measured by the real backends (has_actual false on
  /// kSimulated). Always present, tracing on or off.
  std::vector<obs::ChainCard> chain_cards;

  /// Set when ExecOptions::trace was on: the unified per-operator trace
  /// (operator tree + spans + instants), exportable via
  /// obs::ChromeTraceJson / obs::PlanDot / obs::PlanJson.
  std::shared_ptr<const obs::QueryTrace> trace;

  /// Robustness: which attempt produced this report (0 = first try),
  /// whether it ran on the degraded fallback backend, and how many
  /// injected faults fired during the winning attempt (detail per site in
  /// cluster->faults and PoolStats::worker_deaths).
  uint32_t attempt = 0;
  bool fallback_used = false;
  uint64_t faults_injected = 0;

  /// Plan-point capture (QueryBuilder::CapturePoint): the bounded,
  /// order-independent row samples taken at each named plan point, in
  /// declaration order. With ExecOptions::validate also set, each sample
  /// was compared against the reference executor's sample at the same
  /// point and captures_match reports whether every point agreed.
  std::vector<obs::CaptureResult> captures;
  bool captures_match = false;

  /// Path of the forensic bundle written for this query's anomaly
  /// (SessionOptions::forensics_dir); empty when none was written.
  std::string forensic_bundle;

  /// Raw backend metrics.
  std::optional<exec::RunMetrics> sim;
  std::optional<mt::PipelineStats> threads;
  std::optional<cluster::ClusterStats> cluster;

  std::string ToString() const;
};

/// What a finished query hands back: the normalized report, the optional
/// materialized row set, and the scheduler's timing breakdown.
struct QueryResult {
  ExecutionReport report;

  /// Set when ExecOptions::materialize was on: the final result rows
  /// (order unspecified — executions are parallel; the digest in `report`
  /// is the order-independent identity).
  bool materialized = false;
  mt::Batch rows;

  double queue_ms = 0.0;  ///< admission wait (submit -> dispatch)
  double exec_ms = 0.0;   ///< execution (dispatch -> completion)
  /// Order this query was dispatched in by its session's scheduler
  /// (1-based); exposes the admission policy's decisions to tests/benches.
  uint64_t dispatch_seq = 0;
};

/// Order in which the admission controller dispatches queued queries.
enum class AdmissionPolicy {
  kFifo,  ///< submission order
  /// Cheapest optimizer plan cost first (ties: FIFO), with an aging
  /// escape hatch: entries queued longer than SessionOptions::scf_aging_ms
  /// outrank cost ordering (FIFO among themselves), so sustained cheap
  /// traffic delays an expensive queued query by at most the aging bound
  /// instead of starving it.
  kShortestCostFirst,
  /// Earliest absolute deadline first (ExecOptions::deadline_ms measured
  /// from Submit); deadline-less queries dispatch FIFO after every
  /// deadline-carrying one.
  kEarliestDeadlineFirst,
  /// Cost-aware EDF: orders by latest feasible start (deadline minus the
  /// query's estimated run time, calibrated online from completed
  /// queries' observed ms-per-plan-cost), so a cheap query with a tight
  /// deadline and an expensive one with a looser deadline both start in
  /// time when possible. Deadline-less queries follow, cheapest first.
  kCostAwareEdf,
};

/// One tenant of a multi-tenant session: a weight (its share of
/// max_concurrent_queries, floored, minimum 1) and an optional private
/// queue-depth bound. The default tenant "" always exists with weight 1;
/// queries name their tenant in ExecOptions::tenant.
struct TenantOptions {
  std::string name;
  uint32_t weight = 1;
  /// Waiting-query bound for this tenant; 0 = SessionOptions::max_queued.
  /// Backpressure is per tenant: a full tenant's Submit completes with
  /// ResourceExhausted naming the tenant while others keep admitting.
  uint32_t max_queued = 0;
};

/// Per-session scheduling limits (fixed at Session construction).
struct SessionOptions {
  /// Queries executing at once; queries beyond this wait in the admission
  /// queue. 1 (the default) serializes — the pre-async behavior. 0 is
  /// treated as 1 (a zero-worker scheduler could never complete a query).
  uint32_t max_concurrent_queries = 1;
  /// Queries waiting for dispatch before Submit rejects with
  /// ResourceExhausted (handles complete immediately with that status).
  /// 0 is treated as 1 (every dispatch passes through the queue).
  uint32_t max_queued = 256;
  AdmissionPolicy admission = AdmissionPolicy::kFifo;
  /// Size of the session-wide worker pool real-backend queries rent from
  /// (ExecOptions::use_shared_pool); 0 = hardware_concurrency. Where the
  /// spawn path creates max_concurrent_queries x threads_per_node (x
  /// nodes) threads, the pool keeps total executor threads at this fixed
  /// machine-sized count, with idle workers stealing activations across
  /// query boundaries.
  uint32_t pool_threads = 0;
  /// kShortestCostFirst aging bound: a query queued longer than this
  /// outranks cost ordering and dispatches FIFO among its aged peers, so
  /// sustained cheap traffic delays an expensive queued query by at most
  /// this bound instead of starving it. 0 disables aging (pure,
  /// starvable shortest-cost-first).
  double scf_aging_ms = 10000.0;
  /// Byte budget for the session's build-side cache
  /// (ExecOptions::reuse_builds): publishing a build evicts
  /// least-recently-hit entries until resident hash-table bytes fit, so
  /// long-lived sessions cycling many (buckets, seed) configurations stay
  /// bounded. 0 (the default) = unbounded (AddTable still clears).
  uint64_t build_cache_bytes = 0;
  /// Continuous metrics export: when non-empty, the session appends one
  /// SessionMetrics::ToJson() line to this file every
  /// `metrics_export_every` completed queries and once more on
  /// destruction (JSONL — one snapshot object per line).
  std::string metrics_export_path;
  uint32_t metrics_export_every = 16;
  /// Additional tenants beyond the default "" tenant. Each tenant's hard
  /// in-flight share is max(1, floor(max_concurrent_queries * weight /
  /// total weight)) — weights are relative among all tenants including
  /// the default (weight 1). Empty = single-tenant session (every query
  /// bills against "").
  ///
  /// The floor of 1 can oversubscribe max_concurrent_queries when tenants
  /// outnumber it; the scheduler then clamps the largest shares (never
  /// below 1) until they sum within the global limit, and marks the
  /// affected tenants TenantStats::clamped. Size max_concurrent_queries
  /// >= tenant count for the configured weights to be honored exactly.
  std::vector<TenantOptions> tenants;
  /// Session-wide chaos default: queries whose ExecOptions::fault_plan is
  /// unset inherit this plan (a per-query plan overrides). Unset = no
  /// injection anywhere unless a query opts in.
  std::optional<fault::FaultPlan> chaos;

  /// The session's always-on flight recorder (obs/recorder.h): a bounded
  /// black box of recent admission/pool/fabric/executor events, kept hot
  /// whether or not any query traces. False disarms it entirely (the
  /// recording sites degrade to one null/branch check).
  bool flight_recorder = true;
  /// Ring pool size (distinct recording threads) and events retained per
  /// ring; 0 keeps the recorder defaults (48 rings x 1024 events).
  uint32_t recorder_rings = 0;
  uint32_t recorder_ring_events = 0;

  /// Directory for forensic bundles. When non-empty, an anomaly — a
  /// missed deadline, an Unavailable outcome, any retry or fallback, a
  /// validation digest mismatch, or an explicit Session::DumpForensics —
  /// writes bundle-<query>-<n>/ here: the recorder's ring contents as
  /// Chrome-trace JSON (flight.json), the implicated query's plan
  /// (plan.json), a full SessionMetrics snapshot (metrics.json), any
  /// capture-point samples (captures.json) and a manifest. Empty (the
  /// default) disables bundle writing; the recorder still records.
  std::string forensics_dir;
  /// Automatic-bundle cap per session (oldest-first, then anomalies stop
  /// producing bundles); explicit DumpForensics calls are not counted.
  uint32_t forensics_max_bundles = 8;
  /// Rows retained per capture point (QueryBuilder::CapturePoint).
  uint32_t capture_rows = 64;
};

/// Per-tenant scheduler snapshot (SchedulerStats::tenants).
struct TenantStats {
  std::string name;           ///< "" = default tenant
  uint32_t max_inflight = 0;  ///< resolved weighted concurrency share
  uint32_t max_queued = 0;    ///< resolved queue-depth bound
  uint32_t in_flight = 0;     ///< snapshot: executing now
  uint32_t queued = 0;        ///< snapshot: waiting now
  uint64_t submitted = 0;     ///< lifetime admissions
  uint64_t rejected = 0;      ///< lifetime backpressure rejections
  uint64_t deadline_missed = 0;
  /// The weighted share was reduced so per-tenant shares sum within
  /// max_concurrent_queries (more tenants than lanes).
  bool clamped = false;
};

/// Counters the session's scheduler maintains across its lifetime, plus a
/// snapshot of the current queue state.
struct SchedulerStats {
  uint64_t submitted = 0;  ///< admitted into the queue
  uint64_t completed = 0;  ///< finished OK
  uint64_t failed = 0;     ///< finished with an error status
  /// Cancelled before dispatch or stopped while running; a cancel that
  /// races completion (result delivered) is not counted here.
  uint64_t cancelled = 0;
  uint64_t rejected = 0;   ///< refused admission (queue full)
  /// Queries that hit their ExecOptions::deadline_ms: expired while
  /// waiting (never dispatched) vs stopped mid-execution. Both complete
  /// with Status::DeadlineExceeded and are counted here, not in `failed`.
  uint64_t deadline_missed = 0;
  uint64_t deadline_missed_queued = 0;
  /// Re-dispatches after an Unavailable attempt (ExecOptions::max_retries
  /// / fallback_backend): one count per extra attempt granted.
  uint64_t retries = 0;
  uint32_t max_in_flight = 0;  ///< high-water mark of concurrent queries
  uint32_t in_flight = 0;      ///< snapshot: currently executing
  uint32_t queued = 0;         ///< snapshot: waiting for dispatch
  /// Scheduler threads: the event loop (0 until the first Submit, then
  /// exactly 1 however deep the queue gets) and the execution lanes
  /// (bounded by max_concurrent_queries, created on demand).
  uint32_t loop_threads = 0;
  uint32_t lane_threads = 0;
  /// Event-loop counters: loop wakeups that found work, and deadline
  /// timers fired.
  uint64_t loop_wakeups = 0;
  uint64_t timers_fired = 0;
  /// Event-loop health gauges (sched::EventLoop::Stats): posted-queue
  /// high-water mark, cumulative/worst timer-wheel slip (a timer firing
  /// `slip` ns after its programmed expiry), and the dispatch-section
  /// latency percentiles (time from loop wakeup to handlers done).
  uint64_t loop_max_queue_depth = 0;
  uint64_t timer_slip_total_ns = 0;
  uint64_t timer_slip_max_ns = 0;
  double loop_lag_p50_ms = 0.0;
  double loop_lag_p99_ms = 0.0;
  /// Per-tenant breakdown; index 0 is always the default "" tenant.
  std::vector<TenantStats> tenants;
};

/// One consistent-enough snapshot of everything the session measures
/// continuously: scheduler lifetime counters, worker-pool and build-cache
/// state, and histogram-backed latency quantiles over every completed
/// query (execution and admission-queue delay separately). Readable at
/// any time without stopping in-flight queries.
struct SessionMetrics {
  SchedulerStats scheduler;
  PoolStats pool;
  mt::BuildCache::Stats build_cache;
  /// Flight-recorder counters (zero-valued when the recorder is off).
  obs::FlightRecorder::Stats recorder;

  uint64_t queries = 0;        ///< latency samples (completed queries)
  double exec_mean_ms = 0.0;
  double exec_p50_ms = 0.0;
  double exec_p95_ms = 0.0;
  double exec_p99_ms = 0.0;
  double queue_mean_ms = 0.0;
  double queue_p50_ms = 0.0;
  double queue_p95_ms = 0.0;
  double queue_p99_ms = 0.0;

  /// One JSON object (single line, no trailing newline) — the JSONL record
  /// the periodic export appends.
  std::string ToJson() const;
  std::string ToString() const;
};

namespace internal {
struct QueryState;
}  // namespace internal

class Scheduler;

/// Future-like handle to a submitted query. Handles are cheap to copy
/// (shared state) and may outlive their Session: destroying the session
/// drains the scheduler, so every handle completes first.
class QueryHandle {
 public:
  QueryHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the query completes (or was cancelled/rejected).
  void Wait() const;
  /// Blocks up to `timeout`; returns whether the query completed. An
  /// empty handle is trivially "done". Useful for bounded waits in chaos
  /// tests and for polling without burning a thread on Wait().
  bool WaitFor(std::chrono::milliseconds timeout) const;
  /// True once the result is available (non-blocking).
  bool Done() const;
  /// Cancels the query. Before dispatch the handle completes immediately
  /// with a Cancelled status; a *running* query is stopped cooperatively
  /// (its executor workers check a stop token once per activation batch)
  /// and the handle completes with Cancelled shortly after. Returns false
  /// when the query already finished or a cancel already won. A cancel
  /// racing completion may still deliver the finished result (counted as
  /// completed, not cancelled, in SchedulerStats).
  bool Cancel();
  /// Waits and moves the result out. A second Take (or Take on an empty
  /// handle) returns FailedPrecondition.
  Result<QueryResult> Take();

 private:
  friend class Scheduler;
  explicit QueryHandle(std::shared_ptr<internal::QueryState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::QueryState> state_;
};

/// Throughput report for a stream of queries run through Submit/Take.
struct StreamReport {
  uint32_t submitted = 0;
  uint32_t succeeded = 0;
  uint32_t failed = 0;  ///< rejected, cancelled or errored

  double makespan_ms = 0.0;  ///< first Submit -> last completion
  double serial_ms = 0.0;    ///< sum of per-query execution latencies
  double qps = 0.0;          ///< succeeded / makespan
  double mean_ms = 0.0;      ///< mean per-query execution latency
  double p50_ms = 0.0;       ///< median execution latency
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  /// Mean relative cardinality-estimation error over every (query, chain)
  /// with a measured actual: |actual - estimated| / max(estimated, 1).
  /// 0 when no chain reported an actual (e.g. a simulated stream).
  double mean_card_error = 0.0;

  /// Build-side reuse over the whole stream (kThreads + reuse_builds):
  /// totals of the per-query ExecutionReport counters.
  uint64_t build_cache_hits = 0;
  uint64_t build_cache_misses = 0;

  /// Filter/aggregation totals over the stream (per-query counters
  /// summed; zero when the stream carries no Where/GroupBy queries).
  uint64_t rows_filtered = 0;
  uint64_t agg_groups = 0;
  uint64_t agg_partials = 0;
  uint64_t agg_repartition_bytes = 0;

  /// Robustness totals (chaos streams): queries that needed more than one
  /// attempt, queries that degraded to their fallback backend, and
  /// queries that still failed Unavailable after exhausting attempts.
  uint64_t retried = 0;
  uint64_t fallbacks = 0;
  uint64_t unavailable = 0;
  uint64_t faults_injected = 0;  ///< faults fired across winning attempts

  std::vector<Result<QueryResult>> results;  ///< in submission order

  std::string ToString() const;
};

class Session;

/// A backend-neutral query: either a predicate graph over the session's
/// relations (optionally with an explicit join tree or shape constraint),
/// or an explicit pipeline chain over registered tables. Build one with
/// Session::NewQuery().
class Query {
 public:
  Query() = default;

  bool is_chain() const { return chain_; }
  uint32_t num_joins() const {
    return static_cast<uint32_t>(chain_ ? steps_.size() : edges_.size());
  }

 private:
  friend class QueryBuilder;
  friend class Session;

  struct Edge {
    RelId a = 0;
    RelId b = 0;
    double selectivity = 0.0;  ///< <= 0: default FK selectivity
    uint32_t col_a = 0;
    uint32_t col_b = 0;
    bool has_cols = false;  ///< explicit join columns (real-data execution)
  };
  std::vector<Edge> edges_;
  std::optional<plan::JoinTree> tree_;  ///< explicit tree override
  opt::ShapeOptions shape_;             ///< used when no explicit tree
  bool shape_set_ = false;              ///< Shape() was called explicitly

  bool chain_ = false;
  bool has_input_ = false;  ///< Scan() was called
  RelId input_ = 0;
  struct Step {
    RelId build = 0;
    uint32_t probe_col = 0;  ///< column in the pipelined row
    uint32_t build_col = 0;  ///< column in the build relation
    double selectivity = 0.0;
  };
  std::vector<Step> steps_;

  /// Scan-level filters and the optional GROUP BY/aggregation, shared by
  /// both query forms. Columns are relation-qualified (rel, col) so the
  /// query stays valid whatever join tree the optimizer chooses.
  struct FilterSpec {
    RelId rel = 0;
    uint32_t col = 0;
    CmpOp cmp = CmpOp::kEq;
    int64_t value = 0;
  };
  struct GroupColSpec {
    RelId rel = 0;
    uint32_t col = 0;
  };
  struct AggSpecItem {
    AggFn fn = AggFn::kCount;
    RelId rel = 0;
    uint32_t col = 0;
    bool has_col = false;  ///< false: COUNT(*) — no column referenced
  };
  std::vector<FilterSpec> filters_;
  std::vector<GroupColSpec> group_by_;
  std::vector<AggSpecItem> agg_items_;

  /// Post-aggregation (HAVING) predicate: over an aggregate (`on_agg`,
  /// matched against agg_items_) or a grouping column (matched against
  /// group_by_). Resolved to an output-row column at plan time.
  struct HavingSpec {
    bool on_agg = false;
    AggFn fn = AggFn::kCount;
    RelId rel = 0;
    uint32_t col = 0;
    bool has_col = false;  ///< false with on_agg: COUNT(*)
    CmpOp cmp = CmpOp::kEq;
    int64_t value = 0;
  };
  std::vector<HavingSpec> having_;

  /// Plan-point captures (QueryBuilder::CapturePoint): `point` is the
  /// position in the chain where the builder call appeared — 0 right
  /// after Scan() (the scan's filtered, projected output), j after the
  /// j-th Probe() (that join's output). Chain form only.
  struct CaptureSpec {
    std::string name;
    uint32_t point = 0;
  };
  std::vector<CaptureSpec> captures_;

 public:
  bool has_agg() const { return !group_by_.empty() || !agg_items_.empty(); }
  bool has_captures() const { return !captures_.empty(); }
};

/// Fluent builder. Graph form:
///   db.NewQuery().Join(a, b).Join(b, c, sel).Shape(kRightDeep).Build()
/// Chain form (explicit pipeline over registered tables):
///   db.NewQuery().Scan(fact).Probe(d1, 1, 0).Probe(d2, 2, 0).Build()
class QueryBuilder {
 public:
  QueryBuilder() = default;

  /// Adds a join predicate a-b. selectivity <= 0 picks the FK default
  /// max(|A|,|B|) / (|A|*|B|) (each result about the larger input).
  QueryBuilder& Join(RelId a, RelId b, double selectivity = 0.0);

  /// Join predicate with explicit join columns; when every edge carries
  /// columns and every relation has registered data, the real backends run
  /// on the registered tables instead of synthesized ones.
  QueryBuilder& JoinOn(RelId a, uint32_t col_a, RelId b, uint32_t col_b,
                       double selectivity = 0.0);

  /// Overrides the optimizer with an explicit join tree.
  QueryBuilder& Tree(plan::JoinTree tree);

  /// Constrains the optimizer's tree shape (default: bushy).
  QueryBuilder& Shape(opt::TreeShape shape, uint32_t segment_length = 3);

  /// Chain form: the driving scan.
  QueryBuilder& Scan(RelId input);

  /// Chain form: one hash-join step. `probe_col` indexes the pipelined
  /// row (input columns, then each build's columns appended in step
  /// order); `build_col` indexes the build relation.
  QueryBuilder& Probe(RelId build, uint32_t probe_col,
                      uint32_t build_col = 0, double selectivity = 0.0);

  /// Scan-level filter: keep only `rel` rows whose column `col` compares
  /// `cmp` against `value`. Applied where the relation's rows enter the
  /// pipeline (the driving scan or a build's scatter) on every backend;
  /// multiple Where calls on one relation conjoin. Works with both query
  /// forms; `rel` must be joined by the query.
  QueryBuilder& Where(RelId rel, uint32_t col, CmpOp cmp, int64_t value);

  /// GROUP BY column `col` of relation `rel` (multiple calls build a
  /// compound key). The result rows become [group values..., aggregates
  /// ...]; with no GroupBy the aggregates reduce to a single global group.
  QueryBuilder& GroupBy(RelId rel, uint32_t col);

  /// Aggregate `fn` over column `col` of relation `rel`. COUNT ignores
  /// the column (use Count() for the argument-free spelling). GroupBy
  /// with no aggregates yields the distinct group combinations.
  QueryBuilder& Agg(AggFn fn, RelId rel, uint32_t col = 0);

  /// COUNT(*) — rows per group.
  QueryBuilder& Count();

  /// HAVING over an aggregate: keep only groups whose `fn(rel.col)` value
  /// compares `cmp` against `value`. The aggregate must also appear in an
  /// Agg() call (HAVING filters the output rows; it never adds columns).
  /// Multiple Having calls conjoin. Applied identically on every backend
  /// as the groups are finalized — digests and materialized rows agree.
  QueryBuilder& Having(AggFn fn, RelId rel, uint32_t col, CmpOp cmp,
                       int64_t value);
  /// HAVING over a grouping column (must appear in a GroupBy() call).
  QueryBuilder& Having(RelId rel, uint32_t col, CmpOp cmp, int64_t value);
  /// HAVING COUNT(*) `cmp` `value` (requires a Count() aggregate).
  QueryBuilder& HavingCount(CmpOp cmp, int64_t value);

  /// Plan-point capture: samples the rows flowing past the *current*
  /// position in the chain — right after Scan() the scan's output
  /// (post-filter, post-projection), after the j-th Probe() that join's
  /// output. The sample is bounded (SessionOptions::capture_rows) and
  /// order-independent (bottom-k by content hash), so the same point
  /// captured on the threads backend, the cluster backend and the
  /// single-threaded reference retains identical rows — the executors'
  /// answer at that operator is comparable offline. Chain form only;
  /// real backends only. Results land in ExecutionReport::captures and in
  /// forensic bundles.
  QueryBuilder& CapturePoint(std::string name);

  Query Build() const { return q_; }

 private:
  Query q_;
};

/// The session: owns the catalog (and any registered real data), plans
/// queries once, and executes them on the backend selected in ExecOptions
/// through a per-session scheduler with admission control. Real-backend
/// queries rent workers from a session-wide pool sized to the machine
/// (SessionOptions::pool_threads) and share build-side hash tables
/// through the session build cache; see ExecOptions::use_shared_pool and
/// ExecOptions::reuse_builds.
///
/// Thread safety: Submit/Execute/RunStream/Explain may be called from any
/// thread. Registering relations or tables while previously submitted
/// queries are still executing is supported (table storage is
/// pointer-stable and executions reference plan-time snapshots), but
/// registration must not race a concurrent Submit/Execute/Explain *call*
/// on another thread (planning reads the catalog unlocked).
class Session {
 public:
  Session();
  explicit Session(const SessionOptions& options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Declares a catalog-only relation (cardinality + tuple width). Real
  /// backends synthesize data for it on demand (ExecOptions::bind_scale).
  RelId AddRelation(std::string name, uint64_t cardinality,
                    uint32_t tuple_bytes = 100);

  /// Registers real data; the catalog entry (name, cardinality, width) is
  /// derived from the table. Real backends run on these rows verbatim.
  RelId AddTable(mt::Table table);

  const catalog::Catalog& catalog() const { return catalog_; }
  /// Registered data for `id`, or nullptr for catalog-only relations.
  const mt::Table* table(RelId id) const;
  /// Per-column statistics (min/max + approximate distinct counts) of a
  /// registered table, computed at AddTable; nullptr for catalog-only
  /// relations. Indexed by column.
  const std::vector<mt::ColumnStats>* table_stats(RelId id) const;

  QueryBuilder NewQuery() const { return QueryBuilder(); }

  /// Plans `q` on the calling thread and submits it for execution on the
  /// selected backend. Validation and planning errors come back through
  /// the returned handle (already completed); admitted queries dispatch
  /// when the admission controller grants them a slot.
  QueryHandle Submit(const Query& q, const ExecOptions& opts);

  /// Synchronous convenience: Submit + Take, report only. Queues behind
  /// other in-flight queries like any submission.
  Result<ExecutionReport> Execute(const Query& q, const ExecOptions& opts);

  /// Submits every query, waits for all, and summarizes throughput.
  StreamReport RunStream(const std::vector<Query>& queries,
                         const ExecOptions& opts);

  /// Lifetime counters + queue snapshot of this session's scheduler.
  SchedulerStats scheduler_stats() const;

  /// Worker-pool counters (pool size, tasks run, cross-query steals) plus
  /// the thread count created by legacy spawn-path executions.
  PoolStats pool_stats() const;

  /// Build-side reuse cache counters (hits/misses/entries/bytes).
  mt::BuildCache::Stats build_cache_stats() const;

  /// Renders the chosen join tree, its chain decomposition and the
  /// per-backend plan bridges for `q` under `opts`.
  Result<std::string> Explain(const Query& q, const ExecOptions& opts) const;

  /// Graphviz DOT of `q`'s operator tree under `opts` (the plan the
  /// selected backend would run), annotated with estimated cardinalities.
  /// Tracing a real execution and feeding ExecutionReport::trace to
  /// obs::PlanDot yields the same graph with actuals and span timings.
  Result<std::string> ExplainDot(const Query& q, const ExecOptions& opts) const;

  /// Continuous session metrics: scheduler/pool/cache counters plus
  /// latency quantiles over every query completed so far. Cheap and safe
  /// to call at any time (histogram reads don't stop writers).
  SessionMetrics MetricsSnapshot() const;

  /// The session's flight recorder; null when SessionOptions disarmed it.
  obs::FlightRecorder* recorder() const { return recorder_.get(); }

  /// Explicitly dumps a forensic bundle (ring snapshot + metrics) right
  /// now, outside any anomaly — the "something looks off, grab the black
  /// box" entry point. Requires SessionOptions::forensics_dir; does not
  /// count against forensics_max_bundles. Returns the bundle directory.
  Result<std::string> DumpForensics(const std::string& reason = "manual");

 private:
  friend class Scheduler;
  struct Planned;

  /// Per-attempt fault/retry context threaded into the backend runners:
  /// the query's injector (null = no chaos), the attempt index, and
  /// whether this attempt is the degraded-fallback one.
  struct FaultCtx {
    fault::FaultInjector* injector = nullptr;
    uint32_t attempt = 0;
    bool fallback = false;
    /// Scheduler admission seq — the query tag recorder events carry.
    uint64_t query_seq = 0;
  };

  /// `want_real` additionally builds the real-data bridge (tables +
  /// pipeline plan); the simulated backend skips that work.
  Status PlanQuery(const Query& q, const ExecOptions& opts, bool want_real,
                   Planned* out) const;
  /// Backend-shape checks shared by Submit and Explain.
  Status ValidateOptions(const ExecOptions& opts) const;
  /// Runs a planned query on its backend (called from scheduler lanes;
  /// `stop` is the query's cooperative cancel/deadline token and
  /// `queue_wait_ms` the admission-queue wait, recorded as a kSchedule
  /// trace instant on the real-data backends).
  Result<QueryResult> RunPlanned(const Planned& p, const ExecOptions& opts,
                                 double queue_wait_ms,
                                 const std::atomic<bool>& stop,
                                 const FaultCtx& fc) const;
  Result<QueryResult> RunSimulated(const Planned& p, const ExecOptions& opts,
                                   const std::atomic<bool>& stop) const;
  Result<QueryResult> RunThreads(const Planned& p, const ExecOptions& opts,
                                 double queue_wait_ms,
                                 const std::atomic<bool>& stop,
                                 const FaultCtx& fc) const;
  Result<QueryResult> RunCluster(const Planned& p, const ExecOptions& opts,
                                 double queue_wait_ms,
                                 const std::atomic<bool>& stop,
                                 const FaultCtx& fc) const;
  /// The query's worker provider per ExecOptions::use_shared_pool. The
  /// injector (nullable) arms worker-death injection on pooled rentals;
  /// the legacy spawn path never injects deaths.
  std::unique_ptr<ExecContext> MakeContext(
      const ExecOptions& opts, const std::atomic<bool>& stop,
      fault::FaultInjector* injector) const;

  /// The always-on black box (SessionOptions::flight_recorder). Declared
  /// FIRST: every other subsystem (scheduler, pool, per-query executors)
  /// holds a raw pointer into it and must be destroyed before it.
  std::unique_ptr<obs::FlightRecorder> recorder_;

  catalog::Catalog catalog_;
  /// Registered data, aligned with RelIds. A deque never relocates
  /// existing elements on registration, so executing queries' table
  /// pointers stay valid while new tables are added (see the class
  /// thread-safety note).
  struct TableSlot {
    std::optional<mt::Table> table;
    uint64_t content_hash = 0;  ///< build-cache identity (0 = catalog-only)
    /// Per-column min/max + approximate distinct counts, computed once at
    /// AddTable. The planner's predicate short-circuit (always-true /
    /// always-false Where folds) reads the [min, max] envelope.
    std::vector<mt::ColumnStats> stats;
  };
  std::deque<TableSlot> tables_;
  /// The deterministic simulator runs one query at a time (so concurrent
  /// submissions stay reproducible); real backends overlap freely.
  mutable std::mutex sim_mu_;
  /// Session-wide worker pool (rented by pooled executions; created
  /// lazily on first rental so simulated-only or spawn-only sessions
  /// never pay for pool threads) and the shared build-side cache.
  /// Declared before the scheduler: in-flight queries use both, so the
  /// scheduler must drain first on destruction.
  WorkerPool& EnsurePool() const;
  uint32_t pool_threads_ = 0;  ///< normalized SessionOptions::pool_threads
  mutable std::mutex pool_mu_;
  mutable std::unique_ptr<WorkerPool> pool_;
  /// Threads created by spawn-path executions (merged into pool_stats()).
  mutable std::atomic<uint64_t> spawned_threads_{0};
  mutable mt::BuildCache build_cache_;
  /// Continuous latency metrics, recorded at query completion (any
  /// outcome that executed) and read by MetricsSnapshot.
  SessionOptions session_options_;
  mutable obs::LatencyHistogram exec_hist_;
  mutable obs::LatencyHistogram queue_hist_;
  mutable std::atomic<uint64_t> completions_{0};
  mutable std::mutex metrics_export_mu_;
  /// Records one completed query and drives the periodic JSONL export.
  void RecordCompletion(double queue_ms, double exec_ms) const;
  void ExportMetricsLine() const;
  /// Assembles one forensic bundle under SessionOptions::forensics_dir:
  /// flight.json (ring snapshot as Chrome-trace JSON), metrics.json,
  /// manifest.json, plus plan.json / captures.json when a planned query
  /// and capture samples are at hand. `counted` bundles respect
  /// forensics_max_bundles (automatic anomaly dumps); uncounted ones
  /// (explicit DumpForensics) always write. Returns the bundle directory
  /// ("" when skipped or the directory could not be created).
  std::string WriteForensicBundle(
      const std::string& reason, uint64_t query_seq, const Planned* planned,
      const ExecOptions* opts,
      const std::vector<obs::CaptureResult>* captures, bool counted) const;
  /// Forensic-bundle bookkeeping (bundle numbering + the automatic cap).
  mutable std::mutex forensics_mu_;
  mutable uint32_t forensic_bundles_ = 0;  ///< total written (dir suffix)
  mutable uint32_t forensic_counted_ = 0;  ///< automatic ones, vs the cap
  /// Declared last: destroyed first, draining in-flight queries before the
  /// catalog/tables/pool/cache they reference go away.
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace hierdb::api

#endif  // HIERDB_API_SESSION_H_
