// hierdb::api::Session — the unified front door over the three executor
// backends.
//
// The paper evaluates one execution model (DP vs FP vs SP on a
// hierarchical machine) through three lenses this repo implements as three
// stacks: the deterministic simulator (exec::Engine), the real-thread
// SM-node executor (mt::PipelineExecutor) and the multi-node cluster
// executor (cluster::ClusterExecutor). The Session collapses their three
// front doors into one:
//
//   api::Session db;
//   auto fact = db.AddTable(mt::MakeTable("fact", 100000, 4, 2000, 1));
//   auto dim  = db.AddTable(mt::MakeTable("dim", 2000, 2, 100, 2));
//   api::Query q = db.NewQuery().Scan(fact).Probe(dim, 1, 0).Build();
//   api::ExecOptions opts;
//   opts.backend = api::Backend::kThreads;
//   opts.strategy = Strategy::kDP;
//   auto report = db.Execute(q, opts);
//
// A Query is backend-neutral: either a predicate (join) graph with
// selectivities — optionally with an explicit join tree or a shape
// constraint — or an explicit pipeline chain over registered tables. The
// Session optimizes it once into a bushy join tree and bridges that single
// logical plan into each backend's representation:
//
//   kSimulated   plan::MacroExpand + exec::Engine on the simulated
//                hierarchical machine (the paper's evaluation vehicle);
//   kThreads     mt::PipelinePlan + mt::PipelineExecutor on one SM-node of
//                real threads and real tuples;
//   kCluster     cluster::PlanQuery + cluster::ClusterExecutor across
//                message-coupled SM-nodes: the whole chain DAG runs on the
//                cluster, with every chain's output kept distributed and
//                repartitioned to its consumer by tuple-batch shipping.
//
// ExecutionReport normalizes the three metrics structs (response time,
// idle measures, activations, tuples, pipeline/steal bytes, per-operator
// end times where available) and keeps the raw backend metrics for
// white-box consumers.

#ifndef HIERDB_API_SESSION_H_
#define HIERDB_API_SESSION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "cluster/cluster_executor.h"
#include "common/status.h"
#include "common/strategy.h"
#include "common/units.h"
#include "exec/engine.h"
#include "mt/pipeline_executor.h"
#include "mt/row.h"
#include "opt/tree_shapes.h"
#include "plan/join_graph.h"
#include "plan/operator_tree.h"
#include "sim/config.h"

namespace hierdb::api {

using catalog::RelId;

/// Which executor stack runs the query.
enum class Backend { kSimulated, kThreads, kCluster };

const char* BackendName(Backend b);

/// One options struct for every backend. Knobs that a backend does not
/// implement are ignored there (see per-field comments); 0 means "backend
/// default" for the granularity knobs.
struct ExecOptions {
  Backend backend = Backend::kSimulated;
  Strategy strategy = Strategy::kDP;

  /// Machine shape: SM-nodes x processors-per-node. kThreads is a single
  /// SM-node and requires nodes == 1; kSP requires nodes == 1 everywhere
  /// (synchronous pipelining is shared-memory only).
  uint32_t nodes = 1;
  uint32_t threads_per_node = 4;

  /// Seed for every per-run randomness (bucket shuffles, data synthesis,
  /// FP cost distortion, placement skew).
  uint64_t seed = 1;

  /// Attribute-value skew (Zipf theta, Section 5.2.2) — one meaning on
  /// every backend: kSimulated models it as redistribution skew over the
  /// bucket space; the real backends draw synthesized foreign-key columns
  /// Zipf(theta)-distributed (graph-form queries over catalog-only
  /// relations). Registered tables carry their own distribution — build
  /// them with mt::MakeSkewedTable to inject skew there.
  double skew_theta = 0.0;

  /// kCluster only: tuple-placement skew — driving scan inputs are placed
  /// across nodes in Zipf(theta)-sized shares instead of round-robin
  /// (Section 5.3's load-imbalance experiments).
  double placement_theta = 0.0;

  /// FP only: cost-model error rate r; per-operator cost estimates are
  /// distorted by factors in [1-r, 1+r] before allocation (Figure 7).
  /// Honored by every backend.
  double fp_error_rate = 0.0;

  /// Shared fragmentation / granularity knobs; 0 = backend default.
  uint32_t buckets = 0;          ///< degree of fragmentation per operator
  uint32_t morsel_rows = 0;      ///< trigger-activation granularity (real)
  uint32_t batch_rows = 0;       ///< data-activation granularity (real)
  uint32_t queue_capacity = 0;   ///< flow control (activations per queue)

  bool global_lb = true;   ///< inter-node load sharing (kSimulated/kCluster)
  bool apply_h1 = true;    ///< H1: chain scan waits for its hash tables
  /// H2: chains execute one at a time. On kCluster this selects staged
  /// chain scheduling (the default): chains run back-to-back in plan
  /// order; false lets independent chains whose inputs are all complete
  /// execute concurrently on the same node/thread topology.
  bool apply_h2 = true;

  /// kCluster steal knobs; 0 = backend default.
  uint32_t steal_batch = 0;  ///< max activations per acquisition
  uint32_t min_steal = 0;    ///< provider offers only above this depth

  /// Real backends only: catalog-only relations (no registered table) are
  /// synthesized at `bind_scale` of their catalog cardinality.
  double bind_scale = 0.01;
  uint64_t bind_min_rows = 16;

  /// Real backends: also run the single-threaded reference execution and
  /// record the comparison in the report.
  bool validate = false;

  /// kSimulated: full machine override; when set, nodes/threads_per_node
  /// above are ignored and this config is used verbatim.
  std::optional<sim::SystemConfig> sim_config;
  /// kSimulated: simulation-event safety valve.
  uint64_t max_events = 2'000'000'000ULL;
  /// kSimulated: utilization-timeline bucket width (0 = off).
  SimTime timeline_bucket = 0;
};

/// Backend-normalized execution metrics. Fields a backend cannot measure
/// stay at their zero value; the raw per-backend metrics are kept in the
/// optional members for white-box consumers.
struct ExecutionReport {
  Backend backend = Backend::kSimulated;
  Strategy strategy = Strategy::kDP;

  /// Virtual response time (kSimulated) or wall-clock time (real backends).
  double response_ms = 0.0;
  /// Real backends: measured wall-clock seconds (== response_ms / 1000).
  double wall_seconds = 0.0;

  /// kSimulated: fraction of processor-time spent idle.
  double idle_fraction = 0.0;
  /// Real backends: waits with no runnable work (summed over threads/nodes).
  uint64_t idle_waits = 0;

  uint64_t activations = 0;  ///< activations processed (all backends)
  uint64_t tuples = 0;       ///< kSimulated: tuples processed

  /// Real backends: order-independent digest of the final result.
  bool has_result = false;
  uint64_t result_rows = 0;
  uint64_t result_checksum = 0;

  /// Inter-node traffic. kThreads is a single node: both stay 0.
  uint64_t pipeline_bytes = 0;  ///< pipelined redistribution (dataflow)
  uint64_t lb_bytes = 0;        ///< global load-balancing traffic

  /// kCluster, multi-chain plans: total rows/bytes of the distributed
  /// intermediates (non-final chain outputs, summed over nodes); zero for
  /// single-chain plans. Per-chain detail in cluster->per_chain.
  uint64_t intermediate_rows = 0;
  uint64_t intermediate_bytes = 0;

  uint64_t steals = 0;              ///< successful global acquisitions
  uint64_t stolen_activations = 0;

  /// Load imbalance: max over threads (kThreads) or nodes (kCluster) of
  /// busy / mean busy; 1.0 = perfectly balanced, 0 = not measured.
  double imbalance = 0.0;

  /// kSimulated: per-operator labels and global end times.
  std::vector<std::string> op_labels;
  std::vector<double> op_end_ms;

  /// Set when ExecOptions::validate was on (real backends).
  bool validated = false;
  bool reference_match = false;
  uint64_t reference_rows = 0;

  /// Raw backend metrics.
  std::optional<exec::RunMetrics> sim;
  std::optional<mt::PipelineStats> threads;
  std::optional<cluster::ClusterStats> cluster;

  std::string ToString() const;
};

class Session;

/// A backend-neutral query: either a predicate graph over the session's
/// relations (optionally with an explicit join tree or shape constraint),
/// or an explicit pipeline chain over registered tables. Build one with
/// Session::NewQuery().
class Query {
 public:
  Query() = default;

  bool is_chain() const { return chain_; }
  uint32_t num_joins() const {
    return static_cast<uint32_t>(chain_ ? steps_.size() : edges_.size());
  }

 private:
  friend class QueryBuilder;
  friend class Session;

  struct Edge {
    RelId a = 0;
    RelId b = 0;
    double selectivity = 0.0;  ///< <= 0: default FK selectivity
    uint32_t col_a = 0;
    uint32_t col_b = 0;
    bool has_cols = false;  ///< explicit join columns (real-data execution)
  };
  std::vector<Edge> edges_;
  std::optional<plan::JoinTree> tree_;  ///< explicit tree override
  opt::ShapeOptions shape_;             ///< used when no explicit tree
  bool shape_set_ = false;              ///< Shape() was called explicitly

  bool chain_ = false;
  bool has_input_ = false;  ///< Scan() was called
  RelId input_ = 0;
  struct Step {
    RelId build = 0;
    uint32_t probe_col = 0;  ///< column in the pipelined row
    uint32_t build_col = 0;  ///< column in the build relation
    double selectivity = 0.0;
  };
  std::vector<Step> steps_;
};

/// Fluent builder. Graph form:
///   db.NewQuery().Join(a, b).Join(b, c, sel).Shape(kRightDeep).Build()
/// Chain form (explicit pipeline over registered tables):
///   db.NewQuery().Scan(fact).Probe(d1, 1, 0).Probe(d2, 2, 0).Build()
class QueryBuilder {
 public:
  QueryBuilder() = default;

  /// Adds a join predicate a-b. selectivity <= 0 picks the FK default
  /// max(|A|,|B|) / (|A|*|B|) (each result about the larger input).
  QueryBuilder& Join(RelId a, RelId b, double selectivity = 0.0);

  /// Join predicate with explicit join columns; when every edge carries
  /// columns and every relation has registered data, the real backends run
  /// on the registered tables instead of synthesized ones.
  QueryBuilder& JoinOn(RelId a, uint32_t col_a, RelId b, uint32_t col_b,
                       double selectivity = 0.0);

  /// Overrides the optimizer with an explicit join tree.
  QueryBuilder& Tree(plan::JoinTree tree);

  /// Constrains the optimizer's tree shape (default: bushy).
  QueryBuilder& Shape(opt::TreeShape shape, uint32_t segment_length = 3);

  /// Chain form: the driving scan.
  QueryBuilder& Scan(RelId input);

  /// Chain form: one hash-join step. `probe_col` indexes the pipelined
  /// row (input columns, then each build's columns appended in step
  /// order); `build_col` indexes the build relation.
  QueryBuilder& Probe(RelId build, uint32_t probe_col,
                      uint32_t build_col = 0, double selectivity = 0.0);

  Query Build() const { return q_; }

 private:
  Query q_;
};

/// The session: owns the catalog (and any registered real data), plans
/// queries once, and executes them on the backend selected in ExecOptions.
class Session {
 public:
  Session() = default;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Declares a catalog-only relation (cardinality + tuple width). Real
  /// backends synthesize data for it on demand (ExecOptions::bind_scale).
  RelId AddRelation(std::string name, uint64_t cardinality,
                    uint32_t tuple_bytes = 100);

  /// Registers real data; the catalog entry (name, cardinality, width) is
  /// derived from the table. Real backends run on these rows verbatim.
  RelId AddTable(mt::Table table);

  const catalog::Catalog& catalog() const { return catalog_; }
  /// Registered data for `id`, or nullptr for catalog-only relations.
  const mt::Table* table(RelId id) const;

  QueryBuilder NewQuery() const { return QueryBuilder(); }

  /// Plans `q` once and executes it on the selected backend.
  Result<ExecutionReport> Execute(const Query& q,
                                  const ExecOptions& opts) const;

  /// Renders the chosen join tree, its chain decomposition and the
  /// per-backend plan bridges for `q` under `opts`.
  Result<std::string> Explain(const Query& q, const ExecOptions& opts) const;

 private:
  struct Planned;

  /// `want_real` additionally builds the real-data bridge (tables +
  /// pipeline plan); the simulated backend skips that work.
  Status PlanQuery(const Query& q, const ExecOptions& opts, bool want_real,
                   Planned* out) const;
  Result<ExecutionReport> RunSimulated(const Planned& p,
                                       const ExecOptions& opts) const;
  Result<ExecutionReport> RunThreads(const Planned& p,
                                     const ExecOptions& opts) const;
  Result<ExecutionReport> RunCluster(const Planned& p,
                                     const ExecOptions& opts) const;

  catalog::Catalog catalog_;
  std::vector<std::optional<mt::Table>> tables_;  ///< aligned with RelIds
};

}  // namespace hierdb::api

#endif  // HIERDB_API_SESSION_H_
