// Tests for the fault-injection subsystem and the recovery stack above
// it: seeded deterministic injector decisions, fabric message faults
// (drop / duplicate / delay), cluster fault detection (heartbeat liveness
// + progress watchdog) surfacing typed Unavailable statuses, scheduler
// retry with backoff, graceful degradation to a fallback backend, worker
// death-with-recovery in the session pool, QueryHandle::WaitFor, and the
// tenant-share clamp. The invariant asserted throughout: under any seeded
// schedule a query either succeeds digest-identical to a clean run or
// fails with a typed status — never a hang, never a silent wrong answer.

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "mt/row.h"
#include "net/fabric.h"

namespace hierdb {
namespace {

using api::Backend;
using api::ExecOptions;
using api::ExecutionReport;
using api::Query;
using api::QueryHandle;
using api::QueryResult;
using api::RelId;
using api::Session;
using api::SessionOptions;
using api::StreamReport;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::Site;
using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// Injector determinism

TEST(FaultInjector, DecisionIsPureInSeedSiteOrdinal) {
  for (uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    for (Site site : {Site::kFabricDrop, Site::kNodeStall, Site::kWorkerDeath}) {
      for (uint64_t n = 0; n < 64; ++n) {
        double a = FaultInjector::Decision(seed, site, n);
        double b = FaultInjector::Decision(seed, site, n);
        EXPECT_EQ(a, b);
        EXPECT_GE(a, 0.0);
        EXPECT_LT(a, 1.0);
      }
    }
  }
  // Different seeds and different sites decorrelate: over 64 ordinals at
  // least one decision must differ (probability of this failing for a
  // working hash is ~2^-3000).
  bool differs = false;
  for (uint64_t n = 0; n < 64 && !differs; ++n) {
    differs = FaultInjector::Decision(1, Site::kFabricDrop, n) !=
              FaultInjector::Decision(2, Site::kFabricDrop, n);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, SameSeedSameCallSequenceSameFiringLog) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_prob = 0.3;
  plan.dup_prob = 0.2;
  plan.worker_death_prob = 0.25;

  FaultInjector a(plan), b(plan);
  std::vector<bool> fa, fb;
  for (int i = 0; i < 200; ++i) {
    fa.push_back(a.ShouldDropMessage());
    fa.push_back(a.ShouldDuplicateMessage());
    fa.push_back(a.ShouldKillWorker());
    fb.push_back(b.ShouldDropMessage());
    fb.push_back(b.ShouldDuplicateMessage());
    fb.push_back(b.ShouldKillWorker());
  }
  EXPECT_EQ(fa, fb);
  EXPECT_EQ(a.FiringLog(), b.FiringLog());
  EXPECT_EQ(a.counters().total(), b.counters().total());
  EXPECT_GT(a.counters().total(), 0u);  // 0.3 drop over 200 events fires

  // The firing rate tracks the configured probability (loose bounds: the
  // hash is uniform, 200 samples at p=0.3 stay within [0.15, 0.45]).
  EXPECT_GT(a.counters().dropped, 30u);
  EXPECT_LT(a.counters().dropped, 90u);
}

TEST(FaultInjector, PositionalNodeFaultsFireExactlyAtTheirPoll) {
  FaultPlan plan;
  plan.seed = 7;
  plan.stall_node = 1;
  plan.stall_after_polls = 10;
  plan.crash_node = 2;
  plan.crash_after_polls = 3;
  FaultInjector inj(plan);
  for (uint64_t poll = 0; poll < 20; ++poll) {
    EXPECT_EQ(inj.ShouldStallNode(1, poll), poll == 10);
    EXPECT_FALSE(inj.ShouldStallNode(0, poll));
    EXPECT_EQ(inj.ShouldCrashNode(2, poll), poll == 3);
    EXPECT_FALSE(inj.ShouldCrashNode(1, poll));
  }
  EXPECT_EQ(inj.counters().stalls, 1u);
  EXPECT_EQ(inj.counters().crashes, 1u);
}

TEST(FaultInjector, UnarmedPlanInjectsNothing) {
  FaultPlan plan;  // all defaults
  EXPECT_FALSE(plan.armed());
  FaultInjector inj(plan);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(inj.ShouldDropMessage());
    EXPECT_FALSE(inj.ShouldKillWorker());
  }
  EXPECT_EQ(inj.counters().total(), 0u);
}

// ---------------------------------------------------------------------------
// Fabric faults and PopFor

TEST(Mailbox, PopForTimesOutThenDelivers) {
  net::Fabric fabric({.nodes = 2});
  net::Message out;
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(fabric.mailbox(1).PopFor(&out, std::chrono::microseconds(2000)));
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::microseconds(1500));

  net::Message m;
  m.type = net::MsgType::kStarving;
  ASSERT_TRUE(fabric.Send(0, 1, std::move(m)).ok());
  EXPECT_TRUE(fabric.mailbox(1).PopFor(&out, std::chrono::microseconds(50000)));
  EXPECT_EQ(out.type, net::MsgType::kStarving);
  EXPECT_EQ(out.from, 0);
  EXPECT_GT(out.seq, 0u);  // Send stamps per-sender sequence numbers
}

TEST(Fabric, DropsAndDuplicatesPerPlanButNeverShutdown) {
  FaultPlan plan;
  plan.seed = 5;
  plan.drop_prob = 1.0;  // every droppable message is dropped
  FaultInjector inj(plan);
  net::Fabric fabric({.nodes = 2, .injector = &inj});

  net::Message m;
  m.type = net::MsgType::kStarving;
  ASSERT_TRUE(fabric.Send(0, 1, std::move(m)).ok());
  net::Message out;
  EXPECT_FALSE(fabric.mailbox(1).PopFor(&out, std::chrono::microseconds(2000)));
  EXPECT_EQ(fabric.stats().dropped, 1u);

  // kShutdown and kHeartbeat are exempt: both always deliver.
  net::Message s;
  s.type = net::MsgType::kShutdown;
  ASSERT_TRUE(fabric.Send(0, 1, std::move(s)).ok());
  ASSERT_TRUE(fabric.mailbox(1).PopFor(&out, std::chrono::microseconds(50000)));
  EXPECT_EQ(out.type, net::MsgType::kShutdown);
  net::Message h;
  h.type = net::MsgType::kHeartbeat;
  ASSERT_TRUE(fabric.Send(0, 1, std::move(h)).ok());
  ASSERT_TRUE(fabric.mailbox(1).PopFor(&out, std::chrono::microseconds(50000)));
  EXPECT_EQ(out.type, net::MsgType::kHeartbeat);
  EXPECT_EQ(fabric.stats().dropped, 1u);  // exempt types never counted
}

// ---------------------------------------------------------------------------
// End-to-end chaos (Session surface)

struct ChaosFixture {
  Session db;
  RelId fact, d1, d2;

  explicit ChaosFixture(const SessionOptions& so = {}, size_t fact_rows = 60000)
      : db(so) {
    fact = db.AddTable(mt::MakeTable("fact", fact_rows, 4, 400, 11));
    d1 = db.AddTable(mt::MakeTable("d1", 400, 2, 40, 12));
    d2 = db.AddTable(mt::MakeTable("d2", 400, 2, 40, 13));
  }

  Query ChainQuery() const {
    return db.NewQuery().Scan(fact).Probe(d1, 1, 0).Probe(d2, 2, 0).Build();
  }
};

ExecOptions ClusterOpts(uint32_t nodes = 2, uint32_t threads = 2) {
  ExecOptions o;
  o.backend = Backend::kCluster;
  o.strategy = Strategy::kDP;
  o.nodes = nodes;
  o.threads_per_node = threads;
  o.seed = 3;
  return o;
}

// A clean (fault-free) digest to compare chaos survivors against.
uint64_t CleanDigest(ChaosFixture& fx, const ExecOptions& base) {
  ExecOptions clean = base;
  clean.fault_plan.reset();
  clean.max_retries = 0;
  clean.fallback_backend.reset();
  auto r = fx.db.Execute(fx.ChainQuery(), clean);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value().result_checksum : 0;
}

bool IsTypedChaosFailure(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kDeadlineExceeded;
}

TEST(Chaos, DroppedMessagesSurfaceTypedOrDigestIdentical) {
  ChaosFixture fx;
  ExecOptions o = ClusterOpts();
  uint64_t clean = CleanDigest(fx, o);

  for (uint64_t seed = 1; seed <= 4; ++seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_prob = 0.02;
    o.fault_plan = plan;
    auto r = fx.db.Execute(fx.ChainQuery(), o);
    if (r.ok()) {
      EXPECT_EQ(r.value().result_checksum, clean) << "seed " << seed;
    } else {
      EXPECT_TRUE(IsTypedChaosFailure(r.status()))
          << "seed " << seed << ": " << r.status().ToString();
    }
  }
}

TEST(Chaos, DuplicatedAndDelayedMessagesAreBenign) {
  ChaosFixture fx;
  ExecOptions o = ClusterOpts();
  uint64_t clean = CleanDigest(fx, o);

  FaultPlan plan;
  plan.seed = 21;
  plan.dup_prob = 0.05;
  plan.delay_prob = 0.05;
  plan.delay_us = 100;
  o.fault_plan = plan;
  // This test asserts dup/delay semantics (suppression, digest identity),
  // not detection timing — park liveness far out of reach: sanitizer runs
  // on a starved single-core host can leave a healthy node's loop
  // unscheduled for whole seconds, which is indistinguishable from a
  // stall to any tight timeout.
  o.liveness_timeout_ms = 60000;
  auto r = fx.db.Execute(fx.ChainQuery(), o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Duplicate suppression and delays never corrupt the result.
  EXPECT_EQ(r.value().result_checksum, clean);
}

TEST(Chaos, StalledNodeIsDetectedAndNamed) {
  ChaosFixture fx;
  ExecOptions o = ClusterOpts();
  FaultPlan plan;
  plan.seed = 1;
  plan.stall_node = 1;
  plan.stall_after_polls = 5;
  plan.stall_ms = 0;  // stall until detection tears the run down
  o.fault_plan = plan;
  o.liveness_timeout_ms = 150;

  auto t0 = std::chrono::steady_clock::now();
  auto r = fx.db.Execute(fx.ChainQuery(), o);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("node 1"), std::string::npos)
      << r.status().ToString();
  // Detection is bounded: liveness timeout plus slack, never a hang.
  EXPECT_LT(ms, 5000.0);
}

TEST(Chaos, CrashedNodeIsDetected) {
  ChaosFixture fx;
  ExecOptions o = ClusterOpts();
  FaultPlan plan;
  plan.seed = 1;
  plan.crash_node = 1;
  plan.crash_after_polls = 5;
  o.fault_plan = plan;
  o.liveness_timeout_ms = 150;

  auto r = fx.db.Execute(fx.ChainQuery(), o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable)
      << r.status().ToString();
}

TEST(Chaos, FallbackBackendDegradesGracefullyWithIdenticalDigest) {
  ChaosFixture fx(SessionOptions{.max_concurrent_queries = 2});
  ExecOptions o = ClusterOpts();
  uint64_t clean = CleanDigest(fx, o);

  // The crash is positional, so it fires on every cluster attempt; only
  // the degraded kThreads attempt can succeed.
  FaultPlan plan;
  plan.seed = 1;
  plan.crash_node = 1;
  plan.crash_after_polls = 5;
  o.fault_plan = plan;
  o.liveness_timeout_ms = 150;
  o.max_retries = 1;
  o.fallback_backend = Backend::kThreads;
  o.retry_backoff_ms = 2.0;

  auto r = fx.db.Execute(fx.ChainQuery(), o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().fallback_used);
  EXPECT_EQ(r.value().attempt, 2u);  // 1 primary + 1 retry + 1 fallback
  EXPECT_EQ(r.value().backend, Backend::kThreads);
  EXPECT_EQ(r.value().result_checksum, clean);
  EXPECT_GE(fx.db.scheduler_stats().retries, 2u);
}

TEST(Chaos, ExhaustedRetriesWithoutFallbackStayTypedUnavailable) {
  ChaosFixture fx;
  ExecOptions o = ClusterOpts();
  FaultPlan plan;
  plan.seed = 1;
  plan.crash_node = 1;
  plan.crash_after_polls = 5;
  o.fault_plan = plan;
  o.liveness_timeout_ms = 150;
  o.max_retries = 1;
  o.retry_backoff_ms = 2.0;

  auto r = fx.db.Execute(fx.ChainQuery(), o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable)
      << r.status().ToString();
  EXPECT_EQ(fx.db.scheduler_stats().retries, 1u);
}

TEST(Chaos, EndToEndOutcomeIsDeterministicForPositionalSchedules) {
  // Positional node faults fire at a fixed poll ordinal, so the final
  // status is identical run to run (message drops, by contrast, are
  // deterministic per event ordinal but race thread interleavings for
  // which message holds that ordinal).
  auto run_once = [] {
    ChaosFixture fx;
    ExecOptions o = ClusterOpts();
    FaultPlan plan;
    plan.seed = 17;
    plan.crash_node = 1;
    plan.crash_after_polls = 5;
    o.fault_plan = plan;
    o.liveness_timeout_ms = 150;
    return fx.db.Execute(fx.ChainQuery(), o).status().code();
  };
  StatusCode first = run_once();
  StatusCode second = run_once();
  EXPECT_EQ(first, StatusCode::kUnavailable);
  EXPECT_EQ(first, second);
}

TEST(Chaos, WorkerDeathsRecoverWithoutLosingWork) {
  ChaosFixture fx;
  ExecOptions threads = ClusterOpts(1, 4);
  threads.backend = Backend::kThreads;
  uint64_t clean = CleanDigest(fx, threads);

  // Injectors are per query, so death draws restart at ordinal 0 each
  // Execute; seed 2's first worker-death decision fires at p=0.5 (0.40),
  // making a death on the pool thread's first claim deterministic.
  FaultPlan plan;
  plan.seed = 2;
  plan.worker_death_prob = 0.5;
  threads.fault_plan = plan;
  for (int i = 0; i < 5; ++i) {
    auto r = fx.db.Execute(fx.ChainQuery(), threads);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Death re-queues the slot; every body still runs exactly once.
    EXPECT_EQ(r.value().result_checksum, clean);
  }
  // At p=0.5 per pool-thread claim across 5 queries, deaths fired with
  // overwhelming probability.
  EXPECT_GT(fx.db.pool_stats().worker_deaths, 0u);
}

TEST(Chaos, SessionWideChaosDefaultAppliesAndPerQueryOverrides) {
  SessionOptions so;
  FaultPlan chaos;
  chaos.seed = 1;
  chaos.crash_node = 1;
  chaos.crash_after_polls = 5;
  so.chaos = chaos;
  ChaosFixture fx(so);

  ExecOptions o = ClusterOpts();
  o.liveness_timeout_ms = 150;
  auto r = fx.db.Execute(fx.ChainQuery(), o);  // inherits session chaos
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);

  // A per-query unarmed plan overrides the session default.
  o.fault_plan = FaultPlan{};
  auto r2 = fx.db.Execute(fx.ChainQuery(), o);
  EXPECT_TRUE(r2.ok()) << r2.status().ToString();
}

TEST(Chaos, StreamUnderDropAndStallCompletesEveryQueryTyped) {
  ChaosFixture fx(SessionOptions{.max_concurrent_queries = 4});
  ExecOptions o = ClusterOpts();
  uint64_t clean = CleanDigest(fx, o);

  FaultPlan plan;
  plan.seed = 31;
  plan.drop_prob = 0.005;
  plan.stall_node = 1;
  plan.stall_after_polls = 3000;
  plan.stall_ms = 0;
  o.fault_plan = plan;
  o.liveness_timeout_ms = 150;
  o.max_retries = 2;
  o.retry_backoff_ms = 2.0;
  o.fallback_backend = Backend::kThreads;

  std::vector<Query> queries(24, fx.ChainQuery());
  StreamReport sr = fx.db.RunStream(queries, o);
  EXPECT_EQ(sr.submitted, 24u);
  EXPECT_EQ(sr.succeeded + sr.failed, sr.submitted);
  for (const auto& r : sr.results) {
    if (r.ok()) {
      EXPECT_EQ(r.value().report.result_checksum, clean);
    } else {
      EXPECT_TRUE(IsTypedChaosFailure(r.status())) << r.status().ToString();
    }
  }
  // With retries plus a kThreads fallback, the stream survives: losing
  // even one query to an untyped state would already have failed above.
  EXPECT_GE(sr.succeeded, 23u);  // >= 99% per the chaos acceptance bar
}

// ---------------------------------------------------------------------------
// WaitFor

TEST(WaitFor, EmptyHandleIsTriviallyDone) {
  QueryHandle h;
  EXPECT_TRUE(h.WaitFor(milliseconds(1)));
}

TEST(WaitFor, BoundsTheWaitThenObservesCompletion) {
  ChaosFixture fx;
  ExecOptions o = ClusterOpts();
  FaultPlan plan;
  plan.seed = 1;
  plan.stall_node = 1;
  plan.stall_after_polls = 5;
  o.fault_plan = plan;
  o.liveness_timeout_ms = 250;  // the query cannot finish before this
  QueryHandle h = fx.db.Submit(fx.ChainQuery(), o);
  EXPECT_FALSE(h.WaitFor(milliseconds(5)));
  EXPECT_TRUE(h.WaitFor(milliseconds(30000)));
  EXPECT_TRUE(h.Done());
  auto r = h.Take();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Tenant-share clamp

TEST(TenantClamp, OversizedShareIsClampedAndReported) {
  SessionOptions so;
  so.max_concurrent_queries = 3;
  so.tenants = {{"alpha", 100, 0}, {"beta", 1, 0}, {"gamma", 1, 0}};
  Session db(so);
  RelId a = db.AddRelation("A", 1000);
  RelId b = db.AddRelation("B", 1000);
  Query q = db.NewQuery().Join(a, b).Build();

  // Floored shares: default 1, alpha 2, beta 1, gamma 1 — sum 5 over a
  // limit of 3, so the largest (alpha) is clamped to the floor.
  api::SchedulerStats stats = db.scheduler_stats();
  ASSERT_EQ(stats.tenants.size(), 4u);
  const api::TenantStats* alpha = nullptr;
  for (const auto& t : stats.tenants) {
    if (t.name == "alpha") alpha = &t;
  }
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->max_inflight, 1u);
  EXPECT_TRUE(alpha->clamped);
  for (const auto& t : stats.tenants) {
    if (t.name != "alpha") {
      EXPECT_FALSE(t.clamped) << t.name;
      EXPECT_EQ(t.max_inflight, 1u) << t.name;
    }
  }

  // Clamped tenants still execute queries.
  ExecOptions o;
  o.backend = Backend::kSimulated;
  o.tenant = "alpha";
  EXPECT_TRUE(db.Execute(q, o).ok());
}

TEST(TenantClamp, UnclampedConfigurationsAreUntouched) {
  SessionOptions so;
  so.max_concurrent_queries = 8;
  so.tenants = {{"alpha", 3, 0}};
  Session db(so);
  api::SchedulerStats stats = db.scheduler_stats();
  for (const auto& t : stats.tenants) EXPECT_FALSE(t.clamped) << t.name;
}

}  // namespace
}  // namespace hierdb
