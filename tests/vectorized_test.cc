// Columnar data plane tests: the vectorized kernels against their scalar
// definitions, and end-to-end digest parity between ExecOptions::vectorized
// on and off across every backend and strategy — the invariant that the
// vectorized executor is an A/B knob, never a semantic fork. Also covers
// column-pruned cluster shipping: the same aggregated query must move
// strictly fewer kTupleBatch bytes with pruning active.

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "api/session.h"
#include "cluster/cluster_executor.h"
#include "gtest/gtest.h"
#include "mt/agg.h"
#include "mt/column_batch.h"
#include "mt/plan.h"
#include "mt/prune.h"
#include "mt/row.h"
#include "mt/row_table.h"
#include "mt/tuple.h"

// ---------------------------------------------------------------------------
// Kernel-level: strided filters, hash/gather, stats, batch accumulate.

namespace hierdb::mt {
namespace {

Batch RandomBatch(size_t rows, uint32_t width, int64_t range, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, range - 1);
  Batch b(width);
  std::vector<int64_t> row(width);
  for (size_t i = 0; i < rows; ++i) {
    for (uint32_t c = 0; c < width; ++c) row[c] = dist(rng);
    b.AppendRow(row.data());
  }
  return b;
}

TEST(FilterKernels, StridedMatchesScalarForEveryCmpOp) {
  Batch b = RandomBatch(4096, 3, 100, 17);
  const uint32_t col = 1;
  std::vector<uint32_t> sel(b.rows());
  for (CmpOp cmp : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe,
                    CmpOp::kGt, CmpOp::kGe}) {
    Predicate p{col, cmp, 42};
    size_t m = FilterStrided(b.data().data() + col, b.width(), b.rows(), cmp,
                             42, sel.data());
    size_t at = 0;
    for (size_t i = 0; i < b.rows(); ++i) {
      if (!p.Matches(b.at(i, col))) continue;
      ASSERT_LT(at, m);
      EXPECT_EQ(sel[at], i);
      ++at;
    }
    EXPECT_EQ(at, m);
  }
}

TEST(FilterKernels, FilterBatchConjunctionAndEdgeCases) {
  Batch b = RandomBatch(2000, 4, 50, 3);
  SelVec sel;

  // Empty conjunction selects everything as the identity selection.
  size_t m = FilterBatch(b, 0, b.rows(), {}, &sel);
  ASSERT_EQ(m, b.rows());
  for (size_t i = 0; i < m; ++i) EXPECT_EQ(sel[i], i);

  // A conjunction matches the scalar MatchesAll row loop, order preserved.
  std::vector<Predicate> preds = {{0, CmpOp::kLt, 30},
                                  {2, CmpOp::kGe, 10},
                                  {3, CmpOp::kNe, 7}};
  m = FilterBatch(b, 0, b.rows(), preds, &sel);
  size_t at = 0;
  for (size_t i = 0; i < b.rows(); ++i) {
    if (!MatchesAll(preds, b.row(i))) continue;
    ASSERT_LT(at, m);
    EXPECT_EQ(sel[at], i);
    ++at;
  }
  EXPECT_EQ(at, m);
  EXPECT_GT(m, 0u);
  EXPECT_LT(m, b.rows());

  // A morsel offset shifts the window but keeps indexes morsel-local.
  m = FilterBatch(b, 500, 100, preds, &sel);
  for (size_t i = 0; i < m; ++i) {
    EXPECT_LT(sel[i], 100u);
    EXPECT_TRUE(MatchesAll(preds, b.row(500 + sel[i])));
  }

  // A contradictory conjunction selects nothing.
  m = FilterBatch(b, 0, b.rows(),
                  {{0, CmpOp::kLt, 10}, {0, CmpOp::kGe, 10}}, &sel);
  EXPECT_EQ(m, 0u);
  EXPECT_TRUE(sel.empty());
}

TEST(HashGatherKernels, HashAndGatherMatchScalarDefinitions) {
  Batch b = RandomBatch(1500, 3, 1000, 5);
  const uint32_t col = 2;
  const int64_t* base = b.data().data() + col;

  // Dense.
  std::vector<uint64_t> hashes(b.rows());
  HashStrided(base, b.width(), nullptr, b.rows(), hashes.data());
  for (size_t i = 0; i < b.rows(); ++i) {
    EXPECT_EQ(hashes[i], HashKey(b.at(i, col)));
  }

  // Through a selection vector.
  SelVec sel;
  std::vector<Predicate> preds = {{0, CmpOp::kLt, 500}};
  size_t m = FilterBatch(b, 0, b.rows(), preds, &sel);
  ASSERT_GT(m, 0u);
  hashes.resize(m);
  std::vector<int64_t> keys(m);
  HashStrided(base, b.width(), sel.data(), m, hashes.data());
  GatherStrided(base, b.width(), sel.data(), m, keys.data());
  for (size_t i = 0; i < m; ++i) {
    EXPECT_EQ(keys[i], b.at(sel[i], col));
    EXPECT_EQ(hashes[i], HashKey(keys[i]));
  }
}

TEST(ColumnBatchShim, RoundTripAndProjectedGather) {
  Batch b = RandomBatch(600, 4, 100, 11);

  // FromBatch / ToBatch is the identity on the row-major data.
  ColumnBatch cb = ColumnBatch::FromBatch(b);
  EXPECT_EQ(cb.width(), b.width());
  EXPECT_EQ(cb.rows(), b.rows());
  Batch back = cb.ToBatch();
  EXPECT_EQ(back.data(), b.data());

  // Projection + selection in one gather.
  SelVec sel;
  std::vector<Predicate> preds = {{1, CmpOp::kGe, 50}};
  size_t m = FilterBatch(b, 0, b.rows(), preds, &sel);
  ASSERT_GT(m, 0u);
  const uint32_t cols[2] = {3, 0};
  ColumnBatch proj;
  proj.GatherColumns(b, 0, sel.data(), m, cols, 2);
  ASSERT_EQ(proj.width(), 2u);
  ASSERT_EQ(proj.rows(), m);
  for (size_t i = 0; i < m; ++i) {
    EXPECT_EQ(proj.col(0)[i], b.at(sel[i], 3));
    EXPECT_EQ(proj.col(1)[i], b.at(sel[i], 0));
  }
}

TEST(ColumnStatsTest, MinMaxAndDistinctEstimates) {
  // Empty batch: zeroed stats.
  Batch empty(3);
  auto zs = ComputeColumnStats(empty);
  ASSERT_EQ(zs.size(), 3u);
  EXPECT_EQ(zs[0].min, 0);
  EXPECT_EQ(zs[0].distinct_est, 0u);

  // Below the sketch size the distinct count is exact.
  Batch b(2);
  for (int64_t i = 0; i < 5000; ++i) {
    int64_t row[2] = {i % 40 - 7, i};
    b.AppendRow(row);
  }
  auto stats = ComputeColumnStats(b);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].min, -7);
  EXPECT_EQ(stats[0].max, 32);
  EXPECT_EQ(stats[0].distinct_est, 40u);
  EXPECT_EQ(stats[1].min, 0);
  EXPECT_EQ(stats[1].max, 4999);
  // Above it, KMV: within a loose factor of the true 5000.
  EXPECT_GT(stats[1].distinct_est, 2500u);
  EXPECT_LT(stats[1].distinct_est, 10000u);
}

TEST(ColumnStatsTest, ClassifyPredicateFolds) {
  ColumnStats s{10, 20, 11};
  using PF = PredicateFold;
  EXPECT_EQ(ClassifyPredicate({0, CmpOp::kLt, 10}, s), PF::kAlwaysFalse);
  EXPECT_EQ(ClassifyPredicate({0, CmpOp::kLt, 21}, s), PF::kAlwaysTrue);
  EXPECT_EQ(ClassifyPredicate({0, CmpOp::kLt, 15}, s), PF::kKeep);
  EXPECT_EQ(ClassifyPredicate({0, CmpOp::kLe, 9}, s), PF::kAlwaysFalse);
  EXPECT_EQ(ClassifyPredicate({0, CmpOp::kLe, 20}, s), PF::kAlwaysTrue);
  EXPECT_EQ(ClassifyPredicate({0, CmpOp::kGt, 20}, s), PF::kAlwaysFalse);
  EXPECT_EQ(ClassifyPredicate({0, CmpOp::kGt, 9}, s), PF::kAlwaysTrue);
  EXPECT_EQ(ClassifyPredicate({0, CmpOp::kGe, 21}, s), PF::kAlwaysFalse);
  EXPECT_EQ(ClassifyPredicate({0, CmpOp::kGe, 10}, s), PF::kAlwaysTrue);
  EXPECT_EQ(ClassifyPredicate({0, CmpOp::kEq, 25}, s), PF::kAlwaysFalse);
  EXPECT_EQ(ClassifyPredicate({0, CmpOp::kEq, 15}, s), PF::kKeep);
  EXPECT_EQ(ClassifyPredicate({0, CmpOp::kNe, 25}, s), PF::kAlwaysTrue);
  // Single-valued column: equality folds both ways.
  ColumnStats one{4, 4, 1};
  EXPECT_EQ(ClassifyPredicate({0, CmpOp::kEq, 4}, one), PF::kAlwaysTrue);
  EXPECT_EQ(ClassifyPredicate({0, CmpOp::kNe, 4}, one), PF::kAlwaysFalse);
}

TEST(BatchAppend, AppendRowsMatchesRowAtATime) {
  Batch src = RandomBatch(777, 3, 100, 23);
  Batch bulk(3), single(3);
  bulk.AppendRows(src.data().data(), src.rows());
  for (size_t i = 0; i < src.rows(); ++i) single.AppendRow(src.row(i));
  EXPECT_EQ(bulk.rows(), src.rows());
  EXPECT_EQ(bulk.data(), single.data());
}

TEST(ProbeBatchEquiv, MatchesForEachMatchWithDuplicates) {
  // Build rows with duplicate keys so chains have length > 1.
  RowTable table(2, 0);
  std::mt19937_64 rng(29);
  for (int i = 0; i < 3000; ++i) {
    int64_t row[2] = {static_cast<int64_t>(rng() % 200), i};
    table.Insert(row);
  }
  Batch probes = RandomBatch(1000, 2, 260, 31);  // some keys miss entirely

  std::vector<int64_t> keys(probes.rows());
  std::vector<uint64_t> hashes(probes.rows());
  GatherStrided(probes.data().data(), 2, nullptr, probes.rows(), keys.data());
  HashStrided(probes.data().data(), 2, nullptr, probes.rows(), hashes.data());

  std::vector<std::pair<size_t, int64_t>> batched, scalar;
  table.ProbeBatch(keys.data(), hashes.data(), probes.rows(),
                   [&](size_t i, const int64_t* brow) {
                     batched.emplace_back(i, brow[1]);
                   });
  for (size_t i = 0; i < probes.rows(); ++i) {
    table.ForEachMatch(probes.at(i, 0), [&](const int64_t* brow) {
      scalar.emplace_back(i, brow[1]);
    });
  }
  EXPECT_EQ(batched, scalar);
  EXPECT_GT(batched.size(), 0u);
}

TEST(AggBatch, AccumulateBatchMatchesScalar) {
  AggSpec spec;
  spec.group_cols = {1};
  spec.aggs = {{AggFn::kCount, 0}, {AggFn::kSum, 0}, {AggFn::kMin, 2},
               {AggFn::kMax, 2}, {AggFn::kAvg, 0}};
  Batch rows = RandomBatch(6000, 3, 64, 37);

  AggTable scalar(&spec);
  for (size_t i = 0; i < rows.rows(); ++i) scalar.Accumulate(rows.row(i));

  // Dense batch accumulate, morsel-split to exercise the begin offset.
  AggTable dense(&spec);
  AggTable::BatchScratch scratch;
  dense.AccumulateBatch(rows, 0, nullptr, 2500, nullptr, &scratch);
  dense.AccumulateBatch(rows, 2500, nullptr, rows.rows() - 2500, nullptr,
                        &scratch);
  ResultDigest ds, dd;
  scalar.EmitFinal(nullptr, &ds);
  dense.EmitFinal(nullptr, &dd);
  EXPECT_EQ(scalar.groups(), dense.groups());
  EXPECT_EQ(ds, dd);

  // Selected accumulate equals the filtered scalar loop.
  std::vector<Predicate> preds = {{0, CmpOp::kLt, 32}};
  SelVec sel;
  size_t m = FilterBatch(rows, 0, rows.rows(), preds, &sel);
  AggTable fsel(&spec), fscalar(&spec);
  fsel.AccumulateBatch(rows, 0, sel.data(), m, nullptr, &scratch);
  for (size_t i = 0; i < rows.rows(); ++i) {
    if (MatchesAll(preds, rows.row(i))) fscalar.Accumulate(rows.row(i));
  }
  ResultDigest a, e;
  fsel.EmitFinal(nullptr, &a);
  fscalar.EmitFinal(nullptr, &e);
  EXPECT_EQ(a, e);

  // col_map: accumulate straight from unprojected source rows. Physical
  // layout (pad, c0, pad, c1, c2) with the spec written against the
  // projected coordinates (0, 1, 2) and col_map = {1, 3, 4}.
  Batch wide(5);
  for (size_t i = 0; i < rows.rows(); ++i) {
    const int64_t* r = rows.row(i);
    int64_t w[5] = {-1, r[0], -1, r[1], r[2]};
    wide.AppendRow(w);
  }
  const uint32_t col_map[3] = {1, 3, 4};
  AggTable mapped(&spec);
  mapped.AccumulateBatch(wide, 0, nullptr, wide.rows(), col_map, &scratch);
  ResultDigest dm;
  mapped.EmitFinal(nullptr, &dm);
  EXPECT_EQ(dm, ds);
}

TEST(PruneTest, RightDeepAggPlanPrunesAndKeepsDigest) {
  // fact(5 cols) ⋈ d1(3) ⋈ d2(3), grouped on d1.attr, summing fact col 0.
  Table fact = MakeTable("fact", 8000, 5, 300, 41);
  Table d1 = MakeTable("d1", 300, 3, 40, 42);
  Table d2 = MakeTable("d2", 300, 3, 40, 43);
  std::vector<const Table*> tables = {&fact, &d1, &d2};

  PipelinePlan plan = MakeRightDeepPlan(0, {1, 2}, {1, 2});
  AggSpec spec;
  spec.group_cols = {5 + 1};  // d1.attr in the (fact ++ d1 ++ d2) layout
  spec.aggs = {{AggFn::kCount, 0}, {AggFn::kSum, 0}};
  plan.agg = spec;
  plan.table_filters = {{{3, CmpOp::kLt, 150}}};  // fact col 3: filter-only

  auto ref_full = ReferenceExecute(plan, tables);
  ASSERT_TRUE(ref_full.ok()) << ref_full.status().ToString();

  PipelinePlan pruned = plan;
  PruneResult pr = PruneColumns(&pruned, {5, 3, 3});
  EXPECT_TRUE(pr.changed);
  EXPECT_GT(pr.columns_dropped, 0u);
  ASSERT_EQ(pruned.table_projections.size(), 3u);
  // fact keeps agg col 0 and probe cols 1, 2; filter col 3 stays in source
  // coordinates and must NOT force the column through the pipeline.
  EXPECT_EQ(pruned.table_projections[0], (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(pruned.table_projections[1], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(pruned.table_projections[2], (std::vector<uint32_t>{0}));
  // Filters stay in source coordinates; the group column is remapped to the
  // narrowed layout fact{0,1,2} ++ d1{0,1} ++ d2{0}.
  ASSERT_EQ(pruned.table_filters.size(), 1u);
  ASSERT_EQ(pruned.table_filters[0].size(), 1u);
  EXPECT_EQ(pruned.table_filters[0][0].col, 3u);
  ASSERT_TRUE(pruned.agg.has_value());
  EXPECT_EQ(pruned.agg->group_cols[0], 4u);

  ASSERT_TRUE(pruned.Validate(tables).ok());
  auto ref_pruned = ReferenceExecute(pruned, tables);
  ASSERT_TRUE(ref_pruned.ok()) << ref_pruned.status().ToString();
  EXPECT_EQ(ref_full.value(), ref_pruned.value());
}

}  // namespace
}  // namespace hierdb::mt

// ---------------------------------------------------------------------------
// Cluster-level: pruning an aggregated bushy plan ships fewer wire bytes.

namespace hierdb::cluster {
namespace {

TEST(ClusterPrune, BushyAggPlanShipsFewerRepartitionBytes) {
  // chain0 = S(4) ⋈ R(4), final = scan U(5), probe T(4), probe chain0;
  // grouped on T.attr. Only 8 of the 17 source columns are referenced, so
  // the pruned run must move strictly fewer kTupleBatch bytes — both the
  // base-table dataflow and chain0's cross-node repartition.
  const uint32_t nodes = 3;
  mt::Table r = mt::MakeTable("R", 100, 4, 10, 51);
  mt::Table s = mt::MakeTable("S", 400, 4, 100, 52);
  mt::Table t = mt::MakeTable("T", 400, 4, 10, 53);
  mt::Table u = mt::MakeTable("U", 9000, 5, 400, 54);
  PartitionedTable rp = PartitionByHash(r, nodes, 0);
  PartitionedTable sp = PartitionRoundRobin(s, nodes);
  PartitionedTable tp = PartitionByHash(t, nodes, 0);
  PartitionedTable up = PartitionRoundRobin(u, nodes);

  PlanQuery query;
  query.tables = {&rp, &sp, &tp, &up};
  mt::Chain c0;
  c0.input = mt::Source::OfTable(1);
  c0.joins.push_back({mt::Source::OfTable(0), 1, 0});
  mt::Chain fin;
  fin.input = mt::Source::OfTable(3);
  fin.joins.push_back({mt::Source::OfTable(2), 1, 0});
  fin.joins.push_back({mt::Source::OfChain(0), 2, 0});
  query.plan.chains.push_back(std::move(c0));
  query.plan.chains.push_back(std::move(fin));
  mt::AggSpec spec;
  spec.group_cols = {5 + 1};  // T.attr in the (U ++ T ++ S ++ R) layout
  spec.aggs = {{mt::AggFn::kCount, 0}, {mt::AggFn::kSum, 0}};
  query.plan.agg = spec;

  PlanQuery pruned = query;
  mt::PruneResult pr = mt::PruneColumns(&pruned.plan, {4, 4, 4, 5});
  ASSERT_TRUE(pr.changed);

  ClusterOptions opts;
  opts.nodes = nodes;
  opts.threads_per_node = 2;
  // Keep activation placement deterministic: with stealing off, every probe
  // runs on its bucket's home node, so both runs repartition the exact same
  // intermediate rows and only the row width differs.
  opts.global_lb = false;

  ClusterStats full_stats, pruned_stats;
  ClusterExecutor full_exec(opts);
  auto full = full_exec.Execute(query, &full_stats);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ClusterExecutor pruned_exec(opts);
  auto narrow = pruned_exec.Execute(pruned, &pruned_stats);
  ASSERT_TRUE(narrow.ok()) << narrow.status().ToString();

  // Aggregate digests are bit-identical: pruning kept every referenced
  // column and the reference agrees.
  EXPECT_EQ(full.value(), narrow.value());
  auto ref = ReferenceExecute(query);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(narrow.value(), ref.value());

  // The wire got narrower: chain0's intermediate repartition and the total
  // dataflow both shrink (chain0 output width 8 -> 3).
  ASSERT_EQ(pruned_stats.per_chain.size(), 2u);
  EXPECT_GT(full_stats.per_chain[0].repartition_bytes, 0u);
  EXPECT_GT(pruned_stats.per_chain[0].repartition_bytes, 0u);
  EXPECT_EQ(pruned_stats.per_chain[0].repartition_rows,
            full_stats.per_chain[0].repartition_rows);
  EXPECT_LT(pruned_stats.per_chain[0].repartition_bytes,
            full_stats.per_chain[0].repartition_bytes);
  EXPECT_LT(pruned_stats.dataflow_bytes, full_stats.dataflow_bytes);
  EXPECT_LT(pruned_stats.intermediate_bytes, full_stats.intermediate_bytes);
}

}  // namespace
}  // namespace hierdb::cluster

// ---------------------------------------------------------------------------
// Session-level: digest parity vectorized on/off on every backend.

namespace hierdb::api {
namespace {

struct StarFixture {
  Session db;
  RelId fact, d1, d2, d3;

  explicit StarFixture(size_t fact_rows = 12000, uint64_t seed = 7,
                       SessionOptions so = {})
      : db(so) {
    fact = db.AddTable(mt::MakeTable("fact", fact_rows, 4, 500, seed));
    d1 = db.AddTable(mt::MakeTable("d1", 500, 2, 50, seed + 1));
    d2 = db.AddTable(mt::MakeTable("d2", 500, 2, 50, seed + 2));
    d3 = db.AddTable(mt::MakeTable("d3", 500, 2, 50, seed + 3));
  }

  QueryBuilder Joined() const {
    return db.NewQuery().Scan(fact).Probe(d1, 1, 0).Probe(d2, 2, 0).Probe(
        d3, 3, 0);
  }
};

ExecOptions VOpts(Backend backend, Strategy strategy, uint32_t nodes,
                  uint32_t threads, bool vectorized) {
  ExecOptions o;
  o.backend = backend;
  o.strategy = strategy;
  o.nodes = nodes;
  o.threads_per_node = threads;
  o.seed = 3;
  o.validate = true;
  o.vectorized = vectorized;
  // Keep runs independent: a cached build skips its scatter, which would
  // legitimately zero rows_filtered for build-side predicates on reruns.
  o.reuse_builds = false;
  return o;
}

// Runs `q` with the columnar plane on and off and asserts both match the
// single-threaded reference and each other (rows, checksum, filter counts).
void ExpectParity(Session& db, const Query& q, Backend backend,
                  Strategy strategy, uint32_t nodes, uint32_t threads) {
  auto on = db.Execute(q, VOpts(backend, strategy, nodes, threads, true));
  auto off = db.Execute(q, VOpts(backend, strategy, nodes, threads, false));
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_TRUE(on.value().reference_match);
  EXPECT_TRUE(off.value().reference_match);
  EXPECT_EQ(on.value().result_rows, off.value().result_rows);
  EXPECT_EQ(on.value().result_checksum, off.value().result_checksum);
  EXPECT_EQ(on.value().rows_filtered, off.value().rows_filtered);
}

TEST(VectorizedParity, FilteredJoinsOnEveryBackendAndStrategy) {
  StarFixture fx;
  Query filtered = fx.Joined().Where(fx.fact, 1, CmpOp::kLt, 250).Build();
  Query two_join =
      fx.db.NewQuery().Scan(fx.fact).Probe(fx.d1, 1, 0).Probe(fx.d2, 2, 0)
          .Where(fx.d1, 1, CmpOp::kGe, 10)
          .Build();
  for (const Query& q : {filtered, two_join}) {
    ExpectParity(fx.db, q, Backend::kThreads, Strategy::kDP, 1, 4);
    ExpectParity(fx.db, q, Backend::kThreads, Strategy::kFP, 1, 4);
    ExpectParity(fx.db, q, Backend::kThreads, Strategy::kSP, 1, 4);
    ExpectParity(fx.db, q, Backend::kCluster, Strategy::kDP, 3, 2);
  }
}

TEST(VectorizedParity, GroupByHavingAndGlobalAggregate) {
  StarFixture fx;
  Query reporting = fx.Joined()
                        .Where(fx.fact, 1, CmpOp::kLt, 250)
                        .GroupBy(fx.d1, 1)
                        .Count()
                        .Agg(AggFn::kSum, fx.fact, 0)
                        .Agg(AggFn::kMin, fx.fact, 0)
                        .Agg(AggFn::kMax, fx.fact, 0)
                        .Agg(AggFn::kAvg, fx.fact, 0)
                        .HavingCount(CmpOp::kGt, 5)
                        .Build();
  Query global = fx.Joined().Count().Agg(AggFn::kSum, fx.d2, 1).Build();
  for (const Query& q : {reporting, global}) {
    ExpectParity(fx.db, q, Backend::kThreads, Strategy::kDP, 1, 4);
    ExpectParity(fx.db, q, Backend::kThreads, Strategy::kFP, 1, 4);
    ExpectParity(fx.db, q, Backend::kThreads, Strategy::kSP, 1, 4);
    ExpectParity(fx.db, q, Backend::kCluster, Strategy::kDP, 3, 2);
  }
}

TEST(VectorizedParity, SkewedKeysKeepDigestParity) {
  Session db;
  RelId fact = db.AddTable(
      mt::MakeSkewedTable("sfact", 15000, 3, 400, /*skew_col=*/1,
                          /*theta=*/1.0, 19));
  RelId dim = db.AddTable(mt::MakeTable("sdim", 400, 2, 50, 20));
  Query join = db.NewQuery().Scan(fact).Probe(dim, 1, 0).Build();
  Query agg = db.NewQuery()
                  .Scan(fact)
                  .Probe(dim, 1, 0)
                  .GroupBy(dim, 1)
                  .Count()
                  .Agg(AggFn::kSum, fact, 0)
                  .Build();
  for (const Query& q : {join, agg}) {
    ExpectParity(db, q, Backend::kThreads, Strategy::kDP, 1, 4);
    ExpectParity(db, q, Backend::kCluster, Strategy::kDP, 2, 2);
  }
}

TEST(VectorizedParity, EmptyAndAllPassSelections) {
  StarFixture fx(5000);
  // Always-false predicate: the planner's min/max fold keeps one residual
  // predicate, the scan's selection vectors come out empty, and every
  // backend agrees on zero rows.
  Query none = fx.Joined().Where(fx.fact, 0, CmpOp::kLt, 0).Build();
  ExpectParity(fx.db, none, Backend::kThreads, Strategy::kDP, 1, 4);
  ExpectParity(fx.db, none, Backend::kCluster, Strategy::kDP, 2, 2);
  auto r = fx.db.Execute(none, VOpts(Backend::kThreads, Strategy::kDP, 1, 4,
                                     true));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().result_rows, 0u);
  EXPECT_EQ(r.value().rows_filtered, 5000u);

  // Always-true predicate: folded away pre-scan — nothing is filtered and
  // the digest matches the unfiltered query.
  Query all = fx.Joined().Where(fx.fact, 1, CmpOp::kGe, 0).Build();
  ExpectParity(fx.db, all, Backend::kThreads, Strategy::kDP, 1, 4);
  auto a =
      fx.db.Execute(all, VOpts(Backend::kThreads, Strategy::kDP, 1, 4, true));
  auto plain = fx.db.Execute(
      fx.Joined().Build(), VOpts(Backend::kThreads, Strategy::kDP, 1, 4, true));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(a.value().rows_filtered, 0u);
  EXPECT_EQ(a.value().result_checksum, plain.value().result_checksum);
}

TEST(PlannerStats, TableStatsExposedAtAddTable) {
  StarFixture fx(5000);
  const std::vector<mt::ColumnStats>* stats = fx.db.table_stats(fx.fact);
  ASSERT_NE(stats, nullptr);
  ASSERT_EQ(stats->size(), 4u);
  // Col 0 is the dense unique key.
  EXPECT_EQ((*stats)[0].min, 0);
  EXPECT_EQ((*stats)[0].max, 4999);
  EXPECT_GT((*stats)[0].distinct_est, 2500u);
  // FK columns live in [0, 500).
  EXPECT_GE((*stats)[1].min, 0);
  EXPECT_LT((*stats)[1].max, 500);
  // Catalog-only relations carry no stats.
  RelId ghost = fx.db.AddRelation("ghost", 1000);
  EXPECT_EQ(fx.db.table_stats(ghost), nullptr);
}

TEST(ClusterShipping, ColumnPrunedRepartitionShipsFewerBytes) {
  // GROUP BY d1.attr COUNT over fact ⋈ d1: only fact col 1 is referenced
  // downstream, so the vectorized run ships 1-wide fact rows where the
  // scalar run ships all 4 columns.
  StarFixture fx(20000);
  Query q = fx.db.NewQuery()
                .Scan(fx.fact)
                .Probe(fx.d1, 1, 0)
                .GroupBy(fx.d1, 1)
                .Count()
                .Build();
  auto on =
      fx.db.Execute(q, VOpts(Backend::kCluster, Strategy::kDP, 3, 2, true));
  auto off =
      fx.db.Execute(q, VOpts(Backend::kCluster, Strategy::kDP, 3, 2, false));
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_TRUE(on.value().reference_match);
  EXPECT_TRUE(off.value().reference_match);
  EXPECT_EQ(on.value().result_rows, off.value().result_rows);
  EXPECT_EQ(on.value().result_checksum, off.value().result_checksum);
  EXPECT_GT(on.value().pipeline_bytes, 0u);
  EXPECT_LT(on.value().pipeline_bytes, off.value().pipeline_bytes);
}

TEST(SimulatedBackend, VectorizedFlagIsIgnored) {
  StarFixture fx(2000);
  Query q = fx.Joined().Build();
  ExecOptions on = VOpts(Backend::kSimulated, Strategy::kDP, 2, 2, true);
  ExecOptions off = VOpts(Backend::kSimulated, Strategy::kDP, 2, 2, false);
  on.validate = off.validate = false;
  auto a = fx.db.Execute(q, on);
  auto b = fx.db.Execute(q, off);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  // The simulation is deterministic; the knob must not perturb it.
  EXPECT_EQ(a.value().response_ms, b.value().response_ms);
}

}  // namespace
}  // namespace hierdb::api
