#include "tests/test_util.h"

#include <gtest/gtest.h>

#include "opt/bushy_optimizer.h"

namespace hierdb::test {

catalog::Catalog MakeCatalog(std::initializer_list<uint64_t> cards) {
  catalog::Catalog cat;
  uint32_t i = 0;
  for (uint64_t c : cards) {
    cat.AddRelation("R" + std::to_string(i++), c);
  }
  return cat;
}

Fig2Query MakeFig2Query(uint64_t scale) {
  Fig2Query q;
  // R, S, T, U with R smallest (it builds), as in Figure 2.
  q.catalog = MakeCatalog({scale, 4 * scale, 2 * scale, 8 * scale});
  std::vector<plan::JoinEdge> edges;
  auto sel = [&](uint32_t a, uint32_t b) {
    double ca = static_cast<double>(q.catalog.relation(a).cardinality);
    double cb = static_cast<double>(q.catalog.relation(b).cardinality);
    return std::max(ca, cb) / (ca * cb);
  };
  edges.push_back({0, 1, sel(0, 1)});
  edges.push_back({1, 2, sel(1, 2)});
  edges.push_back({2, 3, sel(2, 3)});
  plan::JoinGraph graph(4, edges);
  opt::BushyOptimizer optz;
  q.tree = optz.Best(graph, q.catalog);
  q.plan = plan::MacroExpand(q.tree, q.catalog);
  return q;
}

SimpleJoin MakeSimpleJoin(uint64_t r_card, uint64_t s_card) {
  SimpleJoin q;
  q.catalog = MakeCatalog({r_card, s_card});
  double sel = static_cast<double>(std::max(r_card, s_card)) /
               (static_cast<double>(r_card) * static_cast<double>(s_card));
  plan::JoinGraph graph(2, {plan::JoinEdge{0, 1, sel}});
  opt::BushyOptimizer optz;
  q.plan = plan::MacroExpand(optz.Best(graph, q.catalog), q.catalog);
  return q;
}

sim::SystemConfig SmallConfig(uint32_t nodes, uint32_t procs) {
  sim::SystemConfig cfg;
  cfg.num_nodes = nodes;
  cfg.procs_per_node = procs;
  cfg.buckets_per_operator = 64;
  cfg.activation_batch_tuples = 64;
  cfg.queue_capacity = 16;
  return cfg;
}

exec::RunMetrics MustRun(const sim::SystemConfig& cfg, exec::Strategy strat,
                         const catalog::Catalog& cat,
                         const plan::PhysicalPlan& plan,
                         const exec::RunOptions& opts) {
  exec::Engine engine(cfg, strat);
  exec::RunResult r = engine.Run(plan, cat, opts);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  return r.metrics;
}

}  // namespace hierdb::test
