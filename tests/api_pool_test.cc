// Tests for the session-wide worker pool, the build-side reuse cache, and
// cooperative cancellation of running queries (PR 4):
//
//   - WorkerPool mechanics: every spawned body runs exactly once with the
//     renting caller participating; idle pool threads drive steal hooks.
//   - Pooled executions produce digests identical to the legacy
//     spawn-per-query path (and to serial execution).
//   - Build reuse: repeated queries hit the cache, results stay correct
//     with reuse on/off, AddTable invalidates.
//   - QueryHandle::Cancel interrupts a *running* query (threads and
//     cluster backends, pooled and spawn paths) with Status::Cancelled.
//   - AddTable while queries are in flight is safe (stable table
//     storage), and the new table is immediately queryable.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "api/session.h"
#include "api/worker_pool.h"
#include "gtest/gtest.h"
#include "mt/row.h"

namespace hierdb::api {
namespace {

using std::chrono::milliseconds;

struct PoolFixture {
  Session db;
  RelId fact, d1, d2, d3;

  explicit PoolFixture(const SessionOptions& so, size_t fact_rows = 20000,
                       uint64_t seed = 7)
      : db(so) {
    fact = db.AddTable(mt::MakeTable("fact", fact_rows, 4, 500, seed));
    d1 = db.AddTable(mt::MakeTable("d1", 500, 2, 50, seed + 1));
    d2 = db.AddTable(mt::MakeTable("d2", 500, 2, 50, seed + 2));
    d3 = db.AddTable(mt::MakeTable("d3", 500, 2, 50, seed + 3));
  }

  Query ChainQuery(uint32_t probes) const {
    auto qb = db.NewQuery().Scan(fact).Probe(d1, 1, 0);
    if (probes >= 2) qb.Probe(d2, 2, 0);
    if (probes >= 3) qb.Probe(d3, 3, 0);
    return qb.Build();
  }
};

ExecOptions Opts(Backend backend, uint32_t nodes = 1, uint32_t threads = 2) {
  ExecOptions o;
  o.backend = backend;
  o.strategy = Strategy::kDP;
  o.nodes = nodes;
  o.threads_per_node = threads;
  o.seed = 3;
  return o;
}

bool WaitForInFlight(const Session& db, uint32_t n, int timeout_ms = 20000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (db.scheduler_stats().in_flight >= n) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return false;
}

// ---------------------------------------------------------------------------
// WorkerPool mechanics.

TEST(WorkerPoolTest, SpawnWorkersRunsEveryBodyExactlyOnce) {
  WorkerPool pool(2);
  auto ctx = pool.Rent(nullptr);
  constexpr uint32_t kBodies = 16;  // far more slots than pool threads
  std::vector<std::atomic<int>> ran(kBodies);
  for (auto& r : ran) r.store(0);
  ctx->SpawnWorkers(kBodies, [&](uint32_t i) { ran[i].fetch_add(1); });
  for (uint32_t i = 0; i < kBodies; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "body " << i;
  }
  // The caller participates, so this works even on a saturated pool; on
  // any pool, caller + pool tasks account for every body.
  PoolStats s = pool.stats();
  EXPECT_EQ(s.pool_tasks + s.caller_tasks, kBodies);
}

TEST(WorkerPoolTest, SequentialTeamsReuseTheSamePool) {
  WorkerPool pool(2);
  auto ctx = pool.Rent(nullptr);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    ctx->SpawnWorkers(4, [&](uint32_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 20);
  EXPECT_EQ(pool.stats().pool_threads, 2u);
}

TEST(WorkerPoolTest, IdlePoolThreadsRunStealHooks) {
  WorkerPool pool(2);
  auto ctx = pool.Rent(nullptr);
  std::atomic<int> calls{0};
  // The hook reports work available for the first 50 calls; idle pool
  // threads must discover and drive it without any team being spawned.
  ctx->SetStealHook([&] { return calls.fetch_add(1) < 50; });
  for (int i = 0; i < 20000 && calls.load() < 50; ++i) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  ctx->ClearStealHook();  // blocks until in-flight calls drain
  EXPECT_GE(calls.load(), 50);
  EXPECT_GE(pool.stats().foreign_steals, 50u);
}

TEST(WorkerPoolTest, GangTeamsGetDedicatedThreads) {
  WorkerPool pool(1);
  auto ctx = pool.Rent(nullptr);
  // A gang of 4 mutually dependent bodies (a barrier) on a 1-thread pool:
  // only dedicated threads can satisfy this without deadlock.
  std::atomic<uint32_t> arrived{0};
  ctx->SpawnWorkers(
      4,
      [&](uint32_t) {
        arrived.fetch_add(1);
        while (arrived.load() < 4) std::this_thread::yield();
      },
      /*gang=*/true);
  EXPECT_EQ(arrived.load(), 4u);
  EXPECT_EQ(pool.stats().gang_threads, 4u);
}

// ---------------------------------------------------------------------------
// Pooled execution correctness.

TEST(PoolExecution, PooledDigestsMatchSpawnAndSerial) {
  SessionOptions so;
  so.max_concurrent_queries = 3;
  PoolFixture fx(so);

  std::vector<Query> queries;
  for (uint32_t i = 0; i < 6; ++i) queries.push_back(fx.ChainQuery(i % 3 + 1));

  // Ground truth: legacy spawn path, serial, no reuse.
  ExecOptions spawn = Opts(Backend::kThreads);
  spawn.use_shared_pool = false;
  spawn.reuse_builds = false;
  std::vector<std::pair<uint64_t, uint64_t>> expect;
  for (const Query& q : queries) {
    auto r = fx.db.Execute(q, spawn);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expect.emplace_back(r.value().result_rows, r.value().result_checksum);
  }

  // Concurrent pooled stream (pool + reuse are the defaults).
  ExecOptions pooled = Opts(Backend::kThreads);
  ASSERT_TRUE(pooled.use_shared_pool);
  ASSERT_TRUE(pooled.reuse_builds);
  StreamReport sr = fx.db.RunStream(queries, pooled);
  ASSERT_EQ(sr.succeeded, 6u);
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& rep = sr.results[i].value().report;
    EXPECT_EQ(rep.result_rows, expect[i].first) << i;
    EXPECT_EQ(rep.result_checksum, expect[i].second) << i;
  }
  // The legacy runs created threads; the pooled stream rented instead.
  PoolStats ps = fx.db.pool_stats();
  EXPECT_EQ(ps.spawned_threads, 6u * 2u);
  EXPECT_GT(ps.pool_tasks + ps.caller_tasks, 0u);
}

// FP is the riskiest pool interaction: threads are statically pinned to
// operators, so under a saturated 1-thread pool most worker slots are
// claimed late (and run serially by the renting caller); progress relies
// on the recompute-on-op-end path always assigning the lowest active op
// a range containing thread 0.
TEST(PoolExecution, PooledFpStrategyMatchesSpawnUnderSaturatedPool) {
  SessionOptions so;
  so.max_concurrent_queries = 2;
  so.pool_threads = 1;
  PoolFixture fx(so, 12000);
  ExecOptions opts = Opts(Backend::kThreads, 1, 4);
  opts.strategy = Strategy::kFP;
  opts.use_shared_pool = false;
  auto spawn = fx.db.Execute(fx.ChainQuery(3), opts);
  ASSERT_TRUE(spawn.ok()) << spawn.status().ToString();

  opts.use_shared_pool = true;
  std::vector<Query> queries(4, fx.ChainQuery(3));
  StreamReport sr = fx.db.RunStream(queries, opts);
  ASSERT_EQ(sr.succeeded, 4u);
  for (const auto& r : sr.results) {
    EXPECT_EQ(r.value().report.result_rows, spawn.value().result_rows);
    EXPECT_EQ(r.value().report.result_checksum,
              spawn.value().result_checksum);
  }
}

TEST(PoolExecution, PooledSpStrategyMatchesSpawn) {
  SessionOptions so;
  PoolFixture fx(so, 8000);
  ExecOptions opts = Opts(Backend::kThreads);
  opts.strategy = Strategy::kSP;
  opts.use_shared_pool = false;
  auto spawn = fx.db.Execute(fx.ChainQuery(3), opts);
  ASSERT_TRUE(spawn.ok()) << spawn.status().ToString();
  opts.use_shared_pool = true;
  auto pooled = fx.db.Execute(fx.ChainQuery(3), opts);
  ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
  EXPECT_EQ(pooled.value().result_rows, spawn.value().result_rows);
  EXPECT_EQ(pooled.value().result_checksum, spawn.value().result_checksum);
}

TEST(PoolExecution, PooledClusterMatchesSpawnCluster) {
  SessionOptions so;
  so.max_concurrent_queries = 2;
  PoolFixture fx(so, 8000);
  ExecOptions opts = Opts(Backend::kCluster, 2, 2);
  opts.use_shared_pool = false;
  auto spawn = fx.db.Execute(fx.ChainQuery(2), opts);
  ASSERT_TRUE(spawn.ok()) << spawn.status().ToString();
  opts.use_shared_pool = true;
  opts.validate = true;
  auto pooled = fx.db.Execute(fx.ChainQuery(2), opts);
  ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
  EXPECT_EQ(pooled.value().result_rows, spawn.value().result_rows);
  EXPECT_EQ(pooled.value().result_checksum, spawn.value().result_checksum);
  EXPECT_TRUE(pooled.value().reference_match);
  EXPECT_GT(fx.db.pool_stats().gang_threads, 0u);
}

// ---------------------------------------------------------------------------
// Build-side reuse.

TEST(BuildReuse, RepeatedQueriesHitTheCacheWithIdenticalResults) {
  SessionOptions so;
  PoolFixture fx(so, 10000);

  ExecOptions off = Opts(Backend::kThreads);
  off.reuse_builds = false;
  auto base = fx.db.Execute(fx.ChainQuery(3), off);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_EQ(base.value().build_cache_hits, 0u);
  EXPECT_EQ(base.value().build_cache_misses, 0u);

  ExecOptions on = Opts(Backend::kThreads);
  on.reuse_builds = true;
  auto first = fx.db.Execute(fx.ChainQuery(3), on);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().build_cache_hits, 0u);
  EXPECT_EQ(first.value().build_cache_misses, 3u);  // d1, d2, d3 published

  auto second = fx.db.Execute(fx.ChainQuery(3), on);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().build_cache_hits, 3u);
  EXPECT_EQ(second.value().build_cache_misses, 0u);

  for (const auto* r : {&base, &first, &second}) {
    EXPECT_EQ(r->value().result_rows, base.value().result_rows);
    EXPECT_EQ(r->value().result_checksum, base.value().result_checksum);
  }
  auto cs = fx.db.build_cache_stats();
  EXPECT_EQ(cs.entries, 3u);
  EXPECT_GT(cs.bytes, 0u);

  // A different fragmentation degree is a different key: no false hits.
  ExecOptions other = on;
  other.buckets = 32;
  auto r32 = fx.db.Execute(fx.ChainQuery(3), other);
  ASSERT_TRUE(r32.ok());
  EXPECT_EQ(r32.value().build_cache_hits, 0u);
  EXPECT_EQ(r32.value().result_checksum, base.value().result_checksum);
}

TEST(BuildReuse, SpStrategySharesBuildsToo) {
  SessionOptions so;
  PoolFixture fx(so, 8000);
  ExecOptions opts = Opts(Backend::kThreads);
  opts.strategy = Strategy::kSP;
  auto first = fx.db.Execute(fx.ChainQuery(2), opts);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().build_cache_misses, 2u);
  auto second = fx.db.Execute(fx.ChainQuery(2), opts);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().build_cache_hits, 2u);
  EXPECT_EQ(second.value().result_checksum, first.value().result_checksum);
}

TEST(BuildReuse, AddTableInvalidatesTheCache) {
  SessionOptions so;
  PoolFixture fx(so, 8000);
  ExecOptions opts = Opts(Backend::kThreads);
  auto first = fx.db.Execute(fx.ChainQuery(2), opts);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().build_cache_misses, 2u);

  fx.db.AddTable(mt::MakeTable("d4", 100, 2, 10, 99));
  EXPECT_EQ(fx.db.build_cache_stats().entries, 0u);
  auto again = fx.db.Execute(fx.ChainQuery(2), opts);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().build_cache_hits, 0u);
  EXPECT_EQ(again.value().build_cache_misses, 2u);
  EXPECT_EQ(again.value().result_checksum, first.value().result_checksum);
}

TEST(BuildReuse, SynthesizedGraphQueriesShareOnSeedAndSkew) {
  SessionOptions so;
  Session db(so);
  RelId r = db.AddRelation("R", 20000);
  RelId s = db.AddRelation("S", 5000);
  ExecOptions opts = Opts(Backend::kThreads);
  Query q = db.NewQuery().Join(r, s).Build();
  auto first = db.Execute(q, opts);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first.value().build_cache_misses, 0u);
  auto second = db.Execute(q, opts);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second.value().build_cache_hits, 0u);
  EXPECT_EQ(second.value().result_checksum, first.value().result_checksum);
  // A different seed synthesizes different data: keys must not collide.
  ExecOptions reseeded = opts;
  reseeded.seed = opts.seed + 1;
  auto third = db.Execute(q, reseeded);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().build_cache_hits, 0u);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation of running queries.

void CancelRunningQuery(Backend backend, bool pooled, uint32_t nodes) {
  SessionOptions so;
  PoolFixture fx(so, 300000);
  ExecOptions opts = Opts(backend, nodes, 2);
  opts.use_shared_pool = pooled;
  opts.reuse_builds = false;

  QueryHandle h = fx.db.Submit(fx.ChainQuery(3), opts);
  ASSERT_TRUE(WaitForInFlight(fx.db, 1));
  // The query is running (not queued): the legacy behavior returned
  // false here and let it hold its worker to completion.
  EXPECT_TRUE(h.Cancel());
  EXPECT_FALSE(h.Cancel());  // one cancel wins
  auto r = h.Take();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
      << r.status().ToString();
  auto stats = fx.db.scheduler_stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.failed, 0u);

  // The session stays fully usable afterwards.
  auto ok = fx.db.Execute(fx.ChainQuery(1), opts);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_GT(ok.value().result_rows, 0u);
}

TEST(RunningCancel, ThreadsPooled) {
  CancelRunningQuery(Backend::kThreads, true, 1);
}
TEST(RunningCancel, ThreadsSpawn) {
  CancelRunningQuery(Backend::kThreads, false, 1);
}
TEST(RunningCancel, ClusterPooled) {
  CancelRunningQuery(Backend::kCluster, true, 2);
}

// The deterministic simulator checks the stop token once per event batch
// (and once more after waiting its turn on the session's sim mutex).
TEST(RunningCancel, SimulatedBackend) {
  SessionOptions so;
  Session db(so);
  RelId r = db.AddRelation("R", 2'000'000);
  RelId s = db.AddRelation("S", 2'000'000);
  RelId t = db.AddRelation("T", 2'000'000);
  Query q = db.NewQuery().Join(r, s).Join(s, t).Build();

  QueryHandle h = db.Submit(q, Opts(Backend::kSimulated, 2, 8));
  ASSERT_TRUE(WaitForInFlight(db, 1));
  EXPECT_TRUE(h.Cancel());
  auto res = h.Take();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCancelled)
      << res.status().ToString();
  EXPECT_EQ(db.scheduler_stats().cancelled, 1u);
}

// ---------------------------------------------------------------------------
// Registration while queries are in flight (stable table storage).

TEST(RegistrationLifecycle, AddTableWhileQueriesInFlight) {
  SessionOptions so;
  so.max_concurrent_queries = 2;
  PoolFixture fx(so, 120000);
  ExecOptions opts = Opts(Backend::kThreads);

  // Ground truth before anything overlaps.
  auto expect = fx.db.Execute(fx.ChainQuery(3), opts);
  ASSERT_TRUE(expect.ok());

  std::vector<QueryHandle> handles;
  for (int i = 0; i < 3; ++i) {
    handles.push_back(fx.db.Submit(fx.ChainQuery(3), opts));
  }
  ASSERT_TRUE(WaitForInFlight(fx.db, 1));
  // Registration while those queries execute: their plan-time table
  // pointers must stay valid (deque storage never relocates).
  RelId d4 = fx.db.AddTable(mt::MakeTable("d4", 300, 2, 50, 42));
  Query with_new =
      fx.db.NewQuery().Scan(fx.fact).Probe(d4, 1, 0).Build();
  auto fresh = fx.db.Execute(with_new, opts);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  for (auto& h : handles) {
    auto r = h.Take();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().report.result_rows, expect.value().result_rows);
    EXPECT_EQ(r.value().report.result_checksum,
              expect.value().result_checksum);
  }
}

}  // namespace
}  // namespace hierdb::api
