// Tests for concurrent query streams through the async Session surface:
// Submit/QueryHandle semantics, admission control (concurrency limit,
// queue bound, FIFO vs shortest-cost-first), result materialization, and
// the RunStream throughput report. Results of concurrent executions are
// always checked against serial Execute digests — correctness under
// overlap is the whole point.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "api/session.h"
#include "gtest/gtest.h"
#include "mt/plan.h"
#include "mt/row.h"
#include "obs/export.h"

namespace hierdb::api {
namespace {

using std::chrono::milliseconds;

// fact(key, fk1, fk2, fk3) + three dimensions; queries probe distinct
// dimension subsets so a stream is heterogeneous but every query remains
// independently verifiable.
struct StreamFixture {
  Session db;
  RelId fact, d1, d2, d3;

  explicit StreamFixture(const SessionOptions& so, size_t fact_rows = 20000,
                         uint64_t seed = 7)
      : db(so) {
    fact = db.AddTable(mt::MakeTable("fact", fact_rows, 4, 500, seed));
    d1 = db.AddTable(mt::MakeTable("d1", 500, 2, 50, seed + 1));
    d2 = db.AddTable(mt::MakeTable("d2", 500, 2, 50, seed + 2));
    d3 = db.AddTable(mt::MakeTable("d3", 500, 2, 50, seed + 3));
  }

  Query ChainQuery(uint32_t probes) const {
    auto qb = db.NewQuery().Scan(fact).Probe(d1, 1, 0);
    if (probes >= 2) qb.Probe(d2, 2, 0);
    if (probes >= 3) qb.Probe(d3, 3, 0);
    return qb.Build();
  }
};

ExecOptions Opts(Backend backend, uint32_t nodes = 1, uint32_t threads = 2) {
  ExecOptions o;
  o.backend = backend;
  o.strategy = Strategy::kDP;
  o.nodes = nodes;
  o.threads_per_node = threads;
  o.seed = 3;
  return o;
}

// Polls the scheduler until `n` queries are executing (for tests that must
// order their submissions around a long-running blocker).
bool WaitForInFlight(const Session& db, uint32_t n,
                     int timeout_ms = 20000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (db.scheduler_stats().in_flight >= n) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return false;
}

// Order-normalized row set of a batch (executions emit rows in
// nondeterministic order; sorting makes row-for-row comparison exact).
std::vector<std::vector<int64_t>> SortedRows(const mt::Batch& b) {
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(b.rows());
  for (size_t i = 0; i < b.rows(); ++i) {
    rows.emplace_back(b.row(i), b.row(i) + b.width());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// N parallel Submits on kThreads produce digests identical to serial
// Execute of the same queries.
TEST(StreamConsistency, ParallelSubmitsMatchSerialExecuteOnThreads) {
  SessionOptions so;
  so.max_concurrent_queries = 3;
  StreamFixture fx(so);
  ExecOptions opts = Opts(Backend::kThreads);

  std::vector<Query> queries;
  for (uint32_t i = 0; i < 6; ++i) queries.push_back(fx.ChainQuery(i % 3 + 1));

  // Serial ground truth through the same session (queue drains between
  // calls, so these do not overlap).
  std::vector<std::pair<uint64_t, uint64_t>> serial;
  for (const Query& q : queries) {
    auto r = fx.db.Execute(q, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    serial.emplace_back(r.value().result_rows, r.value().result_checksum);
  }

  std::vector<QueryHandle> handles;
  for (const Query& q : queries) handles.push_back(fx.db.Submit(q, opts));
  for (size_t i = 0; i < handles.size(); ++i) {
    auto r = handles[i].Take();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().report.result_rows, serial[i].first) << i;
    EXPECT_EQ(r.value().report.result_checksum, serial[i].second) << i;
    EXPECT_GT(r.value().exec_ms, 0.0);
    EXPECT_GT(r.value().dispatch_seq, 0u);
  }

  auto stats = fx.db.scheduler_stats();
  EXPECT_EQ(stats.submitted, 12u);  // 6 serial + 6 concurrent
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_LE(stats.max_in_flight, 3u);
}

// Flake forensics for the cluster consistency test: on a digest mismatch,
// write everything a post-mortem needs to a temp file — serial vs
// concurrent digests, each concurrent query's full ExecutionReport with
// per-node busy/idle/rows-per-chain breakdowns, and a traced serial
// re-run of every mismatching query (Chrome trace JSON) — and return the
// path so the gtest failure message points at it.
std::string DumpClusterForensics(
    Session& db, const std::vector<Query>& queries, const ExecOptions& opts,
    const std::vector<std::pair<uint64_t, uint64_t>>& serial,
    const std::vector<Result<QueryResult>>& got) {
  std::ostringstream os;
  os << "cluster stream digest mismatch: " << queries.size()
     << " queries, machine " << opts.nodes << "x" << opts.threads_per_node
     << "\n\n";
  for (size_t i = 0; i < got.size(); ++i) {
    os << "--- query " << i << " ---\n";
    os << "serial:     rows=" << serial[i].first
       << " checksum=" << serial[i].second << "\n";
    if (!got[i].ok()) {
      os << "concurrent: " << got[i].status().ToString() << "\n";
      continue;
    }
    const ExecutionReport& rep = got[i].value().report;
    os << "concurrent: rows=" << rep.result_rows
       << " checksum=" << rep.result_checksum
       << (rep.result_rows == serial[i].first &&
                   rep.result_checksum == serial[i].second
               ? " (match)"
               : " (MISMATCH)")
       << "\n";
    os << "report: " << rep.ToString() << "\n";
    if (rep.cluster.has_value()) {
      const auto& cs = *rep.cluster;
      for (size_t n = 0; n < cs.busy_per_node.size(); ++n) {
        os << "  node " << n << ": busy=" << cs.busy_per_node[n];
        if (n < cs.idle_waits_per_node.size()) {
          os << " idle_waits=" << cs.idle_waits_per_node[n];
        }
        os << "\n";
      }
      for (size_t c = 0; c < cs.rows_per_chain.size(); ++c) {
        os << "  chain " << c << ": rows=" << cs.rows_per_chain[c] << "\n";
      }
    }
  }
  // Traced serial re-runs of the mismatching queries: where each operator
  // ran and for how long, in a form chrome://tracing opens directly.
  ExecOptions traced = opts;
  traced.trace = true;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].ok() &&
        got[i].value().report.result_rows == serial[i].first &&
        got[i].value().report.result_checksum == serial[i].second) {
      continue;
    }
    os << "\n--- traced serial re-run of query " << i << " ---\n";
    auto r = db.Submit(queries[i], traced).Take();
    if (!r.ok()) {
      os << r.status().ToString() << "\n";
    } else if (r.value().report.trace != nullptr) {
      os << obs::ChromeTraceJson(*r.value().report.trace) << "\n";
    }
  }

  char path[] = "/tmp/hierdb_stream_forensics_XXXXXX";
  int fd = mkstemp(path);
  if (fd < 0) return "(mkstemp failed; dump lost)";
  close(fd);
  std::ofstream(path) << os.str();
  return path;
}

TEST(StreamConsistency, ParallelSubmitsMatchSerialExecuteOnCluster) {
  SessionOptions so;
  so.max_concurrent_queries = 2;
  StreamFixture fx(so, 8000);
  ExecOptions opts = Opts(Backend::kCluster, 2, 2);

  std::vector<Query> queries = {fx.ChainQuery(1), fx.ChainQuery(2),
                                fx.ChainQuery(3), fx.ChainQuery(2)};
  std::vector<std::pair<uint64_t, uint64_t>> serial;
  for (const Query& q : queries) {
    auto r = fx.db.Execute(q, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    serial.emplace_back(r.value().result_rows, r.value().result_checksum);
  }

  std::vector<QueryHandle> handles;
  for (const Query& q : queries) handles.push_back(fx.db.Submit(q, opts));
  std::vector<Result<QueryResult>> got;
  for (auto& h : handles) got.push_back(h.Take());

  bool mismatch = false;
  for (size_t i = 0; i < got.size(); ++i) {
    mismatch = mismatch || !got[i].ok() ||
               got[i].value().report.result_rows != serial[i].first ||
               got[i].value().report.result_checksum != serial[i].second;
  }
  std::string forensics;
  if (mismatch) {
    forensics = DumpClusterForensics(fx.db, queries, opts, serial, got);
  }
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].ok())
        << got[i].status().ToString() << "; forensics: " << forensics;
    EXPECT_EQ(got[i].value().report.result_rows, serial[i].first)
        << "query " << i << "; forensics: " << forensics;
    EXPECT_EQ(got[i].value().report.result_checksum, serial[i].second)
        << "query " << i << "; forensics: " << forensics;
  }
  EXPECT_LE(fx.db.scheduler_stats().max_in_flight, 2u);
}

// Admission control: the concurrency limit is never exceeded, and with a
// backlog of long-enough queries it is actually reached.
TEST(StreamAdmission, ConcurrencyLimitRespectedAndReached) {
  SessionOptions so;
  so.max_concurrent_queries = 2;
  StreamFixture fx(so, 60000);
  ExecOptions opts = Opts(Backend::kThreads);

  std::vector<QueryHandle> handles;
  for (uint32_t i = 0; i < 8; ++i) {
    handles.push_back(fx.db.Submit(fx.ChainQuery(3), opts));
  }
  // Two workers pop immediately while six queries wait behind them.
  EXPECT_TRUE(WaitForInFlight(fx.db, 2));
  for (auto& h : handles) {
    auto r = h.Take();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  auto stats = fx.db.scheduler_stats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_LE(stats.max_in_flight, 2u);
  EXPECT_EQ(stats.max_in_flight, 2u);
}

// The acceptance experiment: a stream of independent queries under
// max_concurrent_queries >= 2 finishes measurably faster than the sum of
// its serial latencies — on hardware that can actually overlap them.
TEST(StreamAdmission, OverlappedMakespanBeatsSerialSum) {
  SessionOptions so;
  so.max_concurrent_queries = 3;
  StreamFixture fx(so, 60000);
  ExecOptions opts = Opts(Backend::kThreads);

  std::vector<Query> queries(6, fx.ChainQuery(3));
  double serial_sum = 0.0;
  for (const Query& q : queries) {
    auto r = fx.db.Execute(q, opts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    serial_sum += r.value().response_ms;
  }

  StreamReport sr = fx.db.RunStream(queries, opts);
  EXPECT_EQ(sr.succeeded, 6u);
  EXPECT_GT(sr.makespan_ms, 0.0);
  EXPECT_GE(fx.db.scheduler_stats().max_in_flight, 2u);
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "single-core host: queries interleave but cannot "
                    "overlap; makespan ratio not meaningful (serial sum "
                 << serial_sum << "ms, makespan " << sr.makespan_ms << "ms)";
  }
  EXPECT_LT(sr.makespan_ms, 0.9 * serial_sum)
      << "expected overlap: serial sum " << serial_sum << "ms";
}

TEST(StreamAdmission, QueueFullRejectsWithResourceExhausted) {
  SessionOptions so;
  so.max_concurrent_queries = 1;
  so.max_queued = 1;
  StreamFixture fx(so, 150000);
  ExecOptions opts = Opts(Backend::kThreads);

  QueryHandle running = fx.db.Submit(fx.ChainQuery(3), opts);
  ASSERT_TRUE(WaitForInFlight(fx.db, 1));
  QueryHandle queued = fx.db.Submit(fx.ChainQuery(1), opts);
  QueryHandle rejected = fx.db.Submit(fx.ChainQuery(1), opts);

  auto r = rejected.Take();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_TRUE(running.Take().ok());
  EXPECT_TRUE(queued.Take().ok());
  EXPECT_EQ(fx.db.scheduler_stats().rejected, 1u);
}

TEST(StreamCancel, CancelBeforeDispatchReturnsCancelledStatus) {
  SessionOptions so;
  so.max_concurrent_queries = 1;
  StreamFixture fx(so, 150000);
  ExecOptions opts = Opts(Backend::kThreads);

  QueryHandle running = fx.db.Submit(fx.ChainQuery(3), opts);
  ASSERT_TRUE(WaitForInFlight(fx.db, 1));
  QueryHandle queued = fx.db.Submit(fx.ChainQuery(1), opts);

  EXPECT_FALSE(queued.Done());
  EXPECT_TRUE(queued.Cancel());
  EXPECT_TRUE(queued.Done());    // completes immediately
  EXPECT_FALSE(queued.Cancel());  // second cancel is a no-op
  // Accounted eagerly: visible while the blocker is still running, and
  // the dead entry no longer counts as waiting.
  auto mid = fx.db.scheduler_stats();
  EXPECT_EQ(mid.cancelled, 1u);
  EXPECT_EQ(mid.queued, 0u);
  auto r = queued.Take();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
      << r.status().ToString();

  auto ran = running.Take();
  ASSERT_TRUE(ran.ok()) << ran.status().ToString();
  EXPECT_FALSE(running.Cancel());  // already finished
}

TEST(StreamCancel, TakeIsOneShot) {
  SessionOptions so;
  StreamFixture fx(so, 2000);
  QueryHandle h = fx.db.Submit(fx.ChainQuery(1), Opts(Backend::kThreads));
  ASSERT_TRUE(h.Take().ok());
  auto again = h.Take();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);
  // Empty handles are inert.
  QueryHandle empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.Done());
  EXPECT_FALSE(empty.Cancel());
  EXPECT_FALSE(empty.Take().ok());
}

// Shortest-cost-first admission dispatches the cheap query queued behind a
// blocker before the expensive one submitted ahead of it.
TEST(StreamAdmission, ShortestCostFirstReordersQueue) {
  SessionOptions so;
  so.max_concurrent_queries = 1;
  so.admission = AdmissionPolicy::kShortestCostFirst;
  // Pin pure cost ordering: a slow host (or a sanitizer build) must not
  // age both queued entries past the bound and flip them to FIFO.
  so.scf_aging_ms = 0.0;
  StreamFixture fx(so, 150000);
  ExecOptions opts = Opts(Backend::kThreads);

  QueryHandle blocker = fx.db.Submit(fx.ChainQuery(3), opts);
  ASSERT_TRUE(WaitForInFlight(fx.db, 1));
  QueryHandle expensive = fx.db.Submit(fx.ChainQuery(3), opts);
  QueryHandle cheap = fx.db.Submit(fx.ChainQuery(1), opts);

  auto rb = blocker.Take();
  auto re = expensive.Take();
  auto rc = cheap.Take();
  ASSERT_TRUE(rb.ok() && re.ok() && rc.ok());
  EXPECT_EQ(rb.value().dispatch_seq, 1u);
  EXPECT_LT(rc.value().dispatch_seq, re.value().dispatch_seq)
      << "cheap query should jump the queue under shortest-cost-first";
}

// Admission aging: an expensive query that has waited past the aging
// bound outranks cost ordering, so sustained cheap traffic can no longer
// starve it. Deterministic in every timing: if the blocker finishes
// before the cheap queries are submitted, the expensive entry dispatches
// alone (trivially first); if it is still running, the expensive entry
// has aged past the bound while the cheap ones are fresh, and the aged
// entry wins the pop regardless of cost.
TEST(StreamAdmission, AgingStopsCheapTrafficFromStarvingExpensiveQuery) {
  SessionOptions so;
  so.max_concurrent_queries = 1;
  so.admission = AdmissionPolicy::kShortestCostFirst;
  so.scf_aging_ms = 200.0;
  StreamFixture fx(so, 300000);
  ExecOptions opts = Opts(Backend::kThreads);

  QueryHandle blocker = fx.db.Submit(fx.ChainQuery(3), opts);
  ASSERT_TRUE(WaitForInFlight(fx.db, 1));
  QueryHandle expensive = fx.db.Submit(fx.ChainQuery(3), opts);
  // Let the expensive entry age past the bound, then pile on the cheap
  // traffic that pure shortest-cost-first would dispatch ahead of it.
  std::this_thread::sleep_for(milliseconds(500));
  std::vector<QueryHandle> cheap;
  for (int i = 0; i < 3; ++i) {
    cheap.push_back(fx.db.Submit(fx.ChainQuery(1), opts));
  }

  auto re = expensive.Take();
  ASSERT_TRUE(re.ok()) << re.status().ToString();
  for (auto& h : cheap) {
    auto rc = h.Take();
    ASSERT_TRUE(rc.ok()) << rc.status().ToString();
    EXPECT_LT(re.value().dispatch_seq, rc.value().dispatch_seq)
        << "aged expensive query must dispatch before fresh cheap traffic";
  }
  EXPECT_TRUE(blocker.Take().ok());
}

// The acceptance check for the pooled path: a concurrent stream with the
// shared worker pool and the build-reuse cache enabled (the defaults)
// produces digests identical to serial spawn-path execution, and later
// queries actually hit the cache.
TEST(StreamConsistency, PooledStreamWithReuseMatchesSpawnSerial) {
  SessionOptions so;
  so.max_concurrent_queries = 3;
  StreamFixture fx(so);

  std::vector<Query> queries;
  for (uint32_t i = 0; i < 9; ++i) queries.push_back(fx.ChainQuery(i % 3 + 1));

  ExecOptions spawn = Opts(Backend::kThreads);
  spawn.use_shared_pool = false;
  spawn.reuse_builds = false;
  std::vector<std::pair<uint64_t, uint64_t>> serial;
  for (const Query& q : queries) {
    auto r = fx.db.Execute(q, spawn);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    serial.emplace_back(r.value().result_rows, r.value().result_checksum);
  }

  ExecOptions pooled = Opts(Backend::kThreads);
  ASSERT_TRUE(pooled.use_shared_pool);  // the defaults are the point
  ASSERT_TRUE(pooled.reuse_builds);
  StreamReport sr = fx.db.RunStream(queries, pooled);
  ASSERT_EQ(sr.succeeded, 9u);
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& rep = sr.results[i].value().report;
    EXPECT_EQ(rep.result_rows, serial[i].first) << i;
    EXPECT_EQ(rep.result_checksum, serial[i].second) << i;
  }
  // With max 3 concurrent queries, the later waves find the first wave's
  // builds published: the stream must record hits.
  EXPECT_GT(sr.build_cache_hits, 0u);
  EXPECT_GT(sr.build_cache_misses, 0u);
  EXPECT_NE(sr.ToString().find("build_cache="), std::string::npos);
}

// Materialized rows match mt::ReferenceMaterialize row-for-row (after
// order normalization — parallel executions emit rows in any order).
TEST(StreamMaterialize, ThreadsRowsMatchReferenceMaterialize) {
  SessionOptions so;
  StreamFixture fx(so, 6000);
  ExecOptions opts = Opts(Backend::kThreads);
  opts.materialize = true;

  auto r = fx.db.Submit(fx.ChainQuery(3), opts).Take();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryResult& qr = r.value();
  ASSERT_TRUE(qr.materialized);
  EXPECT_TRUE(qr.report.materialized);
  EXPECT_EQ(qr.report.materialized_rows, qr.rows.rows());
  EXPECT_EQ(qr.report.materialized_bytes, qr.rows.bytes());
  EXPECT_EQ(qr.report.result_rows, qr.rows.rows());
  EXPECT_NE(qr.report.ToString().find("mat_rows="), std::string::npos)
      << qr.report.ToString();

  // The equivalent explicit pipeline plan over the registered tables.
  std::vector<const mt::Table*> tables = {fx.db.table(fx.fact),
                                          fx.db.table(fx.d1),
                                          fx.db.table(fx.d2),
                                          fx.db.table(fx.d3)};
  mt::PipelinePlan plan = mt::MakeRightDeepPlan(0, {1, 2, 3}, {1, 2, 3});
  auto ref = mt::ReferenceMaterialize(plan, tables);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  ASSERT_EQ(ref.value().width(), qr.rows.width());
  EXPECT_EQ(SortedRows(ref.value()), SortedRows(qr.rows));
}

TEST(StreamMaterialize, ClusterRowsMatchReferenceMaterialize) {
  SessionOptions so;
  StreamFixture fx(so, 6000);
  ExecOptions opts = Opts(Backend::kCluster, 3, 2);
  opts.materialize = true;
  opts.validate = true;

  auto r = fx.db.Submit(fx.ChainQuery(3), opts).Take();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryResult& qr = r.value();
  ASSERT_TRUE(qr.materialized);
  EXPECT_TRUE(qr.report.reference_match);
  EXPECT_EQ(qr.report.result_rows, qr.rows.rows());

  std::vector<const mt::Table*> tables = {fx.db.table(fx.fact),
                                          fx.db.table(fx.d1),
                                          fx.db.table(fx.d2),
                                          fx.db.table(fx.d3)};
  mt::PipelinePlan plan = mt::MakeRightDeepPlan(0, {1, 2, 3}, {1, 2, 3});
  auto ref = mt::ReferenceMaterialize(plan, tables);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  ASSERT_EQ(ref.value().width(), qr.rows.width());
  EXPECT_EQ(SortedRows(ref.value()), SortedRows(qr.rows));

  // A bushy (multi-chain) plan materializes only the final chain's rows;
  // intermediates keep reporting separately.
  ASSERT_TRUE(qr.report.cluster.has_value());
  EXPECT_EQ(qr.report.intermediate_rows, 0u);  // single chain here
}

TEST(StreamMaterialize, SimulatedBackendRejectsMaterialize) {
  SessionOptions so;
  StreamFixture fx(so, 1000);
  ExecOptions opts = Opts(Backend::kSimulated);
  opts.materialize = true;
  auto r = fx.db.Execute(fx.ChainQuery(2), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamReportTest, RunStreamSummarizesLatencies) {
  SessionOptions so;
  so.max_concurrent_queries = 2;
  StreamFixture fx(so, 8000);
  ExecOptions opts = Opts(Backend::kThreads);

  std::vector<Query> queries(4, fx.ChainQuery(2));
  StreamReport sr = fx.db.RunStream(queries, opts);
  EXPECT_EQ(sr.submitted, 4u);
  EXPECT_EQ(sr.succeeded, 4u);
  EXPECT_EQ(sr.failed, 0u);
  ASSERT_EQ(sr.results.size(), 4u);
  EXPECT_GT(sr.makespan_ms, 0.0);
  EXPECT_GT(sr.qps, 0.0);
  EXPECT_GT(sr.p50_ms, 0.0);
  EXPECT_LE(sr.p50_ms, sr.p95_ms);
  EXPECT_GE(sr.serial_ms, sr.p95_ms);
  for (const auto& r : sr.results) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().report.has_result);
  }
  EXPECT_NE(sr.ToString().find("qps"), std::string::npos);

  // A stream holding an invalid query reports the failure and keeps going.
  std::vector<Query> mixed = {fx.ChainQuery(2), Query()};
  StreamReport bad = fx.db.RunStream(mixed, opts);
  EXPECT_EQ(bad.succeeded, 1u);
  EXPECT_EQ(bad.failed, 1u);
  ASSERT_FALSE(bad.results[1].ok());
}

// The promoted white-box toggles are honored through ExecOptions.
TEST(StreamOptions, PromotedTogglesRunOnTheirBackends) {
  SessionOptions so;
  StreamFixture fx(so, 20000);

  // Simulator ablations: both toggles off must still complete, and
  // disabling primary-queue affinity changes scheduling (not correctness).
  ExecOptions sim = Opts(Backend::kSimulated, 1, 8);
  auto base = fx.db.Execute(fx.ChainQuery(3), sim);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  sim.primary_queue_affinity = false;
  sim.model_memory_hierarchy = false;
  auto ablated = fx.db.Execute(fx.ChainQuery(3), sim);
  ASSERT_TRUE(ablated.ok()) << ablated.status().ToString();
  EXPECT_GT(ablated.value().response_ms, 0.0);
  EXPECT_EQ(ablated.value().tuples, base.value().tuples);

  // Cluster: disabling the stolen-fragment cache stays correct under
  // placement skew (which provokes steals).
  ExecOptions cl = Opts(Backend::kCluster, 3, 2);
  cl.placement_theta = 0.9;
  cl.validate = true;
  cl.cache_stolen_fragments = false;
  auto r = fx.db.Execute(fx.ChainQuery(3), cl);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().reference_match);
}

// A zero concurrency limit is normalized to 1 rather than deadlocking
// Take with a worker-less scheduler.
TEST(StreamLifecycle, ZeroConcurrencyLimitIsTreatedAsOne) {
  SessionOptions so;
  so.max_concurrent_queries = 0;
  StreamFixture fx(so, 2000);
  auto r = fx.db.Execute(fx.ChainQuery(1), Opts(Backend::kThreads));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(fx.db.scheduler_stats().max_in_flight, 1u);
}

// Sessions destruct cleanly with work still queued (the scheduler drains).
TEST(StreamLifecycle, DestructionDrainsInFlightQueries) {
  SessionOptions so;
  so.max_concurrent_queries = 2;
  std::vector<QueryHandle> handles;
  {
    StreamFixture fx(so, 30000);
    for (int i = 0; i < 4; ++i) {
      handles.push_back(fx.db.Submit(fx.ChainQuery(2),
                                     Opts(Backend::kThreads)));
    }
    // Session (and scheduler) destruct here with queries in flight.
  }
  for (auto& h : handles) {
    auto r = h.Take();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_GT(r.value().report.result_rows, 0u);
  }
}

}  // namespace
}  // namespace hierdb::api
